(* Benchmark harness: regenerates every table and figure of the paper
   (Banerjee & Mehrotra, DAC 2001) and times the computational kernels
   with Bechamel.

     dune exec bench/main.exe            -- everything
     dune exec bench/main.exe -- --fast  -- skip the transient ring sims
     dune exec bench/main.exe -- --no-bechamel  -- skip kernel timings *)

let fast = Array.exists (fun a -> a = "--fast") Sys.argv
let no_bechamel = Array.exists (fun a -> a = "--no-bechamel") Sys.argv

let section title =
  Printf.printf "\n%s\n%s\n\n" title (String.make (String.length title) '=')

(* ------------------------------------------------------------------ *)
(* Paper experiments                                                    *)
(* ------------------------------------------------------------------ *)

let run_table1 () =
  section "T1: Table 1 -- technology parameters";
  Rlc_experiments.Table1.print (Rlc_experiments.Table1.compute ())

let run_fig2 () =
  section "F2: Figure 2 -- second-order step responses";
  Rlc_experiments.Fig2.print (Rlc_experiments.Fig2.compute ())

let run_sweep_figs () =
  section "F4-F8: inductance sweeps (Sections 3.1 / 3.2)";
  let s250 = Rlc_experiments.Sweeps.run Rlc_tech.Presets.node_250nm in
  let s100 = Rlc_experiments.Sweeps.run Rlc_tech.Presets.node_100nm in
  let s100c =
    Rlc_experiments.Sweeps.run Rlc_tech.Presets.node_100nm_250nm_dielectric
  in
  Rlc_experiments.Sweeps.print_fig4 [ s250; s100 ];
  print_newline ();
  Rlc_experiments.Sweeps.print_fig5 [ s250; s100 ];
  print_newline ();
  Rlc_experiments.Sweeps.print_fig6 [ s250; s100 ];
  print_newline ();
  Rlc_experiments.Sweeps.print_fig7 [ s250; s100; s100c ];
  print_newline ();
  Rlc_experiments.Sweeps.print_fig8 [ s250; s100 ];
  print_newline ();
  Rlc_experiments.Sweeps.print_baselines [ s100 ]

let run_ring_waveforms () =
  section "F9/F10: ring-oscillator waveforms (Section 3.3.1)";
  let cases =
    Rlc_experiments.Ring_figs.waveforms ~l_values:[ 1.8e-6; 2.2e-6 ] ()
  in
  List.iter Rlc_experiments.Ring_figs.print_waveform_case cases

let run_ring_sweeps () =
  section "F11/F12: ring-oscillator period and current density vs l";
  let l_values = Rlc_experiments.Ring_figs.default_l_values () in
  List.iter
    (fun node ->
      let points =
        Rlc_experiments.Ring_figs.period_sweep node ~l_values
      in
      Rlc_experiments.Ring_figs.print_fig11
        ~node_name:node.Rlc_tech.Node.name points;
      print_newline ();
      if String.equal node.Rlc_tech.Node.name "100nm" then
        Rlc_experiments.Ring_figs.print_fig12
          ~node_name:node.Rlc_tech.Node.name points)
    [ Rlc_tech.Presets.node_100nm; Rlc_tech.Presets.node_250nm ]

(* ------------------------------------------------------------------ *)
(* Bechamel kernel timings: one Test.make per table/figure kernel      *)
(* ------------------------------------------------------------------ *)

let bechamel_tests () =
  let open Bechamel in
  let node100 = Rlc_tech.Presets.node_100nm in
  let node250 = Rlc_tech.Presets.node_250nm in
  let stage =
    Rlc_core.Stage.of_node node100 ~l:1.5e-6 ~h:0.012 ~k:300.0
  in
  let cs = Rlc_core.Pade.coeffs stage in
  let t1 =
    Test.make ~name:"T1:rc-closed-form" (Staged.stage (fun () ->
        ignore (Rlc_core.Rc_opt.optimize node250)))
  in
  let f2 =
    Test.make ~name:"F2:step-response-eval" (Staged.stage (fun () ->
        ignore (Rlc_core.Step_response.eval cs 1e-10)))
  in
  let f4 =
    Test.make ~name:"F4:critical-inductance" (Staged.stage (fun () ->
        ignore (Rlc_core.Critical_inductance.of_stage stage)))
  in
  let f5 =
    Test.make ~name:"F5/F6:newton-optimize" (Staged.stage (fun () ->
        ignore (Rlc_core.Rlc_opt.optimize_newton_only node100 ~l:1.5e-6)))
  in
  let f7 =
    Test.make ~name:"F7:delay-solve" (Staged.stage (fun () ->
        ignore (Rlc_core.Delay.of_coeffs cs)))
  in
  let f8 =
    Test.make ~name:"F8:residual-eval" (Staged.stage (fun () ->
        ignore (Rlc_core.Rlc_opt.residuals stage)))
  in
  let ext3 =
    Test.make ~name:"EXT:third-order-delay" (Staged.stage (fun () ->
        ignore (Rlc_core.Third_order.delay_stage stage)))
  in
  let ext_exact =
    Test.make ~name:"EXT:talbot-exact-eval" (Staged.stage (fun () ->
        ignore
          (Rlc_numerics.Laplace.step_response
             (fun s -> Rlc_core.Transfer.eval stage s)
             1e-10)))
  in
  let ring_step =
    (* one short transient (200 steps) of a 1-stage buffered line *)
    Test.make ~name:"F9-F12:transient-1kstep" (Staged.stage (fun () ->
        let nl = Rlc_circuit.Netlist.create () in
        let src = Rlc_circuit.Netlist.fresh_node nl in
        let far = Rlc_circuit.Netlist.fresh_node nl in
        Rlc_circuit.Netlist.add_vsource nl src Rlc_circuit.Netlist.ground
          (Rlc_circuit.Stimulus.Dc 1.0);
        Rlc_circuit.Ladder.make nl
          { Rlc_circuit.Ladder.r = 4400.0; l = 1.5e-6; c = 123.33e-12;
            length = 0.011; segments = 10 }
          ~from_node:src ~to_node:far;
        let _ =
          Rlc_circuit.Transient.run nl ~t_end:1e-9 ~dt:1e-12
            ~probes:[ Rlc_circuit.Transient.Node_v far ]
        in
        ()))
  in
  [ t1; f2; f4; f5; f7; f8; ext3; ext_exact; ring_step ]

let run_bechamel () =
  section "Kernel timings (Bechamel)";
  let open Bechamel in
  let open Toolkit in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let tests = Test.make_grouped ~name:"kernels" ~fmt:"%s %s" (bechamel_tests ()) in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> String.compare a b) rows in
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some [ ns ] ->
          if ns >= 1e6 then Printf.printf "%-28s %10.3f ms/run\n" name (ns /. 1e6)
          else if ns >= 1e3 then
            Printf.printf "%-28s %10.3f us/run\n" name (ns /. 1e3)
          else Printf.printf "%-28s %10.1f ns/run\n" name ns
      | _ -> Printf.printf "%-28s (no estimate)\n" name)
    rows

let run_extensions () =
  section "Extensions & ablations (beyond the paper)";
  Rlc_experiments.Extensions.print_all_fast ();
  if not fast then begin
    print_newline ();
    Rlc_experiments.Extensions.print_chain ()
  end

let () =
  Printf.printf
    "RLC interconnect performance-optimization reproduction -- benchmark \
     harness\n";
  run_table1 ();
  run_fig2 ();
  run_sweep_figs ();
  if not fast then begin
    run_ring_waveforms ();
    run_ring_sweeps ()
  end
  else print_endline "\n[--fast: skipping transient ring experiments]";
  run_extensions ();
  if not no_bechamel then run_bechamel ()
