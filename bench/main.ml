(* Benchmark harness: regenerates every table and figure of the paper
   (Banerjee & Mehrotra, DAC 2001) and times the computational kernels
   with Bechamel.

     dune exec bench/main.exe            -- everything
     dune exec bench/main.exe -- --fast  -- skip the transient ring sims
     dune exec bench/main.exe -- --no-bechamel  -- skip kernel timings
     dune exec bench/main.exe -- --smoke -- tiny ladder-scaling run only
                                            (wired into dune runtest)
     dune exec bench/main.exe -- -j N    -- worker domains for the
                                            experiment fan-outs (also
                                            --jobs N / --jobs=N; default
                                            from RLC_JOBS or the machine)
     dune exec bench/main.exe -- --stats -- dump the rlc_instr metrics
                                            table on exit (RLC_STATS=1
                                            works too)
     dune exec bench/main.exe -- --trace FILE.json -- Chrome trace of
                                            all recorded spans *)

let fast = Array.exists (fun a -> a = "--fast") Sys.argv
let no_bechamel = Array.exists (fun a -> a = "--no-bechamel") Sys.argv
let smoke = Array.exists (fun a -> a = "--smoke") Sys.argv
let stats = Array.exists (fun a -> a = "--stats") Sys.argv

let prefixed a ~prefix =
  String.length a > String.length prefix
  && String.sub a 0 (String.length prefix) = prefix

let opt_value ~flag =
  let rec find i =
    if i >= Array.length Sys.argv then None
    else
      let a = Sys.argv.(i) in
      if a = flag && i + 1 < Array.length Sys.argv then
        Some Sys.argv.(i + 1)
      else if prefixed a ~prefix:(flag ^ "=") then
        Some
          (String.sub a
             (String.length flag + 1)
             (String.length a - String.length flag - 1))
      else find (i + 1)
  in
  find 1

let trace = opt_value ~flag:"--trace"
let () = Rlc_instr.Control.setup ~stats ?trace ()

let jobs =
  let rec find i =
    if i >= Array.length Sys.argv then Rlc_parallel.Pool.default_domains ()
    else
      let a = Sys.argv.(i) in
      if (a = "-j" || a = "--jobs") && i + 1 < Array.length Sys.argv then
        int_of_string Sys.argv.(i + 1)
      else if prefixed a ~prefix:"--jobs=" then
        int_of_string (String.sub a 7 (String.length a - 7))
      else find (i + 1)
  in
  find 1

let pool = Rlc_parallel.Pool.create ~domains:jobs ()
let section title = Rlc_report.Report.section title

(* ------------------------------------------------------------------ *)
(* Paper experiments                                                    *)
(* ------------------------------------------------------------------ *)

let run_table1 () =
  section "T1: Table 1 -- technology parameters";
  Rlc_experiments.Table1.print (Rlc_experiments.Table1.compute ~pool ())

let run_fig2 () =
  section "F2: Figure 2 -- second-order step responses";
  Rlc_experiments.Fig2.print (Rlc_experiments.Fig2.compute ~pool ())

let run_sweep_figs () =
  section "F4-F8: inductance sweeps (Sections 3.1 / 3.2)";
  let s250 = Rlc_experiments.Sweeps.run ~pool Rlc_tech.Presets.node_250nm in
  let s100 = Rlc_experiments.Sweeps.run ~pool Rlc_tech.Presets.node_100nm in
  let s100c =
    Rlc_experiments.Sweeps.run ~pool
      Rlc_tech.Presets.node_100nm_250nm_dielectric
  in
  Rlc_experiments.Sweeps.print_fig4 [ s250; s100 ];
  print_newline ();
  Rlc_experiments.Sweeps.print_fig5 [ s250; s100 ];
  print_newline ();
  Rlc_experiments.Sweeps.print_fig6 [ s250; s100 ];
  print_newline ();
  Rlc_experiments.Sweeps.print_fig7 [ s250; s100; s100c ];
  print_newline ();
  Rlc_experiments.Sweeps.print_fig8 [ s250; s100 ];
  print_newline ();
  Rlc_experiments.Sweeps.print_baselines [ s100 ]

let run_ring_waveforms () =
  section "F9/F10: ring-oscillator waveforms (Section 3.3.1)";
  let cases =
    Rlc_experiments.Ring_figs.waveforms ~pool ~l_values:[ 1.8e-6; 2.2e-6 ] ()
  in
  List.iter
    (fun c -> Rlc_experiments.Ring_figs.print_waveform_case c)
    cases

let run_ring_sweeps () =
  section "F11/F12: ring-oscillator period and current density vs l";
  let l_values = Rlc_experiments.Ring_figs.default_l_values () in
  List.iter
    (fun node ->
      let points =
        Rlc_experiments.Ring_figs.period_sweep ~pool node ~l_values
      in
      Rlc_experiments.Ring_figs.print_fig11
        ~node_name:node.Rlc_tech.Node.name points;
      print_newline ();
      if String.equal node.Rlc_tech.Node.name "100nm" then
        Rlc_experiments.Ring_figs.print_fig12
          ~node_name:node.Rlc_tech.Node.name points)
    [ Rlc_tech.Presets.node_100nm; Rlc_tech.Presets.node_250nm ]

(* ------------------------------------------------------------------ *)
(* Ladder scaling: dense vs banded transient backend                   *)
(* ------------------------------------------------------------------ *)

(* Wall-clock timing now rides on the instrumentation library's
   monotonic-origin timers: always-on, never gated by RLC_STATS. *)
let wall f =
  let t = Rlc_instr.Timer.start () in
  let r = f () in
  (r, Rlc_instr.Timer.elapsed_s t)

(* The shortest of [reps] runs: a single wall-clock sample of a
   millisecond-scale job is at the mercy of scheduler noise. *)
let wall_best reps f =
  let result, t0 = wall f in
  let best = ref t0 in
  for _ = 2 to reps do
    let _, t = wall f in
    if t < !best then best := t
  done;
  (result, !best)

(* ------------------------------------------------------------------ *)
(* Run metadata + metrics snapshot, embedded in every BENCH_*.json     *)
(* ------------------------------------------------------------------ *)

let git_rev () =
  match Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" with
  | exception _ -> "unknown"
  | ic -> (
      let line = try input_line ic with End_of_file -> "" in
      match Unix.close_process_in ic with
      | Unix.WEXITED 0 when line <> "" -> line
      | _ -> "unknown"
      | exception _ -> "unknown")

let iso_date_utc () =
  let tm = Unix.gmtime (Unix.gettimeofday ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

(* "meta" (environment provenance) and "metrics" (registry snapshot at
   write time) fields for a BENCH_*.json; the caller is between the
   opening brace and the first payload field. *)
let write_meta oc ~jobs =
  Printf.fprintf oc
    "  \"meta\": {\"ocaml\": \"%s\", \"jobs\": %d, \"rlc_jobs_env\": %s, \
     \"recommended_domains\": %d, \"git_rev\": \"%s\", \"date\": \"%s\"},\n"
    Sys.ocaml_version jobs
    (match Sys.getenv_opt "RLC_JOBS" with
    | Some v -> Printf.sprintf "\"%s\"" (String.escaped v)
    | None -> "null")
    (Domain.recommended_domain_count ())
    (git_rev ()) (iso_date_utc ());
  Printf.fprintf oc "  \"metrics\": %s,\n" (Rlc_instr.Metrics.json_snapshot ())

type fixed_row = {
  segments : int;
  unknowns : int;
  steps : int;
  dense_s : float;
  banded_s : float;
  speedup : float;
  max_diff : float;
}

type adaptive_row = {
  a_segments : int;
  a_unknowns : int;
  accepted : int;
  rejected : int;
  factorizations : int;
  auto_s : float;
}

let ladder_spec segments =
  { Rlc_circuit.Ladder.r = 4400.0; l = 1.5e-6; c = 123.33e-12;
    length = 0.011; segments }

(* One step-driven RLC ladder, simulated to 1 ns with both fixed-step
   backends (identical trajectories, wall-clock compared) and once
   adaptively with the automatic backend. *)
let ladder_case ~segments ~steps =
  let open Rlc_circuit in
  let nl, _src, far = Ladder.driven_line (ladder_spec segments) in
  let unknowns = Netlist.node_count nl (* nodes-1 + 1 vsource *) in
  let t_end = 1e-9 in
  let dt = t_end /. float_of_int steps in
  let probes = [ Transient.Node_v far ] in
  let run backend () =
    Transient.run ~backend ~record_every:(Int.max 1 (steps / 20)) nl ~t_end
      ~dt ~probes
  in
  let rd, dense_s = wall (run Transient.Dense) in
  let rb, banded_s = wall (run Transient.Banded) in
  let vd = Transient.final_voltages rd and vb = Transient.final_voltages rb in
  let max_diff = ref 0.0 in
  Array.iteri
    (fun i v -> max_diff := Float.max !max_diff (Float.abs (v -. vb.(i))))
    vd;
  let ra, auto_s =
    wall (fun () ->
        Transient.run_adaptive ~rtol:1e-4 nl ~t_end ~dt_max:(t_end /. 64.0)
          ~probes)
  in
  ( {
      segments;
      unknowns;
      steps;
      dense_s;
      banded_s;
      speedup = dense_s /. banded_s;
      max_diff = !max_diff;
    },
    {
      a_segments = segments;
      a_unknowns = unknowns;
      accepted = Transient.steps_taken ra;
      rejected = Transient.rejected_steps ra;
      factorizations = Transient.lu_factorizations ra;
      auto_s;
    } )

let write_bench_json path (fixed, adaptive) =
  let oc = open_out path in
  let field fmt = Printf.fprintf oc fmt in
  field "{\n";
  write_meta oc ~jobs;
  field
    "  \"description\": \"Dense vs banded MNA backend on step-driven RLC \
     ladders (Transient.run, trapezoidal; adaptive rtol=1e-4, auto \
     backend). Times in seconds.\",\n";
  field "  \"fixed_step\": [\n";
  List.iteri
    (fun i (r : fixed_row) ->
      field
        "    {\"segments\": %d, \"unknowns\": %d, \"steps\": %d, \
         \"dense_s\": %.6f, \"banded_s\": %.6f, \"speedup\": %.2f, \
         \"max_abs_diff_v\": %.3e}%s\n"
        r.segments r.unknowns r.steps r.dense_s r.banded_s r.speedup
        r.max_diff
        (if i = List.length fixed - 1 then "" else ","))
    fixed;
  field "  ],\n";
  field "  \"adaptive\": [\n";
  List.iteri
    (fun i (r : adaptive_row) ->
      field
        "    {\"segments\": %d, \"unknowns\": %d, \"accepted_steps\": %d, \
         \"rejected_steps\": %d, \"lu_factorizations\": %d, \"auto_s\": \
         %.6f}%s\n"
        r.a_segments r.a_unknowns r.accepted r.rejected r.factorizations
        r.auto_s
        (if i = List.length adaptive - 1 then "" else ","))
    adaptive;
  field "  ]\n}\n";
  close_out oc

let run_ladder_scaling ~sizes ~steps ~json =
  section "Ladder scaling: dense vs banded transient backend";
  Printf.printf "%8s %9s %7s %12s %12s %9s %12s\n" "segments" "unknowns"
    "steps" "dense [s]" "banded [s]" "speedup" "max |dV|";
  (* sizes are independent cases; when several worker domains run them
     concurrently the per-case wall clocks contend, but the dense/banded
     ratio and the trajectory cross-check stay meaningful *)
  let rows =
    Rlc_parallel.Pool.map_list pool
      (fun segments -> ladder_case ~segments ~steps)
      sizes
  in
  let fixed = List.map fst rows and adaptive = List.map snd rows in
  List.iter
    (fun (r : fixed_row) ->
      Printf.printf "%8d %9d %7d %12.5f %12.5f %8.1fx %12.3e\n" r.segments
        r.unknowns r.steps r.dense_s r.banded_s r.speedup r.max_diff;
      if r.max_diff > 1e-9 then
        failwith "ladder scaling: dense and banded backends disagree")
    fixed;
  print_newline ();
  Printf.printf "%8s %9s %10s %10s %8s %12s\n" "segments" "unknowns"
    "accepted" "rejected" "LU" "auto [s]";
  List.iter
    (fun (r : adaptive_row) ->
      Printf.printf "%8d %9d %10d %10d %8d %12.5f\n" r.a_segments r.a_unknowns
        r.accepted r.rejected r.factorizations r.auto_s)
    adaptive;
  (match json with
  | Some path ->
      write_bench_json path (fixed, adaptive);
      Printf.printf "\nrecorded baseline in %s\n" path
  | None -> ());
  fixed

(* ------------------------------------------------------------------ *)
(* AC: dense-complex vs complex-banded per-frequency solves            *)
(* ------------------------------------------------------------------ *)

type ac_row = {
  ac_segments : int;
  ac_unknowns : int;
  band : int; (* kl + ku + 1 under the shared plan's RCM ordering *)
  banded_points : int;
  dense_points : int;
  dense_per_point_s : float;
  banded_per_point_s : float;
  ac_speedup : float;
  max_dev : float; (* max |H_dense - H_banded| over the dense points *)
}

(* One driven RLC ladder, swept over three decades: every frequency
   point through Assembly.solve_complex, once forced dense
   (the historical O(n^3) path) and once under the shared plan
   (complex banded in RCM order, O(n.b^2)).  The dense side only gets
   a handful of points at the larger sizes -- a single 1603-unknown
   dense complex LU costs more than the entire banded sweep. *)
let ac_case ~segments ~dense_points ~banded_points =
  let open Rlc_circuit in
  let open Rlc_numerics in
  let nl, _src, far = Ladder.driven_line (ladder_spec segments) in
  let m = Mna.of_netlist nl in
  let asm = m.Mna.asm in
  let output = Mna.output_of_node m far in
  let rhs = Array.map Cx.of_float (Assembly.b_column asm 0) in
  let freqs = Ac.decade_grid ~points_per_decade:7 ~fstart:1e7 ~fstop:1e10 in
  let dot x =
    let acc = ref Cx.zero in
    Array.iteri
      (fun i l -> if l <> 0.0 then acc := Cx.( +: ) !acc (Cx.scale l x.(i)))
      output;
    !acc
  in
  let point backend f =
    let s = Cx.make 0.0 (2.0 *. Float.pi *. f) in
    dot (Assembly.solve_complex ~backend asm ~s ~rhs)
  in
  let take k = Array.sub freqs 0 (Int.min k (Array.length freqs)) in
  let dense_fs = take dense_points and banded_fs = take banded_points in
  let hd, dense_t =
    wall (fun () -> Array.map (point Solver.Dense) dense_fs)
  in
  let hb, banded_t =
    wall (fun () -> Array.map (point Solver.Auto) banded_fs)
  in
  let max_dev = ref 0.0 in
  Array.iteri
    (fun i h -> max_dev := Float.max !max_dev (Cx.norm (Cx.( -: ) h hb.(i))))
    hd;
  let plan = asm.Assembly.plan in
  let dense_per = dense_t /. float_of_int (Array.length dense_fs) in
  let banded_per = banded_t /. float_of_int (Array.length banded_fs) in
  {
    ac_segments = segments;
    ac_unknowns = m.Mna.size;
    band = plan.Solver.kl + plan.Solver.ku + 1;
    banded_points = Array.length banded_fs;
    dense_points = Array.length dense_fs;
    dense_per_point_s = dense_per;
    banded_per_point_s = banded_per;
    ac_speedup = dense_per /. banded_per;
    max_dev = !max_dev;
  }

let write_ac_json path rows =
  let oc = open_out path in
  Printf.fprintf oc "{\n";
  write_meta oc ~jobs;
  Printf.fprintf oc
    "  \"description\": \"Per-frequency-point cost of the AC path on \
     step-driven RLC ladders (Mna.solve_s / Assembly.solve_complex, three \
     decades at 7 points/decade): dense complex LU vs the shared plan's \
     complex banded LU in RCM order. Transfer functions compared at every \
     dense-timed point; times in seconds per point.\",\n\
    \  \"points\": [\n";
  List.iteri
    (fun i (r : ac_row) ->
      Printf.fprintf oc
        "    {\"segments\": %d, \"unknowns\": %d, \"band\": %d, \
         \"dense_points\": %d, \"banded_points\": %d, \"dense_per_point_s\": \
         %.6f, \"banded_per_point_s\": %.6f, \"speedup\": %.1f, \
         \"max_abs_dev_H\": %.3e}%s\n"
        r.ac_segments r.ac_unknowns r.band r.dense_points r.banded_points
        r.dense_per_point_s r.banded_per_point_s r.ac_speedup r.max_dev
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc

let run_ac_bench ~cases ~json =
  section "AC: dense-complex vs complex-banded per-point solves";
  Printf.printf "%8s %9s %6s %14s %14s %9s %12s\n" "segments" "unknowns"
    "band" "dense [s/pt]" "banded [s/pt]" "speedup" "max |dH|";
  let rows =
    List.map
      (fun (segments, dense_points, banded_points) ->
        let r = ac_case ~segments ~dense_points ~banded_points in
        Printf.printf "%8d %9d %6d %14.6f %14.6f %8.1fx %12.3e\n" r.ac_segments
          r.ac_unknowns r.band r.dense_per_point_s r.banded_per_point_s
          r.ac_speedup r.max_dev;
        r)
      cases
  in
  List.iter
    (fun (r : ac_row) ->
      if r.max_dev > 1e-9 then
        failwith
          (Printf.sprintf
             "AC bench: dense and banded transfer functions differ by %.3e \
              at %d segments (> 1e-9)"
             r.max_dev r.ac_segments))
    rows;
  (* the algorithmic gate: at the largest size the banded path must be
     at least 10x cheaper per point than the dense complex LU *)
  (match List.rev rows with
  | (last : ac_row) :: _ when last.ac_segments >= 400 ->
      if last.ac_speedup < 10.0 then
        failwith
          (Printf.sprintf
             "AC bench: %.1fx per-point speedup at %d segments below the 10x \
              target"
             last.ac_speedup last.ac_segments)
  | _ -> ());
  (match json with
  | Some path ->
      write_ac_json path rows;
      Printf.printf "\nrecorded baseline in %s\n" path
  | None -> ());
  rows

(* ------------------------------------------------------------------ *)
(* Sparse backend: ladder-vs-grid factor matrix + sweep-reuse gates    *)
(* ------------------------------------------------------------------ *)

type sparse_row = {
  s_case : string;  (* "ladder-200", "grid-32", ... *)
  s_unknowns : int;
  s_nnz : int;
  s_choice : string;  (* what the Auto plan picked *)
  s_band : int;  (* RCM bandwidth (banded storage width) *)
  s_lu_nnz : int;  (* L+U fill of the sparse factor *)
  dense_factor_s : float;  (* < 0 when extrapolated, see below *)
  dense_extrapolated_s : float;
  banded_factor_s : float;
  sparse_analyze_s : float;
  sparse_refactor_s : float;
  s_max_dev : float;  (* solution deviation vs the best oracle *)
}

(* Real G-system of a netlist under each forced backend.  The G matrix
   alone (mesh conductances + source incidence rows) is exactly what
   the DC path factors, and it is available for ladders and grids
   alike. *)
let sparse_case ~name ~reps ~with_dense (asm : Rlc_circuit.Assembly.t) =
  let open Rlc_numerics in
  let open Rlc_circuit in
  let fill = Assembly.Coo.iter asm.Assembly.g in
  let n = asm.Assembly.size in
  let auto_plan = asm.Assembly.plan in
  let plan_of backend = Solver.plan ~backend asm.Assembly.adj in
  let banded_plan = plan_of Solver.Banded in
  let sparse_plan = plan_of Solver.Sparse in
  let b = Array.init n (fun i -> Float.sin (float_of_int (i + 1))) in
  let solve plan f = Solver.solve plan f b in
  (* sparse: fresh analysis, then value-only refactors through the
     recorded symbolic -- the per-point cost of sweeps and restamps *)
  let fs, sparse_analyze_s =
    wall_best reps (fun () -> Solver.factor sparse_plan ~fill)
  in
  let sym = Solver.symbolic_of fs in
  let _, sparse_refactor_s =
    wall_best reps (fun () -> Solver.factor_with ?symbolic:sym sparse_plan ~fill)
  in
  let fb, banded_factor_s =
    wall_best reps (fun () -> Solver.factor banded_plan ~fill)
  in
  let x_sparse = solve sparse_plan fs in
  let x_banded = solve banded_plan fb in
  let dev a bb =
    let m = ref 0.0 in
    Array.iteri (fun i v -> m := Float.max !m (Float.abs (v -. bb.(i)))) a;
    !m
  in
  let dense_factor_s, dense_extrapolated_s, max_dev =
    if with_dense then begin
      let dense_plan = plan_of Solver.Dense in
      let fd, t = wall_best reps (fun () -> Solver.factor dense_plan ~fill) in
      (t, t, dev x_sparse (solve dense_plan fd))
    end
    else (-1.0, 0.0, dev x_sparse x_banded)
  in
  let lu_nnz =
    match Rlc_instr.Metrics.gauge_value (Rlc_instr.Metrics.gauge "solver.sparse.lu_nnz") with
    | Some v -> int_of_float v
    | None -> 0
  in
  {
    s_case = name;
    s_unknowns = n;
    s_nnz = Assembly.Coo.nnz asm.Assembly.g;
    s_choice =
      (match auto_plan.Solver.choice with
      | Solver.Sparse_lu -> "sparse"
      | Solver.Banded_lu -> "banded"
      | Solver.Dense_lu -> "dense");
    s_band = banded_plan.Solver.kl + banded_plan.Solver.ku + 1;
    s_lu_nnz = lu_nnz;
    dense_factor_s;
    dense_extrapolated_s;
    banded_factor_s;
    sparse_analyze_s;
    sparse_refactor_s;
    s_max_dev = max_dev;
  }

let ladder_asm segments =
  let nl, _src, _far = Rlc_circuit.Ladder.driven_line (ladder_spec segments) in
  Rlc_circuit.Assembly.of_netlist nl

let grid_pdn size =
  Rlc_circuit.Pdn.build (Rlc_circuit.Pdn.rc_grid ~rows:size ~cols:size ())

(* one symbolic analysis for a whole AC sweep, checked through the
   instrumentation counters: the engine analyses once at the reference
   frequency, then every sweep point (the reference one included)
   replays it -- 1 analyze + points refactors, zero repivots *)
type sweep_reuse = { sweep_points : int; canalyze : int; crefactor : int; repivot : int }

let sparse_sweep_reuse pdn =
  let open Rlc_circuit in
  let points = 16 in
  let freqs =
    Ac.decade_grid ~points_per_decade:5 ~fstart:1e6 ~fstop:1e9
  in
  let freqs = Array.sub freqs 0 (Int.min points (Array.length freqs)) in
  let c_analyze = Rlc_instr.Metrics.counter "solver.sparse.canalyze" in
  let c_refactor = Rlc_instr.Metrics.counter "solver.sparse.crefactor" in
  let c_repivot = Rlc_instr.Metrics.counter "solver.sparse.repivot" in
  let v c = int_of_float (Rlc_instr.Metrics.value c) in
  let a0 = v c_analyze and r0 = v c_refactor and p0 = v c_repivot in
  let at =
    match pdn.Pdn.spec.Pdn.loads with
    | (r, c, _) :: _ -> (r, c)
    | [] -> failwith "sparse bench: PDN without a load"
  in
  ignore (Pdn.impedance pdn ~at ~freqs);
  {
    sweep_points = Array.length freqs;
    canalyze = v c_analyze - a0;
    crefactor = v c_refactor - r0;
    repivot = v c_repivot - p0;
  }

let write_sparse_json path rows (reuse : sweep_reuse) =
  let oc = open_out path in
  Printf.fprintf oc "{\n";
  write_meta oc ~jobs;
  Printf.fprintf oc
    "  \"description\": \"General sparse LU vs banded vs dense on the real \
     G-systems of RLC ladders and PDN grids (Solver.factor under forced \
     backends; seconds per factorisation, best of several). \
     dense_factor_s is -1 where the dense kernel was not run; \
     dense_extrapolated_s then scales the largest measured dense time by \
     (n'/n)^3. choice is what the Auto plan picks; sweep_reuse counts \
     symbolic reuse across one 16-point AC impedance scan.\",\n\
    \  \"cases\": [\n";
  List.iteri
    (fun i (r : sparse_row) ->
      Printf.fprintf oc
        "    {\"case\": \"%s\", \"unknowns\": %d, \"nnz\": %d, \"choice\": \
         \"%s\", \"band\": %d, \"lu_nnz\": %d, \"dense_factor_s\": %.6f, \
         \"dense_extrapolated_s\": %.6f, \"banded_factor_s\": %.6f, \
         \"sparse_analyze_s\": %.6f, \"sparse_refactor_s\": %.6f, \
         \"max_abs_dev\": %.3e}%s\n"
        r.s_case r.s_unknowns r.s_nnz r.s_choice r.s_band r.s_lu_nnz
        r.dense_factor_s r.dense_extrapolated_s r.banded_factor_s
        r.sparse_analyze_s r.sparse_refactor_s r.s_max_dev
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc
    "  ],\n\
    \  \"sweep_reuse\": {\"points\": %d, \"canalyze\": %d, \"crefactor\": \
     %d, \"repivot\": %d}\n}\n"
    reuse.sweep_points reuse.canalyze reuse.crefactor reuse.repivot;
  close_out oc

let run_sparse_bench ~gate_size ~json =
  section "Sparse LU: ladder-vs-grid backend matrix";
  (* the lu_nnz gauge and the reuse counters only move while the
     instrumentation records; restore the caller's choice after *)
  let was_recording = Rlc_instr.Control.enabled () in
  Rlc_instr.Control.set_enabled true;
  let reps = if smoke then 2 else 3 in
  let cases =
    [
      ("ladder-200", ladder_asm 200, true);
      ("ladder-800", ladder_asm 800, false);
      ("grid-24", (grid_pdn 24).Rlc_circuit.Pdn.asm, true);
      (* the dense kernel already needs seconds at n ~ 1000; the smoke
         run extrapolates from grid-24 instead of measuring it *)
      ("grid-32", (grid_pdn 32).Rlc_circuit.Pdn.asm, not smoke);
      ( Printf.sprintf "grid-%d" gate_size,
        (grid_pdn gate_size).Rlc_circuit.Pdn.asm,
        false );
    ]
  in
  Printf.printf "%12s %9s %7s %7s %6s %12s %12s %12s %12s %10s\n" "case"
    "unknowns" "choice" "band" "fill" "dense [s]" "banded [s]" "analyze [s]"
    "refactor [s]" "max dev";
  let rows =
    List.map
      (fun (name, asm, with_dense) ->
        let r = sparse_case ~name ~reps ~with_dense asm in
        Printf.printf "%12s %9d %7s %7d %6d %12.6f %12.6f %12.6f %12.6f %10.3e\n"
          r.s_case r.s_unknowns r.s_choice r.s_band r.s_lu_nnz r.dense_factor_s
          r.banded_factor_s r.sparse_analyze_s r.sparse_refactor_s r.s_max_dev;
        r)
      cases
  in
  (* fill in the cubic dense extrapolation from the largest measured
     dense factorisation *)
  let dense_ref =
    List.fold_left
      (fun acc (r : sparse_row) ->
        if r.dense_factor_s > 0.0 then Some r else acc)
      None rows
  in
  let rows =
    List.map
      (fun (r : sparse_row) ->
        if r.dense_factor_s >= 0.0 then r
        else
          match dense_ref with
          | Some d ->
              let scale =
                let q = float_of_int r.s_unknowns /. float_of_int d.s_unknowns in
                q *. q *. q
              in
              { r with dense_extrapolated_s = d.dense_factor_s *. scale }
          | None -> r)
      rows
  in
  (* gates *)
  List.iter
    (fun (r : sparse_row) ->
      if r.s_max_dev > 1e-9 then
        failwith
          (Printf.sprintf
             "sparse bench: %s deviates by %.3e from its oracle (> 1e-9)"
             r.s_case r.s_max_dev))
    rows;
  let find name = List.find (fun r -> r.s_case = name) rows in
  let grid32 = find "grid-32" in
  if grid32.s_choice <> "sparse" then
    failwith "sparse bench: Auto sends the 32x32 grid to the banded kernel";
  let ladder = find "ladder-200" in
  if ladder.s_choice <> "banded" then
    failwith "sparse bench: Auto no longer keeps ladders banded";
  let gate = find (Printf.sprintf "grid-%d" gate_size) in
  if gate.s_unknowns >= 10_000 || smoke then begin
    if gate.dense_extrapolated_s < 10.0 *. gate.sparse_analyze_s then
      failwith
        (Printf.sprintf
           "sparse bench: at %d unknowns sparse analyze (%.4f s) is not 10x \
            under the dense cost (%.4f s)"
           gate.s_unknowns gate.sparse_analyze_s gate.dense_extrapolated_s);
    if gate.banded_factor_s < 2.0 *. gate.sparse_refactor_s then
      failwith
        (Printf.sprintf
           "sparse bench: at %d unknowns sparse refactor (%.4f s) is not 2x \
            under the banded factor (%.4f s)"
           gate.s_unknowns gate.sparse_refactor_s gate.banded_factor_s)
  end;
  let reuse = sparse_sweep_reuse (grid_pdn gate_size) in
  Printf.printf
    "sweep reuse over %d points: %d analyze, %d refactor, %d repivot\n"
    reuse.sweep_points reuse.canalyze reuse.crefactor reuse.repivot;
  if
    reuse.canalyze <> 1
    || reuse.crefactor <> reuse.sweep_points
    || reuse.repivot <> 0
  then
    failwith
      (Printf.sprintf
         "sparse bench: AC sweep did not reuse one symbolic analysis \
          (analyze %d, refactor %d over %d points, repivot %d)"
         reuse.canalyze reuse.crefactor reuse.sweep_points reuse.repivot);
  Rlc_instr.Control.set_enabled was_recording;
  (match json with
  | Some path ->
      write_sparse_json path rows reuse;
      Printf.printf "\nrecorded baseline in %s\n" path
  | None -> ());
  rows

(* ------------------------------------------------------------------ *)
(* MOR: PRIMA reduced model vs full banded transient                   *)
(* ------------------------------------------------------------------ *)

type mor_row = {
  m_segments : int;
  m_unknowns : int;
  m_order : int;
  kept_poles : int;
  stable : bool;
  reduce_s : float;
  transient_s : float;
  eval_s : float;
  eval_speedup : float;
  worst_err_pct : float;
}

(* An RC-dominated global wire: the paper's r and c with a smaller
   inductance per length over a 5 cm span, driven through 100 ohm.
   Diffusive responses are what a low-order rational model captures
   tightly; a low-loss line's sharp wavefront is not an order-10
   story. *)
let mor_case ~segments ~order =
  let open Rlc_circuit in
  let nl = Netlist.create () in
  let src = Netlist.fresh_node nl in
  Netlist.add_vsource ~name:"vin" nl src Netlist.ground (Stimulus.Dc 1.0);
  let inp = Netlist.fresh_node nl in
  Netlist.add_resistor nl src inp 100.0;
  Netlist.add_capacitor nl inp Netlist.ground 15e-15;
  let far = Netlist.fresh_node nl in
  Ladder.make nl
    { Ladder.r = 4400.0; l = 0.1e-6; c = 123.33e-12; length = 0.05; segments }
    ~from_node:inp ~to_node:far;
  Netlist.add_capacitor nl far Netlist.ground 50e-15;
  let m = Mna.of_netlist nl in
  let output = Mna.output_of_node m far in
  let model, reduce_s =
    wall (fun () -> Rlc_mor.Prima.reduce ~order m ~input:0 ~output)
  in
  let t_end = 8e-9 and dt = 8e-12 in
  let probes = [ Transient.Node_v far ] in
  let r, transient_s =
    wall_best 2 (fun () ->
        Transient.run ~backend:Transient.Banded nl ~t_end ~dt ~probes)
  in
  let w = Transient.get r (Transient.Node_v far) in
  let times = Rlc_waveform.Waveform.times w in
  let values = Rlc_waveform.Waveform.values w in
  let reduced, eval_s =
    wall_best 5 (fun () -> Array.map (Rlc_mor.Prima.step_eval model) times)
  in
  (* the pooled fan-out must reproduce the serial evaluation bit for
     bit; the 50x speedup gate below stays on the serial timing so it
     is not at the mercy of domain-spawn overhead on small machines *)
  let reduced_pooled =
    Rlc_parallel.Pool.map pool (Rlc_mor.Prima.step_eval model) times
  in
  Array.iteri
    (fun i v ->
      if Int64.bits_of_float v <> Int64.bits_of_float reduced_pooled.(i) then
        failwith "MOR bench: pooled eval differs from the serial eval")
    reduced;
  let lo, hi = Rlc_numerics.Stats.min_max values in
  let worst = ref 0.0 in
  Array.iteri
    (fun i v -> worst := Float.max !worst (Float.abs (reduced.(i) -. v)))
    values;
  {
    m_segments = segments;
    m_unknowns = m.Rlc_circuit.Mna.size;
    m_order = order;
    kept_poles = Array.length model.Rlc_mor.Prima.poles;
    stable = model.Rlc_mor.Prima.stable;
    reduce_s;
    transient_s;
    eval_s;
    eval_speedup = transient_s /. eval_s;
    worst_err_pct = 100.0 *. !worst /. (hi -. lo);
  }

let write_mor_json path (r : mor_row) =
  let oc = open_out path in
  Printf.fprintf oc "{\n";
  write_meta oc ~jobs;
  Printf.fprintf oc
    "  \"description\": \"PRIMA order-%d reduced model vs full banded \
     transient on an RC-dominated %d-segment RLC ladder (5 cm, 4400 ohm/m, \
     0.1 uH/m, 123.33 pF/m, 100 ohm driver). Step response compared at \
     every transient sample; times in seconds.\",\n\
    \  \"segments\": %d,\n\
    \  \"unknowns\": %d,\n\
    \  \"order\": %d,\n\
    \  \"kept_poles\": %d,\n\
    \  \"stable\": %b,\n\
    \  \"reduce_s\": %.6f,\n\
    \  \"transient_s\": %.6f,\n\
    \  \"eval_s\": %.6f,\n\
    \  \"eval_speedup\": %.1f,\n\
    \  \"worst_err_pct_of_swing\": %.4f\n\
     }\n"
    r.m_order r.m_segments r.m_segments r.m_unknowns r.m_order r.kept_poles
    r.stable r.reduce_s r.transient_s r.eval_s r.eval_speedup r.worst_err_pct;
  close_out oc

let run_mor_bench ~json =
  section "MOR: PRIMA reduced model vs banded transient";
  let r = mor_case ~segments:800 ~order:10 in
  Printf.printf "%8s %9s %6s %6s %11s %13s %10s %9s %10s\n" "segments"
    "unknowns" "order" "poles" "reduce [s]" "transient [s]" "eval [s]"
    "speedup" "err %swing";
  Printf.printf "%8d %9d %6d %6d %11.5f %13.5f %10.5f %8.1fx %10.3f\n"
    r.m_segments r.m_unknowns r.m_order r.kept_poles r.reduce_s r.transient_s
    r.eval_s r.eval_speedup r.worst_err_pct;
  if not r.stable then failwith "MOR bench: reduced model is unstable";
  if r.worst_err_pct > 1.0 then
    failwith
      (Printf.sprintf "MOR bench: reduced step off by %.3f%% of swing (> 1%%)"
         r.worst_err_pct);
  if r.eval_speedup < 50.0 then
    failwith
      (Printf.sprintf "MOR bench: eval speedup %.1fx below the 50x target"
         r.eval_speedup);
  (match json with
  | Some path ->
      write_mor_json path r;
      Printf.printf "\nrecorded baseline in %s\n" path
  | None -> ());
  r

(* ------------------------------------------------------------------ *)
(* Instrumentation: disabled-path overhead + waveform identity gate    *)
(* ------------------------------------------------------------------ *)

type instr_row = {
  i_segments : int;
  i_steps : int;
  i_identical : bool;
  i_step_s : float; (* per-step transient time, recording off *)
  i_call_s : float; (* per-call cost of a disabled record call *)
  i_overhead_pct : float; (* calls_per_step * call_s vs step_s *)
}

(* Record calls on the fixed-step transient hot path while recording is
   disabled: the advance wrapper's recording() branch, the permuted
   solve's branch, the banded/dense solve counter and the LU-cache hit
   counter -- call it 8 per step to stay conservative. *)
let calls_per_step = 8

let write_instr_json path (r : instr_row) =
  let oc = open_out path in
  Printf.fprintf oc "{\n";
  write_meta oc ~jobs;
  Printf.fprintf oc
    "  \"description\": \"Instrumentation gate: fixed-step banded transient \
     on a step-driven RLC ladder, run with recording disabled and enabled \
     (waveforms must be bit-identical), plus the measured per-call cost of \
     a disabled record call against the per-step cost of the transient hot \
     loop. Times in seconds.\",\n";
  Printf.fprintf oc "  \"segments\": %d,\n  \"steps\": %d,\n" r.i_segments
    r.i_steps;
  Printf.fprintf oc "  \"bit_identical\": %b,\n" r.i_identical;
  Printf.fprintf oc "  \"per_step_s\": %.9f,\n" r.i_step_s;
  Printf.fprintf oc "  \"disabled_call_s\": %.3e,\n" r.i_call_s;
  Printf.fprintf oc "  \"calls_per_step\": %d,\n" calls_per_step;
  Printf.fprintf oc "  \"overhead_pct\": %.4f\n}\n" r.i_overhead_pct;
  close_out oc

(* The acceptance gate for the instrumentation layer itself: recording
   must never change the computed waveforms (bitwise), and the disabled
   record path must cost well under 2% of a transient step.  The
   overhead is estimated as measured-per-call cost x a conservative
   calls-per-step count, against the measured per-step time of the same
   loop -- machine noise inflates the step time, so the gate can only
   get easier to pass on a loaded box, never spuriously fail. *)
let run_instr_bench ~segments ~steps ~json =
  section "Instrumentation: disabled overhead + waveform identity";
  let open Rlc_circuit in
  let nl, _src, far = Ladder.driven_line (ladder_spec segments) in
  let t_end = 1e-9 in
  let dt = t_end /. float_of_int steps in
  let probes = [ Transient.Node_v far ] in
  let run () =
    Transient.run ~backend:Transient.Banded ~record_every:1 nl ~t_end ~dt
      ~probes
  in
  let was = Rlc_instr.Control.enabled () in
  Rlc_instr.Control.set_enabled false;
  let r_off, off_s = wall_best 3 run in
  Rlc_instr.Control.set_enabled true;
  let r_on, on_s = wall run in
  Rlc_instr.Control.set_enabled false;
  let probe_counter = Rlc_instr.Metrics.counter "bench.disabled_probe" in
  let calls = 10_000_000 in
  let (), loop_s =
    wall (fun () ->
        for _ = 1 to calls do
          Rlc_instr.Metrics.incr probe_counter
        done)
  in
  Rlc_instr.Control.set_enabled was;
  let values r = Rlc_waveform.Waveform.values (Transient.get r (Transient.Node_v far)) in
  let v_off = values r_off and v_on = values r_on in
  let identical =
    Array.length v_off = Array.length v_on
    && Array.for_all2
         (fun a b -> Int64.bits_of_float a = Int64.bits_of_float b)
         v_off v_on
  in
  let step_s = off_s /. float_of_int steps in
  let call_s = loop_s /. float_of_int calls in
  let overhead_pct =
    100.0 *. (float_of_int calls_per_step *. call_s) /. step_s
  in
  let row =
    {
      i_segments = segments;
      i_steps = steps;
      i_identical = identical;
      i_step_s = step_s;
      i_call_s = call_s;
      i_overhead_pct = overhead_pct;
    }
  in
  Printf.printf "%8s %7s %12s %12s %14s %13s %10s\n" "segments" "steps"
    "off [s]" "on [s]" "bit-identical" "call [ns]" "overhead";
  Printf.printf "%8d %7d %12.5f %12.5f %14s %13.2f %9.4f%%\n" segments steps
    off_s on_s
    (if identical then "yes" else "NO")
    (call_s *. 1e9) overhead_pct;
  if not identical then
    failwith
      "instr bench: waveforms differ between recording enabled and disabled";
  if overhead_pct > 2.0 then
    failwith
      (Printf.sprintf
         "instr bench: disabled-path overhead %.4f%% of a transient step \
          exceeds the 2%% budget"
         overhead_pct);
  (match json with
  | Some path ->
      write_instr_json path row;
      Printf.printf "\nrecorded baseline in %s\n" path
  | None -> ());
  row

(* ------------------------------------------------------------------ *)
(* Observability: journaling overhead + waveform identity gate         *)
(* ------------------------------------------------------------------ *)

type obs_row = {
  o_segments : int;
  o_steps : int;
  o_identical : bool;
  o_step_s : float; (* per-step transient time, journaling off *)
  o_call_s : float; (* per-call cost of a disabled Journal.record *)
  o_overhead_pct : float;
  o_events : int; (* journal events captured in the enabled pass *)
}

let write_obs_json path (r : obs_row) =
  let oc = open_out path in
  Printf.fprintf oc "{\n";
  write_meta oc ~jobs;
  Printf.fprintf oc
    "  \"description\": \"Observability gate: fixed-step banded transient \
     on a step-driven RLC ladder, run with journaling+health disabled and \
     enabled (waveforms must be bit-identical), plus the measured per-call \
     cost of a disabled Journal.record against the per-step cost of the \
     transient hot loop. Times in seconds.\",\n";
  Printf.fprintf oc "  \"segments\": %d,\n  \"steps\": %d,\n" r.o_segments
    r.o_steps;
  Printf.fprintf oc "  \"bit_identical\": %b,\n" r.o_identical;
  Printf.fprintf oc "  \"per_step_s\": %.9f,\n" r.o_step_s;
  Printf.fprintf oc "  \"disabled_call_s\": %.3e,\n" r.o_call_s;
  Printf.fprintf oc "  \"calls_per_step\": %d,\n" calls_per_step;
  Printf.fprintf oc "  \"journal_events\": %d,\n" r.o_events;
  Printf.fprintf oc "  \"overhead_pct\": %.4f\n}\n" r.o_overhead_pct;
  close_out oc

(* Acceptance gate for the journal/health layer: capturing must never
   change computed waveforms (the probes only read factorisation
   by-products), the disabled Journal.record path must cost well under
   2% of a transient step, and every captured event line must
   round-trip through the rlcstat parser. *)
let run_obs_bench ~segments ~steps ~json =
  section "Observability: disabled journal overhead + waveform identity";
  let open Rlc_circuit in
  let nl, _src, far = Ladder.driven_line (ladder_spec segments) in
  let t_end = 1e-9 in
  let dt = t_end /. float_of_int steps in
  let probes = [ Transient.Node_v far ] in
  let run () =
    Transient.run ~backend:Transient.Banded ~record_every:1 nl ~t_end ~dt
      ~probes
  in
  let was = Rlc_instr.Control.enabled () in
  Rlc_instr.Journal.stop ();
  Rlc_instr.Control.set_enabled false;
  let r_off, off_s = wall_best 3 run in
  Rlc_instr.Journal.start ();
  (* one synthetic event with every field type keeps the round-trip
     check meaningful even when all solves classify Ok (healthy solves
     journal nothing) *)
  Rlc_instr.Journal.record "bench.obs"
    [
      ("n", Rlc_instr.Journal.Int 1);
      ("x", Rlc_instr.Journal.Num 0.5);
      ("s", Rlc_instr.Journal.Str "ok");
    ];
  let r_on, on_s = wall run in
  let lines = Rlc_instr.Journal.to_lines () in
  let entries, skipped = Rlc_instr.Stat.entries_of_lines lines in
  Rlc_instr.Journal.stop ();
  Rlc_instr.Control.set_enabled false;
  let calls = 10_000_000 in
  let (), loop_s =
    wall (fun () ->
        for _ = 1 to calls do
          Rlc_instr.Journal.record "bench.obs_probe" []
        done)
  in
  Rlc_instr.Control.set_enabled was;
  let values r =
    Rlc_waveform.Waveform.values (Transient.get r (Transient.Node_v far))
  in
  let v_off = values r_off and v_on = values r_on in
  let identical =
    Array.length v_off = Array.length v_on
    && Array.for_all2
         (fun a b -> Int64.bits_of_float a = Int64.bits_of_float b)
         v_off v_on
  in
  let step_s = off_s /. float_of_int steps in
  let call_s = loop_s /. float_of_int calls in
  let overhead_pct =
    100.0 *. (float_of_int calls_per_step *. call_s) /. step_s
  in
  let row =
    {
      o_segments = segments;
      o_steps = steps;
      o_identical = identical;
      o_step_s = step_s;
      o_call_s = call_s;
      o_overhead_pct = overhead_pct;
      o_events = List.length lines;
    }
  in
  Printf.printf "%8s %7s %12s %12s %14s %13s %10s %7s\n" "segments" "steps"
    "off [s]" "on [s]" "bit-identical" "call [ns]" "overhead" "events";
  Printf.printf "%8d %7d %12.5f %12.5f %14s %13.2f %9.4f%% %7d\n" segments
    steps off_s on_s
    (if identical then "yes" else "NO")
    (call_s *. 1e9) overhead_pct row.o_events;
  if not identical then
    failwith
      "obs bench: waveforms differ between journaling enabled and disabled";
  if overhead_pct > 2.0 then
    failwith
      (Printf.sprintf
         "obs bench: disabled journal overhead %.4f%% of a transient step \
          exceeds the 2%% budget"
         overhead_pct);
  if skipped > 0 then
    failwith
      (Printf.sprintf
         "obs bench: %d journal line(s) failed to round-trip through the \
          rlcstat parser"
         skipped);
  if entries = [] then failwith "obs bench: journal round-trip lost all events";
  let rollup = Rlc_instr.Stat.rollup ~skipped entries in
  if rollup.Rlc_instr.Stat.events <> List.length entries then
    failwith "obs bench: rollup event count mismatch";
  (match json with
  | Some path ->
      write_obs_json path row;
      Printf.printf "\nrecorded baseline in %s\n" path
  | None -> ());
  row

(* ------------------------------------------------------------------ *)
(* Parallel: domain scaling + determinism on the experiment fan-outs   *)
(* ------------------------------------------------------------------ *)

type par_row = {
  p_name : string;
  p_domains : int;
  p_s : float;
  p_speedup : float;  (* vs the 1-domain run of the same workload *)
  p_identical : bool;  (* bit-identical to the 1-domain run *)
}

let sweep_signature (s : Rlc_experiments.Sweeps.sweep) =
  List.concat_map
    (fun (p : Rlc_experiments.Sweeps.point) ->
      [
        p.Rlc_experiments.Sweeps.l;
        p.Rlc_experiments.Sweeps.l_crit;
        p.Rlc_experiments.Sweeps.h_ratio;
        p.Rlc_experiments.Sweeps.k_ratio;
        p.Rlc_experiments.Sweeps.delay_ratio;
        p.Rlc_experiments.Sweeps.rc_sized_penalty;
      ])
    s.Rlc_experiments.Sweeps.points

let stats_signature (s : Rlc_core.Variation.stats) =
  [
    s.Rlc_core.Variation.mean; s.Rlc_core.Variation.stddev;
    s.Rlc_core.Variation.min; s.Rlc_core.Variation.max;
    s.Rlc_core.Variation.p95;
  ]

let write_parallel_json path rows =
  let oc = open_out path in
  Printf.fprintf oc "{\n";
  write_meta oc ~jobs;
  Printf.fprintf oc
    "  \"description\": \"Pool.map domain scaling on the Fig 4-8 inductance \
     sweep and a 512-sample Monte-Carlo (Variation.delay_statistics, fixed \
     seed). Results are asserted bit-identical across domain counts; times \
     in seconds.\",\n\
    \  \"recommended_domains\": %d,\n\
    \  \"runs\": [\n"
    (Domain.recommended_domain_count ());
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "    {\"case\": \"%s\", \"domains\": %d, \"s\": %.6f, \"speedup\": \
         %.2f, \"bit_identical\": %b}%s\n"
        r.p_name r.p_domains r.p_s r.p_speedup r.p_identical
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc

let run_parallel_bench ~json =
  section "Parallel: domain scaling (Fig 4-8 sweep + 512-sample Monte-Carlo)";
  let node = Rlc_tech.Presets.node_100nm in
  let rc = Rlc_core.Rc_opt.optimize node in
  let h = rc.Rlc_core.Rc_opt.h_opt and k = rc.Rlc_core.Rc_opt.k_opt in
  let dist = Rlc_core.Variation.default_distribution node in
  let cases =
    [
      ( "fig4-8-sweep",
        fun p ->
          sweep_signature (Rlc_experiments.Sweeps.run ~pool:p ~n:21 node) );
      ( "monte-carlo-512",
        fun p ->
          stats_signature
            (Rlc_core.Variation.delay_statistics ~pool:p ~seed:42 ~n:512 node
               ~h ~k dist) );
    ]
  in
  Printf.printf "%16s %8s %10s %9s %14s\n" "case" "domains" "wall [s]"
    "speedup" "bit-identical";
  let rows =
    List.concat_map
      (fun (name, work) ->
        let reference, base_s =
          wall (fun () -> work (Rlc_parallel.Pool.create ~domains:1 ()))
        in
        let ref_bits = List.map Int64.bits_of_float reference in
        List.map
          (fun domains ->
            let result, s =
              if domains = 1 then (reference, base_s)
              else wall (fun () -> work (Rlc_parallel.Pool.create ~domains ()))
            in
            let identical =
              List.equal Int64.equal ref_bits
                (List.map Int64.bits_of_float result)
            in
            let row =
              {
                p_name = name;
                p_domains = domains;
                p_s = s;
                p_speedup = base_s /. s;
                p_identical = identical;
              }
            in
            Printf.printf "%16s %8d %10.5f %8.2fx %14s\n" row.p_name
              row.p_domains row.p_s row.p_speedup
              (if identical then "yes" else "NO");
            row)
          [ 1; 2; 4 ])
      cases
  in
  List.iter
    (fun r ->
      if not r.p_identical then
        failwith
          (Printf.sprintf
             "parallel bench: %s at %d domains is not bit-identical to the \
              sequential run"
             r.p_name r.p_domains))
    rows;
  if Domain.recommended_domain_count () >= 4 then begin
    let worst =
      List.fold_left
        (fun acc r -> if r.p_domains = 4 then Float.min acc r.p_speedup else acc)
        infinity rows
    in
    if worst < 2.0 then
      failwith
        (Printf.sprintf
           "parallel bench: %.2fx speedup at 4 domains below the 2x target"
           worst)
  end
  else
    Printf.printf
      "\n[only %d recommended domain(s) on this machine: speedup target not \
       asserted; determinism was]\n"
      (Domain.recommended_domain_count ());
  (match json with
  | Some path ->
      write_parallel_json path rows;
      Printf.printf "\nrecorded baseline in %s\n" path
  | None -> ());
  rows

(* ------------------------------------------------------------------ *)
(* Bechamel kernel timings: one Test.make per table/figure kernel      *)
(* ------------------------------------------------------------------ *)

let bechamel_tests () =
  let open Bechamel in
  let node100 = Rlc_tech.Presets.node_100nm in
  let node250 = Rlc_tech.Presets.node_250nm in
  let stage =
    Rlc_core.Stage.of_node node100 ~l:1.5e-6 ~h:0.012 ~k:300.0
  in
  let cs = Rlc_core.Pade.coeffs stage in
  let t1 =
    Test.make ~name:"T1:rc-closed-form" (Staged.stage (fun () ->
        ignore (Rlc_core.Rc_opt.optimize node250)))
  in
  let f2 =
    Test.make ~name:"F2:step-response-eval" (Staged.stage (fun () ->
        ignore (Rlc_core.Step_response.eval cs 1e-10)))
  in
  let f4 =
    Test.make ~name:"F4:critical-inductance" (Staged.stage (fun () ->
        ignore (Rlc_core.Critical_inductance.of_stage stage)))
  in
  let f5 =
    Test.make ~name:"F5/F6:newton-optimize" (Staged.stage (fun () ->
        ignore (Rlc_core.Rlc_opt.optimize_newton_only node100 ~l:1.5e-6)))
  in
  let f7 =
    Test.make ~name:"F7:delay-solve" (Staged.stage (fun () ->
        ignore (Rlc_core.Delay.of_coeffs cs)))
  in
  let f8 =
    Test.make ~name:"F8:residual-eval" (Staged.stage (fun () ->
        ignore (Rlc_core.Rlc_opt.residuals stage)))
  in
  let ext3 =
    Test.make ~name:"EXT:third-order-delay" (Staged.stage (fun () ->
        ignore (Rlc_core.Third_order.delay_stage stage)))
  in
  let ext_exact =
    Test.make ~name:"EXT:talbot-exact-eval" (Staged.stage (fun () ->
        ignore
          (Rlc_numerics.Laplace.step_response
             (fun s -> Rlc_core.Transfer.eval stage s)
             1e-10)))
  in
  let ring_step =
    (* one short transient (200 steps) of a 1-stage buffered line *)
    Test.make ~name:"F9-F12:transient-1kstep" (Staged.stage (fun () ->
        let nl = Rlc_circuit.Netlist.create () in
        let src = Rlc_circuit.Netlist.fresh_node nl in
        let far = Rlc_circuit.Netlist.fresh_node nl in
        Rlc_circuit.Netlist.add_vsource nl src Rlc_circuit.Netlist.ground
          (Rlc_circuit.Stimulus.Dc 1.0);
        Rlc_circuit.Ladder.make nl
          { Rlc_circuit.Ladder.r = 4400.0; l = 1.5e-6; c = 123.33e-12;
            length = 0.011; segments = 10 }
          ~from_node:src ~to_node:far;
        let _ =
          Rlc_circuit.Transient.run nl ~t_end:1e-9 ~dt:1e-12
            ~probes:[ Rlc_circuit.Transient.Node_v far ]
        in
        ()))
  in
  [ t1; f2; f4; f5; f7; f8; ext3; ext_exact; ring_step ]

let run_bechamel () =
  section "Kernel timings (Bechamel)";
  let open Bechamel in
  let open Toolkit in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let tests = Test.make_grouped ~name:"kernels" ~fmt:"%s %s" (bechamel_tests ()) in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> String.compare a b) rows in
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some [ ns ] ->
          if ns >= 1e6 then Printf.printf "%-28s %10.3f ms/run\n" name (ns /. 1e6)
          else if ns >= 1e3 then
            Printf.printf "%-28s %10.3f us/run\n" name (ns /. 1e3)
          else Printf.printf "%-28s %10.1f ns/run\n" name ns
      | _ -> Printf.printf "%-28s (no estimate)\n" name)
    rows

let run_extensions () =
  section "Extensions & ablations (beyond the paper)";
  Rlc_experiments.Extensions.print_all_fast ~pool ();
  if not fast then begin
    print_newline ();
    Rlc_experiments.Extensions.print_chain ~pool ()
  end

(* ------------------------------------------------------------------ *)
(* Serving layer: compiled-deck cache, cold vs warm                    *)
(* ------------------------------------------------------------------ *)

(* The service consumes decks as text, so unlike the other benches the
   workload families are generated as netlist source: square RC grids
   (sparse plans, DC + AC queries) and W-card RLC ladders (banded
   plans, transient + delay queries).  [scale] perturbs element values
   only; every scale of one family shares a structural hash, which is
   exactly what the compiled-deck cache keys on. *)
let serve_grid_text ~scale n =
  let b = Buffer.create (n * n * 96) in
  Buffer.add_string b "* rc grid family\nV1 n_0_0 0 DC 1\n";
  for r = 0 to n - 1 do
    for c = 0 to n - 1 do
      if c + 1 < n then
        Printf.bprintf b "Rh%d_%d n_%d_%d n_%d_%d %.6g\n" r c r c r (c + 1)
          (10.0 *. scale);
      if r + 1 < n then
        Printf.bprintf b "Rv%d_%d n_%d_%d n_%d_%d %.6g\n" r c r c (r + 1) c
          (12.0 *. scale);
      Printf.bprintf b "C%d_%d n_%d_%d 0 %.6gp\n" r c r c (0.5 *. scale)
    done
  done;
  Buffer.add_string b ".end\n";
  Buffer.contents b

let serve_ladder_text ~scale segments =
  Printf.sprintf
    "* rlc ladder family\n\
     V1 in 0 PULSE(0 1 0 20p 20p 2n 4n)\n\
     W1 in far r=%.6g l=%.6gu c=%.6gp len=11m seg=%d\n\
     .end\n"
    (4400.0 *. scale) (1.5 *. scale) (123.33 *. scale) segments

let serve_job id query deck =
  Printf.sprintf "%s %s | %s" id query (Rlc_serve.Protocol.escape_deck deck)

let serve_workload ~grids ~ladders ~scales =
  let lines = ref [] in
  let add l = lines := l :: !lines in
  List.iter
    (fun n ->
      let mid = Printf.sprintf "n_%d_%d" (n / 2) (n / 2) in
      List.iteri
        (fun i scale ->
          let deck = serve_grid_text ~scale n in
          add (serve_job (Printf.sprintf "g%d-dc%d" n i)
                 (Printf.sprintf "dc %s" mid) deck);
          (* the AC sweep refactors per frequency point even when warm,
             so sweep once per family; the value variants replay the
             cheap refactor-only DC path the cache accelerates *)
          if i = 0 then
            add (serve_job (Printf.sprintf "g%d-ac%d" n i)
                   (Printf.sprintf "ac %s 1 1e6 1e9" mid) deck))
        scales)
    grids;
  List.iter
    (fun segments ->
      List.iteri
        (fun i scale ->
          let deck = serve_ladder_text ~scale segments in
          add (serve_job (Printf.sprintf "l%d-tr%d" segments i)
                 "tran far 20p 0.5n" deck);
          add (serve_job (Printf.sprintf "l%d-dl%d" segments i)
                 "delay far 0.5 20p 2n" deck);
          (* adjoint sensitivities of the two-pole delay: one forward +
             one adjoint factorisation regardless of parameter count *)
          if i = 0 then
            add (serve_job (Printf.sprintf "l%d-sn%d" segments i)
                   "delay-sens far 0.5 W1_seg0:r W1_seg0:l W1_c1:c" deck))
        scales)
    ladders;
  List.rev !lines

let write_serve_json path ~n_families ~n_jobs ~cold_s ~warm_s ~speedup
    ~identical ~(warm_stats : Rlc_serve.Deck_cache.stats) ~quantiles =
  let oc = open_out path in
  Printf.fprintf oc "{\n";
  write_meta oc ~jobs;
  Printf.fprintf oc
    "  \"description\": \"rlcserved compiled-deck cache: one job stream \
     (RC-grid DC/AC + RLC-ladder transient/delay families, value-only \
     variants within each family) replayed against a cold service and \
     again against the warm one.  Wall seconds are best-of-reps for the \
     whole stream; the warm pass reuses every plan and sparse symbolic \
     through the cache.  Gates: warm speedup >= 2x, cold and warm result \
     streams byte-identical, all warm lookups hit, latency quantiles \
     recorded.\",\n";
  Printf.fprintf oc
    "  \"workload\": {\"families\": %d, \"jobs_per_pass\": %d},\n" n_families
    n_jobs;
  Printf.fprintf oc
    "  \"passes\": {\"cold_s\": %.6f, \"warm_s\": %.6f, \"warm_speedup\": \
     %.3f, \"streams_identical\": %b},\n"
    cold_s warm_s speedup identical;
  Printf.fprintf oc
    "  \"warm_cache\": {\"hits\": %d, \"misses\": %d, \"aliases\": %d, \
     \"evictions\": %d, \"entries\": %d},\n"
    warm_stats.Rlc_serve.Deck_cache.hits warm_stats.Rlc_serve.Deck_cache.misses
    warm_stats.Rlc_serve.Deck_cache.aliases
    warm_stats.Rlc_serve.Deck_cache.evictions
    warm_stats.Rlc_serve.Deck_cache.entries;
  (match quantiles with
  | Some (p50, p90, p99) ->
      Printf.fprintf oc
        "  \"latency\": {\"p50_s\": %.6g, \"p90_s\": %.6g, \"p99_s\": %.6g}\n"
        p50 p90 p99
  | None -> Printf.fprintf oc "  \"latency\": null\n");
  Printf.fprintf oc "}\n";
  close_out oc

(* ------------------------------------------------------------------ *)
(* What-if workspace: rank-k value sweeps vs per-point refactors       *)
(* ------------------------------------------------------------------ *)

let write_whatif_json path ~grid ~unknowns ~k ~ladder_segments ~fast_points
    ~fast_s ~base_points ~base_s ~speedup ~exact_samples ~max_dev
    ~adjoint_rel ~(fast_stats : Rlc_circuit.Whatif.stats)
    ~(base_stats : Rlc_circuit.Whatif.stats) =
  let oc = open_out path in
  Printf.fprintf oc "{\n";
  write_meta oc ~jobs;
  Printf.fprintf oc
    "  \"description\": \"Whatif workspace on a PDN mesh (the sparse \
     backend's grid workload): the same stream of rank-%d resistance \
     perturbations evaluated through the Sherman-Morrison-Woodbury \
     fast path (compile once, O(k n) per point) and through a \
     max_rank:0 workspace that refactors per point.  The adjoint gate \
     takes the two-pole delay gradient of a %d-segment driven RLC \
     ladder from one forward + one adjoint solve.  Gates: fast-path \
     throughput >= 5x the refactor baseline, sampled fast-vs-refactor \
     deviation <= 1e-9, adjoint delay gradient within 1e-6 of central \
     differences, and the workspace counters match the paths taken.\",\n"
    k ladder_segments;
  Printf.fprintf oc
    "  \"workload\": {\"grid\": \"%s\", \"unknowns\": %d, \"rank_k\": %d, \
     \"adjoint_ladder_segments\": %d},\n"
    grid unknowns k ladder_segments;
  Printf.fprintf oc
    "  \"sweep\": {\"fast_points\": %d, \"fast_s\": %.6f, \
     \"fast_pts_per_s\": %.1f, \"refactor_points\": %d, \"refactor_s\": \
     %.6f, \"refactor_pts_per_s\": %.1f, \"speedup\": %.2f},\n"
    fast_points fast_s
    (float_of_int fast_points /. fast_s)
    base_points base_s
    (float_of_int base_points /. base_s)
    speedup;
  Printf.fprintf oc
    "  \"exactness\": {\"samples\": %d, \"max_abs_dev\": %.3g},\n"
    exact_samples max_dev;
  Printf.fprintf oc "  \"adjoint\": {\"max_rel_err_vs_fdiff\": %.3g},\n"
    adjoint_rel;
  Printf.fprintf oc
    "  \"counters\": {\"fast\": {\"updates\": %d, \"refactors\": %d, \
     \"fallbacks\": %d}, \"refactor_baseline\": {\"updates\": %d, \
     \"refactors\": %d, \"fallbacks\": %d}}\n"
    fast_stats.Rlc_circuit.Whatif.updates
    fast_stats.Rlc_circuit.Whatif.refactors
    fast_stats.Rlc_circuit.Whatif.fallbacks
    base_stats.Rlc_circuit.Whatif.updates
    base_stats.Rlc_circuit.Whatif.refactors
    base_stats.Rlc_circuit.Whatif.fallbacks;
  Printf.fprintf oc "}\n";
  close_out oc

let run_whatif_bench ~json =
  section "What-if workspace: rank-k updates vs per-point refactors";
  let was_recording = Rlc_instr.Control.enabled () in
  Rlc_instr.Control.set_enabled true;
  let module Whatif = Rlc_circuit.Whatif in
  (* the sweep fixture is the sparse backend's grid workload: mesh
     refactors cost real time there, which is exactly what the rank-k
     fast path amortises *)
  let n_grid = if smoke then 24 else 40 in
  let fast_points = 10_000 in
  let base_points = if smoke then 1_000 else 10_000 in
  let pdn = Rlc_circuit.Pdn.build (Rlc_circuit.Pdn.rc_grid ~rows:n_grid ~cols:n_grid ()) in
  let netlist = pdn.Rlc_circuit.Pdn.netlist in
  let ws = Whatif.compile netlist in
  let ws0 = Whatif.compile ~max_rank:0 netlist in
  let target =
    Whatif.Dc_voltage
      (Rlc_circuit.Pdn.node pdn ~row:(n_grid / 2) ~col:(n_grid / 2))
  in
  let pname i = Printf.sprintf "rh%d_%d" i i in
  let picks = [| n_grid / 5; n_grid / 2; 4 * n_grid / 5 |] in
  let k = Array.length picks in
  let fparams = Array.map (fun i -> Whatif.param ws (pname i) `R) picks in
  let bparams = Array.map (fun i -> Whatif.param ws0 (pname i) `R) picks in
  let st = Random.State.make [| 2001 |] in
  let pts =
    Array.init fast_points (fun _ ->
        Array.init k (fun j ->
            Whatif.base_value fparams.(j)
            *. (0.7 +. (0.6 *. Random.State.float st 1.0))))
  in
  let set_of ps vs = List.init k (fun j -> (ps.(j), vs.(j))) in
  (* exactness: the fast path against the per-point refactor on a
     spread of the sweep's own points, before the timed passes *)
  let exact_samples = 200 in
  let stride = fast_points / exact_samples in
  let max_dev = ref 0.0 in
  for i = 0 to exact_samples - 1 do
    let vs = pts.(i * stride) in
    let a = Whatif.evaluate ~set:(set_of fparams vs) ws target in
    let b = Whatif.evaluate ~set:(set_of bparams vs) ws0 target in
    if Float.is_nan a || Float.is_nan b then
      failwith "whatif bench: nan evaluation";
    let d = Float.abs (a -. b) in
    if d > !max_dev then max_dev := d
  done;
  let s_f0 = Whatif.stats ws and s_b0 = Whatif.stats ws0 in
  let acc = ref 0.0 in
  let _, fast_s =
    wall (fun () ->
        Array.iter
          (fun vs ->
            acc := !acc +. Whatif.evaluate ~set:(set_of fparams vs) ws target)
          pts)
  in
  let _, base_s =
    wall (fun () ->
        for i = 0 to base_points - 1 do
          acc :=
            !acc +. Whatif.evaluate ~set:(set_of bparams pts.(i)) ws0 target
        done)
  in
  if not (Float.is_finite !acc) then
    failwith "whatif bench: non-finite sweep accumulator";
  let diff (a : Whatif.stats) (b : Whatif.stats) =
    { Whatif.updates = a.Whatif.updates - b.Whatif.updates;
      refactors = a.Whatif.refactors - b.Whatif.refactors;
      fallbacks = a.Whatif.fallbacks - b.Whatif.fallbacks }
  in
  let fast_stats = diff (Whatif.stats ws) s_f0 in
  let base_stats = diff (Whatif.stats ws0) s_b0 in
  let fast_pps = float_of_int fast_points /. fast_s in
  let base_pps = float_of_int base_points /. base_s in
  let speedup = fast_pps /. base_pps in
  (* the whole delay gradient of a driven line from one forward + one
     adjoint solve, cross-checked against relative-step central
     differences *)
  let ladder_segments = if smoke then 80 else 150 in
  let lnl, _, far =
    Rlc_circuit.Ladder.driven_line (ladder_spec ladder_segments)
  in
  let lws = Whatif.compile lnl in
  let wrt =
    [| Whatif.param lws
         (Printf.sprintf "line_seg%d" (ladder_segments / 5)) `R;
       Whatif.param lws
         (Printf.sprintf "line_seg%d" (ladder_segments / 2)) `L;
       Whatif.param lws (Printf.sprintf "line_c%d" (ladder_segments / 2)) `C
    |]
  in
  let delay_t = Whatif.Delay far in
  let adj =
    Rlc_core.Sensitivity.gradient ~method_:`Adjoint lws delay_t ~wrt
  in
  let fdm =
    Rlc_core.Sensitivity.gradient ~method_:`Fdiff lws delay_t ~wrt
  in
  let adjoint_rel = ref 0.0 in
  Array.iteri
    (fun i a ->
      let f = fdm.(i) in
      if Float.is_nan a || Float.is_nan f then
        failwith "whatif bench: nan gradient";
      let rel = Float.abs (a -. f) /. Float.max (Float.abs f) 1e-300 in
      if rel > !adjoint_rel then adjoint_rel := rel)
    adj;
  let unknowns = (Whatif.assembly ws).Rlc_circuit.Assembly.size in
  Printf.printf
    "%dx%d PDN mesh (%d unknowns), rank-%d value points: fast %d pts in \
     %.4f s (%.0f/s), refactor %d pts in %.4f s (%.0f/s) -- %.1fx\n"
    n_grid n_grid unknowns k fast_points fast_s fast_pps base_points base_s
    base_pps speedup;
  Printf.printf
    "exactness: max |fast - refactor| = %.3g over %d samples; adjoint vs \
     fdiff: %.3g rel\n"
    !max_dev exact_samples !adjoint_rel;
  (* gates *)
  if speedup < 5.0 then
    failwith
      (Printf.sprintf
         "whatif bench: fast path only %.2fx the refactor baseline (gate: \
          5x)"
         speedup);
  if !max_dev > 1e-9 then
    failwith
      (Printf.sprintf "whatif bench: fast path deviates %.3g (gate: 1e-9)"
         !max_dev);
  if !adjoint_rel > 1e-6 then
    failwith
      (Printf.sprintf
         "whatif bench: adjoint gradient off by %.3g rel vs fdiff (gate: \
          1e-6)"
         !adjoint_rel);
  if fast_stats.Whatif.updates <> fast_points
     || fast_stats.Whatif.refactors <> 0
     || fast_stats.Whatif.fallbacks <> 0
  then
    failwith
      (Printf.sprintf
         "whatif bench: fast sweep counters off (updates %d, refactors %d, \
          fallbacks %d)"
         fast_stats.Whatif.updates fast_stats.Whatif.refactors
         fast_stats.Whatif.fallbacks);
  if base_stats.Whatif.refactors <> base_points
     || base_stats.Whatif.updates <> 0
     || base_stats.Whatif.fallbacks <> 0
  then
    failwith
      (Printf.sprintf
         "whatif bench: baseline counters off (updates %d, refactors %d, \
          fallbacks %d)"
         base_stats.Whatif.updates base_stats.Whatif.refactors
         base_stats.Whatif.fallbacks);
  Rlc_instr.Control.set_enabled was_recording;
  match json with
  | Some path ->
      write_whatif_json path
        ~grid:(Printf.sprintf "%dx%d" n_grid n_grid)
        ~unknowns ~k ~ladder_segments ~fast_points ~fast_s ~base_points
        ~base_s ~speedup ~exact_samples ~max_dev:!max_dev
        ~adjoint_rel:!adjoint_rel ~fast_stats ~base_stats;
      Printf.printf "\nrecorded baseline in %s\n" path
  | None -> ()

let run_serve_bench ~json =
  section "Serving layer: compiled-deck cache cold vs warm";
  let was_recording = Rlc_instr.Control.enabled () in
  Rlc_instr.Control.set_enabled true;
  let module Service = Rlc_serve.Service in
  let grids = if smoke then [ 32; 48 ] else [ 32; 40; 48 ] in
  let ladders = if smoke then [ 100 ] else [ 200; 400 ] in
  let scales = [ 1.0; 0.92 ] in
  let n_families = List.length grids + List.length ladders in
  let lines = serve_workload ~grids ~ladders ~scales in
  let n_jobs = List.length lines in
  let config = { Service.default_config with pool; batch_size = n_jobs } in
  let reps = 3 in
  (* cold: a fresh service per rep (first sight of every family pays
     plan + validation + symbolic analysis); keep the fastest rep's
     service for the warm passes *)
  let svc = ref (Service.create ~config ()) in
  let cold_results = ref [] and cold_s = ref infinity in
  for _ = 1 to reps do
    let s = Service.create ~config () in
    let r, t = wall (fun () -> Service.process_lines s lines) in
    cold_results := r;
    if t < !cold_s then cold_s := t;
    svc := s
  done;
  let hits_before = (Service.cache_stats !svc).Rlc_serve.Deck_cache.hits in
  let warm_results = ref [] and warm_s = ref infinity in
  for _ = 1 to reps do
    let r, t = wall (fun () -> Service.process_lines !svc lines) in
    warm_results := r;
    if t < !warm_s then warm_s := t
  done;
  let warm_stats = Service.cache_stats !svc in
  let speedup = !cold_s /. !warm_s in
  let identical = List.equal String.equal !cold_results !warm_results in
  let quantiles =
    match
      Rlc_instr.Metrics.hist_quantiles
        (Rlc_instr.Metrics.hist "serve.job_s")
        [| 0.5; 0.9; 0.99 |]
    with
    | Some [| p50; p90; p99 |] -> Some (p50, p90, p99)
    | Some _ | None -> None
  in
  Printf.printf
    "%d families, %d jobs/pass: cold %.4f s, warm %.4f s (%.2fx), streams \
     %s\n"
    n_families n_jobs !cold_s !warm_s speedup
    (if identical then "identical" else "DIFFER");
  (match quantiles with
  | Some (p50, p90, p99) ->
      Printf.printf "job latency: p50 <= %.3g s, p90 <= %.3g s, p99 <= %.3g s\n"
        p50 p90 p99
  | None -> ());
  (* gates *)
  List.iter
    (fun l ->
      if String.length l < 3 || String.sub l 0 3 <> "ok " then
        failwith ("serve bench: job failed: " ^ l))
    !cold_results;
  if not identical then
    failwith "serve bench: warm result stream differs from the cold one";
  if speedup < 2.0 then
    failwith
      (Printf.sprintf
         "serve bench: warm pass only %.2fx faster than cold (gate: 2x)"
         speedup);
  let warm_hits = warm_stats.Rlc_serve.Deck_cache.hits - hits_before in
  if warm_hits <> reps * n_jobs then
    failwith
      (Printf.sprintf
         "serve bench: warm passes should hit on every job (%d hits over \
          %d jobs)"
         warm_hits (reps * n_jobs));
  if quantiles = None then
    failwith "serve bench: no p50/p99 job latency recorded";
  Rlc_instr.Control.set_enabled was_recording;
  (match json with
  | Some path ->
      write_serve_json path ~n_families ~n_jobs ~cold_s:!cold_s
        ~warm_s:!warm_s ~speedup ~identical ~warm_stats ~quantiles;
      Printf.printf "\nrecorded baseline in %s\n" path
  | None -> ())

let () =
  if smoke then begin
    (* tiny, fast (<~2 s) cross-check of the backend-selection machinery
       and the parallel pool's determinism; wired into `dune runtest` /
       `make bench-smoke` *)
    let rows = run_ladder_scaling ~sizes:[ 10; 24 ] ~steps:200 ~json:None in
    if List.exists (fun r -> r.max_diff > 1e-9) rows then exit 1;
    (* small sizes, no JSON: the recorded BENCH_ac.json baseline comes
       from the full run's 100/400/800-segment cases *)
    ignore (run_ac_bench ~cases:[ (24, 8, 8); (64, 8, 8) ] ~json:None);
    ignore (run_sparse_bench ~gate_size:100 ~json:(Some "BENCH_sparse.json"));
    ignore (run_mor_bench ~json:(Some "BENCH_mor.json"));
    ignore
      (run_instr_bench ~segments:200 ~steps:400
         ~json:(Some "BENCH_instr.json"));
    ignore
      (run_obs_bench ~segments:200 ~steps:400 ~json:(Some "BENCH_obs.json"));
    ignore (run_parallel_bench ~json:(Some "BENCH_parallel.json"));
    run_whatif_bench ~json:(Some "BENCH_whatif.json");
    run_serve_bench ~json:(Some "BENCH_serve.json");
    print_endline "\nbench smoke OK"
  end
  else begin
    Printf.printf
      "RLC interconnect performance-optimization reproduction -- benchmark \
       harness (%d worker domain%s)\n"
      jobs
      (if jobs = 1 then "" else "s");
    run_table1 ();
    run_fig2 ();
    run_sweep_figs ();
    if not fast then begin
      run_ring_waveforms ();
      run_ring_sweeps ()
    end
    else print_endline "\n[--fast: skipping transient ring experiments]";
    ignore
      (run_ladder_scaling ~sizes:[ 50; 200; 800 ] ~steps:1000
         ~json:(Some "BENCH_transient.json"));
    ignore
      (run_ac_bench
         ~cases:[ (100, 6, 22); (400, 3, 22); (800, 1, 22) ]
         ~json:(Some "BENCH_ac.json"));
    ignore (run_sparse_bench ~gate_size:100 ~json:(Some "BENCH_sparse.json"));
    ignore (run_mor_bench ~json:(Some "BENCH_mor.json"));
    ignore
      (run_instr_bench ~segments:800 ~steps:1000
         ~json:(Some "BENCH_instr.json"));
    ignore
      (run_obs_bench ~segments:800 ~steps:1000 ~json:(Some "BENCH_obs.json"));
    ignore (run_parallel_bench ~json:(Some "BENCH_parallel.json"));
    run_whatif_bench ~json:(Some "BENCH_whatif.json");
    run_serve_bench ~json:(Some "BENCH_serve.json");
    run_extensions ();
    if not no_bechamel then run_bechamel ()
  end
