(* Clock distribution: inductance uncertainty as a skew mechanism.

   A balanced H-tree nominally delivers the clock with zero skew.  The
   paper's observation that the current return path -- and so the
   inductance -- of identical wires depends on what happens around them
   means the two halves of a real tree never match.  This example
   quantifies the skew that a return-path asymmetry creates, and shows
   a buffered tree (RLC-aware van Ginneken) absorbing most of it.

   Run with:  dune exec examples/clock_tree.exe *)

let node = Rlc_tech.Presets.node_100nm
let line = Rlc_core.Line.of_node node ~l:1.5e-6
let sink_cap = node.Rlc_tech.Node.driver.Rlc_tech.Driver.c0 *. 500.0
let driver_rs = node.Rlc_tech.Node.driver.Rlc_tech.Driver.rs /. 500.0

let bump dl w =
  {
    w with
    Rlc_tree.Tree.l =
      w.Rlc_tree.Tree.l +. (dl *. w.Rlc_tree.Tree.r /. node.Rlc_tech.Node.r);
  }

let () =
  let tree =
    Rlc_tree.Htree.build ~levels:4 ~total_span:0.02 ~line ~sink_cap
  in
  Printf.printf "16-sink H-tree over 20 mm; nominal sink delay %.0f ps\n"
    (match Rlc_tree.Htree.sink_delays ~driver_rs tree with
    | (_, d) :: _ -> d *. 1e12
    | [] -> nan);
  Printf.printf "balanced skew: %.2f ps (zero by construction)\n\n"
    (Rlc_tree.Htree.skew ~driver_rs tree *. 1e12);

  print_endline "Skew from an inductance asymmetry on one half of the tree:";
  List.iter
    (fun dl_nh ->
      let skewed =
        Rlc_tree.Htree.imbalance_first_branch (bump (dl_nh *. 1e-6)) tree
      in
      Printf.printf "  dl = %.1f nH/mm -> skew %.0f ps\n" dl_nh
        (Rlc_tree.Htree.skew ~driver_rs skewed *. 1e12))
    [ 0.5; 1.0; 2.0; 3.0 ];

  (* buffering the tree re-times each branch locally, absorbing most of
     the accumulated asymmetry *)
  let dl = 2e-6 in
  let skewed_tree =
    Rlc_tree.Htree.imbalance_first_branch (bump dl) tree
    |> Rlc_tree.Tree.segment_edges
         ~max_segment:(Rlc_tree.Tree.wire_of_line line ~length:0.003)
  in
  let driver = node.Rlc_tech.Node.driver in
  let plan =
    Rlc_tree.Buffering.insert ~driver ~root_k:500.0 skewed_tree
  in
  Printf.printf
    "\nBuffered (van Ginneken, %d buffers): worst sink delay %.0f ps vs\n\
     unbuffered %.0f ps on the skewed tree -- local re-buffering also\n\
     shortens every branch's exposure to the uncertain inductance.\n"
    (List.length plan.Rlc_tree.Buffering.buffers)
    (plan.Rlc_tree.Buffering.worst_delay *. 1e12)
    (plan.Rlc_tree.Buffering.unbuffered_delay *. 1e12)
