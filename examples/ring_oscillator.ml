(* Ring-oscillator false-switching study (Section 3.3.1 of the paper).

   Five inverters, each driving a distributed RLC line, form a ring.
   As the line inductance grows, the undershoot at the inverter inputs
   deepens until it crosses the switching threshold and spurious
   transitions start to circulate: the oscillation period collapses.
   This example scans the inductance, reports the period, and locates
   the false-switching onset for both technology nodes.

   Run with:  dune exec examples/ring_oscillator.exe
   (transient simulation: takes a minute or two)                      *)

let scan node =
  Printf.printf "--- %s node (vdd = %.1f V, threshold %.2f V) ---\n%!"
    node.Rlc_tech.Node.name node.Rlc_tech.Node.vdd
    (Rlc_tech.Node.switching_threshold node);
  let l_values = List.init 11 (fun i -> float_of_int i *. 0.5e-6) in
  let results =
    Rlc_ringosc.Analysis.period_sweep ~segments:10 node ~l_values
  in
  (* the period grows with l before collapsing: detect the collapse
     against the running maximum of the healthy periods *)
  let running_max = ref nan in
  let onset = ref None in
  List.iter
    (fun (l, m) ->
      let fs =
        (not (Float.is_nan !running_max))
        && Rlc_ringosc.Analysis.false_switching ~baseline_period:!running_max m
      in
      (match m.Rlc_ringosc.Analysis.period with
      | Some p when not fs ->
          running_max :=
            (if Float.is_nan !running_max then p else Float.max !running_max p)
      | Some _ | None -> ());
      if fs && !onset = None then onset := Some l;
      Printf.printf "  l = %.1f nH/mm: period = %-9s undershoot = %.2f V%s\n%!"
        (l *. 1e6)
        (match m.Rlc_ringosc.Analysis.period with
        | Some p -> Printf.sprintf "%.3f ns" (p *. 1e9)
        | None -> "none")
        m.Rlc_ringosc.Analysis.input_undershoot
        (if fs then "  <-- FALSE SWITCHING" else ""))
    results;
  (match !onset with
  | Some l ->
      Printf.printf "  => false-switching onset near %.1f nH/mm\n" (l *. 1e6)
  | None ->
      Printf.printf "  => no false switching in 0..5 nH/mm\n");
  print_newline ()

let () =
  print_endline "Five-stage ring oscillator vs line inductance";
  print_endline "=============================================";
  scan Rlc_tech.Presets.node_100nm;
  scan Rlc_tech.Presets.node_250nm;
  print_endline
    "The 100 nm design fails at a practical inductance while the 250 nm\n\
     design survives the whole range -- the paper's Section 3.3.1 claim."
