(* Buffering a branching global net.

   The paper sizes repeaters for point-to-point lines; real global nets
   branch.  This example routes a 3-sink net at the 100 nm node, paints
   the uncertain line inductance on, and runs the RLC-aware van
   Ginneken inserter — then shows what planning with an RC-only model
   would have cost on the same inductive net.

   Run with:  dune exec examples/tree_buffering.exe *)

let node = Rlc_tech.Presets.node_100nm
let driver = node.Rlc_tech.Node.driver

let build_net ~l =
  let line = Rlc_core.Line.of_node node ~l in
  let w len = Rlc_tree.Tree.wire_of_line line ~length:len in
  let c0 = driver.Rlc_tech.Driver.c0 in
  Rlc_tree.Tree.node ~name:"drv"
    [
      ( w 0.012,
        Rlc_tree.Tree.node ~name:"t1"
          [
            (w 0.007, Rlc_tree.Tree.sink ~name:"cpu" ~cap:(c0 *. 500.0));
            ( w 0.010,
              Rlc_tree.Tree.node ~name:"t2"
                [
                  (w 0.005, Rlc_tree.Tree.sink ~name:"cache" ~cap:(c0 *. 250.0));
                  (w 0.008, Rlc_tree.Tree.sink ~name:"io" ~cap:(c0 *. 350.0));
                ] );
          ] );
    ]
  (* candidate buffer sites every ~2.5 mm *)
  |> Rlc_tree.Tree.segment_edges
       ~max_segment:(Rlc_tree.Tree.wire_of_line line ~length:0.0025)

let () =
  let l = Rlc_tech.Units.nh_per_mm 2.0 in
  let net = build_net ~l in
  Printf.printf "Net: %d edges after segmentation, %.1f mm of wire, %d sinks\n"
    (Rlc_tree.Tree.size net)
    (match Rlc_tree.Tree.total_wire net with
    | Some w -> w.Rlc_tree.Tree.r /. node.Rlc_tech.Node.r *. 1e3
    | None -> 0.0)
    (List.length (Rlc_tree.Tree.sinks net));

  (* per-sink picture before buffering *)
  let sms = Rlc_tree.Moments.compute ~driver_rs:(driver.Rlc_tech.Driver.rs /. 500.0) net in
  print_endline "\nUnbuffered sink delays (two-pole model on tree moments):";
  List.iter
    (fun sm ->
      Printf.printf "  %-6s Elmore %.0f ps, 50%% delay %.0f ps\n"
        sm.Rlc_tree.Moments.name
        (sm.Rlc_tree.Moments.b1 *. 1e12)
        (Rlc_tree.Moments.sink_delay sm *. 1e12))
    sms;

  (* RLC-aware insertion *)
  let plan = Rlc_tree.Buffering.insert ~driver ~root_k:500.0 net in
  Printf.printf
    "\nRLC-aware van Ginneken: %.0f ps -> %.0f ps with %d buffers\n"
    (plan.Rlc_tree.Buffering.unbuffered_delay *. 1e12)
    (plan.Rlc_tree.Buffering.worst_delay *. 1e12)
    (List.length plan.Rlc_tree.Buffering.buffers);
  List.iter
    (fun (site, k) -> Printf.printf "  k = %3.0f at %s\n" k site)
    plan.Rlc_tree.Buffering.buffers;

  (* what an inductance-blind plan costs on this net *)
  let rc_plan =
    Rlc_tree.Buffering.insert ~driver ~root_k:500.0 (build_net ~l:0.0)
  in
  let rc_cost =
    Rlc_tree.Buffering.evaluate ~driver ~root_k:500.0
      ~buffers:rc_plan.Rlc_tree.Buffering.buffers net
  in
  Printf.printf
    "\nRC-planned buffers evaluated on the inductive net: %.0f ps (%.0f%% worse)\n"
    (rc_cost *. 1e12)
    ((rc_cost /. plan.Rlc_tree.Buffering.worst_delay -. 1.0) *. 100.0)
