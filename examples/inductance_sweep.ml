(* Inductance uncertainty study.

   On-chip inductance is not a design constant: it depends on where the
   return current flows, which varies with the switching pattern of
   neighbouring wires (Section 1.1 of the paper).  A designer therefore
   needs to know how the optimal repeater insertion and the achievable
   delay move across the whole plausible range of l — and how much is
   lost by sizing for the wrong l.

   Run with:  dune exec examples/inductance_sweep.exe *)

let () =
  let node = Rlc_tech.Presets.node_100nm in

  (* Bound the plausible inductance range from the wire geometry. *)
  let g = node.Rlc_tech.Node.geometry in
  let rc = Rlc_core.Rc_opt.optimize node in
  let l_min = Rlc_extraction.Inductance.microstrip_loop g in
  let l_max =
    Rlc_extraction.Inductance.worst_case g ~length:rc.Rlc_core.Rc_opt.h_opt
  in
  Printf.printf
    "Geometry-derived inductance range: %.3f .. %.3f nH/mm (paper sweeps 0..5)\n\n"
    (l_min *. 1e6) (l_max *. 1e6);

  (* Optimal sizing across the range. *)
  let table =
    Rlc_report.Table.create ~title:"Optimal sizing vs line inductance (100nm)"
      ~columns:
        [ "l (nH/mm)"; "h* (mm)"; "k*"; "tau/h (ps/mm)"; "worst-if-sized-here" ]
  in
  let ls = List.init 11 (fun i -> float_of_int i *. 0.5e-6) in
  let opts = List.map (fun l -> (l, Rlc_core.Rlc_opt.optimize node ~l)) ls in
  (* "worst-if-sized-here": fix (h,k) at this l's optimum, then find the
     worst delay ratio across all other l values — the robustness
     question Section 3.2 raises. *)
  let penalty_of ~h ~k =
    List.fold_left
      (fun acc (l', opt') ->
        let stage = Rlc_core.Stage.of_node node ~l:l' ~h ~k in
        let dpl = Rlc_core.Delay.per_unit_length stage in
        Float.max acc (dpl /. opt'.Rlc_core.Rlc_opt.delay_per_length))
      1.0 opts
  in
  List.iter
    (fun (l, opt) ->
      let h = opt.Rlc_core.Rlc_opt.h and k = opt.Rlc_core.Rlc_opt.k in
      Rlc_report.Table.add_row table
        [
          Printf.sprintf "%.1f" (l *. 1e6);
          Printf.sprintf "%.2f" (h *. 1e3);
          Printf.sprintf "%.0f" k;
          Printf.sprintf "%.2f" (opt.Rlc_core.Rlc_opt.delay_per_length *. 1e9);
          Printf.sprintf "%.3f" (penalty_of ~h ~k);
        ])
    opts;
  Rlc_report.Table.print table;

  (* Which l should a robust design assume?  Print the minimax choice. *)
  let best =
    List.fold_left
      (fun (best_l, best_p) (l, opt) ->
        let p =
          penalty_of ~h:opt.Rlc_core.Rlc_opt.h ~k:opt.Rlc_core.Rlc_opt.k
        in
        if p < best_p then (l, p) else (best_l, best_p))
      (nan, infinity) opts
  in
  Printf.printf
    "\nMinimax design point: size for l = %.1f nH/mm (worst-case penalty %.1f%%\n\
     across the whole range) rather than for l = 0 (penalty %.1f%%).\n"
    (fst best *. 1e6)
    ((snd best -. 1.0) *. 100.0)
    ((penalty_of
        ~h:(List.assoc 0.0 (List.map (fun (l, o) -> (l, o.Rlc_core.Rlc_opt.h)) opts))
        ~k:(List.assoc 0.0 (List.map (fun (l, o) -> (l, o.Rlc_core.Rlc_opt.k)) opts))
     -. 1.0)
    *. 100.0)
