(* Bus design: how wide can the switching-delay window get, and what a
   shield track buys.

   Section 1.1 of the paper argues that neighbour switching makes the
   effective capacitance vary up to 4x and the inductance even more.
   Here both statements are computed for an N-line bus via its analytic
   propagation modes, and the classic fix — grounded shield tracks —
   is priced against plain spacing at the same area cost.

   Run with:  dune exec examples/bus_shielding.exe *)

let () =
  let node = Rlc_tech.Presets.node_100nm in
  let rc = Rlc_core.Rc_opt.optimize node in
  let h = rc.Rlc_core.Rc_opt.h_opt and k = rc.Rlc_core.Rc_opt.k_opt in
  let driver = node.Rlc_tech.Node.driver in
  let pair =
    Rlc_core.Coupled.of_geometry node.Rlc_tech.Node.geometry ~l_self:1.5e-6
      ~length:h
  in

  print_endline "Delay window and victim noise vs bus width:";
  List.iter
    (fun n ->
      let bus = Rlc_core.Bus.of_coupled ~n pair in
      let lo, hi = Rlc_core.Bus.delay_envelope bus ~driver ~h ~k in
      let cmin, cmax = Rlc_core.Bus.miller_capacitance_range bus in
      Printf.printf
        "  %2d lines: delay %.0f..%.0f ps (window %.0f%%), modal c range %.2fx, victim noise %.0f%%\n"
        n (lo *. 1e12) (hi *. 1e12)
        ((hi -. lo) /. lo *. 100.0)
        (cmax /. cmin)
        (Rlc_core.Bus.victim_noise_peak bus ~driver ~h ~k *. 100.0))
    [ 2; 4; 8; 16 ];
  Printf.printf
    "  -> the modal capacitance range approaches the paper's '4x' bound\n\n";

  print_endline "Spending one extra track per signal (same area for both):";
  List.iter
    (fun r ->
      Printf.printf
        "  %-9s c=%3.0f pF/m  l=%.2f nH/mm  delay %.0f ps  window %3.0f%%  noise %4.1f%%\n"
        (Format.asprintf "%a" Rlc_core.Shielding.pp_layout
           r.Rlc_core.Shielding.layout)
        (r.Rlc_core.Shielding.c_eff *. 1e12)
        (r.Rlc_core.Shielding.l_eff *. 1e6)
        (r.Rlc_core.Shielding.nominal_delay *. 1e12)
        (r.Rlc_core.Shielding.delay_spread *. 100.0)
        (r.Rlc_core.Shielding.victim_noise *. 100.0))
    (Rlc_core.Shielding.analyze node ~h ~k);
  print_endline
    "\nShields win on every axis: they pin the return path (collapsing the\n\
     inductance and its uncertainty) while spacing only dilutes the\n\
     capacitive coupling -- and removing capacitive coupling alone makes\n\
     far-end noise WORSE by undoing the inductive/capacitive cancellation."
