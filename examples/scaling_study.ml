(* Technology-scaling study (Section 3.1 of the paper).

   Why do inductance effects get worse as CMOS scales, even though the
   wires themselves barely change?  The paper's answer: the driver's
   capacitance and output resistance shrink.  This example reproduces
   that argument quantitatively, including the dielectric ablation
   (giving the 100 nm node the 250 nm wire capacitance) which shows the
   wire is not the culprit.

   Run with:  dune exec examples/scaling_study.exe *)

let describe node =
  let d = node.Rlc_tech.Node.driver in
  let rc = Rlc_core.Rc_opt.optimize node in
  Printf.printf
    "%-12s rs = %6.3f kohm  c0+cp = %5.2f fF  intrinsic rc = %5.1f ps  tau_optRC = %6.1f ps\n"
    node.Rlc_tech.Node.name
    (d.Rlc_tech.Driver.rs /. 1e3)
    ((d.Rlc_tech.Driver.c0 +. d.Rlc_tech.Driver.cp) *. 1e15)
    (Rlc_tech.Driver.intrinsic_delay d *. 1e12)
    (rc.Rlc_core.Rc_opt.tau_opt *. 1e12)

let delay_blowup node =
  let at l = (Rlc_core.Rlc_opt.optimize node ~l).Rlc_core.Rlc_opt.delay_per_length in
  at node.Rlc_tech.Node.l_max /. at 0.0

let () =
  print_endline "Driver scaling between the nodes:";
  describe Rlc_tech.Presets.node_250nm;
  describe Rlc_tech.Presets.node_100nm;

  print_endline "\nDelay-per-length blow-up over l in [0, 5] nH/mm:";
  List.iter
    (fun node ->
      Printf.printf "  %-12s %.2fx\n" node.Rlc_tech.Node.name
        (delay_blowup node))
    [
      Rlc_tech.Presets.node_250nm;
      Rlc_tech.Presets.node_100nm;
      Rlc_tech.Presets.node_100nm_250nm_dielectric;
    ];

  print_endline
    "\nThe ablation ('100nm-c250': 100 nm drivers with 250 nm wire\n\
     capacitance) blows up exactly like the true 100 nm node: in this\n\
     model the ratio is provably invariant to the wire capacitance\n\
     (b1, b2 are invariant under c -> a*c, h -> h/sqrt(a),\n\
     k -> k*sqrt(a)), so the increased susceptibility is entirely the\n\
     drivers' doing -- the paper's conclusion, sharpened.";

  (* Where does each node become underdamped at its own optimum? *)
  print_endline "\nSmallest l for which the optimized stage is underdamped:";
  List.iter
    (fun node ->
      let underdamped l =
        let opt = Rlc_core.Rlc_opt.optimize node ~l in
        let stage =
          Rlc_core.Stage.of_node node ~l ~h:opt.Rlc_core.Rlc_opt.h
            ~k:opt.Rlc_core.Rlc_opt.k
        in
        Rlc_core.Critical_inductance.damping_margin stage > 0.0
      in
      (* bisection on the indicator *)
      let rec search lo hi iters =
        if iters = 0 then 0.5 *. (lo +. hi)
        else begin
          let mid = 0.5 *. (lo +. hi) in
          if underdamped mid then search lo mid (iters - 1)
          else search mid hi (iters - 1)
        end
      in
      let onset =
        if underdamped 1e-9 then 0.0
        else search 1e-9 node.Rlc_tech.Node.l_max 24
      in
      Printf.printf "  %-12s l = %.3f nH/mm\n" node.Rlc_tech.Node.name
        (onset *. 1e6))
    [ Rlc_tech.Presets.node_250nm; Rlc_tech.Presets.node_100nm ]
