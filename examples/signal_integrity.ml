(* Signal-integrity and reliability analysis of one repeater stage
   (Sections 1.1 and 3.3.2 of the paper).

   For a chosen stage this example compares the second-order Padé
   response against the exact distributed-line response (numerical
   inverse Laplace of equation (1)), quantifies overshoot — the
   gate-oxide overstress mechanism — and undershoot — the
   glitch/false-switching mechanism — and checks wire current limits.

   Run with:  dune exec examples/signal_integrity.exe *)

let () =
  let node = Rlc_tech.Presets.node_100nm in
  let l = Rlc_tech.Units.nh_per_mm 2.0 in
  let rc = Rlc_core.Rc_opt.optimize node in
  let stage =
    Rlc_core.Stage.of_node node ~l ~h:rc.Rlc_core.Rc_opt.h_opt
      ~k:rc.Rlc_core.Rc_opt.k_opt
  in
  let cs = Rlc_core.Pade.coeffs stage in
  let vdd = node.Rlc_tech.Node.vdd in

  Printf.printf "Stage: h = %.1f mm, k = %.0f, l = %.1f nH/mm, vdd = %.1f V\n\n"
    (stage.Rlc_core.Stage.h *. 1e3)
    stage.Rlc_core.Stage.k (l *. 1e6) vdd;

  (* 1. Padé model vs exact response (inverse Laplace of eq. (1)). *)
  let t_end = 6.0 *. cs.Rlc_core.Pade.b1 in
  let exact t =
    if t <= 0.0 then 0.0
    else
      Rlc_numerics.Laplace.step_response
        (fun s -> Rlc_core.Transfer.eval stage s)
        t
  in
  let pade = Rlc_core.Step_response.waveform cs ~t_end ~n:400 in
  let exact_wf = Rlc_waveform.Waveform.of_fn ~n:400 exact ~t0:0.0 ~t1:t_end in
  Rlc_report.Ascii_plot.print
    ~title:"Step response: second-order Pade (p) vs exact distributed (e)"
    [
      Rlc_report.Ascii_plot.series ~label:'p'
        ~xs:(Rlc_waveform.Waveform.times pade)
        ~ys:(Rlc_waveform.Waveform.values pade);
      Rlc_report.Ascii_plot.series ~label:'e'
        ~xs:(Rlc_waveform.Waveform.times exact_wf)
        ~ys:(Rlc_waveform.Waveform.values exact_wf);
    ];
  let d50 w =
    match
      Rlc_waveform.Measure.threshold_delay w ~fraction:0.5 ~v_final:1.0
    with
    | Some d -> d *. 1e12
    | None -> nan
  in
  Printf.printf "50%% delay: Pade %.1f ps, exact %.1f ps (Pade error %.1f%%)\n\n"
    (d50 pade) (d50 exact_wf)
    ((d50 pade /. d50 exact_wf -. 1.0) *. 100.0);

  (* 2. Overshoot: gate-oxide overstress (Section 3.3.2). *)
  let ov_pade = Rlc_core.Step_response.overshoot cs in
  let ov_exact =
    Float.max 0.0
      (Rlc_numerics.Stats.max (Rlc_waveform.Waveform.values exact_wf) -. 1.0)
  in
  let peak_gate_v = vdd *. (1.0 +. ov_exact) in
  Printf.printf "Overshoot: Pade %.1f%%, exact %.1f%% -> peak gate voltage %.2f V\n"
    (ov_pade *. 100.0) (ov_exact *. 100.0) peak_gate_v;
  let oxide_margin = 1.10 in
  if peak_gate_v > oxide_margin *. vdd then
    Printf.printf
      "  WARNING: peak gate voltage exceeds %.0f%% of VDD -- oxide wear-out risk\n"
      ((oxide_margin -. 1.0) *. 100.0 +. 100.0)
  else Printf.printf "  within the %.0f%% oxide overstress budget\n"
      ((oxide_margin -. 1.0) *. 100.0 +. 100.0);

  (* 3. Undershoot: glitch margin at the receiving inverter. *)
  let us_exact =
    let vals = Rlc_waveform.Waveform.values exact_wf in
    let after_peak = Array.to_list vals |> List.filteri (fun i _ -> i > 50) in
    1.0 -. List.fold_left Float.min 1.0 after_peak
  in
  let dip = vdd *. (1.0 -. us_exact) in
  let vth = Rlc_tech.Node.switching_threshold node in
  Printf.printf
    "\nUndershoot: high level dips to %.2f V (threshold %.2f V) -> %s\n" dip vth
    (if dip < vth then "FALSE SWITCHING RISK" else "logic-safe");

  (* 4. Wire current-density check against electromigration limits. *)
  let z0 = Rlc_core.Line.z0_lossless stage.Rlc_core.Stage.line in
  let peak_i = vdd /. (Rlc_core.Stage.rs stage +. z0) in
  let area =
    Rlc_extraction.Geometry.cross_section_area node.Rlc_tech.Node.geometry
  in
  let j_peak = peak_i /. area /. 1e4 (* A/cm^2 *) in
  Printf.printf
    "\nLaunch current %.2f mA -> peak density %.2e A/cm^2 (EM budget ~1e6 A/cm^2 rms)\n"
    (peak_i *. 1e3) j_peak
