buffered rlc line (100nm node, l = 1.8 nH/mm)
* a square wave drives a threshold inverter through a distributed line
V1 drive 0 PULSE(0 1.2 0 20p 20p 2n 4n)
X1 drive mid INV r_on=14.3 c_in=400f c_out=1.94p vdd=1.2 ttr=33p
W1 mid far r=4.4k l=1.8u c=123.33p len=11.1m seg=12
X2 far out INV r_on=14.3 c_in=400f c_out=1.94p vdd=1.2 ttr=33p
.tran 1p 12n
.probe v(far) v(out) i(W1_seg0)
.end
