800-segment step-driven rlc ladder (instrumentation acceptance deck)
* a 1 V step into 11 mm of the paper's 100nm-node global wire,
* discretized at 800 segments (802 MNA unknowns, bandwidth 3 after
* RCM); try:  rlcsim long_line.sp --stats --trace trace.json
V1 in 0 PULSE(0 1.0 0 20p 20p 2n 4n)
W1 in far r=4.4k l=1.5u c=123.33p len=11m seg=800
.tran 1p 1n
.probe v(far)
.end
