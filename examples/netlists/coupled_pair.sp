coupled line pair crosstalk
V1 a 0 DC 1.0
Ra a a1 27
Rv q 0 1meg
Rb q b1 27
P1 a1 a2 b1 b2 r=24.4 l=8.3n m=5.3n
Ca a2 0 700f
Cb b2 0 700f
.tran 1p 2n
.probe v(a2) v(b2)
.end
