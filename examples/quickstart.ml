(* Quickstart: size repeaters for a global wire when the line
   inductance matters.

   A 5 cm copper global wire at the 100 nm node is driven through
   repeaters.  The classical Elmore-based sizing ignores inductance;
   the paper's method accounts for it.  This example sizes the wire
   both ways at l = 1.5 nH/mm and compares the resulting total delay.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  let node = Rlc_tech.Presets.node_100nm in
  let total_length = 0.05 (* 5 cm, m *) in
  let l = Rlc_tech.Units.nh_per_mm 1.5 in

  (* 1. Classical RC (Elmore) sizing: closed form. *)
  let rc = Rlc_core.Rc_opt.optimize node in
  Printf.printf "RC (Elmore) sizing:   h = %.2f mm, k = %.0f\n"
    (rc.Rlc_core.Rc_opt.h_opt *. 1e3)
    rc.Rlc_core.Rc_opt.k_opt;

  (* 2. Inductance-aware sizing: the paper's optimizer. *)
  let rlc = Rlc_core.Rlc_opt.optimize node ~l in
  Printf.printf "RLC sizing at 1.5 nH/mm: h = %.2f mm, k = %.0f\n"
    (rlc.Rlc_core.Rlc_opt.h *. 1e3)
    rlc.Rlc_core.Rlc_opt.k;

  (* 3. What each choice costs on the real (inductive) wire. *)
  let delay_with ~h ~k =
    let stage = Rlc_core.Stage.of_node node ~l ~h ~k in
    total_length /. h *. Rlc_core.Delay.of_stage stage
  in
  let t_rc =
    delay_with ~h:rc.Rlc_core.Rc_opt.h_opt ~k:rc.Rlc_core.Rc_opt.k_opt
  in
  let t_rlc = delay_with ~h:rlc.Rlc_core.Rlc_opt.h ~k:rlc.Rlc_core.Rlc_opt.k in
  Printf.printf "\n5 cm wire, l = 1.5 nH/mm:\n";
  Printf.printf "  delay with RC sizing  : %.1f ps\n" (t_rc *. 1e12);
  Printf.printf "  delay with RLC sizing : %.1f ps\n" (t_rlc *. 1e12);
  Printf.printf "  penalty of ignoring l : %.1f %%\n"
    ((t_rc /. t_rlc -. 1.0) *. 100.0);

  (* 4. Signal-integrity summary of the optimally sized stage. *)
  let stage =
    Rlc_core.Stage.of_node node ~l ~h:rlc.Rlc_core.Rlc_opt.h
      ~k:rlc.Rlc_core.Rlc_opt.k
  in
  let cs = Rlc_core.Pade.coeffs stage in
  Printf.printf "\nOptimal stage: zeta = %.3f (%s), overshoot = %.1f %%\n"
    (Rlc_core.Pade.zeta cs)
    (match Rlc_core.Pade.classify cs with
    | Rlc_core.Pade.Underdamped -> "underdamped"
    | Rlc_core.Pade.Critically_damped -> "critically damped"
    | Rlc_core.Pade.Overdamped -> "overdamped")
    (Rlc_core.Step_response.overshoot cs *. 100.0)
