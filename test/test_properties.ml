(* Cross-cutting property-based tests with independent oracles:
   random trees checked against a from-scratch Elmore computation,
   random stimuli against their envelopes, random stages against
   physical invariants. *)

open Rlc_core

let node100 = Rlc_tech.Presets.node_100nm
let node250 = Rlc_tech.Presets.node_250nm

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

(* ---------------- random tree generator ---------------- *)

let wire_gen =
  QCheck2.Gen.(
    let* r = float_range 10.0 500.0 in
    let* l = float_range 0.0 20e-9 in
    let* c = float_range 1e-14 5e-12 in
    return (Rlc_tree.Tree.wire ~r ~l ~c))

let tree_gen =
  QCheck2.Gen.(
    let sink_counter = ref 0 in
    let rec gen depth =
      if depth = 0 then
        let* cap = float_range 1e-15 1e-12 in
        incr sink_counter;
        return (Rlc_tree.Tree.sink ~name:(Printf.sprintf "s%d" !sink_counter) ~cap)
      else
        let* n_branches = int_range 1 3 in
        let* branches =
          flatten_l
            (List.init n_branches (fun _ ->
                 let* w = wire_gen in
                 let* sub = gen (depth - 1) in
                 return (w, sub)))
        in
        return (Rlc_tree.Tree.node branches)
    in
    let* depth = int_range 1 4 in
    sink_counter := 0;
    gen depth)

(* independent Elmore oracle: delay(sink) = sum over all caps k of
   R(path shared with sink) * C_k, with wire caps split half/half *)
let elmore_oracle ~driver_rs tree sink_name =
  (* enumerate "cap sites": (root-to-site path as (edge id, wire) list,
     cap value); edge ids are assigned during the walk *)
  let sites = ref [] in
  let sink_path = ref None in
  let next_edge = ref 0 in
  let rec walk path = function
    | Rlc_tree.Tree.Sink { name; cap } ->
        sites := (path, cap) :: !sites;
        if String.equal name sink_name then sink_path := Some path
    | Rlc_tree.Tree.Node { cap; branches; _ } ->
        sites := (path, cap) :: !sites;
        List.iter
          (fun (w, sub) ->
            let id = !next_edge in
            incr next_edge;
            let deeper = path @ [ (id, w) ] in
            (* half the wire cap at each end *)
            sites := (path, w.Rlc_tree.Tree.c /. 2.0) :: !sites;
            sites := (deeper, w.Rlc_tree.Tree.c /. 2.0) :: !sites;
            walk deeper sub)
          branches
  in
  walk [] tree;
  let sink_path =
    match !sink_path with Some p -> p | None -> failwith "sink not found"
  in
  let shared_resistance site_path =
    (* driver resistance always shared, plus resistances of the common
       path prefix *)
    let rec common a b acc =
      match (a, b) with
      | (ia, wa) :: ra, (ib, _) :: rb when ia = ib ->
          common ra rb (acc +. wa.Rlc_tree.Tree.r)
      | _ -> acc
    in
    driver_rs +. common site_path sink_path 0.0
  in
  List.fold_left
    (fun acc (path, cap) -> acc +. (shared_resistance path *. cap))
    0.0 !sites

let prop_tree_elmore_matches_oracle =
  QCheck2.Test.make ~name:"tree b1 equals independent Elmore oracle"
    ~count:100 tree_gen (fun tree ->
      let driver_rs = 42.0 in
      let computed = Rlc_tree.Moments.elmore ~driver_rs tree in
      List.for_all
        (fun (name, b1) ->
          let oracle = elmore_oracle ~driver_rs tree name in
          Float.abs (b1 -. oracle) <= 1e-9 *. (1.0 +. Float.abs oracle))
        computed)

let prop_tree_segmentation_preserves_totals =
  QCheck2.Test.make ~name:"segment_edges preserves cap and wire totals"
    ~count:100 tree_gen (fun tree ->
      let seg =
        Rlc_tree.Tree.segment_edges
          ~max_segment:(Rlc_tree.Tree.wire ~r:50.0 ~l:5e-9 ~c:1e-12)
          tree
      in
      let close a b = Float.abs (a -. b) <= 1e-9 *. (1.0 +. Float.abs a) in
      close (Rlc_tree.Tree.total_cap tree) (Rlc_tree.Tree.total_cap seg)
      &&
      match (Rlc_tree.Tree.total_wire tree, Rlc_tree.Tree.total_wire seg) with
      | Some a, Some b ->
          close a.Rlc_tree.Tree.r b.Rlc_tree.Tree.r
          && close a.Rlc_tree.Tree.l b.Rlc_tree.Tree.l
          && close a.Rlc_tree.Tree.c b.Rlc_tree.Tree.c
      | None, None -> true
      | _ -> false)

let prop_tree_segmentation_preserves_elmore =
  QCheck2.Test.make
    ~name:"segment_edges preserves Elmore delays (half-half split)"
    ~count:60 tree_gen (fun tree ->
      let seg =
        Rlc_tree.Tree.segment_edges
          ~max_segment:(Rlc_tree.Tree.wire ~r:100.0 ~l:1e-8 ~c:2e-12)
          tree
      in
      let d t = Rlc_tree.Moments.elmore ~driver_rs:30.0 t in
      List.for_all2
        (fun (n1, b1) (n2, b2) ->
          String.equal n1 n2
          (* segmentation refines the distributed approximation, so
             Elmore changes slightly; it must stay within a few % *)
          && Float.abs (b1 -. b2) <= 0.05 *. (Float.abs b1 +. 1e-15))
        (d tree) (d seg))

(* ---------------- stimulus envelopes ---------------- *)

let prop_pulse_within_envelope =
  QCheck2.Test.make ~name:"pulse stays within [v0, v1]" ~count:200
    QCheck2.Gen.(
      let* v0 = float_range (-2.0) 2.0 in
      let* v1 = float_range (-2.0) 2.0 in
      let* period = float_range 1e-9 1e-6 in
      let* frac_r = float_range 0.05 0.2 in
      let* frac_h = float_range 0.1 0.5 in
      let* t = float_range 0.0 5e-6 in
      return (v0, v1, period, frac_r, frac_h, t))
    (fun (v0, v1, period, frac_r, frac_h, t) ->
      let stim =
        Rlc_circuit.Stimulus.Pulse
          {
            v0;
            v1;
            t_delay = period /. 10.0;
            t_rise = frac_r *. period;
            t_high = frac_h *. period;
            t_fall = frac_r *. period;
            period;
          }
      in
      Rlc_circuit.Stimulus.validate stim;
      let v = Rlc_circuit.Stimulus.eval stim t in
      let lo = Float.min v0 v1 and hi = Float.max v0 v1 in
      v >= lo -. 1e-12 && v <= hi +. 1e-12)

let prop_pwl_within_envelope =
  QCheck2.Test.make ~name:"pwl stays within its corner values" ~count:200
    QCheck2.Gen.(
      let* n = int_range 2 8 in
      let* vs = list_size (return n) (float_range (-3.0) 3.0) in
      let* t = float_range (-1.0) 10.0 in
      return (vs, t))
    (fun (vs, t) ->
      let corners = List.mapi (fun i v -> (float_of_int i, v)) vs in
      let stim = Rlc_circuit.Stimulus.Pwl corners in
      let v = Rlc_circuit.Stimulus.eval stim t in
      let lo = List.fold_left Float.min infinity vs in
      let hi = List.fold_left Float.max neg_infinity vs in
      v >= lo -. 1e-12 && v <= hi +. 1e-12)

(* ---------------- stage physics invariants ---------------- *)

let stage_gen =
  QCheck2.Gen.(
    let* l = float_range 0.0 5e-6 in
    let* h = float_range 2e-3 3e-2 in
    let* k = float_range 30.0 1500.0 in
    let* pick = bool in
    return (Stage.of_node (if pick then node100 else node250) ~l ~h ~k))

let prop_lcrit_separates_damping =
  QCheck2.Test.make ~name:"l_crit separates over/underdamped" ~count:150
    stage_gen (fun stage ->
      let l_crit = Critical_inductance.of_stage stage in
      if l_crit <= 0.0 then true (* stage underdamped for every l >= 0 *)
      else begin
        let under =
          Pade.classify (Pade.coeffs (Stage.with_l stage (1.5 *. l_crit)))
        in
        let over =
          Pade.classify (Pade.coeffs (Stage.with_l stage (0.5 *. l_crit)))
        in
        under = Pade.Underdamped && over = Pade.Overdamped
      end)

let prop_power_monotone =
  QCheck2.Test.make ~name:"power decreasing in h, increasing in k" ~count:150
    QCheck2.Gen.(
      let* h = float_range 2e-3 3e-2 in
      let* k = float_range 30.0 1500.0 in
      return (h, k))
    (fun (h, k) ->
      Power.per_length node100 ~h:(h *. 1.2) ~k < Power.per_length node100 ~h ~k
      && Power.per_length node100 ~h ~k:(k *. 1.2)
         > Power.per_length node100 ~h ~k)

let prop_coupled_mode_capacitance =
  QCheck2.Test.make ~name:"mode capacitances: even + odd = 2(cg + cc)"
    ~count:150
    QCheck2.Gen.(
      let* cg = float_range 1e-12 3e-10 in
      let* cc = float_range 0.0 2e-10 in
      let* ls = float_range 1e-8 5e-6 in
      let* lm_frac = float_range 0.0 0.9 in
      return (cg, cc, ls, lm_frac))
    (fun (cg, cc, ls, lm_frac) ->
      let p =
        Coupled.make ~r:4400.0 ~l_self:ls ~l_mutual:(lm_frac *. ls)
          ~c_ground:cg ~c_coupling:cc
      in
      let even = Coupled.mode_line p Coupled.Even in
      let odd = Coupled.mode_line p Coupled.Odd in
      let total = even.Line.c +. odd.Line.c in
      Float.abs (total -. (2.0 *. (cg +. cc))) <= 1e-12 *. total
      (* and mode inductances average to the self inductance *)
      && Float.abs (((even.Line.l +. odd.Line.l) /. 2.0) -. ls)
         <= 1e-12 *. ls +. 1e-30)

let prop_frequency_gd_positive_at_low_f =
  QCheck2.Test.make ~name:"group delay at low frequency is ~ b1" ~count:60
    stage_gen (fun stage ->
      let b1 = (Pade.coeffs stage).Pade.b1 in
      let gd = Frequency.group_delay stage 1e5 in
      Float.abs (gd -. b1) <= 0.01 *. b1)

let prop_eye_prbs_balanced =
  QCheck2.Test.make ~name:"prbs one period is balanced for any seed"
    ~count:127
    QCheck2.Gen.(int_range 1 127)
    (fun seed ->
      let bits = Rlc_ringosc.Eye.prbs ~seed 127 in
      List.length (List.filter Fun.id bits) = 64)

let prop_insertion_bound =
  QCheck2.Test.make ~name:"integer insertion never beats the continuous bound"
    ~count:40
    QCheck2.Gen.(
      let* len = float_range 3e-3 8e-2 in
      let* l = float_range 0.0 4e-6 in
      return (len, l))
    (fun (len, l) ->
      let p = Insertion.plan node100 ~l ~length:len in
      p.Insertion.total_delay >= p.Insertion.continuous_bound *. (1.0 -. 1e-9))

(* ---------------- simulator physics ---------------- *)

let prop_rc_ladder_passivity =
  QCheck2.Test.make
    ~name:"rc ladder: node voltages stay within the source bounds" ~count:40
    QCheck2.Gen.(
      let* n = int_range 2 6 in
      let* rs = list_size (return n) (float_range 10.0 1000.0) in
      let* cs = list_size (return n) (float_range 1e-13 1e-11) in
      return (rs, cs))
    (fun (rs, cs) ->
      let open Rlc_circuit in
      let nl = Netlist.create () in
      let src = Netlist.fresh_node nl in
      Netlist.add_vsource nl src Netlist.ground (Stimulus.Dc 1.0);
      let probes = ref [] in
      let last =
        List.fold_left2
          (fun prev r c ->
            let next = Netlist.fresh_node nl in
            Netlist.add_resistor nl prev next r;
            Netlist.add_capacitor nl next Netlist.ground c;
            probes := Transient.Node_v next :: !probes;
            next)
          src rs cs
      in
      ignore last;
      let tau = List.fold_left2 (fun a r c -> a +. (r *. c)) 0.0 rs cs in
      let result =
        Transient.run nl ~t_end:(5.0 *. tau) ~dt:(tau /. 500.0)
          ~probes:!probes
      in
      List.for_all
        (fun p ->
          let w = Transient.get result p in
          let lo, hi = Rlc_numerics.Stats.min_max (Rlc_waveform.Waveform.values w) in
          lo >= -1e-9 && hi <= 1.0 +. 1e-9)
        !probes)

let test_trapezoidal_second_order_convergence () =
  (* error at a fixed time scales ~ dt^2 for the trapezoidal rule *)
  let value dt =
    let open Rlc_circuit in
    let nl = Netlist.create () in
    let a = Netlist.fresh_node nl in
    let b = Netlist.fresh_node nl in
    Netlist.add_vsource nl a Netlist.ground (Stimulus.Dc 1.0);
    Netlist.add_resistor nl a b 1e3;
    Netlist.add_capacitor nl b Netlist.ground 1e-9;
    let r =
      Transient.run nl ~t_end:1.0001e-6 ~dt ~probes:[ Transient.Node_v b ]
    in
    Rlc_waveform.Waveform.value_at (Transient.get r (Transient.Node_v b)) 1e-6
  in
  let exact = 1.0 -. Float.exp (-1.0) in
  let err dt = Float.abs (value dt -. exact) in
  let e1 = err 2e-8 and e2 = err 1e-8 in
  let order = Float.log (e1 /. e2) /. Float.log 2.0 in
  Alcotest.(check bool)
    (Printf.sprintf "observed order %.2f in [1.7, 2.3]" order)
    true
    (order > 1.7 && order < 2.3)

let test_backward_euler_first_order_convergence () =
  let value dt =
    let open Rlc_circuit in
    let nl = Netlist.create () in
    let a = Netlist.fresh_node nl in
    let b = Netlist.fresh_node nl in
    Netlist.add_vsource nl a Netlist.ground (Stimulus.Dc 1.0);
    Netlist.add_resistor nl a b 1e3;
    Netlist.add_capacitor nl b Netlist.ground 1e-9;
    let r =
      Transient.run ~integration:Transient.Backward_euler nl ~t_end:1.0001e-6
        ~dt ~probes:[ Transient.Node_v b ]
    in
    Rlc_waveform.Waveform.value_at (Transient.get r (Transient.Node_v b)) 1e-6
  in
  let exact = 1.0 -. Float.exp (-1.0) in
  let err dt = Float.abs (value dt -. exact) in
  let order = Float.log (err 2e-8 /. err 1e-8) /. Float.log 2.0 in
  Alcotest.(check bool)
    (Printf.sprintf "observed order %.2f in [0.8, 1.2]" order)
    true
    (order > 0.8 && order < 1.2)

let () =
  Alcotest.run "properties"
    [
      qsuite "tree"
        [
          prop_tree_elmore_matches_oracle;
          prop_tree_segmentation_preserves_totals;
          prop_tree_segmentation_preserves_elmore;
        ];
      qsuite "stimulus" [ prop_pulse_within_envelope; prop_pwl_within_envelope ];
      qsuite "stage-physics"
        [ prop_lcrit_separates_damping; prop_frequency_gd_positive_at_low_f ];
      qsuite "power" [ prop_power_monotone ];
      qsuite "coupled" [ prop_coupled_mode_capacitance ];
      qsuite "eye" [ prop_eye_prbs_balanced ];
      qsuite "insertion" [ prop_insertion_bound ];
      qsuite "simulator-passivity" [ prop_rc_ladder_passivity ];
      ( "simulator-convergence",
        [
          Alcotest.test_case "trapezoidal is second order" `Quick
            test_trapezoidal_second_order_convergence;
          Alcotest.test_case "backward euler is first order" `Quick
            test_backward_euler_first_order_convergence;
        ] );
    ]
