(* Cross-cutting property-based tests with independent oracles:
   random trees checked against a from-scratch Elmore computation,
   random stimuli against their envelopes, random stages against
   physical invariants. *)

open Rlc_core

let node100 = Rlc_tech.Presets.node_100nm
let node250 = Rlc_tech.Presets.node_250nm

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

(* ---------------- random tree generator ---------------- *)

let wire_gen =
  QCheck2.Gen.(
    let* r = float_range 10.0 500.0 in
    let* l = float_range 0.0 20e-9 in
    let* c = float_range 1e-14 5e-12 in
    return (Rlc_tree.Tree.wire ~r ~l ~c))

let tree_gen =
  QCheck2.Gen.(
    let sink_counter = ref 0 in
    let rec gen depth =
      if depth = 0 then
        let* cap = float_range 1e-15 1e-12 in
        incr sink_counter;
        return (Rlc_tree.Tree.sink ~name:(Printf.sprintf "s%d" !sink_counter) ~cap)
      else
        let* n_branches = int_range 1 3 in
        let* branches =
          flatten_l
            (List.init n_branches (fun _ ->
                 let* w = wire_gen in
                 let* sub = gen (depth - 1) in
                 return (w, sub)))
        in
        return (Rlc_tree.Tree.node branches)
    in
    let* depth = int_range 1 4 in
    sink_counter := 0;
    gen depth)

(* independent Elmore oracle: delay(sink) = sum over all caps k of
   R(path shared with sink) * C_k, with wire caps split half/half *)
let elmore_oracle ~driver_rs tree sink_name =
  (* enumerate "cap sites": (root-to-site path as (edge id, wire) list,
     cap value); edge ids are assigned during the walk *)
  let sites = ref [] in
  let sink_path = ref None in
  let next_edge = ref 0 in
  let rec walk path = function
    | Rlc_tree.Tree.Sink { name; cap } ->
        sites := (path, cap) :: !sites;
        if String.equal name sink_name then sink_path := Some path
    | Rlc_tree.Tree.Node { cap; branches; _ } ->
        sites := (path, cap) :: !sites;
        List.iter
          (fun (w, sub) ->
            let id = !next_edge in
            incr next_edge;
            let deeper = path @ [ (id, w) ] in
            (* half the wire cap at each end *)
            sites := (path, w.Rlc_tree.Tree.c /. 2.0) :: !sites;
            sites := (deeper, w.Rlc_tree.Tree.c /. 2.0) :: !sites;
            walk deeper sub)
          branches
  in
  walk [] tree;
  let sink_path =
    match !sink_path with Some p -> p | None -> failwith "sink not found"
  in
  let shared_resistance site_path =
    (* driver resistance always shared, plus resistances of the common
       path prefix *)
    let rec common a b acc =
      match (a, b) with
      | (ia, wa) :: ra, (ib, _) :: rb when ia = ib ->
          common ra rb (acc +. wa.Rlc_tree.Tree.r)
      | _ -> acc
    in
    driver_rs +. common site_path sink_path 0.0
  in
  List.fold_left
    (fun acc (path, cap) -> acc +. (shared_resistance path *. cap))
    0.0 !sites

let prop_tree_elmore_matches_oracle =
  QCheck2.Test.make ~name:"tree b1 equals independent Elmore oracle"
    ~count:100 tree_gen (fun tree ->
      let driver_rs = 42.0 in
      let computed = Rlc_tree.Moments.elmore ~driver_rs tree in
      List.for_all
        (fun (name, b1) ->
          let oracle = elmore_oracle ~driver_rs tree name in
          Float.abs (b1 -. oracle) <= 1e-9 *. (1.0 +. Float.abs oracle))
        computed)

let prop_tree_segmentation_preserves_totals =
  QCheck2.Test.make ~name:"segment_edges preserves cap and wire totals"
    ~count:100 tree_gen (fun tree ->
      let seg =
        Rlc_tree.Tree.segment_edges
          ~max_segment:(Rlc_tree.Tree.wire ~r:50.0 ~l:5e-9 ~c:1e-12)
          tree
      in
      let close a b = Float.abs (a -. b) <= 1e-9 *. (1.0 +. Float.abs a) in
      close (Rlc_tree.Tree.total_cap tree) (Rlc_tree.Tree.total_cap seg)
      &&
      match (Rlc_tree.Tree.total_wire tree, Rlc_tree.Tree.total_wire seg) with
      | Some a, Some b ->
          close a.Rlc_tree.Tree.r b.Rlc_tree.Tree.r
          && close a.Rlc_tree.Tree.l b.Rlc_tree.Tree.l
          && close a.Rlc_tree.Tree.c b.Rlc_tree.Tree.c
      | None, None -> true
      | _ -> false)

let prop_tree_segmentation_preserves_elmore =
  QCheck2.Test.make
    ~name:"segment_edges preserves Elmore delays (half-half split)"
    ~count:60 tree_gen (fun tree ->
      let seg =
        Rlc_tree.Tree.segment_edges
          ~max_segment:(Rlc_tree.Tree.wire ~r:100.0 ~l:1e-8 ~c:2e-12)
          tree
      in
      let d t = Rlc_tree.Moments.elmore ~driver_rs:30.0 t in
      List.for_all2
        (fun (n1, b1) (n2, b2) ->
          String.equal n1 n2
          (* segmentation refines the distributed approximation, so
             Elmore changes slightly; it must stay within a few % *)
          && Float.abs (b1 -. b2) <= 0.05 *. (Float.abs b1 +. 1e-15))
        (d tree) (d seg))

(* ---------------- stimulus envelopes ---------------- *)

let prop_pulse_within_envelope =
  QCheck2.Test.make ~name:"pulse stays within [v0, v1]" ~count:200
    QCheck2.Gen.(
      let* v0 = float_range (-2.0) 2.0 in
      let* v1 = float_range (-2.0) 2.0 in
      let* period = float_range 1e-9 1e-6 in
      let* frac_r = float_range 0.05 0.2 in
      let* frac_h = float_range 0.1 0.5 in
      let* t = float_range 0.0 5e-6 in
      return (v0, v1, period, frac_r, frac_h, t))
    (fun (v0, v1, period, frac_r, frac_h, t) ->
      let stim =
        Rlc_circuit.Stimulus.Pulse
          {
            v0;
            v1;
            t_delay = period /. 10.0;
            t_rise = frac_r *. period;
            t_high = frac_h *. period;
            t_fall = frac_r *. period;
            period;
          }
      in
      Rlc_circuit.Stimulus.validate stim;
      let v = Rlc_circuit.Stimulus.eval stim t in
      let lo = Float.min v0 v1 and hi = Float.max v0 v1 in
      v >= lo -. 1e-12 && v <= hi +. 1e-12)

let prop_pwl_within_envelope =
  QCheck2.Test.make ~name:"pwl stays within its corner values" ~count:200
    QCheck2.Gen.(
      let* n = int_range 2 8 in
      let* vs = list_size (return n) (float_range (-3.0) 3.0) in
      let* t = float_range (-1.0) 10.0 in
      return (vs, t))
    (fun (vs, t) ->
      let corners = List.mapi (fun i v -> (float_of_int i, v)) vs in
      let stim = Rlc_circuit.Stimulus.Pwl corners in
      let v = Rlc_circuit.Stimulus.eval stim t in
      let lo = List.fold_left Float.min infinity vs in
      let hi = List.fold_left Float.max neg_infinity vs in
      v >= lo -. 1e-12 && v <= hi +. 1e-12)

(* ---------------- stage physics invariants ---------------- *)

let stage_gen =
  QCheck2.Gen.(
    let* l = float_range 0.0 5e-6 in
    let* h = float_range 2e-3 3e-2 in
    let* k = float_range 30.0 1500.0 in
    let* pick = bool in
    return (Stage.of_node (if pick then node100 else node250) ~l ~h ~k))

let prop_lcrit_separates_damping =
  QCheck2.Test.make ~name:"l_crit separates over/underdamped" ~count:150
    stage_gen (fun stage ->
      let l_crit = Critical_inductance.of_stage stage in
      if l_crit <= 0.0 then true (* stage underdamped for every l >= 0 *)
      else begin
        let under =
          Pade.classify (Pade.coeffs (Stage.with_l stage (1.5 *. l_crit)))
        in
        let over =
          Pade.classify (Pade.coeffs (Stage.with_l stage (0.5 *. l_crit)))
        in
        under = Pade.Underdamped && over = Pade.Overdamped
      end)

let prop_power_monotone =
  QCheck2.Test.make ~name:"power decreasing in h, increasing in k" ~count:150
    QCheck2.Gen.(
      let* h = float_range 2e-3 3e-2 in
      let* k = float_range 30.0 1500.0 in
      return (h, k))
    (fun (h, k) ->
      Power.per_length node100 ~h:(h *. 1.2) ~k < Power.per_length node100 ~h ~k
      && Power.per_length node100 ~h ~k:(k *. 1.2)
         > Power.per_length node100 ~h ~k)

let prop_coupled_mode_capacitance =
  QCheck2.Test.make ~name:"mode capacitances: even + odd = 2(cg + cc)"
    ~count:150
    QCheck2.Gen.(
      let* cg = float_range 1e-12 3e-10 in
      let* cc = float_range 0.0 2e-10 in
      let* ls = float_range 1e-8 5e-6 in
      let* lm_frac = float_range 0.0 0.9 in
      return (cg, cc, ls, lm_frac))
    (fun (cg, cc, ls, lm_frac) ->
      let p =
        Coupled.make ~r:4400.0 ~l_self:ls ~l_mutual:(lm_frac *. ls)
          ~c_ground:cg ~c_coupling:cc
      in
      let even = Coupled.mode_line p Coupled.Even in
      let odd = Coupled.mode_line p Coupled.Odd in
      let total = even.Line.c +. odd.Line.c in
      Float.abs (total -. (2.0 *. (cg +. cc))) <= 1e-12 *. total
      (* and mode inductances average to the self inductance *)
      && Float.abs (((even.Line.l +. odd.Line.l) /. 2.0) -. ls)
         <= 1e-12 *. ls +. 1e-30)

let prop_frequency_gd_positive_at_low_f =
  QCheck2.Test.make ~name:"group delay at low frequency is ~ b1" ~count:60
    stage_gen (fun stage ->
      let b1 = (Pade.coeffs stage).Pade.b1 in
      let gd = Frequency.group_delay stage 1e5 in
      Float.abs (gd -. b1) <= 0.01 *. b1)

let prop_eye_prbs_balanced =
  QCheck2.Test.make ~name:"prbs one period is balanced for any seed"
    ~count:127
    QCheck2.Gen.(int_range 1 127)
    (fun seed ->
      let bits = Rlc_ringosc.Eye.prbs ~seed 127 in
      List.length (List.filter Fun.id bits) = 64)

let prop_insertion_bound =
  QCheck2.Test.make ~name:"integer insertion never beats the continuous bound"
    ~count:40
    QCheck2.Gen.(
      let* len = float_range 3e-3 8e-2 in
      let* l = float_range 0.0 4e-6 in
      return (len, l))
    (fun (len, l) ->
      let p = Insertion.plan node100 ~l ~length:len in
      p.Insertion.total_delay >= p.Insertion.continuous_bound *. (1.0 -. 1e-9))

(* ---------------- assembly stamp IR ---------------- *)

(* Random-netlist recipe: a connected chain of R/RL branches (every
   node reaches ground), grounded caps, an optional coupled-RL pair
   and an optional current source — pure data so QCheck can shrink. *)
type net_recipe = {
  chain : (int * float * float) list; (* parent index, ohms, henries *)
  caps : (int * float) list; (* chain-node index, farads *)
  vdc : float;
  isrc : (int * float) option; (* chain-node index, amps *)
  coupled : (int * int * float * float * float) option;
      (* node idx pair, ohms, henries, mutual fraction *)
}

let recipe_gen =
  QCheck2.Gen.(
    let* n = int_range 2 8 in
    let* chain =
      flatten_l
        (List.init n (fun i ->
             let* parent = int_range 0 i in
             let* ohms = float_range 1.0 1000.0 in
             let* inductive = bool in
             let* henries =
               if inductive then float_range 1e-9 1e-6 else return 0.0
             in
             return (parent, ohms, henries)))
    in
    let* caps =
      flatten_l
        (List.init n (fun i ->
             let* farads = float_range 1e-15 1e-11 in
             return (i + 1, farads)))
    in
    let* vdc = float_range 0.5 2.0 in
    let* with_isrc = bool in
    let* isrc =
      if with_isrc then
        let* node = int_range 1 n in
        let* amps = float_range 1e-6 1e-3 in
        return (Some (node, amps))
      else return None
    in
    let* with_coupled = bool in
    let* coupled =
      if with_coupled && n >= 3 then
        let* a = int_range 0 n in
        let* b = int_range 0 n in
        let* ohms = float_range 1.0 200.0 in
        let* henries = float_range 1e-9 1e-7 in
        let* mfrac = float_range 0.0 0.8 in
        return (if a = b then None else Some (a, b, ohms, henries, mfrac))
      else return None
    in
    return { chain; caps; vdc; isrc; coupled })

let build_netlist recipe =
  let open Rlc_circuit in
  let nl = Netlist.create () in
  let src = Netlist.fresh_node nl in
  Netlist.add_vsource nl src Netlist.ground (Stimulus.Dc recipe.vdc);
  let nodes = Array.make (List.length recipe.chain + 1) src in
  List.iteri
    (fun i (parent, ohms, henries) ->
      let n = Netlist.fresh_node nl in
      nodes.(i + 1) <- n;
      if henries = 0.0 then Netlist.add_resistor nl nodes.(parent) n ohms
      else Netlist.add_rl_branch nl nodes.(parent) n ~ohms ~henries)
    recipe.chain;
  List.iter
    (fun (i, farads) ->
      Netlist.add_capacitor nl nodes.(i) Netlist.ground farads)
    recipe.caps;
  (match recipe.isrc with
  | Some (i, amps) ->
      Netlist.add_isource nl nodes.(i) Netlist.ground (Stimulus.Dc amps)
  | None -> ());
  (match recipe.coupled with
  | Some (a, b, ohms, henries, mfrac) ->
      Netlist.add_coupled_rl nl ~a1:nodes.(a) ~b1:Netlist.ground ~a2:nodes.(b)
        ~b2:Netlist.ground ~ohms ~henries ~mutual:(mfrac *. henries)
  | None -> ());
  (nl, nodes)

(* From-scratch dense oracle for the MNA quadruple: stamps the same
   skew-form convention straight into dense matrices, independently of
   Assembly's COO accumulator.  The IR's dense materialisation must
   match entry for entry, bit for bit. *)
let dense_oracle nl =
  let open Rlc_circuit in
  let open Rlc_numerics in
  let elems = Netlist.elements nl in
  let n_nodes = Netlist.node_count nl in
  let currents = ref 0 and vsrcs = ref 0 and srcs = ref 0 in
  Array.iter
    (fun e ->
      match e with
      | Netlist.Rl_branch { henries; _ } -> if henries > 0.0 then incr currents
      | Netlist.Coupled_rl _ -> currents := !currents + 2
      | Netlist.Vsource _ ->
          incr vsrcs;
          incr srcs
      | Netlist.Isource _ -> incr srcs
      | _ -> ())
    elems;
  let size = n_nodes - 1 + !currents + !vsrcs in
  let g = Matrix.create size size in
  let c = Matrix.create size size in
  let b = Matrix.create size (Int.max 1 !srcs) in
  let vi n = n - 1 in
  let stamp m a bn v =
    if a <> 0 then Matrix.add_to m (vi a) (vi a) v;
    if bn <> 0 then Matrix.add_to m (vi bn) (vi bn) v;
    if a <> 0 && bn <> 0 then begin
      Matrix.add_to m (vi a) (vi bn) (-.v);
      Matrix.add_to m (vi bn) (vi a) (-.v)
    end
  in
  let branch row a bn r =
    if a <> 0 then begin
      Matrix.add_to g (vi a) row 1.0;
      Matrix.add_to g row (vi a) (-1.0)
    end;
    if bn <> 0 then begin
      Matrix.add_to g (vi bn) row (-1.0);
      Matrix.add_to g row (vi bn) 1.0
    end;
    Matrix.add_to g row row r
  in
  let next_current = ref (n_nodes - 1) in
  let next_vrow = ref (n_nodes - 1 + !currents) in
  let next_col = ref 0 in
  Array.iter
    (fun e ->
      match e with
      | Netlist.Resistor { a; b = bn; ohms } -> stamp g a bn (1.0 /. ohms)
      | Netlist.Capacitor { a; b = bn; farads } -> stamp c a bn farads
      | Netlist.Rl_branch { a; b = bn; ohms; henries } ->
          if henries = 0.0 then stamp g a bn (1.0 /. ohms)
          else begin
            let row = !next_current in
            incr next_current;
            branch row a bn ohms;
            Matrix.add_to c row row henries
          end
      | Netlist.Coupled_rl { a1; b1; a2; b2; ohms; henries; mutual } ->
          let r1 = !next_current in
          let r2 = r1 + 1 in
          next_current := !next_current + 2;
          branch r1 a1 b1 ohms;
          branch r2 a2 b2 ohms;
          Matrix.add_to c r1 r1 henries;
          Matrix.add_to c r2 r2 henries;
          Matrix.add_to c r1 r2 mutual;
          Matrix.add_to c r2 r1 mutual
      | Netlist.Vsource { a; b = bn; _ } ->
          let row = !next_vrow in
          incr next_vrow;
          if a <> 0 then begin
            Matrix.add_to g (vi a) row 1.0;
            Matrix.add_to g row (vi a) (-1.0)
          end;
          if bn <> 0 then begin
            Matrix.add_to g (vi bn) row (-1.0);
            Matrix.add_to g row (vi bn) 1.0
          end;
          let col = !next_col in
          incr next_col;
          Matrix.add_to b row col (-1.0)
      | Netlist.Isource { a; b = bn; _ } ->
          let col = !next_col in
          incr next_col;
          if a <> 0 then Matrix.add_to b (vi a) col (-1.0);
          if bn <> 0 then Matrix.add_to b (vi bn) col 1.0
      | Netlist.Inverter { input; output; dev } ->
          stamp c input 0 dev.Rlc_circuit.Devices.c_in;
          stamp c output 0 dev.Rlc_circuit.Devices.c_out;
          stamp g output 0 (1.0 /. dev.Rlc_circuit.Devices.r_on))
    elems;
  (size, g, c, b)

let matrices_bit_identical a b =
  let open Rlc_numerics in
  Matrix.rows a = Matrix.rows b
  && Matrix.cols a = Matrix.cols b
  &&
  let ok = ref true in
  for i = 0 to Matrix.rows a - 1 do
    for j = 0 to Matrix.cols a - 1 do
      if
        Int64.bits_of_float (Matrix.get a i j)
        <> Int64.bits_of_float (Matrix.get b i j)
      then ok := false
    done
  done;
  !ok

let prop_assembly_matches_dense_oracle =
  QCheck2.Test.make
    ~name:"assembly IR materialises bit-identically to a dense oracle"
    ~count:100 recipe_gen (fun recipe ->
      let open Rlc_circuit in
      let nl, _ = build_netlist recipe in
      let asm = Assembly.of_netlist nl in
      let size, g, c, b = dense_oracle nl in
      asm.Assembly.size = size
      && matrices_bit_identical (Assembly.dense_g asm) g
      && matrices_bit_identical (Assembly.dense_c asm) c
      && matrices_bit_identical (Assembly.dense_b asm) b)

let prop_ac_backends_agree =
  QCheck2.Test.make
    ~name:"solve_complex: dense, banded and sparse backends agree to 1e-9"
    ~count:60
    QCheck2.Gen.(
      let* recipe = recipe_gen in
      let* freq = float_range 1e5 1e10 in
      return (recipe, freq))
    (fun (recipe, freq) ->
      let open Rlc_circuit in
      let open Rlc_numerics in
      let nl, _ = build_netlist recipe in
      let asm = Assembly.of_netlist nl in
      let rhs = Array.map Cx.of_float (Assembly.b_column asm 0) in
      let s = Cx.make 0.0 (2.0 *. Float.pi *. freq) in
      let xd = Assembly.solve_complex ~backend:Solver.Dense asm ~s ~rhs in
      let xb = Assembly.solve_complex ~backend:Solver.Banded asm ~s ~rhs in
      let xs = Assembly.solve_complex ~backend:Solver.Sparse asm ~s ~rhs in
      let scale =
        Array.fold_left (fun acc z -> Float.max acc (Cx.norm z)) 1.0 xd
      in
      let agree a b =
        Array.for_all2
          (fun u v -> Cx.norm (Cx.( -: ) u v) <= 1e-9 *. scale)
          a b
      in
      agree xd xb && agree xd xs)

let prop_dc_matches_dense_oracle =
  QCheck2.Test.make
    ~name:"Dc.operating_point matches a dense-LU solve of the oracle"
    ~count:60 recipe_gen (fun recipe ->
      let open Rlc_circuit in
      let open Rlc_numerics in
      let nl, _ = build_netlist recipe in
      let v = Dc.operating_point nl in
      let size, g, _, b = dense_oracle nl in
      let rhs = Array.make size 0.0 in
      let col = ref 0 in
      Array.iter
        (fun e ->
          (match e with
          | Netlist.Vsource { stim; _ } | Netlist.Isource { stim; _ } ->
              let u = Stimulus.eval stim 0.0 in
              for i = 0 to size - 1 do
                rhs.(i) <- rhs.(i) +. (Matrix.get b i !col *. u)
              done;
              incr col
          | _ -> ()))
        (Netlist.elements nl);
      let x = Lu.solve (Lu.decompose g) rhs in
      let scale =
        Array.fold_left (fun acc z -> Float.max acc (Float.abs z)) 1.0 x
      in
      let ok = ref true in
      for node = 1 to Netlist.node_count nl - 1 do
        if Float.abs (v.(node) -. x.(node - 1)) > 1e-12 *. scale then
          ok := false
      done;
      !ok)

let prop_transient_backends_agree =
  QCheck2.Test.make
    ~name:"transient: dense, banded and sparse backends agree to 1e-9"
    ~count:25 recipe_gen (fun recipe ->
      let open Rlc_circuit in
      let nl, nodes = build_netlist recipe in
      let probe = Transient.Node_v nodes.(Array.length nodes - 1) in
      let run backend =
        Transient.run ~backend nl ~t_end:1e-9 ~dt:1e-11 ~probes:[ probe ]
      in
      let vd = Transient.final_voltages (run Transient.Dense) in
      let vb = Transient.final_voltages (run Transient.Banded) in
      let vs = Transient.final_voltages (run Transient.Sparse) in
      let agree a b =
        Array.for_all2
          (fun u v -> Float.abs (u -. v) <= 1e-9 *. (1.0 +. Float.abs u))
          a b
      in
      agree vd vb && agree vd vs)

let prop_sparse_matches_dense_oracle =
  QCheck2.Test.make
    ~name:"sparse LU on the stamped G matches a dense-LU oracle to 1e-12"
    ~count:60 recipe_gen (fun recipe ->
      let open Rlc_circuit in
      let open Rlc_numerics in
      let nl, _ = build_netlist recipe in
      let asm = Assembly.of_netlist nl in
      let size, g, _, _ = dense_oracle nl in
      let plan = Solver.plan ~backend:Solver.Sparse asm.Assembly.adj in
      let fact =
        Solver.factor plan ~fill:(fun put -> Assembly.Coo.iter asm.Assembly.g put)
      in
      let rhs = Assembly.b_column asm 0 in
      let x = Solver.solve plan fact rhs in
      let x_ref = Lu.solve (Lu.decompose g) rhs in
      let scale =
        Array.fold_left (fun acc z -> Float.max acc (Float.abs z)) 1.0 x_ref
      in
      size = asm.Assembly.size
      && Array.for_all2
           (fun a b -> Float.abs (a -. b) <= 1e-12 *. scale)
           x x_ref)

(* ---------------- simulator physics ---------------- *)

let prop_rc_ladder_passivity =
  QCheck2.Test.make
    ~name:"rc ladder: node voltages stay within the source bounds" ~count:40
    QCheck2.Gen.(
      let* n = int_range 2 6 in
      let* rs = list_size (return n) (float_range 10.0 1000.0) in
      let* cs = list_size (return n) (float_range 1e-13 1e-11) in
      return (rs, cs))
    (fun (rs, cs) ->
      let open Rlc_circuit in
      let nl = Netlist.create () in
      let src = Netlist.fresh_node nl in
      Netlist.add_vsource nl src Netlist.ground (Stimulus.Dc 1.0);
      let probes = ref [] in
      let last =
        List.fold_left2
          (fun prev r c ->
            let next = Netlist.fresh_node nl in
            Netlist.add_resistor nl prev next r;
            Netlist.add_capacitor nl next Netlist.ground c;
            probes := Transient.Node_v next :: !probes;
            next)
          src rs cs
      in
      ignore last;
      let tau = List.fold_left2 (fun a r c -> a +. (r *. c)) 0.0 rs cs in
      let result =
        Transient.run nl ~t_end:(5.0 *. tau) ~dt:(tau /. 500.0)
          ~probes:!probes
      in
      List.for_all
        (fun p ->
          let w = Transient.get result p in
          let lo, hi = Rlc_numerics.Stats.min_max (Rlc_waveform.Waveform.values w) in
          lo >= -1e-9 && hi <= 1.0 +. 1e-9)
        !probes)

let test_trapezoidal_second_order_convergence () =
  (* error at a fixed time scales ~ dt^2 for the trapezoidal rule *)
  let value dt =
    let open Rlc_circuit in
    let nl = Netlist.create () in
    let a = Netlist.fresh_node nl in
    let b = Netlist.fresh_node nl in
    Netlist.add_vsource nl a Netlist.ground (Stimulus.Dc 1.0);
    Netlist.add_resistor nl a b 1e3;
    Netlist.add_capacitor nl b Netlist.ground 1e-9;
    let r =
      Transient.run nl ~t_end:1.0001e-6 ~dt ~probes:[ Transient.Node_v b ]
    in
    Rlc_waveform.Waveform.value_at (Transient.get r (Transient.Node_v b)) 1e-6
  in
  let exact = 1.0 -. Float.exp (-1.0) in
  let err dt = Float.abs (value dt -. exact) in
  let e1 = err 2e-8 and e2 = err 1e-8 in
  let order = Float.log (e1 /. e2) /. Float.log 2.0 in
  Alcotest.(check bool)
    (Printf.sprintf "observed order %.2f in [1.7, 2.3]" order)
    true
    (order > 1.7 && order < 2.3)

let test_backward_euler_first_order_convergence () =
  let value dt =
    let open Rlc_circuit in
    let nl = Netlist.create () in
    let a = Netlist.fresh_node nl in
    let b = Netlist.fresh_node nl in
    Netlist.add_vsource nl a Netlist.ground (Stimulus.Dc 1.0);
    Netlist.add_resistor nl a b 1e3;
    Netlist.add_capacitor nl b Netlist.ground 1e-9;
    let r =
      Transient.run ~integration:Transient.Backward_euler nl ~t_end:1.0001e-6
        ~dt ~probes:[ Transient.Node_v b ]
    in
    Rlc_waveform.Waveform.value_at (Transient.get r (Transient.Node_v b)) 1e-6
  in
  let exact = 1.0 -. Float.exp (-1.0) in
  let err dt = Float.abs (value dt -. exact) in
  let order = Float.log (err 2e-8 /. err 1e-8) /. Float.log 2.0 in
  Alcotest.(check bool)
    (Printf.sprintf "observed order %.2f in [0.8, 1.2]" order)
    true
    (order > 0.8 && order < 1.2)

let () =
  Alcotest.run "properties"
    [
      qsuite "tree"
        [
          prop_tree_elmore_matches_oracle;
          prop_tree_segmentation_preserves_totals;
          prop_tree_segmentation_preserves_elmore;
        ];
      qsuite "stimulus" [ prop_pulse_within_envelope; prop_pwl_within_envelope ];
      qsuite "stage-physics"
        [ prop_lcrit_separates_damping; prop_frequency_gd_positive_at_low_f ];
      qsuite "power" [ prop_power_monotone ];
      qsuite "coupled" [ prop_coupled_mode_capacitance ];
      qsuite "eye" [ prop_eye_prbs_balanced ];
      qsuite "insertion" [ prop_insertion_bound ];
      qsuite "assembly"
        [
          prop_assembly_matches_dense_oracle;
          prop_ac_backends_agree;
          prop_dc_matches_dense_oracle;
          prop_transient_backends_agree;
          prop_sparse_matches_dense_oracle;
        ];
      qsuite "simulator-passivity" [ prop_rc_ladder_passivity ];
      ( "simulator-convergence",
        [
          Alcotest.test_case "trapezoidal is second order" `Quick
            test_trapezoidal_second_order_convergence;
          Alcotest.test_case "backward euler is first order" `Quick
            test_backward_euler_first_order_convergence;
        ] );
    ]
