(* Cross-module integration tests: the analytic model chain (exact
   transfer function -> Padé -> delay solver -> optimizer) against the
   independent transient circuit simulator and the numerical inverse
   Laplace transform, plus end-to-end checks of the experiment
   drivers. *)

let check_close ?(tol = 1e-9) msg expected actual =
  if
    Float.abs (expected -. actual)
    > tol *. (1.0 +. Float.max (Float.abs expected) (Float.abs actual))
  then
    Alcotest.failf "%s: expected %.15g, got %.15g" msg expected actual

let node100 = Rlc_tech.Presets.node_100nm
let node250 = Rlc_tech.Presets.node_250nm

(* Build the Figure 1 structure (ideal step source -> R_S -> C_P ->
   distributed line -> C_L) in the circuit simulator and return the
   far-end waveform. *)
let simulate_stage ?(segments = 24) (stage : Rlc_core.Stage.t) ~t_end ~dt =
  let open Rlc_circuit in
  let nl = Netlist.create () in
  let src = Netlist.fresh_node nl in
  let drv = Netlist.fresh_node nl in
  let far = Netlist.fresh_node nl in
  Netlist.add_vsource nl src Netlist.ground (Stimulus.Dc 1.0);
  Netlist.add_resistor nl src drv (Rlc_core.Stage.rs stage);
  Netlist.add_capacitor nl drv Netlist.ground (Rlc_core.Stage.cp stage);
  Ladder.make nl
    {
      Ladder.r = stage.Rlc_core.Stage.line.Rlc_core.Line.r;
      l = stage.Rlc_core.Stage.line.Rlc_core.Line.l;
      c = stage.Rlc_core.Stage.line.Rlc_core.Line.c;
      length = stage.Rlc_core.Stage.h;
      segments;
    }
    ~from_node:drv ~to_node:far;
  Netlist.add_capacitor nl far Netlist.ground (Rlc_core.Stage.cl stage);
  let r = Transient.run nl ~t_end ~dt ~probes:[ Transient.Node_v far ] in
  Transient.get r (Transient.Node_v far)

let delay_50 w =
  match
    Rlc_waveform.Measure.threshold_delay w ~fraction:0.5 ~v_final:1.0
  with
  | Some d -> d
  | None -> Alcotest.fail "no 50% crossing"

(* ---- Padé model vs transient simulator ---- *)

let test_pade_delay_matches_simulator () =
  (* across inductances, the second-order model's 50% delay must track
     the full distributed simulation within the Padé truncation error
     (~15%) *)
  List.iter
    (fun l ->
      let stage = Rlc_core.Rc_opt.stage node100 ~l in
      let tau = Rlc_core.Delay.of_stage stage in
      let w = simulate_stage stage ~t_end:(8.0 *. tau) ~dt:(tau /. 1500.0) in
      let sim = delay_50 w in
      Alcotest.(check bool)
        (Printf.sprintf "pade %.1fps vs sim %.1fps at l=%g" (tau *. 1e12)
           (sim *. 1e12) l)
        true
        (Float.abs (tau /. sim -. 1.0) < 0.15))
    [ 0.0; 1e-6; 2e-6 ]

let test_simulator_shows_more_overshoot () =
  (* the distributed line rings harder than its 2-pole reduction: the
     simulator's overshoot must be >= the Padé prediction *)
  let stage = Rlc_core.Rc_opt.stage node100 ~l:2e-6 in
  let cs = Rlc_core.Pade.coeffs stage in
  let tau = Rlc_core.Delay.of_coeffs cs in
  let w = simulate_stage stage ~t_end:(10.0 *. tau) ~dt:(tau /. 1500.0) in
  let sim_overshoot =
    Rlc_numerics.Stats.max (Rlc_waveform.Waveform.values w) -. 1.0
  in
  let pade_overshoot = Rlc_core.Step_response.overshoot cs in
  Alcotest.(check bool) "sim >= pade overshoot" true
    (sim_overshoot >= pade_overshoot -. 0.02)

(* ---- exact transfer function vs Talbot inversion vs simulator ---- *)

let test_talbot_matches_simulator () =
  let stage = Rlc_core.Rc_opt.stage node100 ~l:1.5e-6 in
  let tau = Rlc_core.Delay.of_stage stage in
  let w = simulate_stage ~segments:40 stage ~t_end:(6.0 *. tau) ~dt:(tau /. 2000.0) in
  let exact t =
    Rlc_numerics.Laplace.step_response
      (fun s -> Rlc_core.Transfer.eval stage s)
      t
  in
  (* compare at several times after the flight delay *)
  List.iter
    (fun frac ->
      let t = frac *. 4.0 *. tau in
      check_close
        (Printf.sprintf "v(t) at %.2f tau" (frac *. 4.0))
        (exact t)
        (Rlc_waveform.Waveform.value_at w t)
        ~tol:0.05)
    [ 0.5; 0.75; 1.0 ]

let test_talbot_50pct_delay () =
  (* exact 50% delay via Talbot vs the simulator; tight agreement
     because both represent the true distributed structure *)
  let stage = Rlc_core.Rc_opt.stage node100 ~l:1e-6 in
  let tau = Rlc_core.Delay.of_stage stage in
  let exact t =
    Rlc_numerics.Laplace.step_response
      (fun s -> Rlc_core.Transfer.eval stage s)
      t
  in
  let exact_wf =
    Rlc_waveform.Waveform.of_fn ~n:1200 exact ~t0:0.0 ~t1:(6.0 *. tau)
  in
  let w = simulate_stage ~segments:40 stage ~t_end:(6.0 *. tau) ~dt:(tau /. 2000.0) in
  check_close "talbot vs ladder 50% delay" (delay_50 exact_wf) (delay_50 w)
    ~tol:0.03

(* ---- optimizer vs brute-force grid ---- *)

let test_optimizer_beats_grid () =
  let l = 2e-6 in
  let opt = Rlc_core.Rlc_opt.optimize node250 ~l in
  let best_grid = ref infinity in
  for i = 1 to 30 do
    for j = 1 to 30 do
      let h = 0.002 +. (0.001 *. float_of_int i) in
      let k = 50.0 +. (30.0 *. float_of_int j) in
      let v = Rlc_core.Rlc_opt.objective node250 ~l ~h ~k in
      if not (Float.is_nan v) then best_grid := Float.min !best_grid v
    done
  done;
  Alcotest.(check bool)
    (Printf.sprintf "optimizer %.4g <= grid best %.4g"
       opt.Rlc_core.Rlc_opt.delay_per_length !best_grid)
    true
    (opt.Rlc_core.Rlc_opt.delay_per_length <= !best_grid *. 1.0001)

(* ---- capacitance-invariance of the delay ratio (Fig 7 ablation) ---- *)

let test_delay_ratio_c_invariance () =
  let ratio node =
    let at l =
      (Rlc_core.Rlc_opt.optimize node ~l).Rlc_core.Rlc_opt.delay_per_length
    in
    at 3e-6 /. at 0.0
  in
  check_close "ablation node has identical ratio" (ratio node100)
    (ratio Rlc_tech.Presets.node_100nm_250nm_dielectric)
    ~tol:1e-4

(* ---- experiment drivers run end-to-end ---- *)

let test_table1_experiment () =
  let rows = Rlc_experiments.Table1.compute () in
  Alcotest.(check int) "two nodes" 2 (List.length rows);
  List.iter
    (fun row ->
      let d0 = row.Rlc_experiments.Table1.node.Rlc_tech.Node.driver in
      let d = row.Rlc_experiments.Table1.rederived_driver in
      check_close "rs roundtrip" d0.Rlc_tech.Driver.rs d.Rlc_tech.Driver.rs
        ~tol:1e-6;
      Alcotest.(check bool) "c bracketed" true
        (row.Rlc_experiments.Table1.c_extracted_quiet > 0.0
        && row.Rlc_experiments.Table1.c_extracted_worst
           > row.Rlc_experiments.Table1.c_extracted_quiet))
    rows

let test_fig2_experiment () =
  let cases = Rlc_experiments.Fig2.compute () in
  Alcotest.(check int) "three regimes" 3 (List.length cases);
  match cases with
  | [ over; crit; under ] ->
      Alcotest.(check bool) "ordering" true
        (over.Rlc_experiments.Fig2.regime = Rlc_core.Pade.Overdamped
        && crit.Rlc_experiments.Fig2.regime = Rlc_core.Pade.Critically_damped
        && under.Rlc_experiments.Fig2.regime = Rlc_core.Pade.Underdamped);
      Alcotest.(check bool) "only underdamped overshoots" true
        (over.Rlc_experiments.Fig2.overshoot = 0.0
        && under.Rlc_experiments.Fig2.overshoot > 0.0)
  | _ -> Alcotest.fail "unexpected case list"

let test_sweep_experiment_shapes () =
  let s = Rlc_experiments.Sweeps.run ~n:6 node100 in
  let points = s.Rlc_experiments.Sweeps.points in
  Alcotest.(check int) "6 points" 6 (List.length points);
  let first = List.nth points 0 and last = List.nth points 5 in
  check_close "delay ratio starts at 1" 1.0
    first.Rlc_experiments.Sweeps.delay_ratio;
  Alcotest.(check bool) "delay ratio grows" true
    (last.Rlc_experiments.Sweeps.delay_ratio > 2.5);
  Alcotest.(check bool) "h ratio grows" true
    (last.Rlc_experiments.Sweeps.h_ratio
    > first.Rlc_experiments.Sweeps.h_ratio);
  Alcotest.(check bool) "k ratio falls" true
    (last.Rlc_experiments.Sweeps.k_ratio
    < first.Rlc_experiments.Sweeps.k_ratio);
  Alcotest.(check bool) "penalty >= 1 everywhere" true
    (List.for_all
       (fun p -> p.Rlc_experiments.Sweeps.rc_sized_penalty >= 1.0 -. 1e-9)
       points);
  (* the paper's Section 2.1 point: at the optimized (h, k) the system
     is never strongly over- or underdamped (|disc|/b2 stays below 3.8
     across the whole practical l range), so the Kahng-Muddu
     approximation is stuck in its inductance-blind critical fallback *)
  Alcotest.(check bool) "km in fallback at every optimized point" true
    (List.for_all
       (fun p -> not p.Rlc_experiments.Sweeps.km_applicable)
       points)

let test_fig8_penalty_band () =
  (* the paper's Figure 8 numbers: worst-case penalty ~6% at 250nm and
     ~12% at 100nm; allow generous bands around them *)
  let max_penalty node =
    let s = Rlc_experiments.Sweeps.run ~n:11 node in
    List.fold_left
      (fun acc p -> Float.max acc p.Rlc_experiments.Sweeps.rc_sized_penalty)
      1.0 s.Rlc_experiments.Sweeps.points
  in
  let p250 = max_penalty node250 and p100 = max_penalty node100 in
  Alcotest.(check bool)
    (Printf.sprintf "250nm penalty %.3f in [1.03, 1.12]" p250)
    true
    (p250 > 1.03 && p250 < 1.12);
  Alcotest.(check bool)
    (Printf.sprintf "100nm penalty %.3f in [1.08, 1.18]" p100)
    true
    (p100 > 1.08 && p100 < 1.18);
  Alcotest.(check bool) "100nm worse than 250nm" true (p100 > p250)

let test_fig4_lcrit_ordering () =
  let s250 = Rlc_experiments.Sweeps.run ~n:6 node250 in
  let s100 = Rlc_experiments.Sweeps.run ~n:6 node100 in
  List.iter2
    (fun p250 p100 ->
      Alcotest.(check bool) "lcrit(100nm) < lcrit(250nm)" true
        (p100.Rlc_experiments.Sweeps.l_crit
        < p250.Rlc_experiments.Sweeps.l_crit);
      Alcotest.(check bool) "lcrit grows with l" true
        (p250.Rlc_experiments.Sweeps.l_crit > 0.0))
    s250.Rlc_experiments.Sweeps.points s100.Rlc_experiments.Sweeps.points

let () =
  Alcotest.run "integration"
    [
      ( "model-vs-simulator",
        [
          Alcotest.test_case "pade delay tracks ladder" `Slow
            test_pade_delay_matches_simulator;
          Alcotest.test_case "ladder rings harder than pade" `Slow
            test_simulator_shows_more_overshoot;
        ] );
      ( "exact-response",
        [
          Alcotest.test_case "talbot matches ladder pointwise" `Slow
            test_talbot_matches_simulator;
          Alcotest.test_case "talbot vs ladder 50% delay" `Slow
            test_talbot_50pct_delay;
        ] );
      ( "optimizer",
        [
          Alcotest.test_case "beats brute-force grid" `Slow
            test_optimizer_beats_grid;
          Alcotest.test_case "delay ratio c-invariance (Fig 7)" `Slow
            test_delay_ratio_c_invariance;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "table 1" `Quick test_table1_experiment;
          Alcotest.test_case "figure 2" `Quick test_fig2_experiment;
          Alcotest.test_case "sweep shapes" `Slow test_sweep_experiment_shapes;
          Alcotest.test_case "figure 8 penalty band" `Slow
            test_fig8_penalty_band;
          Alcotest.test_case "figure 4 ordering" `Slow test_fig4_lcrit_ordering;
        ] );
    ]
