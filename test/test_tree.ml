(* Tests for rlc_tree: tree structure, RLC moments (validated against
   hand calculations and the paper's b1/b2), and van Ginneken buffer
   insertion (validated against exhaustive search). *)

let check_close ?(tol = 1e-9) msg expected actual =
  if
    Float.abs (expected -. actual)
    > tol *. (1.0 +. Float.max (Float.abs expected) (Float.abs actual))
  then
    Alcotest.failf "%s: expected %.15g, got %.15g" msg expected actual

open Rlc_tree

let node100 = Rlc_tech.Presets.node_100nm
let driver100 = node100.Rlc_tech.Node.driver

let simple_wire = Tree.wire ~r:100.0 ~l:0.0 ~c:1e-12

let small_tree () =
  Tree.node ~name:"root"
    [
      ( simple_wire,
        Tree.node ~name:"j"
          [
            (simple_wire, Tree.sink ~name:"a" ~cap:5e-15);
            (Tree.wire ~r:200.0 ~l:0.0 ~c:2e-12, Tree.sink ~name:"b" ~cap:1e-15);
          ] );
    ]

(* ---------------- Tree ---------------- *)

let test_tree_structure () =
  let t = small_tree () in
  Alcotest.(check int) "size" 3 (Tree.size t);
  Alcotest.(check int) "depth" 2 (Tree.depth t);
  Alcotest.(check bool) "finds sink" true (Tree.find_sink t "a");
  Alcotest.(check bool) "missing sink" true (not (Tree.find_sink t "zz"));
  Alcotest.(check (list (pair string (float 1e-20))))
    "sinks"
    [ ("a", 5e-15); ("b", 1e-15) ]
    (Tree.sinks t)

let test_tree_totals () =
  let t = small_tree () in
  check_close "total cap" (1e-12 +. 1e-12 +. 2e-12 +. 5e-15 +. 1e-15)
    (Tree.total_cap t);
  match Tree.total_wire t with
  | Some w ->
      check_close "total r" 400.0 w.Tree.r;
      check_close "total c" 4e-12 w.Tree.c
  | None -> Alcotest.fail "expected wire totals"

let test_tree_validation () =
  Alcotest.check_raises "empty node"
    (Invalid_argument "Tree.node: empty branch list") (fun () ->
      ignore (Tree.node []));
  Alcotest.check_raises "bad wire" (Invalid_argument "Tree.wire: r <= 0")
    (fun () -> ignore (Tree.wire ~r:0.0 ~l:0.0 ~c:0.0));
  let dup =
    Tree.node
      [
        (simple_wire, Tree.sink ~name:"x" ~cap:0.0);
        (simple_wire, Tree.sink ~name:"x" ~cap:0.0);
      ]
  in
  Alcotest.check_raises "duplicate sinks"
    (Invalid_argument "Tree.sinks: duplicate sink name x") (fun () ->
      ignore (Tree.sinks dup))

let test_tree_segment_edges () =
  let t = small_tree () in
  let seg =
    Tree.segment_edges ~max_segment:(Tree.wire ~r:50.0 ~l:0.0 ~c:1e-9) t
  in
  (* each 100-ohm edge splits in 2, the 200-ohm edge in 4 *)
  Alcotest.(check int) "segmented size" 8 (Tree.size seg);
  (* totals preserved *)
  (match (Tree.total_wire t, Tree.total_wire seg) with
  | Some a, Some b ->
      check_close "r preserved" a.Tree.r b.Tree.r;
      check_close "c preserved" a.Tree.c b.Tree.c
  | _ -> Alcotest.fail "totals");
  check_close "cap preserved" (Tree.total_cap t) (Tree.total_cap seg)

let test_tree_map_wires () =
  let t = small_tree () in
  let doubled = Tree.map_wires (fun w -> { w with Tree.r = 2.0 *. w.Tree.r }) t in
  match Tree.total_wire doubled with
  | Some w -> check_close "doubled r" 800.0 w.Tree.r
  | None -> Alcotest.fail "totals"

(* ---------------- Moments ---------------- *)

let test_moments_single_rc () =
  (* driver Rs into wire (R, C) ending in sink CL:
     Elmore = Rs (C + CL) + R (C/2 + CL) *)
  let rs = 50.0 and r = 100.0 and c = 1e-12 and cl = 2e-13 in
  let t =
    Tree.node ~name:"root" [ (Tree.wire ~r ~l:0.0 ~c, Tree.sink ~name:"s" ~cap:cl) ]
  in
  match Moments.compute ~driver_rs:rs t with
  | [ sm ] ->
      check_close "elmore" ((rs *. (c +. cl)) +. (r *. ((c /. 2.0) +. cl)))
        sm.Moments.b1;
      Alcotest.(check bool) "rc tree: b2 >= 0" true (sm.Moments.b2 >= 0.0)
  | _ -> Alcotest.fail "one sink expected"

let test_moments_lumped_rlc () =
  (* single lumped RLC: H = 1/(1 + (R+Rs) C s + L C s^2) with all cap at
     the sink: b2 must equal L*C exactly *)
  let rs = 50.0 and r = 100.0 and l = 1e-9 and cl = 1e-12 in
  let t =
    Tree.node ~name:"root"
      [ (Tree.wire ~r ~l ~c:1e-30, Tree.sink ~name:"s" ~cap:cl) ]
  in
  match Moments.compute ~driver_rs:rs t with
  | [ sm ] ->
      check_close "b1" ((rs +. r) *. cl) sm.Moments.b1 ~tol:1e-9;
      check_close "b2 = LC" (l *. cl) sm.Moments.b2 ~tol:1e-9
  | _ -> Alcotest.fail "one sink expected"

let test_moments_match_stage () =
  (* a finely segmented chain must reproduce the paper's b1/b2 *)
  let l = 1.5e-6 in
  let stage = Rlc_core.Rc_opt.stage node100 ~l in
  let cs = Rlc_core.Pade.coeffs stage in
  let segs = 64 in
  let seg_len = stage.Rlc_core.Stage.h /. float_of_int segs in
  let wires =
    List.init segs (fun _ ->
        Tree.wire_of_line stage.Rlc_core.Stage.line ~length:seg_len)
  in
  let tree = Tree.chain ~sink_cap:(Rlc_core.Stage.cl stage) wires in
  match
    Moments.compute ~driver_cp:(Rlc_core.Stage.cp stage)
      ~driver_rs:(Rlc_core.Stage.rs stage) tree
  with
  | [ sm ] ->
      check_close "b1 matches stage" cs.Rlc_core.Pade.b1 sm.Moments.b1
        ~tol:1e-9;
      check_close "b2 matches stage" cs.Rlc_core.Pade.b2 sm.Moments.b2
        ~tol:1e-3
  | _ -> Alcotest.fail "one sink expected"

let test_moments_inductance_only_in_b2 () =
  let mk l =
    Tree.node ~name:"root"
      [ (Tree.wire ~r:100.0 ~l ~c:1e-12, Tree.sink ~name:"s" ~cap:1e-13) ]
  in
  let get l =
    match Moments.compute ~driver_rs:50.0 (mk l) with
    | [ sm ] -> sm
    | _ -> Alcotest.fail "one sink"
  in
  let a = get 0.0 and b = get 1e-9 in
  check_close "b1 unaffected by l" a.Moments.b1 b.Moments.b1;
  Alcotest.(check bool) "b2 grows with l" true (b.Moments.b2 > a.Moments.b2)

let test_moments_farther_sink_slower () =
  let t = small_tree () in
  match Moments.compute ~driver_rs:20.0 t with
  | [ a; b ] ->
      (* sink b is behind the larger wire *)
      Alcotest.(check bool) "b slower" true (b.Moments.b1 > a.Moments.b1);
      let crit = Moments.critical_sink [ a; b ] in
      Alcotest.(check string) "critical sink" "b" crit.Moments.name
  | _ -> Alcotest.fail "two sinks expected"

let test_moments_sink_delay () =
  let sm =
    { Moments.name = "x"; m1 = -1e-10; m2 = 8e-21; b1 = 1e-10; b2 = 2e-21 }
  in
  let tau = Moments.sink_delay sm in
  check_close "consistent with Delay.of_coeffs"
    (Rlc_core.Delay.of_coeffs { Rlc_core.Pade.b1 = 1e-10; b2 = 2e-21 })
    tau

(* ---------------- Buffering ---------------- *)

let test_wire_delay_limits () =
  let rc = Tree.wire ~r:100.0 ~l:0.0 ~c:1e-12 in
  check_close "rc limit = ln2 * elmore"
    (Float.log 2.0 *. 100.0 *. ((0.5e-12) +. 1e-13))
    (Buffering.wire_delay rc ~load:1e-13);
  let rlc = Tree.wire ~r:100.0 ~l:1e-9 ~c:1e-12 in
  Alcotest.(check bool) "inductance changes the delay" true
    (Buffering.wire_delay rlc ~load:1e-13
    <> Buffering.wire_delay rc ~load:1e-13)

let test_buffer_delay_model () =
  check_close "buffer delay"
    (Float.log 2.0
    *. ((driver100.Rlc_tech.Driver.rs *. driver100.Rlc_tech.Driver.cp)
       +. (driver100.Rlc_tech.Driver.rs *. 1e-12 /. 100.0)))
    (Buffering.buffer_delay driver100 ~k:100.0 ~load:1e-12)

let test_buffering_improves_long_chain () =
  let line = Rlc_core.Line.of_node node100 ~l:1.5e-6 in
  let wires = List.init 8 (fun _ -> Tree.wire_of_line line ~length:0.008) in
  let tree = Tree.chain ~sink_cap:(driver100.Rlc_tech.Driver.c0 *. 400.0) wires in
  let plan = Buffering.insert ~driver:driver100 ~root_k:400.0 tree in
  Alcotest.(check bool) "buffers inserted" true (plan.Buffering.buffers <> []);
  Alcotest.(check bool) "delay improves substantially" true
    (plan.Buffering.worst_delay < 0.7 *. plan.Buffering.unbuffered_delay)

let test_buffering_dp_matches_exhaustive () =
  (* tiny tree, tiny size menu: enumerate all assignments *)
  let line = Rlc_core.Line.of_node node100 ~l:1e-6 in
  let w len = Tree.wire_of_line line ~length:len in
  let tree =
    Tree.node ~name:"n0"
      [
        ( w 0.006,
          Tree.node ~name:"n1"
            [
              (w 0.006, Tree.sink ~name:"a" ~cap:3e-13);
              (w 0.009, Tree.sink ~name:"b" ~cap:2e-13);
            ] );
      ]
  in
  let sizes = [ 100.0; 300.0 ] in
  let plan = Buffering.insert ~sizes ~driver:driver100 ~root_k:300.0 tree in
  (* exhaustive: each of n0, n1 gets None or one of the sizes *)
  let choices = None :: List.map (fun k -> Some k) sizes in
  let best = ref infinity in
  List.iter
    (fun c0 ->
      List.iter
        (fun c1 ->
          let buffers =
            List.filter_map
              (fun (n, c) -> Option.map (fun k -> (n, k)) c)
              [ ("n0", c0); ("n1", c1) ]
          in
          let d =
            Buffering.evaluate ~driver:driver100 ~root_k:300.0 ~buffers tree
          in
          if d < !best then best := d)
        choices)
    choices;
  check_close "dp equals exhaustive optimum" !best plan.Buffering.worst_delay
    ~tol:1e-9

let test_buffering_plan_evaluates_consistently () =
  let line = Rlc_core.Line.of_node node100 ~l:2e-6 in
  let wires = List.init 5 (fun _ -> Tree.wire_of_line line ~length:0.01) in
  let tree = Tree.chain ~sink_cap:2e-13 wires in
  let plan = Buffering.insert ~driver:driver100 ~root_k:500.0 tree in
  let d =
    Buffering.evaluate ~driver:driver100 ~root_k:500.0
      ~buffers:plan.Buffering.buffers tree
  in
  check_close "evaluate(plan) = dp result" plan.Buffering.worst_delay d
    ~tol:1e-12

let test_buffering_validation () =
  let tree = small_tree () in
  Alcotest.check_raises "empty sizes"
    (Invalid_argument "Buffering.insert: empty size list") (fun () ->
      ignore (Buffering.insert ~sizes:[] ~driver:driver100 ~root_k:100.0 tree));
  Alcotest.check_raises "unknown buffer site"
    (Invalid_argument "Buffering.evaluate: unknown node zz") (fun () ->
      ignore
        (Buffering.evaluate ~driver:driver100 ~root_k:100.0
           ~buffers:[ ("zz", 100.0) ]
           tree))

let test_buffering_inductance_awareness () =
  (* the same net buffered under an RC model vs an RLC model: painting
     inductance on must not reduce the DP's achievable delay *)
  let mk l =
    let line = Rlc_core.Line.of_node node100 ~l in
    Tree.chain ~sink_cap:2e-13
      (List.init 6 (fun _ -> Tree.wire_of_line line ~length:0.008))
  in
  let d l =
    (Buffering.insert ~driver:driver100 ~root_k:400.0 (mk l))
      .Buffering.worst_delay
  in
  Alcotest.(check bool) "inductive net is slower" true (d 2e-6 > d 0.0)

(* ---------------- Awe ---------------- *)

let test_awe_single_pole () =
  (* H = 1/(1+s): m_i = (-1)^i *)
  let moments = [| 1.0; -1.0; 1.0; -1.0 |] in
  let m = Awe.reduce ~moments ~order:1 in
  Alcotest.(check bool) "stable" true m.Awe.stable;
  (match m.Awe.poles with
  | [ p ] -> check_close "pole at -1" (-1.0) (Rlc_numerics.Cx.re p)
  | _ -> Alcotest.fail "one pole");
  check_close "v(1) = 1 - e^-1" (1.0 -. Float.exp (-1.0)) (Awe.step_eval m 1.0)
    ~tol:1e-9;
  check_close "50% delay = ln 2" (Float.log 2.0) (Awe.delay m) ~tol:1e-9

let test_awe_two_pole_exact () =
  (* H = 1/(1+3s+2s^2), poles -1/2 and -1:
     taylor 1/D: m1 = -3, m2 = 9-2 = 7, m3 = -(27 - 2*3*2) = -15 *)
  let moments = [| 1.0; -3.0; 7.0; -15.0 |] in
  let m = Awe.reduce ~moments ~order:2 in
  Alcotest.(check bool) "stable" true m.Awe.stable;
  let res = List.sort compare (List.map Rlc_numerics.Cx.re m.Awe.poles) in
  (match res with
  | [ p1; p2 ] ->
      check_close "pole -1" (-1.0) p1 ~tol:1e-9;
      check_close "pole -1/2" (-0.5) p2 ~tol:1e-9
  | _ -> Alcotest.fail "two poles");
  (* exact step response of 1/((1+s)(1+2s)): 1 - 2 e^{-t/2} + e^{-t} *)
  let exact t = 1.0 -. (2.0 *. Float.exp (-.t /. 2.0)) +. Float.exp (-.t) in
  List.iter
    (fun t -> check_close (Printf.sprintf "v(%g)" t) (exact t)
        (Awe.step_eval m t) ~tol:1e-9)
    [ 0.5; 1.0; 3.0 ]

let test_awe_moment_matching () =
  (* the reduced model must reproduce its input moments:
     m_k = - sum_i res_i / p_i^k for k >= 1 *)
  let stage = Rlc_core.Rc_opt.stage node100 ~l:2e-6 in
  let seg_len = stage.Rlc_core.Stage.h /. 32.0 in
  let wires =
    List.init 32 (fun _ ->
        Tree.wire_of_line stage.Rlc_core.Stage.line ~length:seg_len)
  in
  let tree = Tree.chain ~sink_cap:(Rlc_core.Stage.cl stage) wires in
  let moments =
    match
      Moments.voltage_moments ~driver_cp:(Rlc_core.Stage.cp stage)
        ~driver_rs:(Rlc_core.Stage.rs stage) ~order:5 tree
    with
    | [ (_, ms) ] -> ms
    | _ -> Alcotest.fail "one sink"
  in
  let q = 3 in
  let m = Awe.reduce ~moments ~order:q in
  for k = 1 to (2 * q) - 1 do
    let reconstructed =
      List.fold_left2
        (fun acc p res ->
          let open Rlc_numerics.Cx in
          acc -. re (res /: pow p (of_float (float_of_int k))))
        0.0 m.Awe.poles m.Awe.residues
    in
    check_close
      (Printf.sprintf "moment %d matched" k)
      moments.(k) reconstructed ~tol:1e-6
  done

let test_awe_accuracy_improves_with_order () =
  (* higher stable orders track the third-order analytic model better
     than order 1 does *)
  let stage = Rlc_core.Rc_opt.stage node100 ~l:2e-6 in
  let reference = Rlc_core.Third_order.delay_stage stage in
  let err q =
    let m = Awe.of_stage ~order:q stage in
    if not m.Awe.stable then infinity
    else Float.abs ((Awe.delay m /. reference) -. 1.0)
  in
  Alcotest.(check bool) "q2 beats q1" true (err 2 < err 1);
  Alcotest.(check bool) "q4 close to reference" true (err 4 < 0.05)

let test_awe_validation () =
  Alcotest.check_raises "short moments"
    (Invalid_argument "Awe.reduce: need moments up to 2*order - 1") (fun () ->
      ignore (Awe.reduce ~moments:[| 1.0; -1.0 |] ~order:2));
  Alcotest.check_raises "bad m0" (Invalid_argument "Awe.reduce: m_0 must be 1")
    (fun () ->
      ignore (Awe.reduce ~moments:[| 2.0; -1.0; 1.0; -1.0 |] ~order:2))

let test_awe_of_tree_multisink () =
  let line = Rlc_core.Line.of_node node100 ~l:1e-6 in
  let w len = Tree.wire_of_line line ~length:len in
  let tree =
    Tree.node ~name:"r"
      [
        ( w 0.008,
          Tree.node ~name:"j"
            [
              (w 0.004, Tree.sink ~name:"near" ~cap:2e-13);
              (w 0.010, Tree.sink ~name:"far" ~cap:2e-13);
            ] );
      ]
    (* refine so the near sink has enough effective states for q = 2
       (coarse trees legitimately destabilise higher orders) *)
    |> Tree.segment_edges ~max_segment:(w 0.002)
  in
  let models = Awe.of_tree ~driver_rs:15.0 ~order:2 tree in
  Alcotest.(check int) "two sinks" 2 (List.length models);
  let delay name =
    let m = List.assoc name models in
    Alcotest.(check bool) (name ^ " stable") true m.Awe.stable;
    Awe.delay m
  in
  Alcotest.(check bool) "far sink slower" true (delay "far" > delay "near")

(* ---------------- Htree ---------------- *)

let test_htree_structure () =
  let line = Rlc_core.Line.of_node node100 ~l:1e-6 in
  let t = Htree.build ~levels:3 ~total_span:0.02 ~line ~sink_cap:1e-13 in
  Alcotest.(check int) "8 sinks" 8 (List.length (Tree.sinks t));
  Alcotest.(check int) "depth" 3 (Tree.depth t);
  (* total wire per root-to-sink path: span/2 + span/4 + span/8 *)
  match Tree.total_wire t with
  | Some w ->
      (* 2 edges of span/2, 4 of span/4, 8 of span/8: total 3 * span *)
      check_close "total wire length" (3.0 *. 0.02 *. node100.Rlc_tech.Node.r)
        w.Tree.r ~tol:1e-9
  | None -> Alcotest.fail "wire totals"

let test_htree_balanced_zero_skew () =
  let line = Rlc_core.Line.of_node node100 ~l:1.5e-6 in
  let t = Htree.build ~levels:4 ~total_span:0.02 ~line ~sink_cap:4e-13 in
  let s = Htree.skew ~driver_rs:15.0 t in
  Alcotest.(check bool) "zero skew" true (Float.abs s < 1e-15)

let test_htree_inductance_imbalance_creates_skew () =
  let line = Rlc_core.Line.of_node node100 ~l:1.5e-6 in
  let t = Htree.build ~levels:4 ~total_span:0.02 ~line ~sink_cap:4e-13 in
  let bump dl w =
    { w with Tree.l = w.Tree.l +. (dl *. w.Tree.r /. node100.Rlc_tech.Node.r) }
  in
  let skew_at dl =
    Htree.skew ~driver_rs:15.0 (Htree.imbalance_first_branch (bump dl) t)
  in
  let s1 = skew_at 0.5e-6 and s2 = skew_at 2e-6 in
  Alcotest.(check bool) "skew appears" true (s1 > 1e-12);
  Alcotest.(check bool) "skew grows with the asymmetry" true (s2 > 2.0 *. s1)

let test_htree_capacitive_imbalance_creates_skew () =
  let line = Rlc_core.Line.of_node node100 ~l:0.0 in
  let t = Htree.build ~levels:3 ~total_span:0.02 ~line ~sink_cap:4e-13 in
  let heavier w = { w with Tree.c = 1.3 *. w.Tree.c } in
  let s = Htree.skew ~driver_rs:15.0 (Htree.imbalance_first_branch heavier t) in
  Alcotest.(check bool) "miller-style imbalance skews too" true (s > 1e-12)

let test_htree_to_netlist () =
  let line = Rlc_core.Line.of_node node100 ~l:1.5e-6 in
  let t = Htree.build ~levels:3 ~total_span:0.02 ~line ~sink_cap:4e-13 in
  let nl, _root, sinks =
    Htree.to_netlist ~segments_per_wire:2 ~driver_rs:15.0 ~t_rise:5e-12 t
  in
  Alcotest.(check int) "8 sink nodes" 8 (List.length sinks);
  Alcotest.(check (list string))
    "sink order matches the tree" (List.map fst (Tree.sinks t))
    (List.map fst sinks);
  let probes =
    List.map (fun (_, n) -> Rlc_circuit.Transient.Node_v n) sinks
  in
  (* size the window from the moment engine's own delay estimate *)
  let d_est =
    List.fold_left
      (fun acc (_, d) -> Float.max acc d)
      0.0
      (Htree.sink_delays ~driver_rs:15.0 t)
  in
  let res =
    Rlc_circuit.Transient.simulate nl ~t_end:(8.0 *. d_est)
      ~dt:(d_est /. 400.0) ~probes
  in
  let delay_of probe =
    match
      Rlc_waveform.Measure.first_crossing
        (Rlc_circuit.Transient.get res probe)
        ~level:0.5
    with
    | Some t50 -> t50
    | None -> Alcotest.fail "sink never crossed 50%"
  in
  let delays = List.map delay_of probes in
  let d0 = List.hd delays in
  Alcotest.(check bool) "positive delay" true (d0 > 0.0);
  (* the tree is balanced: every sink must see the same waveform *)
  List.iter
    (fun d -> check_close ~tol:1e-9 "balanced sinks agree" d0 d)
    delays;
  (* and the circuit-level skew agrees with the moment engine's zero *)
  let spread =
    List.fold_left Float.max d0 delays -. List.fold_left Float.min d0 delays
  in
  Alcotest.(check bool) "zero skew in simulation" true (spread < 1e-13)

let test_htree_validation () =
  let line = Rlc_core.Line.of_node node100 ~l:0.0 in
  Alcotest.check_raises "levels" (Invalid_argument "Htree.build: levels must be in 1..12")
    (fun () ->
      ignore (Htree.build ~levels:0 ~total_span:0.01 ~line ~sink_cap:1e-13))

let () =
  Alcotest.run "rlc_tree"
    [
      ( "tree",
        [
          Alcotest.test_case "structure" `Quick test_tree_structure;
          Alcotest.test_case "totals" `Quick test_tree_totals;
          Alcotest.test_case "validation" `Quick test_tree_validation;
          Alcotest.test_case "segment_edges" `Quick test_tree_segment_edges;
          Alcotest.test_case "map_wires" `Quick test_tree_map_wires;
        ] );
      ( "moments",
        [
          Alcotest.test_case "single rc elmore" `Quick test_moments_single_rc;
          Alcotest.test_case "lumped rlc b2 = LC" `Quick
            test_moments_lumped_rlc;
          Alcotest.test_case "chain matches paper b1/b2" `Quick
            test_moments_match_stage;
          Alcotest.test_case "l only enters b2" `Quick
            test_moments_inductance_only_in_b2;
          Alcotest.test_case "critical sink" `Quick
            test_moments_farther_sink_slower;
          Alcotest.test_case "sink delay" `Quick test_moments_sink_delay;
        ] );
      ( "buffering",
        [
          Alcotest.test_case "wire delay limits" `Quick test_wire_delay_limits;
          Alcotest.test_case "buffer delay model" `Quick
            test_buffer_delay_model;
          Alcotest.test_case "improves a long chain" `Quick
            test_buffering_improves_long_chain;
          Alcotest.test_case "dp = exhaustive (small tree)" `Quick
            test_buffering_dp_matches_exhaustive;
          Alcotest.test_case "plan evaluates consistently" `Quick
            test_buffering_plan_evaluates_consistently;
          Alcotest.test_case "validation" `Quick test_buffering_validation;
          Alcotest.test_case "inductance awareness" `Quick
            test_buffering_inductance_awareness;
        ] );
      ( "awe",
        [
          Alcotest.test_case "single pole exact" `Quick test_awe_single_pole;
          Alcotest.test_case "two poles exact" `Quick test_awe_two_pole_exact;
          Alcotest.test_case "moment matching" `Quick test_awe_moment_matching;
          Alcotest.test_case "accuracy vs order" `Quick
            test_awe_accuracy_improves_with_order;
          Alcotest.test_case "validation" `Quick test_awe_validation;
          Alcotest.test_case "multi-sink tree" `Quick
            test_awe_of_tree_multisink;
        ] );
      ( "htree",
        [
          Alcotest.test_case "structure" `Quick test_htree_structure;
          Alcotest.test_case "balanced: zero skew" `Quick
            test_htree_balanced_zero_skew;
          Alcotest.test_case "inductive imbalance skews" `Quick
            test_htree_inductance_imbalance_creates_skew;
          Alcotest.test_case "capacitive imbalance skews" `Quick
            test_htree_capacitive_imbalance_creates_skew;
          Alcotest.test_case "to_netlist transient skew" `Quick
            test_htree_to_netlist;
          Alcotest.test_case "validation" `Quick test_htree_validation;
        ] );
    ]
