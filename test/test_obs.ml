(* Tests for the observability layer: the journal record/read paths
   (provenance stamping, caps, JSONL round-trip through the rlcstat
   parser), numerical-health classification and probes, the per-job
   provenance chains the serving layer writes (cache traffic → job
   lifecycle → solver fallback / health events → err annotation), the
   rlcstat rollup over those chains, snapshot regression diffs, and
   bitwise waveform/stream identity with journaling on. *)

open Rlc_circuit
module M = Rlc_instr.Metrics
module Control = Rlc_instr.Control
module Journal = Rlc_instr.Journal
module Health = Rlc_instr.Health
module Jsonv = Rlc_instr.Jsonv
module Stat = Rlc_instr.Stat
module Pool = Rlc_parallel.Pool
module Protocol = Rlc_serve.Protocol
module Service = Rlc_serve.Service

(* Run [f] with journaling (and therefore recording) on, restoring
   both switches; the suite must behave the same under RLC_STATS=1. *)
let with_journal f =
  let was = Control.enabled () in
  M.reset ();
  Journal.start ();
  Fun.protect
    ~finally:(fun () ->
      Journal.stop ();
      Control.set_enabled was)
    f

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* ---------------- journal basics ---------------- *)

let test_journal_roundtrip () =
  with_journal (fun () ->
      Alcotest.(check bool) "capturing" true (Journal.capturing ());
      Journal.with_provenance "job-a#1" (fun () ->
          Journal.record "unit.event"
            [
              ("n", Journal.Int 3);
              ("x", Journal.Num 2.5);
              ("nan", Journal.Num Float.nan);
              ("inf", Journal.Num Float.infinity);
              ("s", Journal.Str "quote \" backslash \\ newline \n done");
            ]);
      Journal.record "unit.bare" [];
      Alcotest.(check string) "provenance restored" ""
        (Journal.provenance ());
      let events = Journal.events () in
      Alcotest.(check int) "two events" 2 (List.length events);
      let e = List.hd events in
      Alcotest.(check string) "name" "unit.event" e.Journal.name;
      Alcotest.(check string) "provenance" "job-a#1" e.Journal.provenance;
      Alcotest.(check (option (float 0.0))) "int field as num" (Some 3.0)
        (Journal.num_field e "n");
      Alcotest.(check (option string)) "str field"
        (Some "quote \" backslash \\ newline \n done")
        (Journal.str_field e "s");
      (* every line parses back through the rlcstat JSON parser, with
         fields and provenance intact *)
      let lines = Journal.to_lines () in
      let entries, skipped = Stat.entries_of_lines lines in
      Alcotest.(check int) "no line lost" 0 skipped;
      Alcotest.(check int) "entry per event" 2 (List.length entries);
      let p = List.hd entries in
      Alcotest.(check string) "entry provenance" "job-a#1" p.Stat.eprov;
      Alcotest.(check string) "entry name" "unit.event" p.Stat.ename;
      (match List.assoc_opt "s" p.Stat.efields with
      | Some (Jsonv.Str s) ->
          Alcotest.(check string) "string field round-trips escaping"
            "quote \" backslash \\ newline \n done" s
      | _ -> Alcotest.fail "string field lost");
      (match List.assoc_opt "nan" p.Stat.efields with
      | Some Jsonv.Null -> ()
      | _ -> Alcotest.fail "NaN field must serialise as null");
      match List.assoc_opt "inf" p.Stat.efields with
      | Some (Jsonv.Num v) ->
          Alcotest.(check bool) "inf survives" true (v = Float.infinity)
      | _ -> Alcotest.fail "inf field lost")

let test_journal_cap () =
  with_journal (fun () ->
      let cap = Journal.cap () in
      Journal.set_cap 8;
      Fun.protect
        ~finally:(fun () -> Journal.set_cap cap)
        (fun () ->
          for i = 1 to 20 do
            Journal.record "cap.test" [ ("i", Journal.Int i) ]
          done;
          Alcotest.(check int) "kept at cap" 8
            (List.length (Journal.events ()));
          Alcotest.(check int) "overflow counted" 12 (Journal.dropped ());
          (* non-positive caps are ignored *)
          Journal.set_cap 0;
          Alcotest.(check int) "cap unchanged by 0" 8 (Journal.cap ())))

let test_journal_off_is_noop () =
  M.reset ();
  let was = Control.enabled () in
  Journal.stop ();
  Journal.record "ghost" [];
  Control.set_enabled was;
  Alcotest.(check bool) "not capturing" false (Journal.capturing ());
  Alcotest.(check int) "nothing recorded" 0 (List.length (Journal.events ()))

let test_with_provenance_exception () =
  with_journal (fun () ->
      Journal.set_provenance "outer";
      (try
         Journal.with_provenance "inner" (fun () -> failwith "boom")
       with Failure _ -> ());
      Alcotest.(check string) "restored after raise" "outer"
        (Journal.provenance ());
      Journal.set_provenance "")

(* ---------------- health classification ---------------- *)

let test_health_classify () =
  Alcotest.(check bool) "clean solve" true
    (Health.classify ~growth:10.0 ~rcond:1e-3 () = Health.Ok);
  Alcotest.(check bool) "growth past the repivot limit" true
    (Health.classify ~growth:(Health.growth_limit *. 10.0) ()
    = Health.Degraded);
  Alcotest.(check bool) "rcond near underflow" true
    (Health.classify ~rcond:(Health.rcond_limit /. 10.0) ()
    = Health.Degraded);
  Alcotest.(check bool) "no estimates defaults Ok" true
    (Health.classify () = Health.Ok);
  Alcotest.(check bool) "worst is ordered" true
    (Health.worst Health.Ok Health.Degraded = Health.Degraded
    && Health.worst Health.Failed Health.Degraded = Health.Failed
    && Health.worst Health.Ok Health.Ok = Health.Ok);
  List.iter
    (fun c ->
      Alcotest.(check bool)
        ("to/of_string round-trip " ^ Health.to_string c)
        true
        (Health.of_string (Health.to_string c) = Some c))
    [ Health.Ok; Health.Degraded; Health.Failed ]

let test_health_observe_and_report () =
  with_journal (fun () ->
      ignore (Health.observe ~kind:"unit" ~growth:1.0 ~rcond:0.5 ());
      ignore
        (Health.observe ~kind:"unit" ~growth:(Health.growth_limit *. 100.0) ());
      Health.failure ~kind:"unit" ~reason:"seeded failure";
      let r = Health.report () in
      Alcotest.(check int) "solves" 3 r.Health.solves;
      Alcotest.(check int) "ok" 1 r.Health.ok;
      Alcotest.(check int) "degraded" 1 r.Health.degraded;
      Alcotest.(check int) "failed" 1 r.Health.failed;
      (match r.Health.worst_growth with
      | Some g -> Alcotest.(check bool) "worst growth recorded" true (g > 1.0)
      | None -> Alcotest.fail "growth histogram empty");
      (* only the not-Ok observations journal an event *)
      let health_events =
        List.filter (fun e -> e.Journal.name = "health") (Journal.events ())
      in
      Alcotest.(check int) "one event per unhealthy solve" 2
        (List.length health_events))

(* ---------------- numerics probes ---------------- *)

let test_singular_lu_probe () =
  with_journal (fun () ->
      let m = Rlc_numerics.Matrix.create 2 2 in
      Rlc_numerics.Matrix.set m 0 0 1.0;
      Rlc_numerics.Matrix.set m 0 1 1.0;
      Rlc_numerics.Matrix.set m 1 0 1.0;
      Rlc_numerics.Matrix.set m 1 1 1.0;
      (match Rlc_numerics.Lu.decompose m with
      | exception Rlc_numerics.Lu.Singular -> ()
      | _ -> Alcotest.fail "rank-1 matrix must be singular");
      let r = Health.report () in
      Alcotest.(check bool) "failure recorded" true (r.Health.failed >= 1);
      Alcotest.(check bool) "journaled as failed" true
        (List.exists
           (fun e ->
             e.Journal.name = "health"
             && Journal.str_field e "class" = Some "failed")
           (Journal.events ())))

let test_newton_divergence_probe () =
  with_journal (fun () ->
      (* constant residual: the jacobian is singular, Newton stalls *)
      let r =
        Rlc_numerics.Newton.solve ~max_iter:5 ~f:(fun _ -> [| 1.0 |])
          ~x0:[| 0.0 |] ()
      in
      Alcotest.(check bool) "did not converge" false r.Rlc_numerics.Newton.converged;
      Alcotest.(check bool) "journaled the divergence" true
        (List.exists
           (fun e -> e.Journal.name = "newton.divergence")
           (Journal.events ())))

(* ---------------- serve provenance chains ---------------- *)

(* The grid from test_serve plus an RL branch in the interior.  The
   branch current unknown puts the branch resistance on the MNA
   diagonal with fixed ±1 incidence entries below it, so shrinking
   [rl] from "10" to "1e-9" — a value-only variant served from the
   healthy deck's cache entry — makes replaying the healthy deck's
   recorded pivot order produce 1e9 multipliers.  That trips the
   sparse refactor growth limit and forces the solver fallback, while
   the fresh threshold-pivoted factor recovers on the ±1 entries and
   the job still succeeds (followed by a symbolic refresh).
   [dup_source] adds a second identical voltage source in parallel:
   every node keeps its DC path to ground (validation passes), but
   the two constraint rows are exactly dependent, so the factor runs
   out of pivots and raises Singular. *)
let obs_grid ?(rl = "") ?(dup_source = false) n =
  let b = Buffer.create 4096 in
  Buffer.add_string b "* obs grid\nV1 n_0_0 0 DC 1\n";
  if dup_source then Buffer.add_string b "V2 n_0_0 0 DC 1\n";
  if rl <> "" then Printf.bprintf b "B1 n_12_12 n_12_13 r=%s l=1n\n" rl;
  for r = 0 to n - 1 do
    for c = 0 to n - 1 do
      if c + 1 < n then
        Printf.bprintf b "Rh%d_%d n_%d_%d n_%d_%d 10\n" r c r c r (c + 1);
      if r + 1 < n then
        Printf.bprintf b "Rv%d_%d n_%d_%d n_%d_%d 12\n" r c r c (r + 1) c;
      Printf.bprintf b "C%d_%d n_%d_%d 0 0.5p\n" r c r c
    done
  done;
  Buffer.add_string b ".end\n";
  Buffer.contents b

let job id query deck =
  Printf.sprintf "%s %s | %s" id query (Protocol.escape_deck deck)

let serve_lines tag =
  [
    job (tag ^ "-ok") "dc n_5_5" (obs_grid ~rl:"10" 24);
    job (tag ^ "-piv") "dc n_5_5" (obs_grid ~rl:"1e-9" 24);
    job (tag ^ "-sing") "dc n_5_5" (obs_grid ~dup_source:true 24);
  ]

let run_serve ~domains ~journaled tag =
  let was = Control.enabled () in
  M.reset ();
  if journaled then Journal.start ();
  let pool = Pool.create ~domains () in
  let config = { Service.default_config with pool } in
  let svc = Service.create ~config () in
  let results = Service.process_lines svc (serve_lines tag) in
  let events = Journal.events () in
  Journal.stop ();
  Control.set_enabled was;
  (results, svc, events)

let prov_of events ~name ~prefix =
  let hit =
    List.find_opt
      (fun e ->
        e.Journal.name = name
        && String.length e.Journal.provenance >= String.length prefix
        && String.sub e.Journal.provenance 0 (String.length prefix) = prefix)
      events
  in
  match hit with
  | Some e -> e.Journal.provenance
  | None -> Alcotest.failf "no %s event with provenance %s..." name prefix

let names_for events prov =
  List.filter_map
    (fun e ->
      if e.Journal.provenance = prov then Some e.Journal.name else None)
    events

let check_serve_chain ~domains =
  (* journal state is reset per run, so the same job ids can be
     reused at every domain count — which keeps the result streams
     directly comparable *)
  let tag = "job" in
  let results, svc, events = run_serve ~domains ~journaled:true tag in
  Alcotest.(check int) "three results" 3 (List.length results);
  let r_ok = List.nth results 0
  and r_piv = List.nth results 1
  and r_sing = List.nth results 2 in
  Alcotest.(check bool) "healthy job ok" true (contains r_ok "ok ");
  Alcotest.(check bool) "repivot job recovered to ok" true
    (contains r_piv ("ok " ^ tag ^ "-piv"));
  Alcotest.(check bool) "singular job errs" true
    (contains r_sing ("err " ^ tag ^ "-sing"));
  Alcotest.(check bool) "err carries the health annotation" true
    (contains r_sing "# health: failed");
  (* chain 1: repivot job — cache hit, lifecycle, solver fallback with
     the job's provenance, symbolic refresh *)
  let piv_prov =
    prov_of events ~name:"solver.fallback" ~prefix:(tag ^ "-piv#")
  in
  let piv_names = names_for events piv_prov in
  List.iter
    (fun n ->
      Alcotest.(check bool)
        (Printf.sprintf "repivot chain has %s" n)
        true (List.mem n piv_names))
    [ "cache.hit"; "job.start"; "solver.fallback"; "job.end"; "cache.resym" ];
  (match
     List.find_opt
       (fun e ->
         e.Journal.provenance = piv_prov && e.Journal.name = "job.end")
       events
   with
  | Some e ->
      Alcotest.(check (option string)) "repivot job ended ok" (Some "ok")
        (Journal.str_field e "status")
  | None -> Alcotest.fail "no job.end for the repivot job");
  Alcotest.(check int) "one symbolic refresh" 1
    (Service.summary svc).Service.resyms;
  (* chain 2: singular job — cache miss, lifecycle, health failed *)
  let sing_prov = prov_of events ~name:"health" ~prefix:(tag ^ "-sing#") in
  let sing_names = names_for events sing_prov in
  List.iter
    (fun n ->
      Alcotest.(check bool)
        (Printf.sprintf "singular chain has %s" n)
        true (List.mem n sing_names))
    [ "cache.miss"; "job.start"; "health"; "job.end" ];
  (match Health.worst_for events ~provenance:sing_prov with
  | Some (Health.Failed, reason) ->
      Alcotest.(check string) "failure reason" "singular pivot" reason
  | _ -> Alcotest.fail "worst_for must classify the singular job failed");
  (* rlcstat rolls the same stream up correctly *)
  let entries = List.map Stat.entry_of_event events in
  let r = Stat.rollup entries in
  Alcotest.(check int) "rollup jobs" 3 r.Stat.jobs;
  Alcotest.(check int) "rollup errors" 1 r.Stat.errors;
  Alcotest.(check bool) "rollup fallbacks" true (r.Stat.fallbacks >= 1);
  Alcotest.(check int) "rollup resyms" 1 r.Stat.resyms;
  Alcotest.(check bool) "rollup health failed" true (r.Stat.health_failed >= 1);
  (match r.Stat.kinds with
  | [ k ] ->
      Alcotest.(check string) "one query kind" "dc" k.Stat.kind;
      Alcotest.(check int) "kind count" 3 k.Stat.count;
      Alcotest.(check int) "kind errors" 1 k.Stat.errors;
      (match k.Stat.latency with
      | Some q ->
          Alcotest.(check bool) "quantiles ordered" true
            (q.Stat.p50 <= q.Stat.p90 && q.Stat.p90 <= q.Stat.p99)
      | None -> Alcotest.fail "job.end durations must yield quantiles")
  | l -> Alcotest.failf "expected one kind, got %d" (List.length l));
  results

let strip_annotation line =
  let marker = " # health: " in
  let n = String.length line and m = String.length marker in
  let rec find i =
    if i + m > n then None
    else if String.sub line i m = marker then Some i
    else find (i + 1)
  in
  match find 0 with None -> line | Some i -> String.sub line 0 i

let test_serve_chain_1_domain () = ignore (check_serve_chain ~domains:1)

let test_serve_chain_4_domains () =
  let r4 = check_serve_chain ~domains:4 in
  let r1 = check_serve_chain ~domains:1 in
  Alcotest.(check (list string))
    "annotated streams agree across domain counts"
    (List.map strip_annotation r1)
    (List.map strip_annotation r4)

let test_serve_stream_identity () =
  (* journaling must not change any result byte except the err
     annotation, at 1 and 4 domains *)
  List.iter
    (fun domains ->
      let tag = Printf.sprintf "i%d" domains in
      let plain, _, _ = run_serve ~domains ~journaled:false tag in
      let journaled, _, _ = run_serve ~domains ~journaled:true tag in
      List.iter
        (fun l ->
          Alcotest.(check bool) "plain stream has no annotation" false
            (contains l "# health:"))
        plain;
      Alcotest.(check (list string))
        (Printf.sprintf "streams identical modulo annotation (%d domains)"
           domains)
        plain
        (List.map strip_annotation journaled))
    [ 1; 4 ]

(* ---------------- transient waveform identity ---------------- *)

let step_ladder segments =
  let nl = Netlist.create () in
  let src = Netlist.fresh_node nl in
  Netlist.add_vsource nl src Netlist.ground
    (Stimulus.Step { v0 = 0.0; v1 = 1.0; t_delay = 0.0; t_rise = 20e-12 });
  let far = Netlist.fresh_node nl in
  Ladder.make nl
    { Ladder.r = 4400.0; l = 1.5e-6; c = 123.33e-12; length = 0.011; segments }
    ~from_node:src ~to_node:far;
  (nl, far)

let waveform ~domains ~journaled =
  let was = Control.enabled () in
  M.reset ();
  if journaled then Journal.start ();
  let nl, far = step_ladder 12 in
  let config =
    { Transient.Config.default with pool = Some (Pool.create ~domains ()) }
  in
  let r =
    Transient.simulate ~config nl ~t_end:1e-9 ~dt:1e-12
      ~probes:[ Transient.Node_v far ]
  in
  Journal.stop ();
  Control.set_enabled was;
  Array.to_list
    (Rlc_waveform.Waveform.values (Transient.get r (Transient.Node_v far)))

let test_transient_identity_with_journal () =
  List.iter
    (fun domains ->
      Alcotest.(check (list int64))
        (Printf.sprintf "journaled waveform bit-identical (%d domains)"
           domains)
        (List.map Int64.bits_of_float (waveform ~domains ~journaled:false))
        (List.map Int64.bits_of_float (waveform ~domains ~journaled:true)))
    [ 1; 4 ]

(* ---------------- trace cap overflow ---------------- *)

let test_trace_cap_journal () =
  let was = Control.enabled () in
  let cap = Control.trace_cap () in
  M.reset ();
  Fun.protect
    ~finally:(fun () ->
      Rlc_instr.Trace.stop ();
      Journal.stop ();
      Control.set_trace_cap cap;
      Control.set_enabled was)
    (fun () ->
      Control.set_trace_cap 4;
      Alcotest.(check int) "cap getter reflects setter" 4
        (Control.trace_cap ());
      Journal.start ();
      Rlc_instr.Trace.start ();
      for _ = 1 to 10 do
        Rlc_instr.Span.with_ "obs.capped" (fun () -> ())
      done;
      Alcotest.(check int) "overflow counted" 6
        (Rlc_instr.Trace.dropped_events ());
      (* the overflow leaves exactly one journal trail per shard *)
      let dropped =
        List.filter
          (fun e -> e.Journal.name = "trace.dropped")
          (Journal.events ())
      in
      (match dropped with
      | [ e ] ->
          Alcotest.(check (option string)) "span name" (Some "obs.capped")
            (Journal.str_field e "span");
          Alcotest.(check (option (float 0.0))) "cap field" (Some 4.0)
            (Journal.num_field e "cap")
      | l -> Alcotest.failf "expected one trace.dropped, got %d" (List.length l));
      (* the rollup surfaces it *)
      let r =
        Stat.rollup (List.map Stat.entry_of_event (Journal.events ()))
      in
      Alcotest.(check int) "rollup trace_dropped" 1 r.Stat.trace_dropped)

(* ---------------- snapshot regression diff ---------------- *)

let parse_json s =
  match Jsonv.parse s with
  | Ok j -> j
  | Error m -> Alcotest.failf "json parse: %s" m

let test_diff_flags_regression () =
  let old_snap =
    parse_json
      {|{"meta": {"date": "yesterday", "git_rev": "abc"},
         "latency": {"p50": 0.010, "p90": 0.020, "p99": 0.100},
         "jobs": 100, "errors": 0}|}
  in
  let new_snap =
    parse_json
      {|{"meta": {"date": "today", "git_rev": "def"},
         "latency": {"p50": 0.010, "p90": 0.021, "p99": 0.125},
         "jobs": 100, "errors": 0}|}
  in
  (* identical snapshots never flag, whatever the threshold *)
  Alcotest.(check int) "self-diff is empty" 0
    (List.length (Stat.diff ~threshold:0.0 old_snap old_snap));
  (* a 25% p99 regression is flagged at the 10% default; the 5% p90
     drift is not *)
  let findings = Stat.diff old_snap new_snap in
  (match
     List.find_opt (fun f -> f.Stat.path = "latency.p99") findings
   with
  | Some f ->
      Alcotest.(check bool) "delta is the relative change" true
        (Float.abs (f.Stat.delta -. 0.25) < 1e-9)
  | None -> Alcotest.fail "25% p99 regression must be flagged");
  Alcotest.(check bool) "5% p90 drift is below threshold" true
    (not (List.exists (fun f -> f.Stat.path = "latency.p90") findings));
  Alcotest.(check bool) "meta churn never flags" true
    (not
       (List.exists
          (fun f -> String.length f.Stat.path >= 4
                    && String.sub f.Stat.path 0 4 = "meta")
          findings));
  (* keys on one side only are ignored *)
  let wider = parse_json {|{"jobs": 100, "extra": 1.0}|} in
  Alcotest.(check int) "new keys are not regressions" 0
    (List.length (Stat.diff old_snap wider |> List.filter (fun f -> f.Stat.path = "extra")))

let test_flatten_paths () =
  let j =
    parse_json {|{"a": 1.0, "b": {"c": [2.0, 3.0]}, "s": "x", "z": null}|}
  in
  Alcotest.(check (list (pair string (float 0.0))))
    "numeric leaves with dot paths"
    [ ("a", 1.0); ("b.c[0]", 2.0); ("b.c[1]", 3.0) ]
    (Stat.flatten j)

let () =
  Alcotest.run "obs"
    [
      ( "journal",
        [
          Alcotest.test_case "record + JSONL round-trip" `Quick
            test_journal_roundtrip;
          Alcotest.test_case "per-shard cap" `Quick test_journal_cap;
          Alcotest.test_case "off is a no-op" `Quick test_journal_off_is_noop;
          Alcotest.test_case "provenance scoping" `Quick
            test_with_provenance_exception;
        ] );
      ( "health",
        [
          Alcotest.test_case "classify thresholds" `Quick test_health_classify;
          Alcotest.test_case "observe + report" `Quick
            test_health_observe_and_report;
          Alcotest.test_case "singular LU probe" `Quick test_singular_lu_probe;
          Alcotest.test_case "newton divergence probe" `Quick
            test_newton_divergence_probe;
        ] );
      ( "serve chains",
        [
          Alcotest.test_case "provenance chain (1 domain)" `Quick
            test_serve_chain_1_domain;
          Alcotest.test_case "provenance chain (4 domains)" `Quick
            test_serve_chain_4_domains;
          Alcotest.test_case "stream identity modulo annotation" `Quick
            test_serve_stream_identity;
          Alcotest.test_case "transient identity with journal" `Quick
            test_transient_identity_with_journal;
        ] );
      ( "trace cap",
        [
          Alcotest.test_case "overflow journals trace.dropped" `Quick
            test_trace_cap_journal;
        ] );
      ( "rlcstat diff",
        [
          Alcotest.test_case "flags regressions" `Quick
            test_diff_flags_regression;
          Alcotest.test_case "flatten paths" `Quick test_flatten_paths;
        ] );
    ]
