open Rlc_numerics

let check_close ~tol msg a b =
  if Float.abs (a -. b) > tol *. (1.0 +. Float.max (Float.abs a) (Float.abs b))
  then Alcotest.failf "%s: %.17g vs %.17g" msg a b

(* deterministic LCG so failures reproduce *)
let rng = ref 42

let rand_float () =
  rng := (!rng * 1103515245) + 12345;
  float_of_int (!rng land 0xFFFFFF) /. float_of_int 0xFFFFFF

(* random structurally-symmetric sparse test matrix: a ring plus random
   chords, diagonally dominated so it is well conditioned *)
let random_pattern n extra =
  let edges = ref [] in
  for i = 0 to n - 1 do
    edges := (i, (i + 1) mod n) :: !edges
  done;
  for _ = 1 to extra do
    let i = int_of_float (rand_float () *. float_of_int n) mod n in
    let j = int_of_float (rand_float () *. float_of_int n) mod n in
    if i <> j then edges := (i, j) :: !edges
  done;
  !edges

let fill_of_edges _n edges vals add =
  List.iteri
    (fun k (i, j) ->
      let v = List.nth vals k in
      add i j (-.v);
      add j i (-.v);
      add i i (v +. 0.7);
      add j j (v +. 0.7))
    edges

let dense_of_fill n fill =
  let m = Matrix.create n n in
  fill (fun i j v -> Matrix.add_to m i j v);
  m

(* ---------------- Sparse kernel vs dense LU ---------------- *)

let test_sparse_vs_dense () =
  List.iter
    (fun (n, extra) ->
      let edges = random_pattern n extra in
      let vals = List.map (fun _ -> 0.25 +. rand_float ()) edges in
      let fill = fill_of_edges n edges vals in
      let a = Sparse.of_fill ~n fill in
      let f = Sparse.factor a in
      let b = Array.init n (fun i -> Float.sin (float_of_int (i + 1))) in
      let x = Array.make n 0.0 in
      Sparse.solve_into f ~b ~x;
      let lu = Lu.decompose (dense_of_fill n fill) in
      let xd = Lu.solve lu b in
      Array.iteri
        (fun i v -> check_close ~tol:1e-12 (Printf.sprintf "x.(%d)" i) v xd.(i))
        x)
    [ (5, 3); (24, 20); (60, 80); (117, 300) ]

let test_sparse_refactor () =
  let n = 40 in
  let edges = random_pattern n 60 in
  let vals = List.map (fun _ -> 0.25 +. rand_float ()) edges in
  let fill = fill_of_edges n edges vals in
  let f0 = Sparse.factor (Sparse.of_fill ~n fill) in
  (* same pattern, different values: refactor must match a fresh solve *)
  let vals2 = List.map (fun v -> (1.7 *. v) +. 0.05) vals in
  let fill2 = fill_of_edges n edges vals2 in
  let a2 = Sparse.of_fill ~n fill2 in
  let f2 = Sparse.refactor (Sparse.symbolic f0) a2 in
  let b = Array.init n (fun i -> Float.cos (float_of_int i)) in
  let x = Array.make n 0.0 in
  Sparse.solve_into f2 ~b ~x;
  let xd = Lu.solve (Lu.decompose (dense_of_fill n fill2)) b in
  Array.iteri
    (fun i v ->
      check_close ~tol:1e-12 (Printf.sprintf "refactor x.(%d)" i) v xd.(i))
    x;
  (* identical values: refactor must reproduce the original bits *)
  let f1 = Sparse.refactor (Sparse.symbolic f0) (Sparse.of_fill ~n fill) in
  let x0 = Array.make n 0.0 and x1 = Array.make n 0.0 in
  Sparse.solve_into f0 ~b ~x:x0;
  Sparse.solve_into f1 ~b ~x:x1;
  Array.iteri
    (fun i v ->
      if v <> x1.(i) then
        Alcotest.failf "refactor not bit-identical at %d: %.17g vs %.17g" i v
          x1.(i))
    x0

let test_sparse_singular () =
  let fill add =
    add 0 0 1.0;
    add 1 1 0.0;
    (* row/column 1 is exactly zero *)
    add 0 1 0.0;
    add 1 0 0.0
  in
  let a = Sparse.of_fill ~n:2 fill in
  Alcotest.check_raises "singular" Sparse.Singular (fun () ->
      ignore (Sparse.factor a))

let test_sparse_zero_diagonal_pivoting () =
  (* MNA-shaped: a voltage-source row with a structurally zero diagonal
     forces off-diagonal pivoting *)
  let fill add =
    add 0 0 1e-3;
    add 0 2 1.0;
    add 2 0 (-1.0);
    add 1 1 2.0;
    add 0 1 (-1e-3);
    add 1 0 (-1e-3)
  in
  let n = 3 in
  let f = Sparse.factor (Sparse.of_fill ~n fill) in
  let b = [| 1.0; 2.0; -0.5 |] in
  let x = Array.make n 0.0 in
  Sparse.solve_into f ~b ~x;
  let xd = Lu.solve (Lu.decompose (dense_of_fill n fill)) b in
  Array.iteri
    (fun i v -> check_close ~tol:1e-12 (Printf.sprintf "x.(%d)" i) v xd.(i))
    x

let test_csparse_vs_dense () =
  let n = 31 in
  let edges = random_pattern n 40 in
  let vals =
    List.map (fun _ -> Cx.make (0.25 +. rand_float ()) (rand_float ())) edges
  in
  let fill add =
    List.iteri
      (fun k (i, j) ->
        let v = List.nth vals k in
        add i j (Cx.neg v);
        add j i (Cx.neg v);
        add i i Cx.(v +: of_float 0.9);
        add j j Cx.(v +: of_float 0.9))
      edges
  in
  let a = Sparse.cof_fill ~n fill in
  let f = Sparse.cfactor a in
  let b = Array.init n (fun i -> Cx.make (Float.sin (float_of_int i)) 0.25) in
  let x = Array.make n Cx.zero in
  Sparse.csolve_into f ~b ~x;
  let m = Cmatrix.create n n in
  fill (fun i j v -> Cmatrix.add_to m i j v);
  let xd = Clu.solve (Clu.decompose m) b in
  Array.iteri
    (fun i v ->
      check_close ~tol:1e-12
        (Printf.sprintf "re x.(%d)" i)
        v.Cx.re xd.(i).Cx.re;
      check_close ~tol:1e-12
        (Printf.sprintf "im x.(%d)" i)
        v.Cx.im xd.(i).Cx.im)
    x;
  (* crefactor at shifted values *)
  let fill2 add =
    fill (fun i j v -> add i j (Cx.( *: ) (Cx.make 1.3 0.2) v))
  in
  let f2 = Sparse.crefactor (Sparse.csymbolic f) (Sparse.cof_fill ~n fill2) in
  let x2 = Array.make n Cx.zero in
  Sparse.csolve_into f2 ~b ~x:x2;
  let m2 = Cmatrix.create n n in
  fill2 (fun i j v -> Cmatrix.add_to m2 i j v);
  let xd2 = Clu.solve (Clu.decompose m2) b in
  Array.iteri
    (fun i v ->
      check_close ~tol:1e-12
        (Printf.sprintf "re2 x.(%d)" i)
        v.Cx.re xd2.(i).Cx.re;
      check_close ~tol:1e-12
        (Printf.sprintf "im2 x.(%d)" i)
        v.Cx.im xd2.(i).Cx.im)
    x2

(* ---------------- Mindeg ordering ---------------- *)

let grid_adjacency rows cols =
  let n = rows * cols in
  let adj = Array.make n [] in
  let id r c = (r * cols) + c in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      let link a b = adj.(a) <- b :: adj.(a) in
      if c + 1 < cols then begin
        link (id r c) (id r (c + 1));
        link (id r (c + 1)) (id r c)
      end;
      if r + 1 < rows then begin
        link (id r c) (id (r + 1) c);
        link (id (r + 1) c) (id r c)
      end
    done
  done;
  adj

let test_mindeg_is_permutation () =
  List.iter
    (fun adj ->
      let n = Array.length adj in
      let r = Mindeg.order adj in
      let seen = Array.make n false in
      Array.iter
        (fun p ->
          Alcotest.(check bool) "in range" true (p >= 0 && p < n);
          Alcotest.(check bool) "no duplicate" false seen.(p);
          seen.(p) <- true)
        r.Mindeg.perm;
      Alcotest.(check bool) "fill >= n" true (r.Mindeg.fill >= float_of_int n))
    [
      grid_adjacency 7 9;
      Array.make 5 [];
      (* disconnected, no edges *)
      [| [ 1 ]; [ 0 ]; [ 3 ]; [ 2 ] |];
    ]

let test_mindeg_beats_band_on_grid () =
  (* the point of the ordering: on a 2-D grid the predicted fill must
     be far below what the banded kernel stores (n * bandwidth) *)
  let rows = 24 and cols = 24 in
  let adj = grid_adjacency rows cols in
  let n = rows * cols in
  let r = Mindeg.order adj in
  let rcm = Rcm.permutation adj in
  let bw = Rcm.bandwidth adj rcm in
  let banded_storage = float_of_int (n * bw) in
  Alcotest.(check bool)
    (Printf.sprintf "fill %.0f << banded %.0f" r.Mindeg.fill banded_storage)
    true
    (r.Mindeg.fill < 0.5 *. banded_storage)

let test_mindeg_deterministic () =
  let adj = grid_adjacency 11 13 in
  let a = Mindeg.order adj and b = Mindeg.order adj in
  Alcotest.(check bool) "same perm" true (a.Mindeg.perm = b.Mindeg.perm)

(* ---------------- Rcm at scale ---------------- *)

let test_rcm_large_disconnected () =
  (* 10^5 nodes in 10^4 disconnected chains: the restart scan used to
     rescan all visited vertices per component (quadratic over the
     whole suite of components), which turns this case from
     milliseconds into minutes *)
  let n = 100_000 in
  let chain = 10 in
  let adj =
    Array.init n (fun i ->
        let first = i mod chain = 0 and last = i mod chain = chain - 1 in
        if first then [ i + 1 ]
        else if last then [ i - 1 ]
        else [ i - 1; i + 1 ])
  in
  let t0 = Sys.time () in
  let perm = Rcm.permutation adj in
  let elapsed = Sys.time () -. t0 in
  let seen = Array.make n false in
  Array.iter
    (fun p ->
      Alcotest.(check bool) "in range" true (p >= 0 && p < n);
      Alcotest.(check bool) "no duplicate" false seen.(p);
      seen.(p) <- true)
    perm;
  (* each chain reorders contiguously, so the band stays that of one
     chain *)
  Alcotest.(check bool) "bandwidth stays chain-local" true
    (Rcm.bandwidth adj perm <= chain);
  if elapsed > 10.0 then
    Alcotest.failf "quadratic restart scan is back: %.1f s for 1e5 nodes"
      elapsed

(* ---------------- Solver plan and backend agreement ---------------- *)

let test_plan_grid_not_banded () =
  (* the grid-blind heuristic used to accept any band <= n/3, sending a
     32x32 mesh (band ~ 32) to the O(n * b^2) banded kernel *)
  let p = Solver.plan (grid_adjacency 32 32) in
  Alcotest.(check bool) "use_banded" false p.Solver.use_banded;
  Alcotest.(check bool) "sparse chosen" true
    (p.Solver.choice = Solver.Sparse_lu)

let test_plan_ladder_stays_banded () =
  (* chain structure must keep the historical decision bit-for-bit *)
  let n = 200 in
  let adj =
    Array.init n (fun i ->
        if i = 0 then [ 1 ]
        else if i = n - 1 then [ n - 2 ]
        else [ i - 1; i + 1 ])
  in
  let p = Solver.plan adj in
  Alcotest.(check bool) "banded chosen" true
    (p.Solver.choice = Solver.Banded_lu)

let edges_of_adjacency adj =
  let edges = ref [] in
  Array.iteri
    (fun i ns -> List.iter (fun j -> if i < j then edges := (i, j) :: !edges) ns)
    adj;
  List.rev !edges

let test_solver_backends_agree () =
  let adj = grid_adjacency 9 7 in
  let n = Array.length adj in
  let edges = edges_of_adjacency adj in
  let vals = List.map (fun _ -> 0.25 +. rand_float ()) edges in
  let fill = fill_of_edges n edges vals in
  let b = Array.init n (fun i -> Float.sin (float_of_int (3 * i))) in
  let solve backend =
    let p = Solver.plan ~backend adj in
    Solver.solve p (Solver.factor p ~fill) b
  in
  let xd = solve Solver.Dense in
  List.iter
    (fun (name, backend) ->
      let x = solve backend in
      Array.iteri
        (fun i v ->
          check_close ~tol:1e-12 (Printf.sprintf "%s x.(%d)" name i) v xd.(i))
        x)
    [ ("banded", Solver.Banded); ("sparse", Solver.Sparse); ("auto", Solver.Auto) ]

let test_solver_symbolic_reuse () =
  let adj = grid_adjacency 8 8 in
  let n = Array.length adj in
  let edges = edges_of_adjacency adj in
  let vals = List.map (fun _ -> 0.25 +. rand_float ()) edges in
  let vals2 = List.map (fun v -> (0.8 *. v) +. 0.3) vals in
  let p = Solver.plan ~backend:Solver.Sparse adj in
  let f0 = Solver.factor p ~fill:(fill_of_edges n edges vals) in
  let sym = Solver.symbolic_of f0 in
  Alcotest.(check bool) "sparse factor has a symbolic" true (sym <> None);
  let fill2 = fill_of_edges n edges vals2 in
  let f2 = Solver.factor_with ?symbolic:sym p ~fill:fill2 in
  let b = Array.init n (fun i -> Float.cos (float_of_int i)) in
  let x = Solver.solve p f2 b in
  let xd = Lu.solve (Lu.decompose (dense_of_fill n fill2)) b in
  Array.iteri
    (fun i v ->
      check_close ~tol:1e-12 (Printf.sprintf "reuse x.(%d)" i) v xd.(i))
    x

(* ---------------- PDN grid workload ---------------- *)

open Rlc_circuit

let test_pdn_plan_sparse () =
  let pdn = Pdn.build (Pdn.rc_grid ~rows:32 ~cols:32 ()) in
  let plan = pdn.Pdn.asm.Assembly.plan in
  Alcotest.(check bool) "32x32 PDN routes to sparse" true
    (plan.Solver.choice = Solver.Sparse_lu);
  Alcotest.(check bool) "size >= grid" true (Pdn.size pdn >= 32 * 32)

let test_pdn_dc () =
  let pdn = Pdn.build Pdn.default in
  let v = Dc.operating_point pdn.Pdn.netlist in
  let vdd = Pdn.default.Pdn.vdd in
  let v_at r c = v.(Pdn.node pdn ~row:r ~col:c) in
  (* loaded: every node sits below vdd, the loaded centre lowest *)
  for r = 0 to 11 do
    for c = 0 to 11 do
      Alcotest.(check bool) "below vdd" true (v_at r c < vdd);
      Alcotest.(check bool) "above 0" true (v_at r c > 0.0);
      Alcotest.(check bool) "centre droops most" true (v_at 5 5 <= v_at r c)
    done
  done;
  (* unloaded: the grid floats at exactly vdd *)
  let quiet = Pdn.build { Pdn.default with Pdn.loads = [] } in
  let vq = Dc.operating_point quiet.Pdn.netlist in
  for r = 0 to 11 do
    for c = 0 to 11 do
      check_close ~tol:1e-9
        (Printf.sprintf "quiet v(%d,%d)" r c)
        vdd
        vq.(Pdn.node quiet ~row:r ~col:c)
    done
  done

let test_pdn_impedance () =
  let pdn = Pdn.build Pdn.default in
  let freqs = Ac.decade_grid ~points_per_decade:3 ~fstart:1e5 ~fstop:1e9 in
  let z = Pdn.impedance pdn ~at:(5, 5) ~freqs in
  Alcotest.(check int) "one point per frequency" (Array.length freqs)
    (Array.length z);
  (* at 100 kHz the decap is invisible: |Z| equals the DC droop per amp *)
  let v = Dc.operating_point pdn.Pdn.netlist in
  let quiet = Pdn.build { Pdn.default with Pdn.loads = [] } in
  let vq = Dc.operating_point quiet.Pdn.netlist in
  let node = Pdn.node pdn ~row:5 ~col:5 in
  let r_dc = vq.(node) -. v.(node) in
  let _, z0 = z.(0) in
  check_close ~tol:1e-3 "low-frequency |Z| = DC resistance" r_dc z0;
  (* the dense backend must see the same impedance *)
  let zd = Pdn.impedance ~backend:Solver.Dense pdn ~at:(5, 5) ~freqs in
  Array.iteri
    (fun i (f, zi) ->
      let fd, zdi = zd.(i) in
      Alcotest.(check (float 0.0)) "same grid" f fd;
      check_close ~tol:1e-9 (Printf.sprintf "|Z|(%g)" f) zi zdi)
    z

(* A transient on a sparse-routed mesh must analyze the pattern once
   and refactor for every subsequent value-only restamp (here: the
   integration-scheme switch after the backward-Euler first step), and
   the Auto-picked sparse path must reproduce the banded kernel's
   waveform. *)
let test_pdn_transient_symbolic_reuse () =
  let pdn = Pdn.build (Pdn.rc_grid ~rows:24 ~cols:24 ()) in
  let plan = pdn.Pdn.asm.Assembly.plan in
  Alcotest.(check bool) "24x24 routes to sparse" true
    (plan.Solver.choice = Solver.Sparse_lu);
  let c_analyze = Rlc_instr.Metrics.counter "solver.sparse.analyze" in
  let c_refactor = Rlc_instr.Metrics.counter "solver.sparse.refactor" in
  let c_repivot = Rlc_instr.Metrics.counter "solver.sparse.repivot" in
  let was = Rlc_instr.Control.enabled () in
  Rlc_instr.Control.set_enabled true;
  let a0 = Rlc_instr.Metrics.value c_analyze in
  let f0 = Rlc_instr.Metrics.value c_refactor in
  let p0 = Rlc_instr.Metrics.value c_repivot in
  let probe = Transient.Node_v (Pdn.node pdn ~row:12 ~col:12) in
  let run backend =
    Transient.run ~backend pdn.Pdn.netlist ~t_end:5e-9 ~dt:5e-11
      ~probes:[ probe ]
  in
  let va = Transient.final_voltages (run Transient.Auto) in
  let analyzed = Rlc_instr.Metrics.value c_analyze -. a0 in
  let refactored = Rlc_instr.Metrics.value c_refactor -. f0 in
  let repivoted = Rlc_instr.Metrics.value c_repivot -. p0 in
  Rlc_instr.Control.set_enabled was;
  Alcotest.(check (float 0.0)) "one symbolic analysis" 1.0 analyzed;
  Alcotest.(check bool) "restamps reuse it as refactors" true
    (refactored >= 1.0);
  Alcotest.(check (float 0.0)) "no pivot-order repair needed" 0.0 repivoted;
  let vb = Transient.final_voltages (run Transient.Banded) in
  Array.iteri
    (fun i a ->
      Alcotest.(check bool)
        (Printf.sprintf "unknown %d agrees with banded" i)
        true
        (Float.abs (a -. vb.(i)) <= 1e-9 *. (1.0 +. Float.abs a)))
    va

(* ---------------- suite ---------------- *)

let () =
  Alcotest.run "sparse"
    [
      ( "kernel",
        [
          Alcotest.test_case "sparse vs dense" `Quick test_sparse_vs_dense;
          Alcotest.test_case "refactor" `Quick test_sparse_refactor;
          Alcotest.test_case "singular" `Quick test_sparse_singular;
          Alcotest.test_case "zero-diagonal pivoting" `Quick
            test_sparse_zero_diagonal_pivoting;
          Alcotest.test_case "complex vs dense" `Quick test_csparse_vs_dense;
        ] );
      ( "mindeg",
        [
          Alcotest.test_case "permutation" `Quick test_mindeg_is_permutation;
          Alcotest.test_case "beats banded on grid" `Quick
            test_mindeg_beats_band_on_grid;
          Alcotest.test_case "deterministic" `Quick test_mindeg_deterministic;
        ] );
      ( "rcm",
        [
          Alcotest.test_case "1e5-node disconnected graph" `Quick
            test_rcm_large_disconnected;
        ] );
      ( "plan",
        [
          Alcotest.test_case "grid is not banded" `Quick
            test_plan_grid_not_banded;
          Alcotest.test_case "ladder stays banded" `Quick
            test_plan_ladder_stays_banded;
          Alcotest.test_case "backends agree" `Quick test_solver_backends_agree;
          Alcotest.test_case "symbolic reuse" `Quick test_solver_symbolic_reuse;
        ] );
      ( "pdn",
        [
          Alcotest.test_case "plan routes to sparse" `Quick test_pdn_plan_sparse;
          Alcotest.test_case "dc droop" `Quick test_pdn_dc;
          Alcotest.test_case "impedance scan" `Quick test_pdn_impedance;
          Alcotest.test_case "transient symbolic reuse" `Quick
            test_pdn_transient_symbolic_reuse;
        ] );
    ]
