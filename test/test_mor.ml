(* Tests for the AC small-signal engine (Mna + Ac) and the PRIMA
   model-order reducer (Rlc_mor.Prima): moment cross-validation against
   the tree engine, pole recovery against the paper's analytic two-pole
   model and AWE, and step-response agreement with both the banded
   transient engine and the Talbot inverse Laplace transform. *)

open Rlc_numerics
open Rlc_circuit
module Prima = Rlc_mor.Prima

let check_close ?(tol = 1e-9) msg expected actual =
  if
    Float.abs (expected -. actual)
    > tol *. (1.0 +. Float.max (Float.abs expected) (Float.abs actual))
  then
    Alcotest.failf "%s: expected %.15g, got %.15g" msg expected actual

let check_cx ?(tol = 1e-9) msg expected actual =
  check_close ~tol (msg ^ " (re)") (Cx.re expected) (Cx.re actual);
  check_close ~tol (msg ^ " (im)") (Cx.im expected) (Cx.im actual)

(* ---------------- fixtures ---------------- *)

(* Lumped driver-line-load stage: Rs into a single series R-L branch
   into a load cap.  Its transfer function to the far node is exactly
   the paper's two-pole form H = 1/(1 + b1 s + b2 s^2) with
   b1 = CL (Rs + R) and b2 = L CL. *)
let rs = 30.0
let r_line = 50.0
let l_line = 5e-9
let cl = 50e-15
let b1 = cl *. (rs +. r_line)
let b2 = l_line *. cl

let lumped_stage () =
  let nl = Netlist.create () in
  let src = Netlist.fresh_node ~name:"src" nl in
  let mid = Netlist.fresh_node ~name:"mid" nl in
  let far = Netlist.fresh_node ~name:"far" nl in
  Netlist.add_vsource ~name:"vin" nl src Netlist.ground (Stimulus.Dc 1.0);
  Netlist.add_resistor ~name:"rdrv" nl src mid rs;
  Netlist.add_rl_branch ~name:"line" nl mid far ~ohms:r_line ~henries:l_line;
  Netlist.add_capacitor ~name:"cload" nl far Netlist.ground cl;
  (nl, far)

let h_lumped s =
  Cx.inv
    (Cx.( +: ) Cx.one
       (Cx.( +: ) (Cx.scale b1 s) (Cx.( *: ) (Cx.scale b2 s) s)))

(* Discretised paper-style stage: driver resistance + parasitic cap,
   [segments]-section RLC ladder, receiver load cap.  The same
   structure as the bench's 800-segment line, shrunk. *)
let line_r = 4400.0 (* ohm/m *)
let line_l = 1.5e-6 (* H/m *)
let line_c = 123.33e-12 (* F/m *)
let line_len = 0.011 (* m *)
let drv_rs = 30.0
let drv_cp = 15e-15
let load_cl = 50e-15

let ladder_stage segments =
  let nl = Netlist.create () in
  let src = Netlist.fresh_node ~name:"src" nl in
  Netlist.add_vsource ~name:"vin" nl src Netlist.ground (Stimulus.Dc 1.0);
  let inp = Netlist.fresh_node ~name:"inp" nl in
  Netlist.add_resistor ~name:"rdrv" nl src inp drv_rs;
  Netlist.add_capacitor ~name:"cpar" nl inp Netlist.ground drv_cp;
  let far = Netlist.fresh_node ~name:"far" nl in
  Ladder.make nl
    { Ladder.r = line_r; l = line_l; c = line_c; length = line_len; segments }
    ~from_node:inp ~to_node:far;
  Netlist.add_capacitor ~name:"cload" nl far Netlist.ground load_cl;
  (nl, far)

(* RC-dominated (diffusive) variant of the same stage: the paper's r
   and c with a much smaller inductance per length over a longer span,
   so the response has no sharp wavefront.  A low-order rational model
   can track this regime closely — it is the regime the MOR bench
   targets (a sharp low-loss wavefront needs far more poles than
   order 10: Gibbs-like undershoot at the front otherwise). *)
let rc_line_l = 0.1e-6
let rc_line_len = 0.05
let rc_drv_rs = 100.0

let rc_ladder_stage segments =
  let nl = Netlist.create () in
  let src = Netlist.fresh_node ~name:"src" nl in
  Netlist.add_vsource ~name:"vin" nl src Netlist.ground (Stimulus.Dc 1.0);
  let inp = Netlist.fresh_node ~name:"inp" nl in
  Netlist.add_resistor ~name:"rdrv" nl src inp rc_drv_rs;
  Netlist.add_capacitor ~name:"cpar" nl inp Netlist.ground drv_cp;
  let far = Netlist.fresh_node ~name:"far" nl in
  Ladder.make nl
    {
      Ladder.r = line_r;
      l = rc_line_l;
      c = line_c;
      length = rc_line_len;
      segments;
    }
    ~from_node:inp ~to_node:far;
  Netlist.add_capacitor ~name:"cload" nl far Netlist.ground load_cl;
  (nl, far)

let ladder_tree segments =
  let dh = line_len /. float_of_int segments in
  let wire =
    Rlc_tree.Tree.wire ~r:(line_r *. dh) ~l:(line_l *. dh) ~c:(line_c *. dh)
  in
  Rlc_tree.Tree.chain ~sink_cap:load_cl
    (List.init segments (fun _ -> wire))

let mna_of nl = Mna.of_netlist nl

let far_output mna far = Mna.output_of_node mna far

(* ---------------- Mna ---------------- *)

let test_mna_shapes () =
  let nl, far = lumped_stage () in
  let m = mna_of nl in
  (* 3 non-ground nodes + 1 inductor current + 1 vsource current *)
  Alcotest.(check int) "size" 5 m.Mna.size;
  Alcotest.(check int) "currents" 1 m.Mna.n_currents;
  Alcotest.(check int) "inputs" 1 (Array.length m.Mna.inputs);
  Alcotest.(check (option int)) "input by name" (Some 0) (Mna.input_index m "vin");
  Alcotest.(check (option int)) "unknown input" None (Mna.input_index m "nope");
  let l = far_output m far in
  check_close "selector is a unit vector" 1.0 (Array.fold_left ( +. ) 0.0 l);
  Alcotest.check_raises "ground has no unknown"
    (Invalid_argument "Mna.unknown_of_node: ground has no unknown") (fun () ->
      ignore (Mna.unknown_of_node m Netlist.ground))

let test_mna_transfer_analytic () =
  let nl, far = lumped_stage () in
  let m = mna_of nl in
  let output = far_output m far in
  List.iter
    (fun f ->
      let s = Cx.make 0.0 (2.0 *. Float.pi *. f) in
      check_cx ~tol:1e-9
        (Printf.sprintf "H at %.0e Hz" f)
        (h_lumped s)
        (Mna.transfer m ~input:0 ~output s))
    [ 1e6; 1e8; 1e9; 5e9; 2e10 ];
  (* a real (damping-axis) point too: the descriptor is not just a
     jw-axis story *)
  let s = Cx.of_float 1e9 in
  check_cx ~tol:1e-9 "H at real s" (h_lumped s) (Mna.transfer m ~input:0 ~output s)

let test_mna_dc_and_moments_analytic () =
  let nl, far = lumped_stage () in
  let m = mna_of nl in
  let output = far_output m far in
  check_close "dc gain" 1.0 (Mna.dc_gain m ~input:0 ~output);
  let mom = Mna.moments m ~input:0 ~output ~order:3 in
  (* 1/(1 + b1 s + b2 s^2) = 1 - b1 s + (b1^2 - b2) s^2
                             + (2 b1 b2 - b1^3) s^3 + ... *)
  check_close "m0" 1.0 mom.(0);
  check_close ~tol:1e-9 "m1" (-.b1) mom.(1);
  check_close ~tol:1e-9 "m2" ((b1 *. b1) -. b2) mom.(2);
  check_close ~tol:1e-9 "m3"
    ((2.0 *. b1 *. b2) -. (b1 *. b1 *. b1))
    mom.(3)

let test_mna_moments_match_tree () =
  let segments = 16 in
  let nl, far = ladder_stage segments in
  let m = mna_of nl in
  let mom =
    Mna.moments m ~input:0 ~output:(far_output m far) ~order:5
  in
  let tree_mom =
    match
      Rlc_tree.Moments.voltage_moments ~driver_cp:drv_cp ~driver_rs:drv_rs
        ~order:5 (ladder_tree segments)
    with
    | [ (_, arr) ] -> arr
    | _ -> Alcotest.fail "expected a single sink"
  in
  for k = 0 to 5 do
    let scale = Float.max (Float.abs tree_mom.(k)) 1e-300 in
    check_close ~tol:1e-9
      (Printf.sprintf "moment %d" k)
      (tree_mom.(k) /. scale)
      (mom.(k) /. scale)
  done

(* ---------------- Ac ---------------- *)

let test_decade_grid () =
  let g = Ac.decade_grid ~points_per_decade:10 ~fstart:1e6 ~fstop:1e9 in
  Alcotest.(check int) "count" 31 (Array.length g);
  check_close "first" 1e6 g.(0);
  check_close "last" 1e9 g.(Array.length g - 1);
  (* log-uniform: constant ratio *)
  check_close ~tol:1e-9 "ratio" (g.(1) /. g.(0)) (g.(11) /. g.(10));
  Alcotest.(check int) "degenerate"
    1
    (Array.length (Ac.decade_grid ~points_per_decade:7 ~fstart:42.0 ~fstop:42.0));
  Alcotest.check_raises "bad range"
    (Invalid_argument "Ac.decade_grid: need 0 < fstart <= fstop") (fun () ->
      ignore (Ac.decade_grid ~points_per_decade:1 ~fstart:0.0 ~fstop:1.0))

let test_ac_rc_lowpass () =
  let r = 1e3 and c = 1e-12 in
  let nl = Netlist.create () in
  let src = Netlist.fresh_node nl in
  let out = Netlist.fresh_node nl in
  Netlist.add_vsource ~name:"vin" nl src Netlist.ground (Stimulus.Dc 1.0);
  Netlist.add_resistor nl src out r;
  Netlist.add_capacitor nl out Netlist.ground c;
  let m = mna_of nl in
  let output = far_output m out in
  let f3 = 1.0 /. (2.0 *. Float.pi *. r *. c) in
  let pts = Ac.bode m ~input:0 ~output ~freqs:[| f3 /. 100.0; f3; f3 *. 100.0 |] in
  (* at f3/100 the magnitude is 1/sqrt(1 + 1e-4): flat to ~4e-4 dB *)
  check_close ~tol:1e-6 "dc flat"
    (-10.0 *. Float.log10 (1.0 +. 1e-4))
    pts.(0).Ac.mag_db;
  check_close ~tol:1e-6 "-3 dB at the corner"
    (10.0 *. Float.log10 0.5)
    pts.(1).Ac.mag_db;
  check_close ~tol:1e-6 "-45 deg at the corner" (-45.0) pts.(1).Ac.phase_deg;
  (* one decade above the corner: -20 dB/decade slope *)
  check_close ~tol:1e-2 "far rolloff" (-40.0) pts.(2).Ac.mag_db

let test_ac_matches_exact_line () =
  (* the discretised ladder's sweep must converge to the exact
     distributed-line response of the core library (equation (1) of the
     paper) in and around the passband *)
  let line = Rlc_core.Line.make ~r:line_r ~l:line_l ~c:line_c in
  let driver = Rlc_tech.Driver.make ~rs:drv_rs ~c0:load_cl ~cp:drv_cp in
  let stage = Rlc_core.Stage.make ~line ~driver ~h:line_len ~k:1.0 in
  let nl, far = ladder_stage 64 in
  let m = mna_of nl in
  let output = far_output m far in
  List.iter
    (fun f ->
      let exact = Rlc_core.Frequency.response stage f in
      let ladder = Ac.point_of ~freq:f (Ac.transfer m ~input:0 ~output f) in
      check_close ~tol:2e-3
        (Printf.sprintf "mag at %.2e Hz" f)
        exact.Rlc_core.Frequency.mag_db ladder.Ac.mag_db;
      check_close ~tol:2e-3
        (Printf.sprintf "phase at %.2e Hz" f)
        exact.Rlc_core.Frequency.phase_deg ladder.Ac.phase_deg)
    [ 1e8; 5e8; 1e9; 2e9; 5e9 ]

let test_ac_unwrap () =
  Alcotest.(check int) "empty" 0 (Array.length (Ac.unwrap [||]));
  let smooth = [| 10.0; -20.0; -50.0; -170.0 |] in
  Array.iteri
    (fun i v -> check_close (Printf.sprintf "no jump %d" i) smooth.(i) v)
    (Ac.unwrap smooth);
  (* a wrap at +/-180: the unwrapped curve keeps descending *)
  let wrapped = [| -150.0; -170.0; 170.0; 150.0 |] in
  let expect = [| -150.0; -170.0; -190.0; -210.0 |] in
  Array.iteri
    (fun i v -> check_close (Printf.sprintf "descending %d" i) expect.(i) v)
    (Ac.unwrap wrapped);
  (* multiple turns accumulate *)
  let spiral = [| 170.0; -170.0; 170.0; -170.0 |] in
  let expect = [| 170.0; 190.0; 170.0; 190.0 |] in
  Array.iteri
    (fun i v -> check_close (Printf.sprintf "spiral %d" i) expect.(i) v)
    (Ac.unwrap spiral);
  (* a long lossy ladder's phase decreases monotonically once unwrapped *)
  let nl, far = ladder_stage 48 in
  let m = mna_of nl in
  let output = far_output m far in
  let freqs = Ac.decade_grid ~points_per_decade:20 ~fstart:1e8 ~fstop:2e10 in
  let pts = Ac.bode m ~input:0 ~output ~freqs in
  let unwrapped = Ac.unwrap (Array.map (fun p -> p.Ac.phase_deg) pts) in
  let wraps = ref false in
  Array.iteri
    (fun i u ->
      if i > 0 then begin
        if u > unwrapped.(i - 1) +. 1e-9 then
          Alcotest.failf "phase not monotone at point %d" i;
        if Float.abs (u -. unwrapped.(i - 1)) > 180.0 then wraps := true
      end)
    unwrapped;
  Alcotest.(check bool) "no 360-degree jumps" false !wraps;
  Alcotest.(check bool) "accumulates beyond -180" true
    (unwrapped.(Array.length unwrapped - 1) < -180.0)

(* ---------------- Prima ---------------- *)

let test_prima_lumped_poles () =
  let nl, far = lumped_stage () in
  let m = mna_of nl in
  let output = far_output m far in
  let model = Prima.reduce ~order:3 m ~input:0 ~output in
  check_close "dc" 1.0 model.Prima.dc;
  Alcotest.(check bool) "stable" true model.Prima.stable;
  let analytic = Rlc_core.Poles.of_coeffs { Rlc_core.Pade.b1; b2 } in
  let expected = [ analytic.Rlc_core.Poles.s1; analytic.Rlc_core.Poles.s2 ] in
  (* match each analytic pole to its closest reduced pole *)
  List.iter
    (fun p ->
      let best =
        Array.fold_left
          (fun acc q ->
            Float.min acc (Cx.norm (Cx.( -: ) p q) /. Cx.norm p))
          Float.infinity model.Prima.poles
      in
      if best > 1e-6 then
        Alcotest.failf "pole %a missed by relative %.2e" Cx.pp p best)
    expected;
  (* any extra basis pole must carry (relatively) no step-response
     weight: H_r = H exactly, so everything beyond the two physical
     poles is residue noise *)
  Array.iteri
    (fun i p ->
      let physical =
        List.exists
          (fun e -> Cx.norm (Cx.( -: ) p e) /. Cx.norm e < 1e-6)
          expected
      in
      let weight = Cx.norm (Cx.( /: ) model.Prima.residues.(i) p) in
      if (not physical) && weight > 1e-3 then
        Alcotest.failf "spurious pole %a carries step weight %.2e" Cx.pp p
          weight)
    model.Prima.poles

let test_prima_matches_awe () =
  let nl, far = lumped_stage () in
  let m = mna_of nl in
  let output = far_output m far in
  let model = Prima.reduce ~order:3 m ~input:0 ~output in
  let moments = Mna.moments m ~input:0 ~output ~order:3 in
  let awe = Rlc_tree.Awe.reduce ~moments ~order:2 in
  List.iter
    (fun p ->
      let best =
        Array.fold_left
          (fun acc q ->
            Float.min acc (Cx.norm (Cx.( -: ) p q) /. Cx.norm p))
          Float.infinity model.Prima.poles
      in
      if best > 1e-6 then
        Alcotest.failf "AWE pole %a missed by relative %.2e" Cx.pp p best)
    awe.Rlc_tree.Awe.poles

let reduced_moments model order =
  (* moments of the reduced model, straight from its small matrices *)
  let q = model.Prima.order in
  let lu = Lu.decompose (Matrix.copy model.Prima.g_r) in
  let x = ref (Lu.solve lu model.Prima.b_r) in
  Array.init (order + 1) (fun k ->
      if k > 0 then begin
        let cx = Matrix.mul_vec model.Prima.c_r !x in
        x := Array.map (fun v -> -.v) (Lu.solve lu cx)
      end;
      let acc = ref 0.0 in
      for i = 0 to q - 1 do
        acc := !acc +. (model.Prima.l_r.(i) *. !x.(i))
      done;
      !acc)

let test_prima_moment_matching () =
  let nl, far = ladder_stage 16 in
  let m = mna_of nl in
  let output = far_output m far in
  let order = 4 in
  let model = Prima.reduce ~order m ~input:0 ~output in
  Alcotest.(check int) "kept the full order" order model.Prima.order;
  let full = Mna.moments m ~input:0 ~output ~order:(order - 1) in
  let red = reduced_moments model (order - 1) in
  (* the PRIMA guarantee: the first q moments agree *)
  for k = 0 to order - 1 do
    let scale = Float.max (Float.abs full.(k)) 1e-300 in
    check_close ~tol:1e-8
      (Printf.sprintf "moment %d" k)
      (full.(k) /. scale)
      (red.(k) /. scale)
  done

let test_prima_full_order_exact () =
  (* with the basis spanning the whole reachable space the projection
     is no longer an approximation at all *)
  let nl, far = ladder_stage 8 in
  let m = mna_of nl in
  let output = far_output m far in
  let model = Prima.reduce ~order:m.Mna.size m ~input:0 ~output in
  List.iter
    (fun f ->
      let s = Cx.make 0.0 (2.0 *. Float.pi *. f) in
      check_cx ~tol:1e-7
        (Printf.sprintf "H at %.0e Hz" f)
        (Mna.transfer m ~input:0 ~output s)
        (Prima.eval model s))
    [ 1e8; 1e9; 5e9; 2e10 ]

let test_prima_step_vs_transient () =
  let segments = 64 in
  let nl, far = rc_ladder_stage segments in
  let m = mna_of nl in
  let output = far_output m far in
  let model = Prima.reduce ~order:10 m ~input:0 ~output in
  Alcotest.(check bool) "stable" true model.Prima.stable;
  let t_end = 8e-9 and dt = 4e-12 in
  let r =
    Transient.run nl ~t_end ~dt ~probes:[ Transient.Node_v far ]
  in
  let w = Transient.get r (Transient.Node_v far) in
  let times = Rlc_waveform.Waveform.times w in
  let values = Rlc_waveform.Waveform.values w in
  let lo, hi = Stats.min_max values in
  let swing = hi -. lo in
  Alcotest.(check bool) "nontrivial swing" true (swing > 0.5);
  let worst = ref 0.0 in
  Array.iteri
    (fun i t ->
      if t > 0.0 then
        worst :=
          Float.max !worst (Float.abs (Prima.step_eval model t -. values.(i))))
    times;
  if !worst > 0.01 *. swing then
    Alcotest.failf "reduced step response off by %.3f%% of swing"
      (100.0 *. !worst /. swing)

let test_prima_bode_matches_ac () =
  let nl, far = ladder_stage 64 in
  let m = mna_of nl in
  let output = far_output m far in
  let model = Prima.reduce ~order:10 m ~input:0 ~output in
  let freqs = Ac.decade_grid ~points_per_decade:5 ~fstart:1e8 ~fstop:5e9 in
  let full = Ac.bode m ~input:0 ~output ~freqs in
  let red = Prima.bode model ~freqs in
  Array.iteri
    (fun i p ->
      check_close ~tol:2e-2
        (Printf.sprintf "mag at %.2e Hz" p.Ac.freq)
        p.Ac.mag_db red.(i).Ac.mag_db)
    full

(* ---------------- Laplace inversion vs the AC engine ---------------- *)

let test_laplace_step_vs_transient () =
  (* the Talbot inversion of the MNA transfer function is a third,
     independent route to the step response; all three engines
     (frequency-domain + inversion, reduced model, time stepping) must
     tell the same story *)
  (* the diffusive stage keeps the transfer function's singularities
     well off the imaginary axis, where the Talbot contour is
     accurate; an underdamped line would need a different contour *)
  let segments = 16 in
  let nl, far = rc_ladder_stage segments in
  let m = mna_of nl in
  let output = far_output m far in
  let h = Mna.transfer m ~input:0 ~output in
  let t_end = 8e-9 and dt = 4e-12 in
  let r = Transient.run nl ~t_end ~dt ~probes:[ Transient.Node_v far ] in
  let w = Transient.get r (Transient.Node_v far) in
  List.iter
    (fun t ->
      let talbot = Laplace.step_response h t in
      let sim = Rlc_waveform.Waveform.value_at w t in
      check_close ~tol:5e-3 (Printf.sprintf "step at %.2e s" t) talbot sim)
    [ 1e-9; 2e-9; 4e-9; 7e-9 ]

let () =
  Alcotest.run "mor"
    [
      ( "mna",
        [
          Alcotest.test_case "descriptor shape" `Quick test_mna_shapes;
          Alcotest.test_case "transfer vs analytic" `Quick
            test_mna_transfer_analytic;
          Alcotest.test_case "dc + moments vs analytic" `Quick
            test_mna_dc_and_moments_analytic;
          Alcotest.test_case "moments vs tree engine" `Quick
            test_mna_moments_match_tree;
        ] );
      ( "ac",
        [
          Alcotest.test_case "decade grid" `Quick test_decade_grid;
          Alcotest.test_case "rc lowpass" `Quick test_ac_rc_lowpass;
          Alcotest.test_case "ladder vs exact line" `Quick
            test_ac_matches_exact_line;
          Alcotest.test_case "phase unwrapping" `Quick test_ac_unwrap;
        ] );
      ( "prima",
        [
          Alcotest.test_case "lumped stage poles" `Quick
            test_prima_lumped_poles;
          Alcotest.test_case "matches awe order 2" `Quick
            test_prima_matches_awe;
          Alcotest.test_case "moment matching" `Quick
            test_prima_moment_matching;
          Alcotest.test_case "full order is exact" `Quick
            test_prima_full_order_exact;
          Alcotest.test_case "step vs transient" `Quick
            test_prima_step_vs_transient;
          Alcotest.test_case "bode vs full ac" `Quick
            test_prima_bode_matches_ac;
        ] );
      ( "laplace-x-check",
        [
          Alcotest.test_case "talbot step vs transient" `Quick
            test_laplace_step_vs_transient;
        ] );
    ]
