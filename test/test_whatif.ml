(* Tests for the incremental what-if layer: the Sherman-Morrison-
   Woodbury update kernel, the compiled Whatif workspace (rank-k fast
   path vs fresh factorisation, fallback guards, adjoint gradients vs
   finite differences), the shared structural-key pairing, and the
   bitwise neutrality of the legacy optimizer wrappers. *)

open Rlc_numerics
open Rlc_circuit

let check_close ?(tol = 1e-9) msg expected actual =
  (* nan never satisfies [>], so an explicit finiteness check keeps a
     nan-vs-nan comparison from passing vacuously *)
  if Float.is_nan expected || Float.is_nan actual then
    Alcotest.failf "%s: nan (expected %.17g, got %.17g)" msg expected actual;
  if
    Float.abs (expected -. actual)
    > tol *. (1.0 +. Float.max (Float.abs expected) (Float.abs actual))
  then
    Alcotest.failf "%s: expected %.17g, got %.17g" msg expected actual

let check_bits msg expected actual =
  if
    not
      (Int64.equal (Int64.bits_of_float expected) (Int64.bits_of_float actual))
  then
    Alcotest.failf "%s: expected bits of %.17g, got %.17g" msg expected actual

(* ---------------- the SMW update kernel ---------------- *)

(* A small dense test system behind a Solver plan: full adjacency so
   the plan accepts any pattern, values from a deterministic PRNG,
   diagonally dominant so the base factor is well-conditioned. *)
let dense_system ?(n = 10) seed =
  let st = Random.State.make [| seed |] in
  let a =
    Array.init n (fun _ ->
        Array.init n (fun _ -> Random.State.float st 2.0 -. 1.0))
  in
  for i = 0 to n - 1 do
    a.(i).(i) <- 4.0 +. Random.State.float st 1.0
  done;
  let adj = Array.init n (fun i -> List.init n (fun j -> abs (i - j))) in
  let adj = Array.mapi (fun i _ -> List.init n (fun j -> j) |> List.filter (fun j -> j <> i)) adj in
  let plan = Solver.plan adj in
  let fill add =
    Array.iteri (fun i row -> Array.iteri (fun j v -> add i j v) row) a
  in
  (a, plan, Solver.factor plan ~fill, st)

let rand_vec st n = Array.init n (fun _ -> Random.State.float st 2.0 -. 1.0)

let test_update_matches_dense () =
  let n = 10 in
  let a, plan, factor, st = dense_system 7 in
  for k = 0 to 3 do
    let u = Array.init k (fun _ -> rand_vec st n) in
    let v = Array.init k (fun _ -> rand_vec st n) in
    let scale = Array.init k (fun _ -> Random.State.float st 2.0 -. 1.0) in
    let upd = Update.make ~scale plan factor ~u ~v in
    Alcotest.(check int) "rank" k (Update.rank upd);
    if k = 0 then
      check_close "rank-0 condition" 1.0 (Update.condition upd);
    (* perturbed dense reference *)
    let m = Matrix.of_arrays (Array.map Array.copy a) in
    for t = 0 to k - 1 do
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          Matrix.add_to m i j (scale.(t) *. u.(t).(i) *. v.(t).(j))
        done
      done
    done;
    let b = rand_vec st n in
    let expect = Lu.solve (Lu.decompose m) b in
    let got = Update.solve upd b in
    Array.iteri
      (fun i e -> check_close ~tol:1e-10 (Printf.sprintf "k=%d x[%d]" k i) e got.(i))
      expect;
    (* apply with x0 aliasing x *)
    let x = Solver.solve plan factor b in
    Update.apply upd ~x0:x ~x;
    Array.iteri
      (fun i e -> check_close ~tol:1e-10 (Printf.sprintf "alias k=%d x[%d]" k i) e x.(i))
      expect
  done

let test_update_precomputed_z () =
  let n = 10 in
  let _, plan, factor, st = dense_system 11 in
  let u = Array.init 2 (fun _ -> rand_vec st n) in
  let v = Array.init 2 (fun _ -> rand_vec st n) in
  let z = Array.map (fun ui -> Solver.solve plan factor ui) u in
  let b = rand_vec st n in
  let fresh = Update.solve (Update.make plan factor ~u ~v) b in
  let cached = Update.solve (Update.make ~z plan factor ~u ~v) b in
  Array.iteri (fun i e -> check_bits "z-cache identical" e cached.(i)) fresh

let test_update_singular () =
  (* A = [4]; scale u v^T = -4 annihilates it: S = 1 - 1 = 0 *)
  let plan = Solver.plan [| [] |] in
  let factor = Solver.factor plan ~fill:(fun add -> add 0 0 4.0) in
  Alcotest.check_raises "singular S" Update.Singular (fun () ->
      ignore
        (Update.make ~scale:[| -4.0 |] plan factor ~u:[| [| 1.0 |] |]
           ~v:[| [| 1.0 |] |]))

let test_update_complex () =
  let n = 6 in
  let st = Random.State.make [| 23 |] in
  let a =
    Array.init n (fun i ->
        Array.init n (fun j ->
            let v = Cx.make (Random.State.float st 2.0 -. 1.0)
                (Random.State.float st 2.0 -. 1.0) in
            if i = j then Cx.( +: ) v (Cx.of_float 5.0) else v))
  in
  let adj =
    Array.init n (fun i ->
        List.init n (fun j -> j) |> List.filter (fun j -> j <> i))
  in
  let plan = Solver.plan adj in
  let fill add =
    Array.iteri (fun i row -> Array.iteri (fun j v -> add i j v) row) a
  in
  let cf = Solver.cfactor plan ~fill in
  let crand () = Cx.make (Random.State.float st 2.0 -. 1.0)
      (Random.State.float st 2.0 -. 1.0) in
  let u = Array.init 2 (fun _ -> Array.init n (fun _ -> crand ())) in
  let v = Array.init 2 (fun _ -> Array.init n (fun _ -> crand ())) in
  let scl = Array.init 2 (fun _ -> crand ()) in
  let upd = Update.cmake ~scale:scl plan cf ~u ~v in
  Alcotest.(check int) "crank" 2 (Update.crank upd);
  if not (Update.ccondition upd >= 1.0) then
    Alcotest.fail "ccondition < 1";
  let b = Array.init n (fun _ -> crand ()) in
  (* dense complex reference *)
  let m = Cmatrix.init n n (fun i j -> a.(i).(j)) in
  for t = 0 to 1 do
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        Cmatrix.add_to m i j
          (Cx.( *: ) scl.(t) (Cx.( *: ) u.(t).(i) v.(t).(j)))
      done
    done
  done;
  let expect = Clu.solve (Clu.decompose m) b in
  let got = Update.csolve upd b in
  Array.iteri
    (fun i e ->
      check_close ~tol:1e-10 (Printf.sprintf "re[%d]" i) (Cx.re e)
        (Cx.re got.(i));
      check_close ~tol:1e-10 (Printf.sprintf "im[%d]" i) (Cx.im e)
        (Cx.im got.(i)))
    expect

(* ---------------- the RLC ladder fixture ---------------- *)

let seg_name i = Printf.sprintf "seg%d" i
let cap_name i = Printf.sprintf "cap%d" i

let seg_r i = 8.0 +. (0.25 *. float_of_int i)
let seg_l i = 2e-10 +. (1e-11 *. float_of_int i)
let cap_c i = 5e-14 +. (2e-15 *. float_of_int i)

(* A driven RLC ladder with a resistive load (so DC voltages are a
   nontrivial divider).  [overrides] replaces element values by
   (name, kind) — the fresh-recompile reference for a perturbed
   evaluation. *)
let ladder ?(segments = 10) ?(overrides = []) () =
  let ov name kind default =
    match
      List.find_opt (fun (n, k, _) -> String.equal n name && k = kind) overrides
    with
    | Some (_, _, v) -> v
    | None -> default
  in
  let n = Netlist.create () in
  let src = Netlist.fresh_node ~name:"src" n in
  Netlist.add_vsource ~name:"vin" n src Netlist.ground (Stimulus.Dc 1.0);
  let drv = Netlist.fresh_node ~name:"drv" n in
  Netlist.add_resistor ~name:"rs" n src drv (ov "rs" `R 120.0);
  let prev = ref drv in
  for i = 1 to segments do
    let nx = Netlist.fresh_node ~name:(Printf.sprintf "n%d" i) n in
    Netlist.add_rl_branch ~name:(seg_name i) n !prev nx
      ~ohms:(ov (seg_name i) `R (seg_r i))
      ~henries:(ov (seg_name i) `L (seg_l i));
    Netlist.add_capacitor ~name:(cap_name i) n nx Netlist.ground
      (ov (cap_name i) `C (cap_c i));
    prev := nx
  done;
  Netlist.add_resistor ~name:"rload" n !prev Netlist.ground
    (ov "rload" `R 2500.0);
  (n, !prev)

let all_param_specs segments =
  List.concat
    (List.init segments (fun i ->
         let i = i + 1 in
         [ (seg_name i, `R); (seg_name i, `L); (cap_name i, `C) ]))
  @ [ ("rs", `R); ("rload", `R) ]

(* ---------------- workspace evaluation vs fresh recompile ------- *)

let test_base_point_no_solve () =
  let netlist, out = ladder () in
  let ws = Whatif.compile netlist in
  let sys = Dc.make netlist in
  check_close ~tol:1e-12 "base dc = Dc.voltages"
    (Dc.voltages sys).(out)
    (Whatif.evaluate ws (Whatif.Dc_voltage out));
  let s = Whatif.stats ws in
  Alcotest.(check int) "no updates at base" 0 s.Whatif.updates;
  Alcotest.(check int) "no refactors at base" 0 s.Whatif.refactors

let random_overrides st specs k =
  let specs = Array.of_list specs in
  let chosen = Hashtbl.create 8 in
  let out = ref [] in
  while Hashtbl.length chosen < k do
    let i = Random.State.int st (Array.length specs) in
    if not (Hashtbl.mem chosen i) then begin
      Hashtbl.add chosen i ();
      let name, kind = specs.(i) in
      let base =
        match kind with
        | `R -> if String.equal name "rs" then 120.0
                else if String.equal name "rload" then 2500.0
                else seg_r (Scanf.sscanf name "seg%d" Fun.id)
        | `L -> seg_l (Scanf.sscanf name "seg%d" Fun.id)
        | `C -> cap_c (Scanf.sscanf name "cap%d" Fun.id)
        | `M -> assert false
      in
      let factor = 0.6 +. Random.State.float st 1.0 in
      out := (name, kind, base *. factor) :: !out
    end
  done;
  !out

let targets out = [ ("dc", Whatif.Dc_voltage out); ("delay", Whatif.Delay out) ]

(* The tentpole property: k random value perturbations served by the
   rank-k fast path match a fresh compile of the perturbed netlist to
   1e-9, for both the DC and the moment-delay targets. *)
let test_random_perturbations_match_fresh () =
  let segments = 10 in
  let netlist, out = ladder ~segments () in
  let ws = Whatif.compile netlist in
  let specs = all_param_specs segments in
  let st = Random.State.make [| 2026 |] in
  for trial = 1 to 25 do
    let k = 1 + Random.State.int st 4 in
    let overrides = random_overrides st specs k in
    let set =
      List.map (fun (n, kd, v) -> (Whatif.param ws n kd, v)) overrides
    in
    let fresh_ws = Whatif.compile (fst (ladder ~segments ~overrides ())) in
    List.iter
      (fun (label, target) ->
        let fast = Whatif.evaluate ~set ws target in
        let reference = Whatif.evaluate fresh_ws target in
        check_close ~tol:1e-9
          (Printf.sprintf "trial %d %s (k=%d)" trial label k)
          reference fast)
      (targets out)
  done;
  let s = Whatif.stats ws in
  if s.Whatif.updates = 0 then Alcotest.fail "fast path never taken";
  Alcotest.(check int) "no fallbacks under max_rank" 0 s.Whatif.fallbacks

(* max_rank = 0 forces the refactor baseline; it must agree with the
   update path to the exactness gate. *)
let test_update_vs_refactor_paths () =
  let segments = 10 in
  let netlist, out = ladder ~segments () in
  let fast = Whatif.compile netlist in
  let slow = Whatif.compile ~max_rank:0 netlist in
  let specs = all_param_specs segments in
  let st = Random.State.make [| 7777 |] in
  for trial = 1 to 10 do
    let overrides = random_overrides st specs (1 + Random.State.int st 4) in
    let set ws =
      List.map (fun (n, kd, v) -> (Whatif.param ws n kd, v)) overrides
    in
    List.iter
      (fun (label, target) ->
        check_close ~tol:1e-9
          (Printf.sprintf "trial %d %s" trial label)
          (Whatif.evaluate ~set:(set slow) slow target)
          (Whatif.evaluate ~set:(set fast) fast target))
      (targets out)
  done;
  let sf = Whatif.stats fast and ss = Whatif.stats slow in
  if sf.Whatif.updates = 0 then Alcotest.fail "fast path never taken";
  Alcotest.(check int) "baseline never updates" 0 ss.Whatif.updates;
  Alcotest.(check int) "baseline fallbacks stay 0" 0 ss.Whatif.fallbacks;
  if ss.Whatif.refactors = 0 then Alcotest.fail "baseline never refactored"

(* Exactness guards: rank over max_rank and a hostile condition limit
   both land on the (counted) fallback refactor, with the same
   answers. *)
let test_guard_fallbacks () =
  let segments = 10 in
  let netlist, out = ladder ~segments () in
  let reference = Whatif.compile netlist in
  let capped = Whatif.compile ~max_rank:2 netlist in
  let set ws =
    [ (Whatif.param ws "seg1" `R, 12.0);
      (Whatif.param ws "seg4" `R, 4.0);
      (Whatif.param ws "seg6" `R, 15.0);
      (Whatif.param ws "cap7" `C, 9e-14) ]
  in
  List.iter
    (fun (label, target) ->
      check_close ~tol:1e-9 ("rank-capped " ^ label)
        (Whatif.evaluate ~set:(set reference) reference target)
        (Whatif.evaluate ~set:(set capped) capped target))
    (targets out);
  let s = Whatif.stats capped in
  if s.Whatif.fallbacks = 0 then Alcotest.fail "rank guard never tripped";
  Alcotest.(check int) "fallbacks are refactors" s.Whatif.refactors
    s.Whatif.fallbacks;
  (* a condition limit barely above 1 rejects any real rank >= 2
     perturbation (a 1x1 capacitance matrix S always has condition
     exactly 1, so rank 1 can never trip the guard) *)
  let paranoid = Whatif.compile ~condition_limit:(1.0 +. 1e-12) netlist in
  let pset ws =
    [ (Whatif.param ws "seg2" `R, 80.0); (Whatif.param ws "seg5" `R, 3.0) ]
  in
  let v =
    Whatif.evaluate ~set:(pset paranoid) paranoid (Whatif.Dc_voltage out)
  in
  check_close ~tol:1e-9 "condition-guarded value"
    (Whatif.evaluate ~set:(pset reference) reference (Whatif.Dc_voltage out))
    v;
  let s = Whatif.stats paranoid in
  if s.Whatif.fallbacks = 0 then Alcotest.fail "condition guard never tripped"

let test_rejection_convention () =
  let netlist, out = ladder () in
  let ws = Whatif.compile netlist in
  let p = Whatif.param ws "seg3" `R in
  if not (Float.is_nan
            (Whatif.evaluate ~set:[ (p, -1.0) ] ws (Whatif.Dc_voltage out)))
  then Alcotest.fail "negative resistance must evaluate to nan";
  if not (Float.is_nan
            (Whatif.evaluate ~set:[ (p, Float.nan) ] ws (Whatif.Dc_voltage out)))
  then Alcotest.fail "nan setting must evaluate to nan";
  Alcotest.check_raises "unknown element"
    (Invalid_argument "Whatif.param: unknown element nosuch") (fun () ->
      ignore (Whatif.param ws "nosuch" `R));
  (match Whatif.param ws "cap2" `R with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "capacitor has no resistance");
  check_bits "base_value" (seg_r 3) (Whatif.base_value p)

(* ---------------- the two-pole delay vs the analytic core ------- *)

(* Compute the first three moments densely and feed them to the core
   Delay.of_coeffs: the workspace's self-contained crossing solver
   must agree to near machine precision. *)
let test_delay_matches_core () =
  let netlist, out = ladder ~segments:6 () in
  let ws = Whatif.compile netlist in
  let asm = Whatif.assembly ws in
  let g = Assembly.dense_g asm in
  let c = Assembly.dense_c asm in
  let b = Assembly.b_column asm 0 in
  let lu = Lu.decompose g in
  let y0 = Lu.solve lu b in
  let y1 = Array.map Float.neg (Lu.solve lu (Matrix.mul_vec c y0)) in
  let y2 = Array.map Float.neg (Lu.solve lu (Matrix.mul_vec c y1)) in
  let p = out - 1 in
  let m0 = y0.(p) and m1 = y1.(p) and m2 = y2.(p) in
  let b1 = -.(m1 /. m0) in
  let b2 = ((m1 /. m0) *. (m1 /. m0)) -. (m2 /. m0) in
  let expected = Rlc_core.Delay.of_coeffs ~f:0.5 { Rlc_core.Pade.b1; b2 } in
  check_close ~tol:1e-12 "two-pole crossing"
    expected
    (Whatif.evaluate ws (Whatif.Delay out));
  (* and a non-default threshold *)
  let ws9 = Whatif.compile ~f:0.9 netlist in
  check_close ~tol:1e-12 "f = 0.9"
    (Rlc_core.Delay.of_coeffs ~f:0.9 { Rlc_core.Pade.b1; b2 })
    (Whatif.evaluate ws9 (Whatif.Delay out))

(* ---------------- AC magnitude ---------------- *)

let test_ac_matches_fresh () =
  let segments = 8 in
  let netlist, out = ladder ~segments () in
  let ws = Whatif.compile netlist in
  let omega = 2.0 *. Float.pi *. 2e9 in
  let reference_mag overrides =
    let nl, _ = ladder ~segments ~overrides () in
    let asm = Assembly.of_netlist nl in
    let rhs = Array.map Cx.of_float (Assembly.b_column asm 0) in
    let x = Assembly.solve_complex asm ~s:(Cx.make 0.0 omega) ~rhs in
    Cx.norm x.(out - 1)
  in
  check_close ~tol:1e-12 "base |V|"
    (reference_mag [])
    (Whatif.evaluate ws (Whatif.Ac_mag (out, omega)));
  let st = Random.State.make [| 99 |] in
  let specs = all_param_specs segments in
  for trial = 1 to 8 do
    let overrides = random_overrides st specs (1 + Random.State.int st 3) in
    let set =
      List.map (fun (n, kd, v) -> (Whatif.param ws n kd, v)) overrides
    in
    check_close ~tol:1e-9
      (Printf.sprintf "trial %d |V|" trial)
      (reference_mag overrides)
      (Whatif.evaluate ~set ws (Whatif.Ac_mag (out, omega)))
  done;
  if (Whatif.stats ws).Whatif.updates = 0 then
    Alcotest.fail "AC fast path never taken"

(* ---------------- coupled lines: `L and `M ---------------- *)

let coupled_deck ?(overrides = []) () =
  let ov name kind default =
    match
      List.find_opt (fun (n, k, _) -> String.equal n name && k = kind) overrides
    with
    | Some (_, _, v) -> v
    | None -> default
  in
  let n = Netlist.create () in
  let src = Netlist.fresh_node n in
  Netlist.add_vsource ~name:"vin" n src Netlist.ground (Stimulus.Dc 1.0) ;
  let a1 = Netlist.fresh_node n in
  Netlist.add_resistor ~name:"rs" n src a1 60.0;
  let b1 = Netlist.fresh_node n in
  let a2 = Netlist.fresh_node n in
  let b2 = Netlist.fresh_node n in
  Netlist.add_coupled_rl ~name:"bus" n ~a1 ~b1 ~a2 ~b2
    ~ohms:(ov "bus" `R 15.0)
    ~henries:(ov "bus" `L 4e-10)
    ~mutual:(ov "bus" `M 1.5e-10);
  Netlist.add_capacitor ~name:"cl1" n b1 Netlist.ground 8e-14;
  Netlist.add_capacitor ~name:"cl2" n b2 Netlist.ground 8e-14;
  Netlist.add_resistor ~name:"rnear" n a2 Netlist.ground 50.0;
  Netlist.add_resistor ~name:"rfar" n b2 Netlist.ground 200.0;
  Netlist.add_resistor ~name:"rload" n b1 Netlist.ground 1000.0;
  (n, b1)

let test_coupled_mutual_perturbation () =
  let netlist, out = coupled_deck () in
  let ws = Whatif.compile netlist in
  let cases =
    [ ("bus", `R, 22.0); ("bus", `L, 6e-10); ("bus", `M, 0.9e-10) ]
  in
  List.iter
    (fun (name, kind, value) ->
      let fresh =
        Whatif.compile (fst (coupled_deck ~overrides:[ (name, kind, value) ] ()))
      in
      let set = [ (Whatif.param ws name kind, value) ] in
      List.iter
        (fun (label, target) ->
          check_close ~tol:1e-9
            (Printf.sprintf "%s %s" name label)
            (Whatif.evaluate fresh target)
            (Whatif.evaluate ~set ws target))
        (targets out))
    cases

(* ---------------- adjoint vs finite differences ---------------- *)

let gradient_pair ws target wrt set =
  let fd = Rlc_core.Sensitivity.gradient ~set ws target ~wrt in
  let adj =
    Rlc_core.Sensitivity.gradient ~set ~method_:`Adjoint ws target ~wrt
  in
  (fd, adj)

let check_gradients label scale_tol (fd, adj) =
  let norm = Array.fold_left (fun a v -> Float.max a (Float.abs v)) 0.0 fd in
  if norm = 0.0 then Alcotest.failf "%s: all-zero finite differences" label;
  Array.iteri
    (fun i f ->
      let a = adj.(i) in
      if Float.abs (f -. a) > scale_tol *. (norm +. Float.abs f) then
        Alcotest.failf "%s[%d]: fdiff %.10g adjoint %.10g" label i f a)
    fd

let test_adjoint_matches_fdiff () =
  let segments = 8 in
  let netlist, out = ladder ~segments () in
  let ws = Whatif.compile netlist in
  let wrt =
    [| Whatif.param ws "rs" `R;
       Whatif.param ws "seg2" `R;
       Whatif.param ws "seg5" `L;
       Whatif.param ws "cap3" `C;
       Whatif.param ws "cap8" `C;
       Whatif.param ws "rload" `R |]
  in
  let omega = 2.0 *. Float.pi *. 1.5e9 in
  check_gradients "dc" 1e-6 (gradient_pair ws (Whatif.Dc_voltage out) wrt []);
  check_gradients "delay" 1e-6 (gradient_pair ws (Whatif.Delay out) wrt []);
  check_gradients "ac" 1e-6
    (gradient_pair ws (Whatif.Ac_mag (out, omega)) wrt []);
  (* and away from the base point *)
  let set =
    [ (Whatif.param ws "seg2" `R, 11.0); (Whatif.param ws "cap3" `C, 7e-14) ]
  in
  check_gradients "dc offset" 1e-6
    (gradient_pair ws (Whatif.Dc_voltage out) wrt set);
  check_gradients "delay offset" 1e-6
    (gradient_pair ws (Whatif.Delay out) wrt set);
  check_gradients "ac offset" 1e-6
    (gradient_pair ws (Whatif.Ac_mag (out, omega)) wrt set)

let test_adjoint_coupled () =
  let netlist, out = coupled_deck () in
  let ws = Whatif.compile netlist in
  let wrt =
    [| Whatif.param ws "bus" `R;
       Whatif.param ws "bus" `L;
       Whatif.param ws "bus" `M |]
  in
  check_gradients "coupled delay" 1e-6
    (gradient_pair ws (Whatif.Delay out) wrt [])

(* ---------------- the unified objective interface ---------------- *)

let test_objective_record () =
  let netlist, out = ladder () in
  let ws = Whatif.compile netlist in
  let wrt = [| Whatif.param ws "seg2" `R; Whatif.param ws "cap3" `C |] in
  let obj = Whatif.objective ws (Whatif.Delay out) ~wrt in
  let x = [| 11.0; 7e-14 |] in
  check_bits "objective = evaluate"
    (Whatif.evaluate
       ~set:[ (wrt.(0), x.(0)); (wrt.(1), x.(1)) ]
       ws (Whatif.Delay out))
    (Whatif.eval obj x);
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Whatif.objective: parameter vector length mismatch")
    (fun () -> ignore (Whatif.eval obj [| 1.0 |]))

(* The legacy closure entry points must be bit-identical to the
   context-passing implementation they now wrap. *)
let test_legacy_wrappers_bitwise () =
  let f_resid x = [| (x.(0) *. x.(0)) -. 2.0; x.(1) -. 1.0 |] in
  let legacy = Newton.solve ~f:f_resid ~x0:[| 1.0; 0.0 |] () in
  let viactx =
    Whatif.solve_residuals
      (Whatif.custom_residuals ~workspace:2.0 ~eval:(fun two x ->
           [| (x.(0) *. x.(0)) -. two; x.(1) -. 1.0 |]))
      ~x0:[| 1.0; 0.0 |]
  in
  Alcotest.(check bool) "newton converged" true legacy.Newton.converged;
  Alcotest.(check int) "newton iterations" legacy.Newton.iterations
    viactx.Newton.iterations;
  Array.iteri
    (fun i v -> check_bits (Printf.sprintf "newton x[%d]" i) v viactx.Newton.x.(i))
    legacy.Newton.x;
  let rosen x =
    let a = 1.0 -. x.(0) and b = x.(1) -. (x.(0) *. x.(0)) in
    (a *. a) +. (100.0 *. b *. b)
  in
  let legacy_nm = Nelder_mead.minimize ~f:rosen ~x0:[| -1.2; 1.0 |] () in
  let viactx_nm =
    Whatif.minimize
      (Whatif.custom ~workspace:100.0 ~eval:(fun w x ->
           let a = 1.0 -. x.(0) and b = x.(1) -. (x.(0) *. x.(0)) in
           (a *. a) +. (w *. b *. b)))
      ~x0:[| -1.2; 1.0 |]
  in
  Alcotest.(check int) "nm iterations" legacy_nm.Nelder_mead.iterations
    viactx_nm.Nelder_mead.iterations;
  check_bits "nm fx" legacy_nm.Nelder_mead.fx viactx_nm.Nelder_mead.fx;
  Array.iteri
    (fun i v -> check_bits (Printf.sprintf "nm x[%d]" i) v viactx_nm.Nelder_mead.x.(i))
    legacy_nm.Nelder_mead.x

(* ---------------- structural keys ---------------- *)

let test_structural_key_pairing () =
  let netlist, _ = ladder () in
  let key = Netlist.structural_key netlist in
  Alcotest.(check string) "hash component"
    (Netlist.structural_hash netlist) key.Netlist.hash;
  Alcotest.(check string) "signature component"
    (Netlist.structural_signature netlist) key.Netlist.signature;
  Alcotest.(check bool) "self-reusable" true
    (Netlist.key_reusable ~cached:key ~probe:key);
  let alias = { key with Netlist.signature = key.Netlist.signature ^ "x" } in
  Alcotest.(check bool) "signature mismatch" false
    (Netlist.key_reusable ~cached:key ~probe:alias);
  let ws = Whatif.compile netlist in
  Alcotest.(check string) "workspace key = netlist key"
    key.Netlist.signature (Whatif.key ws).Netlist.signature

(* The alias-safety regression: a probe whose hash matches a cached
   entry but whose signature differs must never be served the cached
   artifacts, and the key-based insert refuses a signature that
   disagrees with its key — the recombination bug the loose
   hash/signature arguments allowed. *)
let test_deck_cache_key_api () =
  let netlist, _ = ladder () in
  let key = Netlist.structural_key netlist in
  let asm = Assembly.of_netlist netlist in
  let entry =
    { Rlc_serve.Deck_cache.signature = key.Netlist.signature;
      asm_plan = asm.Assembly.plan; dc_sym = None; ac_sym = None;
      tran_plan = None }
  in
  let cache = Rlc_serve.Deck_cache.create () in
  Rlc_serve.Deck_cache.insert_key cache key entry;
  (match Rlc_serve.Deck_cache.find_key cache key with
  | Rlc_serve.Deck_cache.Hit e ->
      Alcotest.(check string) "hit signature" key.Netlist.signature
        e.Rlc_serve.Deck_cache.signature
  | _ -> Alcotest.fail "expected hit");
  let alias = { key with Netlist.signature = "impostor" } in
  (match Rlc_serve.Deck_cache.find_key cache alias with
  | Rlc_serve.Deck_cache.Alias -> ()
  | _ -> Alcotest.fail "expected alias");
  (match Rlc_serve.Deck_cache.insert_key cache alias entry with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "insert_key must reject a mismatched signature")

(* ---------------- the serve delay-sens query ---------------- *)

let test_serve_delay_sens () =
  let deck =
    "v1 src 0 dc 1\n\
     rs src a 60\n\
     bseg a b r=10 l=2e-10\n\
     c1 b 0 8e-14\n\
     rl b 0 900\n"
  in
  let line =
    Printf.sprintf "j1 delay-sens b 0.5 bseg:r bseg:l c1:c | %s"
      (Rlc_serve.Protocol.escape_deck deck)
  in
  let service = Rlc_serve.Service.create () in
  let field tok =
    match String.index_opt tok '=' with
    | Some i ->
        ( String.sub tok 0 i,
          float_of_string
            (String.sub tok (i + 1) (String.length tok - i - 1)) )
    | None -> Alcotest.failf "bad field %S" tok
  in
  match Rlc_serve.Service.process_lines service [ line ] with
  | [ resline ] -> begin
      match String.split_on_char ' ' resline with
      | "ok" :: "j1" :: "delay-sens" :: tau_tok :: sens_toks ->
          let _, tau = field tau_tok in
          if not (tau > 0.0) then Alcotest.fail "tau must be positive";
          Alcotest.(check int) "three sensitivities" 3
            (List.length sens_toks);
          (* %.17g round-trips doubles exactly, so the wire values must
             be bit-identical to the workspace adjoint *)
          let netlist = (Parser.parse_string deck).Parser.netlist in
          let out =
            match Netlist.find_node netlist "b" with
            | Some n -> n
            | None -> Alcotest.fail "node b"
          in
          let ws = Whatif.compile ~f:0.5 netlist in
          let wrt =
            [| Whatif.param ws "bseg" `R; Whatif.param ws "bseg" `L;
               Whatif.param ws "c1" `C |]
          in
          let g = Whatif.gradient ws (Whatif.Delay out) ~wrt in
          List.iteri
            (fun i tok ->
              let name, v = field tok in
              if Float.is_nan v then Alcotest.failf "%s is nan" name;
              check_bits name g.(i) v)
            sens_toks;
          check_bits "tau" (Whatif.evaluate ws (Whatif.Delay out)) tau
      | "err" :: _ -> Alcotest.failf "delay-sens errored: %s" resline
      | _ -> Alcotest.failf "unexpected result line %S" resline
    end
  | _ -> Alcotest.fail "expected one delay-sens result"

(* ---------------- suite ---------------- *)

let () =
  Alcotest.run "whatif"
    [
      ( "update kernel",
        [
          Alcotest.test_case "matches dense refactor" `Quick
            test_update_matches_dense;
          Alcotest.test_case "precomputed z identical" `Quick
            test_update_precomputed_z;
          Alcotest.test_case "singular S" `Quick test_update_singular;
          Alcotest.test_case "complex twin" `Quick test_update_complex;
        ] );
      ( "workspace",
        [
          Alcotest.test_case "base point, no solve" `Quick
            test_base_point_no_solve;
          Alcotest.test_case "random perturbations vs fresh" `Quick
            test_random_perturbations_match_fresh;
          Alcotest.test_case "update vs refactor paths" `Quick
            test_update_vs_refactor_paths;
          Alcotest.test_case "guard fallbacks" `Quick test_guard_fallbacks;
          Alcotest.test_case "rejection convention" `Quick
            test_rejection_convention;
          Alcotest.test_case "delay matches analytic core" `Quick
            test_delay_matches_core;
          Alcotest.test_case "ac matches fresh compile" `Quick
            test_ac_matches_fresh;
          Alcotest.test_case "coupled r/l/m perturbations" `Quick
            test_coupled_mutual_perturbation;
        ] );
      ( "adjoint",
        [
          Alcotest.test_case "matches finite differences" `Quick
            test_adjoint_matches_fdiff;
          Alcotest.test_case "coupled bus gradients" `Quick
            test_adjoint_coupled;
        ] );
      ( "unified api",
        [
          Alcotest.test_case "objective record" `Quick test_objective_record;
          Alcotest.test_case "legacy wrappers bitwise" `Quick
            test_legacy_wrappers_bitwise;
        ] );
      ( "structural keys",
        [
          Alcotest.test_case "pairing helper" `Quick
            test_structural_key_pairing;
          Alcotest.test_case "deck cache key api" `Quick
            test_deck_cache_key_api;
        ] );
      ( "serve",
        [
          Alcotest.test_case "delay-sens query" `Quick test_serve_delay_sens;
        ] );
    ]
