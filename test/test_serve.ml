(* Tests for the serving layer: structural hashing (value-blind,
   insertion-order-independent, topology-sensitive), the job protocol
   (malformed lines become per-job errors, never a crash), the
   compiled-deck cache (hits on value-only variants, alias safety, LRU
   eviction, zero repivot fallbacks on value-only sweeps), and the
   cache hooks themselves (Dc ?assembly/?symbolic, Transient
   plan_hint, cengine ?symbolic all bitwise-neutral). *)

open Rlc_circuit
open Rlc_numerics
module M = Rlc_instr.Metrics
module Control = Rlc_instr.Control
module Pool = Rlc_parallel.Pool
module Protocol = Rlc_serve.Protocol
module Deck_cache = Rlc_serve.Deck_cache
module Service = Rlc_serve.Service

let with_recording on f =
  let was = Control.enabled () in
  Control.set_enabled on;
  Fun.protect ~finally:(fun () -> Control.set_enabled was) f

let check_bits name expected actual =
  Alcotest.(check (array int64))
    name
    (Array.map Int64.bits_of_float expected)
    (Array.map Int64.bits_of_float actual)

(* ---------------- deck generators ---------------------------------- *)

(* An RC grid as SPICE text — large enough that Solver.plan picks the
   sparse backend, so the value-only sweep really exercises symbolic
   reuse.  [scale] perturbs values only; the structure is fixed. *)
let grid_deck ?(scale = 1.0) n =
  let b = Buffer.create 4096 in
  Buffer.add_string b "* rc grid\nV1 n_0_0 0 DC 1\n";
  for r = 0 to n - 1 do
    for c = 0 to n - 1 do
      if c + 1 < n then
        Printf.bprintf b "Rh%d_%d n_%d_%d n_%d_%d %.6g\n" r c r c r (c + 1)
          (10.0 *. scale);
      if r + 1 < n then
        Printf.bprintf b "Rv%d_%d n_%d_%d n_%d_%d %.6g\n" r c r c (r + 1) c
          (12.0 *. scale);
      Printf.bprintf b "C%d_%d n_%d_%d 0 %.6gp\n" r c r c (0.5 *. scale)
    done
  done;
  Buffer.add_string b ".end\n";
  Buffer.contents b

let divider_deck r1 =
  Printf.sprintf "Vs in 0 DC 1\nR1 in out %s\nR2 out 0 1k\n.end" r1

let job id query deck = Printf.sprintf "%s %s | %s" id query
    (Protocol.escape_deck deck)

let run_lines ?config lines =
  let svc = Service.create ?config () in
  (Service.process_lines svc lines, svc)

(* ---------------- structural hash / signature ---------------------- *)

let parse text = (Parser.parse_string text).Parser.netlist

let test_hash_value_blind () =
  let a = parse (divider_deck "1k") and b = parse (divider_deck "9.9k") in
  Alcotest.(check string)
    "value-only edit keeps the hash" (Netlist.structural_hash a)
    (Netlist.structural_hash b);
  Alcotest.(check string)
    "and the signature" (Netlist.structural_signature a)
    (Netlist.structural_signature b);
  let g = parse (grid_deck 6) and g' = parse (grid_deck ~scale:3.7 6) in
  Alcotest.(check string)
    "grid value perturbation keeps the hash" (Netlist.structural_hash g)
    (Netlist.structural_hash g')

let test_hash_topology_sensitive () =
  let base = parse (divider_deck "1k") in
  let variants =
    [
      ("extra element", "Vs in 0 DC 1\nR1 in out 1k\nR2 out 0 1k\nC1 out 0 1p\n.end");
      ("rewired", "Vs in 0 DC 1\nR1 in out 1k\nR2 in 0 1k\n.end");
      ("kind change", "Vs in 0 DC 1\nC1 in out 1k\nR2 out 0 1k\n.end");
      ("renamed node", "Vs in 0 DC 1\nR1 in mid 1k\nR2 mid 0 1k\n.end");
    ]
  in
  List.iter
    (fun (what, text) ->
      if
        String.equal
          (Netlist.structural_hash base)
          (Netlist.structural_hash (parse text))
      then Alcotest.failf "%s should change the structural hash" what)
    variants

let test_hash_order_independent () =
  let a = parse "Vs in 0 DC 1\nR1 in out 1k\nR2 out 0 1k\n.end" in
  let b = parse "R2 out 0 1k\nR1 in out 1k\nVs in 0 DC 1\n.end" in
  Alcotest.(check string)
    "permuted cards hash equal" (Netlist.structural_hash a)
    (Netlist.structural_hash b);
  if
    String.equal
      (Netlist.structural_signature a)
      (Netlist.structural_signature b)
  then
    Alcotest.fail
      "permuted cards renumber the nodes: signatures must differ \
       (the cache serves them as aliases, not hits)"

(* ---------------- protocol ----------------------------------------- *)

let test_protocol_parse () =
  (match Protocol.parse_job_line "  # comment" with
  | Protocol.Blank -> ()
  | _ -> Alcotest.fail "comment line should be Blank");
  (match Protocol.parse_job_line "" with
  | Protocol.Blank -> ()
  | _ -> Alcotest.fail "empty line should be Blank");
  (match Protocol.parse_job_line "j1 dc out | @some/deck.sp" with
  | Protocol.Job
      { id = "j1"; query = Protocol.Q_dc { node = "out" };
        deck = Protocol.Deck_file "some/deck.sp" } -> ()
  | _ -> Alcotest.fail "dc @file job should parse");
  (match Protocol.parse_job_line "j2 tran out 10p 1n | R1 a 0 1\\nfoo" with
  | Protocol.Job { query = Protocol.Q_tran { dt; t_end; _ };
                   deck = Protocol.Deck_inline text; _ } ->
      Alcotest.(check (float 1e-22)) "suffixed dt" 1e-11 dt;
      Alcotest.(check (float 1e-18)) "suffixed t_end" 1e-9 t_end;
      Alcotest.(check string) "deck unescaped" "R1 a 0 1\nfoo" text
  | _ -> Alcotest.fail "tran job should parse");
  let malformed line =
    match Protocol.parse_job_line line with
    | Protocol.Malformed { id; message } -> (id, message)
    | _ -> Alcotest.failf "%S should be malformed" line
  in
  let _, m = malformed "j3 dc out" in
  Alcotest.(check bool) "missing bar" true
    (String.length m > 0);
  (match malformed "j4 bogus out | R1 a 0 1" with
  | "j4", m when String.length m > 0 -> ()
  | id, _ -> Alcotest.failf "id %S should be j4" id);
  ignore (malformed "j5 ac out 0 1e6 1e9 | R1 a 0 1");
  ignore (malformed "j6 delay out 1.5 1p 1n | R1 a 0 1");
  ignore (malformed "j7 dc out |   ");
  let text = "line1\nline2\\with\\backslash\n" in
  Alcotest.(check string)
    "escape round-trip" text
    (match Protocol.parse_job_line ("j8 dc x | " ^ Protocol.escape_deck text)
     with
    | Protocol.Job { deck = Protocol.Deck_inline t; _ } -> t
    | _ -> "<parse failed>")

(* ---------------- service: malformed input never aborts ------------ *)

let test_service_malformed () =
  let lines =
    [
      job "good1" "dc out" (divider_deck "1k");
      "broken-no-bar dc out";
      job "bad-deck" "dc out" "R1 in out\n.end";
      "weird frobnicate out | R1 a 0 1";
      "# a comment in the middle";
      job "bad-node" "dc nosuch" (divider_deck "1k");
      job "good2" "dc out" (divider_deck "3k");
      "singular dc out | Isrc a 0 DC 1\nC1 a 0 1p\n.end";
    ]
  in
  let results, svc = run_lines lines in
  Alcotest.(check int) "one result per non-blank line" 7
    (List.length results);
  let starts_ok l = String.length l > 3 && String.sub l 0 3 = "ok " in
  let ids =
    List.map (fun l -> List.nth (String.split_on_char ' ' l) 1) results
  in
  Alcotest.(check (list string))
    "results in submission order"
    [ "good1"; "broken-no-bar"; "bad-deck"; "weird"; "bad-node"; "good2";
      "singular" ]
    ids;
  List.iteri
    (fun i l ->
      let expect_ok = i = 0 || i = 5 in
      Alcotest.(check bool)
        (Printf.sprintf "line %d ok/err" i)
        expect_ok (starts_ok l))
    results;
  Alcotest.(check int) "error count" 5 (Service.summary svc).Service.errors

let test_service_empty_input () =
  let results, svc = run_lines [] in
  Alcotest.(check (list string)) "no lines, no results" [] results;
  let results, _ = run_lines [ ""; "# only comments"; "   " ] in
  Alcotest.(check (list string)) "comments only, no results" [] results;
  Alcotest.(check int) "no jobs counted" 0 (Service.summary svc).Service.jobs

(* ---------------- service: cache behavior -------------------------- *)

(* A value-only sweep over one structural family must hit the cache on
   every deck after the first and never abandon the replayed pivot
   sequence: the repivot fallback counter and the service's symbolic
   refresh counter both stay at zero (a nonzero delta is how cache
   poisoning would become visible). *)
let test_value_only_sweep_no_repivot () =
  with_recording true (fun () ->
      let m_repivot = M.counter "solver.sparse.repivot" in
      let before = M.value m_repivot in
      let scales = [ 1.0; 1.02; 0.97; 1.3; 0.5; 2.0; 1.001; 0.85 ] in
      let lines =
        List.mapi
          (fun i s ->
            job (Printf.sprintf "dc%d" i) "dc n_5_5"
              (grid_deck ~scale:s 24))
          scales
        @ List.mapi
            (fun i s ->
              job (Printf.sprintf "ac%d" i) "ac n_5_5 3 1e6 1e9"
                (grid_deck ~scale:s 24))
            scales
      in
      let results, svc = run_lines lines in
      Alcotest.(check int) "all jobs answered" (List.length lines)
        (List.length results);
      List.iter
        (fun l ->
          Alcotest.(check bool)
            ("ok: " ^ l)
            true
            (String.length l > 3 && String.sub l 0 3 = "ok "))
        results;
      let asm = Assembly.of_netlist (parse (grid_deck 24)) in
      Alcotest.(check bool)
        "grid-24 plans sparse (the sweep must exercise symbolic reuse)"
        true
        (asm.Assembly.plan.Solver.choice = Solver.Sparse_lu);
      let stats = Service.cache_stats svc in
      Alcotest.(check int) "one structural family" 1
        stats.Deck_cache.entries;
      Alcotest.(check int) "one miss" 1 stats.Deck_cache.misses;
      Alcotest.(check int) "everything else hits"
        (List.length lines - 1)
        stats.Deck_cache.hits;
      Alcotest.(check int) "no aliases" 0 stats.Deck_cache.aliases;
      Alcotest.(check (float 0.0))
        "zero repivot fallbacks during the value-only sweep" before
        (M.value m_repivot);
      Alcotest.(check int) "zero symbolic refreshes" 0
        (Service.summary svc).Service.resyms)

let test_alias_not_poisoned () =
  let a = "Vs in 0 DC 1\nR1 in out 1k\nR2 out 0 1k\n.end" in
  let permuted = "R2 out 0 1k\nR1 in out 1k\nVs in 0 DC 1\n.end" in
  let results, svc =
    run_lines [ job "orig" "dc out" a; job "perm" "dc out" permuted ]
  in
  let stats = Service.cache_stats svc in
  Alcotest.(check int) "permuted deck is an alias, not a hit" 1
    stats.Deck_cache.aliases;
  Alcotest.(check int) "no false hits" 0 stats.Deck_cache.hits;
  let payload l =
    match String.split_on_char ' ' l with
    | _ok :: _id :: rest -> String.concat " " rest
    | _ -> l
  in
  match results with
  | [ r1; r2 ] ->
      Alcotest.(check string) "same voltage either way" (payload r1)
        (payload r2)
  | _ -> Alcotest.fail "expected two results"

let test_lru_eviction () =
  let config = { Service.default_config with cache_capacity = 2 } in
  let families =
    [ divider_deck "1k"; grid_deck 4; "Vs a 0 DC 1\nR1 a 0 2k\n.end" ]
  in
  let lines = List.mapi (fun i d -> job (Printf.sprintf "f%d" i) "dc 0" d)
      families in
  let _, svc = run_lines ~config lines in
  let stats = Service.cache_stats svc in
  Alcotest.(check int) "bounded at capacity" 2 stats.Deck_cache.entries;
  Alcotest.(check int) "one eviction" 1 stats.Deck_cache.evictions;
  (* capacity 0 disables caching entirely *)
  let config = { Service.default_config with cache_capacity = 0 } in
  let lines = List.init 3 (fun i ->
      job (Printf.sprintf "r%d" i) "dc out" (divider_deck "1k")) in
  let _, svc = run_lines ~config lines in
  let stats = Service.cache_stats svc in
  Alcotest.(check int) "nothing cached" 0 stats.Deck_cache.entries;
  Alcotest.(check int) "no hits" 0 stats.Deck_cache.hits

(* ---------------- service: determinism ----------------------------- *)

let mixed_lines =
  [
    job "d0" "dc n_3_3" (grid_deck 8);
    job "d1" "dc n_3_3" (grid_deck ~scale:1.1 8);
    job "a0" "ac n_3_3 4 1e6 1e9" (grid_deck 8);
    job "a1" "ac n_3_3 4 1e6 1e9" (grid_deck ~scale:0.9 8);
    job "t0" "tran out 50p 2n" "Vs in 0 PULSE(0 1 0 20p 20p 1n 2n)\nR1 in out 1k\nC1 out 0 100f\n.end";
    job "y0" "delay out 0.5 50p 2n" "Vs in 0 PULSE(0 1 0 20p 20p 1n 2n)\nR1 in out 1k\nC1 out 0 120f\n.end";
    job "e0" "dc nowhere" (divider_deck "1k");
  ]

let test_cold_warm_identical () =
  let svc = Service.create () in
  let cold = Service.process_lines svc mixed_lines in
  let warm = Service.process_lines svc mixed_lines in
  Alcotest.(check (list string))
    "warm replay is bit-identical to the cold pass" cold warm;
  let stats = Service.cache_stats svc in
  Alcotest.(check bool) "warm pass actually hit the cache" true
    (stats.Deck_cache.hits > List.length mixed_lines - 2);
  (* and a fresh service agrees with both *)
  let fresh, _ = run_lines mixed_lines in
  Alcotest.(check (list string)) "fresh service agrees" cold fresh

let test_domain_count_invariance () =
  let sequential, _ = run_lines mixed_lines in
  let pool = Pool.create ~domains:4 () in
  let config = { Service.default_config with pool; batch_size = 3 } in
  let parallel, _ = run_lines ~config mixed_lines in
  Alcotest.(check (list string))
    "4-domain stream equals sequential stream" sequential parallel

(* the exact-text memo is a pure shortcut: disabling it (capacity 0)
   must not change a byte of the stream, warm or cold *)
let test_memo_transparent () =
  let baseline, _ = run_lines mixed_lines in
  let config = { Service.default_config with memo_capacity = 0 } in
  let svc = Service.create ~config () in
  let cold = Service.process_lines svc mixed_lines in
  let warm = Service.process_lines svc mixed_lines in
  Alcotest.(check (list string)) "memo off: cold stream unchanged"
    baseline cold;
  Alcotest.(check (list string)) "memo off: warm stream unchanged"
    baseline warm;
  (* tiny memo: evictions cycle every deck through insert/evict, still
     byte-identical *)
  let config = { Service.default_config with memo_capacity = 1 } in
  let tiny, _ = run_lines ~config mixed_lines in
  Alcotest.(check (list string)) "memo capacity 1: stream unchanged"
    baseline tiny

(* ---------------- cache hooks: bitwise neutrality ------------------ *)

let test_dc_hooks_bitwise () =
  let nl = parse (grid_deck 24) in
  let baseline = Dc.make nl in
  let asm = Assembly.of_netlist nl in
  let symbolic = Solver.symbolic_of (Assembly.factor_g asm) in
  Alcotest.(check bool) "grid-24 factors sparse" true (symbolic <> None);
  let hooked = Dc.make ~assembly:asm ?symbolic nl in
  check_bits "voltages identical through ?assembly/?symbolic"
    (Dc.voltages baseline) (Dc.voltages hooked);
  (* the refactor kept the passed symbolic: physical equality is what
     the service's poisoning detector relies on *)
  (match (symbolic, Dc.g_symbolic hooked) with
  | Some a, Some b when a == b -> ()
  | _ -> Alcotest.fail "successful refactor must share the symbolic")

let test_transient_plan_hint_bitwise () =
  let nl =
    parse "Vs in 0 PULSE(0 1 0 20p 20p 1n 2n)\nR1 in out 1k\nL1 out far 1n\nC1 far 0 100f\n.end"
  in
  let probe = Transient.Node_v (Option.get (Netlist.find_node nl "far")) in
  let run config =
    Rlc_waveform.Waveform.values
      (Transient.get
         (Transient.simulate ~config nl ~t_end:2e-9 ~dt:5e-12
            ~probes:[ probe ])
         probe)
  in
  let plain = run Transient.Config.default in
  let hinted =
    run
      {
        Transient.Config.default with
        plan_hint = Some (Transient.structure_plan nl);
      }
  in
  check_bits "plan_hint leaves the waveform bit-identical" plain hinted;
  (* a wrong-sized hint is ignored, not fatal *)
  let other = parse (grid_deck 4) in
  let mismatched =
    run
      {
        Transient.Config.default with
        plan_hint = Some (Transient.structure_plan other);
      }
  in
  check_bits "mismatched hint ignored" plain mismatched

let test_cengine_symbolic_bitwise () =
  let asm = Assembly.of_netlist (parse (grid_deck 24)) in
  let freqs = Ac.decade_grid ~points_per_decade:3 ~fstart:1e6 ~fstop:1e9 in
  let s_ref = Ac.s_of_freq freqs.(0) in
  let rhs = Array.map Cx.of_float (Assembly.b_column asm 0) in
  let sweep ce =
    Array.concat
      (Array.to_list
         (Array.map
            (fun f ->
              let x =
                Assembly.cengine_solve ce ~s:(Ac.s_of_freq f) ~rhs
              in
              Array.init
                (2 * Array.length x)
                (fun i ->
                  if i mod 2 = 0 then Cx.re x.(i / 2) else Cx.im x.(i / 2)))
            freqs))
  in
  let ce1 = Assembly.cengine asm ~s_ref in
  let symbolic = Assembly.cengine_symbolic ce1 in
  Alcotest.(check bool) "engine is sparse" true (symbolic <> None);
  let ce2 = Assembly.cengine ?symbolic asm ~s_ref in
  check_bits "adopted symbolic leaves the sweep bit-identical"
    (sweep ce1) (sweep ce2)

(* ---------------- metrics quantiles -------------------------------- *)

let test_hist_quantiles () =
  with_recording true (fun () ->
      let h = M.hist "test.serve.quantiles" in
      Alcotest.(check bool) "empty hist has no quantiles" true
        (M.hist_quantiles h [| 0.5 |] = None);
      for i = 1 to 1000 do
        M.observe h (float_of_int i /. 1000.0)
      done;
      match M.hist_quantiles h [| 0.0; 0.5; 0.9; 0.99; 1.0 |] with
      | None -> Alcotest.fail "populated hist must report quantiles"
      | Some q ->
          Alcotest.(check int) "one per request" 5 (Array.length q);
          Array.iteri
            (fun i v ->
              if i > 0 && v < q.(i - 1) then
                Alcotest.failf "quantiles must be monotone (%g < %g)" v
                  q.(i - 1))
            q;
          Alcotest.(check bool) "p50 upper bound covers the median" true
            (q.(1) >= 0.5 && q.(1) <= 1.0);
          Alcotest.(check bool) "p99 >= p50" true (q.(3) >= q.(1)));
  let h = M.hist "test.serve.quantiles2" in
  with_recording true (fun () ->
      M.observe h 1.0;
      match M.hist_quantiles h [| 1.5 |] with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "quantile outside [0,1] must raise")

let () =
  Alcotest.run "serve"
    [
      ( "structural hash",
        [
          Alcotest.test_case "value-blind" `Quick test_hash_value_blind;
          Alcotest.test_case "topology-sensitive" `Quick
            test_hash_topology_sensitive;
          Alcotest.test_case "order-independent" `Quick
            test_hash_order_independent;
        ] );
      ( "protocol",
        [ Alcotest.test_case "parse + malformed" `Quick test_protocol_parse ]
      );
      ( "service robustness",
        [
          Alcotest.test_case "malformed jobs never abort" `Quick
            test_service_malformed;
          Alcotest.test_case "empty input" `Quick test_service_empty_input;
        ] );
      ( "deck cache",
        [
          Alcotest.test_case "value-only sweep: hits, zero repivots" `Quick
            test_value_only_sweep_no_repivot;
          Alcotest.test_case "alias safety" `Quick test_alias_not_poisoned;
          Alcotest.test_case "lru + disabled cache" `Quick test_lru_eviction;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "cold = warm = fresh" `Quick
            test_cold_warm_identical;
          Alcotest.test_case "domain-count invariant" `Quick
            test_domain_count_invariance;
          Alcotest.test_case "memo transparent" `Quick test_memo_transparent;
        ] );
      ( "cache hooks",
        [
          Alcotest.test_case "dc ?assembly/?symbolic" `Quick
            test_dc_hooks_bitwise;
          Alcotest.test_case "transient plan_hint" `Quick
            test_transient_plan_hint_bitwise;
          Alcotest.test_case "cengine ?symbolic" `Quick
            test_cengine_symbolic_bitwise;
        ] );
      ( "metrics",
        [ Alcotest.test_case "hist_quantiles" `Quick test_hist_quantiles ]
      );
    ]
