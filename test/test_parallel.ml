(* Tests for rlc_parallel: determinism of the domain pool across domain
   counts (the load-bearing property — parallelism must never change a
   float), chunking edge cases, error propagation, and the pooled
   consumers (sweeps, Monte-Carlo, adaptive transient, AC). *)

module Pool = Rlc_parallel.Pool

let pools () = List.map (fun d -> Pool.create ~domains:d ()) [ 1; 2; 4 ]

let check_bits name expected actual =
  Alcotest.(check (list int64))
    name
    (List.map Int64.bits_of_float expected)
    (List.map Int64.bits_of_float actual)

(* ---------------- Pool basics ---------------- *)

let test_default_domains () =
  let d = Pool.default_domains () in
  Alcotest.(check bool) "at least one domain" true (d >= 1);
  Alcotest.(check int) "sequential pool has one domain" 1
    (Pool.domains Pool.sequential);
  Alcotest.check_raises "zero domains rejected"
    (Invalid_argument "Pool.create: domains < 1") (fun () ->
      ignore (Pool.create ~domains:0 ()))

let test_map_identity () =
  List.iter
    (fun pool ->
      let xs = Array.init 37 float_of_int in
      let ys = Pool.map pool (fun x -> (x *. 3.0) +. 1.0) xs in
      Array.iteri
        (fun i x ->
          Alcotest.(check (float 0.0))
            (Printf.sprintf "slot %d (%d domains)" i (Pool.domains pool))
            ((x *. 3.0) +. 1.0)
            ys.(i))
        xs)
    (pools ())

let test_map_edge_cases () =
  List.iter
    (fun pool ->
      let tag = Printf.sprintf "(%d domains)" (Pool.domains pool) in
      (* empty input *)
      Alcotest.(check int)
        ("empty " ^ tag) 0
        (Array.length (Pool.map pool (fun x -> x +. 1.0) [||]));
      (* fewer items than domains *)
      let two = Pool.map pool (fun x -> x *. 2.0) [| 1.0; 2.0 |] in
      Alcotest.(check (float 0.0)) ("n < domains fst " ^ tag) 2.0 two.(0);
      Alcotest.(check (float 0.0)) ("n < domains snd " ^ tag) 4.0 two.(1);
      (* chunk = 1 covers every slot exactly once *)
      let seen = Array.make 11 0 in
      let _ =
        Pool.mapi ~chunk:1 pool
          (fun i () ->
            seen.(i) <- seen.(i) + 1;
            i)
          (Array.make 11 ())
      in
      Array.iteri
        (fun i n ->
          Alcotest.(check int) (Printf.sprintf "slot %d once %s" i tag) 1 n)
        seen)
    (pools ())

let test_map_list_order () =
  List.iter
    (fun pool ->
      Alcotest.(check (list string))
        (Printf.sprintf "order kept (%d domains)" (Pool.domains pool))
        [ "a!"; "b!"; "c!"; "d!"; "e!" ]
        (Pool.map_list pool (fun s -> s ^ "!") [ "a"; "b"; "c"; "d"; "e" ]))
    (pools ())

let test_map_reduce () =
  List.iter
    (fun pool ->
      (* fold order is the slot order, so float accumulation is exact
         across domain counts *)
      let xs = Array.init 1000 (fun i -> 1.0 /. float_of_int (i + 1)) in
      let total =
        Pool.map_reduce pool ~map:(fun x -> x *. x) ~reduce:( +. ) ~init:0.0 xs
      in
      let expected = Array.fold_left (fun a x -> a +. (x *. x)) 0.0 xs in
      Alcotest.(check (float 0.0))
        (Printf.sprintf "bitwise fold (%d domains)" (Pool.domains pool))
        expected total)
    (pools ())

let test_both () =
  List.iter
    (fun pool ->
      let a, b = Pool.both pool (fun () -> 6 * 7) (fun () -> "ok") in
      Alcotest.(check int) "first" 42 a;
      Alcotest.(check string) "second" "ok" b)
    (pools ())

let test_exception_propagation () =
  List.iter
    (fun pool ->
      let tag = Printf.sprintf "(%d domains)" (Pool.domains pool) in
      Alcotest.check_raises ("map raises " ^ tag) (Failure "boom") (fun () ->
          ignore
            (Pool.map pool
               (fun x -> if x = 5.0 then failwith "boom" else x)
               (Array.init 20 float_of_int)));
      Alcotest.check_raises ("both raises " ^ tag) (Failure "left") (fun () ->
          ignore (Pool.both pool (fun () -> failwith "left") (fun () -> 1))))
    (pools ())

(* ---------------- Determinism of the pooled consumers ------------- *)

let sweep_floats pool =
  let s =
    Rlc_experiments.Sweeps.run ~pool ~n:9 Rlc_tech.Presets.node_100nm
  in
  List.concat_map
    (fun (p : Rlc_experiments.Sweeps.point) ->
      [
        p.Rlc_experiments.Sweeps.l;
        p.Rlc_experiments.Sweeps.l_crit;
        p.Rlc_experiments.Sweeps.h_ratio;
        p.Rlc_experiments.Sweeps.k_ratio;
        p.Rlc_experiments.Sweeps.delay_ratio;
        p.Rlc_experiments.Sweeps.rc_sized_penalty;
      ])
    s.Rlc_experiments.Sweeps.points

let test_sweep_determinism () =
  match List.map sweep_floats (pools ()) with
  | [ one; two; four ] ->
      check_bits "1 vs 2 domains" one two;
      check_bits "1 vs 4 domains" one four
  | _ -> assert false

let monte_carlo_floats pool =
  let node = Rlc_tech.Presets.node_100nm in
  let rc = Rlc_core.Rc_opt.optimize node in
  let s =
    Rlc_core.Variation.delay_statistics ~pool ~seed:7 ~n:256 node
      ~h:rc.Rlc_core.Rc_opt.h_opt ~k:rc.Rlc_core.Rc_opt.k_opt
      (Rlc_core.Variation.default_distribution node)
  in
  [
    s.Rlc_core.Variation.mean; s.Rlc_core.Variation.stddev;
    s.Rlc_core.Variation.min; s.Rlc_core.Variation.max;
    s.Rlc_core.Variation.p95;
  ]

let test_monte_carlo_determinism () =
  match List.map monte_carlo_floats (pools ()) with
  | [ one; two; four ] ->
      check_bits "1 vs 2 domains" one two;
      check_bits "1 vs 4 domains" one four
  | _ -> assert false

let test_corners_determinism () =
  let node = Rlc_tech.Presets.node_100nm in
  let rc = Rlc_core.Rc_opt.optimize node in
  let h = rc.Rlc_core.Rc_opt.h_opt and k = rc.Rlc_core.Rc_opt.k_opt in
  let windows =
    List.map
      (fun pool ->
        let lo, hi = Rlc_core.Corners.delay_window ~pool node ~h ~k in
        [ lo; hi ])
      (pools ())
  in
  match windows with
  | [ one; two; four ] ->
      check_bits "1 vs 2 domains" one two;
      check_bits "1 vs 4 domains" one four
  | _ -> assert false

let test_ac_determinism () =
  let open Rlc_circuit in
  let nl = Netlist.create () in
  let src = Netlist.fresh_node nl in
  Netlist.add_vsource nl src Netlist.ground (Stimulus.Dc 1.0);
  let far = Netlist.fresh_node nl in
  Ladder.make nl
    { Ladder.r = 4400.0; l = 1.5e-6; c = 123.33e-12; length = 0.011;
      segments = 8 }
    ~from_node:src ~to_node:far;
  let m = Mna.of_netlist nl in
  let output = Mna.output_of_node m far in
  let freqs = Ac.decade_grid ~points_per_decade:7 ~fstart:1e7 ~fstop:1e10 in
  let run pool =
    Array.to_list (Ac.bode ~pool m ~input:0 ~output ~freqs)
    |> List.concat_map (fun (p : Ac.point) ->
           [ p.Ac.freq; p.Ac.mag_db; p.Ac.phase_deg ])
  in
  match List.map run (pools ()) with
  | [ one; two; four ] ->
      check_bits "1 vs 2 domains" one two;
      check_bits "1 vs 4 domains" one four
  | _ -> assert false

(* ---------------- Transient Config + pooled adaptive -------------- *)

let step_ladder segments =
  let open Rlc_circuit in
  let nl = Netlist.create () in
  let src = Netlist.fresh_node nl in
  Netlist.add_vsource nl src Netlist.ground
    (Stimulus.Step { v0 = 0.0; v1 = 1.0; t_delay = 0.0; t_rise = 20e-12 });
  let far = Netlist.fresh_node nl in
  Ladder.make nl
    { Ladder.r = 4400.0; l = 1.5e-6; c = 123.33e-12; length = 0.011; segments }
    ~from_node:src ~to_node:far;
  (nl, far)

let test_config_matches_legacy_run () =
  let open Rlc_circuit in
  let nl, far = step_ladder 10 in
  let probes = [ Transient.Node_v far ] in
  let legacy = Transient.run ~record_every:2 nl ~t_end:1e-9 ~dt:1e-12 ~probes in
  let cfg = { Transient.Config.default with record_every = 2 } in
  let fresh = Transient.simulate ~config:cfg nl ~t_end:1e-9 ~dt:1e-12 ~probes in
  check_bits "waveforms identical"
    (Array.to_list
       (Rlc_waveform.Waveform.values (Transient.get legacy (Transient.Node_v far))))
    (Array.to_list
       (Rlc_waveform.Waveform.values (Transient.get fresh (Transient.Node_v far))));
  Alcotest.(check int) "steps identical" (Transient.steps_taken legacy)
    (Transient.steps_taken fresh)

let test_pooled_adaptive_identical () =
  let open Rlc_circuit in
  let nl, far = step_ladder 10 in
  let probes = [ Transient.Node_v far ] in
  let run pool =
    let config = { Transient.Config.default with pool } in
    Transient.simulate_adaptive ~config nl ~t_end:1e-9 ~dt_max:1e-11 ~probes
  in
  let seq = run None in
  let par = run (Some (Pool.create ~domains:2 ())) in
  check_bits "adaptive waveform identical with a mirror domain"
    (Array.to_list
       (Rlc_waveform.Waveform.values (Transient.get seq (Transient.Node_v far))))
    (Array.to_list
       (Rlc_waveform.Waveform.values (Transient.get par (Transient.Node_v far))));
  Alcotest.(check int) "accepted steps identical" (Transient.steps_taken seq)
    (Transient.steps_taken par);
  Alcotest.(check int) "rejected steps identical"
    (Transient.rejected_steps seq)
    (Transient.rejected_steps par)

(* ---------------- Formatter capture ---------------- *)

let capture f =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  f ppf;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_print_to_formatter () =
  let rows = Rlc_experiments.Table1.compute () in
  let out = capture (fun ppf -> Rlc_experiments.Table1.print ~ppf rows) in
  Alcotest.(check bool) "table captured" true (contains out "Table 1")

let test_section_format () =
  let out = capture (fun ppf -> Rlc_report.Report.section ~ppf "Title") in
  Alcotest.(check string) "section layout" "\nTitle\n=====\n\n" out;
  let line = capture (fun ppf -> Rlc_report.Report.line ~ppf "x=%d" 3) in
  Alcotest.(check string) "line layout" "x=3\n" line

let () =
  Alcotest.run "rlc_parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "default domains" `Quick test_default_domains;
          Alcotest.test_case "map identity" `Quick test_map_identity;
          Alcotest.test_case "edge cases" `Quick test_map_edge_cases;
          Alcotest.test_case "map_list order" `Quick test_map_list_order;
          Alcotest.test_case "map_reduce" `Quick test_map_reduce;
          Alcotest.test_case "both" `Quick test_both;
          Alcotest.test_case "exceptions" `Quick test_exception_propagation;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "fig4-8 sweep" `Quick test_sweep_determinism;
          Alcotest.test_case "monte-carlo" `Quick test_monte_carlo_determinism;
          Alcotest.test_case "corners" `Quick test_corners_determinism;
          Alcotest.test_case "ac bode" `Quick test_ac_determinism;
        ] );
      ( "transient config",
        [
          Alcotest.test_case "config = legacy run" `Quick
            test_config_matches_legacy_run;
          Alcotest.test_case "pooled adaptive identical" `Quick
            test_pooled_adaptive_identical;
        ] );
      ( "formatters",
        [
          Alcotest.test_case "print to buffer" `Quick test_print_to_formatter;
          Alcotest.test_case "section layout" `Quick test_section_format;
        ] );
    ]
