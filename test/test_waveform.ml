(* Tests for rlc_waveform: waveform container and measurements. *)

let check_float = Alcotest.(check (float 1e-9))
let check_close ?(tol = 1e-9) msg expected actual =
  if
    Float.abs (expected -. actual)
    > tol *. (1.0 +. Float.max (Float.abs expected) (Float.abs actual))
  then
    Alcotest.failf "%s: expected %.15g, got %.15g" msg expected actual

open Rlc_waveform

let ramp = Waveform.create ~times:[| 0.0; 1.0; 2.0 |] ~values:[| 0.0; 1.0; 2.0 |]

let sine ?(periods = 3.0) ?(n = 3000) ?(amp = 1.0) ?(offset = 0.0) () =
  Waveform.of_fn ~n
    (fun t -> offset +. (amp *. Float.sin (2.0 *. Float.pi *. t)))
    ~t0:0.0 ~t1:periods

(* ---------------- Waveform ---------------- *)

let test_create_validation () =
  Alcotest.check_raises "empty"
    (Invalid_argument "Waveform.create: empty or mismatched arrays") (fun () ->
      ignore (Waveform.create ~times:[||] ~values:[||]));
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Waveform.create: empty or mismatched arrays") (fun () ->
      ignore (Waveform.create ~times:[| 0.0 |] ~values:[| 1.0; 2.0 |]));
  Alcotest.check_raises "non-monotonic"
    (Invalid_argument "Waveform.create: times not strictly increasing")
    (fun () ->
      ignore (Waveform.create ~times:[| 0.0; 0.0 |] ~values:[| 1.0; 2.0 |]))

let test_accessors () =
  Alcotest.(check int) "length" 3 (Waveform.length ramp);
  check_float "start" 0.0 (Waveform.t_start ramp);
  check_float "end" 2.0 (Waveform.t_end ramp);
  check_float "duration" 2.0 (Waveform.duration ramp)

let test_value_at () =
  check_float "interp" 0.5 (Waveform.value_at ramp 0.5);
  check_float "clamped below" 0.0 (Waveform.value_at ramp (-1.0));
  check_float "clamped above" 2.0 (Waveform.value_at ramp 10.0)

let test_map_map2 () =
  let doubled = Waveform.map (fun v -> 2.0 *. v) ramp in
  check_float "map" 4.0 (Waveform.value_at doubled 2.0);
  let sum = Waveform.map2 ( +. ) ramp doubled in
  check_float "map2" 6.0 (Waveform.value_at sum 2.0);
  let other = Waveform.create ~times:[| 0.0; 9.0 |] ~values:[| 0.0; 0.0 |] in
  Alcotest.check_raises "mismatched axes"
    (Invalid_argument "Waveform.map2: time axes differ") (fun () ->
      ignore (Waveform.map2 ( +. ) ramp other))

let test_slice_shift () =
  let s = Waveform.slice ramp ~t0:0.5 ~t1:2.0 in
  Alcotest.(check int) "slice keeps 2" 2 (Waveform.length s);
  check_float "slice start" 1.0 (Waveform.t_start s);
  let sh = Waveform.shift ramp 10.0 in
  check_float "shifted" 10.0 (Waveform.t_start sh);
  Alcotest.check_raises "empty slice"
    (Invalid_argument "Waveform.slice: empty result") (fun () ->
      ignore (Waveform.slice ramp ~t0:5.0 ~t1:6.0))

let test_fold_iter () =
  let count = Waveform.fold (fun acc _ _ -> acc + 1) 0 ramp in
  Alcotest.(check int) "fold count" 3 count;
  let sum = ref 0.0 in
  Waveform.iter (fun _ v -> sum := !sum +. v) ramp;
  check_float "iter sum" 3.0 !sum

let test_of_fn () =
  let w = Waveform.of_fn ~n:11 (fun t -> t *. t) ~t0:0.0 ~t1:1.0 in
  Alcotest.(check int) "samples" 11 (Waveform.length w);
  check_float "endpoint" 1.0 (Waveform.value_at w 1.0)

(* ---------------- Measure ---------------- *)

let test_crossings_sine () =
  let w = sine () in
  let ups = Measure.crossings ~direction:Measure.Rising w ~level:0.0 in
  (* 3 periods starting exactly at 0 heading up: rising zero crossings
     at t = 0 (on-level sample), 1 and 2 *)
  Alcotest.(check int) "rising crossings" 3 (List.length ups);
  check_close "first" 0.0 (List.nth ups 0) ~tol:1e-3;
  check_close "second" 1.0 (List.nth ups 1) ~tol:1e-3;
  let downs = Measure.crossings ~direction:Measure.Falling w ~level:0.0 in
  Alcotest.(check int) "falling crossings" 3 (List.length downs);
  check_close "first fall" 0.5 (List.nth downs 0) ~tol:1e-3

let test_threshold_delay () =
  (* first-order rise 1 - e^{-t}: 50% delay = ln 2 *)
  let w =
    Waveform.of_fn ~n:5000 (fun t -> 1.0 -. Float.exp (-.t)) ~t0:0.0 ~t1:8.0
  in
  (match Measure.threshold_delay w ~fraction:0.5 ~v_final:1.0 with
  | Some d -> check_close "ln 2" (Float.log 2.0) d ~tol:1e-3
  | None -> Alcotest.fail "no delay found");
  Alcotest.check_raises "bad fraction"
    (Invalid_argument "Measure.threshold_delay: fraction must be in [0,1)")
    (fun () -> ignore (Measure.threshold_delay w ~fraction:1.5 ~v_final:1.0))

let test_overshoot_undershoot () =
  let w =
    Waveform.create
      ~times:[| 0.0; 1.0; 2.0; 3.0; 4.0 |]
      ~values:[| 0.0; 1.4; 0.8; 1.1; 1.0 |]
  in
  check_close "overshoot" 0.4 (Measure.overshoot w ~v_final:1.0);
  check_close "no undershoot below 0" 0.0 (Measure.undershoot_below w ~floor:0.0);
  let w2 = Waveform.map (fun v -> v -. 0.9) w in
  check_close "undershoot" 0.9 (Measure.undershoot_below w2 ~floor:0.0)

let test_settling_time () =
  let w =
    Waveform.of_fn ~n:4000
      (fun t -> 1.0 -. (Float.exp (-.t) *. Float.cos (10.0 *. t)))
      ~t0:0.0 ~t1:10.0
  in
  match Measure.settling_time w ~v_final:1.0 ~band:0.05 with
  | Some t ->
      (* envelope e^{-t} = 0.05 at t = ln 20 = 3.0; settling must be
         at or before that, and after 1.0 *)
      Alcotest.(check bool) "reasonable" true (t > 0.5 && t <= 3.1)
  | None -> Alcotest.fail "did not settle"

let test_period_sine () =
  let w = sine () in
  match Measure.period w with
  | Some p -> check_close "period" 1.0 p ~tol:1e-3
  | None -> Alcotest.fail "no period"

let test_period_none_for_dc () =
  let w = Waveform.create ~times:[| 0.0; 1.0 |] ~values:[| 1.0; 1.0 |] in
  Alcotest.(check bool) "no period" true (Measure.period w = None)

let test_peak_rms () =
  let w = sine ~amp:2.0 () in
  check_close "peak" 2.0 (Measure.peak_abs w) ~tol:1e-4;
  check_close "rms" (2.0 /. Float.sqrt 2.0) (Measure.rms w) ~tol:1e-3

let test_rms_over_period () =
  (* sine with a DC transient would bias plain RMS; over integral
     periods it is amp/sqrt2 *)
  let w = sine ~amp:1.0 ~periods:3.25 () in
  match Measure.rms_over_period w with
  | Some r -> check_close "rms over periods" (1.0 /. Float.sqrt 2.0) r ~tol:2e-3
  | None -> Alcotest.fail "no period found"

let test_full_transitions () =
  (* square-ish wave with ringing around mid-level that must not count *)
  let times = Array.init 13 (fun i -> float_of_int i) in
  let values =
    [| 0.0; 1.0; 0.55; 0.45; 0.6; 0.4; 1.0; 0.9; 0.0; 0.1; 0.05; 1.0; 1.0 |]
  in
  let w = Waveform.create ~times ~values in
  let events = Measure.full_transitions w ~lo:0.25 ~hi:0.75 in
  (* rises at t=1 and t=11; fall at t=8.  the 0.55/0.45/0.6/0.4 ringing
     never reaches either level *)
  Alcotest.(check int) "event count" 3 (List.length events);
  (match events with
  | (t1, Measure.Rise) :: (t2, Measure.Fall) :: (t3, Measure.Rise) :: _ ->
      check_float "rise 1" 1.0 t1;
      check_float "fall" 8.0 t2;
      check_float "rise 2" 11.0 t3
  | _ -> Alcotest.fail "unexpected event sequence");
  Alcotest.check_raises "lo >= hi"
    (Invalid_argument "Measure.full_transitions: lo >= hi") (fun () ->
      ignore (Measure.full_transitions w ~lo:0.8 ~hi:0.2))

let test_schmitt_period () =
  let w = sine ~periods:4.0 () in
  match Measure.schmitt_period w ~lo:(-0.5) ~hi:0.5 with
  | Some p -> check_close "schmitt period" 1.0 p ~tol:1e-2
  | None -> Alcotest.fail "no schmitt period"

let prop_overshoot_nonnegative =
  QCheck2.Test.make ~name:"overshoot is always >= 0" ~count:200
    QCheck2.Gen.(list_size (int_range 2 40) (float_range (-5.0) 5.0))
    (fun vs ->
      let values = Array.of_list vs in
      let times = Array.init (Array.length values) float_of_int in
      let w = Waveform.create ~times ~values in
      Measure.overshoot w ~v_final:1.0 >= 0.0
      && Measure.undershoot_below w ~floor:0.0 >= 0.0)

let prop_rms_bounded_by_peak =
  QCheck2.Test.make ~name:"rms <= peak" ~count:200
    QCheck2.Gen.(list_size (int_range 2 40) (float_range (-5.0) 5.0))
    (fun vs ->
      let values = Array.of_list vs in
      let times = Array.init (Array.length values) float_of_int in
      let w = Waveform.create ~times ~values in
      Measure.rms w <= Measure.peak_abs w +. 1e-12)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "rlc_waveform"
    [
      ( "waveform",
        [
          Alcotest.test_case "create validation" `Quick test_create_validation;
          Alcotest.test_case "accessors" `Quick test_accessors;
          Alcotest.test_case "value_at" `Quick test_value_at;
          Alcotest.test_case "map / map2" `Quick test_map_map2;
          Alcotest.test_case "slice / shift" `Quick test_slice_shift;
          Alcotest.test_case "fold / iter" `Quick test_fold_iter;
          Alcotest.test_case "of_fn" `Quick test_of_fn;
        ] );
      ( "measure",
        [
          Alcotest.test_case "crossings" `Quick test_crossings_sine;
          Alcotest.test_case "threshold delay" `Quick test_threshold_delay;
          Alcotest.test_case "overshoot/undershoot" `Quick
            test_overshoot_undershoot;
          Alcotest.test_case "settling time" `Quick test_settling_time;
          Alcotest.test_case "period of sine" `Quick test_period_sine;
          Alcotest.test_case "period of dc" `Quick test_period_none_for_dc;
          Alcotest.test_case "peak & rms" `Quick test_peak_rms;
          Alcotest.test_case "rms over period" `Quick test_rms_over_period;
          Alcotest.test_case "full transitions" `Quick test_full_transitions;
          Alcotest.test_case "schmitt period" `Quick test_schmitt_period;
        ] );
      qsuite "measure-properties"
        [ prop_overshoot_nonnegative; prop_rms_bounded_by_peak ];
    ]
