(* Tests for rlc_circuit: stimulus evaluation, netlist construction,
   DC operating point, the MNA transient engine against closed-form
   circuit responses, and the ladder discretisation. *)

let check_close ?(tol = 1e-9) msg expected actual =
  if
    Float.abs (expected -. actual)
    > tol *. (1.0 +. Float.max (Float.abs expected) (Float.abs actual))
  then
    Alcotest.failf "%s: expected %.15g, got %.15g" msg expected actual

open Rlc_circuit

(* ---------------- Stimulus ---------------- *)

let test_stimulus_dc () =
  check_close "dc" 3.3 (Stimulus.eval (Stimulus.Dc 3.3) 42.0)

let test_stimulus_step () =
  let s = Stimulus.Step { v0 = 0.0; v1 = 1.0; t_delay = 1.0; t_rise = 2.0 } in
  check_close "before" 0.0 (Stimulus.eval s 0.5);
  check_close "mid-ramp" 0.5 (Stimulus.eval s 2.0);
  check_close "after" 1.0 (Stimulus.eval s 10.0)

let test_stimulus_pulse () =
  let s =
    Stimulus.Pulse
      { v0 = 0.0; v1 = 1.0; t_delay = 0.0; t_rise = 0.1; t_high = 0.3;
        t_fall = 0.1; period = 1.0 }
  in
  check_close "rising" 0.5 (Stimulus.eval s 0.05);
  check_close "high" 1.0 (Stimulus.eval s 0.2);
  check_close "falling" 0.5 (Stimulus.eval s 0.45);
  check_close "low" 0.0 (Stimulus.eval s 0.7);
  (* periodic repetition *)
  check_close "next period high" 1.0 (Stimulus.eval s 1.2)

let test_stimulus_pwl () =
  let s = Stimulus.Pwl [ (0.0, 0.0); (1.0, 2.0); (3.0, -1.0) ] in
  check_close "interior 1" 1.0 (Stimulus.eval s 0.5);
  check_close "interior 2" 0.5 (Stimulus.eval s 2.0);
  check_close "clamped right" (-1.0) (Stimulus.eval s 99.0);
  check_close "clamped left" 0.0 (Stimulus.eval s (-1.0))

let test_stimulus_square_wave () =
  let s = Stimulus.square_wave ~vdd:1.2 ~period:1e-9 () in
  Stimulus.validate s;
  check_close "high plateau" 1.2 (Stimulus.eval s 0.25e-9);
  check_close "low plateau" 0.0 (Stimulus.eval s 0.75e-9)

let test_stimulus_validation () =
  Alcotest.check_raises "pulse too wide"
    (Invalid_argument "Stimulus: pulse does not fit its period") (fun () ->
      Stimulus.validate
        (Stimulus.Pulse
           { v0 = 0.0; v1 = 1.0; t_delay = 0.0; t_rise = 0.5; t_high = 0.5;
             t_fall = 0.5; period = 1.0 }));
  Alcotest.check_raises "pwl not increasing"
    (Invalid_argument "Stimulus: PWL times not increasing") (fun () ->
      Stimulus.validate (Stimulus.Pwl [ (1.0, 0.0); (1.0, 1.0) ]));
  Alcotest.check_raises "negative step delay"
    (Invalid_argument "Stimulus: step t_delay < 0") (fun () ->
      Stimulus.validate
        (Stimulus.Step { v0 = 0.0; v1 = 1.0; t_delay = -1e-12; t_rise = 1e-12 }));
  Alcotest.check_raises "negative pulse delay"
    (Invalid_argument "Stimulus: pulse t_delay < 0") (fun () ->
      Stimulus.validate
        (Stimulus.Pulse
           { v0 = 0.0; v1 = 1.0; t_delay = -0.1; t_rise = 0.1; t_high = 0.1;
             t_fall = 0.1; period = 1.0 }));
  Alcotest.check_raises "pwl before t=0"
    (Invalid_argument "Stimulus: PWL starts before t = 0") (fun () ->
      Stimulus.validate (Stimulus.Pwl [ (-1.0, 0.0); (1.0, 1.0) ]));
  (* a zero delay and a zero first PWL time stay legal *)
  Stimulus.validate
    (Stimulus.Step { v0 = 0.0; v1 = 1.0; t_delay = 0.0; t_rise = 1e-12 });
  Stimulus.validate (Stimulus.Pwl [ (0.0, 0.0); (1.0, 1.0) ])

(* ---------------- Devices ---------------- *)

let test_devices_inverter () =
  let inv =
    Devices.inverter ~r_on:100.0 ~c_in:1e-15 ~c_out:2e-15 ~vdd:1.2 ()
  in
  check_close "default vth" 0.6 inv.Devices.vth;
  Alcotest.(check bool) "low input drives high" true
    (Devices.drives_high inv ~v_in:0.2);
  Alcotest.(check bool) "high input drives low" true
    (not (Devices.drives_high inv ~v_in:1.0));
  check_close "drive value" 1.2 (Devices.output_drive inv ~v_in:0.2)

let test_devices_of_driver () =
  let inv =
    Devices.inverter_of_driver Rlc_tech.Presets.node_100nm.Rlc_tech.Node.driver
      ~k:100.0 ~vdd:1.2 ()
  in
  check_close "r_on" 75.34 inv.Devices.r_on;
  check_close "c_in" 75.8e-15 inv.Devices.c_in;
  check_close "c_out" 368e-15 inv.Devices.c_out;
  (* default transition time: the size-invariant intrinsic delay *)
  check_close "t_transition" (7534.0 *. 4.438e-15) inv.Devices.t_transition
    ~tol:1e-6

let test_devices_validation () =
  Alcotest.check_raises "vth out of range"
    (Invalid_argument "Devices.inverter: vth outside (0, vdd)") (fun () ->
      ignore
        (Devices.inverter ~r_on:1.0 ~c_in:1e-15 ~c_out:1e-15 ~vdd:1.0
           ~vth:1.5 ()))

(* ---------------- Netlist ---------------- *)

let test_netlist_nodes () =
  let nl = Netlist.create () in
  let a = Netlist.fresh_node ~name:"a" nl in
  let b = Netlist.fresh_node nl in
  Alcotest.(check int) "ground is 0" 0 Netlist.ground;
  Alcotest.(check int) "first node" 1 a;
  Alcotest.(check int) "second node" 2 b;
  Alcotest.(check int) "count" 3 (Netlist.node_count nl);
  Alcotest.(check bool) "named lookup" true (Netlist.find_node nl "a" = Some 1);
  Alcotest.(check bool) "missing" true (Netlist.find_node nl "zz" = None)

let test_netlist_elements () =
  let nl = Netlist.create () in
  let a = Netlist.fresh_node nl in
  Netlist.add_resistor ~name:"r1" nl a Netlist.ground 100.0;
  Netlist.add_capacitor nl a Netlist.ground 1e-12;
  Alcotest.(check int) "two elements" 2 (Array.length (Netlist.elements nl));
  Alcotest.(check bool) "find r1" true (Netlist.find_element nl "r1" = Some 0);
  Alcotest.(check string) "auto name" "_e1" (Netlist.element_name nl 1)

let test_netlist_validation () =
  let nl = Netlist.create () in
  let a = Netlist.fresh_node nl in
  Alcotest.check_raises "bad resistance"
    (Invalid_argument "Netlist.add_resistor: ohms <= 0") (fun () ->
      Netlist.add_resistor nl a Netlist.ground 0.0);
  (* floating node: only a capacitor to ground *)
  let b = Netlist.fresh_node nl in
  Netlist.add_resistor nl a Netlist.ground 10.0;
  Netlist.add_capacitor nl b Netlist.ground 1e-12;
  Alcotest.check_raises "floating node"
    (Invalid_argument "Netlist.validate: node 2 has no DC path to ground")
    (fun () -> Netlist.validate nl)

let test_netlist_duplicate_names () =
  let nl = Netlist.create () in
  let a = Netlist.fresh_node nl in
  Netlist.add_resistor ~name:"r" nl a Netlist.ground 1.0;
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Netlist: duplicate element name r") (fun () ->
      Netlist.add_resistor ~name:"r" nl a Netlist.ground 1.0)

(* ---------------- Dc ---------------- *)

let test_dc_divider () =
  let nl = Netlist.create () in
  let top = Netlist.fresh_node nl in
  let mid = Netlist.fresh_node nl in
  Netlist.add_vsource nl top Netlist.ground (Stimulus.Dc 10.0);
  Netlist.add_resistor nl top mid 6.0;
  Netlist.add_resistor nl mid Netlist.ground 4.0;
  let v = Dc.operating_point nl in
  check_close "top" 10.0 v.(top);
  check_close "divider" 4.0 v.(mid)

let test_dc_inductor_short () =
  (* inductor shorts in DC: only its series resistance matters *)
  let nl = Netlist.create () in
  let top = Netlist.fresh_node nl in
  let mid = Netlist.fresh_node nl in
  Netlist.add_vsource nl top Netlist.ground (Stimulus.Dc 1.0);
  Netlist.add_rl_branch nl top mid ~ohms:5.0 ~henries:1e-6;
  Netlist.add_resistor nl mid Netlist.ground 5.0;
  let v = Dc.operating_point nl in
  check_close "half" 0.5 v.(mid)

let test_dc_initial_conditions () =
  (* start a transient from the DC point: nothing should move *)
  let nl = Netlist.create () in
  let top = Netlist.fresh_node nl in
  let mid = Netlist.fresh_node nl in
  Netlist.add_vsource nl top Netlist.ground (Stimulus.Dc 10.0);
  Netlist.add_resistor nl top mid 6.0;
  Netlist.add_resistor nl mid Netlist.ground 4.0;
  Netlist.add_capacitor nl mid Netlist.ground 1e-9;
  let ics = Dc.initial_conditions nl in
  let r =
    Transient.run ~initial_voltages:ics nl ~t_end:1e-6 ~dt:1e-9
      ~probes:[ Transient.Node_v mid ]
  in
  let w = Transient.get r (Transient.Node_v mid) in
  let lo, hi = Rlc_numerics.Stats.min_max (Rlc_waveform.Waveform.values w) in
  check_close "stays at the divider" 4.0 lo ~tol:1e-6;
  check_close "no transient" 4.0 hi ~tol:1e-6

let test_dc_inverter_chain () =
  (* inverter with grounded input drives its output to vdd through r_on
     (no load current -> full rail) *)
  let nl = Netlist.create () in
  let input = Netlist.fresh_node nl in
  let output = Netlist.fresh_node nl in
  Netlist.add_resistor nl input Netlist.ground 1e6 (* keep input at 0 *);
  Netlist.add_inverter nl ~input ~output
    (Devices.inverter ~r_on:100.0 ~c_in:1e-15 ~c_out:1e-15 ~vdd:1.2 ());
  let v = Dc.operating_point nl in
  check_close "output at vdd" 1.2 v.(output)

let test_dc_system_reuse () =
  (* one factorisation serves the operating point and every
     per-source sensitivity; check both against finite differences *)
  let build v1 v2 =
    let nl = Netlist.create () in
    let a = Netlist.fresh_node nl in
    let b = Netlist.fresh_node nl in
    let mid = Netlist.fresh_node nl in
    Netlist.add_vsource nl a Netlist.ground (Stimulus.Dc v1);
    Netlist.add_vsource nl b Netlist.ground (Stimulus.Dc v2);
    Netlist.add_resistor nl a mid 2.0;
    Netlist.add_rl_branch nl b mid ~ohms:3.0 ~henries:1e-9;
    Netlist.add_resistor nl mid Netlist.ground 6.0;
    (nl, mid)
  in
  let nl, mid = build 1.0 2.0 in
  let sys = Dc.make nl in
  let v = Dc.voltages sys in
  (* superposition: v_mid = v1/(2*(1/2+1/3+1/6)) + v2/(3*(...)) *)
  check_close "operating point" (0.5 +. (2.0 /. 3.0)) v.(mid) ~tol:1e-12;
  let x = Dc.unknowns sys in
  Alcotest.(check bool) "unknowns extend voltages" true
    (Array.length x > Array.length v - 1);
  Alcotest.(check int) "two inputs" 2 (Array.length (Dc.inputs sys));
  (* sensitivities against central finite differences over fresh solves *)
  let dv = 1e-3 in
  List.iteri
    (fun input _ ->
      let s = Dc.sensitivity sys ~input in
      let at v1 v2 = (Dc.operating_point (fst (build v1 v2))).(mid) in
      let fd =
        if input = 0 then (at (1.0 +. dv) 2.0 -. at (1.0 -. dv) 2.0) /. (2.0 *. dv)
        else (at 1.0 (2.0 +. dv) -. at 1.0 (2.0 -. dv)) /. (2.0 *. dv)
      in
      check_close
        (Printf.sprintf "d v_mid / d u%d" input)
        fd s.(mid) ~tol:1e-9)
    [ (); () ];
  Alcotest.check_raises "bad input index"
    (Invalid_argument "Dc.sensitivity: input 7 out of 2") (fun () ->
      ignore (Dc.sensitivity sys ~input:7))

(* ---------------- Transient ---------------- *)

let test_transient_rc_charge () =
  let nl = Netlist.create () in
  let src = Netlist.fresh_node nl in
  let out = Netlist.fresh_node nl in
  Netlist.add_vsource nl src Netlist.ground (Stimulus.Dc 1.0);
  Netlist.add_resistor nl src out 1e3;
  Netlist.add_capacitor nl out Netlist.ground 1e-9;
  let r =
    Transient.run nl ~t_end:5e-6 ~dt:1e-9 ~probes:[ Transient.Node_v out ]
  in
  let w = Transient.get r (Transient.Node_v out) in
  List.iter
    (fun t ->
      check_close
        (Printf.sprintf "rc at %g" t)
        (1.0 -. Float.exp (-.t /. 1e-6))
        (Rlc_waveform.Waveform.value_at w t)
        ~tol:1e-4)
    [ 0.5e-6; 1e-6; 2e-6; 4e-6 ]

let test_transient_rl_current () =
  (* series RL driven by a DC source: i(t) = V/R (1 - e^{-tR/L}) *)
  let nl = Netlist.create () in
  let src = Netlist.fresh_node nl in
  Netlist.add_vsource nl src Netlist.ground (Stimulus.Dc 1.0);
  Netlist.add_rl_branch ~name:"rl" nl src Netlist.ground ~ohms:10.0
    ~henries:1e-6;
  let r =
    Transient.run nl ~t_end:1e-6 ~dt:2e-10 ~probes:[ Transient.Branch_i "rl" ]
  in
  let w = Transient.get r (Transient.Branch_i "rl") in
  List.iter
    (fun t ->
      check_close
        (Printf.sprintf "rl current at %g" t)
        (0.1 *. (1.0 -. Float.exp (-.t *. 10.0 /. 1e-6)))
        (Rlc_waveform.Waveform.value_at w t)
        ~tol:1e-3)
    [ 1e-7; 3e-7; 8e-7 ]

let test_transient_rlc_ringing () =
  (* series RLC step: overshoot matches the analytic second-order
     formula, ringing frequency matches the damped natural frequency *)
  let rr = 10.0 and ll = 1e-6 and cc = 1e-9 in
  let nl = Netlist.create () in
  let src = Netlist.fresh_node nl in
  let out = Netlist.fresh_node nl in
  Netlist.add_vsource nl src Netlist.ground (Stimulus.Dc 1.0);
  Netlist.add_rl_branch nl src out ~ohms:rr ~henries:ll;
  Netlist.add_capacitor nl out Netlist.ground cc;
  let r =
    Transient.run nl ~t_end:3e-6 ~dt:5e-11 ~probes:[ Transient.Node_v out ]
  in
  let w = Transient.get r (Transient.Node_v out) in
  let zeta = rr /. 2.0 *. Float.sqrt (cc /. ll) in
  let overshoot = Float.exp (-.Float.pi *. zeta /. Float.sqrt (1.0 -. (zeta *. zeta))) in
  check_close "peak" (1.0 +. overshoot)
    (Rlc_numerics.Stats.max (Rlc_waveform.Waveform.values w))
    ~tol:1e-3;
  (* damped period *)
  let w0 = 1.0 /. Float.sqrt (ll *. cc) in
  let wd = w0 *. Float.sqrt (1.0 -. (zeta *. zeta)) in
  (match Rlc_waveform.Measure.period ~level:1.0 w with
  | Some p -> check_close "ringing period" (2.0 *. Float.pi /. wd) p ~tol:1e-2
  | None -> Alcotest.fail "no ringing detected")

let test_transient_capacitor_conservation () =
  (* two caps sharing charge through a resistor: final voltage is the
     charge-weighted average *)
  let nl = Netlist.create () in
  let a = Netlist.fresh_node nl in
  let b = Netlist.fresh_node nl in
  Netlist.add_capacitor nl a Netlist.ground 1e-9;
  Netlist.add_capacitor nl b Netlist.ground 3e-9;
  Netlist.add_resistor nl a b 1e3;
  let r =
    Transient.run nl
      ~initial_voltages:[ (a, 2.0) ]
      ~t_end:5e-5 ~dt:1e-8
      ~probes:[ Transient.Node_v a; Transient.Node_v b ]
  in
  let v = Transient.final_voltages r in
  check_close "final a" 0.5 v.(a) ~tol:1e-3;
  check_close "final b" 0.5 v.(b) ~tol:1e-3

let test_transient_inverter_switches () =
  (* inverter driven by a slow ramp: output flips near the threshold *)
  let nl = Netlist.create () in
  let input = Netlist.fresh_node nl in
  let output = Netlist.fresh_node nl in
  Netlist.add_vsource nl input Netlist.ground
    (Stimulus.Step { v0 = 0.0; v1 = 1.2; t_delay = 1e-9; t_rise = 4e-9 });
  Netlist.add_inverter nl ~input ~output
    (Devices.inverter ~r_on:100.0 ~c_in:1e-15 ~c_out:10e-15 ~vdd:1.2
       ~t_transition:1e-12 ());
  let r =
    Transient.run nl ~t_end:10e-9 ~dt:5e-12
      ~probes:[ Transient.Node_v output ]
  in
  let w = Transient.get r (Transient.Node_v output) in
  Alcotest.(check bool) "starts high" true
    (Rlc_waveform.Waveform.value_at w 0.9e-9 > 1.1);
  Alcotest.(check bool) "ends low" true
    (Rlc_waveform.Waveform.value_at w 9e-9 < 0.1);
  (* the input crosses vth = 0.6 at t = 3 ns *)
  (match
     Rlc_waveform.Measure.first_crossing ~direction:Rlc_waveform.Measure.Falling
       w ~level:0.6
   with
  | Some t -> check_close "switch time" 3e-9 t ~tol:0.1
  | None -> Alcotest.fail "no switching edge")

let test_transient_record_every () =
  let nl = Netlist.create () in
  let a = Netlist.fresh_node nl in
  Netlist.add_vsource nl a Netlist.ground (Stimulus.Dc 1.0);
  Netlist.add_resistor nl a Netlist.ground 1.0;
  let r =
    Transient.run ~record_every:10 nl ~t_end:1e-6 ~dt:1e-9
      ~probes:[ Transient.Node_v a ]
  in
  Alcotest.(check int) "decimated samples" 101 (Array.length (Transient.time r))

let test_transient_validation () =
  let nl = Netlist.create () in
  let a = Netlist.fresh_node nl in
  Netlist.add_vsource nl a Netlist.ground (Stimulus.Dc 1.0);
  Netlist.add_resistor nl a Netlist.ground 1.0;
  Alcotest.check_raises "bad dt" (Invalid_argument "Transient.run: bad dt")
    (fun () ->
      ignore (Transient.run nl ~t_end:1.0 ~dt:2.0 ~probes:[]));
  Alcotest.check_raises "unknown probe"
    (Invalid_argument "Transient.run: unknown element zz") (fun () ->
      ignore
        (Transient.run nl ~t_end:1e-6 ~dt:1e-9
           ~probes:[ Transient.Branch_i "zz" ]))

let test_transient_be_vs_trap () =
  (* both integrators converge to the same RC answer *)
  let build () =
    let nl = Netlist.create () in
    let src = Netlist.fresh_node nl in
    let out = Netlist.fresh_node nl in
    Netlist.add_vsource nl src Netlist.ground (Stimulus.Dc 1.0);
    Netlist.add_resistor nl src out 1e3;
    Netlist.add_capacitor nl out Netlist.ground 1e-9;
    (nl, out)
  in
  let value integration =
    let nl, out = build () in
    let r =
      Transient.run ~integration nl ~t_end:2e-6 ~dt:1e-9
        ~probes:[ Transient.Node_v out ]
    in
    Rlc_waveform.Waveform.value_at (Transient.get r (Transient.Node_v out)) 1e-6
  in
  check_close "be ~ trap"
    (value Transient.Backward_euler)
    (value Transient.Trapezoidal) ~tol:1e-3

(* ---------------- Ladder ---------------- *)

let test_ladder_structure () =
  let nl = Netlist.create () in
  let a = Netlist.fresh_node nl in
  let b = Netlist.fresh_node nl in
  Ladder.make nl
    { Ladder.r = 4400.0; l = 1e-6; c = 100e-12; length = 0.01; segments = 4 }
    ~from_node:a ~to_node:b;
  (* 4 RL branches + 5 capacitors (cin + 4 shunts) *)
  Alcotest.(check int) "element count" 9 (Array.length (Netlist.elements nl));
  Alcotest.(check bool) "segment names" true
    (Netlist.find_element nl "line_seg0" <> None
    && Netlist.find_element nl "line_seg3" <> None);
  (* 3 internal joints *)
  Alcotest.(check int) "node count" 6 (Netlist.node_count nl)

let test_ladder_total_capacitance () =
  (* the shunt caps must sum exactly to c * length *)
  let nl = Netlist.create () in
  let a = Netlist.fresh_node nl in
  let b = Netlist.fresh_node nl in
  Ladder.make nl
    { Ladder.r = 4400.0; l = 1e-6; c = 100e-12; length = 0.01; segments = 7 }
    ~from_node:a ~to_node:b;
  let total =
    Array.fold_left
      (fun acc e ->
        match e with
        | Netlist.Capacitor { farads; _ } -> acc +. farads
        | _ -> acc)
      0.0 (Netlist.elements nl)
  in
  check_close "total c" (100e-12 *. 0.01) total

let test_ladder_dc_resistance () =
  (* end-to-end DC resistance equals r * length *)
  let nl = Netlist.create () in
  let a = Netlist.fresh_node nl in
  let b = Netlist.fresh_node nl in
  Netlist.add_vsource nl a Netlist.ground (Stimulus.Dc 1.0);
  Ladder.make nl
    { Ladder.r = 4400.0; l = 1e-6; c = 100e-12; length = 0.01; segments = 8 }
    ~from_node:a ~to_node:b;
  Netlist.add_resistor nl b Netlist.ground 44.0 (* matched to line R *);
  let v = Dc.operating_point nl in
  check_close "divider with wire resistance" 0.5 v.(b) ~tol:1e-9

let test_ladder_delay_convergence () =
  (* ladder 50% delay converges as segments grow: successive
     refinements approach a limit *)
  let delay segments =
    let nl = Netlist.create () in
    let src = Netlist.fresh_node nl in
    let far = Netlist.fresh_node nl in
    Netlist.add_vsource nl src Netlist.ground (Stimulus.Dc 1.0);
    let drv = Netlist.fresh_node nl in
    Netlist.add_resistor nl src drv 25.0;
    Ladder.make nl
      { Ladder.r = 4400.0; l = 1e-6; c = 123e-12; length = 0.011; segments }
      ~from_node:drv ~to_node:far;
    Netlist.add_capacitor nl far Netlist.ground 4e-13;
    let r =
      Transient.run nl ~t_end:1.2e-9 ~dt:2e-13
        ~probes:[ Transient.Node_v far ]
    in
    match
      Rlc_waveform.Measure.threshold_delay
        (Transient.get r (Transient.Node_v far))
        ~fraction:0.5 ~v_final:1.0
    with
    | Some d -> d
    | None -> Alcotest.fail "no crossing"
  in
  let d5 = delay 5 and d10 = delay 10 and d20 = delay 20 in
  Alcotest.(check bool) "refinement shrinks change" true
    (Float.abs (d20 -. d10) < Float.abs (d10 -. d5));
  Alcotest.(check bool) "within 5% at 10 vs 20 segments" true
    (Float.abs (d20 -. d10) < 0.05 *. d20)

let test_ladder_validation () =
  let nl = Netlist.create () in
  let a = Netlist.fresh_node nl in
  let b = Netlist.fresh_node nl in
  Alcotest.check_raises "segments" (Invalid_argument "Ladder.make: segments < 1")
    (fun () ->
      Ladder.make nl
        { Ladder.r = 1.0; l = 0.0; c = 1e-12; length = 1.0; segments = 0 }
        ~from_node:a ~to_node:b)

(* ---------------- Adaptive transient ---------------- *)

let build_ringer () =
  let nl = Netlist.create () in
  let a = Netlist.fresh_node nl in
  let b = Netlist.fresh_node nl in
  Netlist.add_vsource nl a Netlist.ground (Stimulus.Dc 1.0);
  Netlist.add_rl_branch nl a b ~ohms:10.0 ~henries:1e-6;
  Netlist.add_capacitor nl b Netlist.ground 1e-9;
  (nl, b)

let test_adaptive_matches_fixed () =
  let nl, b = build_ringer () in
  let fixed =
    Transient.run nl ~t_end:3e-6 ~dt:5e-11 ~probes:[ Transient.Node_v b ]
  in
  let nl2, b2 = build_ringer () in
  let adaptive =
    Transient.run_adaptive ~rtol:1e-4 nl2 ~t_end:3e-6 ~dt_max:2e-7
      ~probes:[ Transient.Node_v b2 ]
  in
  let wf = Transient.get fixed (Transient.Node_v b) in
  let wa = Transient.get adaptive (Transient.Node_v b2) in
  List.iter
    (fun t ->
      check_close
        (Printf.sprintf "agree at %g" t)
        (Rlc_waveform.Waveform.value_at wf t)
        (Rlc_waveform.Waveform.value_at wa t)
        ~tol:2e-3)
    [ 2e-7; 5e-7; 1e-6; 2.5e-6 ];
  Alcotest.(check bool) "far fewer steps" true
    (Transient.steps_taken adaptive < Transient.steps_taken fixed / 20)

let test_adaptive_peak_accuracy () =
  let nl, b = build_ringer () in
  let r =
    Transient.run_adaptive ~rtol:1e-4 nl ~t_end:3e-6 ~dt_max:2e-7
      ~probes:[ Transient.Node_v b ]
  in
  let w = Transient.get r (Transient.Node_v b) in
  let zeta = 10.0 /. 2.0 *. Float.sqrt (1e-9 /. 1e-6) in
  let exact_peak =
    1.0 +. Float.exp (-.Float.pi *. zeta /. Float.sqrt (1.0 -. (zeta *. zeta)))
  in
  check_close "peak" exact_peak
    (Rlc_numerics.Stats.max (Rlc_waveform.Waveform.values w))
    ~tol:2e-3

let test_adaptive_refines_on_edges () =
  (* an inverter switching mid-simulation forces error-control
     rollbacks (the step must shrink at the edge) *)
  let nl = Netlist.create () in
  let input = Netlist.fresh_node nl in
  let output = Netlist.fresh_node nl in
  Netlist.add_vsource nl input Netlist.ground
    (Stimulus.Step { v0 = 0.0; v1 = 1.2; t_delay = 4e-9; t_rise = 0.5e-9 });
  Netlist.add_inverter nl ~input ~output
    (Devices.inverter ~r_on:100.0 ~c_in:1e-15 ~c_out:50e-15 ~vdd:1.2
       ~t_transition:50e-12 ());
  let r =
    Transient.run_adaptive nl ~t_end:10e-9 ~dt_max:1e-9
      ~probes:[ Transient.Node_v output ]
  in
  Alcotest.(check bool) "edges cause rejections" true
    (Transient.rejected_steps r > 0);
  let w = Transient.get r (Transient.Node_v output) in
  Alcotest.(check bool) "output switched" true
    (Rlc_waveform.Waveform.value_at w 9.5e-9 < 0.1
    && Rlc_waveform.Waveform.value_at w 3e-9 > 1.1)

let test_adaptive_validation () =
  let nl, b = build_ringer () in
  ignore b;
  Alcotest.check_raises "bad tolerances"
    (Invalid_argument "Transient.run_adaptive: tolerances must be positive")
    (fun () ->
      ignore
        (Transient.run_adaptive ~rtol:0.0 nl ~t_end:1e-6 ~dt_max:1e-8
           ~probes:[]))

(* ---------------- solver backends & engine regressions ---------------- *)

let rlc_ladder_spec segments =
  { Ladder.r = 4400.0; l = 1.5e-6; c = 123.33e-12; length = 0.011; segments }

let test_banded_dense_agree_on_ladder () =
  (* the tentpole cross-check: identical trajectories from the dense
     and banded factorisations, to near machine precision *)
  let nl, _src, far = Ladder.driven_line (rlc_ladder_spec 40) in
  let run backend =
    Transient.run ~backend nl ~t_end:1.2e-9 ~dt:4e-13
      ~probes:[ Transient.Node_v far; Ladder.input_current_probe () ]
  in
  let rd = run Transient.Dense and rb = run Transient.Banded in
  let vd = Transient.final_voltages rd and vb = Transient.final_voltages rb in
  Array.iteri
    (fun node v ->
      check_close (Printf.sprintf "node %d" node) v vb.(node) ~tol:1e-12)
    vd;
  let wd = Transient.get rd (Ladder.input_current_probe ()) in
  let wb = Transient.get rb (Ladder.input_current_probe ()) in
  List.iter
    (fun t ->
      check_close
        (Printf.sprintf "input current at %g" t)
        (Rlc_waveform.Waveform.value_at wd t)
        (Rlc_waveform.Waveform.value_at wb t)
        ~tol:1e-12)
    [ 1e-10; 4e-10; 9e-10 ]

let test_banded_dense_agree_auto_backend () =
  (* Auto must pick the banded kernel on a long ladder and still match
     the forced-dense run; the far node of driven_line is numbered
     before the joints, so this also covers the RCM reordering *)
  let nl, _src, far = Ladder.driven_line (rlc_ladder_spec 64) in
  let run backend =
    Transient.run ~backend nl ~t_end:1e-9 ~dt:1e-12
      ~probes:[ Transient.Node_v far ]
  in
  let ra = run Transient.Auto and rd = run Transient.Dense in
  let wa = Transient.get ra (Transient.Node_v far) in
  let wd = Transient.get rd (Transient.Node_v far) in
  List.iter
    (fun t ->
      check_close
        (Printf.sprintf "far voltage at %g" t)
        (Rlc_waveform.Waveform.value_at wd t)
        (Rlc_waveform.Waveform.value_at wa t)
        ~tol:1e-12)
    [ 2e-10; 5e-10; 9e-10 ]

let test_banded_dense_agree_coupled () =
  (* coupled RL pairs stamp cross terms; the permuted banded assembly
     must reproduce them exactly *)
  let nl = Netlist.create () in
  let a1 = Netlist.fresh_node nl and a2 = Netlist.fresh_node nl in
  let b1 = Netlist.fresh_node nl and b2 = Netlist.fresh_node nl in
  Netlist.add_vsource nl a1 Netlist.ground (Stimulus.Dc 1.0);
  Netlist.add_resistor nl a2 Netlist.ground 50.0;
  Netlist.add_resistor nl b1 Netlist.ground 50.0;
  Netlist.add_resistor nl b2 Netlist.ground 50.0;
  Ladder.make_coupled nl
    {
      Ladder.r = 1000.0;
      l_self = 1e-6;
      l_mutual = 0.4e-6;
      c_ground = 100e-12;
      c_coupling = 30e-12;
      length = 0.01;
      segments = 12;
    }
    ~from1:a1 ~to1:b1 ~from2:a2 ~to2:b2;
  let run backend =
    Transient.run ~backend nl ~t_end:2e-9 ~dt:2e-12
      ~probes:[ Transient.Branch_i "pair_seg5#1"; Transient.Branch_i "pair_seg5#2" ]
  in
  let rd = run Transient.Dense and rb = run Transient.Banded in
  List.iter
    (fun probe ->
      let wd = Transient.get rd probe and wb = Transient.get rb probe in
      List.iter
        (fun t ->
          check_close "coupled branch current"
            (Rlc_waveform.Waveform.value_at wd t)
            (Rlc_waveform.Waveform.value_at wb t)
            ~tol:1e-12)
        [ 5e-10; 1.5e-9 ])
    [ Transient.Branch_i "pair_seg5#1"; Transient.Branch_i "pair_seg5#2" ]

let test_vsource_probe_current () =
  (* regression: I(V1) used to silently read 0; the MNA solution holds
     the true source current, -V/R in a series V-R loop *)
  let nl = Netlist.create () in
  let a = Netlist.fresh_node nl in
  Netlist.add_vsource ~name:"V1" nl a Netlist.ground (Stimulus.Dc 1.0);
  Netlist.add_resistor ~name:"R1" nl a Netlist.ground 2.0;
  let r =
    Transient.run nl ~t_end:1e-6 ~dt:1e-9
      ~probes:[ Transient.Branch_i "V1"; Transient.Branch_i "R1" ]
  in
  let wv = Transient.get r (Transient.Branch_i "V1") in
  let wr = Transient.get r (Transient.Branch_i "R1") in
  check_close "I(V1) = -V/R" (-0.5)
    (Rlc_waveform.Waveform.value_at wv 0.5e-6);
  check_close "I(R1) = V/R" 0.5 (Rlc_waveform.Waveform.value_at wr 0.5e-6);
  (* KCL at the node: the source supplies exactly the resistor draw *)
  check_close "KCL" 0.0
    (Rlc_waveform.Waveform.value_at wv 0.9e-6
    +. Rlc_waveform.Waveform.value_at wr 0.9e-6)

let test_fixed_step_factorization_count () =
  (* regression for the LU-cache key: a fixed-step trapezoidal run
     factorises exactly twice (backward-Euler first step + the rest);
     a backward-Euler run exactly once *)
  let nl, b = build_ringer () in
  ignore b;
  let r = Transient.run nl ~t_end:1e-6 ~dt:1e-9 ~probes:[] in
  Alcotest.(check int) "trapezoidal run" 2 (Transient.lu_factorizations r);
  let r_be =
    Transient.run ~integration:Transient.Backward_euler nl ~t_end:1e-6
      ~dt:1e-9 ~probes:[]
  in
  Alcotest.(check int) "backward-euler run" 1 (Transient.lu_factorizations r_be)

let test_adaptive_two_dt_levels_reuse_cache () =
  (* regression for the (meth, dt)-keyed cache and the dt_max/2^k
     quantization: an adaptive run visits several dt levels (awkward
     t_end forces a final off-grid partial step) yet builds only a
     handful of factorisations, and still matches the fixed-step
     trajectory *)
  let nl, b = build_ringer () in
  let fixed =
    Transient.run nl ~t_end:2.83e-6 ~dt:5e-11 ~probes:[ Transient.Node_v b ]
  in
  let nl2, b2 = build_ringer () in
  let adaptive =
    Transient.run_adaptive ~rtol:1e-4 nl2 ~t_end:2.83e-6 ~dt_max:3e-7
      ~probes:[ Transient.Node_v b2 ]
  in
  let wf = Transient.get fixed (Transient.Node_v b) in
  let wa = Transient.get adaptive (Transient.Node_v b2) in
  List.iter
    (fun t ->
      check_close
        (Printf.sprintf "agree at %g" t)
        (Rlc_waveform.Waveform.value_at wf t)
        (Rlc_waveform.Waveform.value_at wa t)
        ~tol:2e-3)
    [ 2e-7; 9e-7; 2.5e-6 ];
  (* every dt is dt_max/2^k with k <= k_max = log2(4096), each level
     costing at most one BE and one trapezoidal factorisation (plus
     half-step and final-partial entries) — the count is bounded by
     the level grid, not by the step count *)
  let n_factor = Transient.lu_factorizations adaptive in
  Alcotest.(check bool)
    (Printf.sprintf "bounded factorisations (%d)" n_factor)
    true (n_factor <= (2 * (12 + 2)) + 4);
  Alcotest.(check bool) "cache reused across steps" true
    (Transient.steps_taken adaptive >= 5 * n_factor)

let test_nonconvergence_counter () =
  (* regression for the nonconvergence commit: when the inverter fixed
     point runs out of iterations the engine must keep the
     (solution, trial) pair consistent and report it *)
  let build () =
    let nl = Netlist.create () in
    let input = Netlist.fresh_node nl in
    let output = Netlist.fresh_node nl in
    Netlist.add_vsource nl input Netlist.ground
      (Stimulus.Step { v0 = 0.0; v1 = 1.2; t_delay = 2e-9; t_rise = 0.5e-9 });
    Netlist.add_inverter nl ~input ~output
      (Devices.inverter ~r_on:100.0 ~c_in:1e-15 ~c_out:50e-15 ~vdd:1.2
         ~t_transition:50e-12 ());
    (nl, output)
  in
  let nl, output = build () in
  let starved =
    Transient.run ~max_state_iterations:1 nl ~t_end:6e-9 ~dt:5e-12
      ~probes:[ Transient.Node_v output ]
  in
  Alcotest.(check bool) "starved iteration is reported" true
    (Transient.nonconverged_steps starved > 0);
  (* the committed state stays physical: inverter output in rails *)
  Array.iter
    (fun v ->
      Alcotest.(check bool) "within rails" true (v >= -0.05 && v <= 1.25))
    (Transient.final_voltages starved);
  let nl2, output2 = build () in
  let healthy =
    Transient.run nl2 ~t_end:6e-9 ~dt:5e-12
      ~probes:[ Transient.Node_v output2 ]
  in
  Alcotest.(check int) "default budget converges" 0
    (Transient.nonconverged_steps healthy);
  let w = Transient.get healthy (Transient.Node_v output2) in
  Alcotest.(check bool) "output switched low" true
    (Rlc_waveform.Waveform.value_at w 5.5e-9 < 0.1)

(* ---------------- Parser ---------------- *)

let test_parser_values () =
  List.iter
    (fun (s, expect) ->
      check_close ("value " ^ s) expect (Parser.parse_value s))
    [
      ("4.4k", 4.4e3); ("100p", 1e-10); ("2.5pF", 2.5e-12); ("1meg", 1e6);
      ("1e-9", 1e-9); ("3mV", 3e-3); ("42", 42.0); ("1.5u", 1.5e-6);
      ("-0.6", -0.6); ("2n", 2e-9);
    ];
  List.iter
    (fun s ->
      match Parser.parse_value s with
      | exception Failure _ -> ()
      | v -> Alcotest.failf "expected failure for %S, got %g" s v)
    [ ""; "abc"; "1x" ]

let sample_deck = {|simple divider
* comment line
V1 in 0 DC 10
R1 in mid 6
R2 mid 0 4
C1 mid 0 1u
.tran 1u 10m
.probe v(mid) i(R1)
.end|}

let test_parser_deck_structure () =
  let deck = Parser.parse_string sample_deck in
  Alcotest.(check (option string)) "title" (Some "simple divider")
    deck.Parser.title;
  Alcotest.(check bool) "tran parsed" true
    (deck.Parser.tran = Some (1e-6, 1e-2));
  Alcotest.(check int) "probes" 2 (List.length deck.Parser.probes);
  Alcotest.(check int) "elements" 4
    (Array.length (Netlist.elements deck.Parser.netlist));
  Alcotest.(check bool) "node lookup" true
    (Parser.node_of_name deck "mid" <> None);
  Alcotest.(check bool) "ground lookup" true
    (Parser.node_of_name deck "0" = Some Netlist.ground);
  (match Parser.node_of_name deck "mid" with
  | Some n ->
      Alcotest.(check (option string)) "reverse lookup" (Some "mid")
        (Parser.name_of_node deck n)
  | None -> Alcotest.fail "mid must exist")

let test_parser_run_divider () =
  let deck = Parser.parse_string sample_deck in
  let r = Parser.run deck in
  match Parser.node_of_name deck "mid" with
  | Some n ->
      let w = Transient.get r (Transient.Node_v n) in
      (* RC settles to the 4/10 divider *)
      check_close "divider value" 4.0
        (Rlc_waveform.Waveform.value_at w 9e-3)
        ~tol:1e-3
  | None -> Alcotest.fail "mid node"

let test_parser_line_and_inverter_cards () =
  let text = {|W1 a b r=4.4k l=1.5u c=123p len=10m seg=4
V1 a 0 PULSE(0 1.2 0 10p 10p 1n 2n)
X1 b out INV r_on=15 c_in=400f c_out=2p vdd=1.2 ttr=30p
C1 out 0 10f
.tran 1p 4n
.probe v(out)|}
  in
  let deck = Parser.parse_string text in
  Alcotest.(check (option string)) "no title" None deck.Parser.title;
  (* W expands to 4 RL branches + 5 caps; plus V, X, C *)
  Alcotest.(check int) "elements" 12
    (Array.length (Netlist.elements deck.Parser.netlist));
  let r = Parser.run deck in
  let w =
    Transient.get r
      (Transient.Node_v (Option.get (Parser.node_of_name deck "out")))
  in
  (* the inverter must produce full-swing activity *)
  let lo, hi = Rlc_numerics.Stats.min_max (Rlc_waveform.Waveform.values w) in
  Alcotest.(check bool) "output toggles" true (lo < 0.2 && hi > 1.0)

let test_parser_coupled_card () =
  let text = {|P1 a1 b1 a2 b2 r=10 l=2n m=1n
V1 a1 0 DC 1
Rt a2 0 50
Ru b1 0 50
Rv b2 0 50
.tran 10p 10n
.probe i(P1#1) i(P1#2)|}
  in
  let deck = Parser.parse_string text in
  let r = Parser.run deck in
  let i1 = Transient.get r (Transient.Branch_i "P1#1") in
  let i2 = Transient.get r (Transient.Branch_i "P1#2") in
  (* steady state: branch 1 carries 1V/(10+50) ohms; branch 2 idles *)
  check_close "driven branch current" (1.0 /. 60.0)
    (Rlc_waveform.Waveform.value_at i1 9e-9)
    ~tol:1e-3;
  Alcotest.(check bool) "victim branch settles to ~0" true
    (Float.abs (Rlc_waveform.Waveform.value_at i2 9e-9) < 1e-6)

let test_parser_errors () =
  let check_error text expected_line =
    match Parser.parse_string text with
    | exception Parser.Parse_error (line, _) ->
        Alcotest.(check int) "error line" expected_line line
    | _ -> Alcotest.fail "expected a parse error"
  in
  check_error "R1 a 0\n" 1;
  check_error "* ok\nQ1 a b c 1k\n" 2;
  check_error "V1 a 0 DC 1\n.tran 1\n" 2;
  check_error "W1 a b r=1 c=1 len=1\n" 1 (* missing l= *)

let test_parser_run_requires_tran () =
  let deck = Parser.parse_string "R1 a 0 1k\nV1 a 0 DC 1\n.probe v(a)\n" in
  Alcotest.check_raises "no tran"
    (Invalid_argument "Parser.run: deck has no .tran card") (fun () ->
      ignore (Parser.run deck))

let test_parser_ac_card () =
  let deck =
    Parser.parse_string
      "V1 in 0 DC 1\nR1 in out 1k\nC1 out 0 1p\n.ac dec 10 1meg 1g\n.probe \
       v(out)\n"
  in
  (match deck.Parser.ac with
  | Some spec ->
      Alcotest.(check int) "points per decade" 10 spec.Parser.points_per_decade;
      check_close "fstart" 1e6 spec.Parser.fstart;
      check_close "fstop" 1e9 spec.Parser.fstop
  | None -> Alcotest.fail ".ac card must populate deck.ac");
  (* the sweep request feeds Ac.decade_grid directly *)
  let grid =
    Ac.decade_grid
      ~points_per_decade:(Option.get deck.Parser.ac).Parser.points_per_decade
      ~fstart:(Option.get deck.Parser.ac).Parser.fstart
      ~fstop:(Option.get deck.Parser.ac).Parser.fstop
  in
  Alcotest.(check int) "grid size" 31 (Array.length grid);
  (* malformed cards *)
  List.iter
    (fun text ->
      match Parser.parse_string text with
      | exception Parser.Parse_error _ -> ()
      | _ -> Alcotest.failf "expected a parse error for %S" text)
    [
      ".ac lin 10 1e6 1e9\n";
      ".ac dec 0 1e6 1e9\n";
      ".ac dec 10 0 1e9\n";
      ".ac dec 10 1e9 1e6\n";
      ".ac dec 10 1e6\n";
    ]

(* ---------------- Writer ---------------- *)

let build_mixed_netlist () =
  let nl = Netlist.create () in
  let a = Netlist.fresh_node nl and b = Netlist.fresh_node nl in
  let c = Netlist.fresh_node nl and d = Netlist.fresh_node nl in
  Netlist.add_vsource ~name:"Vin" nl a Netlist.ground
    (Stimulus.Pulse
       { v0 = 0.0; v1 = 1.2; t_delay = 1e-10; t_rise = 1e-11; t_high = 1e-9;
         t_fall = 2e-11; period = 3e-9 });
  Netlist.add_resistor ~name:"Rdrv" nl a b 25.0;
  Netlist.add_rl_branch ~name:"line_seg0" nl b c ~ohms:48.0 ~henries:1.6e-8;
  Netlist.add_capacitor nl c Netlist.ground 1e-12;
  Netlist.add_coupled_rl ~name:"Pxy" nl ~a1:b ~b1:c ~a2:a ~b2:d ~ohms:10.0
    ~henries:2e-9 ~mutual:0.5e-9;
  Netlist.add_isource ~name:"Ibias" nl d Netlist.ground (Stimulus.Dc 1e-6);
  Netlist.add_inverter ~name:"Xrx" nl ~input:c ~output:d
    (Devices.inverter ~r_on:15.0 ~c_in:4e-13 ~c_out:2e-12 ~vdd:1.2
       ~t_transition:3e-11 ());
  nl

let test_writer_roundtrip_structure () =
  let nl = build_mixed_netlist () in
  let text = Writer.netlist_to_string ~title:"roundtrip" nl in
  let deck = Parser.parse_string text in
  Alcotest.(check bool) "elements preserved" true
    (Netlist.elements nl = Netlist.elements deck.Parser.netlist)

let test_writer_fixed_point () =
  let nl = build_mixed_netlist () in
  let text1 = Writer.netlist_to_string nl in
  let deck1 = Parser.parse_string text1 in
  let text2 = Writer.netlist_to_string deck1.Parser.netlist in
  let deck2 = Parser.parse_string text2 in
  Alcotest.(check string) "emission is a fixed point" text2
    (Writer.netlist_to_string deck2.Parser.netlist)

let test_writer_stimulus_strings () =
  Alcotest.(check string) "dc" "DC 3.3"
    (Writer.stimulus_to_string (Stimulus.Dc 3.3));
  Alcotest.(check string) "pwl" "PWL(0 0 1e-09 1.2)"
    (Writer.stimulus_to_string (Stimulus.Pwl [ (0.0, 0.0); (1e-9, 1.2) ]));
  (* a Step becomes an equivalent PWL *)
  let step =
    Stimulus.Step { v0 = 0.0; v1 = 1.0; t_delay = 1e-9; t_rise = 1e-9 }
  in
  let emitted = Writer.stimulus_to_string step in
  let reparsed =
    Parser.parse_string
      (Printf.sprintf "V1 a 0 %s\nR1 a 0 1k\n" emitted)
  in
  (match (Netlist.elements reparsed.Parser.netlist).(0) with
  | Netlist.Vsource { stim; _ } ->
      List.iter
        (fun t ->
          check_close
            (Printf.sprintf "step ~ pwl at %g" t)
            (Stimulus.eval step t) (Stimulus.eval stim t))
        [ 0.0; 1.5e-9; 3e-9 ]
  | _ -> Alcotest.fail "expected a source")

let test_parser_b_card () =
  let deck = Parser.parse_string "B1 a 0 r=10 l=2n\nV1 a 0 DC 1\n" in
  match (Netlist.elements deck.Parser.netlist).(0) with
  | Netlist.Rl_branch { ohms; henries; _ } ->
      check_close "r" 10.0 ohms;
      check_close "l" 2e-9 henries
  | _ -> Alcotest.fail "expected an RL branch"

let () =
  Alcotest.run "rlc_circuit"
    [
      ( "stimulus",
        [
          Alcotest.test_case "dc" `Quick test_stimulus_dc;
          Alcotest.test_case "step" `Quick test_stimulus_step;
          Alcotest.test_case "pulse" `Quick test_stimulus_pulse;
          Alcotest.test_case "pwl" `Quick test_stimulus_pwl;
          Alcotest.test_case "square wave" `Quick test_stimulus_square_wave;
          Alcotest.test_case "validation" `Quick test_stimulus_validation;
        ] );
      ( "devices",
        [
          Alcotest.test_case "inverter logic" `Quick test_devices_inverter;
          Alcotest.test_case "of_driver" `Quick test_devices_of_driver;
          Alcotest.test_case "validation" `Quick test_devices_validation;
        ] );
      ( "netlist",
        [
          Alcotest.test_case "nodes" `Quick test_netlist_nodes;
          Alcotest.test_case "elements" `Quick test_netlist_elements;
          Alcotest.test_case "validation" `Quick test_netlist_validation;
          Alcotest.test_case "duplicate names" `Quick
            test_netlist_duplicate_names;
        ] );
      ( "dc",
        [
          Alcotest.test_case "divider" `Quick test_dc_divider;
          Alcotest.test_case "inductor short" `Quick test_dc_inductor_short;
          Alcotest.test_case "initial conditions" `Quick
            test_dc_initial_conditions;
          Alcotest.test_case "inverter" `Quick test_dc_inverter_chain;
          Alcotest.test_case "factored system & sensitivity" `Quick
            test_dc_system_reuse;
        ] );
      ( "transient",
        [
          Alcotest.test_case "rc charge" `Quick test_transient_rc_charge;
          Alcotest.test_case "rl current" `Quick test_transient_rl_current;
          Alcotest.test_case "rlc ringing" `Quick test_transient_rlc_ringing;
          Alcotest.test_case "charge sharing" `Quick
            test_transient_capacitor_conservation;
          Alcotest.test_case "inverter switching" `Quick
            test_transient_inverter_switches;
          Alcotest.test_case "record decimation" `Quick
            test_transient_record_every;
          Alcotest.test_case "validation" `Quick test_transient_validation;
          Alcotest.test_case "be vs trapezoidal" `Quick
            test_transient_be_vs_trap;
        ] );
      ( "ladder",
        [
          Alcotest.test_case "structure" `Quick test_ladder_structure;
          Alcotest.test_case "total capacitance" `Quick
            test_ladder_total_capacitance;
          Alcotest.test_case "dc resistance" `Quick test_ladder_dc_resistance;
          Alcotest.test_case "delay convergence" `Slow
            test_ladder_delay_convergence;
          Alcotest.test_case "validation" `Quick test_ladder_validation;
        ] );
      ( "adaptive",
        [
          Alcotest.test_case "matches fixed step" `Quick
            test_adaptive_matches_fixed;
          Alcotest.test_case "peak accuracy" `Quick
            test_adaptive_peak_accuracy;
          Alcotest.test_case "refines on switching edges" `Quick
            test_adaptive_refines_on_edges;
          Alcotest.test_case "validation" `Quick test_adaptive_validation;
        ] );
      ( "solver-backends",
        [
          Alcotest.test_case "banded = dense on rlc ladder" `Quick
            test_banded_dense_agree_on_ladder;
          Alcotest.test_case "auto picks banded on long ladder" `Quick
            test_banded_dense_agree_auto_backend;
          Alcotest.test_case "banded = dense on coupled pair" `Quick
            test_banded_dense_agree_coupled;
        ] );
      ( "engine-regressions",
        [
          Alcotest.test_case "vsource probe current" `Quick
            test_vsource_probe_current;
          Alcotest.test_case "fixed-step factorisation count" `Quick
            test_fixed_step_factorization_count;
          Alcotest.test_case "adaptive dt quantization bounds cache" `Quick
            test_adaptive_two_dt_levels_reuse_cache;
          Alcotest.test_case "nonconvergence is counted & consistent" `Quick
            test_nonconvergence_counter;
        ] );
      ( "parser",
        [
          Alcotest.test_case "value suffixes" `Quick test_parser_values;
          Alcotest.test_case "deck structure" `Quick
            test_parser_deck_structure;
          Alcotest.test_case "runs a divider" `Quick test_parser_run_divider;
          Alcotest.test_case "line & inverter cards" `Quick
            test_parser_line_and_inverter_cards;
          Alcotest.test_case "coupled card" `Quick test_parser_coupled_card;
          Alcotest.test_case "error reporting" `Quick test_parser_errors;
          Alcotest.test_case "run requires .tran" `Quick
            test_parser_run_requires_tran;
          Alcotest.test_case ".ac card" `Quick test_parser_ac_card;
          Alcotest.test_case "B card" `Quick test_parser_b_card;
        ] );
      ( "writer",
        [
          Alcotest.test_case "round-trip structure" `Quick
            test_writer_roundtrip_structure;
          Alcotest.test_case "fixed point" `Quick test_writer_fixed_point;
          Alcotest.test_case "stimulus emission" `Quick
            test_writer_stimulus_strings;
        ] );
    ]
