(* Tests for the beyond-the-paper extension modules: third-order model,
   power-aware sizing, integer insertion, coupled lines (analytic and
   transient), variation analysis, wire sizing and the square-wave
   chain. *)

let check_close ?(tol = 1e-9) msg expected actual =
  if
    Float.abs (expected -. actual)
    > tol *. (1.0 +. Float.max (Float.abs expected) (Float.abs actual))
  then
    Alcotest.failf "%s: expected %.15g, got %.15g" msg expected actual

open Rlc_core

let node100 = Rlc_tech.Presets.node_100nm
let node250 = Rlc_tech.Presets.node_250nm

let mk_stage ?(node = node100) ?(l = 1.5e-6) ?(h = 0.012) ?(k = 300.0) () =
  Stage.of_node node ~l ~h ~k

(* ---------------- Third_order ---------------- *)

let test_third_order_agrees_with_pade () =
  let stage = mk_stage () in
  let c2 = Pade.coeffs stage in
  let c3 = Third_order.coeffs stage in
  check_close "b1" c2.Pade.b1 c3.Third_order.b1;
  check_close "b2" c2.Pade.b2 c3.Third_order.b2;
  Alcotest.(check bool) "b3 > 0" true (c3.Third_order.b3 > 0.0)

let test_third_order_taylor () =
  (* H(s) (1 + b1 s + b2 s^2 + b3 s^3) = 1 + O(s^4): the residual at
     s = 1e8 must shrink ~16x when s is halved *)
  let stage = mk_stage () in
  let c3 = Third_order.coeffs stage in
  let residual s_mag =
    let s = Rlc_numerics.Cx.of_float s_mag in
    let open Rlc_numerics.Cx in
    let denom =
      of_float 1.0
      +: scale c3.Third_order.b1 s
      +: scale c3.Third_order.b2 (s *: s)
      +: scale c3.Third_order.b3 (s *: s *: s)
    in
    norm ((Transfer.eval stage s *: denom) -: of_float 1.0)
  in
  let r1 = residual 1e8 and r2 = residual 5e7 in
  Alcotest.(check bool)
    (Printf.sprintf "O(s^4) scaling: %g -> %g" r1 r2)
    true
    (r1 /. r2 > 12.0 && r1 /. r2 < 20.0)

let test_third_order_step_response () =
  let c3 = Third_order.coeffs (mk_stage ()) in
  check_close "v(0) = 0" 0.0 (Third_order.step_eval c3 0.0);
  check_close "v(inf) = 1" 1.0
    (Third_order.step_eval c3 (50.0 *. c3.Third_order.b1))
    ~tol:1e-5

let test_third_order_delay_between_pade_and_exact () =
  (* at moderate-to-high inductance the 3rd-order delay must be closer
     to the exact distributed answer than the 2nd-order one *)
  List.iter
    (fun l ->
      let stage = Rc_opt.stage node100 ~l in
      let tau2 = Delay.of_stage stage in
      let tau3 = Third_order.delay_stage stage in
      let residual t =
        Rlc_numerics.Laplace.step_response
          (fun s -> Transfer.eval stage s)
          t
        -. 0.5
      in
      let lo, hi =
        Rlc_numerics.Roots.bracket_first residual ~t0:1e-13 ~dt:(tau2 /. 24.0)
      in
      let exact = Rlc_numerics.Roots.brent residual lo hi in
      Alcotest.(check bool)
        (Printf.sprintf "3rd order beats 2nd at l=%g" l)
        true
        (Float.abs (tau3 -. exact) < Float.abs (tau2 -. exact)))
    [ 2e-6; 4e-6 ]

let test_third_order_solves_equation () =
  let c3 = Third_order.coeffs (mk_stage ()) in
  let tau = Third_order.delay c3 in
  check_close "v(tau) = 0.5" 0.5 (Third_order.step_eval c3 tau) ~tol:1e-8

(* ---------------- Power ---------------- *)

let test_power_components () =
  let h = 0.012 and k = 300.0 in
  let dyn = Power.dynamic_per_length node100 ~h ~k in
  let leak = Power.leakage_per_length node100 ~h ~k in
  Alcotest.(check bool) "dynamic positive" true (dyn > 0.0);
  Alcotest.(check bool) "dynamic dominates leakage" true (dyn > 10.0 *. leak);
  check_close "total" (dyn +. leak) (Power.per_length node100 ~h ~k)

let test_power_monotonicity () =
  let p h k = Power.per_length node100 ~h ~k in
  Alcotest.(check bool) "more repeaters = more power" true
    (p 0.006 300.0 > p 0.012 300.0);
  Alcotest.(check bool) "bigger repeaters = more power" true
    (p 0.012 600.0 > p 0.012 300.0)

let test_power_lambda_zero_is_delay_optimum () =
  let l = 1.5e-6 in
  let r = Power.optimize_weighted node100 ~l ~lambda:0.0 in
  let opt = Rlc_opt.optimize node100 ~l in
  check_close "same delay" opt.Rlc_opt.delay_per_length r.Power.delay_per_length
    ~tol:1e-4

let test_power_pareto_tradeoff () =
  let l = 1.5e-6 in
  let front = Power.pareto ~lambdas:[ 0.0; 0.5; 1.0 ] node100 ~l in
  match front with
  | [ a; b; c ] ->
      Alcotest.(check bool) "delay increases along the front" true
        (a.Power.delay_per_length <= b.Power.delay_per_length
        && b.Power.delay_per_length <= c.Power.delay_per_length);
      Alcotest.(check bool) "power decreases along the front" true
        (a.Power.power_per_length >= b.Power.power_per_length
        && b.Power.power_per_length >= c.Power.power_per_length);
      Alcotest.(check bool) "worthwhile trade" true
        (c.Power.power_saving > 0.15 && c.Power.delay_penalty < 1.2)
  | _ -> Alcotest.fail "expected three points"

(* ---------------- Insertion ---------------- *)

let test_insertion_long_net_matches_continuous () =
  let l = 1.5e-6 in
  let p = Insertion.plan node100 ~l ~length:0.2 in
  Alcotest.(check bool) "many repeaters" true (p.Insertion.segments >= 10);
  Alcotest.(check bool) "tiny quantization penalty" true
    (p.Insertion.quantization_penalty < 0.005)

let test_insertion_short_net () =
  let l = 1.5e-6 in
  let p = Insertion.plan node100 ~l ~length:0.004 in
  Alcotest.(check int) "single segment" 1 p.Insertion.segments;
  check_close "h = net length" 0.004 p.Insertion.h;
  Alcotest.(check bool) "bound is a lower bound" true
    (p.Insertion.total_delay >= p.Insertion.continuous_bound)

let test_insertion_k_reoptimized () =
  (* with the segment pinned short, the best k differs from the
     unconstrained optimum *)
  let l = 1.5e-6 in
  let k_short = Insertion.optimal_k_for_h node100 ~l ~h:0.004 in
  let unconstrained = Rlc_opt.optimize node100 ~l in
  Alcotest.(check bool) "k adapts to short segment" true
    (k_short < unconstrained.Rlc_opt.k)

let test_insertion_validation () =
  Alcotest.check_raises "bad length"
    (Invalid_argument "Insertion.plan: length <= 0") (fun () ->
      ignore (Insertion.plan node100 ~l:0.0 ~length:0.0))

(* ---------------- Coupled (analytic) ---------------- *)

let pair ?(l_self = 1.5e-6) () =
  Coupled.of_geometry node100.Rlc_tech.Node.geometry ~l_self ~length:0.011

let test_coupled_mode_lines () =
  let p = pair () in
  let even = Coupled.mode_line p Coupled.Even in
  let odd = Coupled.mode_line p Coupled.Odd in
  check_close "even l" (p.Coupled.l_self +. p.Coupled.l_mutual) even.Line.l;
  check_close "odd l" (p.Coupled.l_self -. p.Coupled.l_mutual) odd.Line.l;
  check_close "even c" p.Coupled.c_ground even.Line.c;
  check_close "odd c"
    (p.Coupled.c_ground +. (2.0 *. p.Coupled.c_coupling))
    odd.Line.c

let test_coupled_passivity_validation () =
  Alcotest.check_raises "mutual >= self"
    (Invalid_argument "Coupled.make: need 0 <= l_mutual < l_self") (fun () ->
      ignore
        (Coupled.make ~r:1.0 ~l_self:1e-6 ~l_mutual:1e-6 ~c_ground:1e-12
           ~c_coupling:0.0))

let test_coupled_uncoupled_limit () =
  (* no mutual, no coupling: both modes collapse to the single line *)
  let p =
    Coupled.make ~r:4400.0 ~l_self:1.5e-6 ~l_mutual:0.0 ~c_ground:100e-12
      ~c_coupling:0.0
  in
  let d =
    Coupled.switching_delays p ~driver:node100.Rlc_tech.Node.driver ~h:0.011
      ~k:500.0
  in
  check_close "even = odd" d.Coupled.even_delay d.Coupled.odd_delay;
  check_close "spread = 0" 0.0 d.Coupled.spread ~tol:1e-12;
  check_close "no victim noise" 0.0
    (Coupled.victim_noise_peak p ~driver:node100.Rlc_tech.Node.driver ~h:0.011
       ~k:500.0)
    ~tol:1e-9

let test_coupled_inductive_spread_negative () =
  (* at these geometries mutual inductance dominates: even mode slower *)
  let p = pair () in
  let d =
    Coupled.switching_delays p ~driver:node100.Rlc_tech.Node.driver ~h:0.011
      ~k:500.0
  in
  Alcotest.(check bool) "even slower than odd" true
    (d.Coupled.even_delay > d.Coupled.odd_delay);
  Alcotest.(check bool) "spread negative" true (d.Coupled.spread < 0.0)

let test_coupled_capacitive_spread_positive () =
  (* with negligible mutual the classical Miller ordering returns *)
  let p =
    Coupled.make ~r:4400.0 ~l_self:0.1e-6 ~l_mutual:0.001e-6
      ~c_ground:85e-12 ~c_coupling:40e-12
  in
  let d =
    Coupled.switching_delays p ~driver:node100.Rlc_tech.Node.driver ~h:0.011
      ~k:500.0
  in
  Alcotest.(check bool) "odd slower than even" true
    (d.Coupled.odd_delay > d.Coupled.even_delay)

let test_coupled_victim_noise_positive () =
  let p = pair () in
  let noise =
    Coupled.victim_noise_peak p ~driver:node100.Rlc_tech.Node.driver ~h:0.011
      ~k:500.0
  in
  Alcotest.(check bool) "noise in (0, 1)" true (noise > 0.0 && noise < 1.0)

(* ---------------- Coupled (transient) ---------------- *)

let build_coupled_pair drive2 p ~h ~k ~segments =
  let open Rlc_circuit in
  let driver = node100.Rlc_tech.Node.driver in
  let nl = Netlist.create () in
  let s1 = Netlist.fresh_node nl and s2 = Netlist.fresh_node nl in
  let d1 = Netlist.fresh_node nl and d2 = Netlist.fresh_node nl in
  let f1 = Netlist.fresh_node nl and f2 = Netlist.fresh_node nl in
  Netlist.add_vsource nl s1 Netlist.ground (Stimulus.Dc 1.0);
  Netlist.add_vsource nl s2 Netlist.ground (Stimulus.Dc drive2);
  let rs = Rlc_tech.Driver.scaled_rs driver ~k in
  Netlist.add_resistor nl s1 d1 rs;
  Netlist.add_resistor nl s2 d2 rs;
  Netlist.add_capacitor nl d1 Netlist.ground (Rlc_tech.Driver.scaled_cp driver ~k);
  Netlist.add_capacitor nl d2 Netlist.ground (Rlc_tech.Driver.scaled_cp driver ~k);
  Ladder.make_coupled nl
    {
      Ladder.r = p.Coupled.r;
      l_self = p.Coupled.l_self;
      l_mutual = p.Coupled.l_mutual;
      c_ground = p.Coupled.c_ground;
      c_coupling = p.Coupled.c_coupling;
      length = h;
      segments;
    }
    ~from1:d1 ~to1:f1 ~from2:d2 ~to2:f2;
  Netlist.add_capacitor nl f1 Netlist.ground (Rlc_tech.Driver.scaled_c0 driver ~k);
  Netlist.add_capacitor nl f2 Netlist.ground (Rlc_tech.Driver.scaled_c0 driver ~k);
  let r =
    Transient.run nl ~t_end:1.5e-9 ~dt:2.5e-13
      ~probes:[ Transient.Node_v f1; Transient.Node_v f2 ]
  in
  (Transient.get r (Transient.Node_v f1), Transient.get r (Transient.Node_v f2))

let d50 w =
  match
    Rlc_waveform.Measure.threshold_delay w ~fraction:0.5 ~v_final:1.0
  with
  | Some d -> d
  | None -> Alcotest.fail "no 50% crossing"

let test_coupled_transient_modes () =
  let p = pair () in
  let rc = Rc_opt.optimize node100 in
  let h = rc.Rc_opt.h_opt and k = rc.Rc_opt.k_opt in
  let sd =
    Coupled.switching_delays p ~driver:node100.Rlc_tech.Node.driver ~h ~k
  in
  let even_wf, even_wf2 = build_coupled_pair 1.0 p ~h ~k ~segments:16 in
  (* symmetric drive: the two far ends must match exactly *)
  check_close "symmetry" (d50 even_wf) (d50 even_wf2) ~tol:1e-6;
  let odd_wf, _ = build_coupled_pair (-1.0) p ~h ~k ~segments:16 in
  (* mode delays within the Pade truncation band of the analytic model *)
  Alcotest.(check bool)
    (Printf.sprintf "even %.1f ~ %.1f ps" (d50 even_wf *. 1e12)
       (sd.Coupled.even_delay *. 1e12))
    true
    (Float.abs ((d50 even_wf /. sd.Coupled.even_delay) -. 1.0) < 0.2);
  Alcotest.(check bool)
    (Printf.sprintf "odd %.1f ~ %.1f ps" (d50 odd_wf *. 1e12)
       (sd.Coupled.odd_delay *. 1e12))
    true
    (Float.abs ((d50 odd_wf /. sd.Coupled.odd_delay) -. 1.0) < 0.2);
  Alcotest.(check bool) "transient sees the inductive flip" true
    (d50 even_wf > d50 odd_wf)

let test_coupled_transient_victim_noise () =
  let p = pair () in
  let rc = Rc_opt.optimize node100 in
  let h = rc.Rc_opt.h_opt and k = rc.Rc_opt.k_opt in
  let _, victim = build_coupled_pair 0.0 p ~h ~k ~segments:16 in
  let sim_noise = Rlc_waveform.Measure.peak_abs victim in
  let analytic =
    Coupled.victim_noise_peak p ~driver:node100.Rlc_tech.Node.driver ~h ~k
  in
  (* the 2-pole mode model underestimates distributed ringing, so the
     simulator must see at least the analytic noise and not more than
     ~2.5x of it *)
  Alcotest.(check bool)
    (Printf.sprintf "victim noise %.1f%% vs analytic %.1f%%"
       (sim_noise *. 100.0) (analytic *. 100.0))
    true
    (sim_noise > 0.8 *. analytic && sim_noise < 2.5 *. analytic)

(* ---------------- Variation ---------------- *)

let test_variation_deterministic () =
  let dist = Variation.default_distribution node100 in
  let a = Variation.draw ~seed:7 ~n:10 node100 dist in
  let b = Variation.draw ~seed:7 ~n:10 node100 dist in
  Alcotest.(check bool) "same seed, same samples" true (a = b);
  let c = Variation.draw ~seed:8 ~n:10 node100 dist in
  Alcotest.(check bool) "different seed differs" true (a <> c)

let test_variation_samples_in_range () =
  let dist = Variation.default_distribution node100 in
  let samples = Variation.draw ~n:200 node100 dist in
  Alcotest.(check bool) "l within range" true
    (List.for_all
       (fun s ->
         s.Variation.l >= dist.Variation.l_min
         && s.Variation.l <= dist.Variation.l_max)
       samples);
  Alcotest.(check bool) "rs within 3 sigma" true
    (List.for_all
       (fun s ->
         Float.abs (s.Variation.rs_scale -. 1.0)
         <= (3.0 *. dist.Variation.rs_sigma) +. 1e-12)
       samples)

let test_variation_statistics_sane () =
  let rc = Rc_opt.optimize node100 in
  let dist = Variation.default_distribution node100 in
  let s =
    Variation.delay_statistics ~n:300 node100 ~h:rc.Rc_opt.h_opt
      ~k:rc.Rc_opt.k_opt dist
  in
  Alcotest.(check bool) "ordering" true
    (s.Variation.min <= s.Variation.mean
    && s.Variation.mean <= s.Variation.p95
    && s.Variation.p95 <= s.Variation.max);
  Alcotest.(check bool) "spread is material" true
    (s.Variation.stddev > 0.02 *. s.Variation.mean)

let test_variation_mid_sizing_more_robust () =
  let rc = Rc_opt.optimize node100 in
  let mid = Rlc_opt.optimize node100 ~l:(0.5 *. node100.Rlc_tech.Node.l_max) in
  let dist = Variation.default_distribution node100 in
  match
    Variation.compare_sizings node100 dist
      [
        ("rc", rc.Rc_opt.h_opt, rc.Rc_opt.k_opt);
        ("mid", mid.Rlc_opt.h, mid.Rlc_opt.k);
      ]
  with
  | [ (_, rc_stats); (_, mid_stats) ] ->
      Alcotest.(check bool) "mid sizing wins on p95" true
        (mid_stats.Variation.p95 < rc_stats.Variation.p95)
  | _ -> Alcotest.fail "expected two results"

(* ---------------- Wire sizing ---------------- *)

let test_wire_at_scaling () =
  let w1 = Wire_sizing.wire_at node100 ~width:1e-6 in
  let w2 = Wire_sizing.wire_at node100 ~width:2e-6 in
  check_close "r halves when width doubles" (w1.Wire_sizing.r /. 2.0)
    w2.Wire_sizing.r;
  Alcotest.(check bool) "c grows with width (fixed pitch)" true
    (w2.Wire_sizing.c > w1.Wire_sizing.c);
  Alcotest.check_raises "width > pitch"
    (Invalid_argument "Wire_sizing.wire_at: width does not fit the pitch")
    (fun () -> ignore (Wire_sizing.wire_at node100 ~width:5e-6))

let test_wire_sizing_interior_optimum () =
  let best = Wire_sizing.optimize node100 in
  let w_star = best.Wire_sizing.wire.Wire_sizing.width in
  Alcotest.(check bool)
    (Printf.sprintf "interior optimum (%.2f um)" (w_star *. 1e6))
    true
    (w_star > 0.5e-6 && w_star < 3.2e-6);
  (* both narrower and wider are worse *)
  let at w = (Wire_sizing.evaluate node100 ~width:w).Wire_sizing.delay_per_length in
  Alcotest.(check bool) "narrower worse" true
    (at (0.5 *. w_star) > best.Wire_sizing.delay_per_length);
  Alcotest.(check bool) "wider worse" true
    (at (2.0 *. w_star) > best.Wire_sizing.delay_per_length)

(* ---------------- Chain ---------------- *)

let test_chain_clean_at_low_l () =
  let cfg =
    Rlc_ringosc.Chain.config ~stages:3 ~segments:6 node100 ~l:0.5e-6 ~h:0.006
      ~k:200.0
  in
  let v = Rlc_ringosc.Chain.check (Rlc_ringosc.Chain.simulate ~cycles:4 cfg) in
  Alcotest.(check bool) "edges propagate" true (v.Rlc_ringosc.Chain.output_edges > 0);
  Alcotest.(check int) "no spurious edges" 0 v.Rlc_ringosc.Chain.spurious_edges

let test_chain_false_switching_at_high_l () =
  let cfg = Rlc_ringosc.Chain.rc_sized_config ~segments:8 node100 ~l:4.5e-6 in
  let v = Rlc_ringosc.Chain.check (Rlc_ringosc.Chain.simulate ~cycles:4 cfg) in
  Alcotest.(check bool) "spurious switching detected" true
    v.Rlc_ringosc.Chain.false_switching

let test_chain_250nm_clean_everywhere () =
  let cfg = Rlc_ringosc.Chain.rc_sized_config ~segments:8 node250 ~l:5e-6 in
  let v = Rlc_ringosc.Chain.check (Rlc_ringosc.Chain.simulate ~cycles:4 cfg) in
  Alcotest.(check bool) "250nm clean at l=5" true
    (not v.Rlc_ringosc.Chain.false_switching)

(* ---------------- Taper ---------------- *)

let test_taper_textbook_limit () =
  (* with negligible parasitic cp the optimal ratio is e *)
  let slim = Rlc_tech.Driver.make ~rs:1e4 ~c0:1e-15 ~cp:1e-21 in
  check_close "rho* -> e" (Float.exp 1.0) (Taper.optimal_ratio slim) ~tol:1e-3

let test_taper_ratio_is_optimal () =
  let d = node100.Rlc_tech.Node.driver in
  let rho = Taper.optimal_ratio d in
  let delay r = Taper.delay_of_ratio d ~load:1e-12 r in
  Alcotest.(check bool) "stationary point" true
    (delay rho < delay (rho *. 1.2) && delay rho < delay (rho /. 1.2));
  Alcotest.(check bool) "parasitics push rho above e" true
    (rho > Float.exp 1.0)

let test_taper_design_consistency () =
  let d = node100.Rlc_tech.Node.driver in
  let c = Taper.design d ~load:1e-12 in
  Alcotest.(check int) "sizes match stages" c.Taper.stages
    (List.length c.Taper.sizes);
  (* geometric: last size * ratio lands on the load *)
  let last = List.nth c.Taper.sizes (c.Taper.stages - 1) in
  check_close "lands on the load" 1e-12
    (d.Rlc_tech.Driver.c0 *. last *. c.Taper.ratio)
    ~tol:1e-9;
  Alcotest.check_raises "load too small"
    (Invalid_argument
       "Taper: load must exceed the first stage's input capacitance")
    (fun () -> ignore (Taper.design d ~load:1e-18))

let test_taper_through_wire () =
  let chain, total =
    Taper.chain_through_wire node100 ~l:1.5e-6 ~wire_length:0.008 ~load:2e-12
  in
  Alcotest.(check bool) "multi-stage" true (chain.Taper.stages >= 3);
  Alcotest.(check bool) "total includes the wire" true
    (total > chain.Taper.delay);
  (* the jointly optimized wire driver must beat naive extremes *)
  let naive k =
    let gate = node100.Rlc_tech.Node.driver.Rlc_tech.Driver.c0 *. k in
    let c = Taper.design node100.Rlc_tech.Node.driver ~load:gate in
    let syn =
      Rlc_tech.Driver.make ~rs:node100.Rlc_tech.Node.driver.Rlc_tech.Driver.rs
        ~c0:(2e-12 /. k) ~cp:node100.Rlc_tech.Node.driver.Rlc_tech.Driver.cp
    in
    c.Taper.delay
    +. Delay.of_stage
         (Stage.make
            ~line:(Line.of_node node100 ~l:1.5e-6)
            ~driver:syn ~h:0.008 ~k)
  in
  Alcotest.(check bool) "beats undersized driver" true (total < naive 30.0);
  Alcotest.(check bool) "beats oversized driver" true (total < naive 3000.0)

(* ---------------- Corners ---------------- *)

let test_corners_typical_matches_plain () =
  let rc = Rc_opt.optimize node100 in
  let h = rc.Rc_opt.h_opt and k = rc.Rc_opt.k_opt in
  let stage = Corners.apply node100 Corners.typical ~h ~k in
  (* typical scales are 1.0, so only l_frac differs from a bare stage *)
  check_close "r unchanged" node100.Rlc_tech.Node.r stage.Stage.line.Line.r;
  check_close "l at fraction"
    (0.35 *. node100.Rlc_tech.Node.l_max)
    stage.Stage.line.Line.l

let test_corners_window_ordering () =
  let rc = Rc_opt.optimize node100 in
  let h = rc.Rc_opt.h_opt and k = rc.Rc_opt.k_opt in
  let evals = Corners.evaluate node100 ~h ~k in
  let by name =
    List.find (fun e -> e.Corners.corner.Corners.name = name) evals
  in
  Alcotest.(check bool) "fast < typical < slow" true
    ((by "fast").Corners.delay_per_length
     < (by "typical").Corners.delay_per_length
    && (by "typical").Corners.delay_per_length
       < (by "slow").Corners.delay_per_length);
  Alcotest.(check bool) "si-worst is the ringing corner" true
    ((by "si-worst").Corners.underdamped
    && (by "si-worst").Corners.overshoot > (by "slow").Corners.overshoot);
  let lo, hi = Corners.delay_window node100 ~h ~k in
  Alcotest.(check bool) "window spans the set" true
    (lo = (by "fast").Corners.delay_per_length
    && hi >= (by "slow").Corners.delay_per_length)

let test_corners_window_contains_typical () =
  let rc = Rc_opt.optimize node250 in
  let lo, hi =
    Corners.delay_window node250 ~h:rc.Rc_opt.h_opt ~k:rc.Rc_opt.k_opt
  in
  let typ =
    List.find
      (fun e -> e.Corners.corner.Corners.name = "typical")
      (Corners.evaluate node250 ~h:rc.Rc_opt.h_opt ~k:rc.Rc_opt.k_opt)
  in
  Alcotest.(check bool) "typical inside window" true
    (lo <= typ.Corners.delay_per_length && typ.Corners.delay_per_length <= hi)

(* ---------------- Bus ---------------- *)

let mk_bus ?(n = 4) () =
  Bus.make ~n ~r:4400.0 ~l:2e-6 ~lm:0.8e-6 ~cg:85e-12 ~cc:40e-12

let test_bus_mode_spectrum () =
  let bus = mk_bus ~n:3 () in
  (* theta_j = cos(j pi / 4) = {sqrt2/2, 0, -sqrt2/2} *)
  let m1 = Bus.mode_line bus 1 in
  let m2 = Bus.mode_line bus 2 in
  let m3 = Bus.mode_line bus 3 in
  let s2 = Float.sqrt 2.0 /. 2.0 in
  check_close "mode1 l" (2e-6 +. (2.0 *. 0.8e-6 *. s2)) m1.Line.l;
  check_close "mode2 l" 2e-6 m2.Line.l;
  check_close "mode3 l" (2e-6 -. (2.0 *. 0.8e-6 *. s2)) m3.Line.l;
  check_close "mode2 c" (85e-12 +. (2.0 *. 40e-12)) m2.Line.c

let test_bus_validation () =
  Alcotest.check_raises "lm too large"
    (Invalid_argument "Bus.make: need |lm| < l/2 (modal positive-definiteness)")
    (fun () ->
      ignore (Bus.make ~n:4 ~r:1.0 ~l:1e-6 ~lm:0.6e-6 ~cg:1e-12 ~cc:0.0));
  let bus = mk_bus () in
  Alcotest.check_raises "mode out of range"
    (Invalid_argument "Bus.mode_line: mode out of range") (fun () ->
      ignore (Bus.mode_line bus 5))

let test_bus_envelope_widens_with_n () =
  let driver = node100.Rlc_tech.Node.driver in
  let spread n =
    let bus = mk_bus ~n () in
    let lo, hi = Bus.delay_envelope bus ~driver ~h:0.011 ~k:500.0 in
    (hi -. lo) /. lo
  in
  Alcotest.(check bool) "wider bus = wider envelope" true
    (spread 8 > spread 2)

let test_bus_miller_range_approaches_4x () =
  (* with cg ~ cc the modal capacitance range approaches
     (cg + 4cc)/cg-ish as N grows; check monotone growth and the bound *)
  let range n =
    let bus = Bus.make ~n ~r:4400.0 ~l:0.0 ~lm:0.0 ~cg:50e-12 ~cc:50e-12 in
    let lo, hi = Bus.miller_capacitance_range bus in
    hi /. lo
  in
  Alcotest.(check bool) "grows with n" true (range 16 > range 3);
  Alcotest.(check bool) "bounded by (cg+4cc)/cg" true
    (range 32 < (50.0 +. 200.0) /. 50.0)

let test_bus_victim_noise_zero_without_coupling () =
  let bus = Bus.make ~n:5 ~r:4400.0 ~l:2e-6 ~lm:0.0 ~cg:100e-12 ~cc:0.0 in
  check_close "uncoupled bus has no victim noise" 0.0
    (Bus.victim_noise_peak bus ~driver:node100.Rlc_tech.Node.driver ~h:0.011
       ~k:500.0)
    ~tol:1e-9

(* ---------------- Shielding ---------------- *)

let test_shielding_layouts () =
  let rc = Rc_opt.optimize node100 in
  let results =
    Shielding.analyze node100 ~h:rc.Rc_opt.h_opt ~k:rc.Rc_opt.k_opt
  in
  Alcotest.(check int) "three layouts" 3 (List.length results);
  let find l = List.find (fun r -> r.Shielding.layout = l) results in
  let dense = find Shielding.Dense in
  let shielded = find Shielding.Shielded in
  Alcotest.(check bool) "shields kill noise" true
    (shielded.Shielding.victim_noise = 0.0
    && dense.Shielding.victim_noise > 0.05);
  Alcotest.(check bool) "shields kill spread" true
    (shielded.Shielding.delay_spread = 0.0
    && dense.Shielding.delay_spread > 0.1);
  Alcotest.(check bool) "shields pin the return (lower l)" true
    (shielded.Shielding.l_eff < 0.6 *. dense.Shielding.l_eff);
  Alcotest.(check bool) "area accounting" true
    (dense.Shielding.tracks_per_signal = 1.0
    && shielded.Shielding.tracks_per_signal = 2.0)

(* ---------------- Thermal ---------------- *)

let g100nm = node100.Rlc_tech.Node.geometry

let test_thermal_quadratic () =
  let dt i =
    Rlc_extraction.Thermal.temperature_rise_no_feedback g100nm ~i_rms:i
  in
  check_close "quadratic in current" (4.0 *. dt 5e-3) (dt 10e-3) ~tol:1e-9

let test_thermal_feedback_increases_rise () =
  let i = 50e-3 in
  Alcotest.(check bool) "feedback adds" true
    (Rlc_extraction.Thermal.temperature_rise g100nm ~i_rms:i
    > Rlc_extraction.Thermal.temperature_rise_no_feedback g100nm ~i_rms:i)

let test_thermal_runaway () =
  let i_run = Rlc_extraction.Thermal.runaway_current g100nm in
  (* just below: finite; just above: raises *)
  Alcotest.(check bool) "finite below runaway" true
    (Float.is_finite
       (Rlc_extraction.Thermal.temperature_rise g100nm ~i_rms:(0.99 *. i_run)));
  Alcotest.check_raises "diverges above"
    (Invalid_argument "Thermal.temperature_rise: beyond thermal runaway")
    (fun () ->
      ignore
        (Rlc_extraction.Thermal.temperature_rise g100nm
           ~i_rms:(1.01 *. i_run)))

let test_thermal_budget_inverse () =
  let i = Rlc_extraction.Thermal.max_current_for_rise g100nm ~dt_max:10.0 in
  check_close "budget round-trips" 10.0
    (Rlc_extraction.Thermal.temperature_rise g100nm ~i_rms:i)
    ~tol:1e-6

let test_thermal_paper_claim () =
  (* the ring-oscillator RMS currents (~5 mA, Figure 12) heat the wire
     by well under a kelvin: the paper's "reliability does not degrade"
     conclusion, quantified *)
  Alcotest.(check bool) "RO current is thermally benign" true
    (Rlc_extraction.Thermal.temperature_rise g100nm ~i_rms:5e-3 < 0.5)

(* ---------------- Sensitivity ---------------- *)

let test_sensitivity_matches_fd () =
  let stage = Rc_opt.stage node100 ~l:1.5e-6 in
  let s = Sensitivity.of_stage stage in
  let fd perturb scale =
    let h = 1e-5 *. scale in
    (Delay.of_stage (perturb h) -. Delay.of_stage (perturb (-.h)))
    /. (2.0 *. h)
  in
  let { Line.r; l; c } = stage.Stage.line in
  check_close "d tau/d l" (fd (fun d -> Stage.with_l stage (l +. d)) l)
    s.Sensitivity.wrt_l ~tol:1e-4;
  let with_c d =
    Stage.make
      ~line:(Line.make ~r ~l ~c:(c +. d))
      ~driver:stage.Stage.driver ~h:stage.Stage.h ~k:stage.Stage.k
  in
  check_close "d tau/d c" (fd with_c c) s.Sensitivity.wrt_c ~tol:1e-4;
  let with_r d =
    Stage.make
      ~line:(Line.make ~r:(r +. d) ~l ~c)
      ~driver:stage.Stage.driver ~h:stage.Stage.h ~k:stage.Stage.k
  in
  check_close "d tau/d r" (fd with_r r) s.Sensitivity.wrt_r ~tol:1e-4

let test_sensitivity_all_positive () =
  (* more parasitics or weaker driver = more delay, for this regime *)
  let s = Sensitivity.of_stage (Rc_opt.stage node100 ~l:1e-6) in
  Alcotest.(check bool) "dl positive" true (s.Sensitivity.wrt_l > 0.0);
  Alcotest.(check bool) "dc positive" true (s.Sensitivity.wrt_c > 0.0);
  Alcotest.(check bool) "dr positive" true (s.Sensitivity.wrt_r > 0.0);
  Alcotest.(check bool) "drs positive" true (s.Sensitivity.wrt_rs > 0.0)

let test_sensitivity_elasticity_crossover () =
  (* the RC -> LC transition: inductance elasticity grows with l while
     resistance elasticity falls *)
  let el l = Sensitivity.of_stage (Rc_opt.stage node100 ~l) in
  let lo = el 0.5e-6 and hi = el 4e-6 in
  Alcotest.(check bool) "l-elasticity grows" true
    (hi.Sensitivity.elasticity_l > lo.Sensitivity.elasticity_l);
  Alcotest.(check bool) "r-elasticity falls" true
    (hi.Sensitivity.elasticity_r < lo.Sensitivity.elasticity_r)

let test_sensitivity_spread_vs_monte_carlo () =
  (* the linearised spread must approximate the sampled spread for a
     small inductance band *)
  let stage = Rc_opt.stage node100 ~l:2e-6 in
  let band = 0.25e-6 in
  let linear =
    Sensitivity.delay_spread_estimate stage ~l_uncertainty:band
  in
  let dist =
    {
      Variation.l_min = 2e-6 -. band;
      l_max = 2e-6 +. band;
      miller_min = 1.0;
      miller_max = 1.0;
      rs_sigma = 0.0;
    }
  in
  let stats =
    Variation.delay_statistics ~n:400 node100 ~h:stage.Stage.h
      ~k:stage.Stage.k dist
  in
  let sampled = (stats.Variation.max -. stats.Variation.min) *. stage.Stage.h in
  check_close "linear ~ sampled spread" sampled linear ~tol:0.05

(* ---------------- Frequency ---------------- *)

let test_frequency_dc_and_rolloff () =
  let stage = mk_stage () in
  let low = Frequency.response stage 1e5 in
  Alcotest.(check bool) "flat at low f" true (Float.abs low.Frequency.mag_db < 0.01);
  let high = Frequency.response stage 1e12 in
  Alcotest.(check bool) "rolled off" true (high.Frequency.mag_db < -40.0)

let test_frequency_bandwidth () =
  let stage = mk_stage () in
  let bw = Frequency.bandwidth_3db stage in
  let at_bw = Frequency.response stage bw in
  check_close "-3 dB at the bandwidth" (-3.0103) at_bw.Frequency.mag_db
    ~tol:1e-2;
  Alcotest.(check bool) "plausible range" true (bw > 1e8 && bw < 1e11)

let test_frequency_bandwidth_opt () =
  let stage = mk_stage () in
  (* the option form agrees with the raising wrapper when in range *)
  (match Frequency.bandwidth_3db_opt stage with
  | Some bw -> check_close "same as wrapper" (Frequency.bandwidth_3db stage) bw
  | None -> Alcotest.fail "expected a bandwidth for the reference stage");
  (* capping the search below the corner yields None, not an exception *)
  Alcotest.(check bool) "in-band below the corner" true
    (Frequency.bandwidth_3db_opt ~f_max:1e7 stage = None);
  Alcotest.check_raises "wrapper raises instead" Not_found (fun () ->
      ignore (Frequency.bandwidth_3db ~f_max:1e7 stage))

let test_frequency_peaking_iff_underdamped () =
  let over = Rc_opt.stage node100 ~l:0.0 in
  Alcotest.(check bool) "no peaking overdamped" true
    (Frequency.resonance over = None);
  let under = Rc_opt.stage node100 ~l:2e-6 in
  match Frequency.resonance under with
  | Some (f, db) ->
      Alcotest.(check bool) "peak positive" true (db > 1.0);
      Alcotest.(check bool) "GHz-range peak" true (f > 1e8 && f < 1e10)
  | None -> Alcotest.fail "underdamped stage must peak"

let test_frequency_peaking_grows_with_l () =
  let peak l =
    match Frequency.resonance (Rc_opt.stage node100 ~l) with
    | Some (_, db) -> db
    | None -> 0.0
  in
  Alcotest.(check bool) "monotone peaking" true
    (peak 1e-6 < peak 2e-6 && peak 2e-6 < peak 4e-6)

let test_frequency_group_delay_dc_limit () =
  (* group delay at f -> 0 equals the first moment b1 *)
  let stage = mk_stage () in
  let b1 = (Pade.coeffs stage).Pade.b1 in
  check_close "gd(low f) = b1" b1 (Frequency.group_delay stage 1e6) ~tol:1e-3

let test_frequency_bode_shape () =
  let stage = mk_stage () in
  let pts = Frequency.bode ~points:50 stage ~f_min:1e6 ~f_max:1e11 in
  Alcotest.(check int) "points" 50 (List.length pts);
  let first = List.hd pts and last = List.nth pts 49 in
  Alcotest.(check bool) "descending overall" true
    (last.Frequency.mag_db < first.Frequency.mag_db -. 20.0)

(* ---------------- Skin effect ---------------- *)

let g100 = node100.Rlc_tech.Node.geometry

let test_skin_depth_scaling () =
  let d1 = Rlc_extraction.Skin.skin_depth 1e9 in
  let d4 = Rlc_extraction.Skin.skin_depth 4e9 in
  check_close "delta ~ 1/sqrt(f)" (d1 /. 2.0) d4 ~tol:1e-9;
  (* copper at 1 GHz: ~2.09 um *)
  check_close "copper @ 1GHz" 2.09e-6 d1 ~tol:2e-2

let test_skin_resistance_limits () =
  let r_dc = Rlc_extraction.Resistance.per_length g100 in
  check_close "dc limit" r_dc (Rlc_extraction.Skin.resistance_at g100 0.0);
  let fc = Rlc_extraction.Skin.corner_frequency g100 in
  check_close "sqrt(2) at corner" (r_dc *. Float.sqrt 2.0)
    (Rlc_extraction.Skin.resistance_at g100 fc);
  (* far above the corner: sqrt(f) law *)
  let r100 = Rlc_extraction.Skin.resistance_at g100 (100.0 *. fc) in
  let r400 = Rlc_extraction.Skin.resistance_at g100 (400.0 *. fc) in
  check_close "sqrt(f) crowding" 2.0 (r400 /. r100) ~tol:1e-2

let test_skin_correction_damps () =
  let stage = Rc_opt.stage node100 ~l:2e-6 in
  let c = Skin_effect.correct g100 stage in
  Alcotest.(check bool) "resistance grows" true
    (c.Skin_effect.r_effective > stage.Stage.line.Line.r);
  let dc_ov, skin_ov = Skin_effect.overshoot_comparison g100 stage in
  Alcotest.(check bool) "overshoot shrinks" true (skin_ov < dc_ov);
  Alcotest.(check bool) "correction is moderate" true
    (skin_ov > 0.8 *. dc_ov)

let test_skin_correction_fixed_point () =
  let stage = Rc_opt.stage node100 ~l:2e-6 in
  let c = Skin_effect.correct g100 stage in
  (* re-correcting the corrected stage's r must be a no-op *)
  let f = c.Skin_effect.frequency in
  let expected_ratio =
    Rlc_extraction.Skin.resistance_at g100 f
    /. Rlc_extraction.Skin.resistance_at g100 0.0
  in
  check_close "fixed point"
    (stage.Stage.line.Line.r *. expected_ratio)
    c.Skin_effect.r_effective ~tol:1e-3

(* ---------------- Eye ---------------- *)

let test_eye_prbs_properties () =
  let bits = Rlc_ringosc.Eye.prbs ~seed:0b1010101 127 in
  Alcotest.(check int) "length" 127 (List.length bits);
  (* maximal 7-bit LFSR: 64 ones, 63 zeros per period *)
  let ones = List.length (List.filter (fun b -> b) bits) in
  Alcotest.(check int) "balance" 64 ones;
  (* deterministic *)
  Alcotest.(check bool) "deterministic" true
    (bits = Rlc_ringosc.Eye.prbs ~seed:0b1010101 127);
  Alcotest.check_raises "zero seed" (Invalid_argument "Eye.prbs: zero seed")
    (fun () -> ignore (Rlc_ringosc.Eye.prbs ~seed:0 8))

let test_eye_closes_with_inductance () =
  let rc = Rc_opt.optimize node100 in
  let measure l =
    Rlc_ringosc.Eye.run
      (Rlc_ringosc.Eye.config ~segments:8 ~bits:24 node100 ~l
         ~h:rc.Rc_opt.h_opt ~k:rc.Rc_opt.k_opt)
  in
  let clean = measure 0.0 in
  let noisy = measure 3e-6 in
  Alcotest.(check bool) "clean eye mostly open" true
    (clean.Rlc_ringosc.Eye.eye_opening > 0.85);
  Alcotest.(check bool) "inductance closes the eye" true
    (noisy.Rlc_ringosc.Eye.eye_opening
    < clean.Rlc_ringosc.Eye.eye_opening -. 0.2);
  Alcotest.(check bool) "jitter grows" true
    (noisy.Rlc_ringosc.Eye.jitter > 3.0 *. clean.Rlc_ringosc.Eye.jitter)

let test_eye_validation () =
  Alcotest.check_raises "few bits" (Invalid_argument "Eye.config: bits < 8")
    (fun () ->
      ignore
        (Rlc_ringosc.Eye.config ~bits:4 node100 ~l:0.0 ~h:0.01 ~k:100.0))

let () =
  Alcotest.run "extensions"
    [
      ( "third-order",
        [
          Alcotest.test_case "b1/b2 agree with Pade" `Quick
            test_third_order_agrees_with_pade;
          Alcotest.test_case "taylor O(s^4)" `Quick test_third_order_taylor;
          Alcotest.test_case "step response limits" `Quick
            test_third_order_step_response;
          Alcotest.test_case "closer to exact than Pade-2" `Slow
            test_third_order_delay_between_pade_and_exact;
          Alcotest.test_case "delay solves its equation" `Quick
            test_third_order_solves_equation;
        ] );
      ( "power",
        [
          Alcotest.test_case "components" `Quick test_power_components;
          Alcotest.test_case "monotonicity" `Quick test_power_monotonicity;
          Alcotest.test_case "lambda=0 is delay optimum" `Quick
            test_power_lambda_zero_is_delay_optimum;
          Alcotest.test_case "pareto trade-off" `Slow test_power_pareto_tradeoff;
        ] );
      ( "insertion",
        [
          Alcotest.test_case "long net ~ continuous" `Quick
            test_insertion_long_net_matches_continuous;
          Alcotest.test_case "short net single segment" `Quick
            test_insertion_short_net;
          Alcotest.test_case "k reoptimized for pinned h" `Quick
            test_insertion_k_reoptimized;
          Alcotest.test_case "validation" `Quick test_insertion_validation;
        ] );
      ( "coupled-analytic",
        [
          Alcotest.test_case "mode lines" `Quick test_coupled_mode_lines;
          Alcotest.test_case "passivity validation" `Quick
            test_coupled_passivity_validation;
          Alcotest.test_case "uncoupled limit" `Quick
            test_coupled_uncoupled_limit;
          Alcotest.test_case "inductive flip (spread < 0)" `Quick
            test_coupled_inductive_spread_negative;
          Alcotest.test_case "capacitive ordering (spread > 0)" `Quick
            test_coupled_capacitive_spread_positive;
          Alcotest.test_case "victim noise positive" `Quick
            test_coupled_victim_noise_positive;
        ] );
      ( "coupled-transient",
        [
          Alcotest.test_case "modes match analytic" `Slow
            test_coupled_transient_modes;
          Alcotest.test_case "victim noise" `Slow
            test_coupled_transient_victim_noise;
        ] );
      ( "variation",
        [
          Alcotest.test_case "deterministic seeding" `Quick
            test_variation_deterministic;
          Alcotest.test_case "samples in range" `Quick
            test_variation_samples_in_range;
          Alcotest.test_case "statistics sane" `Quick
            test_variation_statistics_sane;
          Alcotest.test_case "mid sizing more robust" `Slow
            test_variation_mid_sizing_more_robust;
        ] );
      ( "wire-sizing",
        [
          Alcotest.test_case "parameter scaling" `Quick test_wire_at_scaling;
          Alcotest.test_case "interior optimum" `Slow
            test_wire_sizing_interior_optimum;
        ] );
      ( "chain",
        [
          Alcotest.test_case "clean at low l" `Slow test_chain_clean_at_low_l;
          Alcotest.test_case "false switching at high l" `Slow
            test_chain_false_switching_at_high_l;
          Alcotest.test_case "250nm clean at l=5" `Slow
            test_chain_250nm_clean_everywhere;
        ] );
      ( "taper",
        [
          Alcotest.test_case "textbook e limit" `Quick
            test_taper_textbook_limit;
          Alcotest.test_case "ratio optimality" `Quick
            test_taper_ratio_is_optimal;
          Alcotest.test_case "design consistency" `Quick
            test_taper_design_consistency;
          Alcotest.test_case "through a wire" `Quick test_taper_through_wire;
        ] );
      ( "corners",
        [
          Alcotest.test_case "typical stage" `Quick
            test_corners_typical_matches_plain;
          Alcotest.test_case "window ordering" `Quick
            test_corners_window_ordering;
          Alcotest.test_case "window contains typical" `Quick
            test_corners_window_contains_typical;
        ] );
      ( "bus",
        [
          Alcotest.test_case "mode spectrum" `Quick test_bus_mode_spectrum;
          Alcotest.test_case "validation" `Quick test_bus_validation;
          Alcotest.test_case "envelope widens with n" `Quick
            test_bus_envelope_widens_with_n;
          Alcotest.test_case "miller range -> 4x" `Quick
            test_bus_miller_range_approaches_4x;
          Alcotest.test_case "no coupling, no noise" `Quick
            test_bus_victim_noise_zero_without_coupling;
        ] );
      ( "shielding",
        [ Alcotest.test_case "layout comparison" `Quick test_shielding_layouts ] );
      ( "thermal",
        [
          Alcotest.test_case "quadratic" `Quick test_thermal_quadratic;
          Alcotest.test_case "feedback increases rise" `Quick
            test_thermal_feedback_increases_rise;
          Alcotest.test_case "runaway" `Quick test_thermal_runaway;
          Alcotest.test_case "budget inverse" `Quick
            test_thermal_budget_inverse;
          Alcotest.test_case "paper's reliability claim" `Quick
            test_thermal_paper_claim;
        ] );
      ( "sensitivity",
        [
          Alcotest.test_case "matches finite differences" `Quick
            test_sensitivity_matches_fd;
          Alcotest.test_case "signs" `Quick test_sensitivity_all_positive;
          Alcotest.test_case "elasticity crossover" `Quick
            test_sensitivity_elasticity_crossover;
          Alcotest.test_case "spread vs monte-carlo" `Slow
            test_sensitivity_spread_vs_monte_carlo;
        ] );
      ( "frequency",
        [
          Alcotest.test_case "dc & rolloff" `Quick test_frequency_dc_and_rolloff;
          Alcotest.test_case "bandwidth" `Quick test_frequency_bandwidth;
          Alcotest.test_case "bandwidth option form" `Quick
            test_frequency_bandwidth_opt;
          Alcotest.test_case "peaking iff underdamped" `Quick
            test_frequency_peaking_iff_underdamped;
          Alcotest.test_case "peaking grows with l" `Quick
            test_frequency_peaking_grows_with_l;
          Alcotest.test_case "group delay dc limit" `Quick
            test_frequency_group_delay_dc_limit;
          Alcotest.test_case "bode shape" `Quick test_frequency_bode_shape;
        ] );
      ( "skin-effect",
        [
          Alcotest.test_case "skin depth scaling" `Quick
            test_skin_depth_scaling;
          Alcotest.test_case "resistance limits" `Quick
            test_skin_resistance_limits;
          Alcotest.test_case "correction damps ringing" `Quick
            test_skin_correction_damps;
          Alcotest.test_case "fixed point" `Quick
            test_skin_correction_fixed_point;
        ] );
      ( "eye",
        [
          Alcotest.test_case "prbs properties" `Quick test_eye_prbs_properties;
          Alcotest.test_case "closes with inductance" `Slow
            test_eye_closes_with_inductance;
          Alcotest.test_case "validation" `Quick test_eye_validation;
        ] );
    ]
