(* Tests for rlc_numerics: complex helpers, matrices, LU, root finding,
   Newton, Nelder-Mead, polynomials, interpolation, quadrature,
   statistics, finite differences and the Talbot inverse Laplace. *)

open Rlc_numerics

let check_float = Alcotest.(check (float 1e-9))
let check_close ?(tol = 1e-9) msg expected actual =
  if
    Float.abs (expected -. actual)
    > tol *. (1.0 +. Float.max (Float.abs expected) (Float.abs actual))
  then
    Alcotest.failf "%s: expected %.15g, got %.15g" msg expected actual

(* ---------------- Cx ---------------- *)

let test_cx_ops () =
  let open Cx in
  let a = make 1.0 2.0 and b = make 3.0 (-1.0) in
  check_float "add re" 4.0 (re (a +: b));
  check_float "add im" 1.0 (im (a +: b));
  check_float "sub re" (-2.0) (re (a -: b));
  check_float "mul re" 5.0 (re (a *: b));
  check_float "mul im" 5.0 (im (a *: b));
  let q = a /: b in
  let back = q *: b in
  check_close "div roundtrip re" 1.0 (re back);
  check_close "div roundtrip im" 2.0 (im back)

let test_cx_sqrt_exp () =
  let open Cx in
  let z = make (-4.0) 0.0 in
  let r = sqrt z in
  check_close "sqrt(-4) re" 0.0 (re r) ~tol:1e-12;
  check_close "sqrt(-4) im" 2.0 (im r);
  (* Euler: e^{i pi} = -1 *)
  let e = exp (make 0.0 Float.pi) in
  check_close "euler re" (-1.0) (re e);
  check_close "euler im" 0.0 (im e) ~tol:1e-12

let test_cx_is_real () =
  Alcotest.(check bool) "real" true (Cx.is_real (Cx.of_float 3.0));
  Alcotest.(check bool) "not real" false (Cx.is_real (Cx.make 1.0 1.0));
  Alcotest.(check bool)
    "almost real" true
    (Cx.is_real ~tol:1e-6 (Cx.make 1.0 1e-8));
  check_float "checked" 3.0 (Cx.real_part_checked (Cx.of_float 3.0));
  Alcotest.check_raises "raises on complex"
    (Invalid_argument "Cx.real_part_checked: 1 + 1i is not real") (fun () ->
      ignore (Cx.real_part_checked (Cx.make 1.0 1.0)))

let test_cx_finite () =
  Alcotest.(check bool) "finite" true (Cx.is_finite (Cx.make 1.0 2.0));
  Alcotest.(check bool) "inf" false (Cx.is_finite (Cx.make infinity 0.0));
  Alcotest.(check bool) "nan" false (Cx.is_finite (Cx.make 0.0 nan))

(* ---------------- Matrix ---------------- *)

let test_matrix_basic () =
  let m = Matrix.create 2 3 in
  Alcotest.(check int) "rows" 2 (Matrix.rows m);
  Alcotest.(check int) "cols" 3 (Matrix.cols m);
  Matrix.set m 1 2 5.0;
  check_float "get" 5.0 (Matrix.get m 1 2);
  Matrix.add_to m 1 2 2.5;
  check_float "add_to" 7.5 (Matrix.get m 1 2);
  Alcotest.check_raises "oob"
    (Invalid_argument "Matrix: index (2,0) out of 2x3") (fun () ->
      ignore (Matrix.get m 2 0))

let test_matrix_mul () =
  let a = Matrix.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let b = Matrix.of_arrays [| [| 5.0; 6.0 |]; [| 7.0; 8.0 |] |] in
  let c = Matrix.mul a b in
  check_float "c00" 19.0 (Matrix.get c 0 0);
  check_float "c01" 22.0 (Matrix.get c 0 1);
  check_float "c10" 43.0 (Matrix.get c 1 0);
  check_float "c11" 50.0 (Matrix.get c 1 1);
  let v = Matrix.mul_vec a [| 1.0; 1.0 |] in
  check_float "mv0" 3.0 v.(0);
  check_float "mv1" 7.0 v.(1)

let test_matrix_identity_transpose () =
  let i3 = Matrix.identity 3 in
  let a =
    Matrix.of_arrays [| [| 1.0; 2.0; 3.0 |]; [| 4.0; 5.0; 6.0 |]; [| 7.0; 8.0; 10.0 |] |]
  in
  Alcotest.(check bool) "I*A = A" true (Matrix.equal (Matrix.mul i3 a) a);
  let t = Matrix.transpose a in
  check_float "t(0,1)" 4.0 (Matrix.get t 0 1);
  Alcotest.(check bool)
    "transpose involutive" true
    (Matrix.equal (Matrix.transpose t) a)

let test_matrix_ragged () =
  Alcotest.check_raises "ragged" (Invalid_argument "Matrix.of_arrays: ragged")
    (fun () -> ignore (Matrix.of_arrays [| [| 1.0 |]; [| 1.0; 2.0 |] |]))

(* ---------------- Lu ---------------- *)

let test_lu_solve () =
  let a =
    Matrix.of_arrays [| [| 2.0; 1.0; 1.0 |]; [| 1.0; 3.0; 2.0 |]; [| 1.0; 0.0; 0.0 |] |]
  in
  let x = Lu.solve_matrix a [| 4.0; 5.0; 6.0 |] in
  (* known solution x = (6, 15, -23) *)
  check_close "x0" 6.0 x.(0);
  check_close "x1" 15.0 x.(1);
  check_close "x2" (-23.0) x.(2)

let test_lu_det_inverse () =
  let a = Matrix.of_arrays [| [| 4.0; 3.0 |]; [| 6.0; 3.0 |] |] in
  let f = Lu.decompose a in
  check_close "det" (-6.0) (Lu.det f);
  let inv = Lu.inverse f in
  let prod = Matrix.mul a inv in
  Alcotest.(check bool)
    "A * inv(A) = I" true
    (Matrix.equal ~tol:1e-12 prod (Matrix.identity 2))

let test_lu_singular () =
  let a = Matrix.of_arrays [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] in
  Alcotest.check_raises "singular" Lu.Singular (fun () ->
      ignore (Lu.decompose a))

let test_lu_pivoting () =
  (* zero top-left pivot forces a row swap *)
  let a = Matrix.of_arrays [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] in
  let x = Lu.solve_matrix a [| 2.0; 3.0 |] in
  check_close "x0" 3.0 x.(0);
  check_close "x1" 2.0 x.(1)

let prop_lu_roundtrip =
  QCheck2.Test.make ~name:"lu: A x = b solved correctly" ~count:200
    QCheck2.Gen.(
      let entry = float_range (-10.0) 10.0 in
      array_size (return 9) entry)
    (fun flat ->
      let a =
        Matrix.of_arrays
          [|
            [| flat.(0) +. 20.0; flat.(1); flat.(2) |];
            [| flat.(3); flat.(4) +. 20.0; flat.(5) |];
            [| flat.(6); flat.(7); flat.(8) +. 20.0 |];
          |]
        (* diagonally dominant => nonsingular *)
      in
      let b = [| flat.(0); flat.(4); flat.(8) |] in
      let x = Lu.solve_matrix a b in
      let r = Matrix.mul_vec a x in
      Array.for_all2 (fun u v -> Float.abs (u -. v) < 1e-8) r b)

(* ---------------- Banded ---------------- *)

let test_banded_storage () =
  let s = Banded.create_storage ~n:5 ~kl:1 ~ku:2 in
  Banded.set s 2 1 4.0;
  Banded.add_to s 2 1 0.5;
  check_float "in-band entry" 4.5 (Banded.get s 2 1);
  check_float "outside band reads 0" 0.0 (Banded.get s 4 0);
  Alcotest.check_raises "write outside band"
    (Invalid_argument "Banded: (4,0) outside band (kl=1, ku=2)") (fun () ->
      Banded.set s 4 0 1.0);
  Alcotest.check_raises "out of bounds"
    (Invalid_argument "Banded: index (5,0) out of 5x5") (fun () ->
      ignore (Banded.get s 5 0));
  let d = Banded.to_dense s in
  check_float "round-trip to dense" 4.5 (Matrix.get d 2 1);
  check_float "dense zero" 0.0 (Matrix.get d 0 3)

let test_banded_bandwidth () =
  let tri =
    Matrix.of_arrays
      [|
        [| 2.0; -1.0; 0.0; 0.0 |];
        [| -1.0; 2.0; -1.0; 0.0 |];
        [| 0.0; -1.0; 2.0; -1.0 |];
        [| 0.0; 0.0; -1.0; 2.0 |];
      |]
  in
  Alcotest.(check (pair int int)) "tridiagonal" (1, 1) (Banded.bandwidth tri);
  Alcotest.(check (pair int int)) "diagonal" (0, 0)
    (Banded.bandwidth (Matrix.identity 3));
  let skew = Matrix.create 4 4 in
  Matrix.set skew 3 0 1.0;
  Matrix.set skew 0 1 1.0;
  for i = 0 to 3 do Matrix.set skew i i 1.0 done;
  Alcotest.(check (pair int int)) "asymmetric" (3, 1) (Banded.bandwidth skew)

(* deterministic LCG so failures reproduce *)
let lcg seed =
  let s = ref seed in
  fun () ->
    s := ((!s * 1103515245) + 12345) land 0x3FFFFFFF;
    (float_of_int !s /. float_of_int 0x3FFFFFFF) -. 0.5

let random_banded rand n kl ku =
  let a = Matrix.create n n in
  for i = 0 to n - 1 do
    for j = Int.max 0 (i - kl) to Int.min (n - 1) (i + ku) do
      Matrix.set a i j (rand ())
    done;
    (* diagonal dominance => nonsingular *)
    Matrix.add_to a i i (2.0 *. float_of_int (kl + ku + 1))
  done;
  a

let test_banded_vs_dense_random () =
  let rand = lcg 20260806 in
  List.iter
    (fun (n, kl, ku) ->
      let a = random_banded rand n kl ku in
      let b = Array.init n (fun _ -> rand ()) in
      let xd = Lu.solve (Lu.decompose a) b in
      let f = Banded.decompose (Banded.of_matrix a) in
      Alcotest.(check int) "size" n (Banded.size f);
      let xb = Banded.solve f b in
      Array.iteri
        (fun i v ->
          check_close (Printf.sprintf "n=%d kl=%d ku=%d x%d" n kl ku i) v
            xb.(i) ~tol:1e-10)
        xd)
    [ (1, 0, 0); (4, 1, 1); (7, 2, 1); (12, 1, 3); (25, 2, 2); (40, 3, 3) ]

let test_banded_pivoting () =
  (* dominant subdiagonal: partial pivoting must swap on every column *)
  let n = 8 in
  let a = Matrix.create n n in
  for i = 0 to n - 1 do
    Matrix.set a i i 0.1;
    if i > 0 then Matrix.set a i (i - 1) 5.0;
    if i < n - 1 then Matrix.set a i (i + 1) 1.0
  done;
  let b = Array.init n (fun i -> float_of_int (i + 1)) in
  let xd = Lu.solve (Lu.decompose a) b in
  let xb = Banded.solve (Banded.decompose (Banded.of_matrix a)) b in
  Array.iteri
    (fun i v -> check_close (Printf.sprintf "x%d" i) v xb.(i) ~tol:1e-10)
    xd;
  (* in-place solve aliasing b and x *)
  let f = Banded.decompose (Banded.of_matrix a) in
  Banded.solve_into f ~b ~x:b;
  Array.iteri
    (fun i v -> check_close (Printf.sprintf "aliased x%d" i) v b.(i) ~tol:1e-10)
    xd

let test_banded_singular () =
  let s = Banded.create_storage ~n:3 ~kl:1 ~ku:1 in
  (* column 1 identically zero *)
  Banded.set s 0 0 1.0;
  Banded.set s 2 2 1.0;
  Banded.set s 2 1 0.0;
  Alcotest.check_raises "singular" Banded.Singular (fun () ->
      ignore (Banded.decompose s))

let test_banded_of_matrix_rejects_tight_band () =
  let a = random_banded (lcg 7) 6 2 2 in
  Alcotest.check_raises "band too narrow"
    (Invalid_argument "Banded.of_matrix: nonzero outside the requested band")
    (fun () -> ignore (Banded.of_matrix ~kl:1 ~ku:1 a))

let prop_banded_roundtrip =
  QCheck2.Test.make ~name:"banded: A x = b solved correctly" ~count:200
    QCheck2.Gen.(
      triple (int_range 2 30) (int_range 0 3) (int_range 0 3))
    (fun (n, kl0, ku0) ->
      let kl = Int.min kl0 (n - 1) and ku = Int.min ku0 (n - 1) in
      let rand = lcg ((n * 1000) + (kl * 10) + ku) in
      let a = random_banded rand n kl ku in
      let b = Array.init n (fun _ -> rand ()) in
      let x = Banded.solve (Banded.decompose (Banded.of_matrix a)) b in
      let r = Matrix.mul_vec a x in
      Array.for_all2 (fun u v -> Float.abs (u -. v) < 1e-8) r b)

(* ---------------- Cbanded ---------------- *)

let random_cbanded rand n kl ku =
  let a = Cmatrix.create n n in
  for i = 0 to n - 1 do
    for j = Int.max 0 (i - kl) to Int.min (n - 1) (i + ku) do
      Cmatrix.set a i j (Cx.make (rand ()) (rand ()))
    done;
    Cmatrix.add_to a i i (Cx.of_float (2.0 *. float_of_int (kl + ku + 1)))
  done;
  a

let cbanded_of_cmatrix ~kl ~ku a =
  let n = Cmatrix.rows a in
  let s = Cbanded.create_storage ~n ~kl ~ku in
  for i = 0 to n - 1 do
    for j = Int.max 0 (i - kl) to Int.min (n - 1) (i + ku) do
      Cbanded.set s i j (Cmatrix.get a i j)
    done
  done;
  s

let check_cx msg expected actual =
  check_close (msg ^ " re") (Cx.re expected) (Cx.re actual) ~tol:1e-10;
  check_close (msg ^ " im") (Cx.im expected) (Cx.im actual) ~tol:1e-10

let test_cbanded_storage () =
  let s = Cbanded.create_storage ~n:5 ~kl:1 ~ku:2 in
  Cbanded.set s 2 1 (Cx.make 4.0 1.0);
  Cbanded.add_to s 2 1 (Cx.make 0.5 (-0.5));
  check_cx "in-band entry" (Cx.make 4.5 0.5) (Cbanded.get s 2 1);
  check_cx "outside band reads 0" Cx.zero (Cbanded.get s 4 0);
  Alcotest.check_raises "outside band write"
    (Invalid_argument "Cbanded: (4,0) outside band (kl=1, ku=2)") (fun () ->
      Cbanded.set s 4 0 Cx.one);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Cbanded: index (5,0) out of 5x5") (fun () ->
      ignore (Cbanded.get s 5 0));
  let d = Cbanded.to_dense s in
  check_cx "dense round-trip" (Cx.make 4.5 0.5) (Cmatrix.get d 2 1)

let test_cbanded_vs_clu_random () =
  let rand = lcg 20260807 in
  List.iter
    (fun (n, kl, ku) ->
      let a = random_cbanded rand n kl ku in
      let b = Array.init n (fun _ -> Cx.make (rand ()) (rand ())) in
      let xd = Clu.solve (Clu.decompose a) b in
      let f = Cbanded.decompose (cbanded_of_cmatrix ~kl ~ku a) in
      Alcotest.(check int) "size" n (Cbanded.size f);
      let xb = Cbanded.solve f b in
      Array.iteri
        (fun i v ->
          check_cx (Printf.sprintf "n=%d kl=%d ku=%d x%d" n kl ku i) v xb.(i))
        xd)
    [ (1, 0, 0); (4, 1, 1); (7, 2, 1); (12, 1, 3); (25, 2, 2); (40, 3, 3) ]

let test_cbanded_pivoting () =
  (* dominant subdiagonal: partial pivoting must swap on every column *)
  let n = 8 in
  let a = Cmatrix.create n n in
  for i = 0 to n - 1 do
    Cmatrix.set a i i (Cx.make 0.1 0.05);
    if i > 0 then Cmatrix.set a i (i - 1) (Cx.make 5.0 (-2.0));
    if i < n - 1 then Cmatrix.set a i (i + 1) (Cx.make 1.0 0.5)
  done;
  let b = Array.init n (fun i -> Cx.make (float_of_int (i + 1)) 1.0) in
  let xd = Clu.solve (Clu.decompose a) b in
  let xb =
    Cbanded.solve (Cbanded.decompose (cbanded_of_cmatrix ~kl:1 ~ku:1 a)) b
  in
  Array.iteri (fun i v -> check_cx (Printf.sprintf "x%d" i) v xb.(i)) xd

let test_cbanded_singular () =
  let s = Cbanded.create_storage ~n:3 ~kl:1 ~ku:1 in
  Cbanded.set s 0 0 Cx.one;
  Cbanded.set s 2 2 Cx.one;
  Alcotest.check_raises "singular" Cbanded.Singular (fun () ->
      ignore (Cbanded.decompose s))

(* ---------------- Solver ---------------- *)

let tridiag_adjacency n =
  Array.init n (fun i ->
      List.filter (fun j -> j >= 0 && j < n) [ i - 1; i + 1 ])

let test_solver_plan () =
  let small = Solver.plan (tridiag_adjacency 5) in
  Alcotest.(check bool) "small system stays dense" false
    small.Solver.use_banded;
  let big = Solver.plan (tridiag_adjacency 30) in
  Alcotest.(check bool) "ladder goes banded" true big.Solver.use_banded;
  Alcotest.(check bool) "narrow band" true (big.Solver.kl + big.Solver.ku <= 4);
  let forced = Solver.plan ~backend:Solver.Dense (tridiag_adjacency 30) in
  Alcotest.(check bool) "Dense override" false forced.Solver.use_banded;
  let forced_b = Solver.plan ~backend:Solver.Banded (tridiag_adjacency 5) in
  Alcotest.(check bool) "Banded override" true forced_b.Solver.use_banded;
  Alcotest.(check bool) "banded_pays heuristic" true
    (Solver.banded_pays ~n:30 ~kl:2 ~ku:2
    && not (Solver.banded_pays ~n:8 ~kl:1 ~ku:1))

(* factor/solve under both backends against a dense Lu oracle, filling
   through natural indices *)
let test_solver_factor_solve () =
  let rand = lcg 31337 in
  let n = 20 in
  let a = random_banded rand n 2 2 in
  let adj =
    Array.init n (fun i ->
        List.filter
          (fun j -> j >= 0 && j < n && j <> i)
          (List.init 5 (fun k -> i - 2 + k)))
  in
  let b = Array.init n (fun _ -> rand ()) in
  let fill add =
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        let v = Matrix.get a i j in
        if v <> 0.0 then add i j v
      done
    done
  in
  let oracle = Lu.solve (Lu.decompose (Matrix.copy a)) b in
  List.iter
    (fun backend ->
      let p = Solver.plan ~backend adj in
      let f = Solver.factor p ~fill in
      let x = Solver.solve p f b in
      Array.iteri
        (fun i v -> check_close (Printf.sprintf "x%d" i) v x.(i) ~tol:1e-10)
        oracle)
    [ Solver.Dense; Solver.Banded; Solver.Sparse; Solver.Auto ]

let test_solver_cfactor_csolve () =
  let rand = lcg 4242 in
  let n = 20 in
  let a = random_cbanded rand n 2 2 in
  let adj =
    Array.init n (fun i ->
        List.filter
          (fun j -> j >= 0 && j < n && j <> i)
          (List.init 5 (fun k -> i - 2 + k)))
  in
  let b = Array.init n (fun _ -> Cx.make (rand ()) (rand ())) in
  let fill add =
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        let v = Cmatrix.get a i j in
        if Cx.norm v <> 0.0 then add i j v
      done
    done
  in
  let oracle = Clu.solve (Clu.decompose a) b in
  List.iter
    (fun backend ->
      let p = Solver.plan ~backend adj in
      let f = Solver.cfactor p ~fill in
      let x = Solver.csolve p f b in
      Array.iteri
        (fun i v -> check_cx (Printf.sprintf "x%d" i) v x.(i))
        oracle)
    [ Solver.Dense; Solver.Banded; Solver.Sparse; Solver.Auto ]

(* ---------------- Roots ---------------- *)

let test_bisect () =
  let f x = (x *. x) -. 2.0 in
  check_close "sqrt2" (Float.sqrt 2.0) (Roots.bisect f 0.0 2.0)

let test_brent () =
  let f x = cos x -. x in
  check_close "dottie" 0.7390851332151607 (Roots.brent f 0.0 1.0)

let test_brent_no_bracket () =
  Alcotest.check_raises "no bracket" Roots.No_bracket (fun () ->
      ignore (Roots.brent (fun x -> (x *. x) +. 1.0) (-1.0) 1.0))

let test_newton () =
  let f x = (x *. x *. x) -. 8.0 in
  let df x = 3.0 *. x *. x in
  check_close "cbrt8" 2.0 (Roots.newton ~f ~df 3.0)

let test_newton_bracketed () =
  (* pathological: newton from midpoint diverges without the bracket *)
  let f x = Float.atan x in
  let df x = 1.0 /. (1.0 +. (x *. x)) in
  check_close "atan root" 0.0 (Roots.newton_bracketed ~f ~df (-5.0) 8.0)
    ~tol:1e-9

let test_bracket_first () =
  let f t = Float.sin t -. 0.5 in
  let lo, hi = Roots.bracket_first f ~t0:0.0 ~dt:0.1 in
  let root = Roots.brent f lo hi in
  check_close "first crossing" (Float.pi /. 6.0) root ~tol:1e-9

let prop_brent_finds_root =
  QCheck2.Test.make ~name:"brent: f(root) ~ 0 for random cubics" ~count:200
    QCheck2.Gen.(triple (float_range (-3.0) 3.0) (float_range (-3.0) 3.0)
                   (float_range 0.5 3.0))
    (fun (a, b, c) ->
      (* cubic x^3 + a x^2 + b x - c^3 has a real root; bracket it *)
      let f x = (x ** 3.0) +. (a *. x *. x) +. (b *. x) -. (c ** 3.0) in
      let hi =
        1.0 +. Float.abs a +. Float.abs b +. Float.abs (c ** 3.0)
      in
      let root = Roots.brent f (-.hi) hi in
      Float.abs (f root) < 1e-6 *. (1.0 +. (hi ** 3.0)))

(* ---------------- Newton (multi-dim) ---------------- *)

let test_newton2d () =
  (* intersection of circle x^2+y^2=4 and line y=x: (sqrt2, sqrt2) *)
  let f x = [| (x.(0) *. x.(0)) +. (x.(1) *. x.(1)) -. 4.0; x.(1) -. x.(0) |] in
  let r = Newton.solve ~f ~x0:[| 1.0; 0.5 |] () in
  Alcotest.(check bool) "converged" true r.Newton.converged;
  check_close "x" (Float.sqrt 2.0) r.Newton.x.(0) ~tol:1e-7;
  check_close "y" (Float.sqrt 2.0) r.Newton.x.(1) ~tol:1e-7

let test_newton2d_bounds () =
  (* same system but clamped away from the negative branch *)
  let f x = [| (x.(0) *. x.(0)) -. 4.0; x.(1) -. 1.0 |] in
  let r =
    Newton.solve ~lower:[| 0.1; 0.1 |] ~f ~x0:[| 0.5; 0.5 |] ()
  in
  Alcotest.(check bool) "converged" true r.Newton.converged;
  check_close "positive root" 2.0 r.Newton.x.(0) ~tol:1e-7

let test_newton_analytic_jacobian () =
  let f x = [| Float.exp x.(0) -. 2.0 |] in
  let jacobian x = Matrix.of_arrays [| [| Float.exp x.(0) |] |] in
  let r = Newton.solve ~jacobian ~f ~x0:[| 0.0 |] () in
  check_close "ln 2" (Float.log 2.0) r.Newton.x.(0) ~tol:1e-9

(* ---------------- Nelder-Mead ---------------- *)

let test_nelder_mead_rosenbrock () =
  let f x =
    let a = 1.0 -. x.(0) and b = x.(1) -. (x.(0) *. x.(0)) in
    (a *. a) +. (100.0 *. b *. b)
  in
  let r = Nelder_mead.minimize ~max_iter:5000 ~f ~x0:[| -1.2; 1.0 |] () in
  check_close "x" 1.0 r.Nelder_mead.x.(0) ~tol:1e-4;
  check_close "y" 1.0 r.Nelder_mead.x.(1) ~tol:1e-4

let test_nelder_mead_rejects_nan_region () =
  (* objective undefined (nan) for x < 0; minimum at x = 1 *)
  let f x = if x.(0) < 0.0 then nan else (x.(0) -. 1.0) ** 2.0 in
  let r = Nelder_mead.minimize ~f ~x0:[| 0.5 |] () in
  check_close "min" 1.0 r.Nelder_mead.x.(0) ~tol:1e-5

let prop_nelder_mead_quadratic =
  QCheck2.Test.make ~name:"nelder-mead: finds quadratic bowl minimum"
    ~count:100
    QCheck2.Gen.(pair (float_range (-5.0) 5.0) (float_range (-5.0) 5.0))
    (fun (cx, cy) ->
      let f x = ((x.(0) -. cx) ** 2.0) +. (2.0 *. ((x.(1) -. cy) ** 2.0)) in
      let r = Nelder_mead.minimize ~f ~x0:[| 0.0; 0.0 |] () in
      Float.abs (r.Nelder_mead.x.(0) -. cx) < 1e-3
      && Float.abs (r.Nelder_mead.x.(1) -. cy) < 1e-3)

(* ---------------- Polynomial ---------------- *)

let test_poly_eval () =
  let p = Polynomial.of_coeffs [| 1.0; -3.0; 2.0 |] in
  (* 1 - 3x + 2x^2 *)
  check_float "p(0)" 1.0 (Polynomial.eval p 0.0);
  check_float "p(1)" 0.0 (Polynomial.eval p 1.0);
  check_float "p(2)" 3.0 (Polynomial.eval p 2.0);
  Alcotest.(check int) "degree" 2 (Polynomial.degree p)

let test_poly_trim_zero () =
  let p = Polynomial.of_coeffs [| 1.0; 2.0; 0.0; 0.0 |] in
  Alcotest.(check int) "trimmed degree" 1 (Polynomial.degree p);
  let z = Polynomial.of_coeffs [| 0.0; 0.0 |] in
  Alcotest.(check int) "zero poly degree" (-1) (Polynomial.degree z)

let test_poly_derivative_mul () =
  let p = Polynomial.of_coeffs [| 1.0; 1.0 |] in
  (* (1+x)^2 = 1 + 2x + x^2 *)
  let sq = Polynomial.mul p p in
  Alcotest.(check bool)
    "square" true
    (Polynomial.equal sq (Polynomial.of_coeffs [| 1.0; 2.0; 1.0 |]));
  let d = Polynomial.derivative sq in
  Alcotest.(check bool)
    "derivative" true
    (Polynomial.equal d (Polynomial.of_coeffs [| 2.0; 2.0 |]))

let test_quadratic_roots_real () =
  let r1, r2 = Polynomial.quadratic_roots ~a:1.0 ~b:(-5.0) ~c:6.0 in
  check_close "r1" 2.0 (Cx.re r1);
  check_close "r2" 3.0 (Cx.re r2)

let test_quadratic_roots_complex () =
  let r1, r2 = Polynomial.quadratic_roots ~a:1.0 ~b:2.0 ~c:5.0 in
  check_close "re" (-1.0) (Cx.re r1);
  check_close "im1" (-2.0) (Cx.im r1);
  check_close "im2" 2.0 (Cx.im r2)

let test_quadratic_cancellation () =
  (* b^2 >> 4ac: the naive formula loses the small root; roots are
     sorted ascending so the small one (-1e-8) comes second *)
  let r1, r2 = Polynomial.quadratic_roots ~a:1.0 ~b:1e8 ~c:1.0 in
  check_close "large root" (-1e8) (Cx.re r1) ~tol:1e-6;
  check_close "small root" (-1e-8) (Cx.re r2) ~tol:1e-6

let test_poly_roots_cubic () =
  (* (x-1)(x-2)(x-3) = -6 + 11x - 6x^2 + x^3 *)
  let p = Polynomial.of_coeffs [| -6.0; 11.0; -6.0; 1.0 |] in
  match Polynomial.roots p with
  | [ r1; r2; r3 ] ->
      check_close "r1" 1.0 (Cx.re r1) ~tol:1e-8;
      check_close "r2" 2.0 (Cx.re r2) ~tol:1e-8;
      check_close "r3" 3.0 (Cx.re r3) ~tol:1e-8
  | rs -> Alcotest.failf "expected 3 roots, got %d" (List.length rs)

let prop_poly_roots_evaluate_to_zero =
  QCheck2.Test.make ~name:"polynomial roots satisfy p(r) ~ 0" ~count:100
    QCheck2.Gen.(
      array_size (return 4) (float_range (-3.0) 3.0))
    (fun coeffs ->
      let p = Polynomial.of_coeffs (Array.append coeffs [| 1.0 |]) in
      let rs = Polynomial.roots p in
      List.for_all
        (fun r -> Cx.norm (Polynomial.eval_cx p r) < 1e-6)
        rs)

(* ---------------- Interp ---------------- *)

let test_interp_linear () =
  let xs = [| 0.0; 1.0; 2.0 |] and ys = [| 0.0; 10.0; 0.0 |] in
  check_float "mid" 5.0 (Interp.linear ~xs ~ys 0.5);
  check_float "exact" 10.0 (Interp.linear ~xs ~ys 1.0);
  check_float "clamp left" 0.0 (Interp.linear ~xs ~ys (-1.0));
  check_float "clamp right" 0.0 (Interp.linear ~xs ~ys 5.0)

let test_interp_crossing () =
  check_float "crossing" 0.75
    (Interp.crossing ~x0:0.5 ~y0:0.0 ~x1:1.0 ~y1:2.0 ~level:1.0)

let test_interp_bracket () =
  let xs = [| 0.0; 1.0; 4.0; 9.0 |] in
  Alcotest.(check int) "inside" 1 (Interp.bracket_index xs 2.0);
  Alcotest.(check int) "below" 0 (Interp.bracket_index xs (-5.0));
  Alcotest.(check int) "above" 2 (Interp.bracket_index xs 100.0)

(* ---------------- Quadrature ---------------- *)

let test_quadrature_polynomial () =
  (* integral of x^2 over [0,3] = 9; simpson is exact for cubics *)
  check_close "simpson" 9.0 (Quadrature.simpson (fun x -> x *. x) 0.0 3.0);
  check_close "adaptive" 9.0
    (Quadrature.adaptive_simpson (fun x -> x *. x) 0.0 3.0)

let test_quadrature_trig () =
  check_close "sin over half period" 2.0
    (Quadrature.adaptive_simpson sin 0.0 Float.pi)
    ~tol:1e-9;
  check_close "trapezoid sin" 2.0 (Quadrature.trapezoid ~n:2000 sin 0.0 Float.pi)
    ~tol:1e-5

let test_quadrature_sampled () =
  let xs = Array.init 101 (fun i -> float_of_int i /. 100.0) in
  let ys = Array.map (fun x -> x) xs in
  check_close "linear ramp" 0.5 (Quadrature.trapezoid_sampled ~xs ~ys)

(* ---------------- Stats ---------------- *)

let test_stats_basic () =
  let a = [| 1.0; 2.0; 3.0; 4.0 |] in
  check_float "mean" 2.5 (Stats.mean a);
  check_float "var" 1.25 (Stats.variance a);
  check_float "min" 1.0 (Stats.min a);
  check_float "max" 4.0 (Stats.max a);
  check_close "rms" (Float.sqrt 7.5) (Stats.rms a)

let test_stats_percentile () =
  let a = [| 4.0; 1.0; 3.0; 2.0 |] in
  check_float "median" 2.5 (Stats.percentile a 50.0);
  check_float "p0" 1.0 (Stats.percentile a 0.0);
  check_float "p100" 4.0 (Stats.percentile a 100.0)

let test_stats_rms_sampled () =
  (* RMS of sin over one full period = 1/sqrt(2) *)
  let n = 4001 in
  let xs = Array.init n (fun i -> float_of_int i /. float_of_int (n - 1) *. 2.0 *. Float.pi) in
  let ys = Array.map sin xs in
  check_close "sin rms" (1.0 /. Float.sqrt 2.0) (Stats.rms_sampled ~xs ~ys)
    ~tol:1e-5

let test_stats_empty () =
  Alcotest.check_raises "empty mean" (Invalid_argument "Stats.mean: empty array")
    (fun () -> ignore (Stats.mean [||]));
  Alcotest.check_raises "empty rms_sampled"
    (Invalid_argument "Stats.rms_sampled: empty array") (fun () ->
      ignore (Stats.rms_sampled ~xs:[||] ~ys:[||]));
  Alcotest.check_raises "mismatched rms_sampled"
    (Invalid_argument "Stats.rms_sampled: xs and ys length mismatch")
    (fun () -> ignore (Stats.rms_sampled ~xs:[| 0.0; 1.0 |] ~ys:[| 0.0 |]))

(* ---------------- Fdiff ---------------- *)

let test_fdiff_scalar () =
  check_close "d/dx x^3 at 2" 12.0 (Fdiff.central (fun x -> x ** 3.0) 2.0)
    ~tol:1e-6;
  check_close "d/dx sin at 0" 1.0 (Fdiff.central sin 0.0) ~tol:1e-9

let test_fdiff_jacobian () =
  let f x = [| x.(0) *. x.(1); x.(0) +. x.(1) |] in
  let j = Fdiff.jacobian f [| 2.0; 3.0 |] in
  check_close "df0/dx0" 3.0 (Matrix.get j 0 0) ~tol:1e-6;
  check_close "df0/dx1" 2.0 (Matrix.get j 0 1) ~tol:1e-6;
  check_close "df1/dx0" 1.0 (Matrix.get j 1 0) ~tol:1e-6;
  check_close "df1/dx1" 1.0 (Matrix.get j 1 1) ~tol:1e-6

(* ---------------- Laplace ---------------- *)

let test_laplace_exponential () =
  (* L^-1[1/(s+a)] = e^{-a t} *)
  let a = 3.0 in
  let fhat s = Cx.inv Cx.(s +: of_float a) in
  List.iter
    (fun t ->
      check_close
        (Printf.sprintf "exp decay at %g" t)
        (Float.exp (-.a *. t))
        (Laplace.invert fhat t) ~tol:1e-6)
    [ 0.1; 0.5; 1.0; 2.0 ]

let test_laplace_step_of_first_order () =
  (* step response of 1/(1 + s tau): 1 - e^{-t/tau} *)
  let tau = 2.0 in
  let h s = Cx.inv Cx.(of_float 1.0 +: scale tau s) in
  List.iter
    (fun t ->
      check_close
        (Printf.sprintf "rc step at %g" t)
        (1.0 -. Float.exp (-.t /. tau))
        (Laplace.step_response h t) ~tol:1e-6)
    [ 0.5; 1.0; 4.0 ]

let test_laplace_oscillatory () =
  (* L^-1[w/(s^2+w^2)] = sin(w t) *)
  let w = 2.0 in
  let fhat s = Cx.(of_float w /: ((s *: s) +: of_float (w *. w))) in
  List.iter
    (fun t ->
      check_close
        (Printf.sprintf "sin at %g" t)
        (Float.sin (w *. t))
        (Laplace.invert ~m:48 fhat t) ~tol:1e-4)
    [ 0.3; 1.0; 2.0 ]

(* ---------------- Cmatrix / Clu ---------------- *)

let test_cmatrix_basic () =
  let m = Cmatrix.init 2 3 (fun i j -> Cx.make (float_of_int i) (float_of_int j)) in
  Alcotest.(check int) "rows" 2 (Cmatrix.rows m);
  Alcotest.(check int) "cols" 3 (Cmatrix.cols m);
  check_close "get re" 1.0 (Cx.re (Cmatrix.get m 1 2));
  check_close "get im" 2.0 (Cx.im (Cmatrix.get m 1 2));
  let t = Cmatrix.transpose m in
  check_close "transpose" 2.0 (Cx.im (Cmatrix.get t 2 1));
  let r = Cmatrix.of_matrix (Matrix.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |]) in
  let y = Cmatrix.mul_vec r [| Cx.one; Cx.i |] in
  check_close "mul_vec re" 1.0 (Cx.re y.(0));
  check_close "mul_vec im" 2.0 (Cx.im y.(0));
  Alcotest.check_raises "out of bounds"
    (Invalid_argument "Cmatrix: index (2,0) out of 2x3") (fun () ->
      ignore (Cmatrix.get m 2 0))

let test_clu_solve_roundtrip () =
  (* complex 3x3: solve, then verify A x = b *)
  let a =
    Cmatrix.init 3 3 (fun i j ->
        Cx.make
          (float_of_int ((i * 3) + j + 1))
          (if i = j then 1.0 else -0.5))
  in
  let b = [| Cx.one; Cx.i; Cx.make 2.0 (-1.0) |] in
  let x = Clu.solve_matrix a b in
  let ax = Cmatrix.mul_vec a x in
  Array.iteri
    (fun i bi ->
      check_close ~tol:1e-12 "Ax=b re" (Cx.re bi) (Cx.re ax.(i));
      check_close ~tol:1e-12 "Ax=b im" (Cx.im bi) (Cx.im ax.(i)))
    b;
  (* solve_into matches solve *)
  let lu = Clu.decompose a in
  let x2 = Array.make 3 Cx.zero in
  Clu.solve_into lu ~b ~x:x2;
  Array.iteri
    (fun i xi -> check_close "solve_into" (Cx.re xi) (Cx.re x2.(i)))
    x

let test_clu_singular () =
  let a = Cmatrix.init 2 2 (fun _ j -> if j = 0 then Cx.one else Cx.i) in
  Alcotest.check_raises "rank-1 matrix" Clu.Singular (fun () ->
      ignore (Clu.decompose a))

(* ---------------- Eig ---------------- *)

let sorted_re_im zs =
  let l = Array.to_list zs in
  List.sort
    (fun a b ->
      let c = Float.compare (Cx.re a) (Cx.re b) in
      if c <> 0 then c else Float.compare (Cx.im a) (Cx.im b))
    l

let test_eig_real_spectrum () =
  (* companion matrix of (x-1)(x-2)(x-3) = x^3 - 6x^2 + 11x - 6 *)
  let a =
    Matrix.of_arrays
      [| [| 6.0; -11.0; 6.0 |]; [| 1.0; 0.0; 0.0 |]; [| 0.0; 1.0; 0.0 |] |]
  in
  match sorted_re_im (Eig.eigenvalues a) with
  | [ e1; e2; e3 ] ->
      check_close ~tol:1e-9 "e1" 1.0 (Cx.re e1);
      check_close ~tol:1e-9 "e2" 2.0 (Cx.re e2);
      check_close ~tol:1e-9 "e3" 3.0 (Cx.re e3);
      List.iter
        (fun e -> check_close ~tol:1e-9 "real" 0.0 (Cx.im e))
        [ e1; e2; e3 ]
  | _ -> Alcotest.fail "expected 3 eigenvalues"

let test_eig_conjugate_pair () =
  (* damped rotation: eigenvalues -0.1 +/- 2i *)
  let a = Matrix.of_arrays [| [| -0.1; -2.0 |]; [| 2.0; -0.1 |] |] in
  match sorted_re_im (Eig.eigenvalues a) with
  | [ e1; e2 ] ->
      check_close ~tol:1e-9 "re" (-0.1) (Cx.re e1);
      check_close ~tol:1e-9 "im pair" (-2.0) (Float.min (Cx.im e1) (Cx.im e2));
      check_close ~tol:1e-9 "im pair" 2.0 (Float.max (Cx.im e1) (Cx.im e2))
  | _ -> Alcotest.fail "expected 2 eigenvalues"

(* ---------------- Arnoldi ---------------- *)

let test_arnoldi_orthonormal () =
  (* nonsymmetric operator; the basis must still be orthonormal *)
  let a =
    Matrix.of_arrays
      [|
        [| 2.0; 1.0; 0.0; 0.0 |];
        [| 0.5; 2.0; 1.0; 0.0 |];
        [| 0.0; 0.5; 2.0; 1.0 |];
        [| 0.0; 0.0; 0.5; 2.0 |];
      |]
  in
  let v =
    Arnoldi.block ~mul:(Matrix.mul_vec a) ~start:[| [| 1.0; 1.0; 1.0; 1.0 |] |] 4
  in
  Alcotest.(check int) "full dimension" 4 (Array.length v);
  Array.iteri
    (fun i vi ->
      Array.iteri
        (fun j vj ->
          let d = Array.fold_left ( +. ) 0.0 (Array.map2 ( *. ) vi vj) in
          check_close ~tol:1e-10
            (Printf.sprintf "V%d . V%d" i j)
            (if i = j then 1.0 else 0.0)
            d)
        v)
    v

let test_arnoldi_deflation () =
  (* start vector is an eigenvector: the Krylov space is 1-dimensional
     no matter how many columns are requested *)
  let a = Matrix.of_arrays [| [| 3.0; 0.0 |]; [| 0.0; 5.0 |] |] in
  let v = Arnoldi.block ~mul:(Matrix.mul_vec a) ~start:[| [| 1.0; 0.0 |] |] 4 in
  Alcotest.(check int) "invariant subspace" 1 (Array.length v)

(* ---------------- Rcm ---------------- *)

let test_rcm_chain () =
  (* a path graph numbered adversarially still yields bandwidth 1 *)
  let n = 9 in
  let shuffled = [| 4; 7; 1; 8; 0; 3; 6; 2; 5 |] in
  (* path over shuffled labels: shuffled.(k) -- shuffled.(k+1) *)
  let adj = Array.make n [] in
  for k = 0 to n - 2 do
    let u = shuffled.(k) and v = shuffled.(k + 1) in
    adj.(u) <- v :: adj.(u);
    adj.(v) <- u :: adj.(v)
  done;
  let perm = Rcm.permutation adj in
  (* a valid permutation of 0..n-1 *)
  let seen = Array.make n false in
  Array.iter (fun p -> seen.(p) <- true) perm;
  Alcotest.(check bool) "is a permutation" true (Array.for_all Fun.id seen);
  Alcotest.(check int) "path bandwidth" 1 (Rcm.bandwidth adj perm)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "rlc_numerics"
    [
      ( "cx",
        [
          Alcotest.test_case "arithmetic" `Quick test_cx_ops;
          Alcotest.test_case "sqrt and exp" `Quick test_cx_sqrt_exp;
          Alcotest.test_case "is_real / checked" `Quick test_cx_is_real;
          Alcotest.test_case "is_finite" `Quick test_cx_finite;
        ] );
      ( "matrix",
        [
          Alcotest.test_case "create/get/set" `Quick test_matrix_basic;
          Alcotest.test_case "multiplication" `Quick test_matrix_mul;
          Alcotest.test_case "identity & transpose" `Quick
            test_matrix_identity_transpose;
          Alcotest.test_case "ragged rejected" `Quick test_matrix_ragged;
        ] );
      ( "lu",
        [
          Alcotest.test_case "solve 3x3" `Quick test_lu_solve;
          Alcotest.test_case "det & inverse" `Quick test_lu_det_inverse;
          Alcotest.test_case "singular detection" `Quick test_lu_singular;
          Alcotest.test_case "pivoting" `Quick test_lu_pivoting;
        ] );
      qsuite "lu-properties" [ prop_lu_roundtrip ];
      ( "banded",
        [
          Alcotest.test_case "storage & round-trip" `Quick test_banded_storage;
          Alcotest.test_case "bandwidth detection" `Quick test_banded_bandwidth;
          Alcotest.test_case "vs dense LU" `Quick test_banded_vs_dense_random;
          Alcotest.test_case "pivoting & aliased solve" `Quick
            test_banded_pivoting;
          Alcotest.test_case "singular detection" `Quick test_banded_singular;
          Alcotest.test_case "narrow band rejected" `Quick
            test_banded_of_matrix_rejects_tight_band;
        ] );
      qsuite "banded-properties" [ prop_banded_roundtrip ];
      ( "cbanded",
        [
          Alcotest.test_case "storage & round-trip" `Quick test_cbanded_storage;
          Alcotest.test_case "vs dense complex LU" `Quick
            test_cbanded_vs_clu_random;
          Alcotest.test_case "pivoting" `Quick test_cbanded_pivoting;
          Alcotest.test_case "singular detection" `Quick test_cbanded_singular;
        ] );
      ( "solver",
        [
          Alcotest.test_case "plan & backend choice" `Quick test_solver_plan;
          Alcotest.test_case "real factor/solve vs dense" `Quick
            test_solver_factor_solve;
          Alcotest.test_case "complex factor/solve vs dense" `Quick
            test_solver_cfactor_csolve;
        ] );
      ( "roots",
        [
          Alcotest.test_case "bisect" `Quick test_bisect;
          Alcotest.test_case "brent" `Quick test_brent;
          Alcotest.test_case "brent no bracket" `Quick test_brent_no_bracket;
          Alcotest.test_case "newton" `Quick test_newton;
          Alcotest.test_case "newton bracketed" `Quick test_newton_bracketed;
          Alcotest.test_case "bracket_first" `Quick test_bracket_first;
        ] );
      qsuite "roots-properties" [ prop_brent_finds_root ];
      ( "newton-nd",
        [
          Alcotest.test_case "2d circle/line" `Quick test_newton2d;
          Alcotest.test_case "bound clamping" `Quick test_newton2d_bounds;
          Alcotest.test_case "analytic jacobian" `Quick
            test_newton_analytic_jacobian;
        ] );
      ( "nelder-mead",
        [
          Alcotest.test_case "rosenbrock" `Quick test_nelder_mead_rosenbrock;
          Alcotest.test_case "nan region" `Quick
            test_nelder_mead_rejects_nan_region;
        ] );
      qsuite "nelder-mead-properties" [ prop_nelder_mead_quadratic ];
      ( "polynomial",
        [
          Alcotest.test_case "eval & degree" `Quick test_poly_eval;
          Alcotest.test_case "trim & zero" `Quick test_poly_trim_zero;
          Alcotest.test_case "derivative & mul" `Quick
            test_poly_derivative_mul;
          Alcotest.test_case "quadratic real" `Quick test_quadratic_roots_real;
          Alcotest.test_case "quadratic complex" `Quick
            test_quadratic_roots_complex;
          Alcotest.test_case "quadratic cancellation" `Quick
            test_quadratic_cancellation;
          Alcotest.test_case "cubic roots" `Quick test_poly_roots_cubic;
        ] );
      qsuite "polynomial-properties" [ prop_poly_roots_evaluate_to_zero ];
      ( "interp",
        [
          Alcotest.test_case "linear" `Quick test_interp_linear;
          Alcotest.test_case "crossing" `Quick test_interp_crossing;
          Alcotest.test_case "bracket index" `Quick test_interp_bracket;
        ] );
      ( "quadrature",
        [
          Alcotest.test_case "polynomials" `Quick test_quadrature_polynomial;
          Alcotest.test_case "trig" `Quick test_quadrature_trig;
          Alcotest.test_case "sampled" `Quick test_quadrature_sampled;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basic" `Quick test_stats_basic;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "rms sampled" `Quick test_stats_rms_sampled;
          Alcotest.test_case "empty raises" `Quick test_stats_empty;
        ] );
      ( "fdiff",
        [
          Alcotest.test_case "scalar" `Quick test_fdiff_scalar;
          Alcotest.test_case "jacobian" `Quick test_fdiff_jacobian;
        ] );
      ( "laplace",
        [
          Alcotest.test_case "exponential" `Quick test_laplace_exponential;
          Alcotest.test_case "first-order step" `Quick
            test_laplace_step_of_first_order;
          Alcotest.test_case "oscillatory" `Quick test_laplace_oscillatory;
        ] );
      ( "cmatrix",
        [
          Alcotest.test_case "basics" `Quick test_cmatrix_basic;
          Alcotest.test_case "clu round-trip" `Quick test_clu_solve_roundtrip;
          Alcotest.test_case "clu singular" `Quick test_clu_singular;
        ] );
      ( "eig",
        [
          Alcotest.test_case "real spectrum" `Quick test_eig_real_spectrum;
          Alcotest.test_case "conjugate pair" `Quick test_eig_conjugate_pair;
        ] );
      ( "arnoldi",
        [
          Alcotest.test_case "orthonormal basis" `Quick
            test_arnoldi_orthonormal;
          Alcotest.test_case "deflation" `Quick test_arnoldi_deflation;
        ] );
      ( "rcm",
        [ Alcotest.test_case "path graph" `Quick test_rcm_chain ] );
    ]
