(* Tests for rlc_extraction: geometry, resistance, capacitance and
   inductance models, validated against the paper's Table 1 values and
   basic physical monotonicity. *)

let check_close ?(tol = 1e-9) msg expected actual =
  if
    Float.abs (expected -. actual)
    > tol *. (1.0 +. Float.max (Float.abs expected) (Float.abs actual))
  then
    Alcotest.failf "%s: expected %.15g, got %.15g" msg expected actual

open Rlc_extraction

let g250 = Rlc_tech.Presets.node_250nm.Rlc_tech.Node.geometry
let g100 = Rlc_tech.Presets.node_100nm.Rlc_tech.Node.geometry

(* ---------------- Geometry ---------------- *)

let test_geometry_accessors () =
  check_close "spacing" (Geometry.um 2.0) (Geometry.spacing g250);
  check_close "aspect ratio" 1.25 (Geometry.aspect_ratio g250);
  check_close "area" (Geometry.um 2.0 *. Geometry.um 2.5)
    (Geometry.cross_section_area g250)

let test_geometry_validation () =
  Alcotest.check_raises "bad width"
    (Invalid_argument "Geometry.make: width must be positive") (fun () ->
      ignore
        (Geometry.make ~width:0.0 ~pitch:1.0 ~thickness:1.0 ~t_ins:1.0
           ~eps_r:1.0));
  Alcotest.check_raises "pitch <= width"
    (Invalid_argument "Geometry.make: pitch must exceed width") (fun () ->
      ignore
        (Geometry.make ~width:2e-6 ~pitch:2e-6 ~thickness:1e-6 ~t_ins:1e-6
           ~eps_r:1.0))

(* ---------------- Resistance ---------------- *)

let test_resistance_copper () =
  (* bulk copper 2um x 2.5um: 1.72e-8 / 5e-12 = 3.44 ohm/mm; the paper
     quotes 4.4 ohm/mm (barrier/temperature derating), so our bulk
     value must land within ~30% below it *)
  let r = Resistance.per_length g250 in
  check_close "bulk value" 3.44e3 r ~tol:1e-3;
  Alcotest.(check bool)
    "within 30% of paper" true
    (r > 0.7 *. Rlc_tech.Presets.node_250nm.Rlc_tech.Node.r
    && r < Rlc_tech.Presets.node_250nm.Rlc_tech.Node.r)

let test_resistance_temperature () =
  let r25 = Resistance.with_temperature ~t_celsius:25.0 g250 in
  let r100 = Resistance.with_temperature ~t_celsius:100.0 g250 in
  check_close "25C matches base" (Resistance.per_length g250) r25;
  Alcotest.(check bool) "hotter is more resistive" true (r100 > r25);
  check_close "tcr 3.9e-3" (r25 *. (1.0 +. (3.9e-3 *. 75.0))) r100

let test_resistance_total () =
  check_close "total over 1cm"
    (Resistance.per_length g250 *. 0.01)
    (Resistance.total g250 ~length:0.01)

(* ---------------- Capacitance ---------------- *)

let test_capacitance_orderings () =
  let pp = Capacitance.parallel_plate g250 in
  let ground = Capacitance.meijs_fokkema_ground g250 in
  Alcotest.(check bool) "fringe adds" true (ground > pp);
  let coupling = Capacitance.sakurai_coupling g250 in
  Alcotest.(check bool) "coupling positive" true (coupling > 0.0);
  let quiet = Capacitance.total ~miller:1.0 g250 in
  check_close "total = ground + 2x coupling" (ground +. (2.0 *. coupling))
    quiet

let test_capacitance_vs_paper () =
  (* the analytic models must bracket the paper's FASTCAP value within
     the Miller switching range *)
  List.iter
    (fun (g, c_paper) ->
      let best, worst = Capacitance.miller_range g in
      Alcotest.(check bool)
        (Printf.sprintf "paper %.3g within [%.3g, %.3g]" c_paper best worst)
        true
        (c_paper > best && c_paper < worst))
    [
      (g250, Rlc_tech.Presets.node_250nm.Rlc_tech.Node.c);
      (g100, Rlc_tech.Presets.node_100nm.Rlc_tech.Node.c);
    ]

let test_capacitance_miller_bounds () =
  Alcotest.check_raises "miller > 2"
    (Invalid_argument "Capacitance.total: miller must be in [0,2]") (fun () ->
      ignore (Capacitance.total ~miller:3.0 g250))

let prop_capacitance_monotone_in_eps =
  QCheck2.Test.make ~name:"capacitance scales linearly with eps_r" ~count:100
    QCheck2.Gen.(float_range 1.0 10.0)
    (fun eps_r ->
      let g =
        Geometry.make ~width:2e-6 ~pitch:4e-6 ~thickness:2.5e-6 ~t_ins:14e-6
          ~eps_r
      in
      let g1 =
        Geometry.make ~width:2e-6 ~pitch:4e-6 ~thickness:2.5e-6 ~t_ins:14e-6
          ~eps_r:1.0
      in
      let ratio = Capacitance.total g /. Capacitance.total g1 in
      Float.abs (ratio -. eps_r) < 1e-9 *. eps_r)

let prop_coupling_decreases_with_spacing =
  QCheck2.Test.make ~name:"coupling falls as spacing grows" ~count:100
    QCheck2.Gen.(pair (float_range 2.5 6.0) (float_range 1.05 2.0))
    (fun (pitch_um, factor) ->
      let mk pitch =
        Geometry.make ~width:2e-6 ~pitch:(pitch *. 1e-6) ~thickness:2.5e-6
          ~t_ins:14e-6 ~eps_r:3.3
      in
      Capacitance.sakurai_coupling (mk (pitch_um *. factor))
      < Capacitance.sakurai_coupling (mk pitch_um))

(* ---------------- Inductance ---------------- *)

let test_inductance_microstrip () =
  (* both nodes sit ~15um over the substrate: loop inductance well
     below 1 nH/mm and positive *)
  let l = Inductance.microstrip_loop g250 in
  Alcotest.(check bool) "positive" true (l > 0.0);
  Alcotest.(check bool) "sub nH/mm" true (l < 1e-6)

let test_inductance_partial_self_grows () =
  let l1 = Inductance.partial_self g250 ~length:1e-3 in
  let l2 = Inductance.partial_self g250 ~length:1e-2 in
  Alcotest.(check bool) "grows with length" true (l2 > l1);
  (* logarithmic growth: doubling the length adds ~ mu0/2pi * ln 2 per
     unit length (the wt/3l end-correction is negligible at cm scale) *)
  let l4 = Inductance.partial_self g250 ~length:2e-2 in
  check_close "log growth" (2e-7 *. Float.log 2.0) (l4 -. l2) ~tol:1e-2

let test_inductance_loop_monotone_in_return_distance () =
  let near =
    Inductance.loop_with_return g250 ~return_distance:5e-6 ~length:1e-2
  in
  let far =
    Inductance.loop_with_return g250 ~return_distance:50e-6 ~length:1e-2
  in
  Alcotest.(check bool) "farther return = more inductance" true (far > near)

let test_inductance_worst_case_bound () =
  (* the paper's stated bound: worst case < 5 nH/mm for both nodes at
     their optimal repeater spacing *)
  List.iter
    (fun node ->
      let rc = Rlc_core.Rc_opt.optimize node in
      let l =
        Inductance.worst_case node.Rlc_tech.Node.geometry
          ~length:rc.Rlc_core.Rc_opt.h_opt
      in
      Alcotest.(check bool)
        (node.Rlc_tech.Node.name ^ " worst case < 5 nH/mm")
        true
        (l < 5e-6 && l > 0.1e-6))
    Rlc_tech.Presets.all

let test_inductance_validation () =
  Alcotest.check_raises "bad length"
    (Invalid_argument "Inductance: non-positive length") (fun () ->
      ignore (Inductance.partial_self g250 ~length:0.0));
  Alcotest.check_raises "bad distance"
    (Invalid_argument "Inductance.mutual_parallel: d <= 0") (fun () ->
      ignore (Inductance.mutual_parallel ~d:0.0 ~length:1.0))

let test_mutual_less_than_self () =
  let self = Inductance.partial_self g250 ~length:1e-2 in
  let mutual = Inductance.mutual_parallel ~d:4e-6 ~length:1e-2 in
  Alcotest.(check bool) "mutual < self" true (mutual < self);
  Alcotest.(check bool) "mutual positive" true (mutual > 0.0)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "rlc_extraction"
    [
      ( "geometry",
        [
          Alcotest.test_case "accessors" `Quick test_geometry_accessors;
          Alcotest.test_case "validation" `Quick test_geometry_validation;
        ] );
      ( "resistance",
        [
          Alcotest.test_case "copper bulk" `Quick test_resistance_copper;
          Alcotest.test_case "temperature" `Quick test_resistance_temperature;
          Alcotest.test_case "total" `Quick test_resistance_total;
        ] );
      ( "capacitance",
        [
          Alcotest.test_case "model orderings" `Quick
            test_capacitance_orderings;
          Alcotest.test_case "brackets paper values" `Quick
            test_capacitance_vs_paper;
          Alcotest.test_case "miller bounds" `Quick
            test_capacitance_miller_bounds;
        ] );
      qsuite "capacitance-properties"
        [ prop_capacitance_monotone_in_eps; prop_coupling_decreases_with_spacing ];
      ( "inductance",
        [
          Alcotest.test_case "microstrip loop" `Quick
            test_inductance_microstrip;
          Alcotest.test_case "partial self grows" `Quick
            test_inductance_partial_self_grows;
          Alcotest.test_case "loop monotone in return" `Quick
            test_inductance_loop_monotone_in_return_distance;
          Alcotest.test_case "worst case < 5 nH/mm" `Quick
            test_inductance_worst_case_bound;
          Alcotest.test_case "validation" `Quick test_inductance_validation;
          Alcotest.test_case "mutual < self" `Quick test_mutual_less_than_self;
        ] );
    ]
