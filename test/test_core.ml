(* Tests for rlc_core: the paper's model and optimizer.  Validates the
   Padé coefficients and their analytic derivatives against finite
   differences, the pole algebra against the quadratic formula, the
   delay solver against the step response, the closed-form RC optimum
   against Table 1, and the Newton optimizer against Nelder-Mead. *)

let check_close ?(tol = 1e-9) msg expected actual =
  if
    Float.abs (expected -. actual)
    > tol *. (1.0 +. Float.max (Float.abs expected) (Float.abs actual))
  then
    Alcotest.failf "%s: expected %.15g, got %.15g" msg expected actual

open Rlc_core

let node100 = Rlc_tech.Presets.node_100nm
let node250 = Rlc_tech.Presets.node_250nm

let mk_stage ?(node = node100) ?(l = 1.5e-6) ?(h = 0.012) ?(k = 300.0) () =
  Stage.of_node node ~l ~h ~k

(* random but physical stage generator for property tests *)
let stage_gen =
  QCheck2.Gen.(
    let* l = float_range 0.0 5e-6 in
    let* h = float_range 2e-3 3e-2 in
    let* k = float_range 30.0 1500.0 in
    let* pick = bool in
    return (Stage.of_node (if pick then node100 else node250) ~l ~h ~k))

(* ---------------- Line ---------------- *)

let test_line_z0_lossless () =
  let line = Line.make ~r:4400.0 ~l:1e-6 ~c:100e-12 in
  check_close "z0" 100.0 (Line.z0_lossless line);
  Alcotest.check_raises "rc line has no z0"
    (Invalid_argument "Line.z0_lossless: l = 0") (fun () ->
      ignore (Line.z0_lossless (Line.make ~r:1.0 ~l:0.0 ~c:1e-12)))

let test_line_z0_high_frequency_limit () =
  (* at very high frequency Z0 -> sqrt(l/c) *)
  let line = Line.make ~r:4400.0 ~l:1e-6 ~c:100e-12 in
  let s = Rlc_numerics.Cx.make 0.0 1e15 in
  let z = Line.z0 line s in
  check_close "hf z0" 100.0 (Rlc_numerics.Cx.norm z) ~tol:1e-3

let test_line_propagation_consistency () =
  (* theta * Z0 = r + s l *)
  let line = Line.make ~r:4400.0 ~l:1e-6 ~c:100e-12 in
  let s = Rlc_numerics.Cx.make 1e8 3e9 in
  let open Rlc_numerics.Cx in
  let prod = Line.propagation line s *: Line.z0 line s in
  let expected = of_float 4400.0 +: scale 1e-6 s in
  Alcotest.(check bool) "theta*z0 = r+sl" true (close ~tol:1e-9 prod expected)

let test_line_time_of_flight () =
  let line = Line.make ~r:4400.0 ~l:1e-6 ~c:100e-12 in
  check_close "tof" (0.01 *. Float.sqrt 1e-16) (Line.time_of_flight line ~length:0.01)

(* ---------------- Two_port ---------------- *)

let test_two_port_reciprocity () =
  let line = Line.make ~r:4400.0 ~l:1e-6 ~c:100e-12 in
  let s = Rlc_numerics.Cx.make 1e8 2e9 in
  let m = Two_port.rlc_line line ~length:0.01 ~s in
  let d = Two_port.determinant m in
  check_close "det re" 1.0 (Rlc_numerics.Cx.re d) ~tol:1e-6;
  check_close "det im" 0.0 (Rlc_numerics.Cx.im d) ~tol:1e-6;
  (* symmetric structure: A = D *)
  Alcotest.(check bool)
    "a = d" true
    (Rlc_numerics.Cx.close m.Two_port.a m.Two_port.d)

let test_two_port_cascade_identity () =
  let z = Rlc_numerics.Cx.make 5.0 1.0 in
  let m = Two_port.series_impedance z in
  let c = Two_port.cascade Two_port.identity m in
  Alcotest.(check bool) "id * m = m" true (Rlc_numerics.Cx.close c.Two_port.b z)

let test_two_port_short_line_limit () =
  (* a very short line behaves as series z*len + shunt y*len *)
  let line = Line.make ~r:4400.0 ~l:1e-6 ~c:100e-12 in
  let s = Rlc_numerics.Cx.make 0.0 1e9 in
  let len = 1e-6 in
  let m = Two_port.rlc_line line ~length:len ~s in
  let open Rlc_numerics.Cx in
  let z_expected = scale len (of_float 4400.0 +: scale 1e-6 s) in
  Alcotest.(check bool)
    "b ~ z len" true
    (norm (m.Two_port.b -: z_expected) < 1e-6 *. norm z_expected)

let test_two_port_divider () =
  (* pure resistive divider via two-ports: series R then shunt G;
     Vout/Vin with open output = 1/(1 + R G) *)
  let open Rlc_numerics.Cx in
  let chain =
    Two_port.cascade
      (Two_port.series_impedance (of_float 3.0))
      (Two_port.shunt_admittance (of_float 0.5))
  in
  let h = Two_port.voltage_transfer_into_open chain in
  check_close "divider" 0.4 (re h)

(* ---------------- Transfer ---------------- *)

let test_transfer_dc () =
  let stage = mk_stage () in
  check_close "H(0) = 1" 1.0
    (Rlc_numerics.Cx.re (Transfer.eval stage Rlc_numerics.Cx.zero))

let test_transfer_direct_agreement () =
  let stage = mk_stage () in
  List.iter
    (fun (re, im) ->
      let s = Rlc_numerics.Cx.make re im in
      let a = Transfer.eval stage s in
      let b = Transfer.eval_direct stage s in
      Alcotest.(check bool)
        (Printf.sprintf "H agree at %g+%gi" re im)
        true
        (Rlc_numerics.Cx.close ~tol:1e-9 a b))
    [ (0.0, 1e8); (0.0, 1e10); (1e9, 1e9); (-1e8, 5e9); (1e6, 0.0) ]

let test_transfer_lowpass () =
  let stage = mk_stage () in
  let low = Transfer.magnitude_db stage 1e6 in
  let high = Transfer.magnitude_db stage 1e12 in
  Alcotest.(check bool) "low-frequency flat" true (Float.abs low < 0.5);
  Alcotest.(check bool) "high-frequency rolloff" true (high < -40.0)

let test_transfer_overflow_guard () =
  (* deep right-half-plane: must return 0, not NaN (Talbot contour) *)
  let stage = mk_stage () in
  let h = Transfer.eval stage (Rlc_numerics.Cx.make 1e14 1e14) in
  Alcotest.(check bool) "finite" true (Rlc_numerics.Cx.is_finite h)

(* ---------------- Stage ---------------- *)

let test_stage_accessors () =
  let stage = mk_stage ~k:300.0 () in
  check_close "rs" (7534.0 /. 300.0) (Stage.rs stage);
  check_close "cp" (3.68e-15 *. 300.0) (Stage.cp stage);
  check_close "cl" (0.758e-15 *. 300.0) (Stage.cl stage);
  check_close "total r" (4400.0 *. 0.012) (Stage.total_resistance stage);
  check_close "total c" (123.33e-12 *. 0.012) (Stage.total_capacitance stage);
  check_close "total l" (1.5e-6 *. 0.012) (Stage.total_inductance stage)

let test_stage_with () =
  let stage = mk_stage () in
  check_close "with_h" 0.02 (Stage.with_h stage 0.02).Stage.h;
  check_close "with_k" 99.0 (Stage.with_k stage 99.0).Stage.k;
  check_close "with_l" 2e-6 (Stage.with_l stage 2e-6).Stage.line.Line.l;
  Alcotest.check_raises "bad h" (Invalid_argument "Stage.make: h must be positive")
    (fun () -> ignore (Stage.with_h stage 0.0))

(* ---------------- Pade ---------------- *)

let test_pade_positive () =
  let cs = Pade.coeffs (mk_stage ()) in
  Alcotest.(check bool) "b1 > 0" true (cs.Pade.b1 > 0.0);
  Alcotest.(check bool) "b2 > 0" true (cs.Pade.b2 > 0.0)

let test_pade_b1_equals_elmore () =
  Alcotest.(check bool) "b1 = Elmore delay" true
    (Elmore.equals_b1 (mk_stage ()));
  Alcotest.(check bool) "b1 = Elmore (250nm)" true
    (Elmore.equals_b1 (mk_stage ~node:node250 ~l:0.3e-6 ~h:0.014 ~k:578.0 ()))

let test_pade_b1_independent_of_l () =
  let stage = mk_stage ~l:0.0 () in
  let b1_0 = (Pade.coeffs stage).Pade.b1 in
  let b1_5 = (Pade.coeffs (Stage.with_l stage 5e-6)).Pade.b1 in
  check_close "b1(l=0) = b1(l=5)" b1_0 b1_5

let test_pade_b2_linear_in_l () =
  (* b2 = b2(0) + l (c h^2/2 + C_L h) *)
  let stage = mk_stage ~l:0.0 () in
  let b2_0 = (Pade.coeffs stage).Pade.b2 in
  let l = 2e-6 in
  let b2_l = (Pade.coeffs (Stage.with_l stage l)).Pade.b2 in
  let h = stage.Stage.h in
  let weight = (stage.Stage.line.Line.c *. h *. h /. 2.0) +. (Stage.cl stage *. h) in
  check_close "b2 linear in l" (b2_0 +. (l *. weight)) b2_l ~tol:1e-12

let test_pade_classification () =
  let stage = mk_stage ~l:0.0 ~k:500.0 () in
  Alcotest.(check bool)
    "rc stage overdamped" true
    (Pade.classify (Pade.coeffs stage) = Pade.Overdamped);
  let l_crit = Critical_inductance.of_stage stage in
  Alcotest.(check bool)
    "at l_crit critical" true
    (Pade.classify ~tol:1e-6 (Pade.coeffs (Stage.with_l stage l_crit))
    = Pade.Critically_damped);
  Alcotest.(check bool)
    "above l_crit underdamped" true
    (Pade.classify (Pade.coeffs (Stage.with_l stage (3.0 *. l_crit)))
    = Pade.Underdamped)

let test_pade_zeta_omega () =
  let cs = { Pade.b1 = 2e-10; b2 = 1e-20 } in
  check_close "omega_n" 1e10 (Pade.omega_n cs);
  check_close "zeta" 1.0 (Pade.zeta cs)

let prop_pade_partials_match_fd =
  QCheck2.Test.make ~name:"analytic db/dh,db/dk match finite differences"
    ~count:150 stage_gen (fun stage ->
      let p = Pade.partials stage in
      let b1_of h k =
        (Pade.coeffs (Stage.with_k (Stage.with_h stage h) k)).Pade.b1
      in
      let b2_of h k =
        (Pade.coeffs (Stage.with_k (Stage.with_h stage h) k)).Pade.b2
      in
      let h = stage.Stage.h and k = stage.Stage.k in
      let fd f x0 dx = (f (x0 +. dx) -. f (x0 -. dx)) /. (2.0 *. dx) in
      let ok got expect =
        Float.abs (got -. expect) <= 1e-5 *. (Float.abs expect +. 1e-30)
      in
      ok p.Pade.db1_dh (fd (fun h' -> b1_of h' k) h (h *. 1e-6))
      && ok p.Pade.db1_dk (fd (fun k' -> b1_of h k') k (k *. 1e-6))
      && ok p.Pade.db2_dh (fd (fun h' -> b2_of h' k) h (h *. 1e-6))
      && ok p.Pade.db2_dk (fd (fun k' -> b2_of h k') k (k *. 1e-6)))

(* ---------------- Poles ---------------- *)

let test_poles_satisfy_characteristic () =
  let cs = Pade.coeffs (mk_stage ()) in
  let { Poles.s1; s2 } = Poles.of_coeffs cs in
  let residual s =
    let open Rlc_numerics.Cx in
    of_float 1.0 +: scale cs.Pade.b1 s +: scale cs.Pade.b2 (s *: s)
  in
  Alcotest.(check bool)
    "1 + b1 s1 + b2 s1^2 = 0" true
    (Rlc_numerics.Cx.norm (residual s1) < 1e-9);
  Alcotest.(check bool)
    "1 + b1 s2 + b2 s2^2 = 0" true
    (Rlc_numerics.Cx.norm (residual s2) < 1e-9)

let test_poles_conjugate_when_underdamped () =
  let stage = mk_stage ~l:3e-6 () in
  let cs = Pade.coeffs stage in
  Alcotest.(check bool) "underdamped" true (Pade.classify cs = Pade.Underdamped);
  let { Poles.s1; s2 } = Poles.of_coeffs cs in
  Alcotest.(check bool)
    "conjugate pair" true
    (Rlc_numerics.Cx.close s1 (Rlc_numerics.Cx.conj s2))

let test_poles_stable () =
  Alcotest.(check bool) "stable" true
    (Poles.is_stable (Poles.of_stage (mk_stage ())))

let prop_pole_sensitivities_match_fd =
  QCheck2.Test.make ~name:"pole sensitivities match finite differences"
    ~count:100 stage_gen (fun stage ->
      (* skip stages too close to critical damping where the analytic
         expression is legitimately singular *)
      let cs = Pade.coeffs stage in
      let disc = Pade.discriminant cs in
      if Float.abs disc < 1e-3 *. cs.Pade.b1 *. cs.Pade.b1 then true
      else begin
        let sens = Poles.sensitivities stage in
        let poles_of h k = Poles.of_stage (Stage.with_k (Stage.with_h stage h) k) in
        let h = stage.Stage.h and k = stage.Stage.k in
        let dh = h *. 1e-7 and dk = k *. 1e-7 in
        let fd_s1_dh =
          Rlc_numerics.Cx.scale (1.0 /. (2.0 *. dh))
            (Rlc_numerics.Cx.( -: ) (poles_of (h +. dh) k).Poles.s1
               (poles_of (h -. dh) k).Poles.s1)
        in
        let fd_s2_dk =
          Rlc_numerics.Cx.scale (1.0 /. (2.0 *. dk))
            (Rlc_numerics.Cx.( -: ) (poles_of h (k +. dk)).Poles.s2
               (poles_of h (k -. dk)).Poles.s2)
        in
        let ok a b =
          Rlc_numerics.Cx.norm (Rlc_numerics.Cx.( -: ) a b)
          <= 1e-3 *. (Rlc_numerics.Cx.norm b +. 1.0)
        in
        ok sens.Poles.ds1_dh fd_s1_dh && ok sens.Poles.ds2_dk fd_s2_dk
      end)

(* ---------------- Step response ---------------- *)

let test_step_response_boundary () =
  let cs = Pade.coeffs (mk_stage ()) in
  check_close "v(0) = 0" 0.0 (Step_response.eval cs 0.0);
  (* settles to 1 after many time constants *)
  check_close "v(inf) = 1" 1.0 (Step_response.eval cs (50.0 *. cs.Pade.b1))
    ~tol:1e-6;
  Alcotest.check_raises "negative time"
    (Invalid_argument "Step_response.eval: t < 0") (fun () ->
      ignore (Step_response.eval cs (-1.0)))

let test_step_response_overdamped_monotone () =
  let cs = Pade.coeffs (mk_stage ~l:0.0 ~k:500.0 ()) in
  let w = Step_response.waveform cs ~t_end:(6.0 *. cs.Pade.b1) ~n:500 in
  let values = Rlc_waveform.Waveform.values w in
  let monotone = ref true in
  Array.iteri
    (fun i v -> if i > 0 && v < values.(i - 1) -. 1e-12 then monotone := false)
    values;
  Alcotest.(check bool) "monotone rise" true !monotone

let test_step_response_overshoot_formula () =
  let cs = Pade.coeffs (mk_stage ~l:3e-6 ()) in
  let predicted = Step_response.overshoot cs in
  let w = Step_response.waveform cs ~t_end:(8.0 *. cs.Pade.b1) ~n:8000 in
  let peak = Rlc_numerics.Stats.max (Rlc_waveform.Waveform.values w) in
  check_close "overshoot matches sampled peak" (1.0 +. predicted) peak
    ~tol:1e-4

let test_step_response_peak_time () =
  let cs = Pade.coeffs (mk_stage ~l:3e-6 ()) in
  match Step_response.peak_time cs with
  | None -> Alcotest.fail "underdamped must have a peak"
  | Some tp ->
      (* derivative vanishes at the peak *)
      check_close "dv/dt(tp) = 0" 0.0
        (Step_response.derivative cs tp *. cs.Pade.b1)
        ~tol:1e-6

let test_step_response_near_critical_continuity () =
  let stage = mk_stage ~l:0.0 ~k:500.0 () in
  let l_crit = Critical_inductance.of_stage stage in
  let t = 2.0 *. (Pade.coeffs stage).Pade.b1 in
  let below = Step_response.eval (Pade.coeffs (Stage.with_l stage (l_crit *. 0.9999))) t in
  let above = Step_response.eval (Pade.coeffs (Stage.with_l stage (l_crit *. 1.0001))) t in
  check_close "continuous through critical damping" below above ~tol:1e-4

let test_step_response_derivative_vs_fd () =
  let cs = Pade.coeffs (mk_stage ()) in
  let t = 1.5 *. cs.Pade.b1 in
  let dt = cs.Pade.b1 *. 1e-6 in
  let fd = (Step_response.eval cs (t +. dt) -. Step_response.eval cs (t -. dt)) /. (2.0 *. dt) in
  check_close "derivative" fd (Step_response.derivative cs t) ~tol:1e-5

let prop_step_response_bounded =
  QCheck2.Test.make ~name:"step response stays within [0, 2]" ~count:100
    stage_gen (fun stage ->
      let cs = Pade.coeffs stage in
      let ok = ref true in
      for i = 1 to 50 do
        let t = float_of_int i *. 0.2 *. cs.Pade.b1 in
        let v = Step_response.eval cs t in
        if v < -1e-9 || v > 2.0 then ok := false
      done;
      !ok)

(* ---------------- Delay ---------------- *)

let test_delay_satisfies_equation () =
  List.iter
    (fun f ->
      let cs = Pade.coeffs (mk_stage ()) in
      let tau = Delay.of_coeffs ~f cs in
      check_close
        (Printf.sprintf "v(tau) = %g" f)
        f
        (Step_response.eval cs tau) ~tol:1e-9)
    [ 0.1; 0.5; 0.9 ]

let test_delay_monotone_in_f () =
  let cs = Pade.coeffs (mk_stage ()) in
  let d10 = Delay.of_coeffs ~f:0.1 cs in
  let d50 = Delay.of_coeffs ~f:0.5 cs in
  let d90 = Delay.of_coeffs ~f:0.9 cs in
  Alcotest.(check bool) "10 < 50 < 90" true (d10 < d50 && d50 < d90)

let test_delay_first_crossing_when_ringing () =
  (* strongly underdamped: many crossings of 0.5; solver must return
     the first one, which is before the first peak *)
  let cs = Pade.coeffs (mk_stage ~l:4e-6 ~k:150.0 ()) in
  let tau = Delay.of_coeffs cs in
  (match Step_response.peak_time cs with
  | Some tp -> Alcotest.(check bool) "before first peak" true (tau < tp)
  | None -> Alcotest.fail "expected underdamped");
  check_close "crossing value" 0.5 (Step_response.eval cs tau) ~tol:1e-9

let test_delay_rc_limit_50pct () =
  (* single dominant pole limit: a short segment and a small repeater
     make the driver's intrinsic RC dominate (note b2's R_S C_P C_L r h
     term grows with k, so LARGE k does not give this limit);
     tau50 ~ ln 2 * b1 when b2 << b1^2 *)
  let stage = mk_stage ~l:0.0 ~h:0.0005 ~k:50.0 () in
  let cs = Pade.coeffs stage in
  Alcotest.(check bool) "strongly overdamped" true
    (Pade.discriminant cs > 0.9 *. cs.Pade.b1 *. cs.Pade.b1);
  let tau = Delay.of_coeffs cs in
  check_close "close to ln2 b1" (Float.log 2.0 *. cs.Pade.b1) tau ~tol:0.15

let test_delay_validation () =
  let cs = Pade.coeffs (mk_stage ()) in
  Alcotest.check_raises "f out of range"
    (Invalid_argument "Delay.of_coeffs: f outside (0,1)") (fun () ->
      ignore (Delay.of_coeffs ~f:1.0 cs))

let test_delay_elmore_agreement_rises_with_l () =
  let stage = Rc_opt.stage node100 ~l:0.0 in
  let low = Delay.elmore_agreement (Stage.with_l stage 0.5e-6) in
  let high = Delay.elmore_agreement (Stage.with_l stage 4e-6) in
  Alcotest.(check bool) "agreement degrades with l" true (high > low);
  Alcotest.(check bool) "l=0 agreement is exact" true
    (Float.abs (Delay.elmore_agreement (Stage.with_l stage 0.0) -. 1.0) < 1e-9)

let prop_delay_solves_equation =
  QCheck2.Test.make ~name:"delay satisfies v(tau) = f for random stages"
    ~count:150 stage_gen (fun stage ->
      let cs = Pade.coeffs stage in
      let tau = Delay.of_coeffs ~f:0.5 cs in
      tau > 0.0 && Float.abs (Step_response.eval cs tau -. 0.5) < 1e-8)

(* ---------------- Critical inductance ---------------- *)

let test_lcrit_discriminant_zero () =
  let stage = mk_stage ~l:0.0 () in
  let l_crit = Critical_inductance.of_stage stage in
  let cs = Pade.coeffs (Stage.with_l stage l_crit) in
  Alcotest.(check bool)
    "discriminant ~ 0" true
    (Float.abs (Pade.discriminant cs) < 1e-9 *. cs.Pade.b1 *. cs.Pade.b1)

let test_lcrit_independent_of_stage_l () =
  let stage = mk_stage ~l:0.0 () in
  check_close "independent of l"
    (Critical_inductance.of_stage stage)
    (Critical_inductance.of_stage (Stage.with_l stage 3e-6))

let test_lcrit_margin_sign () =
  let stage = mk_stage ~l:0.0 ~k:500.0 () in
  let l_crit = Critical_inductance.of_stage stage in
  Alcotest.(check bool)
    "below critical: negative margin" true
    (Critical_inductance.damping_margin (Stage.with_l stage (0.5 *. l_crit))
    < 0.0);
  Alcotest.(check bool)
    "above critical: positive margin" true
    (Critical_inductance.damping_margin (Stage.with_l stage (2.0 *. l_crit))
    > 0.0)

let test_lcrit_smaller_at_100nm () =
  (* Figure 4's technology ordering at the respective RC optima *)
  let lc node =
    let rc = Rc_opt.optimize node in
    Critical_inductance.of_node node ~h:rc.Rc_opt.h_opt ~k:rc.Rc_opt.k_opt
  in
  Alcotest.(check bool) "100nm < 250nm" true (lc node100 < lc node250)

(* ---------------- Elmore / Rc_opt ---------------- *)

let test_elmore_total_delay () =
  let stage = mk_stage () in
  check_close "total = L/h * stage"
    (0.05 /. stage.Stage.h *. Elmore.stage_delay stage)
    (Elmore.total_delay stage ~line_length:0.05)

let test_rc_opt_table1 () =
  let r250 = Rc_opt.optimize node250 in
  check_close "h 250" Rlc_tech.Presets.Expected.h_opt_rc_250nm
    r250.Rc_opt.h_opt ~tol:2e-3;
  check_close "k 250" Rlc_tech.Presets.Expected.k_opt_rc_250nm
    r250.Rc_opt.k_opt ~tol:2e-3;
  check_close "tau 250" Rlc_tech.Presets.Expected.tau_opt_rc_250nm
    r250.Rc_opt.tau_opt ~tol:2e-3;
  let r100 = Rc_opt.optimize node100 in
  check_close "h 100" Rlc_tech.Presets.Expected.h_opt_rc_100nm
    r100.Rc_opt.h_opt ~tol:2e-3;
  check_close "k 100" Rlc_tech.Presets.Expected.k_opt_rc_100nm
    r100.Rc_opt.k_opt ~tol:2e-3;
  check_close "tau 100" Rlc_tech.Presets.Expected.tau_opt_rc_100nm
    r100.Rc_opt.tau_opt ~tol:2e-3

let test_rc_opt_is_elmore_minimum () =
  let rc = Rc_opt.optimize node100 in
  let dpl h k =
    Elmore.per_unit_length (Stage.of_node node100 ~l:0.0 ~h ~k)
  in
  let best = dpl rc.Rc_opt.h_opt rc.Rc_opt.k_opt in
  List.iter
    (fun (dh, dk) ->
      Alcotest.(check bool) "perturbed is worse" true
        (dpl (rc.Rc_opt.h_opt *. dh) (rc.Rc_opt.k_opt *. dk) > best))
    [ (1.1, 1.0); (0.9, 1.0); (1.0, 1.1); (1.0, 0.9); (1.05, 0.95) ]

let test_rc_opt_tau_is_elmore_at_optimum () =
  let rc = Rc_opt.optimize node250 in
  let stage =
    Stage.of_node node250 ~l:0.0 ~h:rc.Rc_opt.h_opt ~k:rc.Rc_opt.k_opt
  in
  check_close "tau_opt = Elmore(h*,k*)" rc.Rc_opt.tau_opt
    (Elmore.stage_delay stage)

let test_derive_driver_roundtrip () =
  List.iter
    (fun node ->
      let rc = Rc_opt.optimize node in
      let d =
        Rc_opt.derive_driver ~r:node.Rlc_tech.Node.r ~c:node.Rlc_tech.Node.c
          ~h_opt:rc.Rc_opt.h_opt ~k_opt:rc.Rc_opt.k_opt
          ~tau_opt:rc.Rc_opt.tau_opt
      in
      let d0 = node.Rlc_tech.Node.driver in
      check_close "rs" d0.Rlc_tech.Driver.rs d.Rlc_tech.Driver.rs ~tol:1e-9;
      check_close "c0" d0.Rlc_tech.Driver.c0 d.Rlc_tech.Driver.c0 ~tol:1e-9;
      check_close "cp" d0.Rlc_tech.Driver.cp d.Rlc_tech.Driver.cp ~tol:1e-9)
    [ node250; node100 ]

let test_derive_driver_rejects_inconsistent () =
  Alcotest.check_raises "inconsistent tau"
    (Invalid_argument "Rc_opt.derive_driver: inconsistent tau_opt") (fun () ->
      ignore
        (Rc_opt.derive_driver ~r:4400.0 ~c:200e-12 ~h_opt:0.014 ~k_opt:500.0
           ~tau_opt:1e-15))

(* ---------------- Rlc_opt ---------------- *)

let test_rlc_opt_newton_matches_nm () =
  List.iter
    (fun node ->
      List.iter
        (fun l ->
          match Rlc_opt.optimize_newton_only node ~l with
          | None -> Alcotest.failf "newton failed at l=%g" l
          | Some nw ->
              let nm = Rlc_opt.optimize_nm_only node ~l in
              check_close
                (Printf.sprintf "h agree at l=%g" l)
                nm.Rlc_opt.h nw.Rlc_opt.h ~tol:1e-4;
              check_close
                (Printf.sprintf "k agree at l=%g" l)
                nm.Rlc_opt.k nw.Rlc_opt.k ~tol:1e-4;
              check_close
                (Printf.sprintf "objective agree at l=%g" l)
                nm.Rlc_opt.delay_per_length nw.Rlc_opt.delay_per_length
                ~tol:1e-7)
        [ 0.0; 1e-6; 2.5e-6; 5e-6 ])
    [ node250; node100 ]

let test_rlc_opt_residuals_zero_at_optimum () =
  let l = 1.5e-6 in
  let opt = Rlc_opt.optimize node100 ~l in
  let g1, g2 =
    Rlc_opt.residuals (Stage.of_node node100 ~l ~h:opt.Rlc_opt.h ~k:opt.Rlc_opt.k)
  in
  Alcotest.(check bool) "g1 ~ 0" true (Float.abs g1 < 1e-5);
  Alcotest.(check bool) "g2 ~ 0" true (Float.abs g2 < 1e-5)

let test_rlc_opt_residuals_nonzero_off_optimum () =
  let l = 1.5e-6 in
  let g1, g2 = Rlc_opt.residuals (Stage.of_node node100 ~l ~h:0.006 ~k:800.0) in
  Alcotest.(check bool) "residuals detect non-optimality" true
    (Float.abs g1 > 1e-3 || Float.abs g2 > 1e-3)

let test_rlc_opt_is_minimum () =
  let l = 2e-6 in
  let opt = Rlc_opt.optimize node100 ~l in
  let best = opt.Rlc_opt.delay_per_length in
  List.iter
    (fun (dh, dk) ->
      let v =
        Rlc_opt.objective node100 ~l ~h:(opt.Rlc_opt.h *. dh)
          ~k:(opt.Rlc_opt.k *. dk)
      in
      Alcotest.(check bool)
        (Printf.sprintf "perturbation (%g, %g) worse" dh dk)
        true (v >= best -. 1e-15))
    [ (1.05, 1.0); (0.95, 1.0); (1.0, 1.05); (1.0, 0.95); (1.03, 0.97) ]

let test_rlc_opt_paper_shapes () =
  (* Figures 5/6/7 qualitative content *)
  let rc = Rc_opt.optimize node100 in
  let at l = Rlc_opt.optimize node100 ~l in
  let o0 = at 0.0 and o2 = at 2e-6 and o5 = at 5e-6 in
  Alcotest.(check bool) "h(l=0) slightly below h_RC" true
    (o0.Rlc_opt.h < rc.Rc_opt.h_opt && o0.Rlc_opt.h > 0.85 *. rc.Rc_opt.h_opt);
  Alcotest.(check bool) "h increases with l" true
    (o0.Rlc_opt.h < o2.Rlc_opt.h && o2.Rlc_opt.h < o5.Rlc_opt.h);
  Alcotest.(check bool) "k decreases with l" true
    (o0.Rlc_opt.k > o2.Rlc_opt.k && o2.Rlc_opt.k > o5.Rlc_opt.k);
  Alcotest.(check bool) "delay/length increases with l" true
    (o0.Rlc_opt.delay_per_length < o2.Rlc_opt.delay_per_length
    && o2.Rlc_opt.delay_per_length < o5.Rlc_opt.delay_per_length)

let test_rlc_opt_scaling_susceptibility () =
  (* Figure 7's headline: the 100nm blow-up exceeds the 250nm one *)
  let blowup node =
    let at l = (Rlc_opt.optimize node ~l).Rlc_opt.delay_per_length in
    at 5e-6 /. at 0.0
  in
  let b250 = blowup node250 and b100 = blowup node100 in
  Alcotest.(check bool) "250nm blow-up ~ 2x" true (b250 > 1.7 && b250 < 2.4);
  Alcotest.(check bool) "100nm blow-up ~ 3x+" true (b100 > 2.6 && b100 < 3.8);
  Alcotest.(check bool) "scaling hurts" true (b100 > b250)

let test_rlc_opt_newton_iteration_budget () =
  (* the paper claims < 6 Newton iterations; allow a little slack *)
  List.iter
    (fun l ->
      match Rlc_opt.optimize_newton_only node100 ~l with
      | Some r ->
          Alcotest.(check bool)
            (Printf.sprintf "few iterations at l=%g" l)
            true
            (r.Rlc_opt.newton_iterations <= 10)
      | None -> Alcotest.failf "newton failed at l=%g" l)
    [ 0.0; 0.5e-6; 1e-6; 2e-6; 3e-6; 4e-6; 5e-6 ]

let test_rlc_opt_sweep () =
  let sweep = Rlc_opt.sweep ~n:5 node100 ~l_max:4e-6 in
  Alcotest.(check int) "5 points" 5 (List.length sweep);
  check_close "first l" 0.0 (fst (List.nth sweep 0));
  check_close "last l" 4e-6 (fst (List.nth sweep 4))

(* ---------------- Baselines ---------------- *)

let test_km_dominant_pole_accuracy () =
  (* strongly overdamped: KM dominant-pole delay within 5% of exact *)
  let cs = Pade.coeffs (mk_stage ~l:0.0 ~h:0.0005 ~k:50.0 ()) in
  Alcotest.(check bool) "applicable" true (Kahng_muddu.is_applicable cs);
  let km = Kahng_muddu.delay cs in
  let exact = Delay.of_coeffs cs in
  check_close "km vs exact" exact km ~tol:0.05

let test_km_critical_fallback_is_l_blind () =
  (* inside the fallback band, the KM delay does not change with l --
     the paper's core criticism (b1 is l-independent) *)
  let stage = Rc_opt.stage node100 ~l:0.0 in
  let l_crit = Critical_inductance.of_stage stage in
  let d1 = Kahng_muddu.delay_stage (Stage.with_l stage (0.9 *. l_crit)) in
  let d2 = Kahng_muddu.delay_stage (Stage.with_l stage (1.1 *. l_crit)) in
  check_close "same delay despite different l" d1 d2 ~tol:1e-9

let test_km_regimes () =
  let over = Pade.coeffs (mk_stage ~l:0.0 ~h:0.0005 ~k:50.0 ()) in
  Alcotest.(check bool) "dominant pole" true
    (Kahng_muddu.regime over = Kahng_muddu.Dominant_pole);
  (* short segment driven hard on a very inductive line: zeta ~ 0.19 *)
  let under = Pade.coeffs (mk_stage ~l:5e-6 ~h:0.005 ~k:800.0 ()) in
  Alcotest.(check bool) "oscillatory" true
    (Kahng_muddu.regime under = Kahng_muddu.Oscillatory);
  let mid = Pade.coeffs (mk_stage ~l:1e-6 ()) in
  Alcotest.(check bool) "critical fallback" true
    (Kahng_muddu.regime mid = Kahng_muddu.Critical_fallback)

let test_if_delay_accuracy () =
  (* the Ismail-Friedman fit was tuned for their driver model (no C_P);
     on this structure it stays within ~25% of the exact solution --
     the limited validity Section 2.2 of the paper points out *)
  List.iter
    (fun l ->
      let stage = Rc_opt.stage node100 ~l in
      let exact = Delay.of_stage stage in
      let fit = Ismail_friedman.delay_50 stage in
      Alcotest.(check bool)
        (Printf.sprintf "IF fit within 25%% at l=%g" l)
        true
        (Float.abs (fit /. exact -. 1.0) < 0.25))
    [ 0.0; 1e-6; 2e-6 ]

let test_if_repeater_shapes () =
  check_close "t_lr(0) = 0" 0.0 (Ismail_friedman.t_lr node100 ~l:0.0);
  let rc = Rc_opt.optimize node100 in
  check_close "h(0) = h_RC" rc.Rc_opt.h_opt
    (Ismail_friedman.h_opt node100 ~l:0.0);
  check_close "k(0) = k_RC" rc.Rc_opt.k_opt
    (Ismail_friedman.k_opt node100 ~l:0.0);
  Alcotest.(check bool) "h grows" true
    (Ismail_friedman.h_opt node100 ~l:4e-6
    > Ismail_friedman.h_opt node100 ~l:1e-6);
  Alcotest.(check bool) "k shrinks" true
    (Ismail_friedman.k_opt node100 ~l:4e-6
    < Ismail_friedman.k_opt node100 ~l:1e-6)

let test_if_fitted_range () =
  (* notably, the paper's own RC-optimal configuration falls OUTSIDE
     the Ismail-Friedman fitted window (ch/(c0 k) ~ 3.4 > 1) -- one
     more reason their curve fit cannot cover the Table 1 designs *)
  Alcotest.(check bool) "rc stage out of range" true
    (not (Ismail_friedman.in_fitted_range (Rc_opt.stage node100 ~l:1e-6)));
  (* a short segment with an oversized repeater is inside the window *)
  Alcotest.(check bool) "short/oversized stage in range" true
    (Ismail_friedman.in_fitted_range (mk_stage ~h:0.002 ~k:2000.0 ()))

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "rlc_core"
    [
      ( "line",
        [
          Alcotest.test_case "z0 lossless" `Quick test_line_z0_lossless;
          Alcotest.test_case "z0 hf limit" `Quick
            test_line_z0_high_frequency_limit;
          Alcotest.test_case "theta*z0 = r+sl" `Quick
            test_line_propagation_consistency;
          Alcotest.test_case "time of flight" `Quick test_line_time_of_flight;
        ] );
      ( "two-port",
        [
          Alcotest.test_case "reciprocity" `Quick test_two_port_reciprocity;
          Alcotest.test_case "cascade identity" `Quick
            test_two_port_cascade_identity;
          Alcotest.test_case "short line limit" `Quick
            test_two_port_short_line_limit;
          Alcotest.test_case "resistive divider" `Quick test_two_port_divider;
        ] );
      ( "transfer",
        [
          Alcotest.test_case "dc gain" `Quick test_transfer_dc;
          Alcotest.test_case "matches equation (1)" `Quick
            test_transfer_direct_agreement;
          Alcotest.test_case "lowpass shape" `Quick test_transfer_lowpass;
          Alcotest.test_case "overflow guard" `Quick
            test_transfer_overflow_guard;
        ] );
      ( "stage",
        [
          Alcotest.test_case "accessors" `Quick test_stage_accessors;
          Alcotest.test_case "with_*" `Quick test_stage_with;
        ] );
      ( "pade",
        [
          Alcotest.test_case "positive coefficients" `Quick test_pade_positive;
          Alcotest.test_case "b1 = Elmore" `Quick test_pade_b1_equals_elmore;
          Alcotest.test_case "b1 independent of l" `Quick
            test_pade_b1_independent_of_l;
          Alcotest.test_case "b2 linear in l" `Quick test_pade_b2_linear_in_l;
          Alcotest.test_case "damping classification" `Quick
            test_pade_classification;
          Alcotest.test_case "zeta / omega_n" `Quick test_pade_zeta_omega;
        ] );
      qsuite "pade-properties" [ prop_pade_partials_match_fd ];
      ( "poles",
        [
          Alcotest.test_case "characteristic equation" `Quick
            test_poles_satisfy_characteristic;
          Alcotest.test_case "conjugate when underdamped" `Quick
            test_poles_conjugate_when_underdamped;
          Alcotest.test_case "stability" `Quick test_poles_stable;
        ] );
      qsuite "poles-properties" [ prop_pole_sensitivities_match_fd ];
      ( "step-response",
        [
          Alcotest.test_case "boundary values" `Quick
            test_step_response_boundary;
          Alcotest.test_case "overdamped monotone" `Quick
            test_step_response_overdamped_monotone;
          Alcotest.test_case "overshoot formula" `Quick
            test_step_response_overshoot_formula;
          Alcotest.test_case "peak time" `Quick test_step_response_peak_time;
          Alcotest.test_case "continuity at critical damping" `Quick
            test_step_response_near_critical_continuity;
          Alcotest.test_case "derivative" `Quick
            test_step_response_derivative_vs_fd;
        ] );
      qsuite "step-response-properties" [ prop_step_response_bounded ];
      ( "delay",
        [
          Alcotest.test_case "satisfies equation (3)" `Quick
            test_delay_satisfies_equation;
          Alcotest.test_case "monotone in f" `Quick test_delay_monotone_in_f;
          Alcotest.test_case "first crossing when ringing" `Quick
            test_delay_first_crossing_when_ringing;
          Alcotest.test_case "dominant-pole limit" `Quick
            test_delay_rc_limit_50pct;
          Alcotest.test_case "validation" `Quick test_delay_validation;
          Alcotest.test_case "elmore agreement degrades with l" `Quick
            test_delay_elmore_agreement_rises_with_l;
        ] );
      qsuite "delay-properties" [ prop_delay_solves_equation ];
      ( "critical-inductance",
        [
          Alcotest.test_case "discriminant zero at l_crit" `Quick
            test_lcrit_discriminant_zero;
          Alcotest.test_case "independent of stage l" `Quick
            test_lcrit_independent_of_stage_l;
          Alcotest.test_case "margin sign" `Quick test_lcrit_margin_sign;
          Alcotest.test_case "smaller at 100nm (Fig 4)" `Quick
            test_lcrit_smaller_at_100nm;
        ] );
      ( "elmore-rc-opt",
        [
          Alcotest.test_case "total delay" `Quick test_elmore_total_delay;
          Alcotest.test_case "table 1 optima" `Quick test_rc_opt_table1;
          Alcotest.test_case "is the Elmore minimum" `Quick
            test_rc_opt_is_elmore_minimum;
          Alcotest.test_case "tau_opt consistency" `Quick
            test_rc_opt_tau_is_elmore_at_optimum;
          Alcotest.test_case "derive_driver roundtrip" `Quick
            test_derive_driver_roundtrip;
          Alcotest.test_case "derive_driver validation" `Quick
            test_derive_driver_rejects_inconsistent;
        ] );
      ( "rlc-opt",
        [
          Alcotest.test_case "newton = nelder-mead" `Slow
            test_rlc_opt_newton_matches_nm;
          Alcotest.test_case "residuals vanish at optimum" `Quick
            test_rlc_opt_residuals_zero_at_optimum;
          Alcotest.test_case "residuals nonzero off optimum" `Quick
            test_rlc_opt_residuals_nonzero_off_optimum;
          Alcotest.test_case "perturbations are worse" `Quick
            test_rlc_opt_is_minimum;
          Alcotest.test_case "paper shapes (Figs 5-7)" `Quick
            test_rlc_opt_paper_shapes;
          Alcotest.test_case "scaling susceptibility (Fig 7)" `Slow
            test_rlc_opt_scaling_susceptibility;
          Alcotest.test_case "newton iteration budget" `Quick
            test_rlc_opt_newton_iteration_budget;
          Alcotest.test_case "sweep" `Quick test_rlc_opt_sweep;
        ] );
      ( "baselines",
        [
          Alcotest.test_case "KM dominant-pole accuracy" `Quick
            test_km_dominant_pole_accuracy;
          Alcotest.test_case "KM fallback is l-blind" `Quick
            test_km_critical_fallback_is_l_blind;
          Alcotest.test_case "KM regimes" `Quick test_km_regimes;
          Alcotest.test_case "IF delay accuracy" `Quick test_if_delay_accuracy;
          Alcotest.test_case "IF repeater shapes" `Quick
            test_if_repeater_shapes;
          Alcotest.test_case "IF fitted range" `Quick test_if_fitted_range;
        ] );
    ]
