(* Tests for rlc_tech: units, driver model, node presets (Table 1). *)

let check_close ?(tol = 1e-9) msg expected actual =
  if
    Float.abs (expected -. actual)
    > tol *. (1.0 +. Float.max (Float.abs expected) (Float.abs actual))
  then
    Alcotest.failf "%s: expected %.15g, got %.15g" msg expected actual

open Rlc_tech

(* ---------------- Units ---------------- *)

let test_units_forward () =
  check_close "ohm/mm" 4400.0 (Units.ohm_per_mm 4.4);
  check_close "pF/m" 203.5e-12 (Units.pf_per_m 203.5);
  check_close "nH/mm" 5e-6 (Units.nh_per_mm 5.0);
  check_close "fF" 1.6314e-15 (Units.ff 1.6314);
  check_close "kohm" 11784.0 (Units.kohm 11.784);
  check_close "mm" 0.0144 (Units.mm 14.4);
  check_close "um" 2e-6 (Units.um 2.0);
  check_close "ps" 305.17e-12 (Units.ps 305.17)

let test_units_roundtrip () =
  check_close "nH/mm roundtrip" 3.7 (Units.to_nh_per_mm (Units.nh_per_mm 3.7));
  check_close "mm roundtrip" 14.4 (Units.to_mm (Units.mm 14.4));
  check_close "ps roundtrip" 305.17 (Units.to_ps (Units.ps 305.17))

(* ---------------- Driver ---------------- *)

let test_driver_scaling () =
  let d = Driver.make ~rs:10000.0 ~c0:1e-15 ~cp:4e-15 in
  check_close "rs/k" 100.0 (Driver.scaled_rs d ~k:100.0);
  check_close "cp*k" 4e-13 (Driver.scaled_cp d ~k:100.0);
  check_close "c0*k" 1e-13 (Driver.scaled_c0 d ~k:100.0);
  check_close "intrinsic" 5e-11 (Driver.intrinsic_delay d)

let test_driver_validation () =
  Alcotest.check_raises "bad rs"
    (Invalid_argument "Driver.make: parameters must be positive") (fun () ->
      ignore (Driver.make ~rs:0.0 ~c0:1e-15 ~cp:1e-15));
  let d = Driver.make ~rs:1.0 ~c0:1e-15 ~cp:1e-15 in
  Alcotest.check_raises "bad k"
    (Invalid_argument "Driver: repeater size k must be positive") (fun () ->
      ignore (Driver.scaled_rs d ~k:0.0))

let test_driver_intrinsic_scaling_claim () =
  (* Section 3.1 of the paper: the driver intrinsic RC shrinks with
     scaling, which is the root cause of inductance susceptibility *)
  let d250 = Presets.node_250nm.Node.driver in
  let d100 = Presets.node_100nm.Node.driver in
  Alcotest.(check bool)
    "intrinsic delay shrinks" true
    (Driver.intrinsic_delay d100 < 0.5 *. Driver.intrinsic_delay d250)

(* ---------------- Node / Presets ---------------- *)

let test_node_table1_values () =
  let n = Presets.node_250nm in
  check_close "r" 4400.0 n.Node.r;
  check_close "c" 203.5e-12 n.Node.c;
  check_close "vdd" 2.5 n.Node.vdd;
  check_close "rs" 11784.0 n.Node.driver.Driver.rs;
  check_close "c0" 1.6314e-15 n.Node.driver.Driver.c0;
  check_close "cp" 6.2474e-15 n.Node.driver.Driver.cp;
  check_close "l_max" 5e-6 n.Node.l_max;
  let m = Presets.node_100nm in
  check_close "100nm c" 123.33e-12 m.Node.c;
  check_close "100nm rs" 7534.0 m.Node.driver.Driver.rs

let test_node_threshold () =
  check_close "vdd/2" 1.25 (Node.switching_threshold Presets.node_250nm);
  check_close "vdd/2 100nm" 0.6 (Node.switching_threshold Presets.node_100nm)

let test_with_capacitance () =
  let ab = Presets.node_100nm_250nm_dielectric in
  check_close "ablation c" 203.5e-12 ab.Node.c;
  check_close "driver unchanged" 7534.0 ab.Node.driver.Driver.rs;
  Alcotest.(check string) "renamed" "100nm-c250" ab.Node.name

let test_find () =
  Alcotest.(check bool) "finds 250nm" true (Presets.find "250nm" <> None);
  Alcotest.(check bool) "finds 100nm" true (Presets.find "100nm" <> None);
  Alcotest.(check bool)
    "finds ablation" true
    (Presets.find "100nm-c250" <> None);
  Alcotest.(check bool) "unknown" true (Presets.find "65nm" = None)

let test_node_validation () =
  Alcotest.check_raises "bad vdd" (Invalid_argument "Node.make: vdd <= 0")
    (fun () ->
      ignore
        (Node.make ~name:"x" ~feature_nm:100.0 ~vdd:0.0 ~r:1.0 ~c:1.0
           ~geometry:Presets.node_100nm.Node.geometry
           ~driver:Presets.node_100nm.Node.driver ()))

let test_geometry_matches_table1 () =
  let g = Presets.node_250nm.Node.geometry in
  check_close "width" 2e-6 g.Rlc_extraction.Geometry.width;
  check_close "pitch" 4e-6 g.Rlc_extraction.Geometry.pitch;
  check_close "thickness" 2.5e-6 g.Rlc_extraction.Geometry.thickness;
  check_close "tins" 13.9e-6 g.Rlc_extraction.Geometry.t_ins;
  check_close "eps_r" 3.3 g.Rlc_extraction.Geometry.eps_r;
  let g1 = Presets.node_100nm.Node.geometry in
  check_close "100nm tins" 15.4e-6 g1.Rlc_extraction.Geometry.t_ins;
  check_close "100nm eps_r" 2.0 g1.Rlc_extraction.Geometry.eps_r

let () =
  Alcotest.run "rlc_tech"
    [
      ( "units",
        [
          Alcotest.test_case "forward" `Quick test_units_forward;
          Alcotest.test_case "roundtrip" `Quick test_units_roundtrip;
        ] );
      ( "driver",
        [
          Alcotest.test_case "scaling" `Quick test_driver_scaling;
          Alcotest.test_case "validation" `Quick test_driver_validation;
          Alcotest.test_case "intrinsic shrinks with node" `Quick
            test_driver_intrinsic_scaling_claim;
        ] );
      ( "presets",
        [
          Alcotest.test_case "table 1 values" `Quick test_node_table1_values;
          Alcotest.test_case "switching threshold" `Quick test_node_threshold;
          Alcotest.test_case "capacitance ablation" `Quick
            test_with_capacitance;
          Alcotest.test_case "find" `Quick test_find;
          Alcotest.test_case "validation" `Quick test_node_validation;
          Alcotest.test_case "geometry matches table 1" `Quick
            test_geometry_matches_table1;
        ] );
    ]
