(* Tests for rlc_instr: registry merge across domain counts, the
   recording switch never changing simulation results (bitwise), trace
   JSON well-formedness and span nesting, the disabled record path
   staying cheap, and the Transient.Stats surface. *)

module M = Rlc_instr.Metrics
module Span = Rlc_instr.Span
module Trace = Rlc_instr.Trace
module Control = Rlc_instr.Control
module Pool = Rlc_parallel.Pool

(* Run [f] with recording forced on/off, restoring the previous state
   (the suite must behave the same under RLC_STATS=1 and unset). *)
let with_recording on f =
  let was = Control.enabled () in
  Control.set_enabled on;
  Fun.protect ~finally:(fun () -> Control.set_enabled was) f

let check_bits name expected actual =
  Alcotest.(check (list int64))
    name
    (List.map Int64.bits_of_float expected)
    (List.map Int64.bits_of_float actual)

(* ---------------- minimal JSON well-formedness checker ------------ *)

(* Recursive-descent pass over the whole string; raises [Failure] on
   the first syntax error. Good enough to assert the trace export and
   metrics snapshot are loadable JSON without an external parser. *)
let json_check s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = failwith (Printf.sprintf "json: %s at byte %d" msg !pos) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let lit w =
    let m = String.length w in
    if !pos + m <= n && String.sub s !pos m = w then pos := !pos + m
    else fail w
  in
  let number () =
    let start = !pos in
    while
      !pos < n
      && match s.[!pos] with
         | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
         | _ -> false
    do
      incr pos
    done;
    if !pos = start then fail "number"
  in
  let string_lit () =
    expect '"';
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
            pos := !pos + 2;
            go ()
        | _ ->
            incr pos;
            go ()
    in
    go ()
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> string_lit ()
    | Some 't' -> lit "true"
    | Some 'f' -> lit "false"
    | Some 'n' -> lit "null"
    | Some ('-' | '0' .. '9') -> number ()
    | _ -> fail "value"
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then incr pos
    else
      let rec members () =
        skip_ws ();
        string_lit ();
        skip_ws ();
        expect ':';
        value ();
        skip_ws ();
        match peek () with
        | Some ',' ->
            incr pos;
            members ()
        | Some '}' -> incr pos
        | _ -> fail "object"
      in
      members ()
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then incr pos
    else
      let rec elems () =
        value ();
        skip_ws ();
        match peek () with
        | Some ',' ->
            incr pos;
            elems ()
        | Some ']' -> incr pos
        | _ -> fail "array"
      in
      elems ()
  in
  value ();
  skip_ws ();
  if !pos <> n then fail "trailing garbage"

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* ---------------- registry ---------------- *)

let merge_count = M.counter "test.merge.count"
let merge_obs = M.hist "test.merge.obs"

let test_registry_merge () =
  List.iter
    (fun domains ->
      let pool = Pool.create ~domains () in
      M.reset ();
      with_recording true (fun () ->
          let xs = Array.init 101 float_of_int in
          ignore
            (Pool.map pool
               (fun x ->
                 M.incr merge_count;
                 M.observe merge_obs x;
                 x *. 2.0)
               xs));
      Alcotest.(check (float 0.0))
        (Printf.sprintf "counter sums across %d domains" domains)
        101.0 (M.value merge_count);
      match M.hist_summary merge_obs with
      | None -> Alcotest.fail "histogram lost its samples"
      | Some s ->
          Alcotest.(check int)
            (Printf.sprintf "hist count (%d domains)" domains)
            101 s.M.count;
          (* integer-valued samples: the sum is exact in any order *)
          Alcotest.(check (float 0.0))
            (Printf.sprintf "hist sum (%d domains)" domains)
            5050.0 s.M.sum;
          Alcotest.(check (float 0.0))
            (Printf.sprintf "hist max (%d domains)" domains)
            100.0 s.M.max)
    [ 1; 2; 4 ]

let test_kind_mismatch () =
  let _ = M.counter "test.kind" in
  Alcotest.check_raises "counter reopened as gauge"
    (Invalid_argument
       "Rlc_instr.Metrics: \"test.kind\" is a counter, not a gauge")
    (fun () -> ignore (M.gauge "test.kind"))

let test_gauge_and_snapshot () =
  M.reset ();
  with_recording true (fun () ->
      let g = M.gauge "test.gauge" in
      M.set g 3.0;
      M.set g 7.5;
      Alcotest.(check (option (float 0.0)))
        "last write wins" (Some 7.5) (M.gauge_value g);
      json_check (M.json_snapshot ()))

let test_disabled_records_nothing () =
  M.reset ();
  with_recording false (fun () ->
      M.incr merge_count;
      M.observe merge_obs 1.0;
      Alcotest.(check (float 0.0)) "counter untouched" 0.0
        (M.value merge_count);
      Alcotest.(check bool) "hist untouched" true
        (M.hist_summary merge_obs = None))

(* ---------------- snapshot escaping ------------------------------- *)

let test_snapshot_escaping () =
  M.reset ();
  with_recording true (fun () ->
      (* metric names with JSON-hostile characters must escape *)
      let c = M.counter "test.esc \"quoted\" back\\slash\tname" in
      M.incr c;
      (* non-finite values: NaN is not valid JSON, so it maps to null;
         infinities round-trip as out-of-range literals *)
      M.set (M.gauge "test.esc_nan") Float.nan;
      M.set (M.gauge "test.esc_pinf") Float.infinity;
      M.set (M.gauge "test.esc_ninf") Float.neg_infinity;
      let s = M.json_snapshot () in
      json_check s;
      Alcotest.(check bool) "name is escaped" true
        (contains s "test.esc \\\"quoted\\\" back\\\\slash\\tname");
      Alcotest.(check bool) "NaN gauge is null" true
        (contains s "\"test.esc_nan\":null");
      Alcotest.(check bool) "+inf survives" true
        (contains s "\"test.esc_pinf\":1e999");
      Alcotest.(check bool) "-inf survives" true
        (contains s "\"test.esc_ninf\":-1e999"))

(* ---------------- histogram quantile edges ------------------------ *)

let test_hist_quantile_edges () =
  M.reset ();
  with_recording true (fun () ->
      let h = M.hist "test.hq_edges" in
      (* empty histogram: no quantiles... *)
      Alcotest.(check bool) "empty yields None" true
        (M.hist_quantiles h [| 0.5 |] = None);
      (* ...but the quantile arguments are still validated *)
      (match M.hist_quantiles h [| 1.5 |] with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "q > 1 must raise even on an empty histogram");
      (match M.hist_quantiles h [| -0.1 |] with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "q < 0 must raise even on an empty histogram");
      (* a single observation is every quantile at once *)
      M.observe h 3.0;
      (match M.hist_quantiles h [| 0.0; 1.0 |] with
      | Some qs ->
          Alcotest.(check int) "two edges back" 2 (Array.length qs);
          Alcotest.(check (float 0.0)) "q0 and q1 share the bucket" qs.(0)
            qs.(1);
          Alcotest.(check bool) "edge covers the observation" true
            (qs.(0) >= 3.0)
      | None -> Alcotest.fail "single observation must yield quantiles");
      (* unsorted and duplicate requests map independently, in the
         caller's order *)
      M.observe h 1000.0;
      match M.hist_quantiles h [| 1.0; 0.0; 1.0 |] with
      | Some qs ->
          Alcotest.(check (float 0.0)) "duplicates agree" qs.(0) qs.(2);
          Alcotest.(check bool) "p100 at or above p0" true (qs.(0) >= qs.(1));
          Alcotest.(check bool) "p100 covers the larger value" true
            (qs.(0) >= 1000.0)
      | None -> Alcotest.fail "populated histogram must yield quantiles")

(* ---------------- recording never changes results ----------------- *)

let step_ladder segments =
  let open Rlc_circuit in
  let nl = Netlist.create () in
  let src = Netlist.fresh_node nl in
  Netlist.add_vsource nl src Netlist.ground
    (Stimulus.Step { v0 = 0.0; v1 = 1.0; t_delay = 0.0; t_rise = 20e-12 });
  let far = Netlist.fresh_node nl in
  Ladder.make nl
    { Ladder.r = 4400.0; l = 1.5e-6; c = 123.33e-12; length = 0.011; segments }
    ~from_node:src ~to_node:far;
  (nl, far)

let fixed_waveform ~domains ~recording =
  let open Rlc_circuit in
  with_recording recording (fun () ->
      let nl, far = step_ladder 12 in
      let config =
        {
          Transient.Config.default with
          pool = Some (Pool.create ~domains ());
        }
      in
      let r =
        Transient.simulate ~config nl ~t_end:1e-9 ~dt:1e-12
          ~probes:[ Transient.Node_v far ]
      in
      Array.to_list
        (Rlc_waveform.Waveform.values (Transient.get r (Transient.Node_v far))))

let adaptive_waveform ~domains ~recording =
  let open Rlc_circuit in
  with_recording recording (fun () ->
      let nl, far = step_ladder 12 in
      let config =
        {
          Transient.Config.default with
          pool = Some (Pool.create ~domains ());
        }
      in
      let r =
        Transient.simulate_adaptive ~config nl ~t_end:1e-9 ~dt_max:1e-11
          ~probes:[ Transient.Node_v far ]
      in
      Array.to_list
        (Rlc_waveform.Waveform.values (Transient.get r (Transient.Node_v far))))

let test_fixed_identity () =
  List.iter
    (fun domains ->
      check_bits
        (Printf.sprintf "fixed step, %d domains" domains)
        (fixed_waveform ~domains ~recording:false)
        (fixed_waveform ~domains ~recording:true))
    [ 1; 4 ]

let test_adaptive_identity () =
  List.iter
    (fun domains ->
      check_bits
        (Printf.sprintf "adaptive, %d domains" domains)
        (adaptive_waveform ~domains ~recording:false)
        (adaptive_waveform ~domains ~recording:true))
    [ 1; 4 ]

(* ---------------- spans + trace export ---------------- *)

let burn () = ignore (Sys.opaque_identity (Array.init 512 float_of_int))

let test_span_nesting_and_trace () =
  M.reset ();
  let was = Control.enabled () in
  Trace.start ();
  Span.with_ "outer" (fun () ->
      Span.with_ "inner" (fun () -> burn ());
      Span.with_ "inner" (fun () -> burn ());
      burn ());
  Trace.stop ();
  Control.set_enabled was;
  Alcotest.(check bool) "capture is off again" false (Trace.capturing ());
  (* aggregation tree: inner nests under outer and merged its calls *)
  let outer =
    match List.find_opt (fun t -> t.Span.name = "outer") (Span.trees ()) with
    | Some t -> t
    | None -> Alcotest.fail "no 'outer' root span"
  in
  Alcotest.(check int) "outer called once" 1 outer.Span.calls;
  (match outer.Span.children with
  | [ inner ] ->
      Alcotest.(check string) "child name" "inner" inner.Span.name;
      Alcotest.(check int) "inner calls merged" 2 inner.Span.calls;
      Alcotest.(check bool) "child time within parent" true
        (inner.Span.total_s <= outer.Span.total_s +. 1e-9)
  | l ->
      Alcotest.fail
        (Printf.sprintf "expected one child of 'outer', got %d"
           (List.length l)));
  (* export: loadable JSON containing both span names *)
  let s = Trace.to_string () in
  json_check s;
  Alcotest.(check bool) "trace mentions traceEvents" true
    (contains s "\"traceEvents\"");
  Alcotest.(check bool) "trace mentions outer" true (contains s "\"outer\"");
  Alcotest.(check bool) "trace mentions inner" true (contains s "\"inner\"");
  Alcotest.(check int) "nothing dropped" 0 (Trace.dropped_events ());
  (* the dump must render without raising *)
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Control.dump ~ppf ();
  Format.pp_print_flush ppf ();
  Alcotest.(check bool) "dump shows span table" true
    (contains (Buffer.contents buf) "outer")

let test_unbalanced_exit_is_noop () =
  with_recording true (fun () ->
      Span.exit ();
      (* still healthy afterwards *)
      Span.with_ "after-noise" (fun () -> ()));
  Alcotest.(check bool) "trees still readable" true
    (List.length (Span.trees ()) >= 0)

(* ---------------- disabled-path overhead smoke -------------------- *)

let test_disabled_overhead_smoke () =
  with_recording false (fun () ->
      let c = M.counter "test.overhead" in
      let t = Rlc_instr.Timer.start () in
      for _ = 1 to 5_000_000 do
        M.incr c
      done;
      let s = Rlc_instr.Timer.elapsed_s t in
      (* ~2 ns/call on any recent machine; 1 s is a liberal ceiling
         that only catches the disabled path growing real work *)
      Alcotest.(check bool)
        (Printf.sprintf "5M disabled incrs in %.3fs < 1s" s)
        true (s < 1.0))

let test_timer () =
  let r, s = Rlc_instr.Timer.time (fun () -> 42) in
  Alcotest.(check int) "result passed through" 42 r;
  Alcotest.(check bool) "non-negative duration" true (s >= 0.0)

(* ---------------- Transient.Stats ---------------- *)

let test_transient_stats () =
  let open Rlc_circuit in
  M.reset ();
  let nl, far = step_ladder 10 in
  let r =
    with_recording true (fun () ->
        Transient.run_adaptive ~rtol:1e-4 nl ~t_end:1e-9 ~dt_max:1e-11
          ~probes:[ Transient.Node_v far ])
  in
  let s = Transient.stats r in
  Alcotest.(check int) "steps" (Transient.steps_taken r) s.Transient.Stats.steps;
  Alcotest.(check int) "rejected"
    (Transient.rejected_steps r)
    s.Transient.Stats.rejected_steps;
  Alcotest.(check int) "nonconverged"
    (Transient.nonconverged_steps r)
    s.Transient.Stats.nonconverged_steps;
  Alcotest.(check int) "lu factorizations"
    (Transient.lu_factorizations r)
    s.Transient.Stats.lu_factorizations;
  (* the run published its counters to the registry *)
  Alcotest.(check (float 0.0))
    "registry saw the steps"
    (float_of_int s.Transient.Stats.steps)
    (M.value (M.counter "transient.steps"));
  Alcotest.(check (float 0.0))
    "registry saw the rejections"
    (float_of_int s.Transient.Stats.rejected_steps)
    (M.value (M.counter "transient.rejected_steps"))

let () =
  Alcotest.run "rlc_instr"
    [
      ( "registry",
        [
          Alcotest.test_case "merge across domains" `Quick test_registry_merge;
          Alcotest.test_case "kind mismatch" `Quick test_kind_mismatch;
          Alcotest.test_case "gauge + json snapshot" `Quick
            test_gauge_and_snapshot;
          Alcotest.test_case "disabled records nothing" `Quick
            test_disabled_records_nothing;
          Alcotest.test_case "snapshot escaping" `Quick
            test_snapshot_escaping;
          Alcotest.test_case "hist quantile edges" `Quick
            test_hist_quantile_edges;
        ] );
      ( "identity",
        [
          Alcotest.test_case "fixed step" `Quick test_fixed_identity;
          Alcotest.test_case "adaptive" `Quick test_adaptive_identity;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting + trace export" `Quick
            test_span_nesting_and_trace;
          Alcotest.test_case "unbalanced exit" `Quick
            test_unbalanced_exit_is_noop;
        ] );
      ( "overhead",
        [
          Alcotest.test_case "disabled path" `Quick
            test_disabled_overhead_smoke;
          Alcotest.test_case "timer" `Quick test_timer;
        ] );
      ( "transient stats",
        [ Alcotest.test_case "stats record" `Quick test_transient_stats ]
      );
    ]
