(* Tests for rlc_ringosc.  Transient ring simulations are expensive, so
   quick tests use small rings / coarse ladders and the full-size
   checks are marked `Slow. *)

let check_close ?(tol = 1e-9) msg expected actual =
  if
    Float.abs (expected -. actual)
    > tol *. (1.0 +. Float.max (Float.abs expected) (Float.abs actual))
  then
    Alcotest.failf "%s: expected %.15g, got %.15g" msg expected actual

let node100 = Rlc_tech.Presets.node_100nm

open Rlc_ringosc

let small_config ?(l = 0.0) () =
  Ring.config ~stages:3 ~segments:4 node100 ~l ~h:3e-3 ~k:100.0

let test_config_validation () =
  Alcotest.check_raises "even stages"
    (Invalid_argument "Ring.config: stages must be odd and >= 3") (fun () ->
      ignore (Ring.config ~stages:4 node100 ~l:0.0 ~h:1e-3 ~k:10.0));
  Alcotest.check_raises "negative l"
    (Invalid_argument "Ring.config: l < 0") (fun () ->
      ignore (Ring.config node100 ~l:(-1.0) ~h:1e-3 ~k:10.0))

let test_rc_sized_config () =
  let cfg = Ring.rc_sized_config node100 ~l:1e-6 in
  let rc = Rlc_core.Rc_opt.optimize node100 in
  check_close "h" rc.Rlc_core.Rc_opt.h_opt cfg.Ring.h;
  check_close "k" rc.Rlc_core.Rc_opt.k_opt cfg.Ring.k;
  Alcotest.(check int) "stages" 5 cfg.Ring.stages

let test_build_structure () =
  let cfg = small_config () in
  let built = Ring.build cfg in
  Alcotest.(check int) "stage outputs" 3 (Array.length built.Ring.stage_out);
  Alcotest.(check int) "stage inputs" 3 (Array.length built.Ring.stage_in);
  (* 3 inverters + 3 ladders of (4 RL + 5 C) *)
  Alcotest.(check int) "element count" 30
    (Array.length (Rlc_circuit.Netlist.elements built.Ring.netlist));
  (* the netlist passes DC-path validation *)
  Rlc_circuit.Netlist.validate built.Ring.netlist

let test_estimated_stage_delay () =
  let cfg = small_config () in
  let tau = Ring.estimated_stage_delay cfg in
  Alcotest.(check bool) "positive and sub-ns" true (tau > 0.0 && tau < 1e-9)

let test_small_ring_oscillates () =
  let cfg = small_config () in
  let sim = Ring.simulate cfg in
  let m = Analysis.measure sim in
  (match m.Analysis.period with
  | Some p ->
      (* period ~ 2 * stages * stage delay, generous envelope *)
      let tau = Ring.estimated_stage_delay cfg in
      let expected = 2.0 *. 3.0 *. tau in
      Alcotest.(check bool)
        (Printf.sprintf "period %.3g vs expected %.3g" p expected)
        true
        (p > 0.5 *. expected && p < 2.0 *. expected)
  | None -> Alcotest.fail "ring did not oscillate");
  (* rail-to-rail oscillation at the output *)
  let out = sim.Ring.out0 in
  let lo, hi = Rlc_numerics.Stats.min_max (Rlc_waveform.Waveform.values out) in
  Alcotest.(check bool) "reaches low rail" true (lo < 0.2);
  Alcotest.(check bool) "reaches high rail" true (hi > 1.0)

let test_no_ringing_without_inductance () =
  let cfg = small_config ~l:0.0 () in
  let sim = Ring.simulate cfg in
  let m = Analysis.measure sim in
  Alcotest.(check bool) "no overshoot" true
    (m.Analysis.input_overshoot < 0.05);
  Alcotest.(check bool) "no undershoot" true
    (m.Analysis.input_undershoot < 0.05)

let test_inductance_causes_ringing () =
  let quiet = Analysis.measure (Ring.simulate (small_config ~l:0.0 ())) in
  let loud = Analysis.measure (Ring.simulate (small_config ~l:2e-6 ())) in
  Alcotest.(check bool) "overshoot grows with l" true
    (loud.Analysis.input_overshoot > quiet.Analysis.input_overshoot +. 0.05)

let test_current_density_positive () =
  let m = Analysis.measure (Ring.simulate (small_config ~l:1e-6 ())) in
  Alcotest.(check bool) "peak > rms > 0" true
    (m.Analysis.peak_current_density > m.Analysis.rms_current_density
    && m.Analysis.rms_current_density > 0.0)

let test_false_switching_criterion () =
  let mk period =
    {
      Analysis.period;
      input_overshoot = 0.0;
      input_undershoot = 0.0;
      peak_current = 0.0;
      rms_current = 0.0;
      peak_current_density = 0.0;
      rms_current_density = 0.0;
    }
  in
  Alcotest.(check bool) "collapsed period flagged" true
    (Analysis.false_switching ~baseline_period:1.0 (mk (Some 0.4)));
  Alcotest.(check bool) "normal period fine" true
    (not (Analysis.false_switching ~baseline_period:1.0 (mk (Some 0.9))));
  Alcotest.(check bool) "no period = not flagged" true
    (not (Analysis.false_switching ~baseline_period:1.0 (mk None)))

(* full-size checks -- the paper's Section 3.3 content *)

let test_full_ring_period_grows_then_collapses () =
  let points =
    Analysis.period_sweep ~segments:8 node100
      ~l_values:[ 0.0; 1.0e-6; 2.0e-6; 4.0e-6 ]
  in
  match List.map (fun (_, m) -> m.Analysis.period) points with
  | [ Some p0; Some p1; Some p2; Some p4 ] ->
      Alcotest.(check bool) "period grows with l pre-onset" true
        (p1 > p0 && p2 > p1);
      Alcotest.(check bool) "period collapses at l=4 (false switching)" true
        (p4 < 0.6 *. p2)
  | _ -> Alcotest.fail "missing period measurements"

let test_250nm_survives () =
  let points =
    Analysis.period_sweep ~segments:8 Rlc_tech.Presets.node_250nm
      ~l_values:[ 0.0; 2.5e-6; 5.0e-6 ]
  in
  let baseline =
    match points with
    | (_, { Analysis.period = Some p; _ }) :: _ -> p
    | _ -> Alcotest.fail "no baseline"
  in
  List.iter
    (fun (l, m) ->
      Alcotest.(check bool)
        (Printf.sprintf "no false switching at l=%g" l)
        true
        (not (Analysis.false_switching ~baseline_period:baseline m)))
    points

let () =
  Alcotest.run "rlc_ringosc"
    [
      ( "config",
        [
          Alcotest.test_case "validation" `Quick test_config_validation;
          Alcotest.test_case "rc-sized" `Quick test_rc_sized_config;
        ] );
      ( "build",
        [
          Alcotest.test_case "structure" `Quick test_build_structure;
          Alcotest.test_case "stage delay estimate" `Quick
            test_estimated_stage_delay;
        ] );
      ( "oscillation",
        [
          Alcotest.test_case "small ring oscillates" `Quick
            test_small_ring_oscillates;
          Alcotest.test_case "clean without inductance" `Quick
            test_no_ringing_without_inductance;
          Alcotest.test_case "inductance causes ringing" `Quick
            test_inductance_causes_ringing;
          Alcotest.test_case "current density sane" `Quick
            test_current_density_positive;
          Alcotest.test_case "false-switching criterion" `Quick
            test_false_switching_criterion;
        ] );
      ( "paper-claims",
        [
          Alcotest.test_case "100nm: grow then collapse (Fig 11)" `Slow
            test_full_ring_period_grows_then_collapses;
          Alcotest.test_case "250nm survives 0..5 nH/mm" `Slow
            test_250nm_survives;
        ] );
    ]
