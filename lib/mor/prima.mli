(** PRIMA-style passive model-order reduction of an MNA descriptor.

    From the full system [(G + sC) x = b u], [y = l^T x] the reducer
    builds an orthonormal basis [V] of the order-[q] block Krylov
    subspace of [(G^-1 C, G^-1 b)] and projects by congruence:

    {v G_r = V^T G V,  C_r = V^T C V,  b_r = V^T b,  l_r = V^T l v}

    The reduced q-state transfer function [H_r] matches the first [q]
    moments of the full one (one-sided projection: q moments, not the
    2q of an AWE Pade approximant — but without AWE's ill-conditioned
    moment cancellation, which is the point of the method).

    The large sparse solves with [G] reuse the transient engine's
    strategy: reverse Cuthill-McKee ordering ({!Rlc_numerics.Rcm}) and
    the banded LU kernel whenever the permuted bandwidth pays,
    so reducing a many-hundred-segment line costs a handful of banded
    solves rather than a dense factorisation.

    The reduced model is post-processed into poles and residues (via
    {!Rlc_numerics.Eig} on the projected pencil plus inverse
    iteration), giving closed-form frequency and unit-step responses
    that evaluate in O(q) per point. *)

open Rlc_numerics
open Rlc_circuit

type model = {
  order : int;  (** states actually kept (deflation can shrink [q]) *)
  g_r : Matrix.t;
  c_r : Matrix.t;
  b_r : float array;
  l_r : float array;
  poles : Cx.t array;  (** finite poles of the reduced pencil *)
  residues : Cx.t array;  (** residue of [H_r] at each pole *)
  dc : float;  (** [H_r(0)] = exact DC gain of the full model *)
  stable : bool;  (** all poles strictly in the left half-plane *)
}

val reduce : order:int -> Mna.t -> input:int -> output:float array -> model
(** [reduce ~order mna ~input ~output] projects the descriptor onto the
    order-[order] Krylov subspace for one source column and one output
    selector.  Raises [Invalid_argument] on a bad order, input or
    selector, and [Failure] when [G] is singular (no DC solution). *)

val eval : model -> Cx.t -> Cx.t
(** [eval m s] is [H_r(s) = l_r^T (G_r + s C_r)^-1 b_r]; one complex
    [order x order] factorisation. *)

val step_eval : model -> float -> float
(** Unit-step response of the reduced model at time [t >= 0] from the
    pole/residue form:
    [y(t) = H_r(0) + sum_i Re((rho_i / p_i) exp(p_i t))].  O(order)
    per sample — the speed side of the accuracy/speed trade the bench
    measures against the full transient engine. *)

val bode : model -> freqs:float array -> Ac.point array
(** Bode points of the reduced model on a frequency grid (same record
    as a full {!Ac.bode} sweep, for overlay). *)
