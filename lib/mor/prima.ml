open Rlc_numerics
open Rlc_circuit

type model = {
  order : int;
  g_r : Matrix.t;
  c_r : Matrix.t;
  b_r : float array;
  l_r : float array;
  poles : Cx.t array;
  residues : Cx.t array;
  dc : float;
  stable : bool;
}

let ( +: ) = Cx.( +: )
let ( *: ) = Cx.( *: )
let ( /: ) = Cx.( /: )

(* ---------------- fast solves with G ----------------

   The Krylov recurrence applies G^-1 many times; the factorisation
   comes straight from the MNA descriptor's stamp IR under the shared
   structure plan (RCM + banded-when-narrow), so PRIMA, the transient
   engine and the AC path all make the same backend choice from the
   same analysis. *)

let make_g_solver (asm : Rlc_circuit.Assembly.t) =
  let f =
    try Rlc_circuit.Assembly.factor_g asm
    with Lu.Singular | Banded.Singular | Sparse.Singular ->
      failwith "Prima: singular G matrix"
  in
  fun b -> Rlc_circuit.Assembly.solve_g asm f b

(* ---------------- projection ---------------- *)

let dot a b =
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. (a.(i) *. b.(i))
  done;
  !acc

(* V^T M V for a dense M and the Krylov basis V (columns as rows of
   [v]); one mat-vec per column. *)
let project m v =
  let q = Array.length v in
  let r = Matrix.create q q in
  Array.iteri
    (fun j vj ->
      let mvj = Matrix.mul_vec m vj in
      for i = 0 to q - 1 do
        Matrix.set r i j (dot v.(i) mvj)
      done)
    v;
  r

(* ---------------- poles and residues ---------------- *)

(* Right/left null vectors of the (numerically singular) complex pencil
   M = G_r + p C_r by inverse iteration: a couple of applications of
   M^-1 to a fixed start vector align it with the null direction. *)
let null_vector lu q =
  let x = ref (Array.init q (fun i -> Cx.make 1.0 (0.1 *. float_of_int (i + 1)))) in
  for _ = 1 to 3 do
    let y = Clu.solve lu !x in
    let scale =
      Float.sqrt (Array.fold_left (fun a z -> a +. Cx.norm2 z) 0.0 y)
    in
    if scale > 0.0 && Float.is_finite scale then
      x := Array.map (Cx.scale (1.0 /. scale)) y
  done;
  !x

let cx_dot a b =
  (* bilinear (no conjugation): the pencil identities are transpose
     identities, not Hermitian ones *)
  let acc = ref Cx.zero in
  for i = 0 to Array.length a - 1 do
    acc := !acc +: (a.(i) *: b.(i))
  done;
  !acc

let pencil g_r c_r p =
  let q = Matrix.rows g_r in
  Cmatrix.init q q (fun i j ->
      Cx.of_float (Matrix.get g_r i j)
      +: (p *: Cx.of_float (Matrix.get c_r i j)))

let residue_at g_r c_r b_r l_r p =
  let q = Matrix.rows g_r in
  let pencil_t p =
    Cmatrix.init q q (fun i j ->
        Cx.of_float (Matrix.get g_r j i)
        +: (p *: Cx.of_float (Matrix.get c_r j i)))
  in
  (* the pencil is exactly singular at the pole; nudge off it until
     both the pencil and its transpose factor at the same point *)
  let rec decompose_near p attempt =
    match (Clu.decompose (pencil g_r c_r p), Clu.decompose (pencil_t p)) with
    | lu, lu_t -> (lu, lu_t)
    | exception Clu.Singular ->
        if attempt > 3 then raise Clu.Singular
        else decompose_near (p *: Cx.make (1.0 +. 1e-10) 1e-10) (attempt + 1)
  in
  let lu, lu_t = decompose_near p 0 in
  let x = null_vector lu q in
  (* left null vector: y^T M = 0  <=>  M^T y = 0 *)
  let y = null_vector lu_t q in
  let cx_vec = Array.map Cx.of_float in
  let cx_mul_vec m v =
    Array.init (Matrix.rows m) (fun i ->
        let acc = ref Cx.zero in
        for j = 0 to Matrix.cols m - 1 do
          acc := !acc +: (Cx.of_float (Matrix.get m i j) *: v.(j))
        done;
        !acc)
  in
  let num = cx_dot (cx_vec l_r) x *: cx_dot y (cx_vec b_r) in
  let den = cx_dot y (cx_mul_vec c_r x) in
  num /: den

let spectrum g_r c_r b_r l_r ~dc =
  let q = Matrix.rows g_r in
  let lu = Lu.decompose (Matrix.copy g_r) in
  (* A_r = G_r^-1 C_r, column by column *)
  let a = Matrix.create q q in
  for j = 0 to q - 1 do
    let col = Array.init q (fun i -> Matrix.get c_r i j) in
    let x = Lu.solve lu col in
    for i = 0 to q - 1 do
      Matrix.set a i j x.(i)
    done
  done;
  let lambdas = Eig.eigenvalues a in
  let lmax =
    Array.fold_left (fun acc z -> Float.max acc (Cx.norm z)) 0.0 lambdas
  in
  (* eigenvalues at (numerical) zero are poles at infinity: artefacts
     of incidence rows, not dynamics *)
  let finite =
    Array.of_list
      (List.filter
         (fun z -> Cx.norm z > 1e-12 *. lmax)
         (Array.to_list lambdas))
  in
  let poles = Array.map (fun z -> Cx.neg (Cx.inv z)) finite in
  let residues = Array.map (residue_at g_r c_r b_r l_r) poles in
  (* Unobservable/uncontrollable basis modes sit in the common null
     space of G_r + G_r^T and C_r: their pole position is a 0/0 and can
     land anywhere (even in the right half-plane), but their residue is
     roundoff.  Keep only poles whose step-response weight |rho/p| is
     non-negligible against the dc level — a spurious RHP pole would
     otherwise overflow exp(p t) in [step_eval]. *)
  let weight i = Cx.norm (residues.(i) /: poles.(i)) in
  let wmax =
    Array.fold_left
      (fun acc (i : int) -> Float.max acc (weight i))
      (Float.abs dc)
      (Array.init (Array.length poles) Fun.id)
  in
  let keep =
    List.filter
      (fun i -> weight i > 1e-9 *. wmax)
      (List.init (Array.length poles) Fun.id)
  in
  ( Array.of_list (List.map (fun i -> poles.(i)) keep),
    Array.of_list (List.map (fun i -> residues.(i)) keep) )

(* ---------------- public API ---------------- *)

let m_moments = Rlc_instr.Metrics.counter "prima.moments"

let reduce ~order (mna : Mna.t) ~input ~output =
  if order < 1 then invalid_arg "Prima.reduce: order < 1";
  if input < 0 || input >= Array.length mna.Mna.inputs then
    invalid_arg "Prima.reduce: input index out of range";
  if Array.length output <> mna.Mna.size then
    invalid_arg "Prima.reduce: output selector length mismatch";
  Rlc_instr.Span.with_ "prima.reduce" (fun () ->
      let n = mna.Mna.size in
      let solve_g = make_g_solver mna.Mna.asm in
      let b_col = Array.init n (fun i -> Matrix.get mna.Mna.b i input) in
      let r0 = solve_g b_col in
      let mul v =
        Rlc_instr.Metrics.incr m_moments;
        Rlc_instr.Span.with_ "prima.moment" (fun () ->
            solve_g (Matrix.mul_vec mna.Mna.c v))
      in
      let v =
        Rlc_instr.Span.with_ "prima.krylov" (fun () ->
            Arnoldi.block ~mul ~start:[| r0 |] order)
      in
      let q = Array.length v in
      let g_r, c_r =
        Rlc_instr.Span.with_ "prima.project" (fun () ->
            (project mna.Mna.g v, project mna.Mna.c v))
      in
      let b_r = Array.map (fun vi -> dot vi b_col) v in
      let l_r = Array.map (fun vi -> dot vi output) v in
      let dc =
        let lu = Lu.decompose (Matrix.copy g_r) in
        dot l_r (Lu.solve lu b_r)
      in
      let poles, residues =
        Rlc_instr.Span.with_ "prima.spectrum" (fun () ->
            spectrum g_r c_r b_r l_r ~dc)
      in
      let stable = Array.for_all (fun p -> Cx.re p < 0.0) poles in
      { order = q; g_r; c_r; b_r; l_r; poles; residues; dc; stable })

let eval m s =
  let q = m.order in
  let lu = Clu.decompose (pencil m.g_r m.c_r s) in
  let x = Clu.solve lu (Array.map Cx.of_float m.b_r) in
  let acc = ref Cx.zero in
  for i = 0 to q - 1 do
    acc := !acc +: Cx.scale m.l_r.(i) x.(i)
  done;
  !acc

let step_eval m t =
  if t < 0.0 then 0.0
  else begin
    let acc = ref m.dc in
    Array.iteri
      (fun i p ->
        let term = m.residues.(i) /: p *: Cx.exp (Cx.scale t p) in
        acc := !acc +. Cx.re term)
      m.poles;
    !acc
  end

let bode m ~freqs =
  Array.map
    (fun f ->
      Ac.point_of ~freq:f (eval m (Cx.make 0.0 (2.0 *. Float.pi *. f))))
    freqs
