(** One repeater stage: a driver of size [k] driving a line segment of
    length [h] terminated by the input capacitance of an identical
    repeater (Figure 1 of the paper). *)

type t = {
  line : Line.t;
  driver : Rlc_tech.Driver.t;
  h : float;  (** segment length, m *)
  k : float;  (** repeater size multiple of minimum *)
}

val make : line:Line.t -> driver:Rlc_tech.Driver.t -> h:float -> k:float -> t
(** Requires [h > 0] and [k > 0]. *)

val of_node : Rlc_tech.Node.t -> l:float -> h:float -> k:float -> t

val rs : t -> float
(** Driver series resistance R_S = rs / k, ohm. *)

val cp : t -> float
(** Driver output parasitic C_P = cp * k, F. *)

val cl : t -> float
(** Load capacitance C_L = c0 * k (next repeater's input), F. *)

val total_resistance : t -> float
(** Wire resistance of the segment r * h, ohm. *)

val total_capacitance : t -> float
(** Wire capacitance of the segment c * h, F. *)

val total_inductance : t -> float
(** Wire inductance of the segment l * h, H. *)

val with_h : t -> float -> t
val with_k : t -> float -> t
val with_l : t -> float -> t
(** Replace the line inductance (H/m), keeping everything else. *)

val pp : Format.formatter -> t -> unit
