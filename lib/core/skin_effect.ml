type correction = {
  stage : Stage.t;
  r_effective : float;
  frequency : float;
  iterations : int;
}

let characteristic_frequency stage =
  let cs = Pade.coeffs stage in
  let { Poles.s1; _ } = Poles.of_coeffs cs in
  let im = Float.abs (Rlc_numerics.Cx.im s1) in
  if im > 0.0 then im /. (2.0 *. Float.pi)
  else 1.0 /. (2.0 *. Float.pi *. cs.Pade.b1)

let with_r stage r =
  let line =
    Line.make ~r ~l:stage.Stage.line.Line.l ~c:stage.Stage.line.Line.c
  in
  Stage.make ~line ~driver:stage.Stage.driver ~h:stage.Stage.h
    ~k:stage.Stage.k

let correct ?rho ?(max_iterations = 8) geometry stage =
  let r_dc = stage.Stage.line.Line.r in
  let rec go current iter =
    let f = characteristic_frequency current in
    let r_skin = Rlc_extraction.Skin.resistance_at ?rho geometry f in
    (* scale the stage's own DC resistance by the crowding ratio, so a
       stage whose r was set from Table 1 (not our extractor) is
       corrected consistently *)
    let ratio = r_skin /. Rlc_extraction.Skin.resistance_at ?rho geometry 0.0 in
    let r_new = r_dc *. ratio in
    let rel =
      Float.abs (r_new -. current.Stage.line.Line.r)
      /. current.Stage.line.Line.r
    in
    let next = with_r stage r_new in
    if rel < 1e-6 || iter >= max_iterations then
      { stage = next; r_effective = r_new; frequency = f; iterations = iter }
    else go next (iter + 1)
  in
  go stage 1

let overshoot_comparison geometry stage =
  let dc = Step_response.overshoot (Pade.coeffs stage) in
  let corrected = correct geometry stage in
  let skin = Step_response.overshoot (Pade.coeffs corrected.stage) in
  (dc, skin)
