let stage_delay stage =
  let { Line.r; c; _ } = stage.Stage.line in
  let h = stage.Stage.h in
  let rs = Stage.rs stage in
  let cp = Stage.cp stage in
  let cl = Stage.cl stage in
  (rs *. (cp +. cl)) +. (rs *. c *. h) +. (r *. h *. cl)
  +. (r *. c *. h *. h /. 2.0)

let total_delay stage ~line_length =
  if line_length <= 0.0 then invalid_arg "Elmore.total_delay: length <= 0";
  line_length /. stage.Stage.h *. stage_delay stage

let per_unit_length stage = stage_delay stage /. stage.Stage.h

let equals_b1 stage =
  let b1 = (Pade.coeffs stage).Pade.b1 in
  let t = stage_delay stage in
  Float.abs (t -. b1) <= 1e-12 *. Float.max (Float.abs t) (Float.abs b1)
