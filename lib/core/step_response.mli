(** Closed-form unit-step response of the second-order Padé model:

    v(t) = 1 - s2/(s2 - s1) exp(s1 t) + s1/(s2 - s1) exp(s2 t)

    (final value 1).  Near critical damping the expression suffers
    catastrophic cancellation, so a repeated-root formula
    v(t) = 1 - (1 + a t) exp(-a t), a = b1 / (2 b2), takes over. *)

val eval : Pade.coeffs -> float -> float
(** [eval cs t] for t >= 0; [eval cs 0.0 = 0.0].  Negative [t] raises
    [Invalid_argument]. *)

val eval_stage : Stage.t -> float -> float

val derivative : Pade.coeffs -> float -> float
(** dv/dt in closed form (used by the Newton delay solver). *)

val waveform : ?v0:float -> ?n:int -> Pade.coeffs -> t_end:float -> Rlc_waveform.Waveform.t
(** Sampled response scaled to final value [v0] (default 1.0). *)

val overshoot : Pade.coeffs -> float
(** Peak overshoot above the final value, as a fraction of the final
    value: exp(-pi zeta / sqrt(1 - zeta^2)) for zeta < 1, else 0. *)

val peak_time : Pade.coeffs -> float option
(** Time of the first response peak (underdamped only):
    pi / (omega_n sqrt(1 - zeta^2)). *)

val undershoot_depth : Pade.coeffs -> float
(** Depth of the first post-peak trough below the final value, as a
    fraction of the final value: overshoot^2 for an underdamped
    second-order system, else 0.  This is the excursion that flips
    inverters in Section 3.3.1. *)
