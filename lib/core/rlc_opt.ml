open Rlc_numerics

type method_ = Newton_g | Nelder_mead

type result = {
  h : float;
  k : float;
  tau : float;
  delay_per_length : float;
  method_ : method_;
  newton_converged : bool;
  newton_iterations : int;
}

(* Raw residuals of equations (7)-(8), computed in complex arithmetic
   (the conjugate pole pair makes the imaginary parts cancel). *)
let residuals_raw ?(f = 0.5) stage =
  let cs = Pade.coeffs stage in
  let { Poles.s1; s2 } = Poles.of_coeffs cs in
  let sens = Poles.sensitivities stage in
  let tau = Delay.of_coeffs ~f cs in
  let h = stage.Stage.h in
  let open Cx in
  let e1 = exp (scale tau s1) and e2 = exp (scale tau s2) in
  let one_minus_f = of_float (1.0 -. f) in
  let g1 =
    (one_minus_f *: (sens.Poles.ds2_dh -: sens.Poles.ds1_dh))
    -: (sens.Poles.ds2_dh *: e1)
    +: (sens.Poles.ds1_dh *: e2)
    -: (scale tau s2 *: (sens.Poles.ds1_dh +: scale (1.0 /. h) s1) *: e1)
    +: (scale tau s1 *: (sens.Poles.ds2_dh +: scale (1.0 /. h) s2) *: e2)
  in
  let g2 =
    (one_minus_f *: (sens.Poles.ds2_dk -: sens.Poles.ds1_dk))
    -: (sens.Poles.ds2_dk *: e1)
    -: (scale tau s2 *: sens.Poles.ds1_dk *: e1)
    +: (sens.Poles.ds1_dk *: e2)
    +: (scale tau s1 *: sens.Poles.ds2_dk *: e2)
  in
  (* Equations (7)-(8) inherit the structure of (3) multiplied by
     (s2 - s1): real when the poles are real, PURELY IMAGINARY when
     they are a conjugate pair (every term is then z - conj z).  The
     scalar content is the non-vanishing component. *)
  let project g =
    if Pade.discriminant cs < 0.0 then Cx.im g else Cx.re g
  in
  (project g1, project g2)

let residuals ?f stage =
  let g1, g2 = residuals_raw ?f stage in
  (* Normalize: poles scale as 1/b1, so ds/dh ~ 1/(b1 h) and
     ds/dk ~ 1/(b1 k).  Multiplying by (b1 h) and (b1 k) makes both
     residuals dimensionless and O(1) away from the optimum. *)
  let b1 = (Pade.coeffs stage).Pade.b1 in
  (g1 *. b1 *. stage.Stage.h, g2 *. b1 *. stage.Stage.k)

let objective ?(f = 0.5) node ~l ~h ~k =
  if h <= 0.0 || k <= 0.0 then nan
  else begin
    try
      let stage = Stage.of_node node ~l ~h ~k in
      Delay.of_stage ~f stage /. h
    with Invalid_argument _ | Delay.No_delay -> nan
  end

let make_result ?(f = 0.5) node ~l ~h ~k ~method_ ~newton_converged
    ~newton_iterations =
  let stage = Stage.of_node node ~l ~h ~k in
  let tau = Delay.of_stage ~f stage in
  {
    h;
    k;
    tau;
    delay_per_length = tau /. h;
    method_;
    newton_converged;
    newton_iterations;
  }

(* The stage-model evaluation workspace: the precomputed context the
   optimizer loops re-evaluate against, carried explicitly through the
   unified {!Rlc_circuit.Whatif} objective/residuals interface instead
   of being captured in per-call-site closure shapes. *)
type stage_workspace = {
  sw_node : Rlc_tech.Node.t;
  sw_l : float;
  sw_f : float;
  sw_h0 : float;  (* (h, k) scaling seeds from the RC closed form *)
  sw_k0 : float;
}

let newton_residuals ws x =
  let h = x.(0) *. ws.sw_h0 and k = x.(1) *. ws.sw_k0 in
  if h <= 0.0 || k <= 0.0 then [| nan; nan |]
  else begin
    try
      let stage = Stage.of_node ws.sw_node ~l:ws.sw_l ~h ~k in
      let g1, g2 = residuals ~f:ws.sw_f stage in
      [| g1; g2 |]
    with Invalid_argument _ | Delay.No_delay -> [| nan; nan |]
  end

let optimize_newton_only ?(f = 0.5) node ~l =
  let rc = Rc_opt.optimize node in
  let h0 = rc.Rc_opt.h_opt and k0 = rc.Rc_opt.k_opt in
  let ws = { sw_node = node; sw_l = l; sw_f = f; sw_h0 = h0; sw_k0 = k0 } in
  let system =
    Rlc_circuit.Whatif.custom_residuals ~workspace:ws ~eval:newton_residuals
  in
  try
    let sol =
      Rlc_circuit.Whatif.solve_residuals ~max_iter:60 ~tol:1e-10
        ~lower:[| 1e-3; 1e-3 |] ~upper:[| 1e3; 1e3 |] system
        ~x0:[| 1.0; 1.0 |]
    in
    if not sol.Newton.converged then None
    else begin
      let h = sol.Newton.x.(0) *. h0 and k = sol.Newton.x.(1) *. k0 in
      Some
        (make_result ~f node ~l ~h ~k ~method_:Newton_g ~newton_converged:true
           ~newton_iterations:sol.Newton.iterations)
    end
  with Invalid_argument _ | Delay.No_delay | Lu.Singular -> None

(* Coarse multiplicative grid scan around the RC optimum to seed
   Nelder-Mead: at large l the optimum drifts several-fold away. *)
let grid_seed ?f node ~l ~h0 ~k0 =
  let h_mults = [ 0.5; 0.75; 1.0; 1.5; 2.0; 3.0; 4.5 ] in
  let k_mults = [ 0.2; 0.35; 0.5; 0.7; 1.0; 1.4 ] in
  let best = ref (h0, k0, objective ?f node ~l ~h:h0 ~k:k0) in
  List.iter
    (fun hm ->
      List.iter
        (fun km ->
          let h = hm *. h0 and k = km *. k0 in
          let v = objective ?f node ~l ~h ~k in
          let _, _, vb = !best in
          if (not (Float.is_nan v)) && (Float.is_nan vb || v < vb) then
            best := (h, k, v))
        k_mults)
    h_mults;
  let h, k, _ = !best in
  (h, k)

(* tau/h over log-space (h, k) — Nelder-Mead's half of the unified
   interface; nan (out of domain) rejects per the Whatif convention. *)
let nm_objective ws x =
  objective ~f:ws.sw_f ws.sw_node ~l:ws.sw_l ~h:(Float.exp x.(0))
    ~k:(Float.exp x.(1))

let optimize_nm_only ?(f = 0.5) node ~l =
  let rc = Rc_opt.optimize node in
  let h0, k0 = grid_seed ~f node ~l ~h0:rc.Rc_opt.h_opt ~k0:rc.Rc_opt.k_opt in
  let ws = { sw_node = node; sw_l = l; sw_f = f; sw_h0 = h0; sw_k0 = k0 } in
  let obj = Rlc_circuit.Whatif.custom ~workspace:ws ~eval:nm_objective in
  let sol =
    Rlc_circuit.Whatif.minimize ~max_iter:4000 ~ftol:1e-14 ~xtol:1e-9 obj
      ~x0:[| Float.log h0; Float.log k0 |]
  in
  let h = Float.exp sol.Nelder_mead.x.(0)
  and k = Float.exp sol.Nelder_mead.x.(1) in
  make_result ~f node ~l ~h ~k ~method_:Nelder_mead ~newton_converged:false
    ~newton_iterations:0

let optimize ?(f = 0.5) node ~l =
  match optimize_newton_only ~f node ~l with
  | Some newton_result ->
      (* Guard against converging to a stationary point that is not the
         minimum: accept Newton only if Nelder-Mead cannot beat it. *)
      let nm = optimize_nm_only ~f node ~l in
      if
        nm.delay_per_length
        < newton_result.delay_per_length *. (1.0 -. 1e-6)
      then { nm with newton_converged = false }
      else newton_result
  | None -> optimize_nm_only ~f node ~l

let sweep ?f ?(n = 26) node ~l_max =
  if n < 2 then invalid_arg "Rlc_opt.sweep: n < 2";
  if l_max <= 0.0 then invalid_arg "Rlc_opt.sweep: l_max <= 0";
  List.init n (fun i ->
      let l = float_of_int i /. float_of_int (n - 1) *. l_max in
      (l, optimize ?f node ~l))
