(** Skin-effect correction of a repeater stage.

    The paper treats the wire resistance as a constant; at the GHz
    ringing frequencies of underdamped stages the skin effect raises it
    (see {!Rlc_extraction.Skin}), adding damping the DC model misses.
    The correction here is the standard single-frequency approximation:
    evaluate r at the stage's own ringing frequency, iterated to a
    fixed point (the ringing frequency moves as r changes).

    The corrected stage always rings LESS: overshoot and the critical
    inductance margin both shrink, so the paper's constant-r analysis
    is conservative for signal integrity — a useful bound to know. *)

type correction = {
  stage : Stage.t;  (** stage with the corrected resistance *)
  r_effective : float;  (** ohm/m used, >= the DC value *)
  frequency : float;
      (** ringing (or bandwidth-equivalent) frequency the resistance
          was evaluated at, Hz *)
  iterations : int;
}

val correct :
  ?rho:float -> ?max_iterations:int ->
  Rlc_extraction.Geometry.t -> Stage.t -> correction
(** Fixed-point iteration (default cap 8; converges in 2-3).  The
    frequency is Im(pole)/2pi when underdamped, else 1/(2 pi b1). *)

val overshoot_comparison :
  Rlc_extraction.Geometry.t -> Stage.t -> float * float
(** (overshoot with DC resistance, overshoot with the skin-corrected
    resistance) — quantifies how conservative the constant-r model
    is. *)
