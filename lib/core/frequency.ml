open Rlc_numerics

type point = { freq : float; mag_db : float; phase_deg : float }

let eval_jw stage f = Transfer.eval stage (Cx.make 0.0 (2.0 *. Float.pi *. f))

let response stage f =
  if f <= 0.0 then invalid_arg "Frequency.response: f <= 0";
  let h = eval_jw stage f in
  {
    freq = f;
    mag_db = 20.0 *. Float.log10 (Float.max (Cx.norm h) 1e-300);
    phase_deg = Cx.arg h *. 180.0 /. Float.pi;
  }

let bode ?(points = 200) stage ~f_min ~f_max =
  if points < 2 then invalid_arg "Frequency.bode: points < 2";
  if f_min <= 0.0 || f_max <= f_min then
    invalid_arg "Frequency.bode: need 0 < f_min < f_max";
  let ratio = Float.log (f_max /. f_min) in
  List.init points (fun i ->
      let t = float_of_int i /. float_of_int (points - 1) in
      response stage (f_min *. Float.exp (t *. ratio)))

let magnitude stage f = Cx.norm (eval_jw stage f)

let bandwidth_3db_opt ?(f_max = 1e12) stage =
  let target = 1.0 /. Float.sqrt 2.0 in
  (* H(0) = 1 *)
  let below f = magnitude stage f -. target in
  (* expanding scan for a bracket, then bisection in log space *)
  let rec scan f = if f > f_max then None else if below f < 0.0 then Some f else scan (f *. 2.0) in
  match scan 1e6 with
  | None -> None
  | Some hi ->
      let lo = hi /. 2.0 in
      if below lo < 0.0 then Some lo
      else begin
        let g x = below (Float.exp x) in
        Some (Float.exp (Roots.bisect g (Float.log lo) (Float.log hi)))
      end

let bandwidth_3db ?f_max stage =
  match bandwidth_3db_opt ?f_max stage with
  | Some f -> f
  | None -> raise Not_found

let resonance ?(f_max = 1e12) stage =
  (* coarse log scan for the max, then golden-section refinement *)
  let n = 400 in
  let f_min = 1e6 in
  let ratio = Float.log (f_max /. f_min) in
  let at i = f_min *. Float.exp (float_of_int i /. float_of_int n *. ratio) in
  let best = ref (0, magnitude stage (at 0)) in
  for i = 1 to n do
    let m = magnitude stage (at i) in
    if m > snd !best then best := (i, m)
  done;
  let i0, _ = !best in
  let lo = at (Int.max 0 (i0 - 1)) and hi = at (Int.min n (i0 + 1)) in
  let phi = (Float.sqrt 5.0 -. 1.0) /. 2.0 in
  let rec golden a b iters =
    if iters = 0 then 0.5 *. (a +. b)
    else begin
      let x1 = b -. (phi *. (b -. a)) in
      let x2 = a +. (phi *. (b -. a)) in
      if magnitude stage x1 > magnitude stage x2 then golden a x2 (iters - 1)
      else golden x1 b (iters - 1)
    end
  in
  let f_peak = golden lo hi 40 in
  let peak = magnitude stage f_peak in
  let peak_db = 20.0 *. Float.log10 peak in
  if peak_db > 0.01 then Some (f_peak, peak_db) else None

let group_delay stage f =
  if f <= 0.0 then invalid_arg "Frequency.group_delay: f <= 0";
  let df = 1e-4 *. f in
  let phase x = Cx.arg (eval_jw stage x) in
  let p1 = phase (f -. df) and p2 = phase (f +. df) in
  (* unwrap a possible 2 pi jump across the interval *)
  let dp =
    let raw = p2 -. p1 in
    if raw > Float.pi then raw -. (2.0 *. Float.pi)
    else if raw < -.Float.pi then raw +. (2.0 *. Float.pi)
    else raw
  in
  -.dp /. (2.0 *. Float.pi *. (2.0 *. df))
