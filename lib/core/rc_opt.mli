(** Closed-form Elmore-optimal repeater insertion (Section 3.1):

    h_optRC  = sqrt(2 r_s (c_0 + c_p) / (r c))
    k_optRC  = sqrt(r_s c / (r c_0))
    tau_optRC = 2 r_s (c_0 + c_p) (1 + sqrt(2 c_0 / (c_0 + c_p)))

    tau_optRC is independent of the wiring level (r, c) — a technology
    constant.  The module also inverts the three formulas: the paper
    measures (h_opt, k_opt, tau_opt) in SPICE and back-solves for the
    driver parameters (r_s, c_0, c_p); [derive_driver] is that flow. *)

type result = {
  h_opt : float;  (** optimal segment length, m *)
  k_opt : float;  (** optimal repeater size *)
  tau_opt : float;  (** Elmore delay of the optimal segment, s *)
}

val optimize : Rlc_tech.Node.t -> result

val optimize_params :
  r:float -> c:float -> driver:Rlc_tech.Driver.t -> result
(** Same computation from raw per-unit-length parameters. *)

val derive_driver :
  r:float -> c:float -> h_opt:float -> k_opt:float -> tau_opt:float ->
  Rlc_tech.Driver.t
(** Inverse derivation.  Raises [Invalid_argument] when the inputs are
    inconsistent with any positive (r_s, c_0, c_p), e.g. when
    tau_opt <= r c h_opt^2 (q would be non-positive). *)

val stage : Rlc_tech.Node.t -> l:float -> Stage.t
(** The RC-optimally-sized stage of a node with inductance [l] painted
    on — the configuration whose delay penalty Figure 8 studies. *)
