(** Power model for repeater-inserted interconnect, and power-aware
    sizing — the paper's natural extension (the authors' follow-up work
    is power-optimal repeater insertion).

    Per unit length of wire, at switching activity [alpha] and clock
    [f_clk]:

    - dynamic:  alpha f V^2 (c + (c_p + c_0) k / h)
      (wire capacitance plus the repeater parasitics every h metres);
    - leakage:  i_leak k / h * V
      ([i_leak] = leakage current of a minimum-sized repeater);
    - short-circuit power is neglected (sharp input edges at optimal
      sizing), as is standard for repeater-insertion studies.

    Delay-optimal sizing (the paper's objective) is power-hungry: the
    optimum of tau/h is shallow, so backing off the repeater size k and
    stretching h trades a few percent of delay for tens of percent of
    power.  [optimize_weighted] exposes that trade-off curve. *)

type params = {
  f_clk : float;  (** clock frequency, Hz *)
  activity : float;  (** switching activity factor, [0, 1] *)
  i_leak : float;  (** leakage current of a minimum repeater, A *)
}

val default_params : params
(** 1 GHz, activity 0.15, 10 nA minimum-repeater leakage. *)

val dynamic_per_length :
  ?params:params -> Rlc_tech.Node.t -> h:float -> k:float -> float
(** W/m. *)

val leakage_per_length :
  ?params:params -> Rlc_tech.Node.t -> h:float -> k:float -> float

val per_length :
  ?params:params -> Rlc_tech.Node.t -> h:float -> k:float -> float
(** Total (dynamic + leakage), W/m. *)

val energy_per_transition_per_length :
  Rlc_tech.Node.t -> h:float -> k:float -> float
(** J/m for one full output transition: V^2 (c + (c_p + c_0) k / h). *)

type result = {
  h : float;
  k : float;
  delay_per_length : float;  (** s/m *)
  power_per_length : float;  (** W/m *)
  delay_penalty : float;  (** delay relative to the delay-only optimum *)
  power_saving : float;  (** 1 - power / power(delay-only optimum) *)
}

val evaluate :
  ?params:params -> ?f:float -> Rlc_tech.Node.t -> l:float -> h:float ->
  k:float -> result
(** Metrics of an explicit design point (penalty/saving are relative to
    the delay-optimal point at the same l). *)

val optimize_weighted :
  ?params:params -> ?f:float -> Rlc_tech.Node.t -> l:float ->
  lambda:float -> result
(** Minimize (tau/h) * (P/len)^lambda — [lambda] = 0 reproduces the
    paper's delay-only optimum, larger values weight power more
    heavily.  Solved with Nelder-Mead in log-space (the objective is
    unimodal on the physical domain). *)

val pareto :
  ?params:params -> ?f:float -> ?lambdas:float list -> Rlc_tech.Node.t ->
  l:float -> result list
(** The delay/power trade-off curve (default lambdas
    0, 0.1, ..., 1.0). *)
