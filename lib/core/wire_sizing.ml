type wire_point = {
  width : float;
  geometry : Rlc_extraction.Geometry.t;
  r : float;
  c : float;
  l : float;
}

let default_l_policy g = 2.0 *. Rlc_extraction.Inductance.microstrip_loop g

let wire_at ?(l_policy = default_l_policy) node ~width =
  if width <= 0.0 then invalid_arg "Wire_sizing.wire_at: width <= 0";
  let g0 = node.Rlc_tech.Node.geometry in
  let pitch = g0.Rlc_extraction.Geometry.pitch in
  if width >= pitch then
    invalid_arg "Wire_sizing.wire_at: width does not fit the pitch";
  let geometry =
    Rlc_extraction.Geometry.make ~width ~pitch
      ~thickness:g0.Rlc_extraction.Geometry.thickness
      ~t_ins:g0.Rlc_extraction.Geometry.t_ins
      ~eps_r:g0.Rlc_extraction.Geometry.eps_r
  in
  {
    width;
    geometry;
    r = Rlc_extraction.Resistance.per_length geometry;
    c = Rlc_extraction.Capacitance.total ~miller:1.0 geometry;
    l = l_policy geometry;
  }

type result = {
  wire : wire_point;
  h : float;
  k : float;
  delay_per_length : float;
}

let evaluate ?l_policy ?f node ~width =
  let wire = wire_at ?l_policy node ~width in
  let tweaked =
    Rlc_tech.Node.make ~name:node.Rlc_tech.Node.name
      ~feature_nm:node.Rlc_tech.Node.feature_nm ~vdd:node.Rlc_tech.Node.vdd
      ~r:wire.r ~c:wire.c ~geometry:wire.geometry
      ~driver:node.Rlc_tech.Node.driver ~l_max:node.Rlc_tech.Node.l_max ()
  in
  let opt = Rlc_opt.optimize ?f tweaked ~l:wire.l in
  {
    wire;
    h = opt.Rlc_opt.h;
    k = opt.Rlc_opt.k;
    delay_per_length = opt.Rlc_opt.delay_per_length;
  }

let optimize ?l_policy ?f ?(w_min = 0.25e-6) ?w_max node =
  let w_max =
    match w_max with
    | Some w -> w
    | None ->
        0.9 *. node.Rlc_tech.Node.geometry.Rlc_extraction.Geometry.pitch
  in
  if w_min <= 0.0 || w_max <= w_min then
    invalid_arg "Wire_sizing.optimize: bad width interval";
  let objective w = (evaluate ?l_policy ?f node ~width:w).delay_per_length in
  (* golden-section search on the (unimodal) delay-vs-width curve *)
  let phi = (Float.sqrt 5.0 -. 1.0) /. 2.0 in
  let rec go a b iters =
    if iters = 0 || b -. a < 1e-3 *. b then 0.5 *. (a +. b)
    else begin
      let x1 = b -. (phi *. (b -. a)) in
      let x2 = a +. (phi *. (b -. a)) in
      if objective x1 < objective x2 then go a x2 (iters - 1)
      else go x1 b (iters - 1)
    end
  in
  let w_star = go w_min w_max 30 in
  evaluate ?l_policy ?f node ~width:w_star

let sweep ?l_policy ?f node ~widths =
  List.map (fun width -> evaluate ?l_policy ?f node ~width) widths
