(** Complex ABCD (chain) two-port matrices.

    Section 2.1 of the paper composes the driver, the distributed line
    and the load as a cascade of ABCD matrices; this module provides
    exactly that algebra over complex frequency-domain values. *)

type t = {
  a : Rlc_numerics.Cx.t;
  b : Rlc_numerics.Cx.t;
  c : Rlc_numerics.Cx.t;
  d : Rlc_numerics.Cx.t;
}

val identity : t

val series_impedance : Rlc_numerics.Cx.t -> t
(** [[1 Z]; [0 1]] — e.g. the driver resistance R_S. *)

val shunt_admittance : Rlc_numerics.Cx.t -> t
(** [[1 0]; [Y 1]] — e.g. a capacitance s*C to ground. *)

val rlc_line : Line.t -> length:float -> s:Rlc_numerics.Cx.t -> t
(** The distributed-line matrix
    [[cosh(theta h), Z0 sinh(theta h)]; [sinh(theta h)/Z0, cosh(theta h)]].
    Well-defined for any s (including s -> 0 limits) because only the
    branch-independent products are formed. *)

val cascade : t -> t -> t
(** Matrix product: [cascade m1 m2] is signal flowing through m1 then
    m2. *)

val cascade_list : t list -> t

val determinant : t -> Rlc_numerics.Cx.t
(** AD - BC; 1 for reciprocal networks — used as a numerical check. *)

val voltage_transfer_into_open : t -> Rlc_numerics.Cx.t
(** Vout/Vin with an open-circuited output port: 1 / A.  (Capacitive
    loads are folded into the cascade as shunt admittances, so the
    final port is open.) *)
