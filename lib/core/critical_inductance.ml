let of_stage stage =
  let { Line.r; c; _ } = stage.Stage.line in
  let h = stage.Stage.h in
  let rs = Stage.rs stage in
  let cp = Stage.cp stage in
  let cl = Stage.cl stage in
  (* b1 and the l-independent part of b2 *)
  let { Pade.b1; _ } = Pade.coeffs stage in
  let fixed =
    (r *. r *. c *. c *. (h ** 4.0) /. 24.0)
    +. (rs *. (cp +. cl) *. r *. c *. h *. h /. 2.0)
    +. (((rs *. c *. h) +. (cl *. r *. h)) *. r *. c *. h *. h /. 6.0)
    +. (rs *. cp *. cl *. r *. h)
  in
  let l_weight = (c *. h *. h /. 2.0) +. (cl *. h) in
  ((b1 *. b1 /. 4.0) -. fixed) /. l_weight

let of_node node ~h ~k = of_stage (Stage.of_node node ~l:0.0 ~h ~k)

let damping_margin stage = stage.Stage.line.Line.l -. of_stage stage
