(** Poles of the second-order Padé transfer function and their partial
    derivatives with respect to (h, k).

    s_{1,2} = (-b1 +/- sqrt(b1^2 - 4 b2)) / (2 b2)

    The poles are real (overdamped) or a complex-conjugate pair
    (underdamped); every consumer works over {!Rlc_numerics.Cx} so one
    code path covers both regimes. *)

type t = {
  s1 : Rlc_numerics.Cx.t;  (** the "+" root *)
  s2 : Rlc_numerics.Cx.t;  (** the "-" root *)
}

val of_coeffs : Pade.coeffs -> t
(** Raises [Invalid_argument] when b2 <= 0 (the Padé model of a
    physical stage always has b2 > 0). *)

val of_stage : Stage.t -> t

val is_stable : t -> bool
(** Both poles strictly in the left half plane. *)

val separation : t -> float
(** |s1 - s2| / max(|s1|, |s2|): a relative measure of how close the
    stage is to critical damping (0 at critical). *)

type sensitivities = {
  ds1_dh : Rlc_numerics.Cx.t;
  ds2_dh : Rlc_numerics.Cx.t;
  ds1_dk : Rlc_numerics.Cx.t;
  ds2_dk : Rlc_numerics.Cx.t;
}

val sensitivities : Stage.t -> sensitivities
(** The paper's pole-derivative expression:
    ds/dx = 1/(2 b2) [ -db1/dx +/- (b1 db1/dx - 2 db2/dx)/sqrt(b1^2-4b2) ]
            - (s / b2) db2/dx
    Raises [Invalid_argument] within a tiny band around critical
    damping where the expression is singular (callers perturb l, h or
    k slightly, as the paper's optimizer implicitly does). *)
