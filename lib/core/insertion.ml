type plan = {
  segments : int;
  h : float;
  k : float;
  total_delay : float;
  continuous_bound : float;
  quantization_penalty : float;
}

let optimal_k_for_h ?f node ~l ~h =
  if h <= 0.0 then invalid_arg "Insertion.optimal_k_for_h: h <= 0";
  let rc = Rc_opt.optimize node in
  let objective x =
    Rlc_opt.objective ?f node ~l ~h ~k:(Float.exp x.(0))
  in
  let sol =
    Rlc_numerics.Nelder_mead.minimize ~max_iter:2000 ~f:objective
      ~x0:[| Float.log rc.Rc_opt.k_opt |] ()
  in
  Float.exp sol.Rlc_numerics.Nelder_mead.x.(0)

let plan ?f node ~l ~length =
  if length <= 0.0 then invalid_arg "Insertion.plan: length <= 0";
  let opt = Rlc_opt.optimize ?f node ~l in
  let continuous_bound = opt.Rlc_opt.delay_per_length *. length in
  let n_star = length /. opt.Rlc_opt.h in
  let candidates =
    let base = int_of_float (Float.round n_star) in
    List.sort_uniq Int.compare
      (List.filter (fun n -> n >= 1) [ base - 1; base; base + 1; 1 ])
  in
  let evaluate n =
    let h = length /. float_of_int n in
    let k = optimal_k_for_h ?f node ~l ~h in
    let stage = Stage.of_node node ~l ~h ~k in
    let tau = Delay.of_stage ?f stage in
    (n, h, k, float_of_int n *. tau)
  in
  let best =
    List.fold_left
      (fun acc n ->
        let ((_, _, _, d) as cand) = evaluate n in
        match acc with
        | Some (_, _, _, d0) when d0 <= d -> acc
        | _ -> Some cand)
      None candidates
  in
  match best with
  | None -> assert false (* candidates is never empty *)
  | Some (segments, h, k, total_delay) ->
      {
        segments;
        h;
        k;
        total_delay;
        continuous_bound;
        quantization_penalty = (total_delay /. continuous_bound) -. 1.0;
      }

let sweep_lengths ?f node ~l ~lengths =
  List.map (fun length -> plan ?f node ~l ~length) lengths
