type distribution = {
  l_min : float;
  l_max : float;
  miller_min : float;
  miller_max : float;
  rs_sigma : float;
}

let default_distribution node =
  {
    l_min = 0.25 *. node.Rlc_tech.Node.l_max;
    l_max = 0.75 *. node.Rlc_tech.Node.l_max;
    miller_min = 0.5;
    miller_max = 1.5;
    rs_sigma = 0.05;
  }

type sample = { l : float; c : float; rs_scale : float }

let validate dist =
  if dist.l_min < 0.0 || dist.l_max < dist.l_min then
    invalid_arg "Variation: bad inductance range";
  if dist.miller_min < 0.0 || dist.miller_max < dist.miller_min then
    invalid_arg "Variation: bad miller range";
  if dist.rs_sigma < 0.0 then invalid_arg "Variation: rs_sigma < 0"

(* Box-Muller on the deterministic PRNG state *)
let gaussian state =
  let u1 = Random.State.float state 1.0 +. 1e-300 in
  let u2 = Random.State.float state 1.0 in
  Float.sqrt (-2.0 *. Float.log u1) *. Float.cos (2.0 *. Float.pi *. u2)

let draw ?(seed = 42) ~n node dist =
  validate dist;
  if n < 1 then invalid_arg "Variation.draw: n < 1";
  let state = Random.State.make [| seed |] in
  let uniform lo hi = lo +. Random.State.float state (hi -. lo) in
  (* c varies with the miller factor through the coupling/ground split
     of the node's extraction geometry; scale the Table 1 value by the
     same ratio the analytic extractor predicts *)
  let g = node.Rlc_tech.Node.geometry in
  let c_quiet = Rlc_extraction.Capacitance.total ~miller:1.0 g in
  List.init n (fun _ ->
      let miller = uniform dist.miller_min dist.miller_max in
      let c_ratio = Rlc_extraction.Capacitance.total ~miller g /. c_quiet in
      let z = Float.max (-3.0) (Float.min 3.0 (gaussian state)) in
      {
        l = uniform dist.l_min dist.l_max;
        c = node.Rlc_tech.Node.c *. c_ratio;
        rs_scale = 1.0 +. (dist.rs_sigma *. z);
      })

let stage_delay_of_sample ?f node ~h ~k sample =
  let driver =
    let d = node.Rlc_tech.Node.driver in
    Rlc_tech.Driver.make
      ~rs:(d.Rlc_tech.Driver.rs *. sample.rs_scale)
      ~c0:d.Rlc_tech.Driver.c0 ~cp:d.Rlc_tech.Driver.cp
  in
  let line = Line.make ~r:node.Rlc_tech.Node.r ~l:sample.l ~c:sample.c in
  Delay.of_stage ?f (Stage.make ~line ~driver ~h ~k)

type stats = {
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p95 : float;
}

let stats_of array =
  {
    mean = Rlc_numerics.Stats.mean array;
    stddev = Rlc_numerics.Stats.stddev array;
    min = Rlc_numerics.Stats.min array;
    max = Rlc_numerics.Stats.max array;
    p95 = Rlc_numerics.Stats.percentile array 95.0;
  }

(* The Monte-Carlo evaluation flows through the unified
   {!Rlc_circuit.Whatif} objective shape: the (node, h, k, f) context
   is a workspace built once per sweep, and each sample is the
   parameter vector [| l; c; rs_scale |].  The record is immutable and
   the evaluation pure, so sharing one objective across a
   {!Rlc_parallel.Pool} fan-out is safe. *)
type mc_workspace = {
  mc_node : Rlc_tech.Node.t;
  mc_h : float;
  mc_k : float;
  mc_f : float option;
}

let mc_eval ws x =
  let sample = { l = x.(0); c = x.(1); rs_scale = x.(2) } in
  stage_delay_of_sample ?f:ws.mc_f ws.mc_node ~h:ws.mc_h ~k:ws.mc_k sample
  /. ws.mc_h

(* Sampling stays sequential (one PRNG stream); only the per-sample
   delay evaluations fan out.  Results land in the array by sample
   index, so the statistics are bit-identical for any domain count. *)
let sample_delays ?pool ?f node ~h ~k samples =
  let pool =
    match pool with Some p -> p | None -> Rlc_parallel.Pool.sequential
  in
  let obj =
    Rlc_circuit.Whatif.custom
      ~workspace:{ mc_node = node; mc_h = h; mc_k = k; mc_f = f }
      ~eval:mc_eval
  in
  Rlc_parallel.Pool.map pool
    (fun s -> Rlc_circuit.Whatif.eval obj [| s.l; s.c; s.rs_scale |])
    (Array.of_list samples)

let delay_statistics ?pool ?seed ?(n = 500) ?f node ~h ~k dist =
  let samples = draw ?seed ~n node dist in
  stats_of (sample_delays ?pool ?f node ~h ~k samples)

let compare_sizings ?pool ?seed ?(n = 500) ?f node dist candidates =
  let samples = draw ?seed ~n node dist in
  List.map
    (fun (name, h, k) ->
      (name, stats_of (sample_delays ?pool ?f node ~h ~k samples)))
    candidates
