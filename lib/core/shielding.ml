type layout = Dense | Spaced | Shielded

type result = {
  layout : layout;
  c_eff : float;
  l_eff : float;
  nominal_delay : float;
  delay_spread : float;
  victim_noise : float;
  tracks_per_signal : float;
}

let pp_layout ppf = function
  | Dense -> Format.pp_print_string ppf "dense"
  | Spaced -> Format.pp_print_string ppf "spaced"
  | Shielded -> Format.pp_print_string ppf "shielded"

let geometry_at_pitch g pitch =
  Rlc_extraction.Geometry.make ~width:g.Rlc_extraction.Geometry.width ~pitch
    ~thickness:g.Rlc_extraction.Geometry.thickness
    ~t_ins:g.Rlc_extraction.Geometry.t_ins
    ~eps_r:g.Rlc_extraction.Geometry.eps_r

let bus_of_geometry ~n g ~h =
  let cg = Rlc_extraction.Capacitance.meijs_fokkema_ground g in
  let cc = Rlc_extraction.Capacitance.sakurai_coupling g in
  (* mid-range return-path assumption for the unshielded layouts, as in
     Wire_sizing: twice the microstrip loop *)
  let l = 2.0 *. Rlc_extraction.Inductance.microstrip_loop g in
  let lm =
    Float.min (0.45 *. l)
      (Rlc_extraction.Inductance.mutual_parallel
         ~d:g.Rlc_extraction.Geometry.pitch ~length:h)
  in
  Bus.make ~n ~r:(Rlc_extraction.Resistance.per_length g) ~l ~lm ~cg ~cc

let analyze ?(bus_width = 8) ?f node ~h ~k =
  if bus_width < 2 then invalid_arg "Shielding.analyze: bus_width < 2";
  if h <= 0.0 || k <= 0.0 then invalid_arg "Shielding.analyze: bad stage";
  let g = node.Rlc_tech.Node.geometry in
  let driver = node.Rlc_tech.Node.driver in
  let bus_result layout tracks g' =
    let bus = bus_of_geometry ~n:bus_width g' ~h in
    let lo, hi = Bus.delay_envelope ?f bus ~driver ~h ~k in
    let nominal =
      Delay.of_stage ?f
        (Stage.make
           ~line:
             (Line.make ~r:bus.Bus.r ~l:bus.Bus.l
                ~c:(bus.Bus.cg +. bus.Bus.cc))
           ~driver ~h ~k)
    in
    {
      layout;
      c_eff = bus.Bus.cg +. bus.Bus.cc;
      l_eff = bus.Bus.l;
      nominal_delay = nominal;
      delay_spread = (hi -. lo) /. nominal;
      victim_noise = Bus.victim_noise_peak bus ~driver ~h ~k;
      tracks_per_signal = tracks;
    }
  in
  let dense = bus_result Dense 1.0 g in
  let spaced =
    bus_result Spaced 2.0
      (geometry_at_pitch g (2.0 *. g.Rlc_extraction.Geometry.pitch))
  in
  let shielded =
    (* adjacent grounded tracks: both neighbour couplings become ground
       capacitance, the return is pinned one pitch away, and there is
       no signal neighbour to vary anything *)
    let cg =
      Rlc_extraction.Capacitance.meijs_fokkema_ground g
      +. (2.0 *. Rlc_extraction.Capacitance.sakurai_coupling g)
    in
    let l =
      Rlc_extraction.Inductance.loop_with_return g
        ~return_distance:g.Rlc_extraction.Geometry.pitch ~length:h
    in
    let line = Line.make ~r:(Rlc_extraction.Resistance.per_length g) ~l ~c:cg in
    let nominal = Delay.of_stage ?f (Stage.make ~line ~driver ~h ~k) in
    {
      layout = Shielded;
      c_eff = cg;
      l_eff = l;
      nominal_delay = nominal;
      delay_spread = 0.0;
      victim_noise = 0.0;
      tracks_per_signal = 2.0;
    }
  in
  [ dense; spaced; shielded ]
