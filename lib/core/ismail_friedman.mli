(** Ismail-Friedman curve-fitted RLC delay and repeater-insertion
    formulas (references [21, 22] of the paper) — the empirical
    baseline the paper's analytical optimizer is positioned against.

    The 50% propagation delay formula is their published fit

    t_pd = ( e^(-2.9 zeta^1.35) + 1.48 zeta ) / omega_n

    with zeta and omega_n taken from the stage's second-order model.
    The repeater-insertion corrections follow their published
    functional form

    h_opt / h_optRC = (1 + 0.18 T^3)^0.3
    k_opt / k_optRC = (1 + 0.16 T^3)^(-0.24)

    where T is a dimensionless inductance-to-resistance time-constant
    ratio.  Their exact definition involves the sized driver; we use
    the h- and k-independent reconstruction
    T = sqrt(l / c) / (r * h_optRC) (the line's LC impedance over the
    resistance of one RC-optimal segment), which preserves the fitted
    behaviour T = 0 at l = 0 and the published monotonicity.  The fits
    were made for 0 <= ch/(c0 k) <= 1 and 0 <= rs/(k r h) <= 1; outside
    that window ([in_fitted_range] is false) the formulas extrapolate,
    which is exactly the limitation Section 2.2 of the paper points
    out. *)

val delay_50 : Stage.t -> float
(** Their fitted 50% delay for the stage, seconds. *)

val t_lr : Rlc_tech.Node.t -> l:float -> float
(** The dimensionless T ratio at inductance [l] (H/m). *)

val h_opt : Rlc_tech.Node.t -> l:float -> float
(** Curve-fitted optimal segment length, m. *)

val k_opt : Rlc_tech.Node.t -> l:float -> float
(** Curve-fitted optimal repeater size. *)

val in_fitted_range : Stage.t -> bool
(** Whether the stage satisfies the validity window of their fit:
    ch/(c0 k) and rs/(k r h) both within [0, 1]. *)
