(** Deterministic process/environment corners.

    {!Variation} samples the uncertainty; sign-off flows instead
    enumerate named corners.  Each corner scales the wire parasitics,
    pins the inductance somewhere in its plausible range, and scales
    the driver strength; evaluating a design across all corners gives
    the guaranteed-by-construction delay window. *)

type corner = {
  name : string;
  r_scale : float;  (** wire resistance multiplier *)
  c_scale : float;  (** wire capacitance multiplier (Miller band) *)
  l_frac : float;  (** position in [0,1] of the node's inductance range *)
  rs_scale : float;  (** driver resistance multiplier *)
}

val typical : corner
val fast : corner
(** Strong driver, light wire, minimal inductance. *)

val slow : corner
(** Weak driver, heavy wire, maximal inductance. *)

val si_worst : corner
(** The signal-integrity corner: strong driver INTO maximal inductance
    — the underdamped extreme where overshoot peaks. *)

val standard_set : corner list
(** [typical; fast; slow; si_worst]. *)

type evaluation = {
  corner : corner;
  delay_per_length : float;  (** s/m at the given (h, k) *)
  overshoot : float;  (** fraction of swing *)
  underdamped : bool;
}

val apply : Rlc_tech.Node.t -> corner -> h:float -> k:float -> Stage.t
(** The stage a corner produces for a fixed design. *)

val evaluate :
  ?pool:Rlc_parallel.Pool.t -> ?f:float -> ?corners:corner list ->
  Rlc_tech.Node.t -> h:float -> k:float -> evaluation list
(** Evaluate a design over [corners] (default {!standard_set}),
    one corner per pool slot when [pool] is given (order and floats
    independent of the domain count). *)

val delay_window :
  ?pool:Rlc_parallel.Pool.t -> ?f:float -> ?corners:corner list ->
  Rlc_tech.Node.t -> h:float -> k:float -> float * float
(** (best, worst) delay/length over the corner set. *)
