(** Analytic sensitivity of the stage delay to its physical parameters.

    The f-delay tau is defined implicitly by v(tau; b1, b2) = f, so by
    the implicit function theorem

      d tau / d theta
        = - (dv/db1 * db1/dtheta + dv/db2 * db2/dtheta) / (dv/dt)

    dv/dt comes from the closed-form step-response derivative; the
    b-coefficient derivatives with respect to (r, l, c, rs, c0, cp) are
    simple polynomials.  This quantifies Section 3.2 of the paper
    pointwise: how many picoseconds each nH/mm of inductance
    uncertainty costs at a given design point. *)

type t = {
  wrt_l : float;  (** d tau / d l, s / (H/m) *)
  wrt_c : float;  (** d tau / d c, s / (F/m) *)
  wrt_r : float;  (** d tau / d r, s / (ohm/m) *)
  wrt_rs : float;  (** d tau / d rs, s / ohm *)
  elasticity_l : float;
      (** (l / tau) d tau / d l — relative delay change per relative
          inductance change; 0 at l = 0 by construction *)
  elasticity_c : float;
  elasticity_r : float;
}

val of_stage : ?f:float -> Stage.t -> t
(** Raises [Invalid_argument] for a degenerate stage (dv/dt = 0 at the
    crossing, which cannot happen for the first crossing of a stable
    stage).

    @deprecated the bare stage-model shape: it answers only for the
    four built-in parameters of a single analytic stage.  New call
    sites should compile the deck into a {!Rlc_circuit.Whatif}
    workspace and use {!gradient}, which handles any element
    parameter of any deck and offers the adjoint method. *)

val gradient :
  ?set:(Rlc_circuit.Whatif.param * float) list ->
  ?method_:[ `Fdiff | `Adjoint ] ->
  Rlc_circuit.Whatif.t ->
  Rlc_circuit.Whatif.target ->
  wrt:Rlc_circuit.Whatif.param array ->
  float array
(** [gradient ws target ~wrt] differentiates a circuit-level objective
    with respect to element parameters, evaluated at [set] (default:
    the base point).

    [`Fdiff] (the default — the legacy semantics) takes central
    differences of {!Rlc_circuit.Whatif.evaluate}, costing two
    evaluations per parameter; with the workspace's rank-1 fast path
    each is cheap, but the cost still scales with [Array.length wrt].
    [`Adjoint] delegates to {!Rlc_circuit.Whatif.gradient}: one
    forward + one transpose solve for the {e whole} gradient (three of
    each for the delay target).  The two methods agree to
    finite-difference accuracy (the test suite checks 1e-6 relative). *)

val delay_spread_estimate : ?f:float -> Stage.t -> l_uncertainty:float -> float
(** First-order delay spread (seconds) for a +/- [l_uncertainty] (H/m)
    inductance band: |d tau/d l| * 2 * l_uncertainty.  The Monte-Carlo
    module ({!Variation}) gives the exact distribution; this is the
    cheap linearised estimate, and the test suite checks they agree for
    small bands. *)
