(** Analytic sensitivity of the stage delay to its physical parameters.

    The f-delay tau is defined implicitly by v(tau; b1, b2) = f, so by
    the implicit function theorem

      d tau / d theta
        = - (dv/db1 * db1/dtheta + dv/db2 * db2/dtheta) / (dv/dt)

    dv/dt comes from the closed-form step-response derivative; the
    b-coefficient derivatives with respect to (r, l, c, rs, c0, cp) are
    simple polynomials.  This quantifies Section 3.2 of the paper
    pointwise: how many picoseconds each nH/mm of inductance
    uncertainty costs at a given design point. *)

type t = {
  wrt_l : float;  (** d tau / d l, s / (H/m) *)
  wrt_c : float;  (** d tau / d c, s / (F/m) *)
  wrt_r : float;  (** d tau / d r, s / (ohm/m) *)
  wrt_rs : float;  (** d tau / d rs, s / ohm *)
  elasticity_l : float;
      (** (l / tau) d tau / d l — relative delay change per relative
          inductance change; 0 at l = 0 by construction *)
  elasticity_c : float;
  elasticity_r : float;
}

val of_stage : ?f:float -> Stage.t -> t
(** Raises [Invalid_argument] for a degenerate stage (dv/dt = 0 at the
    crossing, which cannot happen for the first crossing of a stable
    stage). *)

val delay_spread_estimate : ?f:float -> Stage.t -> l_uncertainty:float -> float
(** First-order delay spread (seconds) for a +/- [l_uncertainty] (H/m)
    inductance band: |d tau/d l| * 2 * l_uncertainty.  The Monte-Carlo
    module ({!Variation}) gives the exact distribution; this is the
    cheap linearised estimate, and the test suite checks they agree for
    small bands. *)
