exception No_delay

let of_coeffs ?(f = 0.5) cs =
  if f <= 0.0 || f >= 1.0 then invalid_arg "Delay.of_coeffs: f outside (0,1)";
  if cs.Pade.b1 <= 0.0 || cs.Pade.b2 <= 0.0 then
    invalid_arg "Delay.of_coeffs: non-physical coefficients";
  let residual t = Step_response.eval cs t -. f in
  (* The Elmore-like constant b1 sets the timescale of the rise. *)
  let dt0 = cs.Pade.b1 /. 32.0 in
  let lo, hi =
    try Rlc_numerics.Roots.bracket_first residual ~t0:0.0 ~dt:dt0
    with Rlc_numerics.Roots.No_bracket -> raise No_delay
  in
  if lo = hi then lo
  else
    Rlc_numerics.Roots.newton_bracketed ~tol:1e-13 ~f:residual
      ~df:(Step_response.derivative cs) lo hi

let of_stage ?f stage = of_coeffs ?f (Pade.coeffs stage)

let per_unit_length ?f stage = of_stage ?f stage /. stage.Stage.h

let elmore_agreement stage =
  let tau_rlc = of_stage stage in
  let tau_rc = of_stage (Stage.with_l stage 0.0) in
  tau_rlc /. tau_rc
