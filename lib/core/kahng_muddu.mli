(** Kahng-Muddu analytic RLC delay approximation (reference [23] of the
    paper) — reconstructed baseline.

    Their model keeps the same second-order transfer function but
    replaces the numerical solution of the delay equation with regime
    approximations:

    - strongly overdamped (|b1^2 - 4 b2| >> b2, real poles): keep only
      the dominant pole, tau = ln(A / (1-f)) / (-s1) with
      A = s2 / (s2 - s1);
    - strongly underdamped: first crossing of the undamped carrier,
      tau = (pi - atan2(wd, -sigma)) / wd corrected to level f by the
      envelope;
    - otherwise: fall back to the critically damped closed form, whose
      50% delay is 1.9 b2 / b1 in their normalization.

    The paper's Section 2.1 observation is exactly that the fallback is
    independent of the line inductance l (b1 does not contain l and the
    critical form freezes b2 at b1^2/4), so the approximation cannot
    drive an optimization over l — which our benches demonstrate. *)

type regime = Dominant_pole | Oscillatory | Critical_fallback

val regime : ?threshold:float -> Pade.coeffs -> regime
(** [threshold] is the ratio (b1^2 - 4 b2) / b2 above which the system
    counts as strongly overdamped (default 10.0).  The oscillatory side
    is bounded — b1^2 - 4 b2 >= -4 b2 always — so it uses a fixed
    damping cut: zeta <= ~0.22 (disc <= -3.8 b2). *)

val delay : ?f:float -> ?threshold:float -> Pade.coeffs -> float
(** Approximate f*100% delay (default f = 0.5). *)

val delay_stage : ?f:float -> ?threshold:float -> Stage.t -> float

val is_applicable : ?threshold:float -> Pade.coeffs -> bool
(** Whether the configuration is in one of the two "strong" regimes
    where the approximation is accurate; [false] means the critical
    fallback (inductance-blind) is in use. *)
