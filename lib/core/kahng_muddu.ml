type regime = Dominant_pole | Oscillatory | Critical_fallback

let default_threshold = 10.0

(* The two "strong" regimes are asymmetric: disc = b1^2 - 4 b2 is
   unbounded above (dominant pole) but bounded below by -4 b2, so the
   oscillatory side uses a damping-factor cut (zeta <= ~0.22, i.e.
   disc <= -3.8 b2, within 5% of the -4 b2 bound) instead of the
   overdamped ratio threshold. *)
let regime ?(threshold = default_threshold) cs =
  let disc = Pade.discriminant cs in
  if disc >= threshold *. cs.Pade.b2 then Dominant_pole
  else if disc <= -3.8 *. cs.Pade.b2 then Oscillatory
  else Critical_fallback

let is_applicable ?threshold cs =
  match regime ?threshold cs with
  | Dominant_pole | Oscillatory -> true
  | Critical_fallback -> false

let delay ?(f = 0.5) ?threshold cs =
  if f <= 0.0 || f >= 1.0 then invalid_arg "Kahng_muddu.delay: f outside (0,1)";
  match regime ?threshold cs with
  | Dominant_pole ->
      (* real poles s1 > s2 (s1 dominant, closest to zero):
         v(t) ~ 1 - A e^{s1 t}, A = s2/(s2 - s1) *)
      let { Poles.s1; s2 } = Poles.of_coeffs cs in
      let s1 = Rlc_numerics.Cx.re s1 and s2 = Rlc_numerics.Cx.re s2 in
      let a = s2 /. (s2 -. s1) in
      Float.log (a /. (1.0 -. f)) /. -.s1
  | Oscillatory ->
      (* s = sigma +/- j wd; v(t) = 1 - e^{sigma t}(cos wd t
         - sigma/wd sin wd t).  Approximate the first f-crossing by the
         carrier crossing with the envelope frozen at its value there:
         start from the undamped crossing and apply one fixed-point
         refinement. *)
      let { Poles.s1; _ } = Poles.of_coeffs cs in
      let sigma = Rlc_numerics.Cx.re s1
      and wd = Float.abs (Rlc_numerics.Cx.im s1) in
      let phase = Float.atan2 wd (-.sigma) in
      let crossing envelope =
        (* cos(wd t - phase-ish) reaches 1 - (1-f)/envelope *)
        let target = (1.0 -. f) /. envelope in
        let target = Float.min 1.0 (Float.max (-1.0) target) in
        (Float.acos target +. phase -. (Float.pi /. 2.0)) /. wd
      in
      let t0 = crossing 1.0 in
      let t0 = Float.max t0 (0.1 /. wd) in
      crossing (Float.exp (-.sigma *. t0) /. Float.sqrt (1.0 +. ((sigma /. wd) ** 2.0)))
      |> Float.max (0.05 /. wd)
  | Critical_fallback ->
      (* Kahng-Muddu critically damped closed form; for f = 0.5 their
         normalization gives tau = 1.9 b2 / b1 (the value the paper
         quotes as "1.9/b1" in its b2-normalized form).  For general f
         solve (1 + a t) e^{-a t} = 1 - f with a = b1 / (2 b2) using
         the exact repeated-root expression. *)
      let a = cs.Pade.b1 /. (2.0 *. cs.Pade.b2) in
      if f = 0.5 then 1.9 *. cs.Pade.b2 /. cs.Pade.b1
      else begin
        let residual t = 1.0 -. ((1.0 +. (a *. t)) *. Float.exp (-.a *. t)) -. f in
        let lo, hi =
          Rlc_numerics.Roots.bracket_first residual ~t0:0.0 ~dt:(0.1 /. a)
        in
        Rlc_numerics.Roots.brent residual lo hi
      end

let delay_stage ?f ?threshold stage = delay ?f ?threshold (Pade.coeffs stage)
