(** The exact input-output transfer function of the
    driver / distributed-RLC-line / load stage — equation (1) of the
    paper:

    H(s) = 1 / ( [1 + s R_S (C_P + C_L)] cosh(theta h)
               + [R_S / Z0 + s C_L Z0 + s^2 R_S C_P C_L Z0] sinh(theta h) )

    Evaluated through the ABCD cascade of {!Two_port}, which is
    algebraically identical and numerically robust at small |s|. *)

val eval : Stage.t -> Rlc_numerics.Cx.t -> Rlc_numerics.Cx.t
(** [eval stage s] is H(s).  H(0) = 1 (DC gain of the unloaded
    divider). *)

val eval_direct : Stage.t -> Rlc_numerics.Cx.t -> Rlc_numerics.Cx.t
(** Literal transcription of equation (1); used to cross-validate
    [eval] in the test suite.  Undefined at s = 0. *)

val magnitude_db : Stage.t -> float -> float
(** |H(j 2 pi f)| in dB at the real frequency [f] (Hz). *)

val dc_gain : Stage.t -> float
(** Always 1.0 — exposed for clarity in examples. *)
