type corner = {
  name : string;
  r_scale : float;
  c_scale : float;
  l_frac : float;
  rs_scale : float;
}

let typical =
  { name = "typical"; r_scale = 1.0; c_scale = 1.0; l_frac = 0.35;
    rs_scale = 1.0 }

let fast =
  { name = "fast"; r_scale = 0.85; c_scale = 0.8; l_frac = 0.1;
    rs_scale = 0.85 }

let slow =
  { name = "slow"; r_scale = 1.15; c_scale = 1.3; l_frac = 0.8;
    rs_scale = 1.15 }

let si_worst =
  { name = "si-worst"; r_scale = 0.85; c_scale = 0.8; l_frac = 1.0;
    rs_scale = 0.85 }

let standard_set = [ typical; fast; slow; si_worst ]

type evaluation = {
  corner : corner;
  delay_per_length : float;
  overshoot : float;
  underdamped : bool;
}

let apply node corner ~h ~k =
  if corner.l_frac < 0.0 || corner.l_frac > 1.0 then
    invalid_arg "Corners.apply: l_frac outside [0,1]";
  let line =
    Line.make
      ~r:(node.Rlc_tech.Node.r *. corner.r_scale)
      ~l:(corner.l_frac *. node.Rlc_tech.Node.l_max)
      ~c:(node.Rlc_tech.Node.c *. corner.c_scale)
  in
  let d = node.Rlc_tech.Node.driver in
  let driver =
    Rlc_tech.Driver.make
      ~rs:(d.Rlc_tech.Driver.rs *. corner.rs_scale)
      ~c0:d.Rlc_tech.Driver.c0 ~cp:d.Rlc_tech.Driver.cp
  in
  Stage.make ~line ~driver ~h ~k

(* The per-corner delay flows through the unified
   {!Rlc_circuit.Whatif} objective shape — a (node, h, k, f) workspace
   built once, one parameter vector [| r_scale; c_scale; l_frac;
   rs_scale |] per corner — so the corner sweep re-evaluates against
   the same interface the optimizers and Monte-Carlo use.  The
   overshoot/damping classification stays alongside (it is not a
   scalar objective). *)
type corner_workspace = {
  cw_node : Rlc_tech.Node.t;
  cw_h : float;
  cw_k : float;
  cw_f : float option;
}

let corner_vector c = [| c.r_scale; c.c_scale; c.l_frac; c.rs_scale |]

let corner_of_vector x =
  { name = ""; r_scale = x.(0); c_scale = x.(1); l_frac = x.(2);
    rs_scale = x.(3) }

let corner_eval ws x =
  let stage =
    apply ws.cw_node (corner_of_vector x) ~h:ws.cw_h ~k:ws.cw_k
  in
  Delay.of_coeffs ?f:ws.cw_f (Pade.coeffs stage) /. ws.cw_h

let evaluate ?pool ?f ?(corners = standard_set) node ~h ~k =
  let pool =
    match pool with Some p -> p | None -> Rlc_parallel.Pool.sequential
  in
  let obj =
    Rlc_circuit.Whatif.custom
      ~workspace:{ cw_node = node; cw_h = h; cw_k = k; cw_f = f }
      ~eval:corner_eval
  in
  Rlc_parallel.Pool.map_list pool
    (fun corner ->
      let stage = apply node corner ~h ~k in
      let cs = Pade.coeffs stage in
      {
        corner;
        delay_per_length = Rlc_circuit.Whatif.eval obj (corner_vector corner);
        overshoot = Step_response.overshoot cs;
        underdamped = Pade.classify cs = Pade.Underdamped;
      })
    corners

let delay_window ?pool ?f ?corners node ~h ~k =
  match evaluate ?pool ?f ?corners node ~h ~k with
  | [] -> invalid_arg "Corners.delay_window: no corners"
  | e :: rest ->
      List.fold_left
        (fun (lo, hi) x ->
          ( Float.min lo x.delay_per_length,
            Float.max hi x.delay_per_length ))
        (e.delay_per_length, e.delay_per_length)
        rest
