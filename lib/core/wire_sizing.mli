(** Joint wire-width / repeater co-optimization.

    The paper optimizes (h, k) for a fixed wire geometry; the natural
    next knob is the wire width itself.  The routing pitch is a fixed
    resource (a track), so widening the wire lowers its resistance
    (r ~ 1/w) but squeezes the neighbour spacing and blows up the
    coupling capacitance — the delay-optimal width is an interior
    point of the track.  This module closes the loop with the
    extraction models: width -> (r, c, l) -> the paper's (h, k)
    optimizer. *)

type wire_point = {
  width : float;  (** m *)
  geometry : Rlc_extraction.Geometry.t;
  r : float;  (** ohm/m from the resistance model *)
  c : float;  (** F/m from the capacitance model (quiet neighbours) *)
  l : float;  (** H/m from the inductance policy *)
}

val wire_at :
  ?l_policy:(Rlc_extraction.Geometry.t -> float) ->
  Rlc_tech.Node.t ->
  width:float ->
  wire_point
(** Re-derive the wire parameters at a new width, keeping the PITCH,
    thickness, dielectric and stack height of the node's geometry
    (so the spacing shrinks as the wire widens).  Raises
    [Invalid_argument] when the width does not fit the pitch.
    [l_policy] defaults to twice the microstrip loop inductance (a
    mid-range return-path assumption); pass e.g. [fun _ -> 2e-6] to
    pin the inductance. *)

type result = {
  wire : wire_point;
  h : float;
  k : float;
  delay_per_length : float;  (** s/m *)
}

val evaluate :
  ?l_policy:(Rlc_extraction.Geometry.t -> float) -> ?f:float ->
  Rlc_tech.Node.t -> width:float -> result
(** (h, k)-optimal delay at a given width. *)

val optimize :
  ?l_policy:(Rlc_extraction.Geometry.t -> float) -> ?f:float ->
  ?w_min:float -> ?w_max:float -> Rlc_tech.Node.t -> result
(** Golden-section search for the delay-optimal width in
    [w_min, w_max] (defaults: 0.25 um up to 90% of the pitch).  The
    inner (h, k) optimization runs at every probe, so this costs a few
    hundred milliseconds. *)

val sweep :
  ?l_policy:(Rlc_extraction.Geometry.t -> float) -> ?f:float ->
  Rlc_tech.Node.t -> widths:float list -> result list
