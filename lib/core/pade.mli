(** Second-order Padé expansion of the stage transfer function
    (equation (2) of the paper):

    H(s) ~ 1 / (1 + b1 s + b2 s^2)

    with the coefficients of Section 2.1:

    b1 = R_S (C_P + C_L) + r c h^2 / 2 + R_S c h + C_L r h
    b2 = l c h^2 / 2 + r^2 c^2 h^4 / 24 + R_S (C_P + C_L) r c h^2 / 2
       + (R_S c h + C_L r h) r c h^2 / 6 + C_L l h + R_S C_P C_L r h

    and their analytic partial derivatives with respect to the segment
    length h and the repeater size k (used by equations (7)-(8)). *)

type coeffs = { b1 : float; b2 : float }

type partials = {
  db1_dh : float;
  db1_dk : float;
  db2_dh : float;
  db2_dk : float;
}

val coeffs : Stage.t -> coeffs
val partials : Stage.t -> partials

val discriminant : coeffs -> float
(** b1^2 - 4 b2: negative for underdamped, zero critical, positive
    overdamped (Figure 2). *)

type damping = Underdamped | Critically_damped | Overdamped

val classify : ?tol:float -> coeffs -> damping
(** [tol] is the relative width of the "critical" band (default 1e-9
    relative to b1^2). *)

val omega_n : coeffs -> float
(** Natural frequency 1/sqrt(b2), rad/s. *)

val zeta : coeffs -> float
(** Damping factor b1 / (2 sqrt(b2)); < 1 underdamped. *)
