open Rlc_numerics

type coeffs = { b1 : float; b2 : float; b3 : float }

let coeffs stage =
  let { Line.r; l; c } = stage.Stage.line in
  let h = stage.Stage.h in
  let rs = Stage.rs stage in
  let cp = Stage.cp stage in
  let cl = Stage.cl stage in
  let { Pade.b1; b2 } = Pade.coeffs stage in
  let a1 = r *. c *. h *. h in
  let a2 = l *. c *. h *. h in
  let a_drv = rs *. (cp +. cl) in
  let b3 =
    (a_drv *. ((a2 /. 2.0) +. (a1 *. a1 /. 24.0)))
    +. (a1 *. a2 /. 12.0)
    +. (a1 *. a1 *. a1 /. 720.0)
    +. (rs *. c *. h *. ((a2 /. 6.0) +. (a1 *. a1 /. 120.0)))
    +. (cl *. h
       *. ((r *. a2 /. 6.0) +. (r *. a1 *. a1 /. 120.0) +. (l *. a1 /. 6.0)))
    +. (rs *. cp *. cl *. h *. (l +. (r *. a1 /. 6.0)))
  in
  { b1; b2; b3 }

let poles { b1; b2; b3 } =
  if b3 <= 0.0 then invalid_arg "Third_order.poles: b3 <= 0";
  Polynomial.roots (Polynomial.of_coeffs [| 1.0; b1; b2; b3 |])

(* v(t) = 1 + sum_i e^{p_i t} / (p_i b3 prod_{j<>i}(p_i - p_j)):
   partial fractions of H(s)/s with H = 1/(b3 prod (s - p_i)). *)
let residues cs =
  let ps = poles cs in
  List.map
    (fun p ->
      let others = List.filter (fun q -> not (q == p)) ps in
      let denom =
        List.fold_left (fun acc q -> Cx.( *: ) acc (Cx.( -: ) p q)) Cx.one
          others
      in
      let scale = Cx.( *: ) (Cx.scale cs.b3 p) denom in
      if Cx.norm scale < 1e-300 then
        invalid_arg "Third_order: (nearly) repeated poles";
      (p, Cx.inv scale))
    ps

let step_eval cs t =
  if t < 0.0 then invalid_arg "Third_order.step_eval: t < 0";
  if t = 0.0 then 0.0
  else begin
    let terms = residues cs in
    let open Cx in
    let v =
      List.fold_left
        (fun acc (p, res) -> acc +: (res *: exp (scale t p)))
        (of_float 1.0) terms
    in
    (* conjugate pole pairs cancel the imaginary parts *)
    Cx.re v
  end

let step_deriv cs t =
  let terms = residues cs in
  let open Cx in
  Cx.re
    (List.fold_left
       (fun acc (p, res) -> acc +: (res *: p *: exp (scale t p)))
       Cx.zero terms)

let delay ?(f = 0.5) cs =
  if f <= 0.0 || f >= 1.0 then invalid_arg "Third_order.delay: f outside (0,1)";
  let residual t = step_eval cs t -. f in
  let dt0 = cs.b1 /. 32.0 in
  let lo, hi = Roots.bracket_first residual ~t0:0.0 ~dt:dt0 in
  if lo = hi then lo
  else
    Roots.newton_bracketed ~tol:1e-13 ~f:residual ~df:(step_deriv cs) lo hi

let delay_stage ?f stage = delay ?f (coeffs stage)
