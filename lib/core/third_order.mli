(** Third-order extension of the paper's transfer-function expansion —
    an ablation of the "second-order Padé" design choice.

    Extending the series expansion of equation (1) one order further
    gives H(s) ~ 1 / (1 + b1 s + b2 s^2 + b3 s^3) with

    b3 = A (a2/2 + a1^2/24) + a1 a2 / 12 + a1^3 / 720
       + R_S c h (a2/6 + a1^2/120)
       + C_L h (r a2/6 + r a1^2/120 + l a1/6)
       + R_S C_P C_L h (l + r a1/6)

    where a1 = r c h^2, a2 = l c h^2 and A = R_S (C_P + C_L) (the same
    bookkeeping that produces the paper's b1 and b2; setting the cubic
    truncation of cosh/sinh reproduces them exactly, which the test
    suite verifies).

    The third-order model captures more of the distributed line's
    ringing: its 50% delay sits between the second-order estimate and
    the exact (Talbot-inverted) response.  The benchmark harness prints
    the full accuracy ladder. *)

type coeffs = { b1 : float; b2 : float; b3 : float }

val coeffs : Stage.t -> coeffs
(** b1 and b2 agree with {!Pade.coeffs} exactly. *)

val poles : coeffs -> Rlc_numerics.Cx.t list
(** The three poles of the cubic denominator (one real + either two
    real or a conjugate pair), all in the left half plane for physical
    stages. *)

val step_eval : coeffs -> float -> float
(** Unit step response by partial-fraction expansion over the three
    poles.  Raises [Invalid_argument] for negative time or (nearly)
    repeated poles, where the simple-pole expansion breaks down. *)

val delay : ?f:float -> coeffs -> float
(** First f-crossing of the third-order step response (default
    f = 0.5), by the same bracket + safeguarded-Newton scheme as the
    second-order solver. *)

val delay_stage : ?f:float -> Stage.t -> float
