open Rlc_numerics

(* Relative pole separation below which the repeated-root formula is
   used instead of the two-pole formula. *)
let critical_band = 1e-7

let repeated_root_rate { Pade.b1; b2 } = b1 /. (2.0 *. b2)

let near_critical cs =
  let disc = Pade.discriminant cs in
  Float.abs disc <= critical_band *. cs.Pade.b1 *. cs.Pade.b1

let eval cs t =
  if t < 0.0 then invalid_arg "Step_response.eval: t < 0";
  if t = 0.0 then 0.0
  else if near_critical cs then begin
    let a = repeated_root_rate cs in
    1.0 -. ((1.0 +. (a *. t)) *. Float.exp (-.a *. t))
  end
  else begin
    let { Poles.s1; s2 } = Poles.of_coeffs cs in
    let open Cx in
    let denom = s2 -: s1 in
    let v =
      of_float 1.0
      -: (s2 /: denom *: exp (scale t s1))
      +: (s1 /: denom *: exp (scale t s2))
    in
    Cx.real_part_checked ~tol:1e-6 v
  end

let eval_stage stage t = eval (Pade.coeffs stage) t

let derivative cs t =
  if t < 0.0 then invalid_arg "Step_response.derivative: t < 0";
  if near_critical cs then begin
    let a = repeated_root_rate cs in
    a *. a *. t *. Float.exp (-.a *. t)
  end
  else begin
    let { Poles.s1; s2 } = Poles.of_coeffs cs in
    let open Cx in
    let denom = s2 -: s1 in
    (* dv/dt = -s1 s2/(s2-s1) e^{s1 t} + s1 s2/(s2-s1) e^{s2 t} *)
    let v =
      s1 *: s2 /: denom *: (exp (scale t s2) -: exp (scale t s1))
    in
    Cx.real_part_checked ~tol:1e-6 v
  end

let waveform ?(v0 = 1.0) ?(n = 2000) cs ~t_end =
  if t_end <= 0.0 then invalid_arg "Step_response.waveform: t_end <= 0";
  Rlc_waveform.Waveform.of_fn ~n (fun t -> v0 *. eval cs t) ~t0:0.0 ~t1:t_end

let overshoot cs =
  let z = Pade.zeta cs in
  if z >= 1.0 then 0.0
  else Float.exp (-.Float.pi *. z /. Float.sqrt (1.0 -. (z *. z)))

let peak_time cs =
  let z = Pade.zeta cs in
  if z >= 1.0 then None
  else begin
    let wn = Pade.omega_n cs in
    Some (Float.pi /. (wn *. Float.sqrt (1.0 -. (z *. z))))
  end

let undershoot_depth cs =
  let ov = overshoot cs in
  ov *. ov
