open Rlc_numerics

type t = { s1 : Cx.t; s2 : Cx.t }

let of_coeffs ({ Pade.b1; b2 } as cs) =
  if b2 <= 0.0 then invalid_arg "Poles.of_coeffs: b2 <= 0";
  let disc = Pade.discriminant cs in
  let sq = Cx.sqrt (Cx.of_float disc) in
  let denom = 2.0 *. b2 in
  let open Cx in
  {
    s1 = scale (1.0 /. denom) (of_float (-.b1) +: sq);
    s2 = scale (1.0 /. denom) (of_float (-.b1) -: sq);
  }

let of_stage stage = of_coeffs (Pade.coeffs stage)

let is_stable { s1; s2 } = Cx.re s1 < 0.0 && Cx.re s2 < 0.0

let separation { s1; s2 } =
  let open Cx in
  let m = Float.max (norm s1) (norm s2) in
  if m = 0.0 then 0.0 else norm (s1 -: s2) /. m

type sensitivities = {
  ds1_dh : Cx.t;
  ds2_dh : Cx.t;
  ds1_dk : Cx.t;
  ds2_dk : Cx.t;
}

let sensitivities stage =
  let ({ Pade.b1; b2 } as cs) = Pade.coeffs stage in
  let { Pade.db1_dh; db1_dk; db2_dh; db2_dk } = Pade.partials stage in
  let disc = Pade.discriminant cs in
  let scale_ref = Float.max (b1 *. b1) 1e-300 in
  if Float.abs disc <= 1e-14 *. scale_ref then
    invalid_arg "Poles.sensitivities: singular at critical damping";
  let { s1; s2 } = of_coeffs cs in
  let sq = Cx.sqrt (Cx.of_float disc) in
  let open Cx in
  let d_pole sign s db1 db2 =
    let bracket =
      of_float (-.db1)
      +: scale sign (of_float ((b1 *. db1) -. (2.0 *. db2)) /: sq)
    in
    scale (1.0 /. (2.0 *. b2)) bracket -: scale (db2 /. b2) s
  in
  {
    ds1_dh = d_pole 1.0 s1 db1_dh db2_dh;
    ds2_dh = d_pole (-1.0) s2 db1_dh db2_dh;
    ds1_dk = d_pole 1.0 s1 db1_dk db2_dk;
    ds2_dk = d_pole (-1.0) s2 db1_dk db2_dk;
  }
