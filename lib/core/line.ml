type t = { r : float; l : float; c : float }

let make ~r ~l ~c =
  if r <= 0.0 then invalid_arg "Line.make: r must be positive";
  if c <= 0.0 then invalid_arg "Line.make: c must be positive";
  if l < 0.0 then invalid_arg "Line.make: l must be non-negative";
  { r; l; c }

let of_node node ~l = make ~r:node.Rlc_tech.Node.r ~l ~c:node.Rlc_tech.Node.c

let z0_lossless t =
  if t.l = 0.0 then invalid_arg "Line.z0_lossless: l = 0";
  Float.sqrt (t.l /. t.c)

let z0 t s =
  let open Rlc_numerics.Cx in
  if norm s = 0.0 then invalid_arg "Line.z0: s = 0";
  let series = of_float t.r +: (s *: of_float t.l) in
  let shunt = s *: of_float t.c in
  sqrt (series /: shunt)

let propagation t s =
  let open Rlc_numerics.Cx in
  let series = of_float t.r +: (s *: of_float t.l) in
  let shunt = s *: of_float t.c in
  sqrt (series *: shunt)

let time_of_flight t ~length =
  if length <= 0.0 then invalid_arg "Line.time_of_flight: length <= 0";
  length *. Float.sqrt (t.l *. t.c)

let pp ppf t =
  Format.fprintf ppf "line<r=%.1f ohm/mm, l=%.3f nH/mm, c=%.1f pF/m>"
    (t.r /. 1e3) (t.l *. 1e6) (t.c *. 1e12)
