(** Two identical coupled RLC lines — the capacitive + inductive
    coupling environment Section 1.1 of the paper describes (effective
    line capacitance varying up to 4x with neighbour switching, and
    even larger inductance variation through the return path).

    For a symmetric pair the telegrapher equations decouple into the
    even mode (both lines switch together: mutual inductance adds,
    coupling capacitance disappears) and the odd mode (opposite
    switching: mutual subtracts, coupling doubles):

      even: (r, l + lm, cg)         odd: (r, l - lm, cg + 2 cc)

    Each mode is an ordinary line, so the whole single-line machinery
    (Padé, delay, optimizer) applies per mode; a quiet victim's
    response is the half-difference of the modes. *)

type t = {
  r : float;  (** self resistance, ohm/m *)
  l_self : float;  (** self inductance, H/m *)
  l_mutual : float;  (** mutual inductance, H/m; 0 <= lm < l_self *)
  c_ground : float;  (** line-to-ground capacitance, F/m *)
  c_coupling : float;  (** line-to-line capacitance, F/m *)
}

val make :
  r:float -> l_self:float -> l_mutual:float -> c_ground:float ->
  c_coupling:float -> t
(** Validates 0 <= l_mutual < l_self (passivity) and positivity. *)

val of_geometry :
  Rlc_extraction.Geometry.t -> l_self:float -> length:float -> t
(** Populate the couplings from the extraction models: c_ground and
    c_coupling from the Meijs-Fokkema / Sakurai formulas, l_mutual from
    the parallel-filament partial mutual inductance at the wire pitch. *)

type mode = Even | Odd

val mode_line : t -> mode -> Line.t
(** The decoupled single-line equivalent of a propagation mode.
    Raises [Invalid_argument] if the odd-mode inductance would be
    non-positive. *)

val mode_stage :
  t -> mode -> driver:Rlc_tech.Driver.t -> h:float -> k:float -> Stage.t

type switching_delay = {
  even_delay : float;  (** neighbours switch with the line, s *)
  odd_delay : float;  (** neighbours switch against the line, s *)
  nominal_delay : float;  (** quiet neighbours: (cg + cc) line, lm inert *)
  spread : float;  (** (odd - even) / nominal: the switching-dependent
      delay uncertainty the paper motivates.  Positive when coupling
      capacitance dominates (the classical Miller picture); NEGATIVE
      when mutual inductance dominates — inductive coupling flips the
      worst-case switching pattern, a genuinely RLC effect. *)
}

val switching_delays :
  ?f:float -> t -> driver:Rlc_tech.Driver.t -> h:float -> k:float ->
  switching_delay

val victim_noise_waveform :
  ?n:int -> t -> driver:Rlc_tech.Driver.t -> h:float -> k:float ->
  t_end:float -> Rlc_waveform.Waveform.t
(** Response on a quiet victim when the aggressor's driver steps:
    v_victim(t) = (v_even(t) - v_odd(t)) / 2 under the mode
    second-order models. *)

val victim_noise_peak :
  t -> driver:Rlc_tech.Driver.t -> h:float -> k:float -> float
(** Peak of the victim noise, as a fraction of the aggressor swing. *)
