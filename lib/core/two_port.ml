open Rlc_numerics

type t = { a : Cx.t; b : Cx.t; c : Cx.t; d : Cx.t }

let identity = { a = Cx.one; b = Cx.zero; c = Cx.zero; d = Cx.one }
let series_impedance z = { a = Cx.one; b = z; c = Cx.zero; d = Cx.one }
let shunt_admittance y = { a = Cx.one; b = Cx.zero; c = y; d = Cx.one }

(* cosh and sinh of a complex number *)
let cosh_cx z =
  let open Cx in
  scale 0.5 (exp z +: exp (neg z))

let sinh_cx z =
  let open Cx in
  scale 0.5 (exp z -: exp (neg z))

let rlc_line line ~length ~s =
  let open Cx in
  if length <= 0.0 then invalid_arg "Two_port.rlc_line: length <= 0";
  if norm s = 0.0 then identity
  else begin
    (* theta = sqrt(z y), Z0 = z / theta with z = r + s l, y = s c;
       forming Z0 from theta keeps the square-root branches
       consistent, so cosh/sinh products are branch-independent. *)
    let z = of_float line.Line.r +: (s *: of_float line.Line.l) in
    let y = s *: of_float line.Line.c in
    let theta = sqrt (z *: y) in
    let th = scale length theta in
    if norm th < 1e-12 then
      (* series-impedance + shunt-admittance limit of a short line *)
      {
        a = one +: scale (length *. length /. 2.0) (z *: y);
        b = scale length z;
        c = scale length y;
        d = one +: scale (length *. length /. 2.0) (z *: y);
      }
    else begin
      let z0 = z /: theta in
      let ch = cosh_cx th and sh = sinh_cx th in
      { a = ch; b = z0 *: sh; c = sh /: z0; d = ch }
    end
  end

let cascade m1 m2 =
  let open Cx in
  {
    a = (m1.a *: m2.a) +: (m1.b *: m2.c);
    b = (m1.a *: m2.b) +: (m1.b *: m2.d);
    c = (m1.c *: m2.a) +: (m1.d *: m2.c);
    d = (m1.c *: m2.b) +: (m1.d *: m2.d);
  }

let cascade_list ms = List.fold_left cascade identity ms

let determinant m =
  let open Cx in
  (m.a *: m.d) -: (m.b *: m.c)

let voltage_transfer_into_open m = Cx.inv m.a
