type result = { h_opt : float; k_opt : float; tau_opt : float }

let optimize_params ~r ~c ~driver =
  let { Rlc_tech.Driver.rs; c0; cp } = driver in
  let h_opt = Float.sqrt (2.0 *. rs *. (c0 +. cp) /. (r *. c)) in
  let k_opt = Float.sqrt (rs *. c /. (r *. c0)) in
  let tau_opt =
    2.0 *. rs *. (c0 +. cp)
    *. (1.0 +. Float.sqrt (2.0 *. c0 /. (c0 +. cp)))
  in
  { h_opt; k_opt; tau_opt }

let optimize node =
  optimize_params ~r:node.Rlc_tech.Node.r ~c:node.Rlc_tech.Node.c
    ~driver:node.Rlc_tech.Node.driver

(* Inverse: with A = r c h^2 / 2 = r_s (c_0 + c_p) and
   q = tau / (2 A) - 1 = sqrt(2 c_0 / (c_0 + c_p)):
     c_0 + c_p = sqrt(2 A c / r) / (k q)
     c_0       = (q^2 / 2) (c_0 + c_p)
     r_s       = A / (c_0 + c_p)                                   *)
let derive_driver ~r ~c ~h_opt ~k_opt ~tau_opt =
  if r <= 0.0 || c <= 0.0 || h_opt <= 0.0 || k_opt <= 0.0 || tau_opt <= 0.0
  then invalid_arg "Rc_opt.derive_driver: non-positive input";
  let a = r *. c *. h_opt *. h_opt /. 2.0 in
  let q = (tau_opt /. (2.0 *. a)) -. 1.0 in
  if q <= 0.0 || q >= Float.sqrt 2.0 then
    invalid_arg "Rc_opt.derive_driver: inconsistent tau_opt";
  let c_total = Float.sqrt (2.0 *. a *. c /. r) /. (k_opt *. q) in
  let c0 = q *. q /. 2.0 *. c_total in
  let cp = c_total -. c0 in
  let rs = a /. c_total in
  Rlc_tech.Driver.make ~rs ~c0 ~cp

let stage node ~l =
  let { h_opt; k_opt; _ } = optimize node in
  Stage.of_node node ~l ~h:h_opt ~k:k_opt
