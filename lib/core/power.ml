type params = { f_clk : float; activity : float; i_leak : float }

let default_params = { f_clk = 1e9; activity = 0.15; i_leak = 10e-9 }

let check_hk h k =
  if h <= 0.0 || k <= 0.0 then invalid_arg "Power: h and k must be positive"

let repeater_cap_per_length node ~h ~k =
  let d = node.Rlc_tech.Node.driver in
  (d.Rlc_tech.Driver.cp +. d.Rlc_tech.Driver.c0) *. k /. h

let energy_per_transition_per_length node ~h ~k =
  check_hk h k;
  let vdd = node.Rlc_tech.Node.vdd in
  vdd *. vdd *. (node.Rlc_tech.Node.c +. repeater_cap_per_length node ~h ~k)

let dynamic_per_length ?(params = default_params) node ~h ~k =
  params.activity *. params.f_clk
  *. energy_per_transition_per_length node ~h ~k

let leakage_per_length ?(params = default_params) node ~h ~k =
  check_hk h k;
  params.i_leak *. k /. h *. node.Rlc_tech.Node.vdd

let per_length ?params node ~h ~k =
  dynamic_per_length ?params node ~h ~k
  +. leakage_per_length ?params node ~h ~k

type result = {
  h : float;
  k : float;
  delay_per_length : float;
  power_per_length : float;
  delay_penalty : float;
  power_saving : float;
}

let evaluate ?params ?f node ~l ~h ~k =
  check_hk h k;
  let dpl = Rlc_opt.objective ?f node ~l ~h ~k in
  if Float.is_nan dpl then invalid_arg "Power.evaluate: unphysical (h, k)";
  let ppl = per_length ?params node ~h ~k in
  let delay_only = Rlc_opt.optimize ?f node ~l in
  let p0 =
    per_length ?params node ~h:delay_only.Rlc_opt.h ~k:delay_only.Rlc_opt.k
  in
  {
    h;
    k;
    delay_per_length = dpl;
    power_per_length = ppl;
    delay_penalty = dpl /. delay_only.Rlc_opt.delay_per_length;
    power_saving = 1.0 -. (ppl /. p0);
  }

let optimize_weighted ?params ?f node ~l ~lambda =
  if lambda < 0.0 then invalid_arg "Power.optimize_weighted: lambda < 0";
  let delay_only = Rlc_opt.optimize ?f node ~l in
  let objective x =
    let h = Float.exp x.(0) and k = Float.exp x.(1) in
    let dpl = Rlc_opt.objective ?f node ~l ~h ~k in
    if Float.is_nan dpl then nan
    else dpl *. (per_length ?params node ~h ~k ** lambda)
  in
  let sol =
    Rlc_numerics.Nelder_mead.minimize ~max_iter:4000 ~ftol:1e-14 ~xtol:1e-9
      ~f:objective
      ~x0:[| Float.log delay_only.Rlc_opt.h; Float.log delay_only.Rlc_opt.k |]
      ()
  in
  let h = Float.exp sol.Rlc_numerics.Nelder_mead.x.(0)
  and k = Float.exp sol.Rlc_numerics.Nelder_mead.x.(1) in
  evaluate ?params ?f node ~l ~h ~k

let pareto ?params ?f
    ?(lambdas = List.init 11 (fun i -> float_of_int i /. 10.0)) node ~l =
  List.map (fun lambda -> optimize_weighted ?params ?f node ~l ~lambda) lambdas
