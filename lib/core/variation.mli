(** Statistical treatment of parameter uncertainty — the quantitative
    version of Section 3.2's observation that the effective line
    inductance (and, through Miller coupling, the capacitance) cannot
    be predicted a priori.

    A design (h, k) is frozen; the environment (l, the neighbour
    switching Miller factor, the driver strength) is sampled; the delay
    distribution tells the designer what margin the uncertainty costs.
    Sampling is deterministic given the seed. *)

type distribution = {
  l_min : float;  (** inductance range, H/m *)
  l_max : float;
  miller_min : float;  (** neighbour-activity Miller factor range [0,2] *)
  miller_max : float;
  rs_sigma : float;  (** relative driver-strength sigma (trunc. at 3x) *)
}

val default_distribution : Rlc_tech.Node.t -> distribution
(** l uniform over [0.25, 0.75] * l_max of the node (the
    geometry-plausible band), miller uniform over [0.5, 1.5],
    rs_sigma 5%. *)

type sample = {
  l : float;
  c : float;  (** effective wire capacitance after Miller scaling *)
  rs_scale : float;  (** multiplicative driver-resistance factor *)
}

val draw : ?seed:int -> n:int -> Rlc_tech.Node.t -> distribution -> sample list

val stage_delay_of_sample :
  ?f:float -> Rlc_tech.Node.t -> h:float -> k:float -> sample -> float
(** 50% stage delay with the sampled environment applied. *)

type stats = {
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p95 : float;  (** 95th percentile *)
}

val delay_statistics :
  ?pool:Rlc_parallel.Pool.t -> ?seed:int -> ?n:int -> ?f:float ->
  Rlc_tech.Node.t -> h:float -> k:float -> distribution -> stats
(** Delay-per-unit-length statistics over [n] (default 500) samples.
    Sampling is sequential (one PRNG stream); the per-sample delay
    solves fan out over [pool] when given, with bit-identical results
    for any domain count. *)

val compare_sizings :
  ?pool:Rlc_parallel.Pool.t -> ?seed:int -> ?n:int -> ?f:float ->
  Rlc_tech.Node.t -> distribution ->
  (string * float * float) list -> (string * stats) list
(** Evaluate several named (h, k) candidates on the SAME sample set —
    e.g. RC-sized vs mid-range-RLC-sized — so their distributions are
    directly comparable. *)
