(** Frequency-domain view of the driver-line-load stage, computed from
    the exact transfer function of equation (1) (not the Padé
    reduction).

    Inductance turns the stage from a monotone low-pass into a resonant
    one; the resonant peak is the frequency-domain twin of the
    time-domain overshoot the paper studies, and the test suite checks
    the two stay consistent (peaking appears exactly when the stage is
    underdamped). *)

type point = { freq : float; mag_db : float; phase_deg : float }

val response : Stage.t -> float -> point
(** Exact H(j 2 pi f) at one frequency (Hz). *)

val bode : ?points:int -> Stage.t -> f_min:float -> f_max:float -> point list
(** Log-spaced sweep, default 200 points.  Requires
    0 < f_min < f_max. *)

val bandwidth_3db_opt : ?f_max:float -> Stage.t -> float option
(** First frequency where |H| drops 3 dB below DC.  Searches up to
    [f_max] (default 1 THz); [None] when the stage is still within
    3 dB there — a perfectly ordinary outcome for short stages, which
    is why the option form is the primary API. *)

val bandwidth_3db : ?f_max:float -> Stage.t -> float
(** Exception-raising wrapper around {!bandwidth_3db_opt} for callers
    that treat an in-band stage as a logic error: raises [Not_found]
    instead of returning [None].  Prefer the option form in new
    code. *)

val resonance : ?f_max:float -> Stage.t -> (float * float) option
(** [(f_peak, peak_db)] of the largest magnitude above DC, or [None]
    when the response is monotone (no peaking).  Peaks below 0.01 dB
    are reported as [None]. *)

val group_delay : Stage.t -> float -> float
(** -d(phase)/d(omega) at frequency [f] (Hz), seconds, by central
    difference on the exact phase. *)
