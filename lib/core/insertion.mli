(** Repeater insertion for a net of fixed total length.

    The paper's optimizer yields a continuous optimal segment length
    h_opt; a real net of length L holds an integer number of segments
    n = L / h.  This module quantizes the insertion: it evaluates the
    integer neighbourhoods of L / h_opt, re-optimizing the repeater
    size for each candidate segment length, and returns the best
    integer solution together with the (unreachable) continuous bound. *)

type plan = {
  segments : int;  (** number of buffered segments (= repeaters) *)
  h : float;  (** realized segment length L / segments, m *)
  k : float;  (** repeater size, re-optimized for the realized h *)
  total_delay : float;  (** s *)
  continuous_bound : float;
      (** total delay of the un-quantized optimum, s — a lower bound *)
  quantization_penalty : float;
      (** total_delay / continuous_bound - 1 (>= 0, small unless the
          net is shorter than about two optimal segments) *)
}

val optimal_k_for_h : ?f:float -> Rlc_tech.Node.t -> l:float -> h:float -> float
(** Best repeater size for a fixed segment length (1-D minimization of
    the stage delay). *)

val plan : ?f:float -> Rlc_tech.Node.t -> l:float -> length:float -> plan
(** Raises [Invalid_argument] for non-positive length. *)

val sweep_lengths :
  ?f:float -> Rlc_tech.Node.t -> l:float -> lengths:float list -> plan list
