type t = {
  wrt_l : float;
  wrt_c : float;
  wrt_r : float;
  wrt_rs : float;
  elasticity_l : float;
  elasticity_c : float;
  elasticity_r : float;
}

(* Implicit-function-theorem derivative: tau solves v(tau; theta) = f,
   so d tau/d theta = -(dv/d theta)|_tau / (dv/dt)|_tau.  dv/dt is the
   closed-form step-response derivative; dv/dtheta is a high-accuracy
   central difference of the closed-form response (no re-solving of the
   delay equation, no transient simulation). *)
let of_stage ?(f = 0.5) stage =
  let tau = Delay.of_stage ~f stage in
  let slope = Step_response.derivative (Pade.coeffs stage) tau in
  if Float.abs slope < 1e-300 then
    invalid_arg "Sensitivity.of_stage: flat response at the crossing";
  let v_of st = Step_response.eval (Pade.coeffs st) tau in
  let dv_d perturb scale =
    let h = 1e-6 *. scale in
    (v_of (perturb (+.h)) -. v_of (perturb (-.h))) /. (2.0 *. h)
  in
  let { Line.r; l; c } = stage.Stage.line in
  let line ?(dr = 0.0) ?(dl = 0.0) ?(dc = 0.0) () =
    Line.make ~r:(r +. dr) ~l:(l +. dl) ~c:(c +. dc)
  in
  let rebuild line' driver' =
    Stage.make ~line:line' ~driver:driver' ~h:stage.Stage.h ~k:stage.Stage.k
  in
  let driver = stage.Stage.driver in
  let wrt_l =
    let scale = Float.max l (0.01 *. 1e-6) in
    -.dv_d (fun d -> rebuild (line ~dl:d ()) driver) scale /. slope
  in
  let wrt_c = -.dv_d (fun d -> rebuild (line ~dc:d ()) driver) c /. slope in
  let wrt_r = -.dv_d (fun d -> rebuild (line ~dr:d ()) driver) r /. slope in
  let wrt_rs =
    let perturb d =
      rebuild (line ())
        (Rlc_tech.Driver.make
           ~rs:(driver.Rlc_tech.Driver.rs +. d)
           ~c0:driver.Rlc_tech.Driver.c0 ~cp:driver.Rlc_tech.Driver.cp)
    in
    -.dv_d perturb driver.Rlc_tech.Driver.rs /. slope
  in
  {
    wrt_l;
    wrt_c;
    wrt_r;
    wrt_rs;
    elasticity_l = l /. tau *. wrt_l;
    elasticity_c = c /. tau *. wrt_c;
    elasticity_r = r /. tau *. wrt_r;
  }

(* Circuit-level gradients over a compiled what-if workspace.  The
   finite-difference method is the legacy semantics (central
   differences of the full evaluation, 2 solves per parameter); the
   adjoint method reuses the workspace's transpose factor and costs
   one forward + one adjoint solve for the whole gradient. *)
let gradient ?(set = []) ?(method_ = `Fdiff) ws target ~wrt =
  match method_ with
  | `Adjoint -> Rlc_circuit.Whatif.gradient ~set ws target ~wrt
  | `Fdiff ->
      Array.map
        (fun p ->
          let v0 =
            match List.find_opt (fun (q, _) -> q == p) set with
            | Some (_, v) -> v
            | None -> Rlc_circuit.Whatif.base_value p
          in
          let others = List.filter (fun (q, _) -> q != p) set in
          let at v =
            Rlc_circuit.Whatif.evaluate ~set:((p, v) :: others) ws target
          in
          (* component values span 1e-14 F to 1e3 ohms, so the step
             must be relative to the value — {!Rlc_numerics.Fdiff}'s
             [1e-6 * (1 + |x|)] step is absolute below |x| ~ 1 and
             would push a femtofarad capacitance negative *)
          let h =
            if v0 = 0.0 then 1e-6 else 1e-6 *. Float.abs v0
          in
          (at (v0 +. h) -. at (v0 -. h)) /. (2.0 *. h))
        wrt

let delay_spread_estimate ?f stage ~l_uncertainty =
  if l_uncertainty < 0.0 then
    invalid_arg "Sensitivity.delay_spread_estimate: negative uncertainty";
  let s = of_stage ?f stage in
  Float.abs s.wrt_l *. 2.0 *. l_uncertainty
