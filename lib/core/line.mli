(** Uniform transmission-line parameters: resistance, inductance and
    capacitance per unit length (the r, l, c of the paper). *)

type t = {
  r : float;  (** ohm/m *)
  l : float;  (** H/m; 0 gives the RC limit *)
  c : float;  (** F/m *)
}

val make : r:float -> l:float -> c:float -> t
(** Requires [r > 0], [c > 0], [l >= 0]. *)

val of_node : Rlc_tech.Node.t -> l:float -> t
(** Line of a technology node with the inductance set to [l] (H/m) —
    the paper treats l as the swept, uncertain parameter. *)

val z0_lossless : t -> float
(** Lossless characteristic impedance sqrt(l/c), ohm.  The asymptote
    that the optimal driver impedance matches at large l (Figure 6).
    Raises [Invalid_argument] when [l = 0]. *)

val z0 : t -> Rlc_numerics.Cx.t -> Rlc_numerics.Cx.t
(** Frequency-dependent characteristic impedance
    Z0(s) = sqrt((r + s l) / (s c)).  Undefined at s = 0 (raises). *)

val propagation : t -> Rlc_numerics.Cx.t -> Rlc_numerics.Cx.t
(** theta(s) = sqrt((r + s l) s c), the propagation constant per unit
    length. *)

val time_of_flight : t -> length:float -> float
(** length * sqrt(l c): the LC wave delay of a segment.  0 when l=0. *)

val pp : Format.formatter -> t -> unit
