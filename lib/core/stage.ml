type t = {
  line : Line.t;
  driver : Rlc_tech.Driver.t;
  h : float;
  k : float;
}

let make ~line ~driver ~h ~k =
  if h <= 0.0 then invalid_arg "Stage.make: h must be positive";
  if k <= 0.0 then invalid_arg "Stage.make: k must be positive";
  { line; driver; h; k }

let of_node node ~l ~h ~k =
  make ~line:(Line.of_node node ~l) ~driver:node.Rlc_tech.Node.driver ~h ~k

let rs t = Rlc_tech.Driver.scaled_rs t.driver ~k:t.k
let cp t = Rlc_tech.Driver.scaled_cp t.driver ~k:t.k
let cl t = Rlc_tech.Driver.scaled_c0 t.driver ~k:t.k
let total_resistance t = t.line.Line.r *. t.h
let total_capacitance t = t.line.Line.c *. t.h
let total_inductance t = t.line.Line.l *. t.h
let with_h t h = make ~line:t.line ~driver:t.driver ~h ~k:t.k
let with_k t k = make ~line:t.line ~driver:t.driver ~h:t.h ~k
let with_l t l =
  let line = Line.make ~r:t.line.Line.r ~l ~c:t.line.Line.c in
  make ~line ~driver:t.driver ~h:t.h ~k:t.k

let pp ppf t =
  Format.fprintf ppf "stage<h=%.3fmm k=%.1f %a>" (t.h *. 1e3) t.k Line.pp
    t.line
