(** N-conductor bus: the multi-line generalization of {!Coupled}.

    N identical lines with nearest-neighbour coupling have per-unit-
    length matrices that are symmetric tridiagonal Toeplitz:

      L = tridiag(lm, l, lm)        C = tridiag(-cc, cg + 2 cc, -cc)

    Both are diagonalized by the discrete sine basis, so the bus
    decouples into N analytic propagation modes

      mode j (1-based):  theta_j = cos(j pi / (N+1))
        l_j = l + 2 lm theta_j
        c_j = cg + 2 cc (1 - theta_j)

    The uniform Toeplitz diagonal means the boundary lines also see a
    full cc on their outer side — i.e. the bus runs between grounded
    guard tracks (the common shielded-bus layout).  {!Coupled} remains
    the model of an ISOLATED pair; this module generalizes the guarded
    array.  Each mode is an ordinary line, so delay and response
    analysis lift from the single-line machinery.  Switching patterns
    project onto the modes; the envelope over all patterns bounds the
    delay uncertainty of a victim in a bus — and the modal capacitance
    range approaches the paper's "effective capacitance varies by as
    much as 4x" as the bus widens (cg + 2cc(1 -/+ cos pi/(N+1)) spans
    (cg, cg + 4 cc)). *)

type t = {
  n : int;  (** number of conductors, >= 2 *)
  r : float;  (** ohm/m per line *)
  l : float;  (** self inductance, H/m *)
  lm : float;  (** nearest-neighbour mutual, H/m; |lm| < l/2 for
      positive-definite L across all modes *)
  cg : float;  (** line-to-ground capacitance, F/m *)
  cc : float;  (** neighbour coupling capacitance, F/m *)
}

val make :
  n:int -> r:float -> l:float -> lm:float -> cg:float -> cc:float -> t
(** Validates positivity and the modal positive-definiteness bounds
    (l_j > 0 and c_j > 0 for every mode). *)

val of_coupled : n:int -> Coupled.t -> t
(** Reuse a {!Coupled} pair's parameters for a wider bus. *)

val mode_line : t -> int -> Line.t
(** [mode_line bus j] for j in 1..n. *)

val mode_delays :
  ?f:float -> t -> driver:Rlc_tech.Driver.t -> h:float -> k:float ->
  float list
(** 50% delay of every mode's line (ascending mode index). *)

val delay_envelope :
  ?f:float -> t -> driver:Rlc_tech.Driver.t -> h:float -> k:float ->
  float * float
(** (fastest, slowest) mode delay: bounds for the switching-dependent
    delay of any line in the bus (every switching pattern's response is
    a combination of modes, so its threshold crossing lies within the
    mode envelope for monotone mode responses). *)

val victim_noise_peak :
  t -> driver:Rlc_tech.Driver.t -> h:float -> k:float -> float
(** Peak noise on a quiet centre victim when all other lines switch
    together, as a fraction of the aggressor swing — the many-aggressor
    worst case, by modal superposition of the exact victim response. *)

val miller_capacitance_range : t -> float * float
(** (min, max) effective modal capacitance: the computed version of the
    paper's "up to 4x" effective-capacitance statement. *)
