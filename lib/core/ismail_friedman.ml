let delay_50 stage =
  let cs = Pade.coeffs stage in
  let zeta = Pade.zeta cs in
  let omega_n = Pade.omega_n cs in
  (Float.exp (-2.9 *. (zeta ** 1.35)) +. (1.48 *. zeta)) /. omega_n

let t_lr node ~l =
  if l < 0.0 then invalid_arg "Ismail_friedman.t_lr: l < 0";
  if l = 0.0 then 0.0
  else begin
    let rc = Rc_opt.optimize node in
    let z_lc = Float.sqrt (l /. node.Rlc_tech.Node.c) in
    z_lc /. (node.Rlc_tech.Node.r *. rc.Rc_opt.h_opt)
  end

let h_opt node ~l =
  let rc = Rc_opt.optimize node in
  let t = t_lr node ~l in
  rc.Rc_opt.h_opt *. ((1.0 +. (0.18 *. (t ** 3.0))) ** 0.3)

let k_opt node ~l =
  let rc = Rc_opt.optimize node in
  let t = t_lr node ~l in
  rc.Rc_opt.k_opt /. ((1.0 +. (0.16 *. (t ** 3.0))) ** 0.24)

let in_fitted_range stage =
  let { Line.r; c; _ } = stage.Stage.line in
  let { Rlc_tech.Driver.rs; c0; _ } = stage.Stage.driver in
  let h = stage.Stage.h and k = stage.Stage.k in
  let cap_ratio = c *. h /. (c0 *. k) in
  let res_ratio = rs /. (k *. r *. h) in
  cap_ratio >= 0.0 && cap_ratio <= 1.0 && res_ratio >= 0.0 && res_ratio <= 1.0
