(** Numerical solution of the paper's delay equation (3):

    1 - f - s2/(s2 - s1) exp(s1 tau) + s1/(s2 - s1) exp(s2 tau) = 0

    i.e. the first time the step response reaches the fraction [f] of
    the final value.  The solver brackets the first crossing on an
    expanding grid (the response may cross the level several times when
    underdamped), then polishes with safeguarded Newton — matching the
    paper's "< 4 Newton iterations" efficiency claim. *)

exception No_delay
(** Raised when the response never reaches the level — cannot happen
    for a stable stage with f < 1 but guards against misuse. *)

val of_coeffs : ?f:float -> Pade.coeffs -> float
(** [of_coeffs ~f cs] is the f*100% delay tau, seconds.  [f] defaults
    to 0.5 (the 50% delay used throughout the paper's results).
    Requires 0 < f < 1. *)

val of_stage : ?f:float -> Stage.t -> float

val per_unit_length : ?f:float -> Stage.t -> float
(** tau / h — the objective the paper minimizes (Section 2.2). *)

val elmore_agreement : Stage.t -> float
(** tau_50%(l) / tau_50%(l := 0): how much the inductance-aware delay
    deviates from the pure-RC delay of the same stage; 1.0 means Elmore
    optimization remains valid. *)
