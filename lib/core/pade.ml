type coeffs = { b1 : float; b2 : float }

type partials = {
  db1_dh : float;
  db1_dk : float;
  db2_dh : float;
  db2_dk : float;
}

(* With R_S = rs/k, C_P = cp k, C_L = c0 k the coefficients expand to
   polynomials in (h, k):

   b1 = rs (cp + c0) + r c h^2/2 + rs c h / k + c0 r h k
   b2 = l c h^2/2 + r^2 c^2 h^4/24 + rs (cp + c0) r c h^2/2
      + (r c / 6) (rs c / k + c0 r k) h^3 + c0 k l h + rs cp c0 k r h *)

let coeffs stage =
  let { Line.r; l; c } = stage.Stage.line in
  let { Rlc_tech.Driver.rs; c0; cp } = stage.Stage.driver in
  let h = stage.Stage.h and k = stage.Stage.k in
  let b1 =
    (rs *. (cp +. c0))
    +. (r *. c *. h *. h /. 2.0)
    +. (rs *. c *. h /. k)
    +. (c0 *. r *. h *. k)
  in
  let b2 =
    (l *. c *. h *. h /. 2.0)
    +. (r *. r *. c *. c *. (h ** 4.0) /. 24.0)
    +. (rs *. (cp +. c0) *. r *. c *. h *. h /. 2.0)
    +. (r *. c /. 6.0 *. ((rs *. c /. k) +. (c0 *. r *. k)) *. (h ** 3.0))
    +. (c0 *. k *. l *. h)
    +. (rs *. cp *. c0 *. k *. r *. h)
  in
  { b1; b2 }

let partials stage =
  let { Line.r; l; c } = stage.Stage.line in
  let { Rlc_tech.Driver.rs; c0; cp } = stage.Stage.driver in
  let h = stage.Stage.h and k = stage.Stage.k in
  let db1_dh = (r *. c *. h) +. (rs *. c /. k) +. (c0 *. r *. k) in
  let db1_dk = (-.rs *. c *. h /. (k *. k)) +. (c0 *. r *. h) in
  let db2_dh =
    (l *. c *. h)
    +. (r *. r *. c *. c *. (h ** 3.0) /. 6.0)
    +. (rs *. (cp +. c0) *. r *. c *. h)
    +. (r *. c /. 2.0 *. ((rs *. c /. k) +. (c0 *. r *. k)) *. h *. h)
    +. (c0 *. k *. l)
    +. (rs *. cp *. c0 *. k *. r)
  in
  let db2_dk =
    (r *. c *. (h ** 3.0) /. 6.0 *. ((-.rs *. c /. (k *. k)) +. (c0 *. r)))
    +. (c0 *. l *. h)
    +. (rs *. cp *. c0 *. r *. h)
  in
  { db1_dh; db1_dk; db2_dh; db2_dk }

let discriminant { b1; b2 } = (b1 *. b1) -. (4.0 *. b2)

type damping = Underdamped | Critically_damped | Overdamped

let classify ?(tol = 1e-9) ({ b1; _ } as cs) =
  let disc = discriminant cs in
  let scale = Float.max (b1 *. b1) 1e-300 in
  if Float.abs disc <= tol *. scale then Critically_damped
  else if disc < 0.0 then Underdamped
  else Overdamped

let omega_n { b2; _ } =
  if b2 <= 0.0 then invalid_arg "Pade.omega_n: b2 <= 0";
  1.0 /. Float.sqrt b2

let zeta { b1; b2 } =
  if b2 <= 0.0 then invalid_arg "Pade.zeta: b2 <= 0";
  b1 /. (2.0 *. Float.sqrt b2)
