(** Elmore (first-moment) delay of a repeater stage — the inductance-
    blind baseline the paper optimizes against in Section 3.1:

    t = R_S (C_P + C_L) + R_S c h + r h C_L + r c h^2 / 2

    Note t equals the Padé coefficient b1, which is independent of the
    line inductance — precisely why Elmore-based optimization cannot
    see inductance effects. *)

val stage_delay : Stage.t -> float
(** Elmore delay of one buffered segment, seconds. *)

val total_delay : Stage.t -> line_length:float -> float
(** (L / h) * stage delay for a line of total length [line_length]. *)

val per_unit_length : Stage.t -> float
(** Stage delay / h. *)

val equals_b1 : Stage.t -> bool
(** Structural identity check (used by tests): the Elmore delay of the
    stage coincides with b1 of {!Pade.coeffs}. *)
