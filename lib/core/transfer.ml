open Rlc_numerics

let eval stage s =
  if Cx.norm s = 0.0 then Cx.one
  else begin
    (* Deep in the right half plane the line attenuation e^{-theta h}
       underflows and cosh/sinh overflow; H is then 0 to double
       precision, so short-circuit before the overflow poisons the
       arithmetic (needed by the Talbot inverse-Laplace contour). *)
    let theta_h =
      Cx.re (Line.propagation stage.Stage.line s) *. stage.Stage.h
    in
    if theta_h > 250.0 then Cx.zero
    else begin
      let open Cx in
      let rs = of_float (Stage.rs stage) in
      let scp = s *: of_float (Stage.cp stage) in
      let scl = s *: of_float (Stage.cl stage) in
      let chain =
        Two_port.cascade_list
          [
            Two_port.series_impedance rs;
            Two_port.shunt_admittance scp;
            Two_port.rlc_line stage.Stage.line ~length:stage.Stage.h ~s;
            Two_port.shunt_admittance scl;
          ]
      in
      let h = Two_port.voltage_transfer_into_open chain in
      if Cx.is_finite h then h else Cx.zero
    end
  end

let eval_direct stage s =
  let open Cx in
  if norm s = 0.0 then invalid_arg "Transfer.eval_direct: s = 0";
  let line = stage.Stage.line in
  let h = stage.Stage.h in
  let rs = of_float (Stage.rs stage) in
  let cp = of_float (Stage.cp stage) in
  let cl = of_float (Stage.cl stage) in
  let z = of_float line.Line.r +: (s *: of_float line.Line.l) in
  let y = s *: of_float line.Line.c in
  let theta = sqrt (z *: y) in
  let z0 = z /: theta in
  let th = scale h theta in
  let ch = scale 0.5 (exp th +: exp (neg th)) in
  let sh = scale 0.5 (exp th -: exp (neg th)) in
  let term_cosh = (one +: (s *: rs *: (cp +: cl))) *: ch in
  let term_sinh =
    ((rs /: z0) +: (s *: cl *: z0) +: (s *: s *: rs *: cp *: cl *: z0)) *: sh
  in
  inv (term_cosh +: term_sinh)

let magnitude_db stage f =
  let s = Cx.make 0.0 (2.0 *. Float.pi *. f) in
  20.0 *. Float.log10 (Cx.norm (eval stage s))

let dc_gain _stage = 1.0
