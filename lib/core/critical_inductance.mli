(** Critical line inductance — equation (4) of the paper.

    For a given segment length h and repeater size k, the inductance
    per unit length that makes the second-order model critically damped
    (b1^2 = 4 b2):

    l_crit = ( b1^2/4 - r^2 c^2 h^4/24 - R_S (C_P + C_L) r c h^2/2
             - (R_S c h + C_L r h) r c h^2/6 - R_S C_P C_L r h )
             / ( c h^2/2 + C_L h )

    Lines with l < l_crit are overdamped, l > l_crit underdamped.
    Figure 4 plots l_crit at the optimized (h_opt, k_opt) against l. *)

val of_stage : Stage.t -> float
(** The stage's own [line.l] does not enter the result (b1 is
    independent of l and the l-dependent part of b2 is factored out). *)

val of_node : Rlc_tech.Node.t -> h:float -> k:float -> float

val damping_margin : Stage.t -> float
(** l - l_crit for the stage's actual inductance: positive means
    underdamped (overshoot present). *)
