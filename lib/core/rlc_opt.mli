(** The paper's performance-optimization methodology (Section 2.2):
    minimize the delay per unit length tau / h of a repeated stage over
    the segment length h and the repeater size k.

    Stationarity gives equations (5)-(6), which after differentiating
    the delay equation become the residual system (7)-(8):

    g1(h,k) = (1-f)(s2_h - s1_h) - s2_h e^{s1 tau} + s1_h e^{s2 tau}
              - s2 tau (s1_h + s1/h) e^{s1 tau}
              + s1 tau (s2_h + s2/h) e^{s2 tau}
    g2(h,k) = (1-f)(s2_k - s1_k) - s2_k e^{s1 tau}
              - s2 tau s1_k e^{s1 tau} + s1_k e^{s2 tau}
              + s1 tau s2_k e^{s2 tau}

    (x_y denotes dx/dy).  [optimize] drives (g1, g2) to zero with a
    damped Newton iteration (the paper's method) and cross-checks /
    falls back to a derivative-free Nelder-Mead minimization of the
    same objective; both agree to optimizer tolerance on every
    configuration the test suite sweeps. *)

type method_ = Newton_g | Nelder_mead

type result = {
  h : float;  (** optimal segment length, m *)
  k : float;  (** optimal repeater size *)
  tau : float;  (** stage delay at the optimum, s *)
  delay_per_length : float;  (** tau / h, s/m — the minimized objective *)
  method_ : method_;  (** which solver produced the reported optimum *)
  newton_converged : bool;
  newton_iterations : int;
}

val residuals : ?f:float -> Stage.t -> float * float
(** (g1, g2) of equations (7)-(8) at the stage's (h, k), normalized to
    O(1) by the natural time/length scales so they are comparable
    across technologies.  [f] defaults to 0.5. *)

val objective : ?f:float -> Rlc_tech.Node.t -> l:float -> h:float -> k:float -> float
(** tau/h for explicit (h, k) — the raw objective surface (used by
    benches and tests; [nan] outside the physical domain). *)

val optimize : ?f:float -> Rlc_tech.Node.t -> l:float -> result
(** Full optimization for a node at line inductance [l] (H/m).
    Starts from the closed-form RC optimum. *)

val optimize_newton_only : ?f:float -> Rlc_tech.Node.t -> l:float -> result option
(** The paper's Newton iteration alone; [None] when it fails to
    converge (near-critical-damping singularities).  Exposed so tests
    and benches can quantify how often the fallback is needed. *)

val optimize_nm_only : ?f:float -> Rlc_tech.Node.t -> l:float -> result
(** Nelder-Mead alone (always converges on this problem). *)

val sweep :
  ?f:float -> ?n:int -> Rlc_tech.Node.t -> l_max:float -> (float * result) list
(** [(l, optimize node ~l)] for [n] (default 26) uniformly spaced
    inductance values in [0, l_max]. *)
