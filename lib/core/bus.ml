type t = {
  n : int;
  r : float;
  l : float;
  lm : float;
  cg : float;
  cc : float;
}

let theta bus j = Float.cos (float_of_int j *. Float.pi /. float_of_int (bus.n + 1))

let make ~n ~r ~l ~lm ~cg ~cc =
  if n < 2 then invalid_arg "Bus.make: n < 2";
  if r <= 0.0 then invalid_arg "Bus.make: r <= 0";
  if cg <= 0.0 then invalid_arg "Bus.make: cg <= 0";
  if cc < 0.0 then invalid_arg "Bus.make: cc < 0";
  if l < 0.0 then invalid_arg "Bus.make: l < 0";
  if Float.abs lm *. 2.0 >= l && l > 0.0 then
    invalid_arg "Bus.make: need |lm| < l/2 (modal positive-definiteness)";
  if l = 0.0 && lm <> 0.0 then invalid_arg "Bus.make: lm without l";
  { n; r; l; lm; cg; cc }

let of_coupled ~n (pair : Coupled.t) =
  make ~n ~r:pair.Coupled.r ~l:pair.Coupled.l_self
    ~lm:(Float.min pair.Coupled.l_mutual (0.49 *. pair.Coupled.l_self))
    ~cg:pair.Coupled.c_ground ~cc:pair.Coupled.c_coupling

let mode_line bus j =
  if j < 1 || j > bus.n then invalid_arg "Bus.mode_line: mode out of range";
  let th = theta bus j in
  Line.make ~r:bus.r
    ~l:(bus.l +. (2.0 *. bus.lm *. th))
    ~c:(bus.cg +. (2.0 *. bus.cc *. (1.0 -. th)))

let mode_stage bus j ~driver ~h ~k =
  Stage.make ~line:(mode_line bus j) ~driver ~h ~k

let mode_delays ?f bus ~driver ~h ~k =
  List.init bus.n (fun i ->
      Delay.of_stage ?f (mode_stage bus (i + 1) ~driver ~h ~k))

let delay_envelope ?f bus ~driver ~h ~k =
  match mode_delays ?f bus ~driver ~h ~k with
  | [] -> assert false
  | d :: rest ->
      List.fold_left
        (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
        (d, d) rest

(* orthonormal discrete sine basis: phi_j(i) = sqrt(2/(n+1)) sin(i j pi/(n+1)) *)
let phi bus j i =
  Float.sqrt (2.0 /. float_of_int (bus.n + 1))
  *. Float.sin
       (float_of_int i *. float_of_int j *. Float.pi
       /. float_of_int (bus.n + 1))

let victim_noise_peak bus ~driver ~h ~k =
  (* centre line quiet, all others stepping *)
  let victim = (bus.n + 1) / 2 in
  let drive i = if i = victim then 0.0 else 1.0 in
  (* modal amplitudes a_j = sum_i phi_j(i) d(i) *)
  let amplitudes =
    Array.init bus.n (fun jm1 ->
        let j = jm1 + 1 in
        let acc = ref 0.0 in
        for i = 1 to bus.n do
          acc := !acc +. (phi bus j i *. drive i)
        done;
        !acc)
  in
  let coeffs =
    Array.init bus.n (fun jm1 ->
        Pade.coeffs (mode_stage bus (jm1 + 1) ~driver ~h ~k))
  in
  let weights =
    Array.init bus.n (fun jm1 -> phi bus (jm1 + 1) victim *. amplitudes.(jm1))
  in
  let horizon =
    10.0 *. Array.fold_left (fun acc c -> Float.max acc c.Pade.b1) 0.0 coeffs
  in
  let samples = 2000 in
  let peak = ref 0.0 in
  for s = 1 to samples do
    let t = float_of_int s /. float_of_int samples *. horizon in
    let v = ref 0.0 in
    Array.iteri
      (fun jm1 w ->
        if Float.abs w > 1e-15 then
          v := !v +. (w *. Step_response.eval coeffs.(jm1) t))
      weights;
    peak := Float.max !peak (Float.abs !v)
  done;
  !peak

let miller_capacitance_range bus =
  let cs =
    List.init bus.n (fun i ->
        let th = theta bus (i + 1) in
        bus.cg +. (2.0 *. bus.cc *. (1.0 -. th)))
  in
  match cs with
  | [] -> assert false
  | c :: rest ->
      List.fold_left
        (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
        (c, c) rest
