type t = {
  r : float;
  l_self : float;
  l_mutual : float;
  c_ground : float;
  c_coupling : float;
}

let make ~r ~l_self ~l_mutual ~c_ground ~c_coupling =
  if r <= 0.0 then invalid_arg "Coupled.make: r <= 0";
  if c_ground <= 0.0 then invalid_arg "Coupled.make: c_ground <= 0";
  if c_coupling < 0.0 then invalid_arg "Coupled.make: c_coupling < 0";
  if l_self < 0.0 then invalid_arg "Coupled.make: l_self < 0";
  if l_mutual < 0.0 || (l_self > 0.0 && l_mutual >= l_self) then
    invalid_arg "Coupled.make: need 0 <= l_mutual < l_self";
  { r; l_self; l_mutual; c_ground; c_coupling }

let of_geometry g ~l_self ~length =
  let c_ground = Rlc_extraction.Capacitance.meijs_fokkema_ground g in
  let c_coupling = Rlc_extraction.Capacitance.sakurai_coupling g in
  let l_mutual =
    if l_self = 0.0 then 0.0
    else
      Float.min
        (0.95 *. l_self)
        (Rlc_extraction.Inductance.mutual_parallel ~d:g.Rlc_extraction.Geometry.pitch
           ~length)
  in
  make ~r:(Rlc_extraction.Resistance.per_length g) ~l_self ~l_mutual ~c_ground
    ~c_coupling

type mode = Even | Odd

let mode_line t mode =
  match mode with
  | Even -> Line.make ~r:t.r ~l:(t.l_self +. t.l_mutual) ~c:t.c_ground
  | Odd ->
      let l = t.l_self -. t.l_mutual in
      if l < 0.0 then invalid_arg "Coupled.mode_line: negative odd-mode l";
      Line.make ~r:t.r ~l ~c:(t.c_ground +. (2.0 *. t.c_coupling))

let mode_stage t mode ~driver ~h ~k =
  Stage.make ~line:(mode_line t mode) ~driver ~h ~k

(* quiet neighbours: coupling cap to a static line counts once *)
let nominal_line t =
  Line.make ~r:t.r ~l:t.l_self ~c:(t.c_ground +. t.c_coupling)

type switching_delay = {
  even_delay : float;
  odd_delay : float;
  nominal_delay : float;
  spread : float;
}

let switching_delays ?f t ~driver ~h ~k =
  let delay_of line = Delay.of_stage ?f (Stage.make ~line ~driver ~h ~k) in
  let even_delay = delay_of (mode_line t Even) in
  let odd_delay = delay_of (mode_line t Odd) in
  let nominal_delay = delay_of (nominal_line t) in
  {
    even_delay;
    odd_delay;
    nominal_delay;
    spread = (odd_delay -. even_delay) /. nominal_delay;
  }

let victim_noise_waveform ?(n = 2000) t ~driver ~h ~k ~t_end =
  let cs_of mode = Pade.coeffs (mode_stage t mode ~driver ~h ~k) in
  let even = cs_of Even and odd = cs_of Odd in
  Rlc_waveform.Waveform.of_fn ~n
    (fun time ->
      0.5 *. (Step_response.eval even time -. Step_response.eval odd time))
    ~t0:0.0 ~t1:t_end

let victim_noise_peak t ~driver ~h ~k =
  let cs = Pade.coeffs (mode_stage t Even ~driver ~h ~k) in
  let horizon = 10.0 *. cs.Pade.b1 in
  let w = victim_noise_waveform t ~driver ~h ~k ~t_end:horizon in
  Rlc_waveform.Measure.peak_abs w
