(** Buffer chains (tapered drivers) for large capacitive loads.

    Repeater insertion assumes the load is another repeater; driving a
    big fixed load (a bus, a clock grid, an output pad) from a
    minimum-size gate instead wants a geometrically growing chain.
    With the paper's driver model, stage i of ratio rho has delay
    ln 2 * (rs cp + rs c0 rho) (each stage drives rho copies of its own
    input capacitance), giving the textbook optimum
    rho* solving rho (ln rho - 1) = cp/c0, which degenerates to
    rho* = e when cp = 0.

    [chain_through_wire] splices a distributed line between the chain
    and the load — the combined problem the paper's Section 2 stage
    solves for one segment, here solved jointly for (chain, repeater
    size) by reusing the delay machinery. *)

type chain = {
  stages : int;  (** number of inverters including the first *)
  ratio : float;  (** size ratio between consecutive stages *)
  sizes : float list;  (** stage sizes, starting at [k_first] *)
  delay : float;  (** total 50%-style chain delay, s *)
}

val optimal_ratio : Rlc_tech.Driver.t -> float
(** rho* from the driver's cp/c0 (Newton on rho(ln rho - 1) = cp/c0);
    e for cp = 0, larger when parasitics matter. *)

val design :
  ?k_first:float -> Rlc_tech.Driver.t -> load:float -> chain
(** Chain from a [k_first]-sized gate (default 1.0 = minimum) to the
    capacitive [load] (farads): integer stage count nearest to the
    continuous optimum, ratio re-balanced to land exactly on the load.
    Raises [Invalid_argument] when the load is not larger than the
    first stage's input capacitance. *)

val delay_of_ratio :
  Rlc_tech.Driver.t -> load:float -> ?k_first:float -> float -> float
(** Chain delay at an explicit ratio (exposed so tests can verify the
    optimum). *)

val chain_through_wire :
  ?f:float -> Rlc_tech.Node.t -> l:float -> wire_length:float ->
  load:float -> chain * float
(** Size a chain that drives [load] THROUGH a wire of [wire_length]:
    the last stage is the wire's driver (its size jointly optimized
    with the chain via the paper's stage-delay solver), the earlier
    stages ramp up to it.  Returns the chain and the total delay
    including the wire. *)
