let ln2 = Float.log 2.0

type chain = {
  stages : int;
  ratio : float;
  sizes : float list;
  delay : float;
}

(* rho (ln rho - 1) = cp / c0 *)
let optimal_ratio driver =
  let target = driver.Rlc_tech.Driver.cp /. driver.Rlc_tech.Driver.c0 in
  Rlc_numerics.Roots.newton
    ~f:(fun rho -> (rho *. (Float.log rho -. 1.0)) -. target)
    ~df:(fun rho -> Float.log rho)
    (Float.exp 1.0 +. target)

let fanout driver ~k_first ~load =
  let first_cap = driver.Rlc_tech.Driver.c0 *. k_first in
  if load <= first_cap then
    invalid_arg "Taper: load must exceed the first stage's input capacitance";
  load /. first_cap

let delay_of_ratio driver ~load ?(k_first = 1.0) rho =
  if rho <= 1.0 then invalid_arg "Taper.delay_of_ratio: ratio <= 1";
  let f = fanout driver ~k_first ~load in
  let n = Float.log f /. Float.log rho in
  n *. ln2
  *. driver.Rlc_tech.Driver.rs
  *. (driver.Rlc_tech.Driver.cp +. (driver.Rlc_tech.Driver.c0 *. rho))

let design ?(k_first = 1.0) driver ~load =
  let f = fanout driver ~k_first ~load in
  let rho_star = optimal_ratio driver in
  let n = Int.max 1 (int_of_float (Float.round (Float.log f /. Float.log rho_star))) in
  let ratio = f ** (1.0 /. float_of_int n) in
  let sizes =
    List.init n (fun i -> k_first *. (ratio ** float_of_int i))
  in
  let delay =
    float_of_int n *. ln2
    *. driver.Rlc_tech.Driver.rs
    *. (driver.Rlc_tech.Driver.cp +. (driver.Rlc_tech.Driver.c0 *. ratio))
  in
  { stages = n; ratio; sizes; delay }

let chain_through_wire ?f node ~l ~wire_length ~load =
  if wire_length <= 0.0 then invalid_arg "Taper.chain_through_wire: bad wire";
  if load <= 0.0 then invalid_arg "Taper.chain_through_wire: bad load";
  let driver = node.Rlc_tech.Node.driver in
  let line = Line.of_node node ~l in
  let wire_delay k =
    (* the paper's stage with the load pinned to [load] instead of
       c0 k: encode it as a synthetic driver whose c0 scales to the
       real load at size k *)
    let synthetic =
      Rlc_tech.Driver.make ~rs:driver.Rlc_tech.Driver.rs ~c0:(load /. k)
        ~cp:driver.Rlc_tech.Driver.cp
    in
    Delay.of_stage ?f (Stage.make ~line ~driver:synthetic ~h:wire_length ~k)
  in
  let total k =
    if k <= 1.0 then nan
    else begin
      let gate_cap = driver.Rlc_tech.Driver.c0 *. k in
      let chain =
        if gate_cap <= driver.Rlc_tech.Driver.c0 then
          { stages = 0; ratio = 1.0; sizes = []; delay = 0.0 }
        else design driver ~load:gate_cap
      in
      chain.delay +. wire_delay k
    end
  in
  let sol =
    Rlc_numerics.Nelder_mead.minimize ~max_iter:2000
      ~f:(fun x -> total (Float.exp x.(0)))
      ~x0:[| Float.log 100.0 |] ()
  in
  let k = Float.exp sol.Rlc_numerics.Nelder_mead.x.(0) in
  let gate_cap = node.Rlc_tech.Node.driver.Rlc_tech.Driver.c0 *. k in
  let chain = design node.Rlc_tech.Node.driver ~load:gate_cap in
  (* append the wire-driver stage itself *)
  let chain =
    {
      chain with
      stages = chain.stages + 1;
      sizes = chain.sizes @ [ k ];
      delay = chain.delay;
    }
  in
  (chain, total k)
