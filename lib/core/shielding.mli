(** Shield-insertion trade-off for bus wiring.

    Given one extra routing track per signal, a designer can either
    ground it (a shield) or leave it as spacing.  Shields cost the same
    area but do two things spacing cannot: they pin the current return
    path next to the signal (collapsing both the inductance and its
    uncertainty — the paper's central worry) and they convert
    neighbour coupling into ground capacitance (killing crosstalk).
    This module quantifies the three layouts with the extraction
    models and the {!Bus} modal analysis. *)

type layout = Dense | Spaced | Shielded

type result = {
  layout : layout;
  c_eff : float;  (** nominal effective capacitance, F/m *)
  l_eff : float;  (** nominal loop inductance, H/m *)
  nominal_delay : float;  (** 50% stage delay, s *)
  delay_spread : float;
      (** (slowest - fastest) / nominal over switching patterns; 0 for
          the shielded layout (no signal neighbours) *)
  victim_noise : float;  (** peak crosstalk, fraction of swing *)
  tracks_per_signal : float;  (** area cost: 1 dense, 2 for the others *)
}

val analyze :
  ?bus_width:int -> ?f:float -> Rlc_tech.Node.t -> h:float -> k:float ->
  result list
(** The three layouts for the node's top-metal geometry at the given
    repeater sizing ([bus_width] signals in the dense/spaced bus,
    default 8).  Dense uses the node's own pitch; Spaced doubles the
    pitch; Shielded alternates signal and grounded tracks at the
    original pitch. *)

val pp_layout : Format.formatter -> layout -> unit
