(** Comma-separated output of experiment data (for re-plotting outside
    the repository). *)

val write : path:string -> header:string list -> rows:float list list -> unit
(** Writes a CSV file; every row must match the header width (raises
    [Invalid_argument] otherwise). *)

val to_string : header:string list -> rows:float list list -> string
