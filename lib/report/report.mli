(** The shared output surface of every run/print entry point.

    All figure/table printers in the repository take a
    [?ppf:Format.formatter] (default [Format.std_formatter]) and route
    everything through here, {!Table} and {!Ascii_plot}; tests capture
    a report into a buffer formatter and diff it instead of shelling
    out.  Every helper flushes, so output interleaves correctly with
    legacy [Printf] callers sharing the same channel. *)

val section : ?ppf:Format.formatter -> string -> unit
(** A bench/CLI section header: blank line, title, ['=']-underline. *)

val newline : ?ppf:Format.formatter -> unit -> unit

val line : ?ppf:Format.formatter -> ('a, Format.formatter, unit) format -> 'a
(** [Format.fprintf] followed by a newline and a flush. *)
