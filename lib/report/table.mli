(** Fixed-width text tables for the benchmark harness (the medium in
    which every paper table/figure is regenerated). *)

type t

val create : title:string -> columns:string list -> t

val add_row : t -> string list -> unit
(** Raises [Invalid_argument] when the cell count does not match the
    column count. *)

val add_float_row : t -> ?fmt:(float -> string) -> float list -> unit
(** Formats every cell with [fmt] (default [%.4g]). *)

val render : t -> string

val pp : Format.formatter -> t -> unit
(** [render] onto a formatter (no flush). *)

val print : ?ppf:Format.formatter -> t -> unit
(** [pp] + flush; [ppf] defaults to [Format.std_formatter], so by
    default the table lands on stdout exactly as before.  Tests pass a
    buffer-backed formatter to capture and diff figure output. *)

val rows : t -> string list list
(** Raw cells, for tests. *)
