(** Fixed-width text tables for the benchmark harness (the medium in
    which every paper table/figure is regenerated). *)

type t

val create : title:string -> columns:string list -> t

val add_row : t -> string list -> unit
(** Raises [Invalid_argument] when the cell count does not match the
    column count. *)

val add_float_row : t -> ?fmt:(float -> string) -> float list -> unit
(** Formats every cell with [fmt] (default [%.4g]). *)

val render : t -> string
val print : t -> unit
(** [render] + output to stdout with a trailing newline. *)

val rows : t -> string list list
(** Raw cells, for tests. *)
