type t = {
  title : string;
  columns : string list;
  mutable body : string list list; (* reversed *)
}

let create ~title ~columns =
  if columns = [] then invalid_arg "Table.create: no columns";
  { title; columns; body = [] }

let add_row t cells =
  if List.length cells <> List.length t.columns then
    invalid_arg "Table.add_row: cell count mismatch";
  t.body <- cells :: t.body

let default_fmt v = Printf.sprintf "%.4g" v

let add_float_row t ?(fmt = default_fmt) values =
  add_row t (List.map fmt values)

let rows t = List.rev t.body

let render t =
  let all = t.columns :: rows t in
  let widths =
    List.fold_left
      (fun acc row -> List.map2 (fun w c -> Int.max w (String.length c)) acc row)
      (List.map (fun _ -> 0) t.columns)
      all
  in
  let pad w s = s ^ String.make (w - String.length s) ' ' in
  let rstrip s =
    let n = ref (String.length s) in
    while !n > 0 && s.[!n - 1] = ' ' do
      decr n
    done;
    String.sub s 0 !n
  in
  let line row = rstrip (String.concat "  " (List.map2 pad widths row)) in
  let sep =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  Buffer.add_string buf (line t.columns);
  Buffer.add_char buf '\n';
  Buffer.add_string buf sep;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (line row);
      Buffer.add_char buf '\n')
    (rows t);
  Buffer.contents buf

let pp ppf t = Format.pp_print_string ppf (render t)

(* flush after every table so output interleaves correctly with code
   that still writes to the underlying channel via Printf *)
let print ?(ppf = Format.std_formatter) t =
  pp ppf t;
  Format.pp_print_flush ppf ()
