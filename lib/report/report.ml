let section ?(ppf = Format.std_formatter) title =
  Format.fprintf ppf "@\n%s@\n%s@\n@\n" title
    (String.make (String.length title) '=');
  Format.pp_print_flush ppf ()

let newline ?(ppf = Format.std_formatter) () =
  Format.pp_print_newline ppf ();
  Format.pp_print_flush ppf ()

let line ?(ppf = Format.std_formatter) fmt =
  Format.kfprintf
    (fun ppf ->
      Format.pp_print_newline ppf ();
      Format.pp_print_flush ppf ())
    ppf fmt
