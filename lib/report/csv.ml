let to_string ~header ~rows =
  let width = List.length header in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (String.concat "," header);
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      if List.length row <> width then
        invalid_arg "Csv.to_string: row width mismatch";
      Buffer.add_string buf
        (String.concat "," (List.map (Printf.sprintf "%.9g") row));
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let write ~path ~header ~rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ~header ~rows))
