(** Minimal ASCII line plots, one character per sample column.  The
    benchmark harness renders every figure both as a data table and as
    a quick visual check. *)

type series = { label : char; xs : float array; ys : float array }

val series : label:char -> xs:float array -> ys:float array -> series
(** Raises [Invalid_argument] on empty or mismatched arrays. *)

val render :
  ?width:int ->
  ?height:int ->
  ?title:string ->
  ?y_min:float ->
  ?y_max:float ->
  series list ->
  string
(** Plot all series on shared axes ([width] x [height] characters,
    defaults 72 x 18).  The y-range defaults to the data range padded
    by 5%; x is the union of series ranges.  Overlapping points keep
    the label of the later series. *)

val pp :
  ?width:int ->
  ?height:int ->
  ?title:string ->
  ?y_min:float ->
  ?y_max:float ->
  Format.formatter ->
  series list ->
  unit
(** [render] onto a formatter (no flush). *)

val print :
  ?width:int ->
  ?height:int ->
  ?title:string ->
  ?y_min:float ->
  ?y_max:float ->
  ?ppf:Format.formatter ->
  series list ->
  unit
(** [pp] + flush; [ppf] defaults to [Format.std_formatter]. *)
