type series = { label : char; xs : float array; ys : float array }

let series ~label ~xs ~ys =
  if Array.length xs = 0 || Array.length xs <> Array.length ys then
    invalid_arg "Ascii_plot.series: empty or mismatched arrays";
  { label; xs; ys }

let fold_range init f arrays =
  List.fold_left (fun acc arr -> Array.fold_left f acc arr) init arrays

let render ?(width = 72) ?(height = 18) ?title ?y_min ?y_max all =
  if all = [] then invalid_arg "Ascii_plot.render: no series";
  if width < 8 || height < 4 then invalid_arg "Ascii_plot.render: too small";
  let xss = List.map (fun s -> s.xs) all in
  let yss = List.map (fun s -> s.ys) all in
  let x_lo = fold_range infinity Float.min xss in
  let x_hi = fold_range neg_infinity Float.max xss in
  let data_lo = fold_range infinity Float.min yss in
  let data_hi = fold_range neg_infinity Float.max yss in
  let pad = 0.05 *. Float.max (data_hi -. data_lo) 1e-300 in
  let y_lo = match y_min with Some v -> v | None -> data_lo -. pad in
  let y_hi = match y_max with Some v -> v | None -> data_hi +. pad in
  let y_hi = if y_hi > y_lo then y_hi else y_lo +. 1.0 in
  let x_hi = if x_hi > x_lo then x_hi else x_lo +. 1.0 in
  let grid = Array.make_matrix height width ' ' in
  let place x y label =
    let col =
      int_of_float
        (Float.round ((x -. x_lo) /. (x_hi -. x_lo) *. float_of_int (width - 1)))
    in
    let row =
      int_of_float
        (Float.round ((y_hi -. y) /. (y_hi -. y_lo) *. float_of_int (height - 1)))
    in
    if col >= 0 && col < width && row >= 0 && row < height then
      grid.(row).(col) <- label
  in
  List.iter
    (fun s -> Array.iteri (fun i x -> place x s.ys.(i) s.label) s.xs)
    all;
  let buf = Buffer.create (width * height) in
  (match title with
  | Some t -> Buffer.add_string buf (t ^ "\n")
  | None -> ());
  for r = 0 to height - 1 do
    let axis_val =
      y_hi -. (float_of_int r /. float_of_int (height - 1) *. (y_hi -. y_lo))
    in
    Buffer.add_string buf (Printf.sprintf "%10.3g |" axis_val);
    for c = 0 to width - 1 do
      Buffer.add_char buf grid.(r).(c)
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.add_string buf (String.make 11 ' ');
  Buffer.add_char buf '+';
  Buffer.add_string buf (String.make width '-');
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (Printf.sprintf "%11s %-10.3g%*s%10.3g\n" "" x_lo (width - 20) "" x_hi);
  Buffer.contents buf

let pp ?width ?height ?title ?y_min ?y_max ppf all =
  Format.pp_print_string ppf (render ?width ?height ?title ?y_min ?y_max all)

let print ?width ?height ?title ?y_min ?y_max ?(ppf = Format.std_formatter)
    all =
  pp ?width ?height ?title ?y_min ?y_max ppf all;
  Format.pp_print_flush ppf ()
