let eps0 = 8.8541878128e-12

let eps g = eps0 *. g.Geometry.eps_r

let parallel_plate g =
  eps g *. g.Geometry.width /. g.Geometry.t_ins

let meijs_fokkema_ground g =
  let w_h = g.Geometry.width /. g.Geometry.t_ins in
  let t_h = g.Geometry.thickness /. g.Geometry.t_ins in
  eps g *. (w_h +. 0.77 +. (1.06 *. (w_h ** 0.25)) +. (1.06 *. Float.sqrt t_h))

let sakurai_coupling g =
  let h = g.Geometry.t_ins in
  let w_h = g.Geometry.width /. h in
  let t_h = g.Geometry.thickness /. h in
  let s_h = Geometry.spacing g /. h in
  let shape =
    (0.03 *. w_h) +. (0.83 *. t_h) -. (0.07 *. (t_h ** 0.222))
  in
  eps g *. shape *. (s_h ** -1.34)

let total ?(miller = 1.0) g =
  if miller < 0.0 || miller > 2.0 then
    invalid_arg "Capacitance.total: miller must be in [0,2]";
  meijs_fokkema_ground g +. (2.0 *. miller *. sakurai_coupling g)

let miller_range g = (total ~miller:0.0 g, total ~miller:2.0 g)
