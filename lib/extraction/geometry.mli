(** Interconnect cross-section geometry.

    Mirrors the columns of Table 1 of the paper: line width, pitch,
    metal thickness ("height" in the table), distance to the return
    plane / substrate ([t_ins]) and the dielectric constant. *)

type t = {
  width : float;  (** line width, m *)
  pitch : float;  (** centre-to-centre pitch to neighbours, m *)
  thickness : float;  (** metal thickness, m *)
  t_ins : float;  (** dielectric stack height to the return plane, m *)
  eps_r : float;  (** relative permittivity of the dielectric *)
}

val make :
  width:float ->
  pitch:float ->
  thickness:float ->
  t_ins:float ->
  eps_r:float ->
  t
(** Validates positivity of every field and [pitch > width]. *)

val spacing : t -> float
(** Edge-to-edge spacing to a neighbour: [pitch - width]. *)

val aspect_ratio : t -> float
(** [thickness / width]; > 1 in DSM technologies (Section 3). *)

val cross_section_area : t -> float
(** [width * thickness], m^2 — used for current densities (Fig. 12). *)

val um : float -> float
(** Micrometres to metres. *)

val pp : Format.formatter -> t -> unit
