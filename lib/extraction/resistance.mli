(** Per-unit-length wire resistance. *)

val rho_copper : float
(** Bulk copper resistivity at 25 C, ohm*m (1.72e-8). *)

val rho_aluminum : float
(** Bulk aluminium resistivity at 25 C, ohm*m (2.82e-8). *)

val per_length : ?rho:float -> Geometry.t -> float
(** [per_length g] is rho / (width * thickness), ohm/m.  Default
    resistivity is copper (the paper's interconnect material). *)

val with_temperature : ?rho:float -> ?alpha:float -> t_celsius:float -> Geometry.t -> float
(** Linear temperature correction rho(T) = rho_25 * (1 + alpha (T - 25)),
    [alpha] defaults to copper's 3.9e-3 / K.  Supports the reliability
    discussion of Section 3.3.2 where Joule heating raises wire
    temperature. *)

val total : ?rho:float -> Geometry.t -> length:float -> float
(** Total resistance of a wire of the given length, ohm. *)
