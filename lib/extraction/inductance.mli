(** Per-unit-length inductance estimates.

    The paper stresses that on-chip inductance is not a fixed
    parameter: it depends on where the return current flows.  We bound
    it from below by the loop inductance with the return plane directly
    under the line (microstrip), and from above by the partial
    self-inductance of an isolated wire (return at infinity), following
    Grover/Ruehli.  The Table 1 technologies land in the
    sub-nH/mm .. few-nH/mm window the paper sweeps (l < 5 nH/mm). *)

val mu0 : float
(** Vacuum permeability, H/m. *)

val microstrip_loop : Geometry.t -> float
(** Loop inductance per unit length with the return plane at [t_ins]:
    (mu0 / 2 pi) * ln(8 h / w_eff + w_eff / (4 h)) with
    w_eff = w + t folded in as an effective strip width.  This is the
    best-case (minimum) inductance. *)

val partial_self : Geometry.t -> length:float -> float
(** Partial self-inductance of an isolated rectangular conductor of the
    given length, divided by the length (H/m):
    (mu0 / 2 pi) * (ln(2 l / (w + t)) + 0.5 + (w + t) / (3 l)).
    Grows logarithmically with length; the worst-case (return path far
    away) estimate. *)

val mutual_parallel : d:float -> length:float -> float
(** Partial mutual inductance per unit length between two parallel
    filaments at distance [d]:
    (mu0 / 2 pi) * (ln(2 l / d) - 1 + d / l).  Used to estimate the
    loop inductance of signal/return pairs. *)

val loop_with_return : Geometry.t -> return_distance:float -> length:float -> float
(** Loop inductance per unit length of a signal wire with a same-size
    return conductor at [return_distance]:
    2 * (partial_self - mutual).  Monotone in [return_distance]; this
    is how "current return path farther away => larger l" is
    quantified. *)

val worst_case : Geometry.t -> length:float -> float
(** Worst-case estimate: loop with the return at the substrate
    distance plus the partial-self growth — bounded sanity check for
    the paper's "< 5 nH/mm" statement. *)
