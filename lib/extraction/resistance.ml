let rho_copper = 1.72e-8
let rho_aluminum = 2.82e-8

let per_length ?(rho = rho_copper) g =
  rho /. Geometry.cross_section_area g

let with_temperature ?(rho = rho_copper) ?(alpha = 3.9e-3) ~t_celsius g =
  let rho_t = rho *. (1.0 +. (alpha *. (t_celsius -. 25.0))) in
  per_length ~rho:rho_t g

let total ?rho g ~length =
  if length <= 0.0 then invalid_arg "Resistance.total: non-positive length";
  per_length ?rho g *. length
