(** Joule self-heating of interconnect — the reliability substrate
    behind Section 3.3.2 of the paper (its reference [28] is the
    authors' own thermal-effects work).

    A wire carrying RMS current I dissipates P' = I^2 r per unit
    length and conducts the heat through the dielectric to the
    substrate.  With the standard one-dimensional spreading model the
    thermal resistance per unit length is

      R_th' = t_ins / (k_ins * (w + 0.88 t_ins))

    and the copper resistance feeds back through its temperature
    coefficient, giving the closed form

      dT = I^2 r0 R_th' / (1 - I^2 r0 alpha R_th')

    whose pole is the thermal-runaway current. *)

val k_sio2 : float
(** Thermal conductivity of SiO2, 1.4 W/(m K). *)

val thermal_resistance : ?k_ins:float -> Geometry.t -> float
(** R_th' in K m / W ([k_ins] defaults to {!k_sio2}). *)

val temperature_rise :
  ?k_ins:float -> ?rho:float -> Geometry.t -> i_rms:float -> float
(** Self-consistent temperature rise (K) including the copper TCR
    feedback.  Raises [Invalid_argument] beyond the runaway current. *)

val temperature_rise_no_feedback :
  ?k_ins:float -> ?rho:float -> Geometry.t -> i_rms:float -> float
(** First-order estimate with the resistance frozen at 25 C. *)

val runaway_current : ?k_ins:float -> ?rho:float -> Geometry.t -> float
(** RMS current (A) at which the TCR feedback diverges. *)

val max_current_for_rise :
  ?k_ins:float -> ?rho:float -> Geometry.t -> dt_max:float -> float
(** Largest RMS current keeping the rise below [dt_max] kelvin — an
    electromigration-style design limit. *)
