type t = {
  width : float;
  pitch : float;
  thickness : float;
  t_ins : float;
  eps_r : float;
}

let make ~width ~pitch ~thickness ~t_ins ~eps_r =
  let positive name v =
    if v <= 0.0 then
      invalid_arg (Printf.sprintf "Geometry.make: %s must be positive" name)
  in
  positive "width" width;
  positive "pitch" pitch;
  positive "thickness" thickness;
  positive "t_ins" t_ins;
  positive "eps_r" eps_r;
  if pitch <= width then invalid_arg "Geometry.make: pitch must exceed width";
  { width; pitch; thickness; t_ins; eps_r }

let spacing g = g.pitch -. g.width
let aspect_ratio g = g.thickness /. g.width
let cross_section_area g = g.width *. g.thickness
let um x = x *. 1e-6

let pp ppf g =
  Format.fprintf ppf
    "geometry<w=%.2fum p=%.2fum t=%.2fum tins=%.2fum eps_r=%.2f>"
    (g.width *. 1e6) (g.pitch *. 1e6) (g.thickness *. 1e6) (g.t_ins *. 1e6)
    g.eps_r
