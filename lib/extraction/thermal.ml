let k_sio2 = 1.4
let tcr_copper = 3.9e-3

let thermal_resistance ?(k_ins = k_sio2) g =
  if k_ins <= 0.0 then invalid_arg "Thermal: k_ins <= 0";
  let w_eff =
    g.Geometry.width +. (0.88 *. g.Geometry.t_ins)
  in
  g.Geometry.t_ins /. (k_ins *. w_eff)

let loading ?k_ins ?rho g ~i_rms =
  if i_rms < 0.0 then invalid_arg "Thermal: negative current";
  let r0 = Resistance.per_length ?rho g in
  i_rms *. i_rms *. r0 *. thermal_resistance ?k_ins g

let temperature_rise_no_feedback ?k_ins ?rho g ~i_rms =
  loading ?k_ins ?rho g ~i_rms

let temperature_rise ?k_ins ?rho g ~i_rms =
  let x = loading ?k_ins ?rho g ~i_rms in
  let denom = 1.0 -. (x *. tcr_copper) in
  if denom <= 0.0 then
    invalid_arg "Thermal.temperature_rise: beyond thermal runaway";
  x /. denom

let runaway_current ?k_ins ?rho g =
  (* x * alpha = 1 at runaway, x = I^2 r0 R_th *)
  let r0 = Resistance.per_length ?rho g in
  Float.sqrt (1.0 /. (tcr_copper *. r0 *. thermal_resistance ?k_ins g))

let max_current_for_rise ?k_ins ?rho g ~dt_max =
  if dt_max <= 0.0 then invalid_arg "Thermal: dt_max <= 0";
  (* dT = x/(1 - alpha x) = dt_max  =>  x = dt_max / (1 + alpha dt_max) *)
  let x = dt_max /. (1.0 +. (tcr_copper *. dt_max)) in
  let r0 = Resistance.per_length ?rho g in
  Float.sqrt (x /. (r0 *. thermal_resistance ?k_ins g))
