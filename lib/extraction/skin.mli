(** Skin effect: frequency-dependent wire resistance.

    At the multi-GHz ringing frequencies of inductive interconnect the
    current crowds into a skin depth delta(f) = sqrt(rho / (pi mu0 f));
    once delta is smaller than half the conductor's minor dimension the
    effective resistance grows as sqrt(f).  This partially damps the
    overshoot/undershoot the paper studies — the correction is applied
    by {!Rlc_core.Skin_effect}. *)

val skin_depth : ?rho:float -> float -> float
(** [skin_depth f] in metres ([rho] defaults to copper).  Raises
    [Invalid_argument] for non-positive frequency. *)

val corner_frequency : ?rho:float -> Geometry.t -> float
(** Frequency at which the skin depth equals half the smaller of the
    conductor's width and thickness — below it the DC resistance holds,
    above it current crowding dominates. *)

val resistance_at : ?rho:float -> Geometry.t -> float -> float
(** Per-unit-length resistance at frequency [f], using the smooth
    interpolation r(f) = r_dc * sqrt(1 + f / f_corner), which matches
    the DC value at low f and the sqrt(f) crowding law well above the
    corner.  [f = 0] returns the DC value. *)
