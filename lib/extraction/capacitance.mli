(** Analytic per-unit-length capacitance models.

    Substitute for the FASTCAP runs of the paper (Section 3): the
    van der Meijs-Fokkema empirical model gives the line-to-plane
    component and the Sakurai-Tamaru model the line-to-line coupling.
    Both are accurate to a few percent against field solvers inside
    their fitted ranges, which covers the Table 1 geometries. *)

val eps0 : float
(** Vacuum permittivity, F/m. *)

val parallel_plate : Geometry.t -> float
(** Ideal plate capacitance eps * w / t_ins, F/m — the lower bound. *)

val meijs_fokkema_ground : Geometry.t -> float
(** Line-over-plane capacitance including fringe:
    c/eps = w/h + 0.77 + 1.06 (w/h)^0.25 + 1.06 (t/h)^0.5. *)

val sakurai_coupling : Geometry.t -> float
(** Line-to-line coupling capacitance per neighbour (Sakurai-Tamaru):
    c/eps = (0.03 w/h + 0.83 t/h - 0.07 (t/h)^0.222) (s/h)^-1.34. *)

val total : ?miller:float -> Geometry.t -> float
(** Effective per-unit-length capacitance with two neighbours:
    ground component + 2 * miller * coupling.  [miller] in [0, 2]
    models neighbour switching activity (Section 3: effective line
    capacitance varies by up to 4x); default 1.0 (quiet neighbours). *)

val miller_range : Geometry.t -> float * float
(** (best case, worst case) effective capacitance: miller 0 and 2. *)
