let mu0 = 4.0e-7 *. Float.pi

let two_pi_factor = mu0 /. (2.0 *. Float.pi)

let microstrip_loop g =
  let h = g.Geometry.t_ins in
  let w_eff = g.Geometry.width +. g.Geometry.thickness in
  two_pi_factor *. Float.log ((8.0 *. h /. w_eff) +. (w_eff /. (4.0 *. h)))

let check_length length =
  if length <= 0.0 then invalid_arg "Inductance: non-positive length"

let partial_self g ~length =
  check_length length;
  let wt = g.Geometry.width +. g.Geometry.thickness in
  two_pi_factor
  *. (Float.log (2.0 *. length /. wt) +. 0.5 +. (wt /. (3.0 *. length)))

let mutual_parallel ~d ~length =
  check_length length;
  if d <= 0.0 then invalid_arg "Inductance.mutual_parallel: d <= 0";
  if d >= length then 0.0
  else two_pi_factor *. (Float.log (2.0 *. length /. d) -. 1.0 +. (d /. length))

let loop_with_return g ~return_distance ~length =
  check_length length;
  let self = partial_self g ~length in
  let mutual = mutual_parallel ~d:return_distance ~length in
  2.0 *. (self -. mutual)

let worst_case g ~length =
  (* return forced all the way down to the substrate, plus the isolated
     partial-self term as the far-return bound; take the larger *)
  let far_return = loop_with_return g ~return_distance:g.Geometry.t_ins ~length in
  Float.max far_return (partial_self g ~length)
