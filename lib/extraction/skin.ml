let mu0 = 4.0e-7 *. Float.pi

let skin_depth ?(rho = Resistance.rho_copper) f =
  if f <= 0.0 then invalid_arg "Skin.skin_depth: f <= 0";
  Float.sqrt (rho /. (Float.pi *. mu0 *. f))

let corner_frequency ?(rho = Resistance.rho_copper) g =
  let half_minor =
    0.5 *. Float.min g.Geometry.width g.Geometry.thickness
  in
  (* delta(f_c) = half_minor *)
  rho /. (Float.pi *. mu0 *. half_minor *. half_minor)

let resistance_at ?rho g f =
  if f < 0.0 then invalid_arg "Skin.resistance_at: f < 0";
  let r_dc = Resistance.per_length ?rho g in
  if f = 0.0 then r_dc
  else r_dc *. Float.sqrt (1.0 +. (f /. corner_frequency ?rho g))
