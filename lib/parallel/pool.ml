type t = { capacity : int }

module M = Rlc_instr.Metrics

let m_maps = M.counter "pool.maps"
let m_spawn_fallback = M.counter "pool.spawn_fallback"

let worker_handles w =
  let p = Printf.sprintf "pool.worker%d." w in
  (M.counter (p ^ "chunks"), M.counter (p ^ "busy_s"), M.counter (p ^ "idle_s"))

(* intern the first few worker rows up front so a --stats dump always
   shows the pool section, honestly zeroed when nothing ran parallel *)
let () = for w = 0 to 3 do ignore (worker_handles w) done

let clamp n = Int.max 1 (Int.min 128 n)

let default_domains () =
  let from_env =
    match Sys.getenv_opt "RLC_JOBS" with
    | None -> None
    | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some n when n >= 1 -> Some n
        | Some _ | None -> None)
  in
  clamp
    (match from_env with
    | Some n -> n
    | None -> Domain.recommended_domain_count ())

let create ?domains () =
  match domains with
  | None -> { capacity = default_domains () }
  | Some d ->
      if d < 1 then invalid_arg "Pool.create: domains < 1";
      { capacity = clamp d }

let sequential = { capacity = 1 }
let domains t = t.capacity

(* Hand out chunk indices [0, n_chunks) through an atomic cursor to the
   calling domain plus up to [capacity - 1] spawned ones.  [work c]
   must write only slots owned by chunk [c]; any exception parks in
   [failure] (first observed wins) and drains the cursor. *)
let run_workers ~capacity ~n_chunks ~work =
  M.incr m_maps;
  let cursor = Atomic.make 0 in
  let failure = Atomic.make None in
  (* [w] is the worker's index (0 = the calling domain), used only to
     label its telemetry; the chunk cursor alone decides who does what,
     so recording never changes the work distribution's semantics *)
  let worker w () =
    let on = M.recording () in
    let t_worker = Rlc_instr.Timer.start () in
    let busy = ref 0.0 in
    let chunks = ref 0 in
    let continue = ref true in
    while !continue do
      if Atomic.get failure <> None then continue := false
      else begin
        let c = Atomic.fetch_and_add cursor 1 in
        if c >= n_chunks then continue := false
        else begin
          if on then incr chunks;
          try
            if on then begin
              let t = Rlc_instr.Timer.start () in
              work c;
              busy := !busy +. Rlc_instr.Timer.elapsed_s t
            end
            else work c
          with e ->
            let bt = Printexc.get_raw_backtrace () in
            ignore (Atomic.compare_and_set failure None (Some (e, bt)));
            continue := false
        end
      end
    done;
    if on then begin
      let mc, mb, mi = worker_handles w in
      M.add mc (Float.of_int !chunks);
      M.add mb !busy;
      M.add mi (Float.max 0.0 (Rlc_instr.Timer.elapsed_s t_worker -. !busy))
    end
  in
  let spawned = ref [] in
  (* spawn failure is not an error: the chunks left in the cursor are
     simply drained by the domains that did start (possibly only the
     calling one) *)
  (try
     for w = 2 to Int.min capacity n_chunks do
       spawned := Domain.spawn (worker (w - 1)) :: !spawned
     done
   with _ -> M.incr m_spawn_fallback);
  worker 0 ();
  List.iter Domain.join !spawned;
  match Atomic.get failure with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

let mapi ?chunk pool f xs =
  let n = Array.length xs in
  (match chunk with
  | Some c when c < 1 -> invalid_arg "Pool.map: chunk < 1"
  | Some _ | None -> ());
  if n = 0 then [||]
  else if pool.capacity = 1 || n = 1 then Array.init n (fun i -> f i xs.(i))
  else begin
    (* slot 0 is computed here both to seed the (possibly unboxed)
       result array and to surface an immediately-raising [f] without
       spawning anything *)
    let y0 = f 0 xs.(0) in
    let out = Array.make n y0 in
    let chunk =
      match chunk with
      | Some c -> c
      | None -> Int.max 1 (n / (4 * pool.capacity))
    in
    let rest = n - 1 in
    let n_chunks = (rest + chunk - 1) / chunk in
    let work c =
      let lo = 1 + (c * chunk) in
      let hi = Int.min n (lo + chunk) in
      for i = lo to hi - 1 do
        out.(i) <- f i xs.(i)
      done
    in
    run_workers ~capacity:pool.capacity ~n_chunks ~work;
    out
  end

let map ?chunk pool f xs = mapi ?chunk pool (fun _ x -> f x) xs

let map_list ?chunk pool f xs =
  Array.to_list (map ?chunk pool f (Array.of_list xs))

let map_reduce ?chunk pool ~map:f ~reduce ~init xs =
  Array.fold_left reduce init (map ?chunk pool f xs)

let both pool fa fb =
  if pool.capacity <= 1 then begin
    let a = fa () in
    let b = fb () in
    (a, b)
  end
  else
    match Domain.spawn fa with
    | exception _ ->
        M.incr m_spawn_fallback;
        let a = fa () in
        let b = fb () in
        (a, b)
    | d -> (
        let b =
          try Ok (fb ())
          with e -> Error (e, Printexc.get_raw_backtrace ())
        in
        (* joining first means fa's exception (if any) takes priority *)
        let a = Domain.join d in
        match b with
        | Ok b -> (a, b)
        | Error (e, bt) -> Printexc.raise_with_backtrace e bt)
