(** Deterministic domain-parallel execution for embarrassingly parallel
    fan-outs (sweep points, Monte-Carlo samples, corners, bench cases).

    A pool is a *capacity*, not a set of live threads: each [map] /
    [map_reduce] / [both] call spawns up to [domains - 1] short-lived
    domains (the calling domain always works too) and joins them before
    returning.  Results are written into a preallocated slot array by
    index, so the output is bit-identical regardless of the domain
    count, the chunk size or the scheduling — parallelism never changes
    a single float.  With [domains = 1], or whenever [Domain.spawn]
    fails (domain limit reached, resource exhaustion), execution falls
    back to plain sequential code with zero dependencies on the
    runtime's multicore state.

    The worker function must be safe to call from multiple domains at
    once: pure, or touching only domain-local state.  Everything in
    this repository's numeric layers qualifies (the engines mutate only
    buffers they allocated themselves). *)

type t

val default_domains : unit -> int
(** The [RLC_JOBS] environment variable when set to a positive integer,
    otherwise [Domain.recommended_domain_count ()]; clamped to
    [\[1, 128\]]. *)

val create : ?domains:int -> unit -> t
(** A pool of the given capacity (default {!default_domains}).
    Raises [Invalid_argument] if [domains < 1]. *)

val sequential : t
(** The capacity-1 pool: every operation runs inline. *)

val domains : t -> int

val map : ?chunk:int -> t -> ('a -> 'b) -> 'a array -> 'b array
(** [map pool f xs] is [Array.map f xs], computed by up to
    [domains pool] domains.  Work is handed out in contiguous chunks of
    [chunk] indices (default [max 1 (n / (4 * domains))]) through an
    atomic cursor; each result lands in slot [i] of the output, so the
    result is independent of scheduling.  If any [f x] raises, one of
    the raised exceptions (the first one observed) is re-raised in the
    caller after all domains have stopped.
    Raises [Invalid_argument] if [chunk < 1]. *)

val mapi : ?chunk:int -> t -> (int -> 'a -> 'b) -> 'a array -> 'b array

val map_list : ?chunk:int -> t -> ('a -> 'b) -> 'a list -> 'b list
(** [map] for lists (converts through an array internally; order
    preserved). *)

val map_reduce :
  ?chunk:int -> t -> map:('a -> 'b) -> reduce:('b -> 'b -> 'b) ->
  init:'b -> 'a array -> 'b
(** Parallel map into slots, then a *sequential* left fold
    [reduce (... (reduce init y0) ...) y_{n-1}] in index order — the
    fold order is fixed, so non-associative float reductions are still
    deterministic. *)

val both : t -> (unit -> 'a) -> (unit -> 'b) -> 'a * 'b
(** Evaluate two independent thunks, the first on a spawned domain when
    the pool has capacity (and spawning succeeds), the second on the
    calling domain; sequentially otherwise.  Exceptions from either
    thunk re-raise in the caller (the first thunk's wins if both
    raise). *)
