open Rlc_numerics
module Netlist = Rlc_circuit.Netlist
module M = Rlc_instr.Metrics

let m_hit = M.counter "serve.cache.hit"
let m_miss = M.counter "serve.cache.miss"
let m_alias = M.counter "serve.cache.alias"
let m_evict = M.counter "serve.cache.evict"

type entry = {
  signature : string;
  asm_plan : Solver.plan;
  mutable dc_sym : Solver.symbolic option;
  mutable ac_sym : Solver.symbolic option;
  mutable tran_plan : Solver.plan option;
}

type slot = { entry : entry; mutable last_use : int }

type t = {
  cap : int;
  table : (string, slot) Hashtbl.t;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable aliases : int;
  mutable evictions : int;
}

let create ?(capacity = 64) () =
  if capacity < 0 then invalid_arg "Deck_cache.create: capacity < 0";
  {
    cap = capacity;
    table = Hashtbl.create (Int.max 16 capacity);
    clock = 0;
    hits = 0;
    misses = 0;
    aliases = 0;
    evictions = 0;
  }

let capacity t = t.cap
let size t = Hashtbl.length t.table

type lookup = Hit of entry | Alias | Miss

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let find_key t (probe : Netlist.structural_key) =
  match Hashtbl.find_opt t.table probe.Netlist.hash with
  | Some slot
    when Netlist.key_reusable
           ~cached:{ probe with Netlist.signature = slot.entry.signature }
           ~probe ->
      slot.last_use <- tick t;
      t.hits <- t.hits + 1;
      M.incr m_hit;
      Hit slot.entry
  | Some _ ->
      t.aliases <- t.aliases + 1;
      M.incr m_alias;
      Alias
  | None ->
      t.misses <- t.misses + 1;
      M.incr m_miss;
      Miss

let find t ~hash ~signature = find_key t { Netlist.hash; signature }

(* Eviction scans for the stalest slot: O(capacity), but only on the
   (rare) insert past capacity of a cache that is small by design. *)
let evict_lru t =
  let victim = ref None in
  Hashtbl.iter
    (fun key slot ->
      match !victim with
      | Some (_, best) when best <= slot.last_use -> ()
      | _ -> victim := Some (key, slot.last_use))
    t.table;
  match !victim with
  | Some (key, _) ->
      Hashtbl.remove t.table key;
      t.evictions <- t.evictions + 1;
      M.incr m_evict
  | None -> ()

let insert t ~hash entry =
  if t.cap > 0 then begin
    Hashtbl.replace t.table hash { entry; last_use = tick t };
    while Hashtbl.length t.table > t.cap do
      evict_lru t
    done
  end

let insert_key t (key : Netlist.structural_key) entry =
  if not (String.equal entry.signature key.Netlist.signature) then
    invalid_arg "Deck_cache.insert_key: entry signature disagrees with key";
  insert t ~hash:key.Netlist.hash entry

type stats = {
  hits : int;
  misses : int;
  aliases : int;
  evictions : int;
  entries : int;
}

let stats (t : t) =
  {
    hits = t.hits;
    misses = t.misses;
    aliases = t.aliases;
    evictions = t.evictions;
    entries = Hashtbl.length t.table;
  }
