(** The line-delimited job protocol of the batch service.

    One job per input line:

    {v
    <id> dc    <node>                             | <deck>
    <id> ac    <node> <pts/decade> <fstart> <fstop> | <deck>
    <id> tran  <node> <dt> <t_end>                | <deck>
    <id> delay <node> <fraction> <dt> <t_end>     | <deck>
    v}

    [<id>] is any whitespace-free token the client uses to correlate
    results.  Numeric fields accept SPICE-suffixed values ("10p",
    "1meg") as well as plain floats.  [<deck>] — everything after the first ["|"] — is either
    [@path] (a netlist file, parsed relative to the working directory)
    or an inline SPICE deck with newlines escaped as [\n] (literal
    backslashes as [\\]).  Empty lines and lines starting with [#] are
    skipped and produce no result.

    One result per job, in submission order:

    {v
    ok  <id> dc v=<v>
    ok  <id> ac n=<points> <freq>:<mag_db>:<phase_deg> ...
    ok  <id> tran final=<v> min=<v> max=<v> steps=<n>
    ok  <id> delay t=<seconds | none>
    err <id> <message>
    v}

    Floats print as [%.17g] — enough digits to round-trip a double
    exactly, which is what lets the bench compare cold and warm result
    streams for bit-identity with [String.equal].  A malformed line
    yields an [err] result (never a crash or a stream abort). *)

type query =
  | Q_dc of { node : string }
  | Q_ac of {
      node : string;
      points_per_decade : int;
      fstart : float;
      fstop : float;
    }
  | Q_tran of { node : string; dt : float; t_end : float }
  | Q_delay of { node : string; fraction : float; dt : float; t_end : float }

type deck_source =
  | Deck_file of string  (** [@path] *)
  | Deck_inline of string  (** unescaped netlist text *)

type job = { id : string; query : query; deck : deck_source }

type parsed =
  | Blank  (** empty or [#] comment line: no result *)
  | Job of job
  | Malformed of { id : string; message : string }
      (** [id] is the line's first token when one exists, ["-"]
          otherwise *)

val parse_job_line : string -> parsed

val escape_deck : string -> string
(** Newlines to [\n], backslashes to [\\] — for writing job files. *)

type outcome =
  | R_dc of float  (** node voltage at the DC operating point *)
  | R_ac of Rlc_circuit.Ac.point array
  | R_tran of { final : float; vmin : float; vmax : float; steps : int }
  | R_delay of float option
      (** threshold-crossing time; [None] if never crossed *)

type result = { id : string; reply : (outcome, string) Stdlib.result }

val result_line : result -> string
(** The wire form (no trailing newline).  Error messages have
    newlines flattened to spaces so every result stays one line. *)
