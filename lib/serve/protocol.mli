(** The line-delimited job protocol of the batch service.

    One job per input line:

    {v
    <id> dc    <node>                             | <deck>
    <id> ac    <node> <pts/decade> <fstart> <fstop> | <deck>
    <id> tran  <node> <dt> <t_end>                | <deck>
    <id> delay <node> <fraction> <dt> <t_end>     | <deck>
    <id> delay-sens <node> <fraction> <name:kind> ... | <deck>
    v}

    [delay-sens] asks for the adjoint sensitivities of the two-pole
    (AWE Padé) [fraction]-crossing delay at [<node>] with respect to
    the listed element parameters, each written [name:kind] with kind
    one of [r], [l], [c], [m] (e.g. [seg3:r]).  The whole gradient is
    computed from one forward + one adjoint factorisation of the
    compiled deck ({!Rlc_circuit.Whatif.gradient}), so the cost does
    not grow with the number of parameters.

    [<id>] is any whitespace-free token the client uses to correlate
    results.  Numeric fields accept SPICE-suffixed values ("10p",
    "1meg") as well as plain floats.  [<deck>] — everything after the first ["|"] — is either
    [@path] (a netlist file, parsed relative to the working directory)
    or an inline SPICE deck with newlines escaped as [\n] (literal
    backslashes as [\\]).  Empty lines and lines starting with [#] are
    skipped and produce no result.

    One result per job, in submission order:

    {v
    ok  <id> dc v=<v>
    ok  <id> ac n=<points> <freq>:<mag_db>:<phase_deg> ...
    ok  <id> tran final=<v> min=<v> max=<v> steps=<n>
    ok  <id> delay t=<seconds | none>
    ok  <id> delay-sens tau=<seconds> <name:kind>=<dtau/dvalue> ...
    err <id> <message>
    v}

    Floats print as [%.17g] — enough digits to round-trip a double
    exactly, which is what lets the bench compare cold and warm result
    streams for bit-identity with [String.equal].  A malformed line
    yields an [err] result (never a crash or a stream abort). *)

type query =
  | Q_dc of { node : string }
  | Q_ac of {
      node : string;
      points_per_decade : int;
      fstart : float;
      fstop : float;
    }
  | Q_tran of { node : string; dt : float; t_end : float }
  | Q_delay of { node : string; fraction : float; dt : float; t_end : float }
  | Q_delay_sens of { node : string; fraction : float; params : string list }
      (** [params] in [name:kind] wire form, validated at execution *)

type deck_source =
  | Deck_file of string  (** [@path] *)
  | Deck_inline of string  (** unescaped netlist text *)

type job = { id : string; query : query; deck : deck_source }

type parsed =
  | Blank  (** empty or [#] comment line: no result *)
  | Job of job
  | Malformed of { id : string; message : string }
      (** [id] is the line's first token when one exists, ["-"]
          otherwise *)

val parse_job_line : string -> parsed

val escape_deck : string -> string
(** Newlines to [\n], backslashes to [\\] — for writing job files. *)

type outcome =
  | R_dc of float  (** node voltage at the DC operating point *)
  | R_ac of Rlc_circuit.Ac.point array
  | R_tran of { final : float; vmin : float; vmax : float; steps : int }
  | R_delay of float option
      (** threshold-crossing time; [None] if never crossed *)
  | R_delay_sens of { tau : float; sens : (string * float) array }
      (** the two-pole delay and d tau / d value per requested
          parameter, in request order *)

type result = { id : string; reply : (outcome, string) Stdlib.result }

val result_line : result -> string
(** The wire form (no trailing newline).  Error messages have
    newlines flattened to spaces so every result stays one line. *)

val annotate_health : string -> note:string -> string
(** [annotate_health line ~note] appends a [# health: <note>] comment
    to a rendered result line.  The service adds one to [err] results
    when journaling is on and the job's provenance id has health
    events — never otherwise, so default result streams stay bitwise
    identical. *)
