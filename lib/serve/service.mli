(** The batch job service: parse {!Protocol} job lines, reuse compiled
    decks through {!Deck_cache}, and execute independent jobs across a
    {!Rlc_parallel.Pool}.

    Each batch runs in three phases:

    + {b prepare} (sequential): parse every line, read and parse its
      deck, probe the cache by structural hash + signature, and — for
      the first job of each structural family and query kind — build
      the shared artifacts (MNA plan, DC / AC sparse symbolic
      analyses, transient companion plan).  All cache mutation happens
      here, on the coordinating domain.
    + {b execute} (parallel): solve each job on the pool, reading the
      immutable cached artifacts.  Every exception is caught and
      becomes that job's [err] result — a bad job never aborts the
      stream.  Results come back slot-indexed, so the output order is
      the input order at any domain count.
    + {b postprocess} (sequential): install refreshed DC symbolics
      (see below), bump counters, and render result lines.

    {b Determinism.}  Because artifacts are created only in the
    sequential prepare phase — always by the first job of a family —
    every execution, including the very first, goes through the same
    refactor-with-cached-symbolic path.  A cold service and a warm one
    therefore produce bit-identical result streams, as do runs at any
    [RLC_JOBS] setting.

    {b Cache poisoning visibility.}  When a value-only variant drifts
    far enough that the replayed pivot sequence goes bad,
    {!Rlc_numerics.Solver.factor_with} silently falls back to a fresh
    analysis (counted on [solver.sparse.repivot]).  The service
    detects the fallback per job — the resulting factor no longer
    shares the cached symbolic — counts it on [serve.cache.resym],
    and installs the fresh symbolic in the entry so later variants
    replay the better-conditioned pivots. *)

type config = {
  pool : Rlc_parallel.Pool.t;  (** execution pool; {!default_config}
      uses {!Rlc_parallel.Pool.sequential} *)
  cache_capacity : int;  (** {!Deck_cache.create} capacity
      (default 64; 0 disables caching) *)
  memo_capacity : int;  (** exact-text memo capacity in decks
      (default 512; 0 disables the memo).  The memo is the second
      cache level: keyed on the deck's exact bytes, it lets a
      byte-identical replay skip parsing, structural hashing and
      matrix stamping entirely, reusing the memoised netlist and
      assembly.  Value-only {e variants} (different bytes, same
      structure) still share artifacts through the structural cache. *)
  batch_size : int;  (** jobs gathered before a parallel flush
      (default 64) *)
}

val default_config : config

type t

val create : ?config:config -> unit -> t
(** Raises [Invalid_argument] when [cache_capacity < 0],
    [memo_capacity < 0] or [batch_size < 1]. *)

val config : t -> config
val cache_stats : t -> Deck_cache.stats

val process_lines : t -> string list -> string list
(** Run the given job lines (batched internally per
    [config.batch_size]) and return one result line per job, in input
    order.  Blank and comment lines produce no result. *)

val run_channel : t -> in_channel -> out_channel -> unit
(** Stream jobs from a channel: gather up to [batch_size] lines,
    process them, write the result lines, flush, repeat until EOF. *)

type summary = {
  jobs : int;  (** jobs executed (blank lines excluded) *)
  errors : int;  (** jobs that produced an [err] result *)
  batches : int;
  resyms : int;  (** repivot fallbacks detected and refreshed *)
  busy_s : float;  (** wall clock inside {!process_lines} *)
  decks_per_s : float;  (** [jobs /. busy_s] *)
  latency_quantiles : (float * float * float) option;
      (** (p50, p90, p99) upper-bound job latency in seconds, from the
          process-wide [serve.job_s] histogram — [None] unless
          {!Rlc_instr.Metrics} recording was enabled while the jobs
          ran *)
  cache : Deck_cache.stats;
}

val summary : t -> summary

val pp_summary : Format.formatter -> t -> unit
(** Multi-line human-readable summary (throughput, cache hit/miss
    counts, latency quantiles when recorded). *)
