type query =
  | Q_dc of { node : string }
  | Q_ac of {
      node : string;
      points_per_decade : int;
      fstart : float;
      fstop : float;
    }
  | Q_tran of { node : string; dt : float; t_end : float }
  | Q_delay of { node : string; fraction : float; dt : float; t_end : float }
  | Q_delay_sens of { node : string; fraction : float; params : string list }

type deck_source = Deck_file of string | Deck_inline of string

type job = { id : string; query : query; deck : deck_source }

type parsed =
  | Blank
  | Job of job
  | Malformed of { id : string; message : string }

let is_space c = c = ' ' || c = '\t' || c = '\r'

let tokens s =
  String.split_on_char ' ' (String.map (fun c -> if is_space c then ' ' else c) s)
  |> List.filter (fun t -> t <> "")

let unescape_deck s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i < n then begin
      (if s.[i] = '\\' && i + 1 < n then begin
         match s.[i + 1] with
         | 'n' ->
             Buffer.add_char b '\n';
             go (i + 2)
         | '\\' ->
             Buffer.add_char b '\\';
             go (i + 2)
         | c ->
             Buffer.add_char b '\\';
             Buffer.add_char b c;
             go (i + 2)
       end
       else begin
         Buffer.add_char b s.[i];
         go (i + 1)
       end)
    end
  in
  go 0;
  Buffer.contents b

let escape_deck s =
  let b = Buffer.create (String.length s + 16) in
  String.iter
    (fun c ->
      match c with
      | '\n' -> Buffer.add_string b "\\n"
      | '\\' -> Buffer.add_string b "\\\\"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* SPICE-suffixed numbers ("10p", "4.4k", "1meg") as well as plain
   floats, matching the deck syntax the jobs carry. *)
let float_of_token ctx t =
  match Rlc_circuit.Parser.parse_value t with
  | v when Float.is_finite v -> v
  | _ | (exception Failure _) -> failwith (Printf.sprintf "bad %s %S" ctx t)

let int_of_token ctx t =
  match int_of_string_opt t with
  | Some v -> v
  | None -> failwith (Printf.sprintf "bad %s %S" ctx t)

let parse_query = function
  | [ "dc"; node ] -> Q_dc { node }
  | [ "ac"; node; ppd; fstart; fstop ] ->
      let points_per_decade = int_of_token "points/decade" ppd in
      let fstart = float_of_token "fstart" fstart in
      let fstop = float_of_token "fstop" fstop in
      if points_per_decade < 1 then failwith "ac needs >= 1 point per decade";
      if fstart <= 0.0 || fstop < fstart then
        failwith "ac needs 0 < fstart <= fstop";
      Q_ac { node; points_per_decade; fstart; fstop }
  | [ "tran"; node; dt; t_end ] ->
      let dt = float_of_token "dt" dt in
      let t_end = float_of_token "t_end" t_end in
      if dt <= 0.0 || t_end <= 0.0 then failwith "tran needs dt > 0, t_end > 0";
      Q_tran { node; dt; t_end }
  | [ "delay"; node; fraction; dt; t_end ] ->
      let fraction = float_of_token "fraction" fraction in
      let dt = float_of_token "dt" dt in
      let t_end = float_of_token "t_end" t_end in
      if not (fraction > 0.0 && fraction < 1.0) then
        failwith "delay needs 0 < fraction < 1";
      if dt <= 0.0 || t_end <= 0.0 then
        failwith "delay needs dt > 0, t_end > 0";
      Q_delay { node; fraction; dt; t_end }
  | "delay-sens" :: node :: fraction :: params ->
      let fraction = float_of_token "fraction" fraction in
      if not (fraction > 0.0 && fraction < 1.0) then
        failwith "delay-sens needs 0 < fraction < 1";
      if params = [] then
        failwith "delay-sens needs at least one param (name:r|l|c|m)";
      Q_delay_sens { node; fraction; params }
  | kind :: _ -> failwith (Printf.sprintf "unknown query kind %S" kind)
  | [] -> failwith "missing query"

let parse_job_line line =
  let trimmed = String.trim line in
  if trimmed = "" || trimmed.[0] = '#' then Blank
  else begin
    let id =
      match tokens trimmed with first :: _ -> first | [] -> "-"
    in
    match String.index_opt trimmed '|' with
    | None -> Malformed { id; message = "missing '|' deck separator" }
    | Some bar -> begin
        let head = String.sub trimmed 0 bar in
        let deck_spec =
          String.trim
            (String.sub trimmed (bar + 1) (String.length trimmed - bar - 1))
        in
        match tokens head with
        | [] -> Malformed { id; message = "missing job id and query" }
        | id :: query_tokens -> begin
            match parse_query query_tokens with
            | exception Failure m -> Malformed { id; message = m }
            | query ->
                if deck_spec = "" then
                  Malformed { id; message = "empty deck" }
                else begin
                  let deck =
                    if deck_spec.[0] = '@' then
                      Deck_file
                        (String.sub deck_spec 1 (String.length deck_spec - 1))
                    else Deck_inline (unescape_deck deck_spec)
                  in
                  Job { id; query; deck }
                end
          end
      end
  end

type outcome =
  | R_dc of float
  | R_ac of Rlc_circuit.Ac.point array
  | R_tran of { final : float; vmin : float; vmax : float; steps : int }
  | R_delay of float option
  | R_delay_sens of { tau : float; sens : (string * float) array }

type result = { id : string; reply : (outcome, string) Stdlib.result }

let g17 = Printf.sprintf "%.17g"

let one_line msg =
  String.map (fun c -> if c = '\n' || c = '\r' then ' ' else c) msg

let annotate_health line ~note = line ^ " # health: " ^ one_line note

let result_line r =
  match r.reply with
  | Error msg -> Printf.sprintf "err %s %s" r.id (one_line msg)
  | Ok (R_dc v) -> Printf.sprintf "ok %s dc v=%s" r.id (g17 v)
  | Ok (R_ac points) ->
      let b = Buffer.create 128 in
      Buffer.add_string b
        (Printf.sprintf "ok %s ac n=%d" r.id (Array.length points));
      Array.iter
        (fun p ->
          Buffer.add_char b ' ';
          Buffer.add_string b (g17 p.Rlc_circuit.Ac.freq);
          Buffer.add_char b ':';
          Buffer.add_string b (g17 p.Rlc_circuit.Ac.mag_db);
          Buffer.add_char b ':';
          Buffer.add_string b (g17 p.Rlc_circuit.Ac.phase_deg))
        points;
      Buffer.contents b
  | Ok (R_tran { final; vmin; vmax; steps }) ->
      Printf.sprintf "ok %s tran final=%s min=%s max=%s steps=%d" r.id
        (g17 final) (g17 vmin) (g17 vmax) steps
  | Ok (R_delay (Some t)) -> Printf.sprintf "ok %s delay t=%s" r.id (g17 t)
  | Ok (R_delay None) -> Printf.sprintf "ok %s delay t=none" r.id
  | Ok (R_delay_sens { tau; sens }) ->
      let b = Buffer.create 128 in
      Buffer.add_string b
        (Printf.sprintf "ok %s delay-sens tau=%s" r.id (g17 tau));
      Array.iter
        (fun (name, v) ->
          Buffer.add_char b ' ';
          Buffer.add_string b name;
          Buffer.add_char b '=';
          Buffer.add_string b (g17 v))
        sens;
      Buffer.contents b
