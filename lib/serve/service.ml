open Rlc_circuit
open Rlc_numerics
module Pool = Rlc_parallel.Pool
module M = Rlc_instr.Metrics
module Timer = Rlc_instr.Timer
module Journal = Rlc_instr.Journal
module Health = Rlc_instr.Health
module Span = Rlc_instr.Span

let m_jobs = M.counter "serve.jobs"
let m_errors = M.counter "serve.errors"
let m_batches = M.counter "serve.batches"
let m_resym = M.counter "serve.cache.resym"
let m_memo_hit = M.counter "serve.memo.hit"
let m_memo_miss = M.counter "serve.memo.miss"
let m_memo_evict = M.counter "serve.memo.evict"
let m_job_s = M.hist "serve.job_s"
let m_prepare_s = M.hist "serve.batch.prepare_s"
let m_dc_s = M.hist "serve.dc_s"
let m_ac_s = M.hist "serve.ac_s"
let m_tran_s = M.hist "serve.tran_s"
let m_delay_s = M.hist "serve.delay_s"
let m_sens_s = M.hist "serve.delay_sens_s"

type config = {
  pool : Pool.t;
  cache_capacity : int;
  memo_capacity : int;
  batch_size : int;
}

let default_config =
  {
    pool = Pool.sequential;
    cache_capacity = 64;
    memo_capacity = 512;
    batch_size = 64;
  }

(* The second cache level: exact deck text (by digest) to its parsed
   netlist, structural keys and stamped assembly.  Where the
   structural cache shares artifacts across value-only *variants*,
   the memo short-circuits byte-identical *replays* — a resubmitted
   deck skips parse, hash and stamping and goes straight to numeric
   work.  Sound because the key is the exact text; all entries are
   created and read on the coordinating domain. *)
module Memo = struct
  type entry = {
    netlist : Netlist.t;
    skey : Netlist.structural_key;
        (* the hash/signature pairing travels as one value; it can no
           longer be recombined across netlists *)
    mutable asm : Assembly.t option;
  }

  type slot = { entry : entry; mutable last_use : int }

  type t = {
    cap : int;
    table : (string, slot) Hashtbl.t;
    mutable clock : int;
  }

  let create cap = { cap; table = Hashtbl.create 64; clock = 0 }

  let tick t =
    t.clock <- t.clock + 1;
    t.clock

  let find t key =
    match Hashtbl.find_opt t.table key with
    | Some slot ->
        slot.last_use <- tick t;
        M.incr m_memo_hit;
        Some slot.entry
    | None ->
        M.incr m_memo_miss;
        None

  let evict_lru t =
    let victim = ref None in
    Hashtbl.iter
      (fun key slot ->
        match !victim with
        | Some (_, best) when best <= slot.last_use -> ()
        | _ -> victim := Some (key, slot.last_use))
      t.table;
    match !victim with
    | Some (key, _) ->
        Hashtbl.remove t.table key;
        M.incr m_memo_evict
    | None -> ()

  let insert t key entry =
    if t.cap > 0 then begin
      Hashtbl.replace t.table key { entry; last_use = tick t };
      while Hashtbl.length t.table > t.cap do
        evict_lru t
      done
    end
end

type t = {
  cfg : config;
  cache : Deck_cache.t;
  memo : Memo.t;
  mutable jobs : int;
  mutable errors : int;
  mutable batches : int;
  mutable resyms : int;
  mutable busy_s : float;
  mutable seq : int;
      (* monotone per-service job counter: provenance ids are
         [<job.id>#<seq>], unique even when clients reuse ids *)
}

let create ?(config = default_config) () =
  if config.batch_size < 1 then
    invalid_arg "Service.create: batch_size < 1";
  if config.memo_capacity < 0 then
    invalid_arg "Service.create: memo_capacity < 0";
  {
    cfg = config;
    cache = Deck_cache.create ~capacity:config.cache_capacity ();
    memo = Memo.create config.memo_capacity;
    jobs = 0;
    errors = 0;
    batches = 0;
    resyms = 0;
    busy_s = 0.0;
    seq = 0;
  }

let config t = t.cfg
let cache_stats t = Deck_cache.stats t.cache

(* ------------------------------------------------------------------ *)
(* phase A: prepare (sequential)                                       *)
(* ------------------------------------------------------------------ *)

(* A line ready for the pool: either a result decided during prepare
   (malformed line, unreadable deck, parse error) or a runnable job.
   [entry] is [None] on the alias path — a hash collision must not
   touch the cached artifacts.  [asm] is the memoised stamped assembly
   (prepare always materialises it); the worker-side rebuild in
   [the_assembly] is a defensive fallback only. *)
type exec =
  | E_done of Protocol.result
  | E_run of {
      job : Protocol.job;
      prov : string;  (** provenance id stamped on journal events *)
      netlist : Netlist.t;
      entry : Deck_cache.entry option;
      asm : Assembly.t option;
    }

let deck_text = function
  | Protocol.Deck_inline text -> text
  | Protocol.Deck_file path ->
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))

let sparse_plan (p : Solver.plan) = p.Solver.choice = Solver.Sparse_lu

(* Parse (or recall) a deck.  The memo is keyed on the exact bytes, so
   a byte-identical replay skips the parse and the structural hash. *)
let memo_deck t text =
  let key = Digest.string text in
  match Memo.find t.memo key with
  | Some m -> m
  | None ->
      let netlist = (Parser.parse_string text).Parser.netlist in
      let m =
        { Memo.netlist; skey = Netlist.structural_key netlist; asm = None }
      in
      Memo.insert t.memo key m;
      m

(* The deck's stamped assembly, materialised at most once per exact
   text: under the family plan when the structural cache already knows
   the pattern, with full validation on first sight of a family. *)
let memo_assembly (m : Memo.entry) plan_hint =
  match m.Memo.asm with
  | Some a -> a
  | None ->
      let a =
        match plan_hint with
        | Some plan -> Assembly.of_netlist ~plan ~validate:false m.Memo.netlist
        | None -> Assembly.of_netlist m.Memo.netlist
      in
      m.Memo.asm <- Some a;
      a

(* Build the artifacts [query] needs that [e] still lacks — runs at
   most once per (family, query kind), sequentially, so the entry
   mutation is domain-safe.  Failures (singular deck, empty circuit)
   are swallowed: execution hits the same condition on the same values
   and reports it per job, keeping cold and warm passes identical. *)
let ensure_artifacts e netlist query asm =
  try
    match query with
    | Protocol.Q_dc _ | Protocol.Q_delay_sens _ ->
        if e.Deck_cache.dc_sym = None && sparse_plan e.Deck_cache.asm_plan
        then e.Deck_cache.dc_sym <- Solver.symbolic_of (Assembly.factor_g asm)
    | Protocol.Q_ac { fstart; _ } ->
        if e.Deck_cache.ac_sym = None && sparse_plan e.Deck_cache.asm_plan
        then
          e.Deck_cache.ac_sym <-
            Assembly.cengine_symbolic
              (Assembly.cengine asm ~s_ref:(Ac.s_of_freq fstart))
    | Protocol.Q_tran _ | Protocol.Q_delay _ ->
        if e.Deck_cache.tran_plan = None then
          e.Deck_cache.tran_plan <- Some (Transient.structure_plan netlist)
  with _ -> ()

let kind_name = function
  | Protocol.Q_dc _ -> "dc"
  | Protocol.Q_ac _ -> "ac"
  | Protocol.Q_tran _ -> "tran"
  | Protocol.Q_delay _ -> "delay"
  | Protocol.Q_delay_sens _ -> "delay-sens"

(* A prepare-time rejection never runs, so its journal trace is the
   single terminal event. *)
let journal_rejected job =
  if Journal.capturing () then
    Journal.record "job.end"
      [
        ("kind", Journal.Str (kind_name job.Protocol.query));
        ("status", Journal.Str "rejected");
      ]

let prepare t line =
  match Protocol.parse_job_line line with
  | Protocol.Blank -> None
  | Protocol.Malformed { id; message } ->
      Some (E_done { Protocol.id; reply = Error ("bad job line: " ^ message) })
  | Protocol.Job job ->
      t.seq <- t.seq + 1;
      let prov = Printf.sprintf "%s#%d" job.Protocol.id t.seq in
      let journal_cache what =
        if Journal.capturing () then Journal.record ("cache." ^ what) []
      in
      let exec =
        Journal.with_provenance prov (fun () ->
            try
              let m = memo_deck t (deck_text job.Protocol.deck) in
              let netlist = m.Memo.netlist in
              match Deck_cache.find_key t.cache m.Memo.skey with
              | Deck_cache.Alias ->
                  journal_cache "alias";
                  E_run
                    {
                      job;
                      prov;
                      netlist;
                      entry = None;
                      asm = Some (memo_assembly m None);
                    }
              | Deck_cache.Hit e ->
                  journal_cache "hit";
                  let asm = memo_assembly m (Some e.Deck_cache.asm_plan) in
                  ensure_artifacts e netlist job.Protocol.query asm;
                  E_run { job; prov; netlist; entry = Some e; asm = Some asm }
              | Deck_cache.Miss ->
                  journal_cache "miss";
                  let asm = memo_assembly m None in
                  let e =
                    {
                      Deck_cache.signature = m.Memo.skey.Netlist.signature;
                      asm_plan = asm.Assembly.plan;
                      dc_sym = None;
                      ac_sym = None;
                      tran_plan = None;
                    }
                  in
                  Deck_cache.insert_key t.cache m.Memo.skey e;
                  ensure_artifacts e netlist job.Protocol.query asm;
                  E_run { job; prov; netlist; entry = Some e; asm = Some asm }
            with
            | Parser.Parse_error (ln, msg) ->
                journal_rejected job;
                E_done
                  {
                    Protocol.id = job.Protocol.id;
                    reply = Error (Printf.sprintf "deck line %d: %s" ln msg);
                  }
            | Sys_error msg | Invalid_argument msg | Failure msg ->
                journal_rejected job;
                E_done { Protocol.id = job.Protocol.id; reply = Error msg })
      in
      Some exec

(* ------------------------------------------------------------------ *)
(* phase B: execute (parallel, read-only on cache entries)             *)
(* ------------------------------------------------------------------ *)

let resolve_node netlist name =
  let key = String.lowercase_ascii name in
  if key = "0" || key = "gnd" then Netlist.ground
  else
    match Netlist.find_node netlist key with
    | Some n -> n
    | None -> failwith (Printf.sprintf "unknown node %S" name)

let waveform_summary w =
  let values = Rlc_waveform.Waveform.values w in
  let n = Array.length values in
  if n = 0 then failwith "empty waveform";
  let vmin = ref values.(0) and vmax = ref values.(0) in
  Array.iter
    (fun v ->
      if v < !vmin then vmin := v;
      if v > !vmax then vmax := v)
    values;
  (values.(n - 1), !vmin, !vmax)

let the_assembly prep =
  match prep with
  | E_done _ -> assert false
  | E_run { asm = Some a; _ } -> a
  | E_run { asm = None; netlist; entry; _ } -> (
      match entry with
      | Some e ->
          Assembly.of_netlist ~plan:e.Deck_cache.asm_plan ~validate:false
            netlist
      | None -> Assembly.of_netlist netlist)

let simulate_probe prep netlist node ~dt ~t_end =
  let plan_hint =
    match prep with
    | E_run { entry = Some e; _ } -> e.Deck_cache.tran_plan
    | _ -> None
  in
  let config = { Transient.Config.default with plan_hint } in
  let probe = Transient.Node_v node in
  let res = Transient.simulate ~config netlist ~t_end ~dt ~probes:[ probe ] in
  (Transient.get res probe, Transient.steps_taken res)

(* Runs on a pool worker.  Returns the job's outcome plus, for DC, the
   fresh symbolic when the cached one was abandoned by the repivot
   fallback (the factor no longer shares it physically) — the
   coordinator installs it in phase C. *)
let run_query prep (job : Protocol.job) netlist =
  let entry = match prep with E_run { entry; _ } -> entry | _ -> None in
  match job.Protocol.query with
  | Protocol.Q_dc { node } ->
      let n = resolve_node netlist node in
      let symbolic = Option.bind entry (fun e -> e.Deck_cache.dc_sym) in
      let sys = Dc.make ~assembly:(the_assembly prep) ?symbolic netlist in
      let refresh =
        match (symbolic, Dc.g_symbolic sys) with
        | Some cached, (Some fresh as r) when not (cached == fresh) -> r
        | _ -> None
      in
      (Protocol.R_dc (Dc.voltages sys).(n), refresh)
  | Protocol.Q_ac { node; points_per_decade; fstart; fstop } ->
      let n = resolve_node netlist node in
      if n = Netlist.ground then failwith "cannot ac-probe ground";
      let asm = the_assembly prep in
      if Array.length asm.Assembly.inputs = 0 then
        failwith "deck has no independent source";
      let symbolic = Option.bind entry (fun e -> e.Deck_cache.ac_sym) in
      let freqs = Ac.decade_grid ~points_per_decade ~fstart ~fstop in
      let ce = Assembly.cengine ?symbolic asm ~s_ref:(Ac.s_of_freq fstart) in
      let scratch = Assembly.cengine_scratch ce in
      let rhs = Array.map Cx.of_float (Assembly.b_column asm 0) in
      let x = Array.make asm.Assembly.size Cx.zero in
      let points =
        Array.map
          (fun freq ->
            Assembly.cengine_solve_into ce scratch ~s:(Ac.s_of_freq freq)
              ~rhs ~x;
            Ac.point_of ~freq x.(n - 1))
          freqs
      in
      (Protocol.R_ac points, None)
  | Protocol.Q_tran { node; dt; t_end } ->
      let n = resolve_node netlist node in
      let w, steps = simulate_probe prep netlist n ~dt ~t_end in
      let final, vmin, vmax = waveform_summary w in
      (Protocol.R_tran { final; vmin; vmax; steps }, None)
  | Protocol.Q_delay { node; fraction; dt; t_end } ->
      let n = resolve_node netlist node in
      let w, _ = simulate_probe prep netlist n ~dt ~t_end in
      let v_final, _, _ = waveform_summary w in
      ( Protocol.R_delay
          (Rlc_waveform.Measure.threshold_delay w ~fraction ~v_final),
        None )
  | Protocol.Q_delay_sens { node; fraction; params } ->
      let n = resolve_node netlist node in
      if n = Netlist.ground then
        failwith "cannot take delay sensitivities at ground";
      let ws = Whatif.compile ~f:fraction netlist in
      let parse_param tok =
        let bad () =
          failwith (Printf.sprintf "bad param %S (want name:r|l|c|m)" tok)
        in
        match String.rindex_opt tok ':' with
        | None -> bad ()
        | Some i ->
            let name = String.sub tok 0 i in
            let kind =
              match
                String.lowercase_ascii
                  (String.sub tok (i + 1) (String.length tok - i - 1))
              with
              | "r" -> `R
              | "l" -> `L
              | "c" -> `C
              | "m" -> `M
              | _ -> bad ()
            in
            if name = "" then bad ();
            Whatif.param ws name kind
      in
      let wrt = Array.of_list (List.map parse_param params) in
      let target = Whatif.Delay n in
      let tau = Whatif.evaluate ws target in
      let g = Whatif.gradient ws target ~wrt in
      let sens =
        Array.map2 (fun tok v -> (tok, v)) (Array.of_list params) g
      in
      (Protocol.R_delay_sens { tau; sens }, None)

let latency_hist = function
  | Protocol.Q_dc _ -> m_dc_s
  | Protocol.Q_ac _ -> m_ac_s
  | Protocol.Q_tran _ -> m_tran_s
  | Protocol.Q_delay _ -> m_delay_s
  | Protocol.Q_delay_sens _ -> m_sens_s

let execute prep =
  match prep with
  | E_done r -> (r, None)
  | E_run { job; prov; netlist; _ } -> (
      let capturing = Journal.capturing () in
      let kind = kind_name job.Protocol.query in
      if capturing then begin
        (* runs on a pool worker: stamps the worker's own shard, so
           every numerics probe fired by this job inherits the id *)
        Journal.set_provenance prov;
        Journal.record "job.start" [ ("kind", Journal.Str kind) ]
      end;
      let clock = Timer.start () in
      let finish ~status reply =
        let dt = Timer.elapsed_s clock in
        M.observe m_job_s dt;
        M.observe (latency_hist job.Protocol.query) dt;
        if capturing then begin
          Journal.record "job.end"
            [
              ("kind", Journal.Str kind);
              ("status", Journal.Str status);
              ("s", Journal.Num dt);
            ];
          Journal.set_provenance ""
        end;
        reply
      in
      match Span.with_ "serve.job" (fun () -> run_query prep job netlist) with
      | outcome, refresh ->
          finish ~status:"ok"
            ({ Protocol.id = job.Protocol.id; reply = Ok outcome }, refresh)
      | exception e ->
          let msg =
            match e with
            | Failure m | Invalid_argument m | Sys_error m -> m
            | e -> Printexc.to_string e
          in
          finish ~status:"error"
            ({ Protocol.id = job.Protocol.id; reply = Error msg }, None))

(* ------------------------------------------------------------------ *)
(* phase C: postprocess (sequential) and the batch driver              *)
(* ------------------------------------------------------------------ *)

(* The [# health:] note for one err result: the worst health
   classification journaled under the job's provenance id.  Only
   consulted for errors while capturing, so the [Journal.events] merge
   stays off every hot path. *)
let health_note prep =
  match prep with
  | E_done _ -> None
  | E_run { prov; _ } -> (
      match Health.worst_for (Journal.events ()) ~provenance:prov with
      | Some (c, reason) ->
          Some (Printf.sprintf "%s (%s)" (Health.to_string c) reason)
      | None -> None)

let run_batch t lines =
  let clock = Timer.start () in
  let preps =
    M.timed m_prepare_s (fun () ->
        Array.of_list (List.filter_map (prepare t) lines))
  in
  let out = Pool.map t.cfg.pool execute preps in
  let capturing = Journal.capturing () in
  let rendered =
    Array.mapi
      (fun i (result, refresh) ->
        (match (refresh, preps.(i)) with
        | Some _, E_run { entry = Some e; prov; _ } ->
            e.Deck_cache.dc_sym <- refresh;
            t.resyms <- t.resyms + 1;
            M.incr m_resym;
            if capturing then
              Journal.with_provenance prov (fun () ->
                  Journal.record "cache.resym" [])
        | _ -> ());
        (match result.Protocol.reply with
        | Error _ ->
            t.errors <- t.errors + 1;
            M.incr m_errors
        | Ok _ -> ());
        let line = Protocol.result_line result in
        match result.Protocol.reply with
        | Error _ when capturing -> (
            match health_note preps.(i) with
            | Some note -> Protocol.annotate_health line ~note
            | None -> line)
        | _ -> line)
      out
  in
  t.jobs <- t.jobs + Array.length preps;
  M.add m_jobs (float_of_int (Array.length preps));
  t.batches <- t.batches + 1;
  M.incr m_batches;
  t.busy_s <- t.busy_s +. Timer.elapsed_s clock;
  Array.to_list rendered

let rec take_batch n = function
  | rest when n = 0 -> ([], rest)
  | [] -> ([], [])
  | line :: rest ->
      let batch, remainder = take_batch (n - 1) rest in
      (line :: batch, remainder)

let rec process_lines t lines =
  match take_batch t.cfg.batch_size lines with
  | [], _ -> []
  | batch, rest -> run_batch t batch @ process_lines t rest

let run_channel t ic oc =
  let pending = ref [] and count = ref 0 in
  let flush_batch () =
    if !count > 0 then begin
      let lines = List.rev !pending in
      pending := [];
      count := 0;
      List.iter
        (fun l ->
          output_string oc l;
          output_char oc '\n')
        (process_lines t lines);
      flush oc
    end
  in
  (try
     while true do
       pending := input_line ic :: !pending;
       incr count;
       if !count >= t.cfg.batch_size then flush_batch ()
     done
   with End_of_file -> ());
  flush_batch ()

(* ------------------------------------------------------------------ *)
(* summary                                                             *)
(* ------------------------------------------------------------------ *)

type summary = {
  jobs : int;
  errors : int;
  batches : int;
  resyms : int;
  busy_s : float;
  decks_per_s : float;
  latency_quantiles : (float * float * float) option;
  cache : Deck_cache.stats;
}

let summary (t : t) =
  let latency_quantiles =
    match M.hist_quantiles m_job_s [| 0.5; 0.9; 0.99 |] with
    | Some [| p50; p90; p99 |] -> Some (p50, p90, p99)
    | Some _ | None -> None
  in
  {
    jobs = t.jobs;
    errors = t.errors;
    batches = t.batches;
    resyms = t.resyms;
    busy_s = t.busy_s;
    decks_per_s = (if t.busy_s > 0.0 then float_of_int t.jobs /. t.busy_s
                   else 0.0);
    latency_quantiles;
    cache = Deck_cache.stats t.cache;
  }

let pp_summary fmt t =
  let s = summary t in
  Format.fprintf fmt "serve: %d jobs in %.3f s (%.1f decks/s), %d errors, %d batches@."
    s.jobs s.busy_s s.decks_per_s s.errors s.batches;
  Format.fprintf fmt
    "cache: %d hits / %d misses / %d aliases / %d evictions (%d entries), %d symbolic refreshes@."
    s.cache.Deck_cache.hits s.cache.Deck_cache.misses s.cache.Deck_cache.aliases
    s.cache.Deck_cache.evictions s.cache.Deck_cache.entries s.resyms;
  match s.latency_quantiles with
  | Some (p50, p90, p99) ->
      Format.fprintf fmt
        "latency: p50 <= %.3g s, p90 <= %.3g s, p99 <= %.3g s@." p50 p90 p99
  | None -> ()
