(** Bounded LRU cache of compiled decks, keyed by
    {!Rlc_circuit.Netlist.structural_hash}.

    An entry holds everything about a deck that depends only on its
    {e structure} — the {!Rlc_numerics.Solver.plan} of the MNA
    assembly, the sparse symbolic analyses of the DC factorisation and
    the AC sweep engine, and the transient companion-system plan — so
    a value-only variant of a cached deck skips validation, ordering
    and symbolic analysis and goes straight to numeric refactor.

    Because the order-independent hash is coarser than what artifact
    reuse requires, each entry also records the deck's exact
    {!Rlc_circuit.Netlist.structural_signature}; a probe whose hash
    matches but whose signature differs is an {e alias} (e.g. the same
    cards permuted, numbering the nodes differently) and is reported
    as such, never served stale artifacts.

    Not domain-safe: the serving layer does all cache operations on
    the coordinating domain, between parallel batches; workers only
    read the immutable artifacts handed to them. *)

open Rlc_numerics

type entry = {
  signature : string;
  asm_plan : Solver.plan;  (** the {!Rlc_circuit.Assembly} plan *)
  mutable dc_sym : Solver.symbolic option;
  mutable ac_sym : Solver.symbolic option;
  mutable tran_plan : Solver.plan option;
      (** the transient companion-system plan — a different structure
          than [asm_plan] (no inductor branch rows, symmetric vsource
          rows), see {!Rlc_circuit.Transient.structure_plan} *)
}

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 64.  Capacity 0 disables caching (every lookup
    misses, inserts are dropped); raises [Invalid_argument] below 0. *)

val capacity : t -> int
val size : t -> int

type lookup =
  | Hit of entry
  | Alias  (** hash present, signature different: recompile *)
  | Miss

val find_key : t -> Rlc_circuit.Netlist.structural_key -> lookup
(** Looks a deck up by its {!Rlc_circuit.Netlist.structural_key}; the
    alias decision goes through the one shared
    {!Rlc_circuit.Netlist.key_reusable} predicate (the same pairing
    {!Rlc_circuit.Whatif} keys its workspaces by), so the two caches
    can never diverge on what counts as "the same deck".  Counts the
    outcome ([serve.cache.hit] / [.alias] / [.miss]) and refreshes the
    entry's LRU position on a hit. *)

val insert_key : t -> Rlc_circuit.Netlist.structural_key -> entry -> unit
(** {!insert} keyed by a structural key.  Raises [Invalid_argument]
    when [entry.signature] disagrees with the key's signature — the
    mismatch that used to be possible when callers threaded hash and
    signature separately. *)

val find : t -> hash:string -> signature:string -> lookup
(** {!find_key} over a key assembled from loose parts.

    @deprecated carries the hash/signature pairing in two separate
    arguments, which is exactly how a hash from one netlist ends up
    paired with a signature from another.  Use {!find_key} with
    {!Rlc_circuit.Netlist.structural_key}. *)

val insert : t -> hash:string -> entry -> unit
(** Inserts (or replaces — the alias path refreshing a poisoned
    family) and evicts the least-recently-used entry beyond capacity,
    counting [serve.cache.evict].

    @deprecated same loose-pairing hazard as {!find}; use
    {!insert_key}. *)

type stats = {
  hits : int;
  misses : int;
  aliases : int;
  evictions : int;
  entries : int;
}

val stats : t -> stats
(** Plain-int mirror of the counters, independent of whether
    {!Rlc_instr.Metrics} recording is enabled. *)
