type inverter = {
  r_on : float;
  c_in : float;
  c_out : float;
  vdd : float;
  vth : float;
  t_transition : float;
}

let inverter ~r_on ~c_in ~c_out ~vdd ?vth ?(t_transition = 0.0) () =
  let vth = match vth with Some v -> v | None -> vdd /. 2.0 in
  if r_on <= 0.0 then invalid_arg "Devices.inverter: r_on <= 0";
  if c_in <= 0.0 || c_out <= 0.0 then
    invalid_arg "Devices.inverter: capacitance <= 0";
  if vdd <= 0.0 then invalid_arg "Devices.inverter: vdd <= 0";
  if vth <= 0.0 || vth >= vdd then
    invalid_arg "Devices.inverter: vth outside (0, vdd)";
  if t_transition < 0.0 then invalid_arg "Devices.inverter: t_transition < 0";
  { r_on; c_in; c_out; vdd; vth; t_transition }

let inverter_of_driver driver ~k ~vdd ?vth ?t_transition () =
  let t_transition =
    match t_transition with
    | Some t -> t
    | None -> Rlc_tech.Driver.intrinsic_delay driver
  in
  inverter
    ~r_on:(Rlc_tech.Driver.scaled_rs driver ~k)
    ~c_in:(Rlc_tech.Driver.scaled_c0 driver ~k)
    ~c_out:(Rlc_tech.Driver.scaled_cp driver ~k)
    ~vdd ?vth ~t_transition ()

let drives_high inv ~v_in = v_in < inv.vth
let output_drive inv ~v_in = if drives_high inv ~v_in then inv.vdd else 0.0
