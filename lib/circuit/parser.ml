exception Parse_error of int * string

type ac_spec = { points_per_decade : int; fstart : float; fstop : float }

type deck = {
  netlist : Netlist.t;
  tran : (float * float) option;
  ac : ac_spec option;
  probes : Transient.probe list;
  title : string option;
}

(* ---------------- lexical helpers ---------------- *)

let lowercase = String.lowercase_ascii

let is_digitish c = (c >= '0' && c <= '9') || c = '.' || c = '+' || c = '-'

let parse_value s =
  let s = String.trim s in
  if s = "" then failwith "empty value";
  (* split numeric prefix / alphabetic suffix *)
  let n = String.length s in
  let rec numeric_end i saw_e =
    if i >= n then i
    else begin
      let c = s.[i] in
      if is_digitish c then numeric_end (i + 1) saw_e
      else if (c = 'e' || c = 'E') && not saw_e && i + 1 < n
              && (is_digitish s.[i + 1])
      then numeric_end (i + 1) true
      else i
    end
  in
  let split = numeric_end 0 false in
  if split = 0 then failwith ("malformed number: " ^ s);
  let base =
    match float_of_string_opt (String.sub s 0 split) with
    | Some v -> v
    | None -> failwith ("malformed number: " ^ s)
  in
  let suffix = lowercase (String.sub s split (n - split)) in
  let scale =
    if suffix = "" then 1.0
    else if String.length suffix >= 3 && String.sub suffix 0 3 = "meg" then 1e6
    else
      match suffix.[0] with
      | 'f' -> 1e-15
      | 'p' -> 1e-12
      | 'n' -> 1e-9
      | 'u' -> 1e-6
      | 'm' -> 1e-3
      | 'k' -> 1e3
      | 'g' -> 1e9
      | 't' -> 1e12
      (* bare unit letters: volts, amps, seconds, ohms, farads, henries *)
      | 'v' | 'a' | 's' | 'o' | 'h' -> 1.0
      | _ -> failwith ("unknown suffix: " ^ suffix)
  in
  base *. scale

let tokens_of_line line =
  (* strip comment tail: "$" or ";" *)
  let line =
    match String.index_opt line '$' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let line =
    match String.index_opt line ';' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  (* normalize parens/commas to spaces but keep "k=v" forms intact *)
  let buf = Bytes.of_string line in
  Bytes.iteri
    (fun i c -> if c = '(' || c = ')' || c = ',' then Bytes.set buf i ' ')
    buf;
  String.split_on_char ' ' (Bytes.to_string buf)
  |> List.filter (fun t -> t <> "")

(* key=value parameters *)
let keyed_params tokens =
  List.filter_map
    (fun t ->
      match String.index_opt t '=' with
      | Some i ->
          Some
            ( lowercase (String.sub t 0 i),
              String.sub t (i + 1) (String.length t - i - 1) )
      | None -> None)
    tokens

let positional tokens =
  List.filter (fun t -> not (String.contains t '=')) tokens

(* ---------------- deck building ---------------- *)

type builder = {
  nl : Netlist.t;
  names : (string, Netlist.node) Hashtbl.t;
  mutable b_tran : (float * float) option;
  mutable b_ac : ac_spec option;
  mutable b_probes : Transient.probe list;
  mutable probe_names : (string * [ `V | `I ]) list; (* resolved later *)
}

let node_id b name =
  let key = lowercase name in
  if key = "0" || key = "gnd" then Netlist.ground
  else
    match Hashtbl.find_opt b.names key with
    | Some n -> n
    | None ->
        (* registering the name on the netlist too makes parsed decks
           order-independently hashable (Netlist.structural_hash
           labels nodes by name) and Netlist.find_node usable *)
        let n = Netlist.fresh_node ~name:key b.nl in
        Hashtbl.add b.names key n;
        n

let fail lineno fmt = Printf.ksprintf (fun m -> raise (Parse_error (lineno, m))) fmt

let value_or_fail lineno s =
  try parse_value s with Failure m -> fail lineno "%s" m

let require_params lineno params keys =
  List.map
    (fun k ->
      match List.assoc_opt k params with
      | Some v -> value_or_fail lineno v
      | None -> fail lineno "missing parameter %s=" k)
    keys

let parse_source b lineno name tokens =
  match tokens with
  | np :: nm :: kind :: rest ->
      let a = node_id b np and bb = node_id b nm in
      let stim =
        match lowercase kind with
        | "dc" -> begin
            match rest with
            | [ v ] -> Stimulus.Dc (value_or_fail lineno v)
            | _ -> fail lineno "DC takes one value"
          end
        | "pulse" -> begin
            match List.map (value_or_fail lineno) rest with
            | [ v0; v1; td; tr; tf; pw; per ] ->
                Stimulus.Pulse
                  {
                    v0;
                    v1;
                    t_delay = td;
                    t_rise = tr;
                    t_fall = tf;
                    t_high = pw;
                    period = per;
                  }
            | _ -> fail lineno "PULSE takes 7 values"
          end
        | "pwl" -> begin
            let vals = List.map (value_or_fail lineno) rest in
            let rec pair = function
              | [] -> []
              | t :: v :: rest -> (t, v) :: pair rest
              | [ _ ] -> fail lineno "PWL needs an even number of values"
            in
            Stimulus.Pwl (pair vals)
          end
        | k -> fail lineno "unknown source kind %s" k
      in
      (a, bb, stim, name)
  | _ -> fail lineno "source needs nodes and a waveform"

let dispatch b lineno line =
  let tokens = tokens_of_line line in
  match tokens with
  | [] -> ()
  | first :: rest -> begin
      let name = first in
      match Char.lowercase_ascii first.[0] with
      | '*' -> ()
      | '.' -> begin
          match lowercase first with
          | ".end" -> ()
          | ".tran" -> begin
              match rest with
              | [ dt; t_end ] ->
                  b.b_tran <-
                    Some (value_or_fail lineno dt, value_or_fail lineno t_end)
              | _ -> fail lineno ".tran takes dt and t_end"
            end
          | ".ac" -> begin
              match rest with
              | [ kind; n; fstart; fstop ] when lowercase kind = "dec" ->
                  let points_per_decade =
                    int_of_float (value_or_fail lineno n)
                  in
                  let fstart = value_or_fail lineno fstart in
                  let fstop = value_or_fail lineno fstop in
                  if points_per_decade < 1 then
                    fail lineno ".ac dec needs at least 1 point per decade";
                  if fstart <= 0.0 || fstop < fstart then
                    fail lineno ".ac dec needs 0 < fstart <= fstop";
                  b.b_ac <- Some { points_per_decade; fstart; fstop }
              | _ -> fail lineno ".ac takes: dec n fstart fstop"
            end
          | ".probe" ->
              (* parens were split into spaces: "v(out)" -> "v" "out" *)
              let rec walk = function
                | [] -> ()
                | kind :: target :: more when lowercase kind = "v" ->
                    b.probe_names <- (target, `V) :: b.probe_names;
                    walk more
                | kind :: target :: more when lowercase kind = "i" ->
                    b.probe_names <- (target, `I) :: b.probe_names;
                    walk more
                | t :: _ -> fail lineno "probe must be v(node) or i(elem), got %s" t
              in
              walk rest
          | d -> fail lineno "unknown directive %s" d
        end
      | 'r' -> begin
          match positional rest with
          | [ n1; n2; v ] ->
              Netlist.add_resistor ~name b.nl (node_id b n1) (node_id b n2)
                (value_or_fail lineno v)
          | _ -> fail lineno "R takes: n1 n2 value"
        end
      | 'c' -> begin
          match positional rest with
          | [ n1; n2; v ] ->
              Netlist.add_capacitor ~name b.nl (node_id b n1) (node_id b n2)
                (value_or_fail lineno v)
          | _ -> fail lineno "C takes: n1 n2 value"
        end
      | 'l' -> begin
          match positional rest with
          | [ n1; n2; v ] ->
              Netlist.add_inductor ~name b.nl (node_id b n1) (node_id b n2)
                (value_or_fail lineno v)
          | _ -> fail lineno "L takes: n1 n2 value"
        end
      | 'b' -> begin
          (* series R-L branch (one lumped line segment) *)
          match positional rest with
          | [ n1; n2 ] -> begin
              match require_params lineno (keyed_params rest) [ "r"; "l" ] with
              | [ r; l ] ->
                  Netlist.add_rl_branch ~name b.nl (node_id b n1)
                    (node_id b n2) ~ohms:r ~henries:l
              | _ -> assert false
            end
          | _ -> fail lineno "B takes: n1 n2 r= l="
        end
      | 'w' -> begin
          match positional rest with
          | [ n1; n2 ] ->
              let params = keyed_params rest in
              let seg =
                match List.assoc_opt "seg" params with
                | Some v -> int_of_float (value_or_fail lineno v)
                | None -> 10
              in
              (match require_params lineno params [ "r"; "l"; "c"; "len" ] with
              | [ r; l; c; len ] ->
                  Ladder.make ~name_prefix:name b.nl
                    { Ladder.r; l; c; length = len; segments = seg }
                    ~from_node:(node_id b n1) ~to_node:(node_id b n2)
              | _ -> assert false)
          | _ -> fail lineno "W takes: n1 n2 r= l= c= len= [seg=]"
        end
      | 'p' -> begin
          match positional rest with
          | [ a1; b1; a2; b2 ] -> begin
              match require_params lineno (keyed_params rest) [ "r"; "l"; "m" ]
              with
              | [ r; l; m ] ->
                  Netlist.add_coupled_rl ~name b.nl ~a1:(node_id b a1)
                    ~b1:(node_id b b1) ~a2:(node_id b a2) ~b2:(node_id b b2)
                    ~ohms:r ~henries:l ~mutual:m
              | _ -> assert false
            end
          | _ -> fail lineno "P takes: a1 b1 a2 b2 r= l= m="
        end
      | 'v' | 'i' -> begin
          let a, bb, stim, nm = parse_source b lineno name (positional rest) in
          if Char.lowercase_ascii first.[0] = 'v' then
            Netlist.add_vsource ~name:nm b.nl a bb stim
          else Netlist.add_isource ~name:nm b.nl a bb stim
        end
      | 'x' -> begin
          match positional rest with
          | [ input; output; kind ] when lowercase kind = "inv" -> begin
              let params = keyed_params rest in
              match
                require_params lineno params [ "r_on"; "c_in"; "c_out"; "vdd" ]
              with
              | [ r_on; c_in; c_out; vdd ] ->
                  let vth =
                    Option.map (value_or_fail lineno)
                      (List.assoc_opt "vth" params)
                  in
                  let t_transition =
                    Option.map (value_or_fail lineno)
                      (List.assoc_opt "ttr" params)
                  in
                  let dev =
                    Devices.inverter ~r_on ~c_in ~c_out ~vdd ?vth ?t_transition
                      ()
                  in
                  Netlist.add_inverter ~name b.nl ~input:(node_id b input)
                    ~output:(node_id b output) dev
              | _ -> assert false
            end
          | _ -> fail lineno "X takes: in out INV r_on= c_in= c_out= vdd="
        end
      | c -> fail lineno "unknown card type '%c'" c
    end

(* node lookup after parsing needs the name table; stash it in a side
   table keyed by the deck's netlist *)
let side_tables : (Netlist.t, (string, Netlist.node) Hashtbl.t) Hashtbl.t =
  Hashtbl.create 4

let parse_string text =
  let lines = String.split_on_char '\n' text in
  let b =
    {
      nl = Netlist.create ();
      names = Hashtbl.create 16;
      b_tran = None;
      b_ac = None;
      b_probes = [];
      probe_names = [];
    }
  in
  let title, body, offset =
    match lines with
    | first :: rest ->
        let t = String.trim first in
        if t = "" then (None, rest, 1)
        else begin
          let c = Char.lowercase_ascii t.[0] in
          let toks = tokens_of_line t in
          (* a card's trailing token is a value or key=value; a title
             like "rc lowpass demo" is not *)
          let last_is_valueish =
            match List.rev toks with
            | last :: _ -> (
                String.contains last '='
                || match parse_value last with _ -> true
                   | exception Failure _ -> false)
            | [] -> false
          in
          let cardlike =
            c = '*' || c = '.'
            || (String.contains "rclwpvixb" c
               && List.length toks >= 3 && last_is_valueish)
          in
          if cardlike then (None, lines, 0) else (Some t, rest, 1)
        end
    | [] -> (None, [], 0)
  in
  ignore title;
  List.iteri
    (fun i line ->
      let line = String.trim line in
      if line <> "" then dispatch b (i + 1 + offset) line)
    body;
  let probes =
    List.rev_map
      (fun (target, kind) ->
        match kind with
        | `V -> begin
            match
              if target = "0" || target = "gnd" then Some Netlist.ground
              else Hashtbl.find_opt b.names (lowercase target)
            with
            | Some n -> Transient.Node_v n
            | None -> raise (Parse_error (0, "probe of unknown node " ^ target))
          end
        | `I -> Transient.Branch_i target)
      b.probe_names
  in
  Hashtbl.replace side_tables b.nl b.names;
  { netlist = b.nl; tran = b.b_tran; ac = b.b_ac; probes; title }

let node_of_name deck name =
  let key = lowercase name in
  if key = "0" || key = "gnd" then Some Netlist.ground
  else
    match Hashtbl.find_opt side_tables deck.netlist with
    | Some tbl -> Hashtbl.find_opt tbl key
    | None -> None

let name_of_node deck node =
  if node = Netlist.ground then Some "0"
  else
    match Hashtbl.find_opt side_tables deck.netlist with
    | None -> None
    | Some tbl ->
        Hashtbl.fold
          (fun name n acc -> if n = node then Some name else acc)
          tbl None

let parse_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      parse_string (really_input_string ic len))

let run ?config deck =
  match deck.tran with
  | None -> invalid_arg "Parser.run: deck has no .tran card"
  | Some (dt, t_end) ->
      if deck.probes = [] then invalid_arg "Parser.run: deck has no probes";
      Transient.simulate ?config deck.netlist ~t_end ~dt ~probes:deck.probes
