(** DC operating point: capacitors open, inductors short (their series
    resistance remains), sources at their t = 0 value, inverter logic
    states resolved by fixed-point iteration. *)

val operating_point :
  ?max_state_iterations:int -> Netlist.t -> float array
(** Node voltages (index = node id, entry 0 is ground = 0 V).  Raises
    [Failure] on a singular system — run {!Netlist.validate} first for
    a better diagnostic — and [Failure] when the inverter states do not
    settle (a ring oscillator has no stable DC point; use the transient
    engine for those). *)

val initial_conditions :
  ?max_state_iterations:int -> Netlist.t -> (Netlist.node * float) list
(** The operating point as an [initial_voltages] list for
    {!Transient.run} — start a transient from the settled DC state
    instead of all-zeros. *)
