(** DC operating point: capacitors open, inductors short (their series
    resistance remains), sources at their t = 0 value, inverter logic
    states resolved by fixed-point iteration.

    The solve runs on the shared stamp IR ({!Assembly.t}): the DC
    system is simply the IR's [G] block — the inductor branch rows
    with [R] on the diagonal reduce to shorts-with-series-resistance
    at [s = 0] — factored once under the shared
    {!Rlc_numerics.Solver.plan}.  {!make} exposes that factorisation
    as a {!system}, so the operating point, every inverter fixed-point
    pass, and the per-source sensitivities all reuse one LU. *)

type system
(** A netlist compiled and factored for DC: holds the stamp IR, the
    [G] factorisation, the settled inverter states and the solved
    operating point. *)

val make :
  ?max_state_iterations:int ->
  ?assembly:Assembly.t ->
  ?symbolic:Rlc_numerics.Solver.symbolic ->
  Netlist.t ->
  system
(** Compile, factor once, and settle the operating point.  Raises
    [Failure] on a singular system — run {!Netlist.validate} first for
    a better diagnostic — and [Failure] when the inverter states do
    not settle (a ring oscillator has no stable DC point; use the
    transient engine for those).

    [?assembly] skips the compile step by adopting an already-built
    stamp IR (it must be the IR of [netlist]); [?symbolic] replays a
    previous sparse analysis of the same G pattern, turning the
    factorisation into a numeric refactor.  Both are the serving
    layer's compiled-deck cache hooks; both are sound only across
    decks with equal {!Netlist.structural_signature}. *)

val voltages : system -> float array
(** Node voltages (index = node id, entry 0 is ground = 0 V). *)

val unknowns : system -> float array
(** The full MNA solution vector (node voltages, then inductor branch
    currents, then voltage-source currents — the unknown order of
    {!Assembly.t}). *)

val assembly : system -> Assembly.t
(** The stamp IR behind the system. *)

val factor : system -> Rlc_numerics.Solver.factor
(** The settled G factorisation itself — the base factor a
    {!Whatif} workspace builds its rank-k updates over.  Read-only;
    sharing it is safe (factors are immutable once built). *)

val rhs : system -> float array
(** Copy of the DC right-hand side the operating point was solved
    against: sources at their t = 0 values plus the settled inverter
    drives.  [factor], [rhs] and {!unknowns} satisfy
    [G x = rhs] exactly — the invariant what-if perturbations start
    from. *)

val g_symbolic : system -> Rlc_numerics.Solver.symbolic option
(** The sparse symbolic analysis behind the G factorisation ([None] on
    the dense/banded backends).  A compiled-deck cache stores this and
    feeds it back through {!make}'s [?symbolic]; comparing it
    physically against the symbolic that was passed in detects a
    repivot fallback (the factor re-analysed instead of replaying). *)

val inputs : system -> Assembly.input array
(** The independent sources, in the input-column order
    {!sensitivity} indexes. *)

val sensitivity : system -> input:int -> float array
(** [sensitivity sys ~input] is d(node voltages)/d(u_input) — the node
    voltages' first-order response to a unit change in that source's
    DC value, from the already-computed factorisation (one banded or
    dense back-substitution, no new LU).  Inverter logic states are
    held at their settled values (small-signal assumption).  Index =
    node id, entry 0 is ground.  Raises [Invalid_argument] on a bad
    input index. *)

val operating_point : ?max_state_iterations:int -> Netlist.t -> float array
(** [voltages (make netlist)] — the historical one-shot entry point. *)

val initial_conditions :
  ?max_state_iterations:int -> Netlist.t -> (Netlist.node * float) list
(** The operating point as an [initial_voltages] list for
    {!Transient.run} — start a transient from the settled DC state
    instead of all-zeros. *)
