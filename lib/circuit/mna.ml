open Rlc_numerics

type source_kind = Assembly.source_kind = Voltage | Current

type input = Assembly.input = {
  name : string;
  kind : source_kind;
  stim : Stimulus.t;
}

type t = {
  size : int;
  n_nodes : int;
  n_currents : int;
  g : Matrix.t;
  c : Matrix.t;
  b : Matrix.t;
  inputs : input array;
  asm : Assembly.t;
}

let of_netlist netlist =
  let asm = Assembly.of_netlist netlist in
  if Array.length asm.Assembly.inputs = 0 then
    invalid_arg "Mna.of_netlist: no independent sources";
  {
    size = asm.Assembly.size;
    n_nodes = asm.Assembly.n_nodes;
    n_currents = asm.Assembly.n_currents;
    g = Assembly.dense_g asm;
    c = Assembly.dense_c asm;
    b = Assembly.dense_b asm;
    inputs = asm.Assembly.inputs;
    asm;
  }

let vi node = node - 1

let unknown_of_node m node =
  if node = Netlist.ground then
    invalid_arg "Mna.unknown_of_node: ground has no unknown"
  else if node < 0 || node >= m.n_nodes then
    invalid_arg "Mna.unknown_of_node: node out of range"
  else vi node

let output_of_node m node =
  let l = Array.make m.size 0.0 in
  l.(unknown_of_node m node) <- 1.0;
  l

let input_index m name =
  let found = ref None in
  Array.iteri
    (fun i inp -> if !found = None && inp.name = name then found := Some i)
    m.inputs;
  !found

let check_input m input =
  if input < 0 || input >= Array.length m.inputs then
    invalid_arg "Mna: input index out of range"

let b_column m input =
  Array.init m.size (fun i -> Matrix.get m.b i input)

let solve_s m ~input ~s =
  check_input m input;
  let rhs = Array.map Cx.of_float (b_column m input) in
  Assembly.solve_complex m.asm ~s ~rhs

let transfer m ~input ~output s =
  if Array.length output <> m.size then
    invalid_arg "Mna.transfer: output selector length mismatch";
  let x = solve_s m ~input ~s in
  let acc = ref Cx.zero in
  for k = 0 to m.size - 1 do
    acc := Cx.( +: ) !acc (Cx.scale output.(k) x.(k))
  done;
  !acc

let dot a b =
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. (a.(i) *. b.(i))
  done;
  !acc

let dc_gain m ~input ~output =
  check_input m input;
  if Array.length output <> m.size then
    invalid_arg "Mna.dc_gain: output selector length mismatch";
  let f = Assembly.factor_g m.asm in
  dot output (Assembly.solve_g m.asm f (b_column m input))

let moments m ~input ~output ~order =
  check_input m input;
  if order < 0 then invalid_arg "Mna.moments: negative order";
  if Array.length output <> m.size then
    invalid_arg "Mna.moments: output selector length mismatch";
  let f = Assembly.factor_g m.asm in
  let x = ref (Assembly.solve_g m.asm f (b_column m input)) in
  Array.init (order + 1) (fun k ->
      if k > 0 then begin
        let cx = Matrix.mul_vec m.c !x in
        let y = Assembly.solve_g m.asm f cx in
        x := Array.map (fun v -> -.v) y
      end;
      dot output !x)
