open Rlc_numerics

type source_kind = Voltage | Current

type input = {
  name : string;
  kind : source_kind;
  stim : Stimulus.t;
}

type t = {
  size : int;
  n_nodes : int;
  n_currents : int;
  g : Matrix.t;
  c : Matrix.t;
  b : Matrix.t;
  inputs : input array;
}

let vi node = node - 1

(* First pass: count the extra unknowns and the source columns so the
   matrices can be sized before stamping. *)
let count_extras elems =
  let currents = ref 0 and vsrcs = ref 0 and srcs = ref 0 in
  Array.iter
    (fun e ->
      match e with
      | Netlist.Rl_branch { henries; _ } ->
          if henries > 0.0 then incr currents
      | Netlist.Coupled_rl _ -> currents := !currents + 2
      | Netlist.Vsource _ ->
          incr vsrcs;
          incr srcs
      | Netlist.Isource _ -> incr srcs
      | Netlist.Resistor _ | Netlist.Capacitor _ | Netlist.Inverter _ -> ())
    elems;
  (!currents, !vsrcs, !srcs)

let of_netlist netlist =
  Netlist.validate netlist;
  let elems = Netlist.elements netlist in
  let n_nodes = Netlist.node_count netlist in
  let n_currents, n_vsrcs, n_srcs = count_extras elems in
  let size = n_nodes - 1 + n_currents + n_vsrcs in
  if size = 0 then invalid_arg "Mna.of_netlist: empty circuit";
  if n_srcs = 0 then invalid_arg "Mna.of_netlist: no independent sources";
  let g = Matrix.create size size in
  let c = Matrix.create size size in
  let b = Matrix.create size n_srcs in
  let inputs = ref [] in
  (* conductance-pattern stamp shared by G (resistors) and C (caps) *)
  let stamp_pattern m na nb v =
    if na <> 0 then Matrix.add_to m (vi na) (vi na) v;
    if nb <> 0 then Matrix.add_to m (vi nb) (vi nb) v;
    if na <> 0 && nb <> 0 then begin
      Matrix.add_to m (vi na) (vi nb) (-.v);
      Matrix.add_to m (vi nb) (vi na) (-.v)
    end
  in
  (* Branch row for a current unknown at [row]: KCL incidence in the
     node rows plus the element equation written as
     -v_a + v_b + R i + s L i = 0.  The sign convention matters: with
     the branch block skew-coupled to the node block and R, L positive
     on the branch diagonal, G + G^T and C are positive semidefinite —
     the structure PRIMA's congruence projection needs to keep reduced
     models stable. *)
  let stamp_branch ~row na nb r_ohms =
    if na <> 0 then begin
      Matrix.add_to g (vi na) row 1.0;
      Matrix.add_to g row (vi na) (-1.0)
    end;
    if nb <> 0 then begin
      Matrix.add_to g (vi nb) row (-1.0);
      Matrix.add_to g row (vi nb) 1.0
    end;
    Matrix.add_to g row row r_ohms
  in
  let next_current = ref (n_nodes - 1) in
  let next_vrow = ref (n_nodes - 1 + n_currents) in
  let next_col = ref 0 in
  Array.iteri
    (fun id e ->
      match e with
      | Netlist.Resistor { a; b = nb; ohms } ->
          stamp_pattern g a nb (1.0 /. ohms)
      | Netlist.Capacitor { a; b = nb; farads } ->
          stamp_pattern c a nb farads
      | Netlist.Rl_branch { a; b = nb; ohms; henries } ->
          if henries = 0.0 then stamp_pattern g a nb (1.0 /. ohms)
          else begin
            let row = !next_current in
            incr next_current;
            stamp_branch ~row a nb ohms;
            Matrix.add_to c row row henries
          end
      | Netlist.Coupled_rl { a1; b1; a2; b2; ohms; henries; mutual } ->
          let row1 = !next_current in
          let row2 = row1 + 1 in
          next_current := !next_current + 2;
          stamp_branch ~row:row1 a1 b1 ohms;
          stamp_branch ~row:row2 a2 b2 ohms;
          Matrix.add_to c row1 row1 henries;
          Matrix.add_to c row2 row2 henries;
          Matrix.add_to c row1 row2 mutual;
          Matrix.add_to c row2 row1 mutual
      | Netlist.Vsource { a; b = nb; stim } ->
          (* same skew convention as the inductor branches:
             -v_a + v_b = -u *)
          let row = !next_vrow in
          incr next_vrow;
          if a <> 0 then begin
            Matrix.add_to g (vi a) row 1.0;
            Matrix.add_to g row (vi a) (-1.0)
          end;
          if nb <> 0 then begin
            Matrix.add_to g (vi nb) row (-1.0);
            Matrix.add_to g row (vi nb) 1.0
          end;
          let col = !next_col in
          incr next_col;
          Matrix.add_to b row col (-1.0);
          inputs :=
            { name = Netlist.element_name netlist id; kind = Voltage; stim }
            :: !inputs
      | Netlist.Isource { a; b = nb; stim } ->
          (* current a -> b through the source: drawn from a, injected
             into b (matches the transient engine's RHS signs) *)
          let col = !next_col in
          incr next_col;
          if a <> 0 then Matrix.add_to b (vi a) col (-1.0);
          if nb <> 0 then Matrix.add_to b (vi nb) col 1.0;
          inputs :=
            { name = Netlist.element_name netlist id; kind = Current; stim }
            :: !inputs
      | Netlist.Inverter { input; output; dev } ->
          stamp_pattern c input Netlist.ground dev.Devices.c_in;
          stamp_pattern c output Netlist.ground dev.Devices.c_out;
          stamp_pattern g output Netlist.ground (1.0 /. dev.Devices.r_on))
    elems;
  {
    size;
    n_nodes;
    n_currents;
    g;
    c;
    b;
    inputs = Array.of_list (List.rev !inputs);
  }

let unknown_of_node m node =
  if node = Netlist.ground then
    invalid_arg "Mna.unknown_of_node: ground has no unknown"
  else if node < 0 || node >= m.n_nodes then
    invalid_arg "Mna.unknown_of_node: node out of range"
  else vi node

let output_of_node m node =
  let l = Array.make m.size 0.0 in
  l.(unknown_of_node m node) <- 1.0;
  l

let input_index m name =
  let found = ref None in
  Array.iteri
    (fun i inp -> if !found = None && inp.name = name then found := Some i)
    m.inputs;
  !found

let check_input m input =
  if input < 0 || input >= Array.length m.inputs then
    invalid_arg "Mna: input index out of range"

let b_column m input =
  Array.init m.size (fun i -> Matrix.get m.b i input)

let solve_s m ~input ~s =
  check_input m input;
  let a =
    Cmatrix.init m.size m.size (fun r q ->
        Cx.( +: )
          (Cx.of_float (Matrix.get m.g r q))
          (Cx.( *: ) s (Cx.of_float (Matrix.get m.c r q))))
  in
  let rhs = Array.map Cx.of_float (b_column m input) in
  Clu.solve_matrix a rhs

let transfer m ~input ~output s =
  if Array.length output <> m.size then
    invalid_arg "Mna.transfer: output selector length mismatch";
  let x = solve_s m ~input ~s in
  let acc = ref Cx.zero in
  for k = 0 to m.size - 1 do
    acc := Cx.( +: ) !acc (Cx.scale output.(k) x.(k))
  done;
  !acc

let dot a b =
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. (a.(i) *. b.(i))
  done;
  !acc

let dc_gain m ~input ~output =
  check_input m input;
  if Array.length output <> m.size then
    invalid_arg "Mna.dc_gain: output selector length mismatch";
  let lu = Lu.decompose m.g in
  dot output (Lu.solve lu (b_column m input))

let moments m ~input ~output ~order =
  check_input m input;
  if order < 0 then invalid_arg "Mna.moments: negative order";
  if Array.length output <> m.size then
    invalid_arg "Mna.moments: output selector length mismatch";
  let lu = Lu.decompose m.g in
  let x = ref (Lu.solve lu (b_column m input)) in
  Array.init (order + 1) (fun k ->
      if k > 0 then begin
        let cx = Matrix.mul_vec m.c !x in
        let y = Lu.solve lu cx in
        x := Array.map (fun v -> -.v) y
      end;
      dot output !x)
