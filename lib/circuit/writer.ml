let value v = Printf.sprintf "%.9g" v

let stimulus_to_string = function
  | Stimulus.Dc v -> Printf.sprintf "DC %s" (value v)
  | Stimulus.Pulse { v0; v1; t_delay; t_rise; t_high; t_fall; period } ->
      Printf.sprintf "PULSE(%s %s %s %s %s %s %s)" (value v0) (value v1)
        (value t_delay) (value t_rise) (value t_fall) (value t_high)
        (value period)
  | Stimulus.Pwl corners ->
      Printf.sprintf "PWL(%s)"
        (String.concat " "
           (List.map (fun (t, v) -> value t ^ " " ^ value v) corners))
  | Stimulus.Step { v0; v1; t_delay; t_rise } ->
      Printf.sprintf "PWL(0 %s %s %s %s %s)" (value v0) (value t_delay)
        (value v0)
        (value (t_delay +. t_rise))
        (value v1)

let node_name ?deck n =
  if n = Netlist.ground then "0"
  else
    match deck with
    | Some d -> (
        match Parser.name_of_node d n with
        | Some name -> name
        | None -> Printf.sprintf "n%d" n)
    | None -> Printf.sprintf "n%d" n

let netlist_to_string_inner ?deck ?title netlist =
  let buf = Buffer.create 256 in
  (match title with
  | Some t -> Buffer.add_string buf (t ^ "\n")
  | None -> ());
  let nn = node_name ?deck in
  Array.iteri
    (fun id e ->
      let name = Netlist.element_name netlist id in
      (* the parser dispatches on the card's first letter, so a name
         that does not start with its element's letter (auto-generated
         "_e3", a ladder's "line_seg0" R-L branch, ...) gets the letter
         prefixed; round-tripping preserves structure, not names *)
      let card letter nm =
        if
          nm <> ""
          && Char.lowercase_ascii nm.[0] = Char.lowercase_ascii letter.[0]
        then nm
        else letter ^ nm
      in
      let line =
        match e with
        | Netlist.Resistor { a; b; ohms } ->
            Printf.sprintf "%s %s %s %s" (card "R" name) (nn a) (nn b)
              (value ohms)
        | Netlist.Capacitor { a; b; farads } ->
            Printf.sprintf "%s %s %s %s" (card "C" name) (nn a) (nn b)
              (value farads)
        | Netlist.Rl_branch { a; b; ohms; henries } ->
            Printf.sprintf "%s %s %s r=%s l=%s" (card "B" name) (nn a) (nn b)
              (value ohms) (value henries)
        | Netlist.Coupled_rl { a1; b1; a2; b2; ohms; henries; mutual } ->
            Printf.sprintf "%s %s %s %s %s r=%s l=%s m=%s" (card "P" name)
              (nn a1) (nn b1) (nn a2) (nn b2) (value ohms) (value henries)
              (value mutual)
        | Netlist.Vsource { a; b; stim } ->
            Printf.sprintf "%s %s %s %s" (card "V" name) (nn a) (nn b)
              (stimulus_to_string stim)
        | Netlist.Isource { a; b; stim } ->
            Printf.sprintf "%s %s %s %s" (card "I" name) (nn a) (nn b)
              (stimulus_to_string stim)
        | Netlist.Inverter { input; output; dev } ->
            Printf.sprintf
              "%s %s %s INV r_on=%s c_in=%s c_out=%s vdd=%s vth=%s ttr=%s"
              (card "X" name) (nn input) (nn output)
              (value dev.Devices.r_on)
              (value dev.Devices.c_in)
              (value dev.Devices.c_out)
              (value dev.Devices.vdd)
              (value dev.Devices.vth)
              (value dev.Devices.t_transition)
      in
      Buffer.add_string buf line;
      Buffer.add_char buf '\n')
    (Netlist.elements netlist);
  buf

let netlist_to_string ?title netlist =
  let buf = netlist_to_string_inner ?title netlist in
  Buffer.add_string buf ".end\n";
  Buffer.contents buf

let deck_to_string deck =
  let buf =
    netlist_to_string_inner ~deck ?title:deck.Parser.title
      deck.Parser.netlist
  in
  (match deck.Parser.tran with
  | Some (dt, t_end) ->
      Buffer.add_string buf
        (Printf.sprintf ".tran %s %s\n" (value dt) (value t_end))
  | None -> ());
  if deck.Parser.probes <> [] then begin
    Buffer.add_string buf ".probe";
    List.iter
      (fun p ->
        Buffer.add_string buf
          (match p with
          | Transient.Node_v n ->
              Printf.sprintf " v(%s)" (node_name ~deck n)
          | Transient.Branch_i name -> Printf.sprintf " i(%s)" name))
      deck.Parser.probes;
    Buffer.add_char buf '\n'
  end;
  Buffer.add_string buf ".end\n";
  Buffer.contents buf
