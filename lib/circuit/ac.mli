(** AC small-signal analysis over the {!Mna} descriptor: solve
    [(G + jwC) x = B u] with a unit-amplitude source at each frequency
    of a sweep and report Bode points.

    The grid convention follows the SPICE [.ac dec] card: a fixed
    number of points per decade on a logarithmic grid, both endpoints
    included.  Points are records of frequency, magnitude in dB and
    phase in degrees — the same shape as [Rlc_core.Frequency.point], so
    sweeps of a discretised line overlay directly on the analytic
    two-pole response of the core library. *)

open Rlc_numerics

type point = { freq : float; mag_db : float; phase_deg : float }

val decade_grid :
  points_per_decade:int -> fstart:float -> fstop:float -> float array
(** Logarithmic grid from [fstart] to [fstop] inclusive.  Raises
    [Invalid_argument] unless [0 < fstart <= fstop] and
    [points_per_decade >= 1]. *)

val s_of_freq : float -> Cx.t
(** [s = j 2 pi f], the Laplace point of a real frequency. *)

val solve : Mna.t -> input:int -> freq:float -> Cx.t array
(** Full phasor solution at [s = j 2 pi freq]; one complex
    factorisation.  Multiple probes of the same sweep should share this
    solution rather than re-solving. *)

val transfer : Mna.t -> input:int -> output:float array -> float -> Cx.t
(** Complex transfer-function value [H(j 2 pi f)]. *)

val point_of : freq:float -> Cx.t -> point
(** Magnitude (dB) and unwrapped-free phase (degrees, atan2 branch) of
    one complex response value. *)

val unwrap : float array -> float array
(** Phase unwrapping: given wrapped phases in degrees (each in
    (-180, 180], as {!point_of} produces along a sweep), remove the
    360-degree jumps so the returned curve is continuous — whenever a
    step between consecutive samples exceeds 180 degrees in magnitude
    the rest of the curve is shifted by the compensating multiple of
    360.  The first sample is kept as-is; a distributed RLC line's
    phase then descends monotonically past -180 instead of sawing.
    Returns a fresh array ([[||]] for empty input). *)

val bode :
  ?pool:Rlc_parallel.Pool.t ->
  Mna.t ->
  input:int ->
  output:float array ->
  freqs:float array ->
  point array
(** One Bode point per frequency for a single output selector.  The
    whole sweep shares one {!Assembly.cengine} — on the sparse backend
    the symbolic analysis happens once and every point refactors it —
    and [pool] fans the points out, slotted back in [freqs] order
    (bit-identical for any domain count). *)
