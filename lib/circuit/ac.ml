open Rlc_numerics

type point = { freq : float; mag_db : float; phase_deg : float }

let decade_grid ~points_per_decade ~fstart ~fstop =
  if points_per_decade < 1 then invalid_arg "Ac.decade_grid: points/decade < 1";
  if fstart <= 0.0 || fstop < fstart then
    invalid_arg "Ac.decade_grid: need 0 < fstart <= fstop";
  if fstart = fstop then [| fstart |]
  else begin
    let decades = Float.log10 (fstop /. fstart) in
    let n =
      Int.max 1
        (int_of_float
           (Float.round (float_of_int points_per_decade *. decades)))
    in
    Array.init (n + 1) (fun i ->
        if i = n then fstop
        else fstart *. (10.0 ** (decades *. float_of_int i /. float_of_int n)))
  end

let s_of_freq freq = Cx.make 0.0 (2.0 *. Float.pi *. freq)

let solve mna ~input ~freq = Mna.solve_s mna ~input ~s:(s_of_freq freq)

let transfer mna ~input ~output freq =
  Mna.transfer mna ~input ~output (s_of_freq freq)

let point_of ~freq h =
  {
    freq;
    mag_db = 20.0 *. Float.log10 (Cx.norm h +. 1e-300);
    phase_deg = Float.atan2 (Cx.im h) (Cx.re h) *. 180.0 /. Float.pi;
  }

let unwrap phases =
  let n = Array.length phases in
  if n = 0 then [||]
  else begin
    let out = Array.make n phases.(0) in
    let offset = ref 0.0 in
    for i = 1 to n - 1 do
      let d = phases.(i) -. phases.(i - 1) in
      offset := !offset -. (360.0 *. Float.round (d /. 360.0));
      out.(i) <- phases.(i) +. !offset
    done;
    out
  end

let m_points = Rlc_instr.Metrics.counter "ac.points"
let m_point_s = Rlc_instr.Metrics.hist "ac.point_s"

let bode ?pool mna ~input ~output ~freqs =
  let pool =
    match pool with Some p -> p | None -> Rlc_parallel.Pool.sequential
  in
  if Array.length output <> mna.Mna.size then
    invalid_arg "Ac.bode: output selector length mismatch";
  if Array.length freqs = 0 then [||]
  else
    Rlc_instr.Span.with_ "ac.bode" (fun () ->
        let asm = mna.Mna.asm in
        (* engine built before the fan-out: one structure analysis
           (and one sparse symbolic factorisation) shared read-only by
           every point, with the pivot sequence pinned at the first
           frequency — deterministic at any domain count *)
        let eng = Assembly.cengine asm ~s_ref:(s_of_freq freqs.(0)) in
        let plan = Assembly.cengine_plan eng in
        let rhs = Array.map Cx.of_float (Assembly.b_column asm input) in
        (* per-domain scratch: the solve buffers are the only mutable
           state a point touches besides its own [x] *)
        let scratch_key =
          Domain.DLS.new_key (fun () -> Assembly.cengine_scratch eng)
        in
        let n = plan.Solver.n in
        Rlc_parallel.Pool.map pool
          (fun f ->
            Rlc_instr.Metrics.incr m_points;
            Rlc_instr.Metrics.timed m_point_s (fun () ->
                let x = Array.make n Cx.zero in
                Assembly.cengine_solve_into eng
                  (Domain.DLS.get scratch_key)
                  ~s:(s_of_freq f) ~rhs ~x;
                let acc = ref Cx.zero in
                for k = 0 to n - 1 do
                  acc := Cx.( +: ) !acc (Cx.scale output.(k) x.(k))
                done;
                point_of ~freq:f !acc))
          freqs)
