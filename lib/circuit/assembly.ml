open Rlc_numerics

let vi node = node - 1

module Coo = struct
  (* Growable triplet arrays plus a slot index so duplicate stamps
     accumulate in place — the same float-addition order a dense
     Matrix.add_to sequence would produce, which is what makes the
     dense materialisation entry-identical to the historical dense
     stamping. *)
  type t = {
    csize : int;
    index : (int, int) Hashtbl.t; (* i * csize + j -> slot *)
    mutable rows : int array;
    mutable cols : int array;
    mutable vals : float array;
    mutable n : int;
  }

  let create ~size =
    if size <= 0 then invalid_arg "Assembly.Coo.create: size <= 0";
    {
      csize = size;
      index = Hashtbl.create 64;
      rows = Array.make 16 0;
      cols = Array.make 16 0;
      vals = Array.make 16 0.0;
      n = 0;
    }

  let size t = t.csize
  let nnz t = t.n

  let grow t =
    let cap = 2 * Array.length t.rows in
    let extend a fill =
      let b = Array.make cap fill in
      Array.blit a 0 b 0 t.n;
      b
    in
    t.rows <- extend t.rows 0;
    t.cols <- extend t.cols 0;
    t.vals <- extend t.vals 0.0

  let stamp_at t i j v =
    if i < 0 || i >= t.csize || j < 0 || j >= t.csize then
      invalid_arg
        (Printf.sprintf "Assembly.Coo: index (%d,%d) out of %dx%d" i j t.csize
           t.csize);
    let key = (i * t.csize) + j in
    match Hashtbl.find_opt t.index key with
    | Some slot -> t.vals.(slot) <- t.vals.(slot) +. v
    | None ->
        if t.n = Array.length t.rows then grow t;
        t.rows.(t.n) <- i;
        t.cols.(t.n) <- j;
        t.vals.(t.n) <- v;
        Hashtbl.add t.index key t.n;
        t.n <- t.n + 1

  (* THE conductance-pattern stamp: every two-terminal conductance-like
     element in the repository (resistors, capacitor companions,
     inductor companions, inverter output stages) goes through here. *)
  let stamp_g t a b v =
    if a <> Netlist.ground then stamp_at t (vi a) (vi a) v;
    if b <> Netlist.ground then stamp_at t (vi b) (vi b) v;
    if a <> Netlist.ground && b <> Netlist.ground then begin
      stamp_at t (vi a) (vi b) (-.v);
      stamp_at t (vi b) (vi a) (-.v)
    end

  let stamp_cross t ~a ~b ~ma ~mb v =
    if a <> Netlist.ground then begin
      if ma <> Netlist.ground then stamp_at t (vi a) (vi ma) v;
      if mb <> Netlist.ground then stamp_at t (vi a) (vi mb) (-.v)
    end;
    if b <> Netlist.ground then begin
      if ma <> Netlist.ground then stamp_at t (vi b) (vi ma) (-.v);
      if mb <> Netlist.ground then stamp_at t (vi b) (vi mb) v
    end

  let iter t f =
    for k = 0 to t.n - 1 do
      f t.rows.(k) t.cols.(k) t.vals.(k)
    done

  let adjacency_into t adj =
    for k = 0 to t.n - 1 do
      let i = t.rows.(k) and j = t.cols.(k) in
      if i <> j then begin
        adj.(i) <- j :: adj.(i);
        adj.(j) <- i :: adj.(j)
      end
    done

  let adjacency t =
    let adj = Array.make t.csize [] in
    adjacency_into t adj;
    Array.map (List.sort_uniq Int.compare) adj

  let to_dense t =
    let m = Matrix.create t.csize t.csize in
    iter t (fun i j v -> Matrix.add_to m i j v);
    m
end

type source_kind = Voltage | Current

type input = {
  name : string;
  kind : source_kind;
  stim : Stimulus.t;
}

type t = {
  size : int;
  n_nodes : int;
  n_currents : int;
  g : Coo.t;
  c : Coo.t;
  b_rows : int array;
  b_cols : int array;
  b_vals : float array;
  inputs : input array;
  current_rows : int array array;
  adj : int list array;
  plan : Solver.plan;
}

(* First pass: count the extra unknowns and the source columns so the
   IR can be sized before stamping. *)
let count_extras elems =
  let currents = ref 0 and vsrcs = ref 0 and srcs = ref 0 in
  Array.iter
    (fun e ->
      match e with
      | Netlist.Rl_branch { henries; _ } ->
          if henries > 0.0 then incr currents
      | Netlist.Coupled_rl _ -> currents := !currents + 2
      | Netlist.Vsource _ ->
          incr vsrcs;
          incr srcs
      | Netlist.Isource _ -> incr srcs
      | Netlist.Resistor _ | Netlist.Capacitor _ | Netlist.Inverter _ -> ())
    elems;
  (!currents, !vsrcs, !srcs)

let of_netlist ?plan:plan_hint ?(validate = true) netlist =
  if validate then Netlist.validate netlist;
  let elems = Netlist.elements netlist in
  let n_nodes = Netlist.node_count netlist in
  let n_currents, n_vsrcs, _n_srcs = count_extras elems in
  let size = n_nodes - 1 + n_currents + n_vsrcs in
  if size = 0 then invalid_arg "Assembly.of_netlist: empty circuit";
  let g = Coo.create ~size in
  let c = Coo.create ~size in
  let b = ref [] in
  let inputs = ref [] in
  (* Branch row for a current unknown at [row]: KCL incidence in the
     node rows plus the element equation written as
     -v_a + v_b + R i + s L i = 0.  The sign convention matters: with
     the branch block skew-coupled to the node block and R, L positive
     on the branch diagonal, G + G^T and C are positive semidefinite —
     the structure PRIMA's congruence projection needs to keep reduced
     models stable. *)
  let stamp_branch ~row na nb r_ohms =
    if na <> Netlist.ground then begin
      Coo.stamp_at g (vi na) row 1.0;
      Coo.stamp_at g row (vi na) (-1.0)
    end;
    if nb <> Netlist.ground then begin
      Coo.stamp_at g (vi nb) row (-1.0);
      Coo.stamp_at g row (vi nb) 1.0
    end;
    Coo.stamp_at g row row r_ohms
  in
  let next_current = ref (n_nodes - 1) in
  let next_vrow = ref (n_nodes - 1 + n_currents) in
  let next_col = ref 0 in
  let current_rows = Array.make (Array.length elems) [||] in
  Array.iteri
    (fun id e ->
      match e with
      | Netlist.Resistor { a; b = nb; ohms } -> Coo.stamp_g g a nb (1.0 /. ohms)
      | Netlist.Capacitor { a; b = nb; farads } -> Coo.stamp_g c a nb farads
      | Netlist.Rl_branch { a; b = nb; ohms; henries } ->
          if henries = 0.0 then Coo.stamp_g g a nb (1.0 /. ohms)
          else begin
            let row = !next_current in
            incr next_current;
            current_rows.(id) <- [| row |];
            stamp_branch ~row a nb ohms;
            Coo.stamp_at c row row henries
          end
      | Netlist.Coupled_rl { a1; b1; a2; b2; ohms; henries; mutual } ->
          let row1 = !next_current in
          let row2 = row1 + 1 in
          next_current := !next_current + 2;
          current_rows.(id) <- [| row1; row2 |];
          stamp_branch ~row:row1 a1 b1 ohms;
          stamp_branch ~row:row2 a2 b2 ohms;
          Coo.stamp_at c row1 row1 henries;
          Coo.stamp_at c row2 row2 henries;
          Coo.stamp_at c row1 row2 mutual;
          Coo.stamp_at c row2 row1 mutual
      | Netlist.Vsource { a; b = nb; stim } ->
          (* same skew convention as the inductor branches:
             -v_a + v_b = -u *)
          let row = !next_vrow in
          incr next_vrow;
          current_rows.(id) <- [| row |];
          if a <> Netlist.ground then begin
            Coo.stamp_at g (vi a) row 1.0;
            Coo.stamp_at g row (vi a) (-1.0)
          end;
          if nb <> Netlist.ground then begin
            Coo.stamp_at g (vi nb) row (-1.0);
            Coo.stamp_at g row (vi nb) 1.0
          end;
          let col = !next_col in
          incr next_col;
          b := (row, col, -1.0) :: !b;
          inputs :=
            { name = Netlist.element_name netlist id; kind = Voltage; stim }
            :: !inputs
      | Netlist.Isource { a; b = nb; stim } ->
          (* current a -> b through the source: drawn from a, injected
             into b (matches the transient engine's RHS signs) *)
          let col = !next_col in
          incr next_col;
          if a <> Netlist.ground then b := (vi a, col, -1.0) :: !b;
          if nb <> Netlist.ground then b := (vi nb, col, 1.0) :: !b;
          inputs :=
            { name = Netlist.element_name netlist id; kind = Current; stim }
            :: !inputs
      | Netlist.Inverter { input; output; dev } ->
          Coo.stamp_g c input Netlist.ground dev.Devices.c_in;
          Coo.stamp_g c output Netlist.ground dev.Devices.c_out;
          Coo.stamp_g g output Netlist.ground (1.0 /. dev.Devices.r_on))
    elems;
  let b = Array.of_list (List.rev !b) in
  let adj = Array.make size [] in
  Coo.adjacency_into g adj;
  Coo.adjacency_into c adj;
  let adj = Array.map (List.sort_uniq Int.compare) adj in
  {
    size;
    n_nodes;
    n_currents;
    g;
    c;
    b_rows = Array.map (fun (r, _, _) -> r) b;
    b_cols = Array.map (fun (_, cl, _) -> cl) b;
    b_vals = Array.map (fun (_, _, v) -> v) b;
    inputs = Array.of_list (List.rev !inputs);
    current_rows;
    adj;
    plan =
      (match plan_hint with
      | Some p when p.Solver.n = size -> p
      | Some _ ->
          invalid_arg "Assembly.of_netlist: plan hint sized for another deck"
      | None -> Solver.plan adj);
  }

let dense_g t = Coo.to_dense t.g
let dense_c t = Coo.to_dense t.c

let iter_b t f =
  Array.iteri (fun k row -> f row t.b_cols.(k) t.b_vals.(k)) t.b_rows

let dense_b t =
  let m = Matrix.create t.size (Int.max 1 (Array.length t.inputs)) in
  iter_b t (fun r cl v -> Matrix.add_to m r cl v);
  m

let b_column t input =
  if input < 0 || input >= Array.length t.inputs then
    invalid_arg "Assembly.b_column: input index out of range";
  let col = Array.make t.size 0.0 in
  iter_b t (fun r cl v -> if cl = input then col.(r) <- col.(r) +. v);
  col

let factor_g ?symbolic t =
  Solver.factor_with ?symbolic t.plan ~fill:(Coo.iter t.g)

let solve_g t f b = Solver.solve t.plan f b

let plan_for t backend =
  match backend with
  | Solver.Auto -> t.plan
  | Solver.Dense | Solver.Banded | Solver.Sparse -> Solver.plan ~backend t.adj

let cfill t s add =
  Coo.iter t.g (fun i j v -> add i j (Cx.of_float v));
  Coo.iter t.c (fun i j v -> add i j (Cx.( *: ) s (Cx.of_float v)))

let solve_complex ?(backend = Solver.Auto) t ~s ~rhs =
  let plan = plan_for t backend in
  let f = Solver.cfactor plan ~fill:(cfill t s) in
  Solver.csolve plan f rhs

(* The per-sweep complex engine: one structure analysis (and, on the
   sparse backend, one symbolic factorisation at a reference
   frequency) shared read-only by every subsequent point.  Building
   the engine *before* a Pool fan-out is what keeps sweeps
   deterministic at any domain count: the pivot sequence is fixed at
   [s_ref] instead of racing to whichever frequency factors first. *)
type cengine = {
  ce_asm : t;
  ce_plan : Solver.plan;
  ce_sym : Solver.symbolic option;
}

let cengine ?(backend = Solver.Auto) ?symbolic t ~s_ref =
  let plan = plan_for t backend in
  let sym =
    match plan.Solver.choice with
    | Solver.Sparse_lu -> begin
        (* a caller-provided symbolic (the serving layer's compiled-deck
           cache) skips the reference-frequency analysis entirely *)
        match symbolic with
        | Some _ -> symbolic
        | None ->
            Solver.csymbolic_of (Solver.cfactor plan ~fill:(cfill t s_ref))
      end
    | Solver.Dense_lu | Solver.Banded_lu -> None
  in
  { ce_asm = t; ce_plan = plan; ce_sym = sym }

let cengine_plan e = e.ce_plan
let cengine_symbolic e = e.ce_sym
let cengine_scratch e = Solver.cscratch e.ce_plan

let cengine_solve_into e cs ~s ~rhs ~x =
  let f =
    Solver.cfactor_with ?symbolic:e.ce_sym e.ce_plan ~fill:(cfill e.ce_asm s)
  in
  Solver.csolve_into e.ce_plan f cs ~b:rhs ~x

let cengine_solve e ~s ~rhs =
  let x = Array.make e.ce_plan.Solver.n Cx.zero in
  cengine_solve_into e (cengine_scratch e) ~s ~rhs ~x;
  x
