(** Fixed-step MNA transient simulation.

    Companion-model formulation: capacitors and series-RL branches
    become Norton equivalents (trapezoidal by default, backward Euler
    available and always used for the very first step), voltage sources
    add branch-current unknowns, and the threshold-switched inverters
    are resolved by a per-step fixed-point iteration on their logic
    states.  Because switching only changes source terms, the MNA
    matrix is factorised once per (method, dt) and reused for every
    step.

    The engine reorders the MNA unknowns with reverse Cuthill-McKee at
    construction time and measures the bandwidth the stamped structure
    achieves under that ordering; ladder-shaped systems (kl = ku of
    2-3 independent of length) are then factorised and solved with the
    banded kernel ({!Rlc_numerics.Banded}) instead of dense LU,
    dropping the per-step cost from O(m^2) to O(m·(kl+ku)).  The hot
    path (RHS assembly + solve) works in preallocated buffers and
    allocates nothing per step. *)

type integration = Trapezoidal | Backward_euler

type backend = Rlc_numerics.Solver.backend =
  | Auto
      (** cost-model choice: banded for narrow bands, sparse when the
          predicted min-degree fill beats the predicted banded work,
          dense for small systems *)
  | Dense  (** force dense LU *)
  | Banded  (** force the banded kernel *)
  | Sparse  (** force general sparse LU (min-degree ordered) *)
      (** Re-export of {!Rlc_numerics.Solver.backend}: the engine's
          structure analysis and factorisations run through the shared
          {!Rlc_numerics.Solver.plan}, the same pass the DC, AC and
          PRIMA paths use. *)

type probe =
  | Node_v of Netlist.node  (** node voltage *)
  | Branch_i of string  (** current through the named element;
      supported for RL branches, resistors, capacitors, voltage
      sources and the output stage of inverters *)

type result

(** Engine configuration as a single record instead of a growing spread
    of optional labels.  Build one with functional record update:

    {[
      let cfg = { Transient.Config.default with backend = Banded;
                  record_every = 10 } in
      Transient.simulate ~config:cfg nl ~t_end ~dt ~probes
    ]} *)
module Config : sig
  type t = {
    integration : integration;  (** fixed-step method (default
        [Trapezoidal]); the first step is always backward Euler *)
    backend : backend;  (** factorisation kernel (default [Auto]) *)
    max_state_iterations : int;  (** inverter fixed-point cap
        (default 8) *)
    record_every : int;  (** sample decimation, fixed-step only
        (default 1) *)
    initial_voltages : (Netlist.node * float) list;
        (** unlisted nodes start at 0 V *)
    rtol : float;  (** adaptive relative tolerance (default 1e-3) *)
    atol : float;  (** adaptive absolute tolerance, volts/amps
        (default 1e-6) *)
    dt_min : float option;  (** adaptive step floor
        (default [dt_max /. 4096.]) *)
    pool : Rlc_parallel.Pool.t option;
        (** when given with capacity >= 2, {!simulate_adaptive}
            evaluates the speculative full step of its step-doubling
            error control on a second domain, concurrently with the
            two half steps.  Waveforms, accepted/rejected step counts
            and final voltages are bit-identical with or without the
            pool; only the {!lu_factorizations} diagnostic may differ
            (the two engines keep separate caches). *)
    plan_hint : Rlc_numerics.Solver.plan option;
        (** a {!structure_plan} of a structurally identical deck
            (equal {!Netlist.structural_signature}): skips the
            engine's structure probe and ordering pass.  Ignored when
            its size does not match.  Since a plan is a pure function
            of the companion structure, waveforms are bit-identical
            with or without the hint — it only saves the analysis.
            (default [None]) *)
  }

  val default : t
end

val structure_plan : ?backend:backend -> Netlist.t -> Rlc_numerics.Solver.plan
(** The engine's structure analysis (RCM/min-degree ordering +
    backend choice over the companion-model pattern) without building
    an engine — compute once per structural family, reuse via
    [Config.plan_hint].  Note the companion system's unknown count is
    [nodes - 1 + vsources], distinct from {!Assembly.of_netlist}'s MNA
    plan.  Raises [Invalid_argument] on an empty circuit. *)

val simulate :
  ?config:Config.t ->
  Netlist.t ->
  t_end:float ->
  dt:float ->
  probes:probe list ->
  result
(** Simulate from t = 0 to [t_end] with fixed step [dt].  Unlisted
    initial node voltages start at 0; branch currents start at 0.
    Raises [Invalid_argument] for nonsensical parameters or unknown
    probe names, [Failure] if the MNA matrix is singular. *)

val simulate_adaptive :
  ?config:Config.t ->
  Netlist.t ->
  t_end:float ->
  dt_max:float ->
  probes:probe list ->
  result
(** Variable-step transient with step-doubling error control: each
    candidate step is computed once at [dt] and once as two [dt/2]
    trapezoidal steps; their per-node difference against
    [atol + rtol * |v|] accepts, shrinks or grows the step.  Step
    sizes are tracked as levels on the dt_max / 2^k grid (k bounded by
    [dt_min]) so MNA factorisations are reused; only the final partial
    step reaching exactly [t_end] may leave the grid.
    The result's time axis is non-uniform; [rejected_steps] counts
    error-control rollbacks. *)

val run :
  ?integration:integration ->
  ?initial_voltages:(Netlist.node * float) list ->
  ?max_state_iterations:int ->
  ?record_every:int ->
  ?backend:backend ->
  Netlist.t ->
  t_end:float ->
  dt:float ->
  probes:probe list ->
  result
(** @deprecated Thin wrapper over {!simulate} kept so existing callers
    don't break; new code should build a {!Config.t}. *)

val run_adaptive :
  ?initial_voltages:(Netlist.node * float) list ->
  ?max_state_iterations:int ->
  ?rtol:float ->
  ?atol:float ->
  ?dt_min:float ->
  ?backend:backend ->
  Netlist.t ->
  t_end:float ->
  dt_max:float ->
  probes:probe list ->
  result
(** @deprecated Thin wrapper over {!simulate_adaptive} kept so existing
    callers don't break; new code should build a {!Config.t}. *)

val time : result -> float array

val get : result -> probe -> Rlc_waveform.Waveform.t
(** Waveform of a probe that was requested in [run]; raises
    [Not_found] otherwise. *)

val final_voltages : result -> float array
(** Node voltages at [t_end] (index = node id). *)

val steps_taken : result -> int

(** Per-run work/diagnostic counters, as one record.  The same numbers
    are also published to the {!Rlc_instr.Metrics} registry
    ([transient.steps], [transient.rejected_steps],
    [transient.nonconverged_steps]; factorisations appear as
    [transient.lu_cache.miss]) at the end of every driver run. *)
module Stats : sig
  type t = {
    steps : int;  (** accepted steps *)
    rejected_steps : int;
        (** error-control rollbacks (adaptive only; 0 for fixed-step) *)
    nonconverged_steps : int;
        (** steps whose inverter fixed point was still changing when
            [max_state_iterations] ran out; the committed state is the
            consistent (solution, logic-trial) pair that produced the
            last solve, and this counter is the diagnostic that it
            happened *)
    lu_factorizations : int;
        (** distinct (method, dt) factorisations built during the run
            — the observable for LU-cache reuse: a fixed-step
            trapezoidal run costs exactly 2 (backward-Euler first step
            + trapezoidal rest), and an adaptive run stays within a
            couple per dt level *)
  }
end

val stats : result -> Stats.t

val rejected_steps : result -> int
(** @deprecated Use [(stats r).Stats.rejected_steps]. *)

val nonconverged_steps : result -> int
(** @deprecated Use [(stats r).Stats.nonconverged_steps]. *)

val lu_factorizations : result -> int
(** @deprecated Use [(stats r).Stats.lu_factorizations]. *)

val state_iteration_histogram : result -> int array
(** [h.(i)] counts steps that needed [i+1] fixed-point passes —
    diagnostic for the inverter switching resolution. *)
