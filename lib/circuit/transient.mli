(** Fixed-step MNA transient simulation.

    Companion-model formulation: capacitors and series-RL branches
    become Norton equivalents (trapezoidal by default, backward Euler
    available and always used for the very first step), voltage sources
    add branch-current unknowns, and the threshold-switched inverters
    are resolved by a per-step fixed-point iteration on their logic
    states.  Because switching only changes source terms, the MNA
    matrix is factorised once and reused for every step. *)

type integration = Trapezoidal | Backward_euler

type probe =
  | Node_v of Netlist.node  (** node voltage *)
  | Branch_i of string  (** current through the named element;
      supported for RL branches, resistors, capacitors and the output
      stage of inverters *)

type result

val run :
  ?integration:integration ->
  ?initial_voltages:(Netlist.node * float) list ->
  ?max_state_iterations:int ->
  ?record_every:int ->
  Netlist.t ->
  t_end:float ->
  dt:float ->
  probes:probe list ->
  result
(** Simulate from t = 0 to [t_end] with step [dt].  Unlisted initial
    node voltages start at 0; branch currents start at 0.
    [record_every] (default 1) decimates the stored samples.
    Raises [Invalid_argument] for nonsensical parameters or unknown
    probe names, [Failure] if the MNA matrix is singular. *)

val run_adaptive :
  ?initial_voltages:(Netlist.node * float) list ->
  ?max_state_iterations:int ->
  ?rtol:float ->
  ?atol:float ->
  ?dt_min:float ->
  Netlist.t ->
  t_end:float ->
  dt_max:float ->
  probes:probe list ->
  result
(** Variable-step transient with step-doubling error control: each
    candidate step is computed once at [dt] and once as two [dt/2]
    trapezoidal steps; their per-node difference against
    [atol + rtol * |v|] accepts, shrinks or grows the step.  Step sizes
    stay on the dt_max / 2^k grid so MNA factorizations are reused.
    Defaults: rtol 1e-3, atol 1e-6 (volts/amps), dt_min = dt_max/4096.
    The result's time axis is non-uniform; [rejected_steps] counts
    error-control rollbacks. *)

val time : result -> float array

val get : result -> probe -> Rlc_waveform.Waveform.t
(** Waveform of a probe that was requested in [run]; raises
    [Not_found] otherwise. *)

val final_voltages : result -> float array
(** Node voltages at [t_end] (index = node id). *)

val steps_taken : result -> int
val rejected_steps : result -> int
(** Error-control rollbacks ([run_adaptive] only; 0 for [run]). *)

val state_iteration_histogram : result -> int array
(** [h.(i)] counts steps that needed [i+1] fixed-point passes —
    diagnostic for the inverter switching resolution. *)
