(** Circuit netlist builder.

    Nodes are small integers; node 0 is ground.  Elements are added
    imperatively (the natural idiom for netlist construction) and the
    finished netlist is consumed read-only by the DC and transient
    engines. *)

type node = int

val ground : node

type element =
  | Resistor of { a : node; b : node; ohms : float }
  | Capacitor of { a : node; b : node; farads : float }
  | Rl_branch of { a : node; b : node; ohms : float; henries : float }
      (** Series R-L branch (one line segment); [henries = 0] degrades
          to a plain resistor.  Branch current flows a -> b. *)
  | Coupled_rl of {
      a1 : node;
      b1 : node;
      a2 : node;
      b2 : node;
      ohms : float;
      henries : float;
      mutual : float;
    }
      (** Two magnetically coupled series R-L branches (a1 -> b1 and
          a2 -> b2) with equal self inductance and mutual [mutual]
          (0 <= mutual < henries) — one segment of a coupled line
          pair. *)
  | Vsource of { a : node; b : node; stim : Stimulus.t }
      (** Ideal voltage source, positive terminal [a]. *)
  | Isource of { a : node; b : node; stim : Stimulus.t }
      (** Current flows a -> b through the source. *)
  | Inverter of { input : node; output : node; dev : Devices.inverter }

type t

val create : unit -> t

val fresh_node : ?name:string -> t -> node
(** Allocate a new node.  Named nodes can be retrieved with
    [find_node]. *)

val node_count : t -> int
(** Including ground. *)

val find_node : t -> string -> node option

val node_name : t -> node -> string option
(** Reverse lookup of a node's registered name (linear in the name
    table — not for hot loops). *)

val add_resistor : ?name:string -> t -> node -> node -> float -> unit
val add_capacitor : ?name:string -> t -> node -> node -> float -> unit
val add_rl_branch :
  ?name:string -> t -> node -> node -> ohms:float -> henries:float -> unit
val add_inductor : ?name:string -> t -> node -> node -> float -> unit
(** Pure inductor: an RL branch with a negligible series resistance
    (1 micro-ohm) for DC solvability. *)

val add_coupled_rl :
  ?name:string ->
  t ->
  a1:node -> b1:node -> a2:node -> b2:node ->
  ohms:float -> henries:float -> mutual:float ->
  unit
(** See {!element.Coupled_rl}.  Current probes address the two branch
    currents as ["<name>#1"] and ["<name>#2"]. *)

val add_vsource : ?name:string -> t -> node -> node -> Stimulus.t -> unit
val add_isource : ?name:string -> t -> node -> node -> Stimulus.t -> unit
val add_inverter :
  ?name:string -> t -> input:node -> output:node -> Devices.inverter -> unit

val elements : t -> element array
(** In insertion order; index is the element id. *)

val find_element : t -> string -> int option
(** Element id by name (for current probes). *)

val element_name : t -> int -> string
(** Name of element [id] (auto-generated when not provided). *)

val structural_hash : t -> string
(** Hex digest of the deck's *structure*: element kinds and
    connectivity, with every element value (ohms, farads, stimulus
    waveforms, device parameters) excluded — value-only edits hash
    equal, topology edits hash different.  Elements are described by
    node {e names} and digested as a sorted multiset, so two
    equivalent decks that list the same cards in a different order
    (and therefore number their nodes differently) hash equal, as
    long as their nodes are named ({!fresh_node}'s [?name]; the SPICE
    parser names every node after its card token).  Unnamed nodes
    fall back to their ids, which are insertion-order dependent.

    The one structural value: an RL branch with [henries = 0] stamps
    as a plain resistor (no branch-current unknown) and is hashed as
    one.  This is the compiled-deck cache key of the serving layer. *)

val structural_signature : t -> string
(** The exact value-stripped element sequence (insertion order, raw
    node ids).  Equal signatures guarantee the two decks drive
    {!Assembly.of_netlist} through the identical stamp-call sequence —
    same COO patterns, same adjacency, same
    {!Rlc_numerics.Solver.plan}, same sparse symbolic structure — so
    compiled artifacts of one deck are sound to reuse for the other.
    Two decks can hash equal ({!structural_hash}) yet differ here
    (e.g. permuted cards); such aliases must be recompiled, not
    served from a cache. *)

type structural_key = {
  hash : string;  (** {!structural_hash} — finds the deck family *)
  signature : string;  (** {!structural_signature} — rejects aliases *)
}
(** The hash/signature pairing every compiled-artifact reuse decision
    is made on.  {!structural_hash} alone is too coarse (permuted
    decks collide); {!structural_signature} alone is too expensive as
    a table key.  Layers that cache compiled decks (the serving
    layer's {!Rlc_serve.Deck_cache}, the {!Whatif} workspace) key by
    [hash] and verify [signature], and they all obtain the pair
    through this one type so the two halves cannot drift apart. *)

val structural_key : t -> structural_key

val key_reusable : cached:structural_key -> probe:structural_key -> bool
(** True when artifacts compiled for [cached] are sound for [probe]:
    both halves equal.  Equal hashes with different signatures — an
    alias — is exactly the unsafe case this returns [false] for. *)

val validate : t -> unit
(** Checks node indices are in range, element values are physical and
    every non-ground node has a DC path to ground (otherwise the MNA
    matrix is singular).  Raises [Invalid_argument] with a description
    of the first problem found. *)
