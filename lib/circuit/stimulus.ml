type t =
  | Dc of float
  | Step of { v0 : float; v1 : float; t_delay : float; t_rise : float }
  | Pulse of {
      v0 : float;
      v1 : float;
      t_delay : float;
      t_rise : float;
      t_high : float;
      t_fall : float;
      period : float;
    }
  | Pwl of (float * float) list

let validate = function
  | Dc _ -> ()
  | Step { t_delay; t_rise; _ } ->
      if t_delay < 0.0 then invalid_arg "Stimulus: step t_delay < 0";
      if t_rise <= 0.0 then invalid_arg "Stimulus: step t_rise <= 0"
  | Pulse { t_delay; t_rise; t_fall; t_high; period; _ } ->
      if t_delay < 0.0 then invalid_arg "Stimulus: pulse t_delay < 0";
      if t_rise <= 0.0 || t_fall <= 0.0 then
        invalid_arg "Stimulus: pulse edge <= 0";
      if t_high < 0.0 then invalid_arg "Stimulus: pulse t_high < 0";
      if period <= 0.0 then invalid_arg "Stimulus: pulse period <= 0";
      if t_rise +. t_high +. t_fall > period then
        invalid_arg "Stimulus: pulse does not fit its period"
  | Pwl corners ->
      if List.length corners < 1 then invalid_arg "Stimulus: empty PWL";
      (match corners with
      | (t0, _) :: _ when t0 < 0.0 ->
          invalid_arg "Stimulus: PWL starts before t = 0"
      | _ -> ());
      let rec check = function
        | (t0, _) :: ((t1, _) :: _ as rest) ->
            if t1 <= t0 then invalid_arg "Stimulus: PWL times not increasing";
            check rest
        | [ _ ] | [] -> ()
      in
      check corners

let ramp ~from_v ~to_v ~t0 ~dt t =
  if t <= t0 then from_v
  else if t >= t0 +. dt then to_v
  else from_v +. ((to_v -. from_v) *. (t -. t0) /. dt)

let eval stim t =
  match stim with
  | Dc v -> v
  | Step { v0; v1; t_delay; t_rise } ->
      ramp ~from_v:v0 ~to_v:v1 ~t0:t_delay ~dt:t_rise t
  | Pulse { v0; v1; t_delay; t_rise; t_high; t_fall; period } ->
      if t <= t_delay then v0
      else begin
        let phase = Float.rem (t -. t_delay) period in
        if phase < t_rise then ramp ~from_v:v0 ~to_v:v1 ~t0:0.0 ~dt:t_rise phase
        else if phase < t_rise +. t_high then v1
        else if phase < t_rise +. t_high +. t_fall then
          ramp ~from_v:v1 ~to_v:v0 ~t0:(t_rise +. t_high) ~dt:t_fall phase
        else v0
      end
  | Pwl corners ->
      let rec go = function
        | [] -> 0.0
        | [ (_, v) ] -> v
        | (t0, v0) :: ((t1, v1) :: _ as rest) ->
            if t <= t0 then v0
            else if t <= t1 then ramp ~from_v:v0 ~to_v:v1 ~t0 ~dt:(t1 -. t0) t
            else go rest
      in
      (match corners with
      | (t0, v0) :: _ when t < t0 -> v0
      | _ -> go corners)

let square_wave ~vdd ~period ?t_rise () =
  let t_rise = match t_rise with Some x -> x | None -> period /. 100.0 in
  let edge = t_rise in
  let t_high = (period /. 2.0) -. edge in
  Pulse
    {
      v0 = 0.0;
      v1 = vdd;
      t_delay = 0.0;
      t_rise = edge;
      t_high;
      t_fall = edge;
      period;
    }
