(** Incremental what-if evaluation: compile a netlist once, then serve
    thousands of near-identical re-evaluations cheaply.

    The paper's (h, k) performance-optimization methodology — and
    every Monte-Carlo, corner and sweep built on it — is a what-if
    loop: the same RLC system solved over and over with a handful of
    element values changed per point.  Re-stamping and re-factoring
    from scratch per point wastes almost all of that work.  This
    module compiles the deck once into a {e workspace} — the
    {!Assembly} stamp IR, the shared {!Rlc_numerics.Solver.plan}, the
    sparse symbolic analysis and the factored base operating point —
    and serves each perturbed evaluation by a Sherman-Morrison-
    Woodbury rank-k update ({!Rlc_numerics.Update}) over the base
    factor: a change to one segment's r/l/c touches O(1) stamp
    positions, so the perturbed solve costs k extra triangular solves
    instead of a fresh LU.

    Exactness guard: the Woodbury identity loses digits when the
    k x k capacitance matrix is ill-conditioned, and stops paying when
    k grows.  When the update count exceeds [max_rank] or the
    condition estimate exceeds [condition_limit], the evaluation falls
    back to a numeric refactor that still reuses the sparse symbolic
    analysis (counted on [whatif.fallback] / [whatif.refactor];
    fast-path evaluations count on [whatif.update]).

    On the same workspace, {!gradient} computes adjoint sensitivities:
    generalizing {!Dc.sensitivity}'s one-LU-per-source trick, the
    gradient of a scalar objective with respect to {e all} n
    parameters costs one forward + one transpose solve (three of each
    for the moment-based delay), instead of the 2n solves of central
    differences.

    Inverter logic states are settled once at compile time and held
    fixed across perturbations (the same small-signal assumption as
    {!Dc.sensitivity}). *)

open Rlc_numerics

type t
(** A compiled what-if workspace.  Not domain-safe: workspaces cache
    lazily (z-columns, transpose factors, AC points); share one per
    domain or keep evaluation on one domain. *)

val compile :
  ?max_rank:int ->
  ?condition_limit:float ->
  ?f:float ->
  Netlist.t ->
  t
(** Compile and factor once.  [max_rank] (default 8) bounds the update
    rank served by the fast path; 0 forces every perturbed evaluation
    onto the refactor path (the from-scratch baseline the bench gates
    against).  [condition_limit] (default 1e8) is the exactness guard
    on the Woodbury capacitance matrix.  [f] (default 0.5) is the
    threshold fraction of the {!target.Delay} objective.  Raises like
    {!Dc.make} (singular deck, unsettled inverters) and
    [Invalid_argument] on bad arguments. *)

val assembly : t -> Assembly.t

val key : t -> Netlist.structural_key
(** The deck's structural identity — the same hash/signature pairing
    the serving layer's compiled-deck cache keys by, obtained through
    the one shared {!Netlist.structural_key} helper. *)

(** {1 Parameters} *)

type param
(** A handle to one perturbable element value, resolved once to its
    O(1) stamp positions. *)

val param : t -> string -> [ `R | `L | `C | `M ] -> param
(** [param t name kind] resolves element [name]'s value of [kind]:
    [`R] ohms (resistor or series branch resistance), [`C] farads,
    [`L] self-inductance henries, [`M] mutual inductance.  Handles are
    memoized — repeated calls return the same handle, keeping the
    workspace's per-direction solve caches warm.  Raises
    [Invalid_argument] for an unknown element or a kind the element
    does not have. *)

val base_value : param -> float
(** The unperturbed netlist value. *)

(** {1 Evaluation} *)

type target =
  | Dc_voltage of Netlist.node
      (** operating-point voltage at a node *)
  | Delay of Netlist.node
      (** two-pole (AWE Padé) threshold-crossing delay, seconds, of
          the step response at a node driven by the deck's first
          source; the two poles come from the first three moments of
          the transfer, matching {!Rlc_core.Delay.of_coeffs} on a
          single stage *)
  | Ac_mag of Netlist.node * float
      (** |V(node)| at angular frequency omega (rad/s) for a unit
          drive at the deck's first source *)

val evaluate : ?set:(param * float) list -> t -> target -> float
(** [evaluate ~set t target] evaluates [target] with each listed
    parameter set to the given {e absolute} value (unlisted parameters
    keep their base values; list each parameter at most once).
    Returns [nan] for non-physical settings (e.g. a non-positive
    resistance), a singular perturbed system, or an unstable delay —
    the rejection convention {!Rlc_numerics.Nelder_mead} expects.
    The base point ([set] empty or all-base values) is served from the
    compiled operating point without any solve. *)

val gradient :
  ?set:(param * float) list -> t -> target -> wrt:param array -> float array
(** Adjoint gradient of [target] with respect to each parameter in
    [wrt], evaluated at [set] (default: the base point).  One forward
    + one transpose solve regardless of [Array.length wrt] (three of
    each for [Delay], which needs three moments).  Counted on
    [whatif.adjoint]. *)

type stats = { updates : int; refactors : int; fallbacks : int }
(** [updates]: evaluations served by the rank-k fast path.
    [refactors]: evaluations served by a numeric refactor.
    [fallbacks]: the subset of refactors forced by the exactness
    guard (rank over [max_rank], condition over [condition_limit], or
    a singular capacitance matrix). *)

val stats : t -> stats
(** Plain-int mirror of the [whatif.*] counters for this workspace,
    independent of {!Rlc_instr.Metrics} recording. *)

(** {1 The unified objective interface}

    One evaluation shape for every optimizer and sweep in the
    repository: a {e workspace} built once, and an [eval] function
    from that workspace and a parameter vector to a scalar (or to a
    residual vector, for Newton).  {!objective} instantiates it over a
    compiled circuit workspace; {!custom} wraps any precomputed
    context — the migration path for the analytic stage-model loops
    ({!Rlc_core.Variation}, {!Rlc_core.Corners}, {!Rlc_core.Rlc_opt})
    that previously each invented their own closure shape. *)

type 'w objective = {
  workspace : 'w;  (** precompiled, shared across evaluations *)
  eval : 'w -> float array -> float;
      (** pure evaluation at a parameter vector; [nan] rejects *)
}

type 'w residuals = {
  rworkspace : 'w;
  reval : 'w -> float array -> float array;  (** Newton residual shape *)
}

val objective : t -> target -> wrt:param array -> t objective
(** The circuit instantiation: [eval] maps a vector of absolute values
    for [wrt] onto {!evaluate} with those settings. *)

val custom : workspace:'w -> eval:('w -> float array -> float) -> 'w objective

val custom_residuals :
  workspace:'w -> eval:('w -> float array -> float array) -> 'w residuals

val eval : 'w objective -> float array -> float
val eval_residuals : 'w residuals -> float array -> float array

val minimize :
  ?max_iter:int ->
  ?ftol:float ->
  ?xtol:float ->
  ?initial_step:float ->
  'w objective ->
  x0:float array ->
  Nelder_mead.result
(** {!Rlc_numerics.Nelder_mead.minimize_ctx} over the objective's
    workspace. *)

val solve_residuals :
  ?max_iter:int ->
  ?tol:float ->
  ?lower:float array ->
  ?upper:float array ->
  'w residuals ->
  x0:float array ->
  Newton.result
(** {!Rlc_numerics.Newton.solve_ctx} over the residuals' workspace. *)
