type node = int

let ground = 0

type element =
  | Resistor of { a : node; b : node; ohms : float }
  | Capacitor of { a : node; b : node; farads : float }
  | Rl_branch of { a : node; b : node; ohms : float; henries : float }
  | Coupled_rl of {
      a1 : node;
      b1 : node;
      a2 : node;
      b2 : node;
      ohms : float;
      henries : float;
      mutual : float;
    }
  | Vsource of { a : node; b : node; stim : Stimulus.t }
  | Isource of { a : node; b : node; stim : Stimulus.t }
  | Inverter of { input : node; output : node; dev : Devices.inverter }

type t = {
  mutable n_nodes : int;
  mutable elems : element list; (* reversed *)
  mutable n_elems : int;
  node_names : (string, node) Hashtbl.t;
  elem_names : (string, int) Hashtbl.t;
  elem_name_of_id : (int, string) Hashtbl.t;
}

let create () =
  {
    n_nodes = 1;
    elems = [];
    n_elems = 0;
    node_names = Hashtbl.create 16;
    elem_names = Hashtbl.create 16;
    elem_name_of_id = Hashtbl.create 16;
  }

let fresh_node ?name t =
  let n = t.n_nodes in
  t.n_nodes <- n + 1;
  (match name with
  | None -> ()
  | Some nm ->
      if Hashtbl.mem t.node_names nm then
        invalid_arg ("Netlist.fresh_node: duplicate node name " ^ nm);
      Hashtbl.add t.node_names nm n);
  n

let node_count t = t.n_nodes
let find_node t name = Hashtbl.find_opt t.node_names name

let check_node t n ctx =
  if n < 0 || n >= t.n_nodes then
    invalid_arg (Printf.sprintf "Netlist.%s: node %d out of range" ctx n)

let add_element ?name t e =
  let id = t.n_elems in
  t.elems <- e :: t.elems;
  t.n_elems <- id + 1;
  let nm =
    match name with
    | Some nm ->
        if Hashtbl.mem t.elem_names nm then
          invalid_arg ("Netlist: duplicate element name " ^ nm);
        nm
    | None -> Printf.sprintf "_e%d" id
  in
  Hashtbl.add t.elem_names nm id;
  Hashtbl.add t.elem_name_of_id id nm

let add_resistor ?name t a b ohms =
  check_node t a "add_resistor";
  check_node t b "add_resistor";
  if ohms <= 0.0 then invalid_arg "Netlist.add_resistor: ohms <= 0";
  add_element ?name t (Resistor { a; b; ohms })

let add_capacitor ?name t a b farads =
  check_node t a "add_capacitor";
  check_node t b "add_capacitor";
  if farads <= 0.0 then invalid_arg "Netlist.add_capacitor: farads <= 0";
  add_element ?name t (Capacitor { a; b; farads })

let add_rl_branch ?name t a b ~ohms ~henries =
  check_node t a "add_rl_branch";
  check_node t b "add_rl_branch";
  if ohms <= 0.0 then invalid_arg "Netlist.add_rl_branch: ohms <= 0";
  if henries < 0.0 then invalid_arg "Netlist.add_rl_branch: henries < 0";
  add_element ?name t (Rl_branch { a; b; ohms; henries })

let add_inductor ?name t a b henries =
  if henries <= 0.0 then invalid_arg "Netlist.add_inductor: henries <= 0";
  add_rl_branch ?name t a b ~ohms:1e-6 ~henries

let add_coupled_rl ?name t ~a1 ~b1 ~a2 ~b2 ~ohms ~henries ~mutual =
  List.iter (fun n -> check_node t n "add_coupled_rl") [ a1; b1; a2; b2 ];
  if ohms <= 0.0 then invalid_arg "Netlist.add_coupled_rl: ohms <= 0";
  if henries <= 0.0 then invalid_arg "Netlist.add_coupled_rl: henries <= 0";
  if mutual < 0.0 || mutual >= henries then
    invalid_arg "Netlist.add_coupled_rl: need 0 <= mutual < henries";
  add_element ?name t (Coupled_rl { a1; b1; a2; b2; ohms; henries; mutual })

let add_vsource ?name t a b stim =
  check_node t a "add_vsource";
  check_node t b "add_vsource";
  Stimulus.validate stim;
  add_element ?name t (Vsource { a; b; stim })

let add_isource ?name t a b stim =
  check_node t a "add_isource";
  check_node t b "add_isource";
  Stimulus.validate stim;
  add_element ?name t (Isource { a; b; stim })

let add_inverter ?name t ~input ~output dev =
  check_node t input "add_inverter";
  check_node t output "add_inverter";
  if input = output then invalid_arg "Netlist.add_inverter: input = output";
  add_element ?name t (Inverter { input; output; dev })

let elements t = Array.of_list (List.rev t.elems)

let node_name t n =
  Hashtbl.fold
    (fun name id acc -> if id = n then Some name else acc)
    t.node_names None

(* ---------------- structural identity ---------------- *)

(* A deck's structure is its element kinds and connectivity; values
   (ohms, farads, stimulus waveforms, device parameters) are excluded.
   The one value that IS structural: an RL branch with henries = 0
   stamps as a plain resistor (no branch-current unknown), so it gets
   the resistor's kind tag. *)
let descriptor label e =
  match e with
  | Resistor { a; b; _ } -> Printf.sprintf "R(%s,%s)" (label a) (label b)
  | Capacitor { a; b; _ } -> Printf.sprintf "C(%s,%s)" (label a) (label b)
  | Rl_branch { a; b; henries; _ } ->
      if henries = 0.0 then Printf.sprintf "R(%s,%s)" (label a) (label b)
      else Printf.sprintf "B(%s,%s)" (label a) (label b)
  | Coupled_rl { a1; b1; a2; b2; _ } ->
      Printf.sprintf "P(%s,%s,%s,%s)" (label a1) (label b1) (label a2)
        (label b2)
  | Vsource { a; b; _ } -> Printf.sprintf "V(%s,%s)" (label a) (label b)
  | Isource { a; b; _ } -> Printf.sprintf "I(%s,%s)" (label a) (label b)
  | Inverter { input; output; _ } ->
      Printf.sprintf "X(%s,%s)" (label input) (label output)

let structural_hash t =
  (* node labels by *name* where available so that two decks listing
     the same cards in a different order — which assigns different
     node ids — still describe each element identically; the sorted
     multiset then erases the card order itself *)
  let names = Array.make t.n_nodes None in
  Hashtbl.iter
    (fun name id -> if id >= 0 && id < t.n_nodes then names.(id) <- Some name)
    t.node_names;
  let label n =
    if n = ground then "0"
    else
      match names.(n) with Some nm -> nm | None -> Printf.sprintf "#%d" n
  in
  let ds = Array.to_list (Array.map (descriptor label) (elements t)) in
  let ds = List.sort String.compare ds in
  Digest.to_hex (Digest.string (String.concat ";" ds))

let structural_signature t =
  let label n = string_of_int n in
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "n%d" t.n_nodes);
  Array.iter
    (fun e ->
      Buffer.add_char b ';';
      Buffer.add_string b (descriptor label e))
    (elements t);
  Buffer.contents b

(* The hash/signature PAIRING used by every layer that reuses compiled
   artifacts across decks (the serving layer's deck cache, the what-if
   workspace).  Keeping the pair in one place means a cache and a
   workspace can never disagree about what "same deck" means: the
   coarse order-independent hash finds the family, the exact signature
   rejects aliases within it. *)
type structural_key = { hash : string; signature : string }

let structural_key t =
  { hash = structural_hash t; signature = structural_signature t }

let key_reusable ~cached ~probe =
  String.equal cached.hash probe.hash
  && String.equal cached.signature probe.signature

let find_element t name = Hashtbl.find_opt t.elem_names name

let element_name t id =
  match Hashtbl.find_opt t.elem_name_of_id id with
  | Some nm -> nm
  | None -> invalid_arg (Printf.sprintf "Netlist.element_name: no element %d" id)

(* Every non-ground node must reach ground through elements that carry
   DC current (everything except capacitors); otherwise MNA is
   singular. *)
let validate t =
  let elems = elements t in
  let adj = Array.make t.n_nodes [] in
  let connect a b =
    adj.(a) <- b :: adj.(a);
    adj.(b) <- a :: adj.(b)
  in
  Array.iter
    (fun e ->
      match e with
      | Resistor { a; b; _ } | Rl_branch { a; b; _ } | Vsource { a; b; _ } ->
          connect a b
      | Coupled_rl { a1; b1; a2; b2; _ } ->
          connect a1 b1;
          connect a2 b2
      | Inverter { input; output; _ } ->
          (* the output stage ties the output to the rails *)
          connect output ground;
          (* the gate is purely capacitive: no DC path via input *)
          ignore input
      | Capacitor _ | Isource _ -> ())
    elems;
  let visited = Array.make t.n_nodes false in
  let rec dfs n =
    if not visited.(n) then begin
      visited.(n) <- true;
      List.iter dfs adj.(n)
    end
  in
  dfs ground;
  for n = 1 to t.n_nodes - 1 do
    if not visited.(n) then
      invalid_arg
        (Printf.sprintf "Netlist.validate: node %d has no DC path to ground" n)
  done
