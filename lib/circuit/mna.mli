(** Explicit MNA descriptor of a netlist: the matrix quadruple behind

    {v (G + sC) x = B u,   y = L^T x v}

    The transient engine never forms these matrices — it stamps
    companion models straight into a factorisation.  The AC engine and
    the PRIMA reducer need the frequency-domain picture instead, so
    this module exports it once per netlist: [G] collects conductances
    and incidence rows, [C] collects capacitances and inductances, [B]
    maps the independent sources onto the unknowns and an output
    selector [l] (built by {!output_of_node}) reads a node voltage out
    of the solution.

    Unknown ordering: node voltages first (node [k] at index [k - 1],
    ground eliminated), then one branch current per inductive element
    ({!Netlist.element.Rl_branch} with a nonzero inductance contributes
    one, {!Netlist.element.Coupled_rl} two), then one current per
    voltage source.  The inductor currents are explicit unknowns — the
    companion-model trick of the transient engine has no meaning at a
    single complex frequency — which is why the dimensions here exceed
    the transient engine's [nodes - 1 + vsources].

    Inverters are linearised at their output stage: the gate and drain
    capacitances stamp into [C] and the on-resistance into [G], while
    the switching source itself contributes nothing (small-signal
    analysis of a held logic state).

    Since the stamp/assembly refactor the dense matrices are
    materialised from the shared sparse IR ({!Assembly.t}, kept in the
    [asm] field): PRIMA's congruence projection still wants dense
    [G]/[C]/[B], while the solves themselves ({!solve_s}, {!dc_gain},
    {!moments}) go through the IR's shared
    {!Rlc_numerics.Solver.plan}. *)

open Rlc_numerics

type source_kind = Assembly.source_kind = Voltage | Current

type input = Assembly.input = {
  name : string;  (** netlist element name *)
  kind : source_kind;
  stim : Stimulus.t;  (** the deck's waveform, for DC levels *)
}

type t = private {
  size : int;  (** unknown count (rows of G, C, B) *)
  n_nodes : int;  (** netlist nodes including ground *)
  n_currents : int;  (** inductor branch-current unknowns *)
  g : Matrix.t;
  c : Matrix.t;
  b : Matrix.t;  (** [size] x number of sources *)
  inputs : input array;  (** column order of [b] *)
  asm : Assembly.t;  (** the sparse stamp IR the matrices came from *)
}

val of_netlist : Netlist.t -> t
(** Validates the netlist (see {!Netlist.validate}) and stamps the
    descriptor.  Raises [Invalid_argument] on an empty or non-physical
    netlist. *)

val unknown_of_node : t -> Netlist.node -> int
(** Index of a node voltage among the unknowns.  Raises
    [Invalid_argument] on ground or an out-of-range node. *)

val output_of_node : t -> Netlist.node -> float array
(** Selector vector [l] with a single 1 at the node's unknown:
    [y = l^T x] is that node's voltage. *)

val input_index : t -> string -> int option
(** Column of [b] belonging to the named source element. *)

val solve_s : t -> input:int -> s:Cx.t -> Cx.t array
(** Full phasor solution [(G + sC)^-1 B e_input] at one complex
    frequency with a unit source, through
    {!Assembly.solve_complex} — complex banded LU in RCM order when
    the structure is narrow (O(n·b^2) per point), dense complex LU
    otherwise.  Raises [Clu.Singular] or [Cbanded.Singular] at a
    frequency where the matrix pencil is singular and
    [Invalid_argument] on a bad input index. *)

val transfer : t -> input:int -> output:float array -> Cx.t -> Cx.t
(** [transfer m ~input ~output s] is [l^T (G + sC)^-1 B e_input] — the
    transfer function from a unit-amplitude source to an output
    selector, evaluated at [s].  One complex factorisation per call;
    for sweeps over many outputs share a {!solve_s} solution
    instead. *)

val dc_gain : t -> input:int -> output:float array -> float
(** [transfer] at [s = 0], computed with the real factorisation of the
    shared plan ({!Assembly.factor_g}). *)

val moments : t -> input:int -> output:float array -> order:int -> float array
(** First [order + 1] Taylor coefficients of the transfer function
    about [s = 0]: [m_k = l^T (-G^-1 C)^k G^-1 B e_input], so
    [H(s) = m_0 + m_1 s + m_2 s^2 + ...].  This is the moment sequence
    AWE and PRIMA match; cross-checked against
    [Rlc_tree.Moments.voltage_moments] in the test suite. *)
