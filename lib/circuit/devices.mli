(** Behavioural device models.

    The CMOS inverter follows the abstraction the paper's analysis
    itself uses (Section 2.1): a linear output resistance switching the
    output node towards VDD or ground depending on the input against a
    threshold, with linear input and output capacitances.  This is the
    model whose false-switching behaviour Section 3.3.1 studies. *)

type inverter = {
  r_on : float;  (** output (channel) resistance, ohm *)
  c_in : float;  (** gate input capacitance, F *)
  c_out : float;  (** output (drain) parasitic capacitance, F *)
  vdd : float;  (** supply, V *)
  vth : float;  (** switching threshold, V *)
  t_transition : float;
      (** time for the internal drive to traverse the full rail-to-rail
          swing (finite switching speed of the real device); 0 gives an
          ideal relay.  Fast ideal edges over-excite line ringing, so a
          physical [t_transition] is essential for the Section 3.3
          false-switching experiments to calibrate. *)
}

val inverter :
  r_on:float -> c_in:float -> c_out:float -> vdd:float -> ?vth:float ->
  ?t_transition:float -> unit -> inverter
(** [vth] defaults to [vdd / 2], [t_transition] to 0 (ideal relay).
    Validates positivity and 0 < vth < vdd. *)

val inverter_of_driver :
  Rlc_tech.Driver.t -> k:float -> vdd:float -> ?vth:float ->
  ?t_transition:float -> unit -> inverter
(** Sized inverter: r_on = rs/k, c_in = c0*k, c_out = cp*k.
    [t_transition] defaults to the driver's size-independent intrinsic
    delay rs * (c0 + cp). *)

val drives_high : inverter -> v_in:float -> bool
(** Inverting logic: true when [v_in < vth]. *)

val output_drive : inverter -> v_in:float -> float
(** Voltage the output stage pulls towards: vdd or 0. *)
