(** A SPICE-flavoured netlist parser for the transient engine.

    Supported card types (case-insensitive, [*] starts a comment,
    values take SPICE magnitude suffixes f p n u m k meg g t and an
    optional trailing unit like "pF"):

    {v
    Rname n1 n2 value                    resistor
    Cname n1 n2 value                    capacitor
    Lname n1 n2 value                    inductor
    Bname n1 n2 r=.. l=..                series R-L branch (totals)
    Wname n1 n2 r=.. l=.. c=.. len=.. seg=..
                                         distributed RLC line (expanded
                                         into a ladder; r/l/c per metre)
    Pname a1 b1 a2 b2 r=.. l=.. m=..     coupled R-L branch pair (totals)
    Vname n+ n- DC value                 sources; also
    Vname n+ n- PULSE(v0 v1 td tr tf pw per)
    Vname n+ n- PWL(t1 v1 t2 v2 ...)
    Iname n+ n- DC value                 current source (same waveforms)
    Xname in out INV r_on=.. c_in=.. c_out=.. vdd=.. [vth=..] [ttr=..]
                                         threshold inverter
    .tran dt t_end                       transient analysis request
    .ac dec n fstart fstop               AC sweep, n points per decade
    .probe v(node) i(element) ...        what to record
    .end                                 optional terminator
    v}

    Node names are arbitrary tokens; "0" and "gnd" are ground. *)

exception Parse_error of int * string
(** Line number (1-based) and description. *)

type ac_spec = { points_per_decade : int; fstart : float; fstop : float }
(** Logarithmic sweep request from an [.ac dec] card; feed it to
    {!Ac.decade_grid}. *)

type deck = {
  netlist : Netlist.t;
  tran : (float * float) option;  (** (dt, t_end) from [.tran] *)
  ac : ac_spec option;  (** sweep from [.ac] *)
  probes : Transient.probe list;
  title : string option;  (** first line when it is not a card *)
}

val node_of_name : deck -> string -> Netlist.node option
(** Look up a node by its netlist-file name ("0"/"gnd" map to 0). *)

val name_of_node : deck -> Netlist.node -> string option
(** Reverse lookup (ground reports "0"). *)

val parse_string : string -> deck
val parse_file : string -> deck

val parse_value : string -> float
(** Parse one SPICE number ("4.4k", "100p", "2.5pF", "1meg") — exposed
    for tests.  Raises [Failure] on malformed input. *)

val run : ?config:Transient.Config.t -> deck -> Transient.result
(** Run the deck's transient analysis with [config] (default
    {!Transient.Config.default}).  Raises [Invalid_argument] when the
    deck has no [.tran] card or no probes. *)
