(** The one stamping layer: a netlist compiled once into a sparse
    triplet (COO) stamp IR, from which every analysis materialises the
    system it needs.

    Historically the repository stamped the MNA system three separate
    times — dense (G, C, B) matrices for the frequency domain, a
    private dense stamp inside the DC solver, and a callback-based
    stamp inside the transient engine.  This module replaces all of
    them: {!Coo} is the primitive stamp target (the conductance
    pattern {!Coo.stamp_g} lives here and nowhere else), and
    {!of_netlist} compiles a netlist into the (G, C, B) pattern with
    per-element value slots plus the {!Rlc_numerics.Solver.plan}
    (reverse Cuthill-McKee ordering + bandwidth + backend choice) that
    every consumer shares.  Dense, banded(+RCM) and complex-banded
    instantiations all come from the same IR, so they agree entry for
    entry by construction.

    Unknown ordering matches the classic MNA convention: node voltages
    first (node [k] at index [k - 1], ground eliminated), then one
    branch current per inductive element, then one current per voltage
    source.  Branch equations are stamped in the skew form
    ([-v_a + v_b + R i + sL i = 0] against [+i] incidence in the node
    rows) so that [G + G^T] and [C] stay positive semidefinite — the
    structure PRIMA's congruence projection needs. *)

open Rlc_numerics

(** Sparse triplet (COO) accumulator: the stamp target shared by this
    module (netlist compilation) and the transient engine (companion
    models, whose values depend on the integration method and dt).
    Duplicate (i,j) stamps accumulate into one slot in first-stamp
    order, exactly like stamping into a dense matrix. *)
module Coo : sig
  type t

  val create : size:int -> t
  (** Empty [size] x [size] accumulator.  Raises [Invalid_argument]
      when [size <= 0]. *)

  val size : t -> int

  val nnz : t -> int
  (** Distinct (i,j) slots stamped so far. *)

  val stamp_g : t -> Netlist.node -> Netlist.node -> float -> unit
  (** [stamp_g coo a b v] stamps the two-terminal conductance pattern
      between nodes [a] and [b] (ground rows/columns eliminated):
      [+v] on both diagonals, [-v] on both off-diagonals.  The single
      conductance-stamp implementation in the repository. *)

  val stamp_cross : t ->
    a:Netlist.node -> b:Netlist.node ->
    ma:Netlist.node -> mb:Netlist.node -> float -> unit
  (** Cross-coupling pattern between branch (a,b) and branch (ma,mb)
      — the mutual term of a coupled-RL companion model: [+v] into
      (a,ma) and (b,mb), [-v] into (a,mb) and (b,ma), ground
      eliminated. *)

  val stamp_at : t -> int -> int -> float -> unit
  (** Accumulate at raw unknown indices (incidence rows, branch
      diagonals).  Raises [Invalid_argument] out of bounds. *)

  val iter : t -> (int -> int -> float -> unit) -> unit
  (** One call per distinct slot with its accumulated value, in
      first-stamp order. *)

  val adjacency_into : t -> int list array -> unit
  (** Append each off-diagonal slot (both directions) to an adjacency
      under construction; callers [List.sort_uniq] afterwards.  Used
      to form pattern unions across several accumulators. *)

  val adjacency : t -> int list array
  (** The deduplicated undirected adjacency of this accumulator alone
      — the shape {!Rlc_numerics.Solver.plan} consumes. *)

  val to_dense : t -> Matrix.t
end

type source_kind = Voltage | Current

type input = {
  name : string;  (** netlist element name *)
  kind : source_kind;
  stim : Stimulus.t;  (** the deck's waveform, for DC levels *)
}

type t = private {
  size : int;  (** unknown count *)
  n_nodes : int;  (** netlist nodes including ground *)
  n_currents : int;  (** inductor branch-current unknowns *)
  g : Coo.t;  (** conductances + incidence rows *)
  c : Coo.t;  (** capacitances + (mutual) inductances *)
  b_rows : int array;  (** source incidence triplets: rows, *)
  b_cols : int array;  (** input columns, *)
  b_vals : float array;  (** values *)
  inputs : input array;  (** column order of B *)
  current_rows : int array array;
      (** extra MNA rows owned by each element id: the branch-current
          row(s) of an inductive element (one for {!Netlist.element.Rl_branch},
          two for {!Netlist.element.Coupled_rl}) or the current row of
          a voltage source; [[||]] for elements with node unknowns
          only.  This is how a value perturbation finds its O(1) stamp
          positions without re-walking the netlist. *)
  adj : int list array;  (** union pattern of G and C *)
  plan : Solver.plan;  (** the shared structure analysis (RCM +
      bandwidth + backend) every consumer reuses *)
}

val of_netlist : ?plan:Solver.plan -> ?validate:bool -> Netlist.t -> t
(** Validates the netlist (see {!Netlist.validate}) and compiles the
    stamp IR.  Unlike the frequency-domain descriptor {!Mna.t}, a
    source-free netlist (e.g. a latch of inverters, solved for its DC
    point) is accepted; only an empty system raises
    [Invalid_argument].

    [?plan] substitutes a previously computed structure analysis for
    the fresh [Solver.plan] call — sound only when it was built from a
    deck with the same {!Netlist.structural_signature} (the serving
    layer's compiled-deck cache guarantees this); a size mismatch
    raises [Invalid_argument], any deeper mismatch is on the caller.
    [?validate:false] skips {!Netlist.validate} for the same
    signature-match reason: topological validity is a structural
    property, so revalidating a value-only variant buys nothing. *)

val dense_g : t -> Matrix.t
val dense_c : t -> Matrix.t
(** Dense materialisations of the IR (entry-identical to stamping the
    elements straight into a dense matrix). *)

val dense_b : t -> Matrix.t
(** [size] x [max 1 (Array.length inputs)] dense B. *)

val b_column : t -> int -> float array
(** Column of B for one input.  Raises [Invalid_argument] on a bad
    index. *)

val iter_b : t -> (int -> int -> float -> unit) -> unit
(** The B triplets: [f row input_column value]. *)

val cfill : t -> Cx.t -> (int -> int -> Cx.t -> unit) -> unit
(** [cfill t s add] streams the entries of [G + sC] through [add] in
    natural coordinates — the fill callback shape
    {!Rlc_numerics.Solver.cfactor_with} consumes.  Exposed so
    incremental consumers ({!Whatif}) can append their own delta
    stamps to the base pattern under one factorisation. *)

val factor_g : ?symbolic:Solver.symbolic -> t -> Solver.factor
(** Factor G under the shared plan (banded + RCM when the band is
    narrow).  On the sparse backend [?symbolic] replays a previous
    analysis of the same G pattern (value-only restamps go straight to
    numeric refactor; see {!Rlc_numerics.Solver.factor_with}).  Raises
    {!Rlc_numerics.Lu.Singular}, {!Rlc_numerics.Banded.Singular} or
    {!Rlc_numerics.Sparse.Singular}. *)

val solve_g : t -> Solver.factor -> float array -> float array
(** Solve [G x = b] in natural unknown order with a {!factor_g}
    factor. *)

val solve_complex : ?backend:Solver.backend -> t -> s:Cx.t
  -> rhs:Cx.t array -> Cx.t array
(** One frequency point: assemble [G + sC] in complex banded (RCM
    ordered), sparse (min-degree ordered) or dense form, factor, and
    solve against [rhs].  With the plan's banded backend this costs
    O(n·b^2) per call instead of the O(n^3) of a dense complex LU.
    Allocates its own storage, so concurrent calls from a
    {!Rlc_parallel.Pool} fan-out are safe.  [backend] overrides the
    shared plan's choice (the AC bench times the dense path through
    exactly this override).  Raises {!Rlc_numerics.Clu.Singular},
    {!Rlc_numerics.Cbanded.Singular} or {!Rlc_numerics.Sparse.Singular}
    at a frequency where the pencil is singular.

    For a *sweep* of frequency points against one assembly, build a
    {!cengine} instead: on the sparse backend it analyses the pattern
    once and refactors per point. *)

type cengine
(** A complex sweep engine: the shared plan plus (on the sparse
    backend) one symbolic analysis taken at a reference frequency and
    replayed at every point.  Immutable — build it before a
    {!Rlc_parallel.Pool} fan-out and share it across domains; that
    also pins the pivot sequence to the reference frequency, keeping
    sweeps deterministic at any domain count. *)

val cengine :
  ?backend:Solver.backend -> ?symbolic:Solver.symbolic -> t ->
  s_ref:Cx.t -> cengine
(** [cengine t ~s_ref] builds the engine, analysing at [s_ref]
    (sweeps pass their first frequency point).  Raises like
    {!solve_complex} when the pencil is singular at [s_ref].
    [?symbolic] adopts a previous engine's analysis instead of
    analysing at [s_ref] (skipping the reference factorisation
    entirely) — sound only for an assembly with the identical stamp
    pattern, i.e. the same {!Netlist.structural_signature}. *)

val cengine_plan : cengine -> Solver.plan

val cengine_symbolic : cengine -> Solver.symbolic option
(** The engine's sparse symbolic analysis ([None] on the dense/banded
    backends) — what a compiled-deck cache stores and feeds back into
    {!cengine}'s [?symbolic]. *)

val cengine_scratch : cengine -> Solver.cscratch
(** Fresh solver scratch sized for this engine — one per domain. *)

val cengine_solve_into :
  cengine -> Solver.cscratch -> s:Cx.t -> rhs:Cx.t array -> x:Cx.t array
  -> unit
(** One frequency point through the engine: assemble [G + sC], factor
    (reusing the engine's symbolic analysis on the sparse backend —
    counted on [solver.sparse.crefactor] instead of [canalyze]) and
    solve [rhs] into caller-owned [x] ([rhs] is read-only, so sharing
    it across domains is safe; [rhs] and [x] may alias). *)

val cengine_solve : cengine -> s:Cx.t -> rhs:Cx.t array -> Cx.t array
(** Allocating convenience wrapper over {!cengine_solve_into}. *)
