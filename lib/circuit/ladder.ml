type spec = {
  r : float;
  l : float;
  c : float;
  length : float;
  segments : int;
}

let make ?(name_prefix = "line") netlist spec ~from_node ~to_node =
  if spec.length <= 0.0 then invalid_arg "Ladder.make: length <= 0";
  if spec.r <= 0.0 || spec.c <= 0.0 || spec.l < 0.0 then
    invalid_arg "Ladder.make: non-physical line parameters";
  if spec.segments < 1 then invalid_arg "Ladder.make: segments < 1";
  let n = spec.segments in
  let dh = spec.length /. float_of_int n in
  let r_seg = spec.r *. dh in
  let l_seg = spec.l *. dh in
  let c_seg = spec.c *. dh in
  (* half capacitor at the input, half at the far end; full shunt at
     every internal joint: total capacitance = c * length exactly *)
  Netlist.add_capacitor
    ~name:(Printf.sprintf "%s_cin" name_prefix)
    netlist from_node Netlist.ground (c_seg /. 2.0);
  let rec build i node =
    if i = n then node
    else begin
      let next =
        if i = n - 1 then to_node
        else
          Netlist.fresh_node
            ~name:(Printf.sprintf "%s_n%d" name_prefix (i + 1))
            netlist
      in
      Netlist.add_rl_branch
        ~name:(Printf.sprintf "%s_seg%d" name_prefix i)
        netlist node next ~ohms:r_seg ~henries:l_seg;
      let shunt = if i = n - 1 then c_seg /. 2.0 else c_seg in
      Netlist.add_capacitor
        ~name:(Printf.sprintf "%s_c%d" name_prefix (i + 1))
        netlist next Netlist.ground shunt;
      build (i + 1) next
    end
  in
  ignore (build 0 from_node)

let input_current_probe ?(name_prefix = "line") () =
  Transient.Branch_i (name_prefix ^ "_seg0")

let driven_line ?(name_prefix = "line") ?(vdd = 1.0) ?(t_rise = 0.0) spec =
  let nl = Netlist.create () in
  let src = Netlist.fresh_node ~name:(name_prefix ^ "_src") nl in
  Netlist.add_vsource ~name:(name_prefix ^ "_drv") nl src Netlist.ground
    (if t_rise <= 0.0 then Stimulus.Dc vdd
     else Stimulus.Step { v0 = 0.0; v1 = vdd; t_delay = 0.0; t_rise });
  (* the far node is allocated before the internal joints on purpose:
     a bandwidth-friendly node numbering must NOT be assumed by the
     transient engine (it reorders the unknowns itself) *)
  let far = Netlist.fresh_node ~name:(name_prefix ^ "_far") nl in
  make ~name_prefix nl spec ~from_node:src ~to_node:far;
  (nl, src, far)

type coupled_spec = {
  r : float;
  l_self : float;
  l_mutual : float;
  c_ground : float;
  c_coupling : float;
  length : float;
  segments : int;
}

let make_coupled ?(name_prefix = "pair") netlist spec ~from1 ~to1 ~from2 ~to2 =
  if spec.length <= 0.0 then invalid_arg "Ladder.make_coupled: length <= 0";
  if spec.r <= 0.0 || spec.c_ground <= 0.0 then
    invalid_arg "Ladder.make_coupled: non-physical line parameters";
  if spec.c_coupling < 0.0 then
    invalid_arg "Ladder.make_coupled: c_coupling < 0";
  if spec.l_self <= 0.0 || spec.l_mutual < 0.0 || spec.l_mutual >= spec.l_self
  then invalid_arg "Ladder.make_coupled: need 0 <= l_mutual < l_self";
  if spec.segments < 1 then invalid_arg "Ladder.make_coupled: segments < 1";
  let n = spec.segments in
  let dh = spec.length /. float_of_int n in
  let r_seg = spec.r *. dh in
  let l_seg = spec.l_self *. dh in
  let m_seg = spec.l_mutual *. dh in
  let cg_seg = spec.c_ground *. dh in
  let cc_seg = spec.c_coupling *. dh in
  let cap which node farads =
    Netlist.add_capacitor
      ~name:(Printf.sprintf "%s_%s" name_prefix which)
      netlist node Netlist.ground farads
  in
  cap "cin1" from1 (cg_seg /. 2.0);
  cap "cin2" from2 (cg_seg /. 2.0);
  Netlist.add_capacitor
    ~name:(name_prefix ^ "_ccin")
    netlist from1 from2 (cc_seg /. 2.0);
  let rec build i n1 n2 =
    if i = n then ()
    else begin
      let next1, next2 =
        if i = n - 1 then (to1, to2)
        else
          ( Netlist.fresh_node
              ~name:(Printf.sprintf "%s_a%d" name_prefix (i + 1))
              netlist,
            Netlist.fresh_node
              ~name:(Printf.sprintf "%s_b%d" name_prefix (i + 1))
              netlist )
      in
      Netlist.add_coupled_rl
        ~name:(Printf.sprintf "%s_seg%d" name_prefix i)
        netlist ~a1:n1 ~b1:next1 ~a2:n2 ~b2:next2 ~ohms:r_seg ~henries:l_seg
        ~mutual:m_seg;
      let half = i = n - 1 in
      let cg = if half then cg_seg /. 2.0 else cg_seg in
      let cc = if half then cc_seg /. 2.0 else cc_seg in
      cap (Printf.sprintf "cg1_%d" (i + 1)) next1 cg;
      cap (Printf.sprintf "cg2_%d" (i + 1)) next2 cg;
      Netlist.add_capacitor
        ~name:(Printf.sprintf "%s_cc%d" name_prefix (i + 1))
        netlist next1 next2 cc;
      build (i + 1) next1 next2
    end
  in
  build 0 from1 from2
