(** Lumped-ladder discretisation of a distributed RLC line.

    A line with per-unit-length (r, l, c) and length [length] becomes
    [segments] sections, each a series R-L branch followed by a shunt
    capacitor.  The first shunt capacitor is split between the input
    and the first joint (CLC "pi-ish" arrangement) so both ends see
    symmetric loading; with 10-20 segments the ladder's 50% delay
    converges to the distributed answer (the test suite quantifies
    this). *)

type spec = {
  r : float;  (** ohm/m *)
  l : float;  (** H/m *)
  c : float;  (** F/m *)
  length : float;  (** m *)
  segments : int;
}

val make :
  ?name_prefix:string ->
  Netlist.t ->
  spec ->
  from_node:Netlist.node ->
  to_node:Netlist.node ->
  unit
(** Adds the ladder between two existing nodes, creating the internal
    joints.  The series branch of segment [i] (0-based) is named
    ["<prefix>_seg<i>"], so currents along the wire can be probed:
    segment 0 carries the near-end (driver) current.
    [name_prefix] defaults to ["line"]; it must be unique per netlist.
    Raises [Invalid_argument] on non-positive sizes or
    [segments < 1]. *)

val input_current_probe : ?name_prefix:string -> unit -> Transient.probe
(** The probe for the current entering the line (segment 0). *)

val driven_line :
  ?name_prefix:string ->
  ?vdd:float ->
  ?t_rise:float ->
  spec ->
  Netlist.t * Netlist.node * Netlist.node
(** A fresh netlist holding one step-driven line: an ideal source
    (DC [vdd], or a [t_rise] ramp when positive) into a [make] ladder.
    Returns [(netlist, source_node, far_node)] — the standard fixture
    for the ladder-scaling benchmarks and backend cross-checks.  The
    source is named ["<prefix>_drv"] so its current can be probed. *)

type coupled_spec = {
  r : float;  (** ohm/m, each line *)
  l_self : float;  (** H/m *)
  l_mutual : float;  (** H/m, 0 <= l_mutual < l_self *)
  c_ground : float;  (** F/m, each line to ground *)
  c_coupling : float;  (** F/m, line to line *)
  length : float;  (** m *)
  segments : int;
}

val make_coupled :
  ?name_prefix:string ->
  Netlist.t ->
  coupled_spec ->
  from1:Netlist.node ->
  to1:Netlist.node ->
  from2:Netlist.node ->
  to2:Netlist.node ->
  unit
(** Two parallel ladders whose series branches are magnetically coupled
    ({!Netlist.element.Coupled_rl}) and whose joints are connected by
    the coupling capacitors — one segment of the symmetric coupled pair
    of {!Rlc_core.Coupled} (which this discretisation is validated
    against in the test suite).  Segment [i]'s branches are probed as
    ["<prefix>_seg<i>#1"] and ["...#2"]. *)
