open Rlc_numerics

type spec = {
  rows : int;
  cols : int;
  r_seg : float;
  l_seg : float;
  c_node : float;
  r_via : float;
  l_via : float;
  vdd : float;
  vdd_ports : (int * int) list;
  loads : (int * int * float) list;
}

(* DATE 2007 distributed-PDN flavour: 12x12 die grid, 2.2 nF total die
   decap, 50 mohm segments, 40 mohm / 72 pH C4 bumps, 1 A switching
   load at the centre. *)
let default =
  {
    rows = 12;
    cols = 12;
    r_seg = 50e-3;
    l_seg = 5.6e-15;
    c_node = 2.2e-9 /. 144.0;
    r_via = 40e-3;
    l_via = 72e-12;
    vdd = 1.0;
    vdd_ports = [ (0, 0); (0, 11); (11, 0); (11, 11) ];
    loads = [ (5, 5, 1.0) ];
  }

let rc_grid ?loads ~rows ~cols () =
  let total_decap = default.c_node *. 144.0 in
  let loads =
    match loads with
    | Some l -> l
    | None -> [ (rows / 2, cols / 2, 1.0) ]
  in
  {
    default with
    rows;
    cols;
    l_seg = 0.0;
    l_via = 0.0;
    c_node = total_decap /. float_of_int (rows * cols);
    vdd_ports = [ (0, 0); (0, cols - 1); (rows - 1, 0); (rows - 1, cols - 1) ];
    loads;
  }

type t = {
  spec : spec;
  netlist : Netlist.t;
  nodes : Netlist.node array array;
  asm : Assembly.t;
}

let load_name ~row ~col = Printf.sprintf "iload_%d_%d" row col

let validate_spec s =
  if s.rows < 2 || s.cols < 2 then invalid_arg "Pdn.build: grid smaller than 2x2";
  if s.r_seg <= 0.0 || s.r_via <= 0.0 then
    invalid_arg "Pdn.build: non-positive segment/via resistance";
  if s.l_seg < 0.0 || s.l_via < 0.0 || s.c_node < 0.0 then
    invalid_arg "Pdn.build: negative inductance or decap";
  if s.vdd_ports = [] then invalid_arg "Pdn.build: no vdd ports";
  let in_range (r, c) = r >= 0 && r < s.rows && c >= 0 && c < s.cols in
  if not (List.for_all in_range s.vdd_ports) then
    invalid_arg "Pdn.build: vdd port outside the grid";
  if not (List.for_all (fun (r, c, _) -> in_range (r, c)) s.loads) then
    invalid_arg "Pdn.build: load outside the grid"

(* an RL mesh edge degrades to a plain resistor when l = 0 so a pure
   RC grid carries no branch-current unknowns *)
let add_edge nl ~name a b ~ohms ~henries =
  if henries > 0.0 then Netlist.add_rl_branch ~name nl a b ~ohms ~henries
  else Netlist.add_resistor ~name nl a b ohms

let build spec =
  validate_spec spec;
  let nl = Netlist.create () in
  let nodes =
    Array.init spec.rows (fun r ->
        Array.init spec.cols (fun c ->
            Netlist.fresh_node ~name:(Printf.sprintf "g%d_%d" r c) nl))
  in
  for r = 0 to spec.rows - 1 do
    for c = 0 to spec.cols - 1 do
      if c + 1 < spec.cols then
        add_edge nl
          ~name:(Printf.sprintf "rh%d_%d" r c)
          nodes.(r).(c)
          nodes.(r).(c + 1)
          ~ohms:spec.r_seg ~henries:spec.l_seg;
      if r + 1 < spec.rows then
        add_edge nl
          ~name:(Printf.sprintf "rv%d_%d" r c)
          nodes.(r).(c)
          nodes.(r + 1).(c)
          ~ohms:spec.r_seg ~henries:spec.l_seg;
      if spec.c_node > 0.0 then
        Netlist.add_capacitor
          ~name:(Printf.sprintf "cd%d_%d" r c)
          nl
          nodes.(r).(c)
          Netlist.ground spec.c_node
    done
  done;
  List.iteri
    (fun i (r, c) ->
      let bump = Netlist.fresh_node ~name:(Printf.sprintf "bump%d" i) nl in
      Netlist.add_vsource
        ~name:(Printf.sprintf "vdd%d" i)
        nl bump Netlist.ground (Stimulus.Dc spec.vdd);
      add_edge nl
        ~name:(Printf.sprintf "via%d" i)
        bump
        nodes.(r).(c)
        ~ohms:spec.r_via ~henries:spec.l_via)
    spec.vdd_ports;
  List.iter
    (fun (r, c, amps) ->
      Netlist.add_isource ~name:(load_name ~row:r ~col:c) nl
        nodes.(r).(c)
        Netlist.ground (Stimulus.Dc amps))
    spec.loads;
  { spec; netlist = nl; nodes; asm = Assembly.of_netlist nl }

let node t ~row ~col =
  if row < 0 || row >= t.spec.rows || col < 0 || col >= t.spec.cols then
    invalid_arg "Pdn.node: site outside the grid";
  t.nodes.(row).(col)

let size t = t.asm.Assembly.size

let input_index asm name =
  let found = ref (-1) in
  Array.iteri
    (fun i (inp : Assembly.input) -> if inp.name = name then found := i)
    asm.Assembly.inputs;
  !found

let m_points = Rlc_instr.Metrics.counter "pdn.scan.points"

let impedance ?pool ?backend t ~at:(row, col) ~freqs =
  let pool =
    match pool with Some p -> p | None -> Rlc_parallel.Pool.sequential
  in
  if Array.length freqs = 0 then [||]
  else begin
    let input = input_index t.asm (load_name ~row ~col) in
    if input < 0 then invalid_arg "Pdn.impedance: no load at that site";
    let out = node t ~row ~col - 1 in
    Rlc_instr.Span.with_ "pdn.impedance" (fun () ->
        (* one engine for the whole sweep, built before the fan-out:
           the sparse symbolic analysis (and its pivot sequence) is
           shared read-only by every frequency point *)
        let eng =
          Assembly.cengine ?backend t.asm ~s_ref:(Ac.s_of_freq freqs.(0))
        in
        let plan = Assembly.cengine_plan eng in
        let rhs = Array.map Cx.of_float (Assembly.b_column t.asm input) in
        let scratch_key =
          Domain.DLS.new_key (fun () -> Assembly.cengine_scratch eng)
        in
        let n = plan.Solver.n in
        Rlc_parallel.Pool.map pool
          (fun f ->
            Rlc_instr.Metrics.incr m_points;
            let x = Array.make n Cx.zero in
            Assembly.cengine_solve_into eng
              (Domain.DLS.get scratch_key)
              ~s:(Ac.s_of_freq f) ~rhs ~x;
            (f, Cx.norm x.(out)))
          freqs)
  end
