open Rlc_numerics
module M = Rlc_instr.Metrics

let m_steps = M.counter "transient.steps"
let m_rejected = M.counter "transient.rejected_steps"
let m_nonconverged = M.counter "transient.nonconverged_steps"
let m_cache_hit = M.counter "transient.lu_cache.hit"
let m_cache_miss = M.counter "transient.lu_cache.miss"
let m_advances = M.counter "transient.advances"
let m_step_s = M.hist "transient.step_s"

type integration = Trapezoidal | Backward_euler

type backend = Solver.backend = Auto | Dense | Banded | Sparse

type probe = Node_v of Netlist.node | Branch_i of string

module Config = struct
  type t = {
    integration : integration;
    backend : backend;
    max_state_iterations : int;
    record_every : int;
    initial_voltages : (Netlist.node * float) list;
    rtol : float;
    atol : float;
    dt_min : float option;
    pool : Rlc_parallel.Pool.t option;
    plan_hint : Solver.plan option;
  }

  let default =
    {
      integration = Trapezoidal;
      backend = Auto;
      max_state_iterations = 8;
      record_every = 1;
      initial_voltages = [];
      rtol = 1e-3;
      atol = 1e-6;
      dt_min = None;
      pool = None;
      plan_hint = None;
    }
end

(* Desugared element with per-element state indices. *)
type compiled =
  | Cr of { a : int; b : int; g : float }
  | Cc of { a : int; b : int; c : float; state : int }
  | Crl of { a : int; b : int; r : float; l : float; state : int }
  | Ccrl of {
      a1 : int;
      b1 : int;
      a2 : int;
      b2 : int;
      r : float;
      l : float;
      m : float;
      state : int; (* index of branch-1 current; branch 2 is state+1 *)
    }
  | Cv of { a : int; b : int; stim : Stimulus.t; row : int }
  | Ci of { a : int; b : int; stim : Stimulus.t }
  | Cinv of {
      input : int;
      output : int;
      dev : Devices.inverter;
      state : int; (* index into inverter state array *)
    }

type result = {
  time : float array;
  probe_data : (probe * float array) list;
  final_v : float array;
  steps : int;
  histogram : int array;
  rejected_steps : int;
  nonconverged_steps : int;
  lu_factorizations : int;
}

let time r = Array.copy r.time
let final_voltages r = Array.copy r.final_v
let steps_taken r = r.steps
let state_iteration_histogram r = Array.copy r.histogram

module Stats = struct
  type t = {
    steps : int;
    rejected_steps : int;
    nonconverged_steps : int;
    lu_factorizations : int;
  }
end

let stats r =
  {
    Stats.steps = r.steps;
    rejected_steps = r.rejected_steps;
    nonconverged_steps = r.nonconverged_steps;
    lu_factorizations = r.lu_factorizations;
  }

(* deprecated wrappers over [stats]; see the interface *)
let rejected_steps r = (stats r).Stats.rejected_steps
let nonconverged_steps r = (stats r).Stats.nonconverged_steps
let lu_factorizations r = (stats r).Stats.lu_factorizations

(* Counters mirror the per-run [Stats.t] into the registry at the end
   of each driver.  LU factorizations are *not* re-added here — every
   one was already counted as a [transient.lu_cache.miss]. *)
let publish_stats (s : Stats.t) =
  M.add m_steps (Float.of_int s.Stats.steps);
  M.add m_rejected (Float.of_int s.Stats.rejected_steps);
  M.add m_nonconverged (Float.of_int s.Stats.nonconverged_steps)

let get r probe =
  match List.assoc_opt probe r.probe_data with
  | Some values -> Rlc_waveform.Waveform.create ~times:r.time ~values
  | None -> raise Not_found

(* Compile the netlist: inverters contribute their gate/drain
   capacitors as separate compiled caps plus an output-stage record. *)
let compile netlist =
  let elems = Netlist.elements netlist in
  let compiled = ref [] in
  let caps = ref 0 and rls = ref 0 and vsrcs = ref 0 and invs = ref 0 in
  let id_to_compiled = Hashtbl.create 16 in
  Array.iteri
    (fun id e ->
      let push c =
        compiled := c :: !compiled;
        Hashtbl.replace id_to_compiled id c
      in
      match e with
      | Netlist.Resistor { a; b; ohms } -> push (Cr { a; b; g = 1.0 /. ohms })
      | Netlist.Capacitor { a; b; farads } ->
          let state = !caps in
          incr caps;
          push (Cc { a; b; c = farads; state })
      | Netlist.Rl_branch { a; b; ohms; henries } ->
          if henries = 0.0 then push (Cr { a; b; g = 1.0 /. ohms })
          else begin
            let state = !rls in
            incr rls;
            push (Crl { a; b; r = ohms; l = henries; state })
          end
      | Netlist.Coupled_rl { a1; b1; a2; b2; ohms; henries; mutual } ->
          let state = !rls in
          rls := !rls + 2;
          push
            (Ccrl { a1; b1; a2; b2; r = ohms; l = henries; m = mutual; state })
      | Netlist.Vsource { a; b; stim } ->
          let row = !vsrcs in
          incr vsrcs;
          push (Cv { a; b; stim; row })
      | Netlist.Isource { a; b; stim } -> push (Ci { a; b; stim })
      | Netlist.Inverter { input; output; dev } ->
          (* gate capacitance *)
          let gate_state = !caps in
          incr caps;
          compiled :=
            Cc { a = input; b = Netlist.ground; c = dev.Devices.c_in;
                 state = gate_state }
            :: !compiled;
          (* drain capacitance *)
          let drain_state = !caps in
          incr caps;
          compiled :=
            Cc { a = output; b = Netlist.ground; c = dev.Devices.c_out;
                 state = drain_state }
            :: !compiled;
          let state = !invs in
          incr invs;
          push (Cinv { input; output; dev; state }))
    elems;
  ( Array.of_list (List.rev !compiled),
    id_to_compiled,
    (!caps, !rls, !vsrcs, !invs) )

let alpha_of = function Trapezoidal -> 2.0 | Backward_euler -> 1.0

(* mutable engine state *)
type state = {
  v : float array;
  cap_i : float array;
  rl_i : float array;
  inv_high : bool array;
  inv_drive : float array;
}

let copy_state s =
  {
    v = Array.copy s.v;
    cap_i = Array.copy s.cap_i;
    rl_i = Array.copy s.rl_i;
    inv_high = Array.copy s.inv_high;
    inv_drive = Array.copy s.inv_drive;
  }

let blit_state ~src ~dst =
  Array.blit src.v 0 dst.v 0 (Array.length src.v);
  Array.blit src.cap_i 0 dst.cap_i 0 (Array.length src.cap_i);
  Array.blit src.rl_i 0 dst.rl_i 0 (Array.length src.rl_i);
  Array.blit src.inv_high 0 dst.inv_high 0 (Array.length src.inv_high);
  Array.blit src.inv_drive 0 dst.inv_drive 0 (Array.length src.inv_drive)

type engine = {
  compiled : compiled array;
  compiled_of_id : (int, compiled) Hashtbl.t;
  netlist : Netlist.t;
  n_nodes : int;
  m : int; (* unknown count: nodes-1 + vsources *)
  plan : Solver.plan; (* shared structure analysis: RCM + bandwidth *)
  perm : int array; (* = plan.perm, kept flat for the hot loops *)
  state : state;
  lu_cache : (integration * int64, Solver.factor) Hashtbl.t;
      (* keyed by the integration method and the exact dt bits *)
  rhs : float array; (* preallocated per-step buffers: *)
  x : float array; (* last MNA solution, in permuted order *)
  v_new : float array;
  trial : bool array;
  trial_next : bool array;
  histogram : int array;
  max_state_iterations : int;
  mutable nonconverged : int;
  mutable factorizations : int;
  mutable sparse_sym : Solver.symbolic option;
      (* the sparse backend's symbolic analysis, discovered by the
         first factorisation and replayed by every later (method, dt)
         restamp — the companion pattern never changes, only values *)
}

let vi node = node - 1

(* Stamp the (method, dt) companion-model MNA matrix into a fresh COO
   accumulator.  The conductance/cross patterns come from
   {!Assembly.Coo} — the one stamping implementation — only the
   companion values (alpha C / dt, the closed-form 2x2 coupled-RL
   inverse) are computed here.  The voltage-source rows stay in the
   engine's historical symmetric form (+1/+1), which differs from the
   frequency-domain skew convention but yields the same solutions. *)
let stamp_coo ~compiled ~n_nodes ~m meth dt =
  let alpha = alpha_of meth in
  let coo = Assembly.Coo.create ~size:m in
  Array.iter
    (fun c ->
      match c with
      | Cr { a = na; b = nb; g } -> Assembly.Coo.stamp_g coo na nb g
      | Cc { a = na; b = nb; c; _ } ->
          Assembly.Coo.stamp_g coo na nb (alpha *. c /. dt)
      | Crl { a = na; b = nb; r; l; _ } ->
          Assembly.Coo.stamp_g coo na nb (1.0 /. (r +. (alpha *. l /. dt)))
      | Ccrl { a1; b1; a2; b2; r; l; m; _ } ->
          (* i = G v with G = inv(R I + alpha L_mat / dt),
             L_mat = [l m; m l]; closed-form 2x2 inverse *)
          let d = r +. (alpha *. l /. dt) in
          let o = alpha *. m /. dt in
          let det = (d *. d) -. (o *. o) in
          let g_self = d /. det and g_cross = -.o /. det in
          Assembly.Coo.stamp_g coo a1 b1 g_self;
          Assembly.Coo.stamp_g coo a2 b2 g_self;
          Assembly.Coo.stamp_cross coo ~a:a1 ~b:b1 ~ma:a2 ~mb:b2 g_cross;
          Assembly.Coo.stamp_cross coo ~a:a2 ~b:b2 ~ma:a1 ~mb:b1 g_cross
      | Cinv { output; dev; _ } ->
          Assembly.Coo.stamp_g coo output Netlist.ground
            (1.0 /. dev.Devices.r_on)
      | Cv { a = na; b = nb; row; _ } ->
          let r = n_nodes - 1 + row in
          if na <> 0 then begin
            Assembly.Coo.stamp_at coo (vi na) r 1.0;
            Assembly.Coo.stamp_at coo r (vi na) 1.0
          end;
          if nb <> 0 then begin
            Assembly.Coo.stamp_at coo (vi nb) r (-1.0);
            Assembly.Coo.stamp_at coo r (vi nb) (-1.0)
          end
      | Ci _ -> ())
    compiled;
  coo

let make_engine (config : Config.t) netlist =
  let max_state_iterations = config.Config.max_state_iterations in
  let initial_voltages = config.Config.initial_voltages in
  let backend = config.Config.backend in
  if max_state_iterations < 1 then
    invalid_arg "Transient: max_state_iterations < 1";
  let n_nodes = Netlist.node_count netlist in
  let compiled, compiled_of_id, (n_caps, n_rls, n_vsrcs, n_invs) =
    compile netlist
  in
  let m = n_nodes - 1 + n_vsrcs in
  if m = 0 then invalid_arg "Transient: empty circuit";
  let state =
    {
      v = Array.make n_nodes 0.0;
      cap_i = Array.make (Int.max n_caps 1) 0.0;
      rl_i = Array.make (Int.max n_rls 1) 0.0;
      inv_high = Array.make (Int.max n_invs 1) false;
      inv_drive = Array.make (Int.max n_invs 1) 0.0;
    }
  in
  List.iter
    (fun (node, volt) ->
      if node <= 0 || node >= n_nodes then
        invalid_arg "Transient: initial voltage on bad node";
      state.v.(node) <- volt)
    initial_voltages;
  Array.iter
    (function
      | Cinv { input; dev; state = si; _ } ->
          let high = Devices.drives_high dev ~v_in:state.v.(input) in
          state.inv_high.(si) <- high;
          state.inv_drive.(si) <- (if high then dev.Devices.vdd else 0.0)
      | Cr _ | Cc _ | Crl _ | Ccrl _ | Cv _ | Ci _ -> ())
    compiled;
  (* structural probe (any positive dt): the companion structure is
     dt-independent, so one stamp gives the adjacency the shared plan
     (RCM ordering + bandwidth + backend choice) is built from.  A
     [plan_hint] sized for this system (from {!structure_plan} on a
     structurally identical deck — the serving layer's cache) skips
     the probe stamp and the ordering entirely. *)
  let plan =
    match config.Config.plan_hint with
    | Some p when p.Solver.n = m -> p
    | Some _ | None ->
        let probe = stamp_coo ~compiled ~n_nodes ~m Trapezoidal 1.0 in
        Solver.plan ~backend (Assembly.Coo.adjacency probe)
  in
  {
    compiled;
    compiled_of_id;
    netlist;
    n_nodes;
    m;
    plan;
    perm = plan.Solver.perm;
    state;
    lu_cache = Hashtbl.create 8;
    rhs = Array.make m 0.0;
    x = Array.make m 0.0;
    v_new = Array.make n_nodes 0.0;
    trial = Array.make (Int.max n_invs 1) false;
    trial_next = Array.make (Int.max n_invs 1) false;
    histogram = Array.make max_state_iterations 0;
    max_state_iterations;
    nonconverged = 0;
    factorizations = 0;
    sparse_sym = None;
  }

(* The engine's structure analysis without an engine: what the serving
   layer computes once per structural family and feeds back through
   [Config.plan_hint].  Note this is the *companion* system's plan
   (unknowns = nodes - 1 + vsources), distinct from the MNA plan of
   {!Assembly.of_netlist}. *)
let structure_plan ?(backend = Auto) netlist =
  let n_nodes = Netlist.node_count netlist in
  let compiled, _, (_, _, n_vsrcs, _) = compile netlist in
  let m = n_nodes - 1 + n_vsrcs in
  if m = 0 then invalid_arg "Transient: empty circuit";
  let probe = stamp_coo ~compiled ~n_nodes ~m Trapezoidal 1.0 in
  Solver.plan ~backend (Assembly.Coo.adjacency probe)

(* The factorisation cache is keyed by the (method, dt-bits) pair
   itself — never by its hash, where a collision between two distinct
   dt values would silently reuse the wrong factorisation.  The
   adaptive driver keeps dt on the dt_max/2^k grid, so the cache stays
   tiny; the eviction below is a backstop for pathological callers. *)
let lu_cache_limit = 64

let factorization eng meth dt =
  let key = (meth, Int64.bits_of_float dt) in
  match Hashtbl.find_opt eng.lu_cache key with
  | Some f ->
      M.incr m_cache_hit;
      f
  | None ->
      M.incr m_cache_miss;
      let coo =
        stamp_coo ~compiled:eng.compiled ~n_nodes:eng.n_nodes ~m:eng.m meth dt
      in
      let f =
        try
          Solver.factor_with ?symbolic:eng.sparse_sym eng.plan
            ~fill:(Assembly.Coo.iter coo)
        with Lu.Singular | Banded.Singular | Sparse.Singular ->
          failwith "Transient: singular MNA matrix"
      in
      if eng.sparse_sym = None then eng.sparse_sym <- Solver.symbolic_of f;
      if Hashtbl.length eng.lu_cache >= lu_cache_limit then
        Hashtbl.reset eng.lu_cache;
      Hashtbl.replace eng.lu_cache key f;
      eng.factorizations <- eng.factorizations + 1;
      f

let solve_factor f ~b ~x = Solver.solve_permuted_into f ~b ~x

let slewed_drive dev ~dt current target_high =
  let target = if target_high then dev.Devices.vdd else 0.0 in
  if dev.Devices.t_transition <= 0.0 then target
  else begin
    let max_step = dev.Devices.vdd *. dt /. dev.Devices.t_transition in
    let delta = target -. current in
    if Float.abs delta <= max_step then target
    else current +. Float.copy_sign max_step delta
  end

(* Fill eng.rhs in place (permuted positions); allocates nothing. *)
let build_rhs eng meth dt t_next trial =
  let s = eng.state in
  let b = eng.rhs in
  let p = eng.perm in
  Array.fill b 0 eng.m 0.0;
  let alpha = alpha_of meth in
  let vab na nb = s.v.(na) -. s.v.(nb) in
  Array.iter
    (fun c ->
      match c with
      | Cr _ -> ()
      | Cc { a = na; b = nb; c; state } ->
          let g = alpha *. c /. dt in
          let i_src =
            (g *. vab na nb)
            +. (match meth with
               | Trapezoidal -> s.cap_i.(state)
               | Backward_euler -> 0.0)
          in
          if na <> 0 then b.(p.(vi na)) <- b.(p.(vi na)) +. i_src;
          if nb <> 0 then b.(p.(vi nb)) <- b.(p.(vi nb)) -. i_src
      | Crl { a = na; b = nb; r; l; state } ->
          let g = 1.0 /. (r +. (alpha *. l /. dt)) in
          let i_src =
            match meth with
            | Trapezoidal ->
                g *. (vab na nb +. (((2.0 *. l /. dt) -. r) *. s.rl_i.(state)))
            | Backward_euler -> g *. (l /. dt) *. s.rl_i.(state)
          in
          if na <> 0 then b.(p.(vi na)) <- b.(p.(vi na)) -. i_src;
          if nb <> 0 then b.(p.(vi nb)) <- b.(p.(vi nb)) +. i_src
      | Ccrl { a1; b1; a2; b2; r; l; m; state } ->
          let d = r +. (alpha *. l /. dt) in
          let o = alpha *. m /. dt in
          let det = (d *. d) -. (o *. o) in
          let i1 = s.rl_i.(state) and i2 = s.rl_i.(state + 1) in
          let w1, w2 =
            match meth with
            | Trapezoidal ->
                ( vab a1 b1
                  +. (((2.0 *. l /. dt) -. r) *. i1)
                  +. (2.0 *. m /. dt *. i2),
                  vab a2 b2
                  +. (((2.0 *. l /. dt) -. r) *. i2)
                  +. (2.0 *. m /. dt *. i1) )
            | Backward_euler ->
                ( (l /. dt *. i1) +. (m /. dt *. i2),
                  (l /. dt *. i2) +. (m /. dt *. i1) )
          in
          let i1_src = ((d *. w1) -. (o *. w2)) /. det in
          let i2_src = ((d *. w2) -. (o *. w1)) /. det in
          if a1 <> 0 then b.(p.(vi a1)) <- b.(p.(vi a1)) -. i1_src;
          if b1 <> 0 then b.(p.(vi b1)) <- b.(p.(vi b1)) +. i1_src;
          if a2 <> 0 then b.(p.(vi a2)) <- b.(p.(vi a2)) -. i2_src;
          if b2 <> 0 then b.(p.(vi b2)) <- b.(p.(vi b2)) +. i2_src
      | Cinv { output; dev; state; _ } ->
          let v_drive =
            slewed_drive dev ~dt s.inv_drive.(state) trial.(state)
          in
          let g = 1.0 /. dev.Devices.r_on in
          if output <> 0 then
            b.(p.(vi output)) <- b.(p.(vi output)) +. (g *. v_drive)
      | Cv { row; stim; _ } ->
          b.(p.(eng.n_nodes - 1 + row)) <- Stimulus.eval stim t_next
      | Ci { a = na; b = nb; stim } ->
          let j = Stimulus.eval stim t_next in
          if na <> 0 then b.(p.(vi na)) <- b.(p.(vi na)) -. j;
          if nb <> 0 then b.(p.(vi nb)) <- b.(p.(vi nb)) +. j)
    eng.compiled

(* Advance the engine state by one step of [dt] ending at [t_next],
   resolving the inverter logic by fixed point.  Mutates eng.state and
   the engine's scratch buffers; allocates nothing per step. *)
let advance_raw eng meth dt t_next =
  let s = eng.state in
  let f = factorization eng meth dt in
  let trial = eng.trial in
  Array.blit s.inv_high 0 trial 0 (Array.length s.inv_high);
  let x = eng.x in
  let p = eng.perm in
  let passes = ref 0 in
  let stable = ref false in
  while (not !stable) && !passes < eng.max_state_iterations do
    incr passes;
    build_rhs eng meth dt t_next trial;
    solve_factor f ~b:eng.rhs ~x;
    let changed = ref false in
    Array.iter
      (function
        | Cinv { input; dev; state; _ } ->
            let v_in = if input = 0 then 0.0 else x.(p.(vi input)) in
            let high = Devices.drives_high dev ~v_in in
            eng.trial_next.(state) <- high;
            if high <> trial.(state) then changed := true
        | Cr _ | Cc _ | Crl _ | Ccrl _ | Cv _ | Ci _ -> ())
      eng.compiled;
    if not !changed then stable := true
    else if !passes < eng.max_state_iterations then
      (* re-solve with the updated logic states *)
      Array.blit eng.trial_next 0 trial 0 (Array.length trial)
    else
      (* out of iterations: commit the trial that actually produced
         [x] — mixing the post-update trial into inv_drive/inv_high
         would pair a stale solution with fresh logic states *)
      eng.nonconverged <- eng.nonconverged + 1
  done;
  eng.histogram.(!passes - 1) <- eng.histogram.(!passes - 1) + 1;
  let alpha = alpha_of meth in
  let v_new = eng.v_new in
  v_new.(0) <- 0.0;
  for node = 1 to eng.n_nodes - 1 do
    v_new.(node) <- x.(p.(vi node))
  done;
  (* commit branch states (companion updates need the OLD voltages) *)
  Array.iter
    (fun c ->
      match c with
      | Cc { a = na; b = nb; c; state } ->
          let g = alpha *. c /. dt in
          let old_vab = s.v.(na) -. s.v.(nb) in
          let new_vab = v_new.(na) -. v_new.(nb) in
          s.cap_i.(state) <-
            (match meth with
            | Trapezoidal -> (g *. (new_vab -. old_vab)) -. s.cap_i.(state)
            | Backward_euler -> g *. (new_vab -. old_vab))
      | Crl { a = na; b = nb; r; l; state } ->
          let g = 1.0 /. (r +. (alpha *. l /. dt)) in
          let old_vab = s.v.(na) -. s.v.(nb) in
          let new_vab = v_new.(na) -. v_new.(nb) in
          s.rl_i.(state) <-
            (match meth with
            | Trapezoidal ->
                g
                *. (new_vab +. old_vab
                   +. (((2.0 *. l /. dt) -. r) *. s.rl_i.(state)))
            | Backward_euler -> g *. (new_vab +. (l /. dt *. s.rl_i.(state))))
      | Ccrl { a1; b1; a2; b2; r; l; m; state } ->
          let d = r +. (alpha *. l /. dt) in
          let o = alpha *. m /. dt in
          let det = (d *. d) -. (o *. o) in
          let i1 = s.rl_i.(state) and i2 = s.rl_i.(state + 1) in
          let w1, w2 =
            match meth with
            | Trapezoidal ->
                ( s.v.(a1) -. s.v.(b1)
                  +. (((2.0 *. l /. dt) -. r) *. i1)
                  +. (2.0 *. m /. dt *. i2),
                  s.v.(a2) -. s.v.(b2)
                  +. (((2.0 *. l /. dt) -. r) *. i2)
                  +. (2.0 *. m /. dt *. i1) )
            | Backward_euler ->
                ( (l /. dt *. i1) +. (m /. dt *. i2),
                  (l /. dt *. i2) +. (m /. dt *. i1) )
          in
          let u1 = (v_new.(a1) -. v_new.(b1)) +. w1 in
          let u2 = (v_new.(a2) -. v_new.(b2)) +. w2 in
          s.rl_i.(state) <- ((d *. u1) -. (o *. u2)) /. det;
          s.rl_i.(state + 1) <- ((d *. u2) -. (o *. u1)) /. det
      | Cr _ | Cv _ | Ci _ -> ()
      | Cinv _ -> ())
    eng.compiled;
  Array.iter
    (function
      | Cinv { dev; state; _ } ->
          s.inv_drive.(state) <-
            slewed_drive dev ~dt s.inv_drive.(state) trial.(state)
      | Cr _ | Cc _ | Crl _ | Ccrl _ | Cv _ | Ci _ -> ())
    eng.compiled;
  Array.blit v_new 0 s.v 0 eng.n_nodes;
  Array.blit trial 0 s.inv_high 0 (Array.length trial)

(* hot loop: one predicted branch when recording is off *)
let advance eng meth dt t_next =
  if M.recording () then begin
    M.incr m_advances;
    let t0 = Rlc_instr.Timer.start () in
    advance_raw eng meth dt t_next;
    M.observe m_step_s (Rlc_instr.Timer.elapsed_s t0)
  end
  else advance_raw eng meth dt t_next

(* ---------------- probing ---------------- *)

let resolve_probe_element eng name =
  match Netlist.find_element eng.netlist name with
  | Some id -> Some (id, 0)
  | None ->
      let n = String.length name in
      if
        n > 2
        && name.[n - 2] = '#'
        && (name.[n - 1] = '1' || name.[n - 1] = '2')
      then
        match Netlist.find_element eng.netlist (String.sub name 0 (n - 2)) with
        | Some id -> Some (id, Char.code name.[n - 1] - Char.code '1')
        | None -> None
      else None

let branch_current eng name =
  let s = eng.state in
  match resolve_probe_element eng name with
  | None -> 0.0
  | Some (id, sub) -> begin
      match Hashtbl.find_opt eng.compiled_of_id id with
      | Some (Cr { a; b; g }) -> g *. (s.v.(a) -. s.v.(b))
      | Some (Cc { state; _ }) -> s.cap_i.(state)
      | Some (Crl { state; _ }) -> s.rl_i.(state)
      | Some (Ccrl { state; _ }) -> s.rl_i.(state + sub)
      | Some (Cinv { output; dev; state; _ }) ->
          (s.inv_drive.(state) -. s.v.(output)) /. dev.Devices.r_on
      | Some (Cv { row; _ }) ->
          (* the MNA current unknown of this source in the last
             solution (zero before the first step); sign convention:
             positive flowing a -> b inside the source *)
          eng.x.(eng.perm.(eng.n_nodes - 1 + row))
      | Some (Ci _) | None -> 0.0
    end

let probe_value eng = function
  | Node_v node -> eng.state.v.(node)
  | Branch_i name -> branch_current eng name

let validate_probes eng probes =
  List.iter
    (fun p ->
      match p with
      | Node_v node ->
          if node < 0 || node >= eng.n_nodes then
            invalid_arg "Transient: probe on unknown node"
      | Branch_i name ->
          if resolve_probe_element eng name = None then
            invalid_arg ("Transient.run: unknown element " ^ name))
    probes

(* ---------------- fixed-step driver ---------------- *)

let simulate_impl ?(config = Config.default) netlist ~t_end ~dt ~probes =
  let integration = config.Config.integration in
  let record_every = config.Config.record_every in
  if t_end <= 0.0 then invalid_arg "Transient.run: t_end <= 0";
  if dt <= 0.0 || dt >= t_end then invalid_arg "Transient.run: bad dt";
  if record_every < 1 then invalid_arg "Transient.run: record_every < 1";
  let eng = make_engine config netlist in
  validate_probes eng probes;
  let n_steps = int_of_float (Float.ceil (t_end /. dt)) in
  let n_records = (n_steps / record_every) + 1 in
  let probe_specs = List.map (fun p -> (p, Array.make n_records 0.0)) probes in
  let times = Array.make n_records 0.0 in
  let record slot =
    List.iter (fun (p, arr) -> arr.(slot) <- probe_value eng p) probe_specs
  in
  record 0;
  let slot = ref 0 in
  for step = 1 to n_steps do
    let meth =
      match (step, integration) with 1, _ -> Backward_euler | _, m -> m
    in
    advance eng meth dt (float_of_int step *. dt);
    if step mod record_every = 0 then begin
      incr slot;
      if !slot < n_records then begin
        times.(!slot) <- float_of_int step *. dt;
        record !slot
      end
    end
  done;
  let used = !slot + 1 in
  let r =
    {
      time = Array.sub times 0 used;
      probe_data =
        List.map (fun (p, arr) -> (p, Array.sub arr 0 used)) probe_specs;
      final_v = Array.copy eng.state.v;
      steps = n_steps;
      histogram = Array.copy eng.histogram;
      rejected_steps = 0;
      nonconverged_steps = eng.nonconverged;
      lu_factorizations = eng.factorizations;
    }
  in
  publish_stats (stats r);
  r

let simulate ?config netlist ~t_end ~dt ~probes =
  Rlc_instr.Span.with_ "transient.simulate" (fun () ->
      simulate_impl ?config netlist ~t_end ~dt ~probes)

(* ---------------- adaptive driver ---------------- *)

let simulate_adaptive_impl ?(config = Config.default) netlist ~t_end ~dt_max
    ~probes =
  let rtol = config.Config.rtol and atol = config.Config.atol in
  if t_end <= 0.0 then invalid_arg "Transient.run_adaptive: t_end <= 0";
  if dt_max <= 0.0 || dt_max >= t_end then
    invalid_arg "Transient.run_adaptive: bad dt_max";
  if rtol <= 0.0 || atol <= 0.0 then
    invalid_arg "Transient.run_adaptive: tolerances must be positive";
  let dt_min =
    match config.Config.dt_min with Some d -> d | None -> dt_max /. 4096.0
  in
  if dt_min <= 0.0 || dt_min > dt_max then
    invalid_arg "Transient.run_adaptive: bad dt_min";
  let eng = make_engine config netlist in
  validate_probes eng probes;
  (* With a pool of capacity >= 2 the speculative full step of the
     step-doubling control runs on a mirror engine (same netlist, same
     ordering, hence bit-identical factors) in a second domain, while
     this domain takes the two half steps.  The error estimate and
     every committed state are the same floats either way. *)
  let mirror =
    match config.Config.pool with
    | Some p when Rlc_parallel.Pool.domains p >= 2 ->
        Some (p, make_engine config netlist)
    | Some _ | None -> None
  in
  (* Step-doubling error control: one dt step vs two dt/2 steps, both
     trapezoidal.  dt is tracked as a level k with dt = dt_max / 2^k,
     so every step (except a final partial one reaching exactly t_end)
     reuses a cached LU factorisation. *)
  let k_max =
    Int.max 0
      (int_of_float
         (Float.ceil (Float.log (dt_max /. dt_min) /. Float.log 2.0)))
  in
  let times = ref [ 0.0 ] in
  let data = List.map (fun p -> (p, ref [ probe_value eng p ])) probes in
  let record t =
    times := t :: !times;
    List.iter (fun (p, acc) -> acc := probe_value eng p :: !acc) data
  in
  let t = ref 0.0 in
  let level = ref (Int.min 4 k_max) in
  let steps = ref 0 and rejected = ref 0 in
  let first = ref true in
  let saved = copy_state eng.state in
  let v_full = Array.make eng.n_nodes 0.0 in
  while !t < t_end -. (1e-12 *. t_end) do
    let dt_level = Float.ldexp dt_max (- !level) in
    let remaining = t_end -. !t in
    (* only the last partial step may leave the dt_max/2^k grid *)
    let dt_now = if dt_level > remaining then remaining else dt_level in
    let t_next = !t +. dt_now in
    let meth = if !first then Backward_euler else Trapezoidal in
    blit_state ~src:eng.state ~dst:saved;
    (match mirror with
    | None ->
        (* full step *)
        advance eng meth dt_now t_next;
        Array.blit eng.state.v 0 v_full 0 eng.n_nodes;
        (* two half steps from the saved state *)
        blit_state ~src:saved ~dst:eng.state;
        advance eng meth (dt_now /. 2.0) (!t +. (dt_now /. 2.0));
        advance eng
          (if !first then Backward_euler else Trapezoidal)
          (dt_now /. 2.0) t_next
    | Some (p, meng) ->
        blit_state ~src:eng.state ~dst:meng.state;
        let (), () =
          Rlc_parallel.Pool.both p
            (fun () -> advance meng meth dt_now t_next)
            (fun () ->
              advance eng meth (dt_now /. 2.0) (!t +. (dt_now /. 2.0));
              advance eng
                (if !first then Backward_euler else Trapezoidal)
                (dt_now /. 2.0) t_next)
        in
        Array.blit meng.state.v 0 v_full 0 eng.n_nodes);
    (* error estimate over node voltages *)
    let err = ref 0.0 in
    for node = 1 to eng.n_nodes - 1 do
      let scale = atol +. (rtol *. Float.abs eng.state.v.(node)) in
      err :=
        Float.max !err (Float.abs (v_full.(node) -. eng.state.v.(node)) /. scale)
    done;
    if !err <= 1.0 || !level >= k_max then begin
      (* accept the (more accurate) half-step state *)
      incr steps;
      first := false;
      t := t_next;
      record !t;
      if !err < 0.25 then level := Int.max 0 (!level - 1)
      else if !err > 0.75 then level := Int.min k_max (!level + 1)
    end
    else begin
      incr rejected;
      blit_state ~src:saved ~dst:eng.state;
      level := Int.min k_max (!level + 1)
    end
  done;
  (* fold the mirror engine's diagnostics in, so the pooled run reports
     the same amount of work (its cache is separate, so
     lu_factorizations can exceed the sequential count) *)
  (match mirror with
  | Some (_, meng) ->
      Array.iteri
        (fun i v -> eng.histogram.(i) <- eng.histogram.(i) + v)
        meng.histogram;
      eng.nonconverged <- eng.nonconverged + meng.nonconverged;
      eng.factorizations <- eng.factorizations + meng.factorizations
  | None -> ());
  let time = Array.of_list (List.rev !times) in
  let r =
    {
      time;
      probe_data =
        List.map (fun (p, acc) -> (p, Array.of_list (List.rev !acc))) data;
      final_v = Array.copy eng.state.v;
      steps = !steps;
      histogram = Array.copy eng.histogram;
      rejected_steps = !rejected;
      nonconverged_steps = eng.nonconverged;
      lu_factorizations = eng.factorizations;
    }
  in
  publish_stats (stats r);
  r

let simulate_adaptive ?config netlist ~t_end ~dt_max ~probes =
  Rlc_instr.Span.with_ "transient.simulate_adaptive" (fun () ->
      simulate_adaptive_impl ?config netlist ~t_end ~dt_max ~probes)

(* ---------------- deprecated labelled wrappers ---------------- *)

let run ?integration ?initial_voltages ?max_state_iterations ?record_every
    ?backend netlist ~t_end ~dt ~probes =
  let d = Config.default in
  let config =
    {
      d with
      Config.integration =
        Option.value ~default:d.Config.integration integration;
      backend = Option.value ~default:d.Config.backend backend;
      max_state_iterations =
        Option.value ~default:d.Config.max_state_iterations
          max_state_iterations;
      record_every = Option.value ~default:d.Config.record_every record_every;
      initial_voltages =
        Option.value ~default:d.Config.initial_voltages initial_voltages;
    }
  in
  simulate ~config netlist ~t_end ~dt ~probes

let run_adaptive ?initial_voltages ?max_state_iterations ?rtol ?atol ?dt_min
    ?backend netlist ~t_end ~dt_max ~probes =
  let d = Config.default in
  let config =
    {
      d with
      Config.backend = Option.value ~default:d.Config.backend backend;
      max_state_iterations =
        Option.value ~default:d.Config.max_state_iterations
          max_state_iterations;
      initial_voltages =
        Option.value ~default:d.Config.initial_voltages initial_voltages;
      rtol = Option.value ~default:d.Config.rtol rtol;
      atol = Option.value ~default:d.Config.atol atol;
      dt_min = (match dt_min with Some _ -> dt_min | None -> d.Config.dt_min);
    }
  in
  simulate_adaptive ~config netlist ~t_end ~dt_max ~probes
