open Rlc_numerics

type system = {
  asm : Assembly.t;
  netlist : Netlist.t;
  factor : Solver.factor;
  states : bool array;
  x : float array;
  voltages : float array;
  rhs0 : float array;
}

let assembly s = s.asm
let factor s = s.factor
let rhs s = Array.copy s.rhs0
let inputs s = s.asm.Assembly.inputs
let voltages s = s.voltages
let unknowns s = s.x
let g_symbolic s = Solver.symbolic_of s.factor

(* Inverter drives enter the RHS, not B: they are internal switching
   stages, not independent inputs. *)
let add_inverter_drives netlist states rhs =
  let inv = ref 0 in
  Array.iter
    (fun e ->
      match e with
      | Netlist.Inverter { output; dev; _ } ->
          let v_drive = if states.(!inv) then dev.Devices.vdd else 0.0 in
          incr inv;
          if output <> Netlist.ground then begin
            let k = output - 1 in
            rhs.(k) <- rhs.(k) +. (v_drive /. dev.Devices.r_on)
          end
      | Netlist.Resistor _ | Netlist.Capacitor _ | Netlist.Rl_branch _
      | Netlist.Coupled_rl _ | Netlist.Vsource _ | Netlist.Isource _ -> ())
    (Netlist.elements netlist)

let rhs_at_t0_into asm netlist states rhs =
  Array.fill rhs 0 (Array.length rhs) 0.0;
  let u =
    Array.map
      (fun inp -> Stimulus.eval inp.Assembly.stim 0.0)
      asm.Assembly.inputs
  in
  Assembly.iter_b asm (fun row col v -> rhs.(row) <- rhs.(row) +. (v *. u.(col)));
  add_inverter_drives netlist states rhs

let make ?(max_state_iterations = 64) ?assembly ?symbolic netlist =
  let asm =
    match assembly with
    | Some a -> a
    | None -> Assembly.of_netlist netlist
  in
  let factor =
    try Assembly.factor_g ?symbolic asm
    with Lu.Singular | Banded.Singular | Sparse.Singular ->
      failwith "Dc.operating_point: singular system"
  in
  let elems = Netlist.elements netlist in
  let n_invs =
    Array.fold_left
      (fun acc e -> match e with Netlist.Inverter _ -> acc + 1 | _ -> acc)
      0 elems
  in
  let states = Array.make (Int.max n_invs 1) true in
  (* the fixed-point loop reuses one RHS buffer, one solution buffer
     and one solver scratch across passes instead of allocating three
     arrays per solve *)
  let rhs = Array.make asm.Assembly.size 0.0 in
  let x_buf = Array.make asm.Assembly.size 0.0 in
  let scr = Solver.scratch asm.Assembly.plan in
  let solve_with states =
    rhs_at_t0_into asm netlist states rhs;
    Solver.solve_into asm.Assembly.plan factor scr ~b:rhs ~x:x_buf;
    x_buf
  in
  (* inverter logic states: fixed point over the linear solves, all
     sharing the one factorisation *)
  let rec iterate pass =
    if pass > max_state_iterations then
      failwith "Dc.operating_point: inverter states do not settle";
    let x = solve_with states in
    let changed = ref false in
    let inv = ref 0 in
    Array.iter
      (fun e ->
        match e with
        | Netlist.Inverter { input; dev; _ } ->
            let v_in = if input = Netlist.ground then 0.0 else x.(input - 1) in
            let s = Devices.drives_high dev ~v_in in
            if s <> states.(!inv) then begin
              states.(!inv) <- s;
              changed := true
            end;
            incr inv
        | Netlist.Resistor _ | Netlist.Capacitor _ | Netlist.Rl_branch _
        | Netlist.Coupled_rl _ | Netlist.Vsource _ | Netlist.Isource _ -> ())
      elems;
    if !changed then iterate (pass + 1) else x
  in
  let x = iterate 1 in
  (* after the fixed point settles, [rhs] holds the RHS of the final
     states — snapshot it for the what-if workspace *)
  let rhs0 = Array.copy rhs in
  let n_nodes = asm.Assembly.n_nodes in
  let voltages = Array.make n_nodes 0.0 in
  for node = 1 to n_nodes - 1 do
    voltages.(node) <- x.(node - 1)
  done;
  { asm; netlist; factor; states; x; voltages; rhs0 }

let sensitivity s ~input =
  let n_inputs = Array.length s.asm.Assembly.inputs in
  if input < 0 || input >= n_inputs then
    invalid_arg
      (Printf.sprintf "Dc.sensitivity: input %d out of %d" input n_inputs);
  let dx = Assembly.solve_g s.asm s.factor (Assembly.b_column s.asm input) in
  let n_nodes = s.asm.Assembly.n_nodes in
  let dv = Array.make n_nodes 0.0 in
  for node = 1 to n_nodes - 1 do
    dv.(node) <- dx.(node - 1)
  done;
  dv

let operating_point ?max_state_iterations netlist =
  (make ?max_state_iterations netlist).voltages

let initial_conditions ?max_state_iterations netlist =
  let v = operating_point ?max_state_iterations netlist in
  List.init (Array.length v - 1) (fun i -> (i + 1, v.(i + 1)))
