open Rlc_numerics

let operating_point ?(max_state_iterations = 64) netlist =
  let n_nodes = Netlist.node_count netlist in
  let elems = Netlist.elements netlist in
  let n_vsrcs =
    Array.fold_left
      (fun acc e -> match e with Netlist.Vsource _ -> acc + 1 | _ -> acc)
      0 elems
  in
  let m = n_nodes - 1 + n_vsrcs in
  if m = 0 then invalid_arg "Dc.operating_point: empty circuit";
  let vi node = node - 1 in
  let a = Matrix.create m m in
  let stamp_g na nb g =
    if na <> 0 then Matrix.add_to a (vi na) (vi na) g;
    if nb <> 0 then Matrix.add_to a (vi nb) (vi nb) g;
    if na <> 0 && nb <> 0 then begin
      Matrix.add_to a (vi na) (vi nb) (-.g);
      Matrix.add_to a (vi nb) (vi na) (-.g)
    end
  in
  let vrow = ref 0 in
  Array.iter
    (fun e ->
      match e with
      | Netlist.Resistor { a = na; b = nb; ohms } -> stamp_g na nb (1.0 /. ohms)
      | Netlist.Rl_branch { a = na; b = nb; ohms; _ } ->
          stamp_g na nb (1.0 /. ohms)
      | Netlist.Coupled_rl { a1; b1; a2; b2; ohms; _ } ->
          (* inductors short in DC: each branch is its resistance *)
          stamp_g a1 b1 (1.0 /. ohms);
          stamp_g a2 b2 (1.0 /. ohms)
      | Netlist.Inverter { output; dev; _ } ->
          stamp_g output Netlist.ground (1.0 /. dev.Devices.r_on)
      | Netlist.Vsource { a = na; b = nb; _ } ->
          let r = n_nodes - 1 + !vrow in
          incr vrow;
          if na <> 0 then begin
            Matrix.add_to a (vi na) r 1.0;
            Matrix.add_to a r (vi na) 1.0
          end;
          if nb <> 0 then begin
            Matrix.add_to a (vi nb) r (-1.0);
            Matrix.add_to a r (vi nb) (-1.0)
          end
      | Netlist.Capacitor _ | Netlist.Isource _ -> ())
    elems;
  let lu =
    try Lu.decompose a
    with Lu.Singular -> failwith "Dc.operating_point: singular system"
  in
  (* inverter states: fixed point over the linear solves *)
  let n_invs =
    Array.fold_left
      (fun acc e -> match e with Netlist.Inverter _ -> acc + 1 | _ -> acc)
      0 elems
  in
  let states = Array.make (Int.max n_invs 1) true in
  let solve_with states =
    let b = Array.make m 0.0 in
    let vrow = ref 0 and inv = ref 0 in
    Array.iter
      (fun e ->
        match e with
        | Netlist.Vsource { stim; _ } ->
            b.(n_nodes - 1 + !vrow) <- Stimulus.eval stim 0.0;
            incr vrow
        | Netlist.Isource { a = na; b = nb; stim } ->
            let j = Stimulus.eval stim 0.0 in
            if na <> 0 then b.(vi na) <- b.(vi na) -. j;
            if nb <> 0 then b.(vi nb) <- b.(vi nb) +. j
        | Netlist.Inverter { output; dev; _ } ->
            let v_drive = if states.(!inv) then dev.Devices.vdd else 0.0 in
            incr inv;
            if output <> 0 then
              b.(vi output) <- b.(vi output) +. (v_drive /. dev.Devices.r_on)
        | Netlist.Resistor _ | Netlist.Capacitor _ | Netlist.Rl_branch _
        | Netlist.Coupled_rl _ -> ())
      elems;
    Lu.solve lu b
  in
  let rec iterate pass =
    if pass > max_state_iterations then
      failwith "Dc.operating_point: inverter states do not settle";
    let x = solve_with states in
    let changed = ref false in
    let inv = ref 0 in
    Array.iter
      (fun e ->
        match e with
        | Netlist.Inverter { input; dev; _ } ->
            let v_in = if input = 0 then 0.0 else x.(vi input) in
            let s = Devices.drives_high dev ~v_in in
            if s <> states.(!inv) then begin
              states.(!inv) <- s;
              changed := true
            end;
            incr inv
        | Netlist.Resistor _ | Netlist.Capacitor _ | Netlist.Rl_branch _
        | Netlist.Coupled_rl _ | Netlist.Vsource _ | Netlist.Isource _ -> ())
      elems;
    if !changed then iterate (pass + 1) else x
  in
  let x = iterate 1 in
  let out = Array.make n_nodes 0.0 in
  for node = 1 to n_nodes - 1 do
    out.(node) <- x.(vi node)
  done;
  out

let initial_conditions ?max_state_iterations netlist =
  let v = operating_point ?max_state_iterations netlist in
  List.init
    (Array.length v - 1)
    (fun i -> (i + 1, v.(i + 1)))
