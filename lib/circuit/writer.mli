(** Emit a netlist back into the {!Parser} deck format.

    The writer and parser round-trip: parsing the emitted text yields a
    netlist with the same elements in the same order (W cards were
    already expanded at parse time, so they re-emit as their primitive
    B/C cards).  Useful for dumping programmatically built circuits,
    diffing, and as a parser test oracle. *)

val stimulus_to_string : Stimulus.t -> string
(** "DC v", "PULSE(...)" or "PWL(...)"; a [Step] is emitted as the
    equivalent PWL. *)

val netlist_to_string : ?title:string -> Netlist.t -> string
(** One card per element, in insertion order, using the elements'
    names and "n<id>" node names ("0" for ground). *)

val deck_to_string : Parser.deck -> string
(** Netlist plus the deck's [.tran] and [.probe] cards (probe nodes
    use their original names where known). *)
