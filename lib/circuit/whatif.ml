open Rlc_numerics
module M = Rlc_instr.Metrics

let m_compile = M.counter "whatif.compile"
let m_update = M.counter "whatif.update"
let m_refactor = M.counter "whatif.refactor"
let m_fallback = M.counter "whatif.fallback"
let m_adjoint = M.counter "whatif.adjoint"

(* A perturbation direction: a sparse +/-1 incidence vector in MNA
   unknown coordinates (ground eliminated).  Every elementary value
   perturbation shifts G or C by [delta * u v^T] with u, v of this
   shape — one or two entries. *)
type vec = { vidx : int array; vsgn : float array }

type term = {
  tid : int;  (* workspace-unique id: the z-cache key *)
  tmat : [ `G | `C ];
  tu : vec;
  tv : vec;
  mutable u_dense : float array option;
  mutable v_dense : float array option;
}

type param = {
  p_name : string;
  p_kind : [ `R | `L | `C | `M ];
  p_base : float;
  p_terms : term array;
  p_delta : float -> float;  (* absolute value -> stamp delta *)
  p_ddelta : float -> float;  (* d delta / d value *)
  p_ok : float -> bool;  (* physical-domain check *)
}

type ac_point = {
  acf : Solver.cfactor;
  ac_x0 : Cx.t array;  (* A^-1 b for the first source *)
  ac_z : (int, Cx.t array) Hashtbl.t;  (* term id -> A^-1 u *)
}

type t = {
  netlist : Netlist.t;
  elems : Netlist.element array;
  asm : Assembly.t;
  wkey : Netlist.structural_key;
  f_threshold : float;
  max_rank : int;
  condition_limit : float;
  base_factor : Solver.factor;
  g_symbolic : Solver.symbolic option;
  rhs0 : float array;
  x0 : float array;  (* base_factor^-1 rhs0, from the DC system *)
  zcache : (int, float array) Hashtbl.t;  (* term id -> G^-1 u *)
  mutable tfactor : Solver.factor option;  (* lazy factor of G^T *)
  params : (string * [ `R | `L | `C | `M ], param) Hashtbl.t;
  mutable next_tid : int;
  ac : (float, ac_point) Hashtbl.t;  (* omega -> cached AC point *)
  mutable ac_sym : Solver.symbolic option;
  mutable n_updates : int;
  mutable n_refactors : int;
  mutable n_fallbacks : int;
}

let assembly t = t.asm
let key t = t.wkey

let compile ?(max_rank = 8) ?(condition_limit = 1e8) ?(f = 0.5) netlist =
  if max_rank < 0 then invalid_arg "Whatif.compile: max_rank < 0";
  if not (condition_limit > 1.0) then
    invalid_arg "Whatif.compile: condition_limit <= 1";
  if f <= 0.0 || f >= 1.0 then invalid_arg "Whatif.compile: f outside (0,1)";
  let asm = Assembly.of_netlist netlist in
  let sys = Dc.make ~assembly:asm netlist in
  M.incr m_compile;
  {
    netlist;
    elems = Netlist.elements netlist;
    asm;
    wkey = Netlist.structural_key netlist;
    f_threshold = f;
    max_rank;
    condition_limit;
    base_factor = Dc.factor sys;
    g_symbolic = Dc.g_symbolic sys;
    rhs0 = Dc.rhs sys;
    x0 = Array.copy (Dc.unknowns sys);
    zcache = Hashtbl.create 16;
    tfactor = None;
    params = Hashtbl.create 16;
    next_tid = 0;
    ac = Hashtbl.create 8;
    ac_sym = None;
    n_updates = 0;
    n_refactors = 0;
    n_fallbacks = 0;
  }

(* ---------------- parameters ---------------- *)

let node_vec pairs =
  let entries = List.filter (fun (n, _) -> n <> Netlist.ground) pairs in
  {
    vidx = Array.of_list (List.map (fun (n, _) -> n - 1) entries);
    vsgn = Array.of_list (List.map snd entries);
  }

let row_vec row = { vidx = [| row |]; vsgn = [| 1.0 |] }

let fresh_term t tmat tu tv =
  let tid = t.next_tid in
  t.next_tid <- tid + 1;
  { tid; tmat; tu; tv; u_dense = None; v_dense = None }

let positive v = v > 0.0 && Float.is_finite v

let param t name kind =
  match Hashtbl.find_opt t.params (name, kind) with
  | Some p -> p
  | None ->
      let id =
        match Netlist.find_element t.netlist name with
        | Some id -> id
        | None -> invalid_arg ("Whatif.param: unknown element " ^ name)
      in
      let reject what =
        invalid_arg
          (Printf.sprintf "Whatif.param: element %s has no %s value" name what)
      in
      let rows = t.asm.Assembly.current_rows.(id) in
      let w = node_vec in
      let p =
        match (t.elems.(id), kind) with
        | Netlist.Resistor { a; b; ohms }, `R ->
            let wv = w [ (a, 1.0); (b, -1.0) ] in
            {
              p_name = name;
              p_kind = `R;
              p_base = ohms;
              p_terms = [| fresh_term t `G wv wv |];
              p_delta = (fun r -> (1.0 /. r) -. (1.0 /. ohms));
              p_ddelta = (fun r -> -1.0 /. (r *. r));
              p_ok = positive;
            }
        | Netlist.Rl_branch { a; b; ohms; henries }, `R ->
            if henries = 0.0 then begin
              (* stamps as a plain conductance: no branch row *)
              let wv = w [ (a, 1.0); (b, -1.0) ] in
              {
                p_name = name;
                p_kind = `R;
                p_base = ohms;
                p_terms = [| fresh_term t `G wv wv |];
                p_delta = (fun r -> (1.0 /. r) -. (1.0 /. ohms));
                p_ddelta = (fun r -> -1.0 /. (r *. r));
                p_ok = positive;
              }
            end
            else begin
              let rv = row_vec rows.(0) in
              {
                p_name = name;
                p_kind = `R;
                p_base = ohms;
                p_terms = [| fresh_term t `G rv rv |];
                p_delta = (fun r -> r -. ohms);
                p_ddelta = (fun _ -> 1.0);
                p_ok = positive;
              }
            end
        | Netlist.Rl_branch { henries; _ }, `L ->
            if henries = 0.0 then
              reject "inductance (henries = 0 stamps as a resistor)"
            else begin
              let rv = row_vec rows.(0) in
              {
                p_name = name;
                p_kind = `L;
                p_base = henries;
                p_terms = [| fresh_term t `C rv rv |];
                p_delta = (fun l -> l -. henries);
                p_ddelta = (fun _ -> 1.0);
                p_ok = positive;
              }
            end
        | Netlist.Capacitor { a; b; farads }, `C ->
            let wv = w [ (a, 1.0); (b, -1.0) ] in
            {
              p_name = name;
              p_kind = `C;
              p_base = farads;
              p_terms = [| fresh_term t `C wv wv |];
              p_delta = (fun c -> c -. farads);
              p_ddelta = (fun _ -> 1.0);
              p_ok = positive;
            }
        | Netlist.Coupled_rl { ohms; _ }, `R ->
            let r1 = row_vec rows.(0) and r2 = row_vec rows.(1) in
            {
              p_name = name;
              p_kind = `R;
              p_base = ohms;
              p_terms = [| fresh_term t `G r1 r1; fresh_term t `G r2 r2 |];
              p_delta = (fun r -> r -. ohms);
              p_ddelta = (fun _ -> 1.0);
              p_ok = positive;
            }
        | Netlist.Coupled_rl { henries; _ }, `L ->
            let r1 = row_vec rows.(0) and r2 = row_vec rows.(1) in
            {
              p_name = name;
              p_kind = `L;
              p_base = henries;
              p_terms = [| fresh_term t `C r1 r1; fresh_term t `C r2 r2 |];
              p_delta = (fun l -> l -. henries);
              p_ddelta = (fun _ -> 1.0);
              p_ok = positive;
            }
        | Netlist.Coupled_rl { mutual; _ }, `M ->
            let r1 = row_vec rows.(0) and r2 = row_vec rows.(1) in
            {
              p_name = name;
              p_kind = `M;
              p_base = mutual;
              p_terms = [| fresh_term t `C r1 r2; fresh_term t `C r2 r1 |];
              p_delta = (fun m -> m -. mutual);
              p_ddelta = (fun _ -> 1.0);
              p_ok = (fun m -> m >= 0.0 && Float.is_finite m);
            }
        | Netlist.Resistor _, (`L | `C | `M) -> reject "non-resistance"
        | Netlist.Rl_branch _, (`C | `M) -> reject "capacitance or mutual"
        | Netlist.Capacitor _, (`R | `L | `M) -> reject "non-capacitance"
        | Netlist.Coupled_rl _, `C -> reject "capacitance"
        | (Netlist.Vsource _ | Netlist.Isource _ | Netlist.Inverter _), _ ->
            reject "perturbable"
      in
      Hashtbl.add t.params (name, kind) p;
      p

let base_value p = p.p_base

(* ---------------- evaluation plumbing ---------------- *)

type target =
  | Dc_voltage of Netlist.node
  | Delay of Netlist.node
  | Ac_mag of Netlist.node * float

exception Reject

let size t = t.asm.Assembly.size
let plan t = t.asm.Assembly.plan

let dense_u t term =
  match term.u_dense with
  | Some a -> a
  | None ->
      let a = Array.make (size t) 0.0 in
      Array.iteri (fun k i -> a.(i) <- a.(i) +. term.tu.vsgn.(k)) term.tu.vidx;
      term.u_dense <- Some a;
      a

let dense_v t term =
  match term.v_dense with
  | Some a -> a
  | None ->
      let a = Array.make (size t) 0.0 in
      Array.iteri (fun k j -> a.(j) <- a.(j) +. term.tv.vsgn.(k)) term.tv.vidx;
      term.v_dense <- Some a;
      a

let sparse_dot vec x =
  let acc = ref 0.0 in
  Array.iteri (fun k i -> acc := !acc +. (vec.vsgn.(k) *. x.(i))) vec.vidx;
  !acc

let check_set set =
  if List.exists (fun (p, v) -> not (Float.is_finite v && p.p_ok v)) set then
    raise Reject

(* Active (term, delta) pairs on one matrix for a settings list. *)
let active_terms which set =
  List.concat_map
    (fun (p, value) ->
      let d = p.p_delta value in
      if d = 0.0 then []
      else
        Array.to_list p.p_terms
        |> List.filter_map (fun term ->
               if term.tmat = which then Some (term, d) else None))
    set

(* Delta stamps of a (term, delta) list through a fill accumulator:
   4 entries per rank-1 term (fewer at ground).  Every position is
   inside the base pattern, so a refactor through this fill can replay
   the base symbolic analysis. *)
let stamp_deltas terms add =
  List.iter
    (fun (tm, d) ->
      Array.iteri
        (fun a i ->
          let si = tm.tu.vsgn.(a) in
          Array.iteri
            (fun b j -> add i j (d *. si *. tm.tv.vsgn.(b)))
            tm.tv.vidx)
        tm.tu.vidx)
    terms

let count_update t =
  t.n_updates <- t.n_updates + 1;
  if M.recording () then M.incr m_update

let count_refactor ?(fallback = false) t =
  t.n_refactors <- t.n_refactors + 1;
  if fallback then t.n_fallbacks <- t.n_fallbacks + 1;
  if M.recording () then begin
    M.incr m_refactor;
    if fallback then M.incr m_fallback
  end

let zcol t term =
  match Hashtbl.find_opt t.zcache term.tid with
  | Some z -> z
  | None ->
      let z = Solver.solve (plan t) t.base_factor (dense_u t term) in
      Hashtbl.add t.zcache term.tid z;
      z

(* How the perturbed G is served: untouched, a Woodbury view over the
   base factor, or a numeric refactor reusing the symbolic. *)
type resolved =
  | R_base
  | R_updated of Update.t
  | R_refactored of Solver.factor

let refactor_g ?(fallback = false) t gterms =
  count_refactor ~fallback t;
  let fill add =
    Assembly.Coo.iter t.asm.Assembly.g add;
    stamp_deltas gterms add
  in
  R_refactored (Solver.factor_with ?symbolic:t.g_symbolic (plan t) ~fill)

(* A tripped SMW guard means the rank-k path was abandoned for a full
   refactor: journal the reason (and count the solve degraded only
   when conditioning, not bookkeeping, caused it). *)
let guard_trip ~reason ~rank ?condition () =
  if Rlc_instr.Journal.capturing () then
    Rlc_instr.Journal.record "smw.guard"
      ([
         ("reason", Rlc_instr.Journal.Str reason);
         ("rank", Rlc_instr.Journal.Int rank);
       ]
      @
      match condition with
      | Some c -> [ ("condition", Rlc_instr.Journal.Num c) ]
      | None -> []);
  if reason <> "rank" then
    Rlc_instr.Health.degraded ~kind:"smw" ~reason:("guard: " ^ reason)

let resolve_g t gterms =
  match gterms with
  | [] -> R_base
  | _ -> begin
      let k = List.length gterms in
      if t.max_rank = 0 then refactor_g t gterms
      else if k > t.max_rank then begin
        guard_trip ~reason:"rank" ~rank:k ();
        refactor_g ~fallback:true t gterms
      end
      else begin
        let terms = Array.of_list gterms in
        let u = Array.map (fun (tm, _) -> dense_u t tm) terms in
        let v = Array.map (fun (tm, _) -> dense_v t tm) terms in
        let z = Array.map (fun (tm, _) -> zcol t tm) terms in
        let scale = Array.map snd terms in
        match Update.make ~z ~scale (plan t) t.base_factor ~u ~v with
        | upd when Update.condition upd <= t.condition_limit ->
            count_update t;
            R_updated upd
        | upd ->
            guard_trip ~reason:"condition" ~rank:k
              ~condition:(Update.condition upd) ();
            refactor_g ~fallback:true t gterms
        | exception Update.Singular ->
            guard_trip ~reason:"singular" ~rank:k ();
            refactor_g ~fallback:true t gterms
      end
    end

let solve_resolved t res b =
  match res with
  | R_base -> Solver.solve (plan t) t.base_factor b
  | R_updated upd -> Update.solve upd b
  | R_refactored f -> Solver.solve (plan t) f b

(* ---------------- DC ---------------- *)

let check_node t node ctx =
  if node < 0 || node >= t.asm.Assembly.n_nodes then
    invalid_arg (Printf.sprintf "Whatif.%s: node %d out of range" ctx node)

let dc_solution t set =
  match resolve_g t (active_terms `G set) with
  | R_base -> t.x0
  | R_updated upd ->
      let x = Array.make (size t) 0.0 in
      Update.apply upd ~x0:t.x0 ~x;
      x
  | R_refactored f -> Solver.solve (plan t) f t.rhs0

let dc_eval t set node =
  check_node t node "evaluate";
  let x = dc_solution t set in
  if node = Netlist.ground then 0.0 else x.(node - 1)

(* ---------------- two-pole delay from moments ----------------

   The circuit library sits below the analytic core, so the two-pole
   step-response crossing is restated here (same formulas as
   [Rlc_core.Step_response] / [Rlc_core.Delay], which the tests
   cross-validate): poles of 1 / (1 + b1 s + b2 s^2) with the
   repeated-root branch inside the same relative band. *)

let critical_band = 1e-7

let step_eval ~b1 ~b2 tt =
  if tt = 0.0 then 0.0
  else begin
    let disc = (b1 *. b1) -. (4.0 *. b2) in
    if Float.abs disc <= critical_band *. b1 *. b1 then begin
      let a = b1 /. (2.0 *. b2) in
      1.0 -. ((1.0 +. (a *. tt)) *. Float.exp (-.a *. tt))
    end
    else begin
      let sq = Cx.sqrt (Cx.of_float disc) in
      let denom = 2.0 *. b2 in
      let open Cx in
      let s1 = scale (1.0 /. denom) (of_float (-.b1) +: sq) in
      let s2 = scale (1.0 /. denom) (of_float (-.b1) -: sq) in
      let d = s2 -: s1 in
      let v =
        of_float 1.0
        -: (s2 /: d *: exp (scale tt s1))
        +: (s1 /: d *: exp (scale tt s2))
      in
      Cx.real_part_checked ~tol:1e-6 v
    end
  end

let step_deriv ~b1 ~b2 tt =
  let disc = (b1 *. b1) -. (4.0 *. b2) in
  if Float.abs disc <= critical_band *. b1 *. b1 then begin
    let a = b1 /. (2.0 *. b2) in
    a *. a *. tt *. Float.exp (-.a *. tt)
  end
  else begin
    let sq = Cx.sqrt (Cx.of_float disc) in
    let denom = 2.0 *. b2 in
    let open Cx in
    let s1 = scale (1.0 /. denom) (of_float (-.b1) +: sq) in
    let s2 = scale (1.0 /. denom) (of_float (-.b1) -: sq) in
    let d = s2 -: s1 in
    let v = s1 *: s2 /: d *: (exp (scale tt s2) -: exp (scale tt s1)) in
    Cx.real_part_checked ~tol:1e-6 v
  end

let crossing_delay ~f ~b1 ~b2 =
  if not (b1 > 0.0 && b2 > 0.0) then Float.nan
  else begin
    let residual tt = step_eval ~b1 ~b2 tt -. f in
    let lo, hi =
      Roots.bracket_first residual ~t0:0.0 ~dt:(b1 /. 32.0)
    in
    if lo = hi then lo
    else
      Roots.newton_bracketed ~tol:1e-13 ~f:residual
        ~df:(step_deriv ~b1 ~b2) lo hi
  end

let two_pole ~m0 ~m1 ~m2 =
  if Float.abs m0 < 1e-300 then (Float.nan, Float.nan)
  else begin
    let r1 = m1 /. m0 in
    (-.r1, (r1 *. r1) -. (m2 /. m0))
  end

let require_source t ctx =
  if Array.length t.asm.Assembly.inputs = 0 then
    invalid_arg ("Whatif." ^ ctx ^ ": deck has no sources")

(* C' * y with the value deltas applied on the fly. *)
let cmatvec t cterms y =
  let r = Array.make (size t) 0.0 in
  Assembly.Coo.iter t.asm.Assembly.c (fun i j v ->
      r.(i) <- r.(i) +. (v *. y.(j)));
  List.iter
    (fun (tm, d) ->
      let vy = sparse_dot tm.tv y in
      Array.iteri
        (fun a i -> r.(i) <- r.(i) +. (d *. tm.tu.vsgn.(a) *. vy))
        tm.tu.vidx)
    cterms;
  r

let moments t set node =
  check_node t node "evaluate";
  if node = Netlist.ground then
    invalid_arg "Whatif.evaluate: delay at ground";
  require_source t "evaluate";
  let gterms = active_terms `G set in
  let cterms = active_terms `C set in
  let res = resolve_g t gterms in
  let b0 = Assembly.b_column t.asm 0 in
  let y0 = solve_resolved t res b0 in
  let y1 = Array.map Float.neg (solve_resolved t res (cmatvec t cterms y0)) in
  let y2 = Array.map Float.neg (solve_resolved t res (cmatvec t cterms y1)) in
  (res, cterms, y0, y1, y2)

let delay_eval t set node =
  let _, _, y0, y1, y2 = moments t set node in
  let p = node - 1 in
  let b1, b2 = two_pole ~m0:y0.(p) ~m1:y1.(p) ~m2:y2.(p) in
  crossing_delay ~f:t.f_threshold ~b1 ~b2

(* ---------------- AC ---------------- *)

let ac_point t omega =
  match Hashtbl.find_opt t.ac omega with
  | Some pt -> pt
  | None ->
      let s = Cx.make 0.0 omega in
      let acf =
        Solver.cfactor_with ?symbolic:t.ac_sym (plan t)
          ~fill:(Assembly.cfill t.asm s)
      in
      (match t.ac_sym with
      | None -> t.ac_sym <- Solver.csymbolic_of acf
      | Some _ -> ());
      let b0 = Array.map Cx.of_float (Assembly.b_column t.asm 0) in
      let pt =
        { acf; ac_x0 = Solver.csolve (plan t) acf b0; ac_z = Hashtbl.create 8 }
      in
      Hashtbl.add t.ac omega pt;
      pt

let czcol t pt term =
  match Hashtbl.find_opt pt.ac_z term.tid with
  | Some z -> z
  | None ->
      let u = Array.map Cx.of_float (dense_u t term) in
      let z = Solver.csolve (plan t) pt.acf u in
      Hashtbl.add pt.ac_z term.tid z;
      z

(* AC terms: a G delta shifts A = G + sC by [delta u v^T], a C delta
   by [s delta u v^T]. *)
let ac_terms ~s set =
  List.map (fun (tm, d) -> (tm, Cx.of_float d)) (active_terms `G set)
  @ List.map
      (fun (tm, d) -> (tm, Cx.scale d s))
      (active_terms `C set)

let ac_refactor ?(fallback = false) ?(count = true) t ~s terms =
  if count then count_refactor ~fallback t;
  let fill add =
    Assembly.cfill t.asm s add;
    List.iter
      (fun (tm, d) ->
        Array.iteri
          (fun a i ->
            let si = tm.tu.vsgn.(a) in
            Array.iteri
              (fun b j ->
                add i j (Cx.scale (si *. tm.tv.vsgn.(b)) d))
              tm.tv.vidx)
          tm.tu.vidx)
      terms
  in
  Solver.cfactor_with ?symbolic:t.ac_sym (plan t) ~fill

let ac_solution t set omega =
  let s = Cx.make 0.0 omega in
  let pt = ac_point t omega in
  match ac_terms ~s set with
  | [] -> pt.ac_x0
  | terms -> begin
      let k = List.length terms in
      let solve_refactored ~fallback =
        let acf = ac_refactor ~fallback t ~s terms in
        let b0 = Array.map Cx.of_float (Assembly.b_column t.asm 0) in
        Solver.csolve (plan t) acf b0
      in
      if t.max_rank = 0 then solve_refactored ~fallback:false
      else if k > t.max_rank then begin
        guard_trip ~reason:"rank" ~rank:k ();
        solve_refactored ~fallback:true
      end
      else begin
        let terms = Array.of_list terms in
        let u =
          Array.map (fun (tm, _) -> Array.map Cx.of_float (dense_u t tm)) terms
        in
        let v =
          Array.map (fun (tm, _) -> Array.map Cx.of_float (dense_v t tm)) terms
        in
        let z = Array.map (fun (tm, _) -> czcol t pt tm) terms in
        let scale = Array.map snd terms in
        match Update.cmake ~z ~scale (plan t) pt.acf ~u ~v with
        | upd when Update.ccondition upd <= t.condition_limit ->
            count_update t;
            let x = Array.make (size t) Cx.zero in
            Update.capply upd ~x0:pt.ac_x0 ~x;
            x
        | upd ->
            guard_trip ~reason:"condition" ~rank:k
              ~condition:(Update.ccondition upd) ();
            solve_refactored ~fallback:true
        | exception Update.Singular ->
            guard_trip ~reason:"singular" ~rank:k ();
            solve_refactored ~fallback:true
      end
    end

let ac_eval t set node omega =
  check_node t node "evaluate";
  require_source t "evaluate";
  if not (Float.is_finite omega) then
    invalid_arg "Whatif.evaluate: non-finite omega";
  let x = ac_solution t set omega in
  if node = Netlist.ground then 0.0 else Cx.norm x.(node - 1)

(* ---------------- evaluate ---------------- *)

let evaluate ?(set = []) t target =
  try
    check_set set;
    match target with
    | Dc_voltage node -> dc_eval t set node
    | Delay node -> delay_eval t set node
    | Ac_mag (node, omega) -> ac_eval t set node omega
  with
  | Reject
  | Lu.Singular | Banded.Singular | Sparse.Singular
  | Clu.Singular | Cbanded.Singular
  | Roots.No_bracket
  | Roots.No_convergence _ ->
      Float.nan

(* ---------------- adjoint gradients ---------------- *)

(* Transposed factors.  The G pattern is structurally symmetric (the
   skew branch coupling occupies mirrored slots), so the transposed
   stamps respect the same plan bandwidths, and the sparse symbolic
   replays against transposed values like any other value-only
   restamp (with the usual repivot fallback). *)
let transpose_factor t gterms =
  let fill add =
    Assembly.Coo.iter t.asm.Assembly.g (fun i j v -> add j i v);
    stamp_deltas gterms (fun i j v -> add j i v)
  in
  Solver.factor_with ?symbolic:t.g_symbolic (plan t) ~fill

let base_transpose_factor t =
  match t.tfactor with
  | Some f -> f
  | None ->
      let f = transpose_factor t [] in
      t.tfactor <- Some f;
      f

(* Forward/adjoint factor pair at a settings point: base factors when
   the settings leave G untouched, exact refactors otherwise (the
   gradient path is exact by construction; Woodbury views are for the
   value-sweep hot loop). *)
let gradient_factors t gterms =
  match gterms with
  | [] -> (t.base_factor, base_transpose_factor t)
  | _ ->
      let fill add =
        Assembly.Coo.iter t.asm.Assembly.g add;
        stamp_deltas gterms add
      in
      ( Solver.factor_with ?symbolic:t.g_symbolic (plan t) ~fill,
        transpose_factor t gterms )

let unit_vec n p =
  let e = Array.make n 0.0 in
  e.(p) <- 1.0;
  e

(* Value a parameter takes at a settings point. *)
let value_at set p =
  match List.find_opt (fun (q, _) -> q == p) set with
  | Some (_, v) -> v
  | None -> p.p_base

let dc_gradient t set node ~wrt =
  check_node t node "gradient";
  if node = Netlist.ground then Array.make (Array.length wrt) 0.0
  else begin
    let gterms = active_terms `G set in
    let fwd, adj = gradient_factors t gterms in
    let x =
      match gterms with
      | [] -> t.x0
      | _ -> Solver.solve (plan t) fwd t.rhs0
    in
    let lambda = Solver.solve (plan t) adj (unit_vec (size t) (node - 1)) in
    Array.map
      (fun p ->
        let dd = p.p_ddelta (value_at set p) in
        Array.fold_left
          (fun acc tm ->
            if tm.tmat = `G then
              acc -. (dd *. sparse_dot tm.tu lambda *. sparse_dot tm.tv x)
            else acc)
          0.0 p.p_terms)
      wrt
  end

(* C'^T * y with deltas. *)
let ctmatvec t cterms y =
  let r = Array.make (size t) 0.0 in
  Assembly.Coo.iter t.asm.Assembly.c (fun i j v ->
      r.(j) <- r.(j) +. (v *. y.(i)));
  List.iter
    (fun (tm, d) ->
      let uy = sparse_dot tm.tu y in
      Array.iteri
        (fun b j -> r.(j) <- r.(j) +. (d *. tm.tv.vsgn.(b) *. uy))
        tm.tv.vidx)
    cterms;
  r

let delay_gradient t set node ~wrt =
  check_node t node "gradient";
  if node = Netlist.ground then
    invalid_arg "Whatif.gradient: delay at ground";
  require_source t "gradient";
  let gterms = active_terms `G set in
  let cterms = active_terms `C set in
  let fwd, adj = gradient_factors t gterms in
  let solve_f b = Solver.solve (plan t) fwd b in
  let solve_a b = Solver.solve (plan t) adj b in
  let b0 = Assembly.b_column t.asm 0 in
  let y0 = solve_f b0 in
  let y1 = Array.map Float.neg (solve_f (cmatvec t cterms y0)) in
  let y2 = Array.map Float.neg (solve_f (cmatvec t cterms y1)) in
  let p = node - 1 in
  let m0 = y0.(p) and m1 = y1.(p) and m2 = y2.(p) in
  let b1, b2 = two_pole ~m0 ~m1 ~m2 in
  let tau = crossing_delay ~f:t.f_threshold ~b1 ~b2 in
  if Float.is_nan tau then Array.make (Array.length wrt) Float.nan
  else begin
    let l0 = solve_a (unit_vec (size t) p) in
    let l1 = Array.map Float.neg (solve_a (ctmatvec t cterms l0)) in
    let l2 = Array.map Float.neg (solve_a (ctmatvec t cterms l1)) in
    (* the crossing's scalar sensitivities to the two coefficients via
       the implicit function theorem on V(tau; b1, b2) = f:
       dtau/db = -(dV/db) / (dV/dt).  dV/dt is analytic; dV/db uses a
       central difference of the smooth closed-form response with a
       step relative to the coefficient (the coefficients are O(1e-12),
       far below {!Fdiff}'s absolute step floor, and re-solving the
       crossing under perturbed coefficients would drown the signal in
       root-finder tolerance noise). *)
    let vdot = step_deriv ~b1 ~b2 tau in
    let dvdb g x =
      let h = 1e-6 *. Float.abs x in
      (g (x +. h) -. g (x -. h)) /. (2.0 *. h)
    in
    let dtau_db1 =
      -.dvdb (fun b1' -> step_eval ~b1:b1' ~b2 tau) b1 /. vdot
    in
    let dtau_db2 =
      -.dvdb (fun b2' -> step_eval ~b1 ~b2:b2' tau) b2 /. vdot
    in
    let ys = [| y0; y1; y2 |] and ls = [| l0; l1; l2 |] in
    Array.map
      (fun pr ->
        let dd = pr.p_ddelta (value_at set pr) in
        (* dm_j = - sum_{i+k=j-1} l_i^T dC y_k
                  - sum_{i+k=j}   l_i^T dG y_k, with every rank-1
           contraction an O(1) pair of sparse dots *)
        let dm = [| 0.0; 0.0; 0.0 |] in
        Array.iter
          (fun tm ->
            for i = 0 to 2 do
              for k = 0 to 2 - i do
                let lu = sparse_dot tm.tu ls.(i) in
                let vy = sparse_dot tm.tv ys.(k) in
                let contraction = dd *. lu *. vy in
                match tm.tmat with
                | `G ->
                    if i + k <= 2 then
                      dm.(i + k) <- dm.(i + k) -. contraction
                | `C ->
                    if i + k + 1 <= 2 then
                      dm.(i + k + 1) <- dm.(i + k + 1) -. contraction
              done
            done)
          pr.p_terms;
        let r1 = m1 /. m0 in
        let dr1 = ((dm.(1) *. m0) -. (m1 *. dm.(0))) /. (m0 *. m0) in
        let db1 = -.dr1 in
        let db2 =
          (2.0 *. r1 *. dr1)
          -. (((dm.(2) *. m0) -. (m2 *. dm.(0))) /. (m0 *. m0))
        in
        (dtau_db1 *. db1) +. (dtau_db2 *. db2))
      wrt
  end

let ac_gradient t set node omega ~wrt =
  check_node t node "gradient";
  require_source t "gradient";
  if node = Netlist.ground then Array.make (Array.length wrt) 0.0
  else begin
    let s = Cx.make 0.0 omega in
    let terms = ac_terms ~s set in
    let x =
      match terms with
      | [] -> (ac_point t omega).ac_x0
      | _ ->
          (* part of the gradient, not a sweep refactor: don't count *)
          let acf = ac_refactor ~count:false t ~s terms in
          let b0 = Array.map Cx.of_float (Assembly.b_column t.asm 0) in
          Solver.csolve (plan t) acf b0
    in
    let adj =
      let fill add =
        Assembly.cfill t.asm s (fun i j v -> add j i v);
        List.iter
          (fun (tm, d) ->
            Array.iteri
              (fun a i ->
                let si = tm.tu.vsgn.(a) in
                Array.iteri
                  (fun b j ->
                    add j i (Cx.scale (si *. tm.tv.vsgn.(b)) d))
                  tm.tv.vidx)
              tm.tu.vidx)
          terms
      in
      Solver.cfactor_with ?symbolic:t.ac_sym (plan t) ~fill
    in
    let e = Array.make (size t) Cx.zero in
    e.(node - 1) <- Cx.one;
    let lambda = Solver.csolve (plan t) adj e in
    let h = x.(node - 1) in
    let habs = Cx.norm h in
    let csparse_dot vec (zv : Cx.t array) =
      let acc = ref Cx.zero in
      Array.iteri
        (fun k i -> acc := Cx.( +: ) !acc (Cx.scale vec.vsgn.(k) zv.(i)))
        vec.vidx;
      !acc
    in
    Array.map
      (fun p ->
        if habs < 1e-300 then Float.nan
        else begin
          let dd = p.p_ddelta (value_at set p) in
          let dh =
            Array.fold_left
              (fun acc tm ->
                let sigma =
                  match tm.tmat with `G -> Cx.one | `C -> s
                in
                let lu = csparse_dot tm.tu lambda in
                let vx = csparse_dot tm.tv x in
                Cx.( -: ) acc (Cx.scale dd (Cx.( *: ) sigma (Cx.( *: ) lu vx))))
              Cx.zero p.p_terms
          in
          Cx.re (Cx.( *: ) (Cx.conj h) dh) /. habs
        end)
      wrt
  end

let gradient ?(set = []) t target ~wrt =
  if M.recording () then M.incr m_adjoint;
  try
    check_set set;
    match target with
    | Dc_voltage node -> dc_gradient t set node ~wrt
    | Delay node -> delay_gradient t set node ~wrt
    | Ac_mag (node, omega) -> ac_gradient t set node omega ~wrt
  with
  | Reject
  | Lu.Singular | Banded.Singular | Sparse.Singular
  | Clu.Singular | Cbanded.Singular
  | Roots.No_bracket
  | Roots.No_convergence _ ->
      Array.make (Array.length wrt) Float.nan

(* ---------------- stats ---------------- *)

type stats = { updates : int; refactors : int; fallbacks : int }

let stats t =
  { updates = t.n_updates; refactors = t.n_refactors;
    fallbacks = t.n_fallbacks }

(* ---------------- the unified objective interface ---------------- *)

type 'w objective = {
  workspace : 'w;
  eval : 'w -> float array -> float;
}

type 'w residuals = {
  rworkspace : 'w;
  reval : 'w -> float array -> float array;
}

let objective t target ~wrt =
  let eval ws x =
    if Array.length x <> Array.length wrt then
      invalid_arg "Whatif.objective: parameter vector length mismatch";
    let set =
      Array.to_list (Array.map2 (fun p v -> (p, v)) wrt x)
    in
    evaluate ~set ws target
  in
  { workspace = t; eval }

let custom ~workspace ~eval = { workspace; eval }
let custom_residuals ~workspace ~eval = { rworkspace = workspace; reval = eval }

let eval o x = o.eval o.workspace x
let eval_residuals r x = r.reval r.rworkspace x

let minimize ?max_iter ?ftol ?xtol ?initial_step o ~x0 =
  Nelder_mead.minimize_ctx ?max_iter ?ftol ?xtol ?initial_step ~ctx:o.workspace
    ~f:o.eval ~x0 ()

let solve_residuals ?max_iter ?tol ?lower ?upper r ~x0 =
  Newton.solve_ctx ?max_iter ?tol ?lower ?upper ~ctx:r.rworkspace ~f:r.reval
    ~x0 ()
