(** Time-dependent source values for independent voltage / current
    sources (a small SPICE-like stimulus language). *)

type t =
  | Dc of float
  | Step of { v0 : float; v1 : float; t_delay : float; t_rise : float }
      (** [v0] until [t_delay], linear ramp to [v1] over [t_rise]. *)
  | Pulse of {
      v0 : float;
      v1 : float;
      t_delay : float;
      t_rise : float;
      t_high : float;
      t_fall : float;
      period : float;
    }  (** Repeating trapezoidal pulse, SPICE PULSE semantics. *)
  | Pwl of (float * float) list
      (** Piecewise-linear (time, value) corners; clamped outside. *)

val eval : t -> float -> float
(** Source value at time [t]. *)

val square_wave : vdd:float -> period:float -> ?t_rise:float -> unit -> t
(** 50%-duty pulse between 0 and [vdd]; [t_rise] defaults to
    [period / 100]. *)

val validate : t -> unit
(** Raises [Invalid_argument] on malformed descriptions (non-positive
    rise times or periods, negative [t_delay] on [Step]/[Pulse], a PWL
    first corner before t = 0, non-increasing PWL corners, pulse that
    does not fit its period). *)
