(** Power-delivery-network grid workloads.

    An [rows] x [cols] mesh of identical R(L) segments with a decap to
    ground at every grid node, fed from VDD through bump/via branches
    at a few port sites and loaded by current sinks — the standard
    on-chip power-grid model (the shape of the DATE 2007 distributed
    PDN, as modelled by PowerScout-style generators).  These are the
    grid-structured systems the sparse LU backend exists for: a
    100 x 100 mesh is ~10^4 unknowns whose RCM band is ~100 wide, so
    the banded path costs O(n^3/2) while minimum-degree sparse LU
    stays near O(n^1.5).

    The mesh compiles to an ordinary {!Netlist.t}, so every engine in
    the repository (DC, transient, AC, PRIMA) runs on it unchanged;
    {!impedance} is the canonical scan — |Z(f)| seen at a load site —
    run through the {!Assembly.cengine} sweep engine so the sparse
    symbolic analysis happens once for the whole frequency sweep. *)

type spec = {
  rows : int;  (** grid rows, >= 2 *)
  cols : int;  (** grid columns, >= 2 *)
  r_seg : float;  (** resistance of one mesh edge, ohm (> 0) *)
  l_seg : float;  (** inductance of one mesh edge, H (0 = RC mesh) *)
  c_node : float;  (** decap to ground at each grid node, F (>= 0) *)
  r_via : float;  (** bump/via branch resistance, ohm (> 0) *)
  l_via : float;  (** bump/via branch inductance, H (>= 0) *)
  vdd : float;  (** supply level behind the bumps *)
  vdd_ports : (int * int) list;  (** (row, col) bump sites, non-empty *)
  loads : (int * int * float) list;
      (** (row, col, amps) switching-current sinks *)
}

val default : spec
(** A 12 x 12 die grid with DATE-2007-flavoured values (2.2 nF total
    die decap, 50 mohm segments, 40 mohm / 72 pH bumps at the four
    corners, a 1 A load at the grid centre). *)

val rc_grid : ?loads:(int * int * float) list -> rows:int -> cols:int -> unit -> spec
(** [default] rescaled to an [rows] x [cols] pure-RC mesh (l_seg and
    l_via zero, total decap kept at [default]'s, corner ports, centre
    load unless [loads] overrides) — the cheap way to make a
    grid-structured system of any size for tests and benches. *)

type t = private {
  spec : spec;
  netlist : Netlist.t;
  nodes : Netlist.node array array;  (** [rows] x [cols] grid nodes *)
  asm : Assembly.t;  (** compiled stamp IR, shared by every scan *)
}

val build : spec -> t
(** Builds and compiles the mesh.  Raises [Invalid_argument] on a
    non-physical spec (sizes < 2, r_seg or r_via <= 0, negative l or
    c, empty or out-of-range ports/loads). *)

val node : t -> row:int -> col:int -> Netlist.node
(** The netlist node of a grid site.  Raises [Invalid_argument] out of
    range. *)

val size : t -> int
(** Unknown count of the compiled system. *)

val load_name : row:int -> col:int -> string
(** Element name of the load current source at a grid site (a
    transient current probe, or the AC input of {!impedance}). *)

val impedance :
  ?pool:Rlc_parallel.Pool.t ->
  ?backend:Rlc_numerics.Solver.backend ->
  t ->
  at:int * int ->
  freqs:float array ->
  (float * float) array
(** [impedance t ~at:(r, c) ~freqs] is the input-impedance magnitude
    [(f, |Z(f)|)] seen looking into the grid at load site [(r, c)] —
    the voltage there in response to its unit AC load current, with
    the VDD sources quiesced (AC small-signal).  [(r, c)] must be one
    of [spec.loads].  The whole sweep shares one
    {!Assembly.cengine}: on the sparse backend the symbolic analysis
    is done once and refactored per point, and the scan is
    deterministic for any [pool] size. *)
