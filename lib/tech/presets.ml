let geometry_250nm =
  Rlc_extraction.Geometry.make ~width:(Units.um 2.0) ~pitch:(Units.um 4.0)
    ~thickness:(Units.um 2.5) ~t_ins:(Units.um 13.9) ~eps_r:3.3

let geometry_100nm =
  Rlc_extraction.Geometry.make ~width:(Units.um 2.0) ~pitch:(Units.um 4.0)
    ~thickness:(Units.um 2.5) ~t_ins:(Units.um 15.4) ~eps_r:2.0

let node_250nm =
  Node.make ~name:"250nm" ~feature_nm:250.0 ~vdd:2.5
    ~r:(Units.ohm_per_mm 4.4) ~c:(Units.pf_per_m 203.50)
    ~geometry:geometry_250nm
    ~driver:(Driver.make ~rs:(Units.kohm 11.784) ~c0:(Units.ff 1.6314)
               ~cp:(Units.ff 6.2474))
    ()

let node_100nm =
  Node.make ~name:"100nm" ~feature_nm:100.0 ~vdd:1.2
    ~r:(Units.ohm_per_mm 4.4) ~c:(Units.pf_per_m 123.33)
    ~geometry:geometry_100nm
    ~driver:(Driver.make ~rs:(Units.kohm 7.534) ~c0:(Units.ff 0.758)
               ~cp:(Units.ff 3.68))
    ()

let node_100nm_250nm_dielectric =
  Node.with_capacitance node_100nm ~c:(Units.pf_per_m 203.50)
    ~name:"100nm-c250"

let all = [ node_250nm; node_100nm ]

let find name =
  List.find_opt
    (fun n -> String.equal n.Node.name name)
    [ node_250nm; node_100nm; node_100nm_250nm_dielectric ]

module Expected = struct
  let h_opt_rc_250nm = Units.mm 14.4
  let k_opt_rc_250nm = 578.0
  let tau_opt_rc_250nm = Units.ps 305.17
  let h_opt_rc_100nm = Units.mm 11.1
  let k_opt_rc_100nm = 528.0
  let tau_opt_rc_100nm = Units.ps 105.94
end
