type t = {
  name : string;
  feature_nm : float;
  vdd : float;
  r : float;
  c : float;
  geometry : Rlc_extraction.Geometry.t;
  driver : Driver.t;
  l_max : float;
}

let make ~name ~feature_nm ~vdd ~r ~c ~geometry ~driver
    ?(l_max = Units.nh_per_mm 5.0) () =
  if feature_nm <= 0.0 then invalid_arg "Node.make: feature_nm <= 0";
  if vdd <= 0.0 then invalid_arg "Node.make: vdd <= 0";
  if r <= 0.0 then invalid_arg "Node.make: r <= 0";
  if c <= 0.0 then invalid_arg "Node.make: c <= 0";
  if l_max <= 0.0 then invalid_arg "Node.make: l_max <= 0";
  { name; feature_nm; vdd; r; c; geometry; driver; l_max }

let with_capacitance t ~c ~name =
  if c <= 0.0 then invalid_arg "Node.with_capacitance: c <= 0";
  { t with c; name }

let switching_threshold t = t.vdd /. 2.0

let pp ppf t =
  Format.fprintf ppf
    "node<%s: %gnm vdd=%.2fV r=%.1fohm/mm c=%.1fpF/m %a %a>" t.name
    t.feature_nm t.vdd (t.r /. 1e3) (t.c *. 1e12) Rlc_extraction.Geometry.pp
    t.geometry Driver.pp t.driver
