(** A technology node: top-level-metal interconnect parameters plus the
    minimum-repeater driver model (one row of Table 1). *)

type t = {
  name : string;
  feature_nm : float;  (** nominal feature size, nm *)
  vdd : float;  (** supply voltage, V *)
  r : float;  (** wire resistance per unit length, ohm/m *)
  c : float;  (** wire capacitance per unit length, F/m *)
  geometry : Rlc_extraction.Geometry.t;  (** top-metal cross-section *)
  driver : Driver.t;  (** minimum repeater parameters *)
  l_max : float;  (** upper end of the practical inductance range, H/m *)
}

val make :
  name:string ->
  feature_nm:float ->
  vdd:float ->
  r:float ->
  c:float ->
  geometry:Rlc_extraction.Geometry.t ->
  driver:Driver.t ->
  ?l_max:float ->
  unit ->
  t
(** [l_max] defaults to 5 nH/mm (5e-6 H/m), the paper's sweep bound. *)

val with_capacitance : t -> c:float -> name:string -> t
(** Copy of the node with a replaced wire capacitance — used by the
    Figure 7 ablation that gives the 100 nm node the 250 nm dielectric. *)

val switching_threshold : t -> float
(** Inverter threshold used for the ring-oscillator experiments:
    vdd / 2 (symmetric inverter assumption). *)

val pp : Format.formatter -> t -> unit
