type t = { rs : float; c0 : float; cp : float }

let make ~rs ~c0 ~cp =
  if rs <= 0.0 || c0 <= 0.0 || cp <= 0.0 then
    invalid_arg "Driver.make: parameters must be positive";
  { rs; c0; cp }

let check_k k =
  if k <= 0.0 then invalid_arg "Driver: repeater size k must be positive"

let scaled_rs d ~k =
  check_k k;
  d.rs /. k

let scaled_cp d ~k =
  check_k k;
  d.cp *. k

let scaled_c0 d ~k =
  check_k k;
  d.c0 *. k

let intrinsic_delay d = d.rs *. (d.c0 +. d.cp)

let pp ppf d =
  Format.fprintf ppf "driver<rs=%.3fkohm c0=%.4ffF cp=%.4ffF>" (d.rs /. 1e3)
    (d.c0 *. 1e15) (d.cp *. 1e15)
