(** Conversions between the paper's engineering units and the SI units
    used throughout the API. *)

val ohm_per_mm : float -> float
(** ohm/mm -> ohm/m *)

val pf_per_m : float -> float
(** pF/m -> F/m *)

val nh_per_mm : float -> float
(** nH/mm -> H/m *)

val ff : float -> float
(** fF -> F *)

val pf : float -> float
(** pF -> F *)

val kohm : float -> float
(** kohm -> ohm *)

val mm : float -> float
(** mm -> m *)

val um : float -> float
(** um -> m *)

val ps : float -> float
(** ps -> s *)

val to_nh_per_mm : float -> float
(** H/m -> nH/mm (for reporting) *)

val to_mm : float -> float
(** m -> mm *)

val to_ps : float -> float
(** s -> ps *)
