(** Minimum-sized repeater (driver) parameters of a technology node.

    Following Section 2.1 of the paper: a repeater of size [k] has
    output resistance [rs / k], output parasitic capacitance [cp * k]
    and input capacitance [c0 * k], with the minimum-size values taken
    as linear (voltage-independent) constants. *)

type t = {
  rs : float;  (** output resistance of the minimum repeater, ohm *)
  c0 : float;  (** input capacitance of the minimum repeater, F *)
  cp : float;  (** output parasitic capacitance of the minimum repeater, F *)
}

val make : rs:float -> c0:float -> cp:float -> t
(** Validates positivity. *)

val scaled_rs : t -> k:float -> float
(** [rs / k]; raises [Invalid_argument] when [k <= 0]. *)

val scaled_cp : t -> k:float -> float
(** [cp * k]. *)

val scaled_c0 : t -> k:float -> float
(** [c0 * k] — the input capacitance of the next stage, i.e. the load
    [C_L] in Figure 1 of the paper. *)

val intrinsic_delay : t -> float
(** [rs * (c0 + cp)]: the size-independent RC constant of one repeater
    driving a copy of itself.  Shrinks with technology scaling, which
    Section 3.1 identifies as the root cause of growing inductance
    susceptibility. *)

val pp : Format.formatter -> t -> unit
