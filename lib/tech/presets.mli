(** The two technology nodes of Table 1 of the paper (NTRS'97 roadmap,
    copper top-level metal) plus the ablation variant of Section 3.1. *)

val node_250nm : Node.t
(** 250 nm node, metal 6: r = 4.4 ohm/mm, c = 203.50 pF/m, eps_r = 3.3,
    w = 2 um, pitch = 4 um, thickness = 2.5 um, t_ins = 13.9 um,
    rs = 11.784 kohm, c0 = 1.6314 fF, cp = 6.2474 fF, vdd = 2.5 V. *)

val node_100nm : Node.t
(** 100 nm node, metal 8: r = 4.4 ohm/mm, c = 123.33 pF/m, eps_r = 2.0,
    w = 2 um, pitch = 4 um, thickness = 2.5 um, t_ins = 15.4 um,
    rs = 7.534 kohm, c0 = 0.758 fF, cp = 3.68 fF, vdd = 1.2 V. *)

val node_100nm_250nm_dielectric : Node.t
(** The Figure 7 ablation: the 100 nm node with its wire capacitance
    replaced by the 250 nm value, isolating the effect of driver
    scaling from dielectric scaling. *)

val all : Node.t list
(** The two real nodes (not the ablation). *)

val find : string -> Node.t option
(** Look up any preset (including the ablation) by [Node.name]. *)

(** Expected Table 1 derived values, for validation and reporting:
    h_opt in metres (14.4 mm / 11.1 mm), k_opt dimensionless
    (578 / 528), tau_opt in seconds (305.17 ps / 105.94 ps). *)
module Expected : sig
  val h_opt_rc_250nm : float
  val k_opt_rc_250nm : float
  val tau_opt_rc_250nm : float
  val h_opt_rc_100nm : float
  val k_opt_rc_100nm : float
  val tau_opt_rc_100nm : float
end
