(** Chrome [trace_event] capture and export.

    While capture is on, every span completed by {!Span} is buffered
    as a complete ("X") event tagged with its domain shard's id as the
    trace [tid]. The export loads directly in [about:tracing],
    [chrome://tracing] and Perfetto. Buffers are bounded (200k events
    per shard); overflow is counted, not grown. *)

val start : unit -> unit
(** Begin buffering span events. Implies enabling recording. *)

val stop : unit -> unit
(** Stop buffering. Already-captured events remain until
    {!Metrics.reset}. *)

val capturing : unit -> bool

val dropped_events : unit -> int
(** Events discarded because a shard's buffer was full. *)

val to_string : unit -> string
(** The trace as a JSON object ([{"traceEvents": [...], ...}]). *)

val write : string -> unit
(** [write path] saves [to_string ()] to [path]. *)
