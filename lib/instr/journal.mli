(** Structured event journal: bounded per-domain JSONL event buffers
    with the same lock-free record path as {!Metrics}.

    Producers call {!record} with a typed field list; every event is
    stamped with the recording domain's current {e provenance id} (the
    serving layer sets it around each job), a timestamp and the shard
    id.  When journaling is off, {!record} is a single predictable
    branch — safe on hot paths.  Guard any expensive field
    construction with {!capturing}.

    The read side ({!events}, {!to_lines}, {!write}) merges all shards
    chronologically and is only meaningful at quiescent points, i.e.
    after the pool has joined its workers.

    Buffers are bounded per shard ([RLC_JOURNAL_CAP], default 100k
    events); overflow is counted in {!dropped}, never an error. *)

type field = Shard.jfield = Num of float | Int of int | Str of string

type event = {
  ts_us : float;  (** microseconds since process start *)
  shard : int;  (** recording domain's shard id *)
  provenance : string;  (** [""] when no provenance was set *)
  name : string;  (** dotted event kind, e.g. ["solver.fallback"] *)
  fields : (string * field) list;
}

val start : unit -> unit
(** Turn journaling on.  Also enables metric recording ({!Metrics}):
    the numerical-health probes only compute their observations while
    recording, so a journal without metrics would be empty of health
    detail. *)

val stop : unit -> unit
val capturing : unit -> bool

val set_cap : int -> unit
(** Per-shard event cap (ignores non-positive values). Defaults to
    [RLC_JOURNAL_CAP] or 100_000. *)

val cap : unit -> int

val record : string -> (string * field) list -> unit
(** [record name fields] appends one event to the calling domain's
    shard when journaling is on; otherwise a no-op.  Field names must
    avoid the reserved JSONL keys [ts_us]/[shard]/[prov]/[event]. *)

val set_provenance : string -> unit
(** Stamp subsequent events from this domain with the given id;
    [""] clears it. *)

val provenance : unit -> string

val with_provenance : string -> (unit -> 'a) -> 'a
(** Scoped {!set_provenance}: restores the previous id on exit, also
    on exceptions. *)

val dropped : unit -> int
(** Events lost to the per-shard cap, summed over all shards. *)

(** {1 Reading (quiescent points only)} *)

val events : unit -> event list
(** All shards merged, sorted by timestamp. *)

val line_of_event : event -> string
(** One JSON object (no trailing newline): reserved keys
    [ts_us]/[shard]/[prov]/[event], then the fields inlined. *)

val to_lines : unit -> string list

val write : string -> unit
(** Write {!to_lines} as JSONL to the given path. *)

(** {1 Typed field access} *)

val field : event -> string -> field option

val num_field : event -> string -> float option
(** [Num] and [Int] fields, as float. *)

val str_field : event -> string -> string option
