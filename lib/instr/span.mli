(** Nested wall-clock spans with per-domain aggregation.

    Spans nest lexically within a domain: [with_ "outer" (fun () ->
    with_ "inner" work)] accumulates ["inner"] as a child of
    ["outer"]. Identical paths merge — total time and call counts add
    up — so steady-state instrumentation allocates nothing after the
    first pass. Completed spans also feed the Chrome-trace buffer when
    {!Trace} capture is on. *)

val with_ : string -> (unit -> 'a) -> 'a
(** [with_ name f] runs [f] inside a span. Exception-safe; a plain
    call to [f] when recording is off. *)

val enter : string -> unit
(** Open a span manually. Every [enter] must be matched by {!exit} on
    the same domain; prefer {!with_}. *)

val exit : unit -> unit
(** Close the innermost open span. No-op if none is open (so a
    mid-span disable cannot unbalance the stack). *)

(** {1 Aggregated results (quiescent points only)} *)

type tree = {
  name : string;
  calls : int;
  total_s : float;  (** wall-clock inside this span, children included *)
  self_s : float;  (** [total_s] minus the sum of children's totals *)
  children : tree list;  (** sorted by [total_s], descending *)
}

val trees : unit -> tree list
(** Root spans merged across all domain shards, sorted by total time. *)

val dump_tree : Format.formatter -> unit
(** ASCII calls / total / self table of [trees ()], indented by
    nesting depth. Prints nothing if no spans were recorded. *)
