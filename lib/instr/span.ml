(* Nested wall-clock spans. Each domain keeps its own span stack and
   aggregation tree in its shard; [enter]/[exit] are domain-local.
   When tracing is on, every completed span is also appended to the
   shard's Chrome-trace event buffer. *)

let enter name =
  if !Shard.enabled then begin
    let sh = Shard.current () in
    let parent =
      match sh.Shard.span_stack with
      | (node, _) :: _ -> node
      | [] -> sh.Shard.sroot
    in
    let node =
      match Hashtbl.find_opt parent.Shard.children name with
      | Some n -> n
      | None ->
          let n = Shard.fresh_node name in
          Hashtbl.add parent.Shard.children name n;
          n
    in
    sh.Shard.span_stack <- (node, Shard.now_us ()) :: sh.Shard.span_stack
  end

(* [exit] pops unconditionally (when a span is open) so that flipping
   [enabled] off between an enter and its exit cannot wedge the stack;
   at worst the interval's timing is attributed normally. *)
let exit () =
  let sh = Shard.current () in
  match sh.Shard.span_stack with
  | [] -> ()
  | (node, t0) :: rest ->
      sh.Shard.span_stack <- rest;
      let t1 = Shard.now_us () in
      node.Shard.total_us <- node.Shard.total_us +. (t1 -. t0);
      node.Shard.calls <- node.Shard.calls + 1;
      if !Shard.tracing then begin
        if sh.Shard.n_events < !Shard.max_events_per_shard then begin
          sh.Shard.events <-
            {
              Shard.ev_name = node.Shard.sname;
              ev_ts_us = t0;
              ev_dur_us = t1 -. t0;
            }
            :: sh.Shard.events;
          sh.Shard.n_events <- sh.Shard.n_events + 1
        end
        else begin
          (* journal the overflow once per shard, at the moment the cap
             trips — the silent alternative loses the tail of a trace
             with no trail to explain the gap *)
          if sh.Shard.dropped_events = 0 then
            Journal.record "trace.dropped"
              [
                ("span", Journal.Str node.Shard.sname);
                ("cap", Journal.Int !Shard.max_events_per_shard);
              ];
          sh.Shard.dropped_events <- sh.Shard.dropped_events + 1
        end
      end

let with_ name f =
  if !Shard.enabled then begin
    enter name;
    Fun.protect ~finally:exit f
  end
  else f ()

(* ---------------- aggregated tree ---------------- *)

type tree = {
  name : string;
  calls : int;
  total_s : float;
  self_s : float;
  children : tree list;
}

(* merge the per-shard trees name-by-name, recursively *)
let rec merge_children (groups : Shard.span_node list list) : tree list =
  let order = ref [] in
  let by_name : (string, Shard.span_node list ref) Hashtbl.t =
    Hashtbl.create 8
  in
  List.iter
    (List.iter (fun (n : Shard.span_node) ->
         match Hashtbl.find_opt by_name n.Shard.sname with
         | Some l -> l := n :: !l
         | None ->
             Hashtbl.add by_name n.Shard.sname (ref [ n ]);
             order := n.Shard.sname :: !order))
    groups;
  List.rev !order
  |> List.map (fun name ->
         let nodes = !(Hashtbl.find by_name name) in
         let calls =
           List.fold_left (fun a n -> a + n.Shard.calls) 0 nodes
         in
         let total_us =
           List.fold_left (fun a n -> a +. n.Shard.total_us) 0.0 nodes
         in
         let child_groups =
           List.map
             (fun (n : Shard.span_node) ->
               Hashtbl.fold (fun _ c acc -> c :: acc) n.Shard.children [])
             nodes
         in
         let children = merge_children child_groups in
         let child_total =
           List.fold_left (fun a c -> a +. c.total_s) 0.0 children
         in
         let total_s = total_us *. 1e-6 in
         {
           name;
           calls;
           total_s;
           self_s = Float.max 0.0 (total_s -. child_total);
           children;
         })
  |> List.sort (fun a b -> Float.compare b.total_s a.total_s)

let trees () =
  let roots =
    List.map
      (fun (sh : Shard.t) ->
        Hashtbl.fold (fun _ c acc -> c :: acc) sh.Shard.sroot.Shard.children [])
      (Shard.all_shards ())
  in
  merge_children roots

let dump_tree ppf =
  let ts = trees () in
  if ts <> [] then begin
    Format.fprintf ppf "%-40s %10s %12s %12s@." "span" "calls" "total"
      "self";
    let rec go depth t =
      let label = String.make (2 * depth) ' ' ^ t.name in
      Format.fprintf ppf "%-40s %10d %11.3fms %11.3fms@." label t.calls
        (t.total_s *. 1e3) (t.self_s *. 1e3);
      List.iter (go (depth + 1)) t.children
    in
    List.iter (go 0) ts
  end
