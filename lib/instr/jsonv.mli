(** Minimal JSON reader for the observability tooling (journal JSONL
    lines, BENCH_*.json snapshots).  Numbers are doubles; out-of-range
    literals such as the metric snapshots' [1e999] parse to
    [infinity].  Not a general-purpose validator — it accepts exactly
    the JSON this repository emits, plus the obvious superset. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result

val member : string -> t -> t option
(** Object field lookup; [None] on non-objects. *)

val to_float : t -> float option
(** Numbers, plus booleans as 0/1. *)

val to_string : t -> string option
