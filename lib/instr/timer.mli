(** Plain wall-clock stopwatch. Unlike {!Metrics} and {!Span} this is
    not gated by the recording switch — it always measures — so it can
    replace ad-hoc [Unix.gettimeofday] pairs in benches. *)

type t
(** A started stopwatch. *)

val start : unit -> t
val elapsed_s : t -> float

val time : (unit -> 'a) -> 'a * float
(** [time f] is [(f (), wall-clock seconds f took)]. *)
