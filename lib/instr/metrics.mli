(** Process-wide registry of named counters, gauges and log-bucketed
    histograms, sharded per domain.

    Handles are interned once (typically at module initialization of
    the instrumented code: [let c = Metrics.counter "solver.factor"]).
    Record calls ([incr]/[add]/[set]/[observe]) write only to the
    calling domain's shard — no locks, no atomics on the hot path —
    and compile to a single predictable branch when recording is off.

    Reads ([value], [hist_summary], [snapshot], [dump]) aggregate
    across all shards and are only meaningful at quiescent points,
    i.e. when no worker domain is mid-record (the pool joins its
    workers before returning, so "after any library call" qualifies). *)

type counter
type gauge
type hist

(** Interning the same name twice returns the same handle; interning a
    name under a different kind raises [Invalid_argument]. *)

val counter : string -> counter
val gauge : string -> gauge
val hist : string -> hist

val recording : unit -> bool
(** [true] when record calls actually record. Use to skip *computing*
    an expensive observation, not to guard the record calls themselves
    (they are already self-guarding). *)

(** {1 Recording} *)

val incr : counter -> unit
val add : counter -> float -> unit

val set : gauge -> float -> unit
(** Last write wins across domains (ordered by a global sequence). *)

val observe : hist -> float -> unit
(** Values land in base-2 log buckets covering ~5e-13 .. 8e6; quantile
    estimates are upper bucket edges (within 2x of exact). *)

val timed : hist -> (unit -> 'a) -> 'a
(** [timed h f] runs [f] and observes its wall-clock duration in
    seconds into [h]; when recording is off it is just [f ()]. *)

(** {1 Reading (quiescent points only)} *)

val value : counter -> float
(** Sum over all domain shards. *)

val gauge_value : gauge -> float option
(** Most recent [set] across all shards; [None] if never set. *)

type summary = {
  count : int;
  sum : float;
  mean : float;
  min : float;
  max : float;
  p50 : float;  (** upper bucket edge containing the median *)
  p95 : float;  (** upper bucket edge containing the 95th percentile *)
}

val hist_summary : hist -> summary option
(** Merged over all shards; [None] if no samples were recorded. *)

val hist_quantiles : hist -> float array -> float array option
(** [hist_quantiles h qs] is the upper bucket edge containing each
    requested quantile (each in [\[0, 1\]]), merged over all shards —
    the same estimate [hist_summary] reports for p50/p95, for any
    quantile list (the serving layer reads p50/p90/p99).  [None] if no
    samples were recorded; raises [Invalid_argument] on a quantile
    outside [\[0, 1\]] (validated even when the histogram is empty). *)

type snapshot_entry =
  | Counter_v of float
  | Gauge_v of float option
  | Hist_v of summary option

val snapshot : unit -> (string * snapshot_entry) list
(** Every registered metric with its merged value, sorted by name. *)

val dump : Format.formatter -> unit
(** Human-readable table of [snapshot ()]. *)

val json_snapshot : unit -> string
(** Compact single-line JSON object, name -> value (histograms as
    [{count, sum, mean, min, p50, p95, max}]); suitable for embedding
    in the bench's [BENCH_*.json] files. *)

val reset : unit -> unit
(** Zero all shards (metrics, span trees, trace buffers). Call only at
    quiescent points. *)
