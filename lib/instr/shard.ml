(* Internal spine of [rlc_instr]: the global recording switches, the
   wall clock, and the per-domain shards every record call writes into.

   Each domain that records anything gets exactly one shard, created
   lazily through domain-local storage and registered in a global list
   so its contents survive the domain's death (the pool's workers are
   short-lived).  The hot path — counter bump, gauge set, histogram
   observe, span push/pop — therefore touches only domain-local memory:
   no atomics, no locks, no contention, and no way to perturb the
   bit-identical scheduling guarantees of [Rlc_parallel.Pool].  All
   cross-shard aggregation happens on the (cold) read side, which is
   only meaningful at quiescent points, i.e. after the pool has joined
   its workers.

   Everything here is an implementation detail of the sibling modules
   ({!Metrics}, {!Span}, {!Trace}, {!Control}); use those instead. *)

let truthy = function
  | Some ("1" | "true" | "yes" | "on") -> true
  | Some _ | None -> false

(* The process-wide switch.  A plain [bool ref]: reading it is one load
   and a predictable branch, which is what makes every record call a
   no-op when instrumentation is off.  It is flipped at startup (or at
   quiescent points in benches/tests), so the relaxed cross-domain
   visibility of a non-atomic read is irrelevant in practice. *)
let enabled = ref (truthy (Sys.getenv_opt "RLC_STATS"))

(* Span events are additionally appended to the trace buffer only when
   tracing is on; metric recording alone never grows memory without
   bound. *)
let tracing = ref false

(* Structured journal events (see {!Journal}) are recorded only when
   this is on; like [tracing] it is flipped at quiescent points. *)
let journaling = ref false

let env_cap name default =
  match Option.bind (Sys.getenv_opt name) int_of_string_opt with
  | Some n when n > 0 -> n
  | Some _ | None -> default

let now_s = Unix.gettimeofday
let start_s = now_s ()
let now_us () = (now_s () -. start_s) *. 1e6

(* ---------------- histogram cells ---------------- *)

(* Log-bucketed (base 2): bucket [b] holds values in
   [2^(b-41), 2^(b-40)), i.e. ~5e-13 .. 8e6 — wide enough for both
   second-resolution timings and iteration counts.  [Float.frexp]
   places v in [2^(e-1), 2^e), so the bucket index is just the
   exponent, clamped. *)
let n_buckets = 64

let bucket_of v =
  if not (v > 0.0) then 0
  else begin
    let _, e = Float.frexp v in
    Int.max 0 (Int.min (n_buckets - 1) (e + 40))
  end

let bucket_upper b = Float.ldexp 1.0 (b - 40)

type hist_cell = {
  mutable hcount : int;
  mutable hsum : float;
  mutable hmin : float;
  mutable hmax : float;
  hbuckets : int array;
}

let fresh_hist () =
  {
    hcount = 0;
    hsum = 0.0;
    hmin = infinity;
    hmax = neg_infinity;
    hbuckets = Array.make n_buckets 0;
  }

(* ---------------- span tree + trace events ---------------- *)

type span_node = {
  sname : string;
  mutable total_us : float;
  mutable calls : int;
  children : (string, span_node) Hashtbl.t;
}

let fresh_node name =
  { sname = name; total_us = 0.0; calls = 0; children = Hashtbl.create 4 }

type event = { ev_name : string; ev_ts_us : float; ev_dur_us : float }

(* ---------------- journal events ---------------- *)

type jfield = Num of float | Int of int | Str of string

type jevent = {
  je_ts_us : float;
  je_name : string;
  je_prov : string;  (** provenance id; [""] = none *)
  je_fields : (string * jfield) list;
}

(* ---------------- shards ---------------- *)

type t = {
  id : int;  (** becomes the [tid] in trace exports *)
  mutable counters : float array;  (** indexed by counter slot *)
  mutable gauge_vals : float array;
  mutable gauge_seq : int array;  (** 0 = never set; else global seq *)
  mutable hists : hist_cell option array;
  sroot : span_node;
  mutable span_stack : (span_node * float) list;  (** (node, start us) *)
  mutable events : event list;  (** completed trace events, newest first *)
  mutable n_events : int;
  mutable dropped_events : int;
  mutable jevents : jevent list;  (** journal events, newest first *)
  mutable n_jevents : int;
  mutable dropped_jevents : int;
  mutable provenance : string;  (** stamped on journal events; [""] = none *)
}

(* Backstops so a pathological tracing/journaling run cannot grow
   without bound.  Both are refs: overridable per process via the
   environment ([RLC_TRACE_CAP] / [RLC_JOURNAL_CAP]) or
   [Control.setup ~trace_cap]. *)
let max_events_per_shard = ref (env_cap "RLC_TRACE_CAP" 200_000)
let max_jevents_per_shard = ref (env_cap "RLC_JOURNAL_CAP" 100_000)

let registry_mutex = Mutex.create ()
let shards : t list ref = ref []
let next_shard_id = ref 0

(* one global sequence so "last write wins" is well defined for gauges
   across shards; gauges are set rarely (plan creation, not per step) *)
let gauge_clock = Atomic.make 1

let fresh_shard id =
  {
    id;
    counters = [||];
    gauge_vals = [||];
    gauge_seq = [||];
    hists = [||];
    sroot = fresh_node "";
    span_stack = [];
    events = [];
    n_events = 0;
    dropped_events = 0;
    jevents = [];
    n_jevents = 0;
    dropped_jevents = 0;
    provenance = "";
  }

let key =
  Domain.DLS.new_key (fun () ->
      Mutex.protect registry_mutex (fun () ->
          let s = fresh_shard !next_shard_id in
          incr next_shard_id;
          shards := s :: !shards;
          s))

let current () = Domain.DLS.get key
let all_shards () = Mutex.protect registry_mutex (fun () -> !shards)

(* growable slot arrays: slots are handed out globally, each shard
   grows its own cells on first touch *)

let grown_len old slot = Int.max 8 (Int.max (slot + 1) (2 * old))

let ensure_counter sh slot =
  let len = Array.length sh.counters in
  if slot >= len then begin
    let a = Array.make (grown_len len slot) 0.0 in
    Array.blit sh.counters 0 a 0 len;
    sh.counters <- a
  end

let ensure_gauge sh slot =
  let len = Array.length sh.gauge_vals in
  if slot >= len then begin
    let n = grown_len len slot in
    let v = Array.make n 0.0 and s = Array.make n 0 in
    Array.blit sh.gauge_vals 0 v 0 len;
    Array.blit sh.gauge_seq 0 s 0 len;
    sh.gauge_vals <- v;
    sh.gauge_seq <- s
  end

let ensure_hist sh slot =
  let len = Array.length sh.hists in
  if slot >= len then begin
    let a = Array.make (grown_len len slot) None in
    Array.blit sh.hists 0 a 0 len;
    sh.hists <- a
  end;
  match sh.hists.(slot) with
  | Some h -> h
  | None ->
      let h = fresh_hist () in
      sh.hists.(slot) <- Some h;
      h

let rec reset_node node =
  node.total_us <- 0.0;
  node.calls <- 0;
  Hashtbl.iter (fun _ c -> reset_node c) node.children;
  Hashtbl.reset node.children

(* Zero every shard (metrics, span trees, trace buffers).  Only
   meaningful at quiescent points — callers must not hold open spans or
   have worker domains in flight. *)
let reset () =
  List.iter
    (fun sh ->
      Array.fill sh.counters 0 (Array.length sh.counters) 0.0;
      Array.fill sh.gauge_seq 0 (Array.length sh.gauge_seq) 0;
      Array.fill sh.hists 0 (Array.length sh.hists) None;
      reset_node sh.sroot;
      sh.span_stack <- [];
      sh.events <- [];
      sh.n_events <- 0;
      sh.dropped_events <- 0;
      sh.jevents <- [];
      sh.n_jevents <- 0;
      sh.dropped_jevents <- 0;
      sh.provenance <- "")
    (all_shards ())

(* shared by the JSON emitters in Metrics and Trace *)
let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  buf
