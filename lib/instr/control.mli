(** The on/off switch and the CLI-facing conveniences behind
    [--stats] / [--trace] / [RLC_STATS]. *)

val env_stats : bool
(** Whether [RLC_STATS] was set truthy ([1]/[true]/[yes]/[on]) when
    the process started. Recording defaults to this. *)

val enabled : unit -> bool
val set_enabled : bool -> unit
(** Flip recording globally. Flip only at quiescent points (no worker
    domains in flight) when a bit-exact metrics picture matters. *)

val dump : ?ppf:Format.formatter -> unit -> unit
(** Print the metrics table and (if any spans were recorded) the span
    tree. Default formatter is stderr. *)

val setup : ?stats:bool -> ?trace:string -> unit -> unit
(** One-stop CLI wiring: [stats] (or [RLC_STATS]) enables recording
    and registers an at-exit {!dump} to stderr; [trace] additionally
    starts {!Trace} capture and registers an at-exit {!Trace.write} to
    the given path. *)
