(** The on/off switch and the CLI-facing conveniences behind
    [--stats] / [--trace] / [--journal] / [RLC_STATS]. *)

val env_stats : bool
(** Whether [RLC_STATS] was set truthy ([1]/[true]/[yes]/[on]) when
    the process started. Recording defaults to this. *)

val enabled : unit -> bool
val set_enabled : bool -> unit
(** Flip recording globally. Flip only at quiescent points (no worker
    domains in flight) when a bit-exact metrics picture matters. *)

val trace_cap : unit -> int
val set_trace_cap : int -> unit
(** Per-shard Chrome-trace event cap (default 200_000, or
    [RLC_TRACE_CAP]); non-positive values are ignored.  When the cap
    trips, the overflow is counted, reported by {!dump}, and — when
    journaling — recorded as one [trace.dropped] journal event. *)

val dump : ?ppf:Format.formatter -> unit -> unit
(** Print the metrics table, (if recorded) the span tree and the
    numerical-health summary, plus any buffer-overflow notices.
    Default formatter is stderr. *)

val setup :
  ?stats:bool ->
  ?trace:string ->
  ?journal:string ->
  ?trace_cap:int ->
  unit ->
  unit
(** One-stop CLI wiring: [stats] (or [RLC_STATS]) enables recording
    and registers an at-exit {!dump} to stderr; [trace] additionally
    starts {!Trace} capture and registers an at-exit {!Trace.write} to
    the given path; [journal] starts {!Journal} capture (which also
    enables recording) and registers an at-exit {!Journal.write};
    [trace_cap] overrides the per-shard trace event cap. *)
