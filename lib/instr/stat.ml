(* The analysis half of rlcstat, kept in the library so the tests can
   drive it directly: health/latency rollups over journal event
   streams, and threshold-based regression diffs over any two JSON
   snapshots (BENCH_*.json).  rlcstat's binary is a thin CLI over
   these. *)

(* ---------------- journal entries ---------------- *)

type entry = {
  eprov : string;
  ename : string;
  efields : (string * Jsonv.t) list;
}

let entry_of_json j =
  match j with
  | Jsonv.Obj kvs -> begin
      match Jsonv.member "event" j with
      | Some (Jsonv.Str ename) ->
          let eprov =
            match Jsonv.member "prov" j with
            | Some (Jsonv.Str p) -> p
            | _ -> ""
          in
          let reserved = [ "ts_us"; "shard"; "prov"; "event" ] in
          let efields =
            List.filter (fun (k, _) -> not (List.mem k reserved)) kvs
          in
          Some { eprov; ename; efields }
      | _ -> None
    end
  | _ -> None

let entry_of_line line =
  match Jsonv.parse line with
  | Ok j -> entry_of_json j
  | Error _ -> None

(* skip blank and unparseable lines, reporting how many were dropped *)
let entries_of_lines lines =
  let skipped = ref 0 in
  let entries =
    List.filter_map
      (fun line ->
        if String.trim line = "" then None
        else begin
          match entry_of_line line with
          | Some e -> Some e
          | None ->
              incr skipped;
              None
        end)
      lines
  in
  (entries, !skipped)

let entries_of_file path =
  let ic = open_in path in
  let lines = ref [] in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      try
        while true do
          lines := input_line ic :: !lines
        done
      with End_of_file -> ());
  entries_of_lines (List.rev !lines)

let entry_of_event (e : Journal.event) =
  {
    eprov = e.Journal.provenance;
    ename = e.Journal.name;
    efields =
      List.map
        (fun (k, v) ->
          ( k,
            match v with
            | Journal.Num x -> Jsonv.Num x
            | Journal.Int n -> Jsonv.Num (float_of_int n)
            | Journal.Str s -> Jsonv.Str s ))
        e.Journal.fields;
  }

let fnum e k = Option.bind (List.assoc_opt k e.efields) Jsonv.to_float
let fstr e k = Option.bind (List.assoc_opt k e.efields) Jsonv.to_string

(* ---------------- rollup ---------------- *)

type quantiles = { p50 : float; p90 : float; p99 : float }

type kind_stats = {
  kind : string;
  count : int;
  errors : int;
  latency : quantiles option;
}

type rollup = {
  events : int;
  skipped : int;  (** unparseable journal lines *)
  jobs : int;
  errors : int;
  kinds : kind_stats list;
  fallbacks : int;  (** [solver.fallback] events *)
  resyms : int;  (** [cache.resym] events *)
  guard_trips : int;  (** [smw.guard] events *)
  cache_hits : int;
  cache_misses : int;
  cache_aliases : int;
  health_ok : int;
  health_degraded : int;
  health_failed : int;
  trace_dropped : int;  (** [trace.dropped] events *)
}

(* exact nearest-rank quantile over raw samples (unlike the metric
   histograms, the journal keeps every job duration) *)
let nearest_rank sorted q =
  let n = Array.length sorted in
  let i = int_of_float (Float.ceil (q *. float_of_int n)) in
  sorted.(Int.max 0 (Int.min (n - 1) (i - 1)))

let quantiles_of samples =
  match samples with
  | [] -> None
  | _ ->
      let a = Array.of_list samples in
      Array.sort Float.compare a;
      Some
        {
          p50 = nearest_rank a 0.50;
          p90 = nearest_rank a 0.90;
          p99 = nearest_rank a 0.99;
        }

let rollup ?(skipped = 0) entries =
  let jobs = ref 0 and errors = ref 0 in
  let fallbacks = ref 0
  and resyms = ref 0
  and guard_trips = ref 0
  and hits = ref 0
  and misses = ref 0
  and aliases = ref 0
  and ok = ref 0
  and degraded = ref 0
  and failed = ref 0
  and trace_dropped = ref 0 in
  (* per-kind job durations + error counts, in first-seen order *)
  let order = ref [] in
  let by_kind : (string, float list ref * int ref * int ref) Hashtbl.t =
    Hashtbl.create 8
  in
  let kind_cell kind =
    match Hashtbl.find_opt by_kind kind with
    | Some c -> c
    | None ->
        let c = (ref [], ref 0, ref 0) in
        Hashtbl.add by_kind kind c;
        order := kind :: !order;
        c
  in
  List.iter
    (fun e ->
      match e.ename with
      | "job.end" ->
          incr jobs;
          (* anything the service did not mark "ok" ("error",
             "rejected") counts against the error rate *)
          let err =
            match fstr e "status" with
            | Some "ok" | None -> false
            | Some _ -> true
          in
          if err then incr errors;
          let kind = Option.value ~default:"?" (fstr e "kind") in
          let samples, count, errs = kind_cell kind in
          incr count;
          if err then incr errs;
          (match fnum e "s" with
          | Some s -> samples := s :: !samples
          | None -> ())
      | "solver.fallback" -> incr fallbacks
      | "cache.resym" -> incr resyms
      | "smw.guard" -> incr guard_trips
      | "cache.hit" -> incr hits
      | "cache.miss" -> incr misses
      | "cache.alias" -> incr aliases
      | "trace.dropped" -> incr trace_dropped
      | "health" -> begin
          match Option.bind (fstr e "class") Health.of_string with
          | Some Health.Ok -> incr ok
          | Some Health.Degraded -> incr degraded
          | Some Health.Failed -> incr failed
          | None -> ()
        end
      | _ -> ())
    entries;
  let kinds =
    List.rev_map
      (fun kind ->
        let samples, count, errs = Hashtbl.find by_kind kind in
        {
          kind;
          count = !count;
          errors = !errs;
          latency = quantiles_of !samples;
        })
      !order
  in
  {
    events = List.length entries;
    skipped;
    jobs = !jobs;
    errors = !errors;
    kinds;
    fallbacks = !fallbacks;
    resyms = !resyms;
    guard_trips = !guard_trips;
    cache_hits = !hits;
    cache_misses = !misses;
    cache_aliases = !aliases;
    health_ok = !ok;
    health_degraded = !degraded;
    health_failed = !failed;
    trace_dropped = !trace_dropped;
  }

let rate num den =
  if den = 0 then 0.0 else 100.0 *. float_of_int num /. float_of_int den

let pp_rollup ppf r =
  Format.fprintf ppf "journal: %d events" r.events;
  if r.skipped > 0 then
    Format.fprintf ppf " (%d unparseable lines skipped)" r.skipped;
  Format.fprintf ppf "@.";
  Format.fprintf ppf "jobs: %d (%d err, %.1f%%)@." r.jobs r.errors
    (rate r.errors r.jobs);
  List.iter
    (fun k ->
      Format.fprintf ppf "  %-12s %6d jobs, %d err" k.kind k.count k.errors;
      (match k.latency with
      | Some q ->
          Format.fprintf ppf ", p50 %.3g s, p90 %.3g s, p99 %.3g s" q.p50
            q.p90 q.p99
      | None -> ());
      Format.fprintf ppf "@.")
    r.kinds;
  Format.fprintf ppf
    "cache: %d hits / %d misses / %d aliases, %d resyms (%.1f%% of jobs)@."
    r.cache_hits r.cache_misses r.cache_aliases r.resyms
    (rate r.resyms r.jobs);
  Format.fprintf ppf
    "solver: %d fallbacks (%.1f%% of jobs), %d SMW guard trips@." r.fallbacks
    (rate r.fallbacks r.jobs)
    r.guard_trips;
  Format.fprintf ppf "health: %d ok / %d degraded / %d failed@." r.health_ok
    r.health_degraded r.health_failed;
  if r.trace_dropped > 0 then
    Format.fprintf ppf "trace: buffer cap hit on %d shard(s)@."
      r.trace_dropped

(* ---------------- snapshot diff ---------------- *)

type finding = {
  path : string;
  old_v : float;
  new_v : float;
  delta : float;  (** relative change; [infinity] when old = 0 *)
}

(* every numeric leaf, dot-joined; [meta.*] (dates, git revs, host
   facts) is never comparable and always skipped *)
let flatten json =
  let acc = ref [] in
  let rec go prefix j =
    match j with
    | Jsonv.Num v -> acc := (prefix, v) :: !acc
    | Jsonv.Obj kvs ->
        List.iter
          (fun (k, v) ->
            let p = if prefix = "" then k else prefix ^ "." ^ k in
            if p <> "meta" then go p v)
          kvs
    | Jsonv.List l ->
        List.iteri
          (fun i v -> go (Printf.sprintf "%s[%d]" prefix i) v)
          l
    | Jsonv.Null | Jsonv.Bool _ | Jsonv.Str _ -> ()
  in
  go "" json;
  List.rev !acc

let diff ?(threshold = 0.10) old_json new_json =
  let old_leaves = flatten old_json in
  let new_leaves = flatten new_json in
  let new_tbl = Hashtbl.create 64 in
  List.iter (fun (p, v) -> Hashtbl.replace new_tbl p v) new_leaves;
  List.filter_map
    (fun (path, old_v) ->
      match Hashtbl.find_opt new_tbl path with
      | None -> None (* snapshots evolve; a vanished key is not a regression *)
      | Some new_v ->
          if old_v = new_v then None
          else begin
            let delta =
              if old_v = 0.0 then infinity
              else (new_v -. old_v) /. Float.abs old_v
            in
            if Float.abs delta > threshold then
              Some { path; old_v; new_v; delta }
            else None
          end)
    old_leaves

let pp_finding ppf f =
  if Float.is_finite f.delta then
    Format.fprintf ppf "%-40s %14.6g -> %-14.6g (%+.1f%%)" f.path f.old_v
      f.new_v (100.0 *. f.delta)
  else
    Format.fprintf ppf "%-40s %14.6g -> %-14.6g (was zero)" f.path f.old_v
      f.new_v
