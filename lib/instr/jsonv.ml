(* A small recursive-descent JSON reader — just enough for rlcstat to
   load journal JSONL lines and BENCH_*.json snapshots without pulling
   a dependency into the toolchain.  Numbers are floats (the emitters
   here only produce doubles); out-of-range literals like the 1e999
   the metric snapshots use for infinity parse to [infinity], which is
   exactly the round-trip intent. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

type state = { s : string; mutable pos : int }

let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.s
    &&
    match st.s.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some d when d = c -> st.pos <- st.pos + 1
  | Some d -> fail "expected %C at offset %d, found %C" c st.pos d
  | None -> fail "expected %C at offset %d, found end of input" c st.pos

let literal st word value =
  let n = String.length word in
  if
    st.pos + n <= String.length st.s
    && String.sub st.s st.pos n = word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else fail "bad literal at offset %d" st.pos

let parse_string_body st =
  let buf = Buffer.create 16 in
  let rec go () =
    if st.pos >= String.length st.s then fail "unterminated string"
    else begin
      let c = st.s.[st.pos] in
      st.pos <- st.pos + 1;
      match c with
      | '"' -> Buffer.contents buf
      | '\\' ->
          (if st.pos >= String.length st.s then fail "unterminated escape"
           else begin
             let e = st.s.[st.pos] in
             st.pos <- st.pos + 1;
             match e with
             | '"' -> Buffer.add_char buf '"'
             | '\\' -> Buffer.add_char buf '\\'
             | '/' -> Buffer.add_char buf '/'
             | 'n' -> Buffer.add_char buf '\n'
             | 't' -> Buffer.add_char buf '\t'
             | 'r' -> Buffer.add_char buf '\r'
             | 'b' -> Buffer.add_char buf '\b'
             | 'f' -> Buffer.add_char buf '\012'
             | 'u' ->
                 if st.pos + 4 > String.length st.s then
                   fail "truncated \\u escape";
                 let hex = String.sub st.s st.pos 4 in
                 st.pos <- st.pos + 4;
                 let code =
                   try int_of_string ("0x" ^ hex)
                   with Failure _ -> fail "bad \\u escape %S" hex
                 in
                 (* keep it simple: BMP code points as UTF-8 *)
                 if code < 0x80 then Buffer.add_char buf (Char.chr code)
                 else if code < 0x800 then begin
                   Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                   Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                 end
                 else begin
                   Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                   Buffer.add_char buf
                     (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                   Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                 end
             | e -> fail "bad escape \\%C" e
           end);
          go ()
      | c -> Buffer.add_char buf c; go ()
    end
  in
  go ()

let parse_number st =
  let start = st.pos in
  let num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while
    st.pos < String.length st.s && num_char st.s.[st.pos]
  do
    st.pos <- st.pos + 1
  done;
  if st.pos = start then fail "expected a number at offset %d" start;
  let text = String.sub st.s start (st.pos - start) in
  match float_of_string_opt text with
  | Some v -> Num v
  | None -> fail "bad number %S at offset %d" text start

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail "unexpected end of input"
  | Some '{' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some '}' then begin
        st.pos <- st.pos + 1;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws st;
          expect st '"';
          let key = parse_string_body st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              members ((key, v) :: acc)
          | Some '}' ->
              st.pos <- st.pos + 1;
              List.rev ((key, v) :: acc)
          | _ -> fail "expected ',' or '}' at offset %d" st.pos
        in
        Obj (members [])
      end
  | Some '[' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some ']' then begin
        st.pos <- st.pos + 1;
        List []
      end
      else begin
        let rec elements acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              elements (v :: acc)
          | Some ']' ->
              st.pos <- st.pos + 1;
              List.rev (v :: acc)
          | _ -> fail "expected ',' or ']' at offset %d" st.pos
        in
        List (elements [])
      end
  | Some '"' ->
      st.pos <- st.pos + 1;
      Str (parse_string_body st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some _ -> parse_number st

let parse s =
  let st = { s; pos = 0 } in
  match parse_value st with
  | v ->
      skip_ws st;
      if st.pos <> String.length s then
        Error (Printf.sprintf "trailing garbage at offset %d" st.pos)
      else Ok v
  | exception Parse_error m -> Error m

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let to_float = function
  | Num v -> Some v
  | Bool b -> Some (if b then 1.0 else 0.0)
  | Null | Str _ | List _ | Obj _ -> None

let to_string = function Str s -> Some s | _ -> None
