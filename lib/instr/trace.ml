(* Chrome trace_event export: every completed span becomes a complete
   ("ph":"X") event with the owning shard's id as tid, loadable in
   about:tracing / Perfetto / chrome://tracing. *)

let start () =
  Shard.enabled := true;
  Shard.tracing := true

let stop () = Shard.tracing := false
let capturing () = !Shard.tracing

let dropped_events () =
  List.fold_left
    (fun acc (sh : Shard.t) -> acc + sh.Shard.dropped_events)
    0 (Shard.all_shards ())

let to_buffer () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  let emit s =
    if !first then first := false else Buffer.add_char buf ',';
    Buffer.add_string buf s
  in
  let shards =
    List.sort
      (fun (a : Shard.t) (b : Shard.t) -> Int.compare a.Shard.id b.Shard.id)
      (Shard.all_shards ())
  in
  List.iter
    (fun (sh : Shard.t) ->
      if sh.Shard.events <> [] then begin
        emit
          (Printf.sprintf
             "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"args\":{\"name\":\"shard-%d\"}}"
             sh.Shard.id sh.Shard.id);
        (* events are stored newest-first; reverse for chronological ts *)
        List.iter
          (fun (ev : Shard.event) ->
            emit
              (Printf.sprintf
                 "{\"name\":\"%s\",\"cat\":\"rlc\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%d}"
                 (Buffer.contents (Shard.json_escape ev.Shard.ev_name))
                 ev.Shard.ev_ts_us ev.Shard.ev_dur_us sh.Shard.id))
          (List.rev sh.Shard.events)
      end)
    shards;
  Buffer.add_string buf "],\"displayTimeUnit\":\"ms\"}";
  buf

let to_string () = Buffer.contents (to_buffer ())

let write path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Buffer.output_buffer oc (to_buffer ()))
