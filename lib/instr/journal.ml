(* Structured event journal: bounded per-domain JSONL buffers with the
   same lock-free record discipline as [Metrics] — a record call
   touches only the calling domain's shard, so journaling cannot
   perturb the pool's bit-identical scheduling.  Every event carries
   the shard's current provenance id (set by the serving layer around
   each job), which is what makes a bad deck in a million-job stream
   attributable after the fact. *)

type field = Shard.jfield = Num of float | Int of int | Str of string

type event = {
  ts_us : float;
  shard : int;
  provenance : string;
  name : string;
  fields : (string * field) list;
}

(* Journaling implies recording: the numerical-health probes compute
   their observations only under [Metrics.recording ()], so a journal
   without metrics would be silently empty of health detail. *)
let start () =
  Shard.enabled := true;
  Shard.journaling := true

let stop () = Shard.journaling := false
let capturing () = !Shard.journaling
let set_cap n = if n > 0 then Shard.max_jevents_per_shard := n
let cap () = !Shard.max_jevents_per_shard

let record name fields =
  if !Shard.journaling then begin
    let sh = Shard.current () in
    if sh.Shard.n_jevents < !Shard.max_jevents_per_shard then begin
      sh.Shard.jevents <-
        {
          Shard.je_ts_us = Shard.now_us ();
          je_name = name;
          je_prov = sh.Shard.provenance;
          je_fields = fields;
        }
        :: sh.Shard.jevents;
      sh.Shard.n_jevents <- sh.Shard.n_jevents + 1
    end
    else sh.Shard.dropped_jevents <- sh.Shard.dropped_jevents + 1
  end

let set_provenance p = (Shard.current ()).Shard.provenance <- p

let provenance () = (Shard.current ()).Shard.provenance

let with_provenance p f =
  let sh = Shard.current () in
  let saved = sh.Shard.provenance in
  sh.Shard.provenance <- p;
  Fun.protect ~finally:(fun () -> sh.Shard.provenance <- saved) f

let dropped () =
  List.fold_left
    (fun acc (sh : Shard.t) -> acc + sh.Shard.dropped_jevents)
    0 (Shard.all_shards ())

(* read side: quiescent points only, like every cross-shard merge *)

let events () =
  let all =
    List.concat_map
      (fun (sh : Shard.t) ->
        List.rev_map
          (fun (je : Shard.jevent) ->
            {
              ts_us = je.Shard.je_ts_us;
              shard = sh.Shard.id;
              provenance = je.Shard.je_prov;
              name = je.Shard.je_name;
              fields = je.Shard.je_fields;
            })
          sh.Shard.jevents)
      (Shard.all_shards ())
  in
  List.stable_sort (fun a b -> Float.compare a.ts_us b.ts_us) all

let add_json_string buf s =
  Buffer.add_char buf '"';
  Buffer.add_buffer buf (Shard.json_escape s);
  Buffer.add_char buf '"'

(* mirrors Metrics.json_num so non-finite field values can never
   corrupt the JSONL stream *)
let json_num v =
  if Float.is_nan v then "null"
  else if v = infinity then "1e999"
  else if v = neg_infinity then "-1e999"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

(* One JSON object per line, reserved keys first, then the typed
   fields inlined at top level (callers must avoid the reserved names
   ts_us / shard / prov / event). *)
let line_of_event e =
  let buf = Buffer.create 128 in
  Buffer.add_string buf "{\"ts_us\":";
  Buffer.add_string buf (json_num e.ts_us);
  Buffer.add_string buf (Printf.sprintf ",\"shard\":%d" e.shard);
  if e.provenance <> "" then begin
    Buffer.add_string buf ",\"prov\":";
    add_json_string buf e.provenance
  end;
  Buffer.add_string buf ",\"event\":";
  add_json_string buf e.name;
  List.iter
    (fun (k, v) ->
      Buffer.add_char buf ',';
      add_json_string buf k;
      Buffer.add_char buf ':';
      match v with
      | Num x -> Buffer.add_string buf (json_num x)
      | Int n -> Buffer.add_string buf (string_of_int n)
      | Str s -> add_json_string buf s)
    e.fields;
  Buffer.add_char buf '}';
  Buffer.contents buf

let to_lines () = List.map line_of_event (events ())

let write path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun l ->
          output_string oc l;
          output_char oc '\n')
        (to_lines ()))

(* typed field access for the in-process consumers (Health, tests) *)

let field e k = List.assoc_opt k e.fields

let num_field e k =
  match field e k with
  | Some (Num v) -> Some v
  | Some (Int n) -> Some (float_of_int n)
  | Some (Str _) | None -> None

let str_field e k =
  match field e k with Some (Str s) -> Some s | Some _ | None -> None
