type kind = Counter | Gauge | Hist

type counter = int
type gauge = int
type hist = int

(* name -> (kind, slot). Slots are per-kind dense indices into the
   shard arrays. Interning is rare (module init at call sites), so a
   mutex is fine; the record path never touches this table. *)
let names : (string, kind * int) Hashtbl.t = Hashtbl.create 64
let next_slot = [| 0; 0; 0 |]

let kind_index = function Counter -> 0 | Gauge -> 1 | Hist -> 2
let kind_name = function
  | Counter -> "counter"
  | Gauge -> "gauge"
  | Hist -> "histogram"

let intern kind name =
  Mutex.protect Shard.registry_mutex (fun () ->
      match Hashtbl.find_opt names name with
      | Some (k, slot) when k = kind -> slot
      | Some (k, _) ->
          invalid_arg
            (Printf.sprintf "Rlc_instr.Metrics: %S is a %s, not a %s" name
               (kind_name k) (kind_name kind))
      | None ->
          let i = kind_index kind in
          let slot = next_slot.(i) in
          next_slot.(i) <- slot + 1;
          Hashtbl.add names name (kind, slot);
          slot)

let counter name = intern Counter name
let gauge name = intern Gauge name
let hist name = intern Hist name

let recording () = !Shard.enabled

(* ---------------- record path ---------------- *)

let add c v =
  if !Shard.enabled then begin
    let sh = Shard.current () in
    Shard.ensure_counter sh c;
    sh.Shard.counters.(c) <- sh.Shard.counters.(c) +. v
  end

let incr c = add c 1.0

let set g v =
  if !Shard.enabled then begin
    let sh = Shard.current () in
    Shard.ensure_gauge sh g;
    sh.Shard.gauge_vals.(g) <- v;
    sh.Shard.gauge_seq.(g) <- Atomic.fetch_and_add Shard.gauge_clock 1
  end

let observe h v =
  if !Shard.enabled then begin
    let sh = Shard.current () in
    let cell = Shard.ensure_hist sh h in
    cell.Shard.hcount <- cell.Shard.hcount + 1;
    cell.Shard.hsum <- cell.Shard.hsum +. v;
    if v < cell.Shard.hmin then cell.Shard.hmin <- v;
    if v > cell.Shard.hmax then cell.Shard.hmax <- v;
    let b = Shard.bucket_of v in
    cell.Shard.hbuckets.(b) <- cell.Shard.hbuckets.(b) + 1
  end

let timed h f =
  if !Shard.enabled then begin
    let t0 = Shard.now_s () in
    let finally () = observe h (Shard.now_s () -. t0) in
    Fun.protect ~finally f
  end
  else f ()

(* ---------------- read path (quiescent points only) ---------------- *)

let value c =
  List.fold_left
    (fun acc sh ->
      if c < Array.length sh.Shard.counters then acc +. sh.Shard.counters.(c)
      else acc)
    0.0 (Shard.all_shards ())

let gauge_value g =
  let best = ref None and best_seq = ref 0 in
  List.iter
    (fun sh ->
      if g < Array.length sh.Shard.gauge_vals then begin
        let seq = sh.Shard.gauge_seq.(g) in
        if seq > !best_seq then begin
          best_seq := seq;
          best := Some sh.Shard.gauge_vals.(g)
        end
      end)
    (Shard.all_shards ());
  !best

type summary = {
  count : int;
  sum : float;
  mean : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
}

let quantile ~count buckets q =
  (* upper edge of the bucket containing the q-th sample: an
     overestimate by at most 2x, which is all a log-bucketed histogram
     promises *)
  let target = Float.to_int (Float.ceil (q *. Float.of_int count)) in
  let target = Int.max 1 (Int.min count target) in
  let rec go b seen =
    if b >= Shard.n_buckets then Shard.bucket_upper (Shard.n_buckets - 1)
    else begin
      let seen = seen + buckets.(b) in
      if seen >= target then Shard.bucket_upper b else go (b + 1) seen
    end
  in
  go 0 0

let merged_buckets h =
  let count = ref 0
  and sum = ref 0.0
  and mn = ref infinity
  and mx = ref neg_infinity in
  let buckets = Array.make Shard.n_buckets 0 in
  List.iter
    (fun sh ->
      if h < Array.length sh.Shard.hists then begin
        match sh.Shard.hists.(h) with
        | None -> ()
        | Some cell ->
            count := !count + cell.Shard.hcount;
            sum := !sum +. cell.Shard.hsum;
            if cell.Shard.hmin < !mn then mn := cell.Shard.hmin;
            if cell.Shard.hmax > !mx then mx := cell.Shard.hmax;
            Array.iteri
              (fun b n -> buckets.(b) <- buckets.(b) + n)
              cell.Shard.hbuckets
      end)
    (Shard.all_shards ());
  (!count, !sum, !mn, !mx, buckets)

let hist_quantiles h qs =
  (* validate before the empty-histogram shortcut: a bogus quantile is
     a caller bug whether or not samples have arrived yet *)
  Array.iter
    (fun q ->
      if not (q >= 0.0 && q <= 1.0) then
        invalid_arg "Rlc_instr.Metrics.hist_quantiles: quantile outside [0,1]")
    qs;
  let count, _, _, _, buckets = merged_buckets h in
  if count = 0 then None
  else Some (Array.map (quantile ~count buckets) qs)

let hist_summary h =
  let count, sum, mn, mx, buckets = merged_buckets h in
  if count = 0 then None
  else
    Some
      {
        count;
        sum;
        mean = sum /. Float.of_int count;
        min = mn;
        max = mx;
        p50 = quantile ~count buckets 0.50;
        p95 = quantile ~count buckets 0.95;
      }

type snapshot_entry =
  | Counter_v of float
  | Gauge_v of float option
  | Hist_v of summary option

let snapshot () =
  let entries =
    Mutex.protect Shard.registry_mutex (fun () ->
        Hashtbl.fold (fun name (kind, slot) acc -> (name, kind, slot) :: acc)
          names [])
  in
  entries
  |> List.map (fun (name, kind, slot) ->
         let v =
           match kind with
           | Counter -> Counter_v (value slot)
           | Gauge -> Gauge_v (gauge_value slot)
           | Hist -> Hist_v (hist_summary slot)
         in
         (name, v))
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let pp_num ppf v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Format.fprintf ppf "%.0f" v
  else Format.fprintf ppf "%.6g" v

let dump ppf =
  let entries = snapshot () in
  let width =
    List.fold_left (fun w (n, _) -> Int.max w (String.length n)) 6 entries
  in
  Format.fprintf ppf "%-*s  %s@." width "metric" "value";
  List.iter
    (fun (name, v) ->
      match v with
      | Counter_v v -> Format.fprintf ppf "%-*s  %a@." width name pp_num v
      | Gauge_v None -> Format.fprintf ppf "%-*s  -@." width name
      | Gauge_v (Some v) -> Format.fprintf ppf "%-*s  %a@." width name pp_num v
      | Hist_v None -> Format.fprintf ppf "%-*s  (no samples)@." width name
      | Hist_v (Some s) ->
          Format.fprintf ppf
            "%-*s  n=%d sum=%.6g mean=%.3g min=%.3g p50<=%.3g p95<=%.3g \
             max=%.3g@."
            width name s.count s.sum s.mean s.min s.p50 s.p95 s.max)
    entries

let json_num v =
  if Float.is_nan v then "null"
  else if v = infinity then "1e999"
  else if v = neg_infinity then "-1e999"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

let json_snapshot () =
  let buf = Buffer.create 512 in
  Buffer.add_char buf '{';
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_char buf '"';
      Buffer.add_buffer buf (Shard.json_escape name);
      Buffer.add_string buf "\":";
      match v with
      | Counter_v v -> Buffer.add_string buf (json_num v)
      | Gauge_v None -> Buffer.add_string buf "null"
      | Gauge_v (Some v) -> Buffer.add_string buf (json_num v)
      | Hist_v None -> Buffer.add_string buf "null"
      | Hist_v (Some s) ->
          Buffer.add_string buf
            (Printf.sprintf
               "{\"count\":%d,\"sum\":%s,\"mean\":%s,\"min\":%s,\"p50\":%s,\"p95\":%s,\"max\":%s}"
               s.count (json_num s.sum) (json_num s.mean) (json_num s.min)
               (json_num s.p50) (json_num s.p95) (json_num s.max)))
    (snapshot ());
  Buffer.add_char buf '}';
  Buffer.contents buf

let reset = Shard.reset
