type t = float

let start () = Shard.now_s ()
let elapsed_s t0 = Shard.now_s () -. t0

let time f =
  let t0 = Shard.now_s () in
  let v = f () in
  (v, Shard.now_s () -. t0)
