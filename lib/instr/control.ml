let env_stats =
  Shard.truthy (Sys.getenv_opt "RLC_STATS")

let enabled () = !Shard.enabled
let set_enabled v = Shard.enabled := v

let trace_cap () = !Shard.max_events_per_shard
let set_trace_cap n = if n > 0 then Shard.max_events_per_shard := n

let dump ?(ppf = Format.err_formatter) () =
  Format.fprintf ppf "== rlc_instr metrics ==@.";
  Metrics.dump ppf;
  let spans = Span.trees () in
  if spans <> [] then begin
    Format.fprintf ppf "@.== rlc_instr spans ==@.";
    Span.dump_tree ppf
  end;
  let health = Health.report () in
  if health.Health.solves > 0 then begin
    Format.fprintf ppf "@.== rlc_instr health ==@.";
    Health.pp_report ppf health
  end;
  let dropped = Trace.dropped_events () in
  if dropped > 0 then
    Format.fprintf ppf "@.(trace buffer overflow: %d events dropped)@."
      dropped;
  let jdropped = Journal.dropped () in
  if jdropped > 0 then
    Format.fprintf ppf "@.(journal buffer overflow: %d events dropped)@."
      jdropped;
  Format.pp_print_flush ppf ()

let setup ?(stats = false) ?trace ?journal ?trace_cap () =
  if stats || env_stats then set_enabled true;
  (match trace_cap with Some n -> set_trace_cap n | None -> ());
  (match trace with
  | Some path ->
      Trace.start ();
      at_exit (fun () ->
          try Trace.write path
          with Sys_error msg ->
            Printf.eprintf "rlc_instr: cannot write trace %s: %s\n%!" path
              msg)
  | None -> ());
  (match journal with
  | Some path ->
      Journal.start ();
      at_exit (fun () ->
          try Journal.write path
          with Sys_error msg ->
            Printf.eprintf "rlc_instr: cannot write journal %s: %s\n%!" path
              msg)
  | None -> ());
  if stats then at_exit (fun () -> dump ())
