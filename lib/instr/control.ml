let env_stats =
  Shard.truthy (Sys.getenv_opt "RLC_STATS")

let enabled () = !Shard.enabled
let set_enabled v = Shard.enabled := v

let dump ?(ppf = Format.err_formatter) () =
  Format.fprintf ppf "== rlc_instr metrics ==@.";
  Metrics.dump ppf;
  let spans = Span.trees () in
  if spans <> [] then begin
    Format.fprintf ppf "@.== rlc_instr spans ==@.";
    Span.dump_tree ppf
  end;
  let dropped = Trace.dropped_events () in
  if dropped > 0 then
    Format.fprintf ppf "@.(trace buffer overflow: %d events dropped)@."
      dropped;
  Format.pp_print_flush ppf ()

let setup ?(stats = false) ?trace () =
  if stats || env_stats then set_enabled true;
  (match trace with
  | Some path ->
      Trace.start ();
      at_exit (fun () ->
          try Trace.write path
          with Sys_error msg ->
            Printf.eprintf "rlc_instr: cannot write trace %s: %s\n%!" path
              msg)
  | None -> ());
  if stats then at_exit (fun () -> dump ())
