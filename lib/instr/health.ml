(* Numerical-health ledger over the probes in [lib/numerics]: each
   factorisation reports a pivot-growth and reciprocal-condition
   estimate (cheap by-products of the kernel, computed only while
   recording), and each fallback/raise path reports a reason.  The
   classification thresholds mirror the solver's own guards: growth
   beyond the sparse refactor's repivot limit, or an rcond estimate
   within a few digits of losing the whole mantissa, marks the solve
   degraded even when it returned numbers. *)

type classification = Ok | Degraded | Failed

let to_string = function
  | Ok -> "ok"
  | Degraded -> "degraded"
  | Failed -> "failed"

let of_string = function
  | "ok" -> Some Ok
  | "degraded" -> Some Degraded
  | "failed" -> Some Failed
  | _ -> None

let rank = function Ok -> 0 | Degraded -> 1 | Failed -> 2
let worst a b = if rank a >= rank b then a else b

(* the same limit Sparse.refactor repivots at; dense/banded growth
   beyond it means the factorisation lost ~8 of 16 digits *)
let growth_limit = 1e8
let rcond_limit = 1e-12

let m_ok = Metrics.counter "health.ok"
let m_degraded = Metrics.counter "health.degraded"
let m_failed = Metrics.counter "health.failed"
let h_growth = Metrics.hist "health.pivot_growth"
let h_rcond = Metrics.hist "health.rcond"

let counter_of = function
  | Ok -> m_ok
  | Degraded -> m_degraded
  | Failed -> m_failed

let classify ?growth ?rcond () =
  let bad_growth =
    match growth with
    | Some g -> (not (Float.is_finite g)) || g > growth_limit
    | None -> false
  in
  let bad_rcond =
    match rcond with
    | Some r -> Float.is_nan r || r < rcond_limit
    | None -> false
  in
  if bad_growth || bad_rcond then Degraded else Ok

let reason_of ?growth ?rcond () =
  let bad_growth =
    match growth with
    | Some g -> (not (Float.is_finite g)) || g > growth_limit
    | None -> false
  in
  let bad_rcond =
    match rcond with
    | Some r -> Float.is_nan r || r < rcond_limit
    | None -> false
  in
  if bad_growth && bad_rcond then "pivot growth + ill-conditioned"
  else if bad_growth then "pivot growth"
  else "ill-conditioned"

let observe ~kind ?growth ?rcond () =
  (match growth with Some g -> Metrics.observe h_growth g | None -> ());
  (match rcond with Some r -> Metrics.observe h_rcond r | None -> ());
  let c = classify ?growth ?rcond () in
  Metrics.incr (counter_of c);
  if c <> Ok && Journal.capturing () then begin
    let fields =
      [ ("kind", Journal.Str kind); ("class", Journal.Str (to_string c));
        ("reason", Journal.Str (reason_of ?growth ?rcond ())) ]
      @ (match growth with
        | Some g -> [ ("growth", Journal.Num g) ]
        | None -> [])
      @ match rcond with Some r -> [ ("rcond", Journal.Num r) ] | None -> []
    in
    Journal.record "health" fields
  end;
  c

let note c ~kind ~reason =
  Metrics.incr (counter_of c);
  if Journal.capturing () then
    Journal.record "health"
      [
        ("kind", Journal.Str kind);
        ("class", Journal.Str (to_string c));
        ("reason", Journal.Str reason);
      ]

let degraded ~kind ~reason = note Degraded ~kind ~reason
let failure ~kind ~reason = note Failed ~kind ~reason

(* ---------------- summary (quiescent points only) ---------------- *)

type report = {
  solves : int;
  ok : int;
  degraded : int;
  failed : int;
  worst_growth : float option;
  min_rcond : float option;
}

let report () =
  let ok = int_of_float (Metrics.value m_ok) in
  let degraded = int_of_float (Metrics.value m_degraded) in
  let failed = int_of_float (Metrics.value m_failed) in
  {
    solves = ok + degraded + failed;
    ok;
    degraded;
    failed;
    worst_growth =
      Option.map
        (fun (s : Metrics.summary) -> s.Metrics.max)
        (Metrics.hist_summary h_growth);
    min_rcond =
      Option.map
        (fun (s : Metrics.summary) -> s.Metrics.min)
        (Metrics.hist_summary h_rcond);
  }

let pp_report ppf r =
  Format.fprintf ppf "health: %d solves (%d ok, %d degraded, %d failed)"
    r.solves r.ok r.degraded r.failed;
  (match r.worst_growth with
  | Some g -> Format.fprintf ppf ", worst growth %.3g" g
  | None -> ());
  (match r.min_rcond with
  | Some c -> Format.fprintf ppf ", min rcond %.3g" c
  | None -> ());
  Format.fprintf ppf "@."

(* worst classification among the health events a provenance id
   produced — what the serving layer appends to err results *)
let worst_for events ~provenance =
  List.fold_left
    (fun acc (e : Journal.event) ->
      if e.Journal.name <> "health" || e.Journal.provenance <> provenance
      then acc
      else begin
        let c =
          Option.bind (Journal.str_field e "class") of_string
          |> Option.value ~default:Degraded
        in
        let reason =
          Option.value ~default:"" (Journal.str_field e "reason")
        in
        match acc with
        | Some (c0, _) when rank c0 >= rank c -> acc
        | _ -> Some (c, reason)
      end)
    None events
