(** The analysis half of [rlcstat], library-side so tests can drive
    it: health/latency rollups over journal event streams, and
    threshold-based regression diffs over two JSON snapshots. *)

(** {1 Journal entries} *)

type entry = {
  eprov : string;  (** provenance id, [""] when absent *)
  ename : string;  (** event kind *)
  efields : (string * Jsonv.t) list;  (** non-reserved fields *)
}

val entry_of_line : string -> entry option
(** One JSONL line; [None] when unparseable or missing ["event"]. *)

val entries_of_lines : string list -> entry list * int
(** Parses every non-blank line; the second component counts skipped
    (unparseable) lines. *)

val entries_of_file : string -> entry list * int

val entry_of_event : Journal.event -> entry
(** Bridge from the in-process journal (tests, bench). *)

(** {1 Rollup} *)

type quantiles = { p50 : float; p90 : float; p99 : float }

type kind_stats = {
  kind : string;
  count : int;
  errors : int;
  latency : quantiles option;
      (** exact nearest-rank quantiles over the [job.end] durations *)
}

type rollup = {
  events : int;
  skipped : int;
  jobs : int;
  errors : int;
  kinds : kind_stats list;  (** per query kind, first-seen order *)
  fallbacks : int;
  resyms : int;
  guard_trips : int;
  cache_hits : int;
  cache_misses : int;
  cache_aliases : int;
  health_ok : int;
  health_degraded : int;
  health_failed : int;
  trace_dropped : int;
}

val rollup : ?skipped:int -> entry list -> rollup
val pp_rollup : Format.formatter -> rollup -> unit

(** {1 Snapshot diff} *)

type finding = {
  path : string;  (** dot-joined JSON path of the numeric leaf *)
  old_v : float;
  new_v : float;
  delta : float;  (** relative change; [infinity] when [old_v = 0] *)
}

val flatten : Jsonv.t -> (string * float) list
(** Every numeric leaf with its dot-joined path. The [meta] subtree
    (dates, git revisions) is always skipped. *)

val diff : ?threshold:float -> Jsonv.t -> Jsonv.t -> finding list
(** Leaves present in both snapshots whose relative change exceeds
    [threshold] (default 0.10 = 10%).  Keys only on one side are
    ignored — snapshots evolve.  Identical inputs yield []. *)

val pp_finding : Format.formatter -> finding -> unit
