(** Numerical-health classification over the probes in [lib/numerics].

    Factorisation kernels report cheap by-products — a pivot-growth
    estimate (max magnitude after elimination over max before; large
    growth means digits were lost) and a reciprocal-condition proxy
    (smallest over largest U-diagonal magnitude) — and every
    fallback / singular path reports a reason.  Each solve is
    classified {!Ok}, {!Degraded} (returned numbers, but growth beyond
    the repivot limit or rcond within a few digits of underflow) or
    {!Failed} (raised), counted in the [health.*] metrics, observed
    into the [health.pivot_growth] / [health.rcond] histograms, and —
    when {!Journal.capturing} — journaled as a [health] event carrying
    the current provenance id. *)

type classification = Ok | Degraded | Failed

val to_string : classification -> string
val of_string : string -> classification option

val worst : classification -> classification -> classification

val growth_limit : float
(** Degraded above this pivot growth (1e8, the sparse repivot limit). *)

val rcond_limit : float
(** Degraded below this reciprocal-condition estimate (1e-12). *)

val classify :
  ?growth:float -> ?rcond:float -> unit -> classification
(** Pure threshold check — never {!Failed} (a solve that returned is
    at worst degraded). *)

val observe :
  kind:string -> ?growth:float -> ?rcond:float -> unit -> classification
(** Record one completed solve of the given kind (["lu"], ["banded"],
    ["sparse"], ...): histograms + class counter + a journal event
    when not {!Ok}.  Callers should skip computing the estimates
    (and this call) unless {!Metrics.recording}. *)

val degraded : kind:string -> reason:string -> unit
(** A solve that fell back or tripped a guard but completed. *)

val failure : kind:string -> reason:string -> unit
(** A solve that raised (singular system). Call before raising. *)

(** {1 Summary (quiescent points only)} *)

type report = {
  solves : int;
  ok : int;
  degraded : int;
  failed : int;
  worst_growth : float option;
  min_rcond : float option;
}

val report : unit -> report
val pp_report : Format.formatter -> report -> unit

val worst_for :
  Journal.event list ->
  provenance:string ->
  (classification * string) option
(** Worst health classification (and its reason) among the [health]
    events stamped with the given provenance id — what the serving
    layer appends as the [# health:] annotation on [err] results. *)
