type measurement = {
  period : float option;
  input_overshoot : float;
  input_undershoot : float;
  peak_current : float;
  rms_current : float;
  peak_current_density : float;
  rms_current_density : float;
}

let steady_part w =
  let t0 = Rlc_waveform.Waveform.t_start w in
  let t1 = Rlc_waveform.Waveform.t_end w in
  Rlc_waveform.Waveform.slice w ~t0:(t0 +. (0.3 *. (t1 -. t0))) ~t1

let measure (sim : Ring.sim) =
  let cfg = sim.Ring.built.Ring.config in
  let node = cfg.Ring.node in
  let vdd = node.Rlc_tech.Node.vdd in
  let vth = Rlc_tech.Node.switching_threshold node in
  let in0 = steady_part sim.Ring.in0 in
  let out0 = steady_part sim.Ring.out0 in
  let current = steady_part sim.Ring.wire_current in
  let area =
    Rlc_extraction.Geometry.cross_section_area node.Rlc_tech.Node.geometry
  in
  ignore vth;
  (* Schmitt detection on the (clean) inverter output: ringing around
     the threshold must not register as switching. *)
  let period =
    Rlc_waveform.Measure.schmitt_period out0 ~lo:(0.25 *. vdd)
      ~hi:(0.75 *. vdd)
  in
  let peak_current = Rlc_waveform.Measure.peak_abs current in
  let rms_current =
    match Rlc_waveform.Measure.rms_over_period current with
    | Some r -> r
    | None -> Rlc_waveform.Measure.rms current
  in
  {
    period;
    input_overshoot = Rlc_waveform.Measure.overshoot in0 ~v_final:vdd;
    input_undershoot = Rlc_waveform.Measure.undershoot_below in0 ~floor:0.0;
    peak_current;
    rms_current;
    peak_current_density = peak_current /. area;
    rms_current_density = rms_current /. area;
  }

let false_switching ~baseline_period m =
  match m.period with
  | None -> false
  | Some p -> p < 0.6 *. baseline_period

let period_sweep ?pool ?stages ?segments ?dt ?t_end node ~l_values =
  let pool =
    match pool with Some p -> p | None -> Rlc_parallel.Pool.sequential
  in
  Rlc_parallel.Pool.map_list pool
    (fun l ->
      let cfg = Ring.rc_sized_config ?stages ?segments node ~l in
      let sim = Ring.simulate ?dt ?t_end cfg in
      (l, measure sim))
    l_values
