(** The paper's control experiment for Section 3.3.1: a buffered RLC
    line of several stages driven by a square wave at one end, with the
    far end loaded by an identical repeater.  The false-switching
    behaviour appears here too, showing it is not a ring-oscillator
    artifact. *)

type config = {
  node : Rlc_tech.Node.t;
  l : float;  (** line inductance, H/m *)
  h : float;
  k : float;
  stages : int;  (** inverters in the chain, default 5 *)
  segments : int;  (** ladder sections per line, default 12 *)
  period : float;  (** drive square-wave period, s *)
}

val config :
  ?stages:int -> ?segments:int -> ?period:float -> Rlc_tech.Node.t ->
  l:float -> h:float -> k:float -> config
(** [period] defaults to 24x the stage's Padé delay — slow enough for
    every stage to settle between edges in the clean regime. *)

val rc_sized_config :
  ?stages:int -> ?segments:int -> ?period:float -> Rlc_tech.Node.t ->
  l:float -> config

type sim = {
  config : config;
  input : Rlc_waveform.Waveform.t;  (** drive waveform *)
  last_in : Rlc_waveform.Waveform.t;  (** last inverter's gate voltage *)
  output : Rlc_waveform.Waveform.t;  (** chain output *)
}

val simulate : ?dt:float -> ?cycles:int -> config -> sim
(** Drive for [cycles] (default 6) periods. *)

type verdict = {
  input_edges : int;  (** full transitions of the drive *)
  output_edges : int;  (** full transitions of the chain output *)
  spurious_edges : int;  (** output - input (0 when logically clean) *)
  false_switching : bool;
}

val check : sim -> verdict
(** Compares Schmitt-trigger transition counts of drive and output over
    the simulated window (discarding the first period as warm-up). *)
