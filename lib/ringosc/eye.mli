(** Bit-pattern (eye-diagram) analysis of a repeater stage.

    The undershoot/overshoot the paper studies (Section 3.3) is a
    single-transition view; under a random bit stream the residual
    ringing of one bit interferes with the next (inter-symbol
    interference).  This module drives the Figure 1 stage with a
    deterministic PRBS through the transient simulator and measures the
    eye: worst-case high and low levels at the sampling instant and the
    transition-delay jitter. *)

type config = {
  node : Rlc_tech.Node.t;
  l : float;  (** H/m *)
  h : float;
  k : float;
  segments : int;
  bit_period : float;  (** s *)
  bits : int;  (** pattern length *)
  seed : int;  (** LFSR seed (non-zero 7-bit) *)
}

val config :
  ?segments:int -> ?bits:int -> ?seed:int -> ?bit_period:float ->
  Rlc_tech.Node.t -> l:float -> h:float -> k:float -> config
(** [bit_period] defaults to 4x the stage's 50% Padé delay (an
    aggressive but workable rate); [bits] to 63, [segments] to 12. *)

val prbs : seed:int -> int -> bool list
(** The x^7 + x^6 + 1 LFSR sequence used as the pattern (exposed for
    tests; period 127). *)

type measurement = {
  eye_high : float;  (** lowest sampled value across all 1-bits, V *)
  eye_low : float;  (** highest sampled value across all 0-bits, V *)
  eye_opening : float;  (** (eye_high - eye_low) / vdd; <= 0 = closed *)
  delay_min : float;  (** fastest input-edge -> output-crossing delay, s *)
  delay_max : float;  (** slowest, s *)
  jitter : float;  (** delay_max - delay_min, s *)
}

val run : ?dt:float -> config -> measurement
(** Simulates the pattern and samples each bit at its three-quarter
    point (after the nominal transition has completed).  Raises
    [Failure] when the output misses transitions entirely (the eye is
    collapsed beyond measurement). *)
