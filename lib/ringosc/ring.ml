open Rlc_circuit

type config = {
  node : Rlc_tech.Node.t;
  l : float;
  h : float;
  k : float;
  stages : int;
  segments : int;
}

let config ?(stages = 5) ?(segments = 20) node ~l ~h ~k =
  if stages < 3 || stages mod 2 = 0 then
    invalid_arg "Ring.config: stages must be odd and >= 3";
  if segments < 1 then invalid_arg "Ring.config: segments < 1";
  if l < 0.0 then invalid_arg "Ring.config: l < 0";
  if h <= 0.0 || k <= 0.0 then invalid_arg "Ring.config: h, k must be positive";
  { node; l; h; k; stages; segments }

let rc_sized_config ?stages ?segments node ~l =
  let rc = Rlc_core.Rc_opt.optimize node in
  config ?stages ?segments node ~l ~h:rc.Rlc_core.Rc_opt.h_opt
    ~k:rc.Rlc_core.Rc_opt.k_opt

type built = {
  netlist : Netlist.t;
  stage_out : Netlist.node array;
  stage_in : Netlist.node array;
  initial_voltages : (Netlist.node * float) list;
  config : config;
}

let line_prefix i = Printf.sprintf "line%d" i
let inverter_name i = Printf.sprintf "inv%d" i

let build cfg =
  let nl = Netlist.create () in
  let n = cfg.stages in
  let vdd = cfg.node.Rlc_tech.Node.vdd in
  let out =
    Array.init n (fun i ->
        Netlist.fresh_node ~name:(Printf.sprintf "out%d" i) nl)
  in
  let inp =
    Array.init n (fun i ->
        Netlist.fresh_node ~name:(Printf.sprintf "in%d" i) nl)
  in
  let dev =
    Devices.inverter_of_driver cfg.node.Rlc_tech.Node.driver ~k:cfg.k ~vdd ()
  in
  for i = 0 to n - 1 do
    (* inverter i: gate at inp.(i), drain at out.(i); line i runs from
       out.(i) to inp.((i+1) mod n) *)
    Netlist.add_inverter ~name:(inverter_name i) nl ~input:inp.(i)
      ~output:out.(i) dev;
    Ladder.make ~name_prefix:(line_prefix i) nl
      {
        Ladder.r = cfg.node.Rlc_tech.Node.r;
        l = cfg.l;
        c = cfg.node.Rlc_tech.Node.c;
        length = cfg.h;
        segments = cfg.segments;
      }
      ~from_node:out.(i)
      ~to_node:inp.((i + 1) mod n)
  done;
  (* Initial state: alternating logic pattern out_i = vdd for even i
     except the last stage, which is the single inconsistent one (its
     input asks for high but it starts low).  Exactly one travelling
     edge is launched, selecting the fundamental oscillation mode. *)
  let ics = ref [] in
  let set_chain i v =
    ics := (out.(i), v) :: (inp.((i + 1) mod n), v) :: !ics;
    for j = 1 to cfg.segments - 1 do
      match Netlist.find_node nl (Printf.sprintf "%s_n%d" (line_prefix i) j) with
      | Some node -> ics := (node, v) :: !ics
      | None -> ()
    done
  in
  for i = 0 to n - 1 do
    let v = if i < n - 1 && i mod 2 = 0 then vdd else 0.0 in
    set_chain i v
  done;
  { netlist = nl; stage_out = out; stage_in = inp;
    initial_voltages = !ics; config = cfg }

let estimated_stage_delay cfg =
  let stage =
    Rlc_core.Stage.of_node cfg.node ~l:cfg.l ~h:cfg.h ~k:cfg.k
  in
  Rlc_core.Delay.of_stage stage

type sim = {
  built : built;
  out0 : Rlc_waveform.Waveform.t;
  in0 : Rlc_waveform.Waveform.t;
  wire_current : Rlc_waveform.Waveform.t;
}

let default_dt cfg =
  (* resolve both the LC flight time of one ladder segment and the
     driver RC; the stage delay / 400 is a practical upper bound *)
  let seg_len = cfg.h /. float_of_int cfg.segments in
  let lc =
    if cfg.l > 0.0 then
      seg_len *. Float.sqrt (cfg.l *. cfg.node.Rlc_tech.Node.c)
    else infinity
  in
  let tau = estimated_stage_delay cfg in
  Float.min (lc /. 4.0) (tau /. 400.0)

let simulate ?dt ?t_end ?(record_every = 1) cfg =
  let built = build cfg in
  let tau = estimated_stage_delay cfg in
  let period_estimate = 2.0 *. float_of_int cfg.stages *. tau in
  let t_end =
    match t_end with Some t -> t | None -> 16.0 *. period_estimate
  in
  let dt = match dt with Some d -> d | None -> default_dt cfg in
  let probes =
    [
      Transient.Node_v built.stage_out.(0);
      Transient.Node_v built.stage_in.(0);
      Ladder.input_current_probe ~name_prefix:(line_prefix 0) ();
    ]
  in
  let result =
    Transient.run ~initial_voltages:built.initial_voltages ~record_every
      built.netlist ~t_end ~dt ~probes
  in
  {
    built;
    out0 = Transient.get result (Transient.Node_v built.stage_out.(0));
    in0 = Transient.get result (Transient.Node_v built.stage_in.(0));
    wire_current =
      Transient.get result (Ladder.input_current_probe ~name_prefix:(line_prefix 0) ());
  }
