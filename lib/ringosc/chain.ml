open Rlc_circuit

type config = {
  node : Rlc_tech.Node.t;
  l : float;
  h : float;
  k : float;
  stages : int;
  segments : int;
  period : float;
}

let stage_delay node ~l ~h ~k =
  Rlc_core.Delay.of_stage (Rlc_core.Stage.of_node node ~l ~h ~k)

let config ?(stages = 5) ?(segments = 12) ?period node ~l ~h ~k =
  if stages < 1 then invalid_arg "Chain.config: stages < 1";
  if segments < 1 then invalid_arg "Chain.config: segments < 1";
  if l < 0.0 then invalid_arg "Chain.config: l < 0";
  if h <= 0.0 || k <= 0.0 then invalid_arg "Chain.config: h, k must be positive";
  let period =
    match period with
    | Some p ->
        if p <= 0.0 then invalid_arg "Chain.config: period <= 0";
        p
    | None -> 24.0 *. stage_delay node ~l ~h ~k
  in
  { node; l; h; k; stages; segments; period }

let rc_sized_config ?stages ?segments ?period node ~l =
  let rc = Rlc_core.Rc_opt.optimize node in
  config ?stages ?segments ?period node ~l ~h:rc.Rlc_core.Rc_opt.h_opt
    ~k:rc.Rlc_core.Rc_opt.k_opt

type sim = {
  config : config;
  input : Rlc_waveform.Waveform.t;
  last_in : Rlc_waveform.Waveform.t;
  output : Rlc_waveform.Waveform.t;
}

let simulate ?dt ?(cycles = 6) cfg =
  if cycles < 2 then invalid_arg "Chain.simulate: cycles < 2";
  let vdd = cfg.node.Rlc_tech.Node.vdd in
  let nl = Netlist.create () in
  let drive = Netlist.fresh_node ~name:"drive" nl in
  Netlist.add_vsource nl drive Netlist.ground
    (Stimulus.square_wave ~vdd ~period:cfg.period ());
  let dev =
    Devices.inverter_of_driver cfg.node.Rlc_tech.Node.driver ~k:cfg.k ~vdd ()
  in
  (* stage i: inverter from gate_i to drain_i, line from drain_i to
     gate_{i+1}; gate_0 is the driven node *)
  let rec build i gate =
    if i = cfg.stages then gate
    else begin
      let drain = Netlist.fresh_node ~name:(Printf.sprintf "drain%d" i) nl in
      let next_gate =
        Netlist.fresh_node ~name:(Printf.sprintf "gate%d" (i + 1)) nl
      in
      Netlist.add_inverter ~name:(Printf.sprintf "inv%d" i) nl ~input:gate
        ~output:drain dev;
      Ladder.make ~name_prefix:(Printf.sprintf "line%d" i) nl
        {
          Ladder.r = cfg.node.Rlc_tech.Node.r;
          l = cfg.l;
          c = cfg.node.Rlc_tech.Node.c;
          length = cfg.h;
          segments = cfg.segments;
        }
        ~from_node:drain ~to_node:next_gate;
      build (i + 1) next_gate
    end
  in
  let last_gate = build 0 drive in
  (* terminate with one more identical repeater's gate: already the
     inverter input capacitance when stages >= 1; add an explicit
     monitor inverter so the far end is loaded like every other stage *)
  let monitor_out = Netlist.fresh_node ~name:"monitor" nl in
  Netlist.add_inverter ~name:"monitor_inv" nl ~input:last_gate
    ~output:monitor_out dev;
  let t_end = float_of_int cycles *. cfg.period in
  let tau = stage_delay cfg.node ~l:cfg.l ~h:cfg.h ~k:cfg.k in
  let dt =
    match dt with
    | Some d -> d
    | None ->
        let seg_len = cfg.h /. float_of_int cfg.segments in
        let lc =
          if cfg.l > 0.0 then
            seg_len *. Float.sqrt (cfg.l *. cfg.node.Rlc_tech.Node.c) /. 4.0
          else infinity
        in
        Float.min lc (tau /. 400.0)
  in
  let probes =
    [
      Transient.Node_v drive;
      Transient.Node_v last_gate;
      Transient.Node_v monitor_out;
    ]
  in
  let r = Transient.run nl ~t_end ~dt ~probes in
  {
    config = cfg;
    input = Transient.get r (Transient.Node_v drive);
    last_in = Transient.get r (Transient.Node_v last_gate);
    output = Transient.get r (Transient.Node_v monitor_out);
  }

type verdict = {
  input_edges : int;
  output_edges : int;
  spurious_edges : int;
  false_switching : bool;
}

let check sim =
  let vdd = sim.config.node.Rlc_tech.Node.vdd in
  let lo = 0.25 *. vdd and hi = 0.75 *. vdd in
  let after_warmup w =
    let t0 = Rlc_waveform.Waveform.t_start w +. sim.config.period in
    Rlc_waveform.Waveform.slice w ~t0 ~t1:(Rlc_waveform.Waveform.t_end w)
  in
  let edges w =
    List.length
      (Rlc_waveform.Measure.full_transitions (after_warmup w) ~lo ~hi)
  in
  let input_edges = edges sim.input in
  let output_edges = edges sim.output in
  let spurious = output_edges - input_edges in
  {
    input_edges;
    output_edges;
    spurious_edges = spurious;
    false_switching = spurious > 0;
  }
