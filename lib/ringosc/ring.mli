(** The five-stage ring oscillator of Section 3.3: each stage is an
    inverter of size [k] driving a distributed RLC line of length [h],
    whose far end feeds the next inverter's gate.

    The symmetric all-zero initial condition would excite the common
    (in-phase) mode, so [build] staggers the initial stage-output
    voltages; the fundamental travelling mode takes over within a few
    round trips and measurements discard the initial transient. *)

type config = {
  node : Rlc_tech.Node.t;
  l : float;  (** line inductance, H/m *)
  h : float;  (** line length per stage, m *)
  k : float;  (** inverter size *)
  stages : int;  (** number of inverters (odd), default 5 *)
  segments : int;  (** ladder sections per line, default 20 *)
}

val config :
  ?stages:int -> ?segments:int -> Rlc_tech.Node.t -> l:float -> h:float ->
  k:float -> config
(** Raises [Invalid_argument] for even or < 3 [stages]. *)

val rc_sized_config :
  ?stages:int -> ?segments:int -> Rlc_tech.Node.t -> l:float -> config
(** The paper's configuration: h = h_optRC, k = k_optRC of the node. *)

type built = {
  netlist : Rlc_circuit.Netlist.t;
  stage_out : Rlc_circuit.Netlist.node array;
      (** inverter output / line near end, per stage *)
  stage_in : Rlc_circuit.Netlist.node array;
      (** line far end / next inverter's gate, per stage *)
  initial_voltages : (Rlc_circuit.Netlist.node * float) list;
  config : config;
}

val build : config -> built

type sim = {
  built : built;
  out0 : Rlc_waveform.Waveform.t;  (** inverter-0 output voltage *)
  in0 : Rlc_waveform.Waveform.t;  (** inverter-0 input voltage (far end
      of the last line) — the waveform Figures 9-10 plot *)
  wire_current : Rlc_waveform.Waveform.t;
      (** current entering stage-0's line, A *)
}

val simulate : ?dt:float -> ?t_end:float -> ?record_every:int -> config -> sim
(** Defaults: [t_end] spans roughly 16 fundamental periods (estimated
    from the stage's Padé delay) and [dt] resolves the fastest LC or RC
    timescale with a safety factor; both can be overridden. *)

val estimated_stage_delay : config -> float
(** 50% Padé delay of one stage (used for default time stepping). *)
